module Make (R : Tstm_runtime.Runtime_intf.S) = struct
  module V = Tstm_vmm.Vmm.Make (R)
  module G = Tstm_util.Growbuf
  module Bloom = Tstm_util.Bloom
  module Stats = Tstm_tm.Tm_stats

  let name = "tl2"

  exception Abort_exn of Stats.abort_reason

  (* Observability (same discipline as TinySTM: guarded, never charges). *)
  module Obs = Tstm_obs

  let obs_on () = Obs.Sink.enabled ()
  let emit ev = Obs.Sink.emit ~ts:(R.now_cycles ()) ~cpu:(R.tid ()) ev

  (* Chaos schedule perturbation (same one-boolean-load discipline). *)
  module Chaos = Tstm_chaos.Chaos

  let chaos_on () = Chaos.enabled ()

  let chaos_point p =
    let n = Chaos.preempt p in
    if n > 0 then R.charge n

  (* Sanitizer sync-edge annotations (same guarded, zero-cycle discipline
     as obs and chaos). *)
  module San = Tstm_san.San

  let san_on () = San.enabled ()

  (* Injected faults (crash/hang/OOM) at linearization points — same
     one-boolean-load guard as obs/chaos; see [Tstm_fault.Fault]. *)
  module Fault = Tstm_fault.Fault
  module Intf = Tstm_tm.Tm_intf

  let fault_on () = Fault.enabled ()

  (* Consecutive allocation-failed aborts tolerated before escalating to the
     typed [Tm_intf.Capacity] verdict. *)
  let max_alloc_retries = 16

  (* Contention management (same plumbing discipline as TinySTM, adapted to
     commit-time locking: a locked orec always belongs to a transaction that
     is mid-commit and therefore finite and unkillable, so the kill-capable
     policies degenerate to "the winner waits for the release, the loser
     aborts and clears the road" — seniority still yields a total order, so
     the globally oldest transaction always gets through).  With the default
     [Backoff] policy and no watchdog, [cm_active] is false and no extra
     shared word is ever touched. *)
  module Cm = Tstm_cm.Cm
  module Watchdog = Tstm_runtime.Watchdog

  (* TL2 lock words: unlocked = [version | 0]; locked = [tid | 1].  No
     incarnation numbers (write-back never dirties memory before commit) and
     no write-set payload (there is no per-lock chain — that is TinySTM's
     advantage the paper measures). *)
  let is_locked w = w land 1 = 1
  let unlocked ~version = version lsl 1
  let version w = w lsr 1
  let locked_by tid = (tid lsl 1) lor 1
  let owner w = w lsr 1

  let c_tx_begin = 20
  let c_tx_end = 20
  let c_op = 4

  type desc = {
    owner_t : t;
    tid : int;
    stats : Stats.t;
    rng : Tstm_util.Xrand.t;
    mutable in_tx : bool;
    mutable read_only : bool;
    mutable irrevocable : bool;
      (* running serially inside the quiescence fence: direct memory access,
         no locks, cannot abort *)
    mutable rv : int;
    (* Read set: (lock index, observed version) pairs, flattened. *)
    r_set : G.t;
    (* Write set: parallel address/value arrays plus a Bloom filter for the
       read-after-write fast reject. *)
    w_addr : G.t;
    w_val : G.t;
    bloom : Bloom.t;
    (* Locks acquired during commit, with their previous words. *)
    l_idx : G.t;
    l_old : G.t;
    (* Memory-management logs. *)
    a_addr : G.t;
    a_size : G.t;
    f_addr : G.t;
    f_size : G.t;
    (* Observability bookkeeping (only maintained while tracing is on). *)
    mutable obs_start : int;
    mutable obs_reads0 : int;
    mutable obs_writes0 : int;
    (* Contention-management bookkeeping (plain fields: free). *)
    mutable eff_cm : Cm.policy;  (* effective policy for this attempt *)
    mutable work0 : int;  (* reads+writes at last commit (karma base) *)
    mutable ticket : int;  (* greedy seniority ticket; 0 = none drawn *)
    mutable alloc_fails : int;
      (* consecutive allocation-failed aborts of the current transaction *)
  }

  and t = {
    mem : V.t;
    n_locks : int;
    shifts : int;
    locks : R.sarray;
    ctl : R.sarray;  (* fence mode / clock, padded apart *)
    flags : R.sarray;  (* per-thread in-transaction flags, padded apart *)
    descs : desc option array;
    max_threads : int;
    max_retries : int;  (* consecutive aborts before irrevocable escalation *)
    cm : Cm.policy;
    watchdog : Watchdog.t option;
    cm_active : bool;  (* priorities are live; false on the default path *)
    prios : R.sarray;
      (* per-thread published priorities, padded apart; slot 0 doubles as
         the greedy ticket counter *)
  }

  type tx = desc

  let mode_slot = 0
  let clock_slot = 8
  let ctl_len = 16
  let flag_slot tid = (tid + 1) * 8

  let create ?(n_locks = 1 lsl 16) ?(shifts = 0) ?(max_threads = 64)
      ?(max_retries = 0) ?(cm = Cm.default) ?watchdog ~memory_words () =
    if not (Tstm_util.Bitops.is_pow2 n_locks) then
      invalid_arg "Tl2.create: n_locks must be a power of two";
    if shifts < 0 || shifts > 16 then
      invalid_arg "Tl2.create: shifts out of range";
    if max_threads < 1 then invalid_arg "Tl2.create: max_threads < 1";
    if max_retries < 0 then invalid_arg "Tl2.create: max_retries < 0";
    let cm_active = Cm.can_kill cm || watchdog <> None in
    let t =
      {
        mem = V.create ~words:memory_words;
        n_locks;
        shifts;
        locks = R.sarray_make n_locks 0;
        ctl = R.sarray_make ctl_len 0;
        flags = R.sarray_make (flag_slot max_threads + 8) 0;
        descs = Array.make max_threads None;
        max_threads;
        max_retries = Cm.effective_max_retries cm max_retries;
        cm;
        watchdog;
        cm_active;
        prios =
          R.sarray_make (if cm_active then flag_slot max_threads + 8 else 1) 0;
      }
    in
    R.sarray_label t.locks "locks";
    R.sarray_label t.ctl "ctl";
    R.sarray_label t.flags "flags";
    R.sarray_label t.prios "cm-prio";
    R.sarray_label (V.words t.mem) "mem";
    t

  let memory t = t.mem
  let clock_value t = R.get t.ctl clock_slot
  let lock_index t addr = (addr lsr t.shifts) land (t.n_locks - 1)

  let new_desc t tid =
    {
      owner_t = t;
      tid;
      stats = Stats.create ();
      rng = Tstm_util.Xrand.create (0x2b1 + tid);
      in_tx = false;
      read_only = false;
      irrevocable = false;
      rv = 0;
      r_set = G.create 64;
      w_addr = G.create 32;
      w_val = G.create 32;
      bloom = Bloom.create ();
      l_idx = G.create 32;
      l_old = G.create 32;
      a_addr = G.create 8;
      a_size = G.create 8;
      f_addr = G.create 8;
      f_size = G.create 8;
      obs_start = 0;
      obs_reads0 = 0;
      obs_writes0 = 0;
      eff_cm = t.cm;
      work0 = 0;
      ticket = 0;
      alloc_fails = 0;
    }

  let desc_for t =
    let tid = R.tid () in
    if tid >= t.max_threads then invalid_arg "Tl2: thread id exceeds max_threads";
    match t.descs.(tid) with
    | Some d -> d
    | None ->
        let d = new_desc t tid in
        t.descs.(tid) <- Some d;
        d

  let cleanup d =
    G.clear d.r_set;
    G.clear d.w_addr;
    G.clear d.w_val;
    Bloom.clear d.bloom;
    G.clear d.l_idx;
    G.clear d.l_old;
    G.clear d.a_addr;
    G.clear d.a_size;
    G.clear d.f_addr;
    G.clear d.f_size;
    d.in_tx <- false

  let abort reason = raise (Abort_exn reason)

  (* Injected-fault consultation at a linearization point (same contract as
     TinySTM's: crash unwinds through the user-exception path with a full
     rollback; hang stalls wall-clock without heartbeat ticks). *)
  let fault_point d p =
    match Fault.at_point ~tid:d.tid p with
    | Fault.Proceed -> ()
    | Fault.Crash ->
        d.stats.Stats.faults_crash <- d.stats.Stats.faults_crash + 1;
        if obs_on () then
          emit
            (Obs.Event.Tx_fault { kind = "crash"; point = Fault.point_name p });
        raise (Fault.Injected_crash { tid = d.tid; point = Fault.point_name p })
    | Fault.Hang ns ->
        d.stats.Stats.faults_hang <- d.stats.Stats.faults_hang + 1;
        if obs_on () then
          emit
            (Obs.Event.Tx_fault { kind = "hang"; point = Fault.point_name p });
        Fault.hang ~ns

  let rec wait_bounded t li attempts =
    if attempts <= 0 then false
    else begin
      R.yield ();
      if is_locked (R.get t.locks li) then wait_bounded t li (attempts - 1)
      else true
    end

  (* What to do about the committing owner of lock [li].  Returns whether
     the lock was observed free (re-run the failing step) — false means
     abort self.  The historical TL2 policy (and our [Backoff]/[Serialize]/
     [Suicide] arms) aborts immediately: a locked orec belongs to a
     transaction mid-commit.  The kill-capable policies instead let the
     winner of the pure decision table wait out the enemy's (finite) commit
     while the loser aborts at once, clearing its own commit locks out of
     the winner's way — seniority is a total order, so the globally oldest
     transaction always gets through. *)
  let conflict_wait_for t d li enemy =
    match d.eff_cm with
    | Cm.Backoff | Cm.Serialize _ | Cm.Suicide -> false
    | Cm.Karma | Cm.Greedy -> (
        let self_prio = R.get t.prios (flag_slot d.tid) in
        let enemy_prio = R.get t.prios (flag_slot enemy) in
        match
          Cm.on_enemy d.eff_cm ~self_prio ~enemy_prio ~self_tid:d.tid
            ~enemy_tid:enemy
        with
        | Cm.Kill_enemy -> wait_bounded t li Cm.wait_bound
        | Cm.Abort_now | Cm.Wait_retry -> false)

  (* ------------------------------------------------------------------ *)
  (* Quiescence fence (for irrevocable escalation)                       *)
  (* ------------------------------------------------------------------ *)

  (* Same Dekker-style protocol as TinySTM's roll-over fence: threads raise
     a private padded flag before transacting and re-check the mode word, so
     an initiator that saw every flag down owns a quiescent instance. *)

  let rec enter_fence t d =
    if R.get t.ctl mode_slot <> 0 then begin
      R.yield ();
      enter_fence t d
    end
    else begin
      R.set t.flags (flag_slot d.tid) 1;
      if R.get t.ctl mode_slot <> 0 then begin
        R.set t.flags (flag_slot d.tid) 0;
        R.yield ();
        enter_fence t d
      end
      else if san_on () then San.fence_pass ~cpu:d.tid
    end

  let leave_fence t d =
    R.set t.flags (flag_slot d.tid) 0;
    if san_on () then San.thread_park ~cpu:d.tid

  let fence_and t f =
    let rec acquire () =
      if not (R.cas t.ctl mode_slot 0 1) then begin
        R.yield ();
        acquire ()
      end
    in
    acquire ();
    for tid = 0 to t.max_threads - 1 do
      while R.get t.flags (flag_slot tid) <> 0 do
        R.yield ()
      done
    done;
    if san_on () then San.fence_owner_entry ~cpu:(R.tid ());
    (* Release the fence even when [f] raises: an escalated transaction runs
       arbitrary user code here. *)
    match f () with
    | v ->
        if san_on () then San.fence_owner_exit ~cpu:(R.tid ());
        R.set t.ctl mode_slot 0;
        v
    | exception e ->
        if san_on () then San.fence_owner_exit ~cpu:(R.tid ());
        R.set t.ctl mode_slot 0;
        raise e

  (* ------------------------------------------------------------------ *)
  (* Read and write barriers                                             *)
  (* ------------------------------------------------------------------ *)

  (* Cycle costs of TL2's bookkeeping that TinySTM does not pay: the Bloom
     filter consulted on every access of an update transaction, and linear
     write-set / acquired-lock scans (TinySTM's locks point straight into the
     owner's write log, paper §3.1). *)
  let c_bloom = 3
  let c_scan = 1

  (* Search the write set backwards so the most recent write wins. *)
  let write_set_find d addr =
    R.charge_local c_bloom;
    if Bloom.may_contain d.bloom addr then begin
      let rec go k =
        if k < 0 then None
        else begin
          R.charge_local c_scan;
          if G.get d.w_addr k = addr then Some k else go (k - 1)
        end
      in
      go (G.length d.w_addr - 1)
    end
    else None

  let rec read_word t d addr =
    R.charge_local c_op;
    if d.irrevocable then begin
      (* Serial slow path inside the fence: memory is the truth. *)
      d.stats.Stats.reads <- d.stats.Stats.reads + 1;
      R.get (V.words t.mem) addr
    end
    else
    match if d.read_only then None else write_set_find d addr with
    | Some k ->
        d.stats.Stats.reads <- d.stats.Stats.reads + 1;
        G.get d.w_val k
    | None ->
        let li = lock_index t addr in
        let l1 = R.get t.locks li in
        if is_locked l1 then begin
          (* TL2 has no encounter-time ownership: a locked orec always
             belongs to a committing transaction. *)
          if conflict_wait_for t d li (owner l1) then read_word t d addr
          else abort Stats.Read_conflict
        end
        else begin
          let v = R.get (V.words t.mem) addr in
          let l2 = R.get t.locks li in
          if l1 <> l2 then read_word t d addr
          else if version l1 > d.rv then
            (* No snapshot extension in TL2: newer data forces an abort. *)
            abort Stats.Validation_failed
          else begin
            if not d.read_only then begin
              G.push d.r_set li;
              G.push d.r_set (version l1)
            end;
            if san_on () then San.read_accept ~cpu:d.tid ~addr;
            d.stats.Stats.reads <- d.stats.Stats.reads + 1;
            v
          end
        end

  let write_word t d addr v =
    R.charge_local c_op;
    if d.read_only then invalid_arg "Tl2.write: transaction is read-only";
    if d.irrevocable then begin
      d.stats.Stats.writes <- d.stats.Stats.writes + 1;
      R.set (V.words t.mem) addr v
    end
    else begin
    (match write_set_find d addr with
    | Some k -> G.set d.w_val k v
    | None ->
        G.push d.w_addr addr;
        G.push d.w_val v;
        Bloom.add d.bloom addr);
    d.stats.Stats.writes <- d.stats.Stats.writes + 1
    end

  (* ------------------------------------------------------------------ *)
  (* Memory management                                                   *)
  (* ------------------------------------------------------------------ *)

  let alloc_words t d n =
    match V.alloc t.mem n with
    | addr ->
        G.push d.a_addr addr;
        G.push d.a_size n;
        addr
    | exception Out_of_memory ->
        (* Arena exhaustion (genuine or injected) mid-transaction: the
           failed call mutated nothing, so rollback frees earlier
           speculative allocations and [live_words] cannot drift.
           Irrevocable transactions cannot roll back, so escalate straight
           to the typed [Capacity] verdict. *)
        if obs_on () then
          emit (Obs.Event.Tx_fault { kind = "oom"; point = "alloc" });
        if d.irrevocable then
          raise (Intf.Capacity { stm = "tl2"; retries = d.alloc_fails })
        else abort Stats.Alloc_failed

  (* A free is an update: rewrite the block so commit acquires its locks.
     Inside the fence there is no concurrency and the free is just deferred
     to the end of the escalated run. *)
  let free_words t d addr n =
    if not d.irrevocable then
      for w = addr to addr + n - 1 do
        let v = read_word t d w in
        write_word t d w v
      done;
    G.push d.f_addr addr;
    G.push d.f_size n

  (* ------------------------------------------------------------------ *)
  (* Commit                                                              *)
  (* ------------------------------------------------------------------ *)

  let release_acquired t d =
    let tracing = obs_on () in
    let sanning = san_on () in
    for k = 0 to G.length d.l_idx - 1 do
      R.set t.locks (G.get d.l_idx k) (G.get d.l_old k);
      if sanning then San.lock_release ~cpu:d.tid ~lock:(G.get d.l_idx k);
      if tracing then emit (Obs.Event.Lock_release { lock = G.get d.l_idx k })
    done;
    G.clear d.l_idx;
    G.clear d.l_old

  let owns_lock d li =
    let rec go k =
      k >= 0
      && begin
           R.charge_local c_scan;
           G.get d.l_idx k = li || go (k - 1)
         end
    in
    go (G.length d.l_idx - 1)

  let old_word_of d li =
    let rec go k =
      if k < 0 then None
      else if G.get d.l_idx k = li then Some (G.get d.l_old k)
      else go (k - 1)
    in
    go (G.length d.l_idx - 1)

  let acquire_write_locks t d =
    let n = G.length d.w_addr in
    let rec take li =
      let l = R.get t.locks li in
      if is_locked l then begin
        (* Owned by another committing transaction: abort immediately
           (the reference implementation's default policy), unless the
           contention manager rules that we out-rank the owner and should
           wait out its commit instead. *)
        if conflict_wait_for t d li (owner l) then take li
        else begin
          release_acquired t d;
          abort Stats.Write_conflict
        end
      end
      else begin
        if chaos_on () then chaos_point Chaos.Lock_cas;
        if not (R.cas t.locks li l (locked_by d.tid)) then begin
          release_acquired t d;
          abort Stats.Write_conflict
        end
        else begin
          if san_on () then San.lock_acquire ~cpu:d.tid ~lock:li;
          if chaos_on () then chaos_point Chaos.Lock_cas;
          if obs_on () then emit (Obs.Event.Lock_acquire { lock = li });
          G.push d.l_idx li;
          G.push d.l_old l
        end
      end
    in
    for k = 0 to n - 1 do
      let li = lock_index t (G.get d.w_addr k) in
      if not (owns_lock d li) then take li
    done

  let validate t d =
    d.stats.Stats.validations <- d.stats.Stats.validations + 1;
    let n = G.length d.r_set in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < n do
      let li = G.get d.r_set !k in
      let l = R.get t.locks li in
      d.stats.Stats.val_locks_processed <-
        d.stats.Stats.val_locks_processed + 1;
      (if is_locked l then
         if owner l <> d.tid then ok := false
         else begin
           (* We hold the lock ourselves: check the pre-acquisition word. *)
           match old_word_of d li with
           | Some old -> if version old > d.rv then ok := false
           | None -> ok := false
         end
       else if version l > d.rv then ok := false);
      k := !k + 2
    done;
    !ok

  let commit t d =
    R.charge_local c_tx_end;
    if G.length d.w_addr = 0 && G.length d.f_addr = 0 then begin
      d.stats.Stats.commits <- d.stats.Stats.commits + 1;
      if d.read_only then
        d.stats.Stats.commits_read_only <- d.stats.Stats.commits_read_only + 1
    end
    else begin
      acquire_write_locks t d;
      if chaos_on () then chaos_point Chaos.Clock_inc;
      let wv = R.fetch_add t.ctl clock_slot 1 + 1 in
      if san_on () then San.clock_advance ~cpu:d.tid ~drawn:wv;
      if chaos_on () then chaos_point Chaos.Commit;
      if
        wv > d.rv + 1
        && (not (Chaos.bug_active Chaos.Skip_validation))
        && not (validate t d)
      then begin
        release_acquired t d;
        abort Stats.Validation_failed
      end;
      let words = V.words t.mem in
      for k = 0 to G.length d.w_addr - 1 do
        R.set words (G.get d.w_addr k) (G.get d.w_val k)
      done;
      (* The snapshot-consistency check must see the write set still under
         lock, before any orec is released. *)
      if san_on () then San.commit_publish ~cpu:d.tid ~wv;
      let tracing = obs_on () in
      let sanning = san_on () in
      for k = 0 to G.length d.l_idx - 1 do
        R.set t.locks (G.get d.l_idx k) (unlocked ~version:wv);
        if sanning then San.lock_release ~cpu:d.tid ~lock:(G.get d.l_idx k);
        if tracing then
          emit (Obs.Event.Lock_release { lock = G.get d.l_idx k })
      done;
      for k = 0 to G.length d.f_addr - 1 do
        V.free t.mem (G.get d.f_addr k) (G.get d.f_size k)
      done;
      d.stats.Stats.commits <- d.stats.Stats.commits + 1
    end;
    cleanup d;
    if san_on () then San.tx_exit ~cpu:d.tid ~committed:true

  let rollback ?record t d =
    (* Commit-time locking: nothing was written to memory; just drop logs and
       reclaim speculative allocations.  (The sanitizer write log is empty
       for the same reason, so [tx_abort] has nothing to restore.) *)
    if san_on () then San.tx_abort ~cpu:d.tid;
    release_acquired t d;
    for k = 0 to G.length d.a_addr - 1 do
      V.free t.mem (G.get d.a_addr k) (G.get d.a_size k)
    done;
    (match record with
    | Some reason -> Stats.record_abort d.stats reason
    | None -> ());
    cleanup d;
    if san_on () then San.tx_exit ~cpu:d.tid ~committed:false

  (* ------------------------------------------------------------------ *)
  (* Transaction driver                                                  *)
  (* ------------------------------------------------------------------ *)

  (* Capped exponential back-off with deterministic per-transaction jitter
     (the formula is shared with TinySTM through [Tstm_cm]): wait uniformly
     in [base/2, base], base doubling per consecutive abort up to a cap. *)
  let backoff d attempts =
    let n = Cm.backoff_cycles ~rng:d.rng ~attempts in
    d.stats.Stats.backoff_cycles <- d.stats.Stats.backoff_cycles + n;
    R.charge n;
    if not R.is_simulated then
      for _ = 1 to n / 8 do
        R.yield ()
      done

  (* Watchdog plumbing (same shape as TinySTM's): feed commit/abort
     heartbeats, surface detections through observability, count forced
     policy switches.  Never reached with [watchdog = None]. *)
  let feed_watchdog d evs =
    List.iter
      (fun ev ->
        (match ev with
        | Watchdog.Switch _ ->
            d.stats.Stats.cm_switches <- d.stats.Stats.cm_switches + 1
        | Watchdog.Livelock _ | Watchdog.Starved _ -> ());
        if obs_on () then
          emit
            (match ev with
            | Watchdog.Livelock { window } -> Obs.Event.Tx_livelock { window }
            | Watchdog.Starved { retries; _ } ->
                Obs.Event.Tx_starved { retries }
            | Watchdog.Switch { level } ->
                Obs.Event.Cm_switch { level = Watchdog.level_to_string level }))
      evs

  let note_commit_wd t d =
    match t.watchdog with
    | None -> ()
    | Some w ->
        feed_watchdog d (Watchdog.note_commit w ~now:(R.now_cycles ()) ~tid:d.tid)

  let note_abort_wd t d ~retries =
    match t.watchdog with
    | None -> ()
    | Some w ->
        feed_watchdog d
          (Watchdog.note_abort w ~now:(R.now_cycles ()) ~tid:d.tid ~retries)

  (* Per-attempt prologue: effective policy (a watchdog in [Boosted] forces
     a kill-capable one) and priority publication.  Two plain reads and a
     field write on the default path. *)
  let cm_begin_attempt t d =
    d.eff_cm <-
      (match t.watchdog with
      | None -> t.cm
      | Some w -> (
          match Watchdog.level w with
          | Watchdog.Boosted -> if Cm.can_kill t.cm then t.cm else Cm.Karma
          | Watchdog.Normal | Watchdog.Serialized -> t.cm));
    if t.cm_active && Cm.needs_prio d.eff_cm then begin
      let p =
        match d.eff_cm with
        | Cm.Greedy ->
            if d.ticket = 0 then d.ticket <- R.fetch_add t.prios 0 1 + 1;
            d.ticket
        | _ -> d.stats.Stats.reads + d.stats.Stats.writes - d.work0 + 1
      in
      R.set t.prios (flag_slot d.tid) p
    end

  let cm_end_commit t d =
    d.work0 <- d.stats.Stats.reads + d.stats.Stats.writes;
    d.ticket <- 0;
    if t.cm_active && Cm.needs_prio d.eff_cm then
      R.set t.prios (flag_slot d.tid) 0

  let atomically ?(read_only = false) t f =
    let d = desc_for t in
    if d.in_tx then invalid_arg "Tl2.atomically: nested transaction";
    d.alloc_fails <- 0;
    let rec attempt tries =
      let forced_serial =
        match t.watchdog with
        | None -> false
        | Some w -> Watchdog.level w = Watchdog.Serialized
      in
      if forced_serial || (t.max_retries > 0 && tries >= t.max_retries) then
        escalate tries
      else begin
      enter_fence t d;
      R.charge_local c_tx_begin;
      d.in_tx <- true;
      d.read_only <- read_only;
      cm_begin_attempt t d;
      if chaos_on () then chaos_point Chaos.Clock_read;
      d.rv <- R.get t.ctl clock_slot;
      if san_on () then begin
        San.tx_begin ~cpu:d.tid;
        San.clock_read ~cpu:d.tid ~value:d.rv
      end;
      if obs_on () then begin
        d.obs_start <- R.now_cycles ();
        d.obs_reads0 <- d.stats.Stats.reads;
        d.obs_writes0 <- d.stats.Stats.writes;
        emit Obs.Event.Tx_begin
      end;
      match
        (* Fault taps live inside this match so an injected crash unwinds
           through the user-exception branch below: rollback, fence
           release, [in_tx] cleared — the respawned worker can transact
           again. *)
        if fault_on () then fault_point d Fault.Clock_read;
        let v = f d in
        if fault_on () then fault_point d Fault.Commit;
        commit t d;
        v
      with
      | v ->
          if obs_on () then begin
            let lat = R.now_cycles () - d.obs_start in
            let reads = d.stats.Stats.reads - d.obs_reads0 in
            let writes = d.stats.Stats.writes - d.obs_writes0 in
            emit
              (Obs.Event.Tx_commit { read_only; reads; writes; retries = tries });
            Obs.Sink.note_commit ~lat ~retries:tries ~reads ~writes
          end;
          Stats.record_retries d.stats tries;
          cm_end_commit t d;
          note_commit_wd t d;
          leave_fence t d;
          v
      | exception Abort_exn reason ->
          if obs_on () then begin
            let lat = R.now_cycles () - d.obs_start in
            emit
              (Obs.Event.Tx_abort
                 {
                   reason = Stats.abort_reason_to_string reason;
                   retries = tries;
                 });
            Obs.Sink.note_abort ~lat
          end;
          rollback ~record:reason t d;
          leave_fence t d;
          if chaos_on () then chaos_point Chaos.Abort;
          if fault_on () then fault_point d Fault.Abort;
          (* Allocation-failed aborts are capped: after [max_alloc_retries]
             consecutive failures the arena is genuinely full and retrying
             cannot help — escalate to the typed [Capacity] verdict (shared
             state is already rolled back here). *)
          if reason = Stats.Alloc_failed then begin
            d.alloc_fails <- d.alloc_fails + 1;
            if d.alloc_fails >= max_alloc_retries then
              raise (Intf.Capacity { stm = "tl2"; retries = d.alloc_fails })
          end
          else d.alloc_fails <- 0;
          note_abort_wd t d ~retries:(tries + 1);
          if Cm.delay_after_abort d.eff_cm then backoff d tries;
          attempt (tries + 1)
      | exception e ->
          rollback t d;
          leave_fence t d;
          raise e
      end
    (* Retry budget exhausted: re-run serially and irrevocably inside the
       quiescence fence (no transaction in flight, direct memory access, no
       locks, cannot abort). *)
    and escalate tries =
      d.stats.Stats.escalations <- d.stats.Stats.escalations + 1;
      if obs_on () then emit (Obs.Event.Tx_escalate { retries = tries });
      (* The serial-irrevocable path cannot be rolled back: mask injected
         faults for its duration ([Fun.protect] guarantees the unmask). *)
      Fault.mask ~tid:d.tid;
      Fun.protect ~finally:(fun () -> Fault.unmask ~tid:d.tid) @@ fun () ->
      fence_and t (fun () ->
          R.charge_local c_tx_begin;
          d.in_tx <- true;
          d.read_only <- read_only;
          d.irrevocable <- true;
          if san_on () then San.tx_begin ~cpu:d.tid;
          if obs_on () then begin
            d.obs_start <- R.now_cycles ();
            d.obs_reads0 <- d.stats.Stats.reads;
            d.obs_writes0 <- d.stats.Stats.writes;
            emit Obs.Event.Tx_begin
          end;
          match f d with
          | v ->
              R.charge_local c_tx_end;
              (* Keep the clock moving so the serial commit has a unique
                 serialization point with respect to the version order. *)
              let wv = R.fetch_add t.ctl clock_slot 1 + 1 in
              if san_on () then begin
                San.clock_advance ~cpu:d.tid ~drawn:wv;
                San.commit_publish ~cpu:d.tid ~wv
              end;
              for k = 0 to G.length d.f_addr - 1 do
                V.free t.mem (G.get d.f_addr k) (G.get d.f_size k)
              done;
              d.stats.Stats.commits <- d.stats.Stats.commits + 1;
              if read_only then
                d.stats.Stats.commits_read_only <-
                  d.stats.Stats.commits_read_only + 1;
              if obs_on () then begin
                let lat = R.now_cycles () - d.obs_start in
                let reads = d.stats.Stats.reads - d.obs_reads0 in
                let writes = d.stats.Stats.writes - d.obs_writes0 in
                emit
                  (Obs.Event.Tx_commit
                     { read_only; reads; writes; retries = tries });
                Obs.Sink.note_commit ~lat ~retries:tries ~reads ~writes
              end;
              Stats.record_retries d.stats tries;
              cm_end_commit t d;
              note_commit_wd t d;
              d.irrevocable <- false;
              cleanup d;
              if san_on () then San.tx_exit ~cpu:d.tid ~committed:true;
              v
          | exception e ->
              (* Irrevocable: direct writes stay; release the fence and
                 propagate. *)
              d.irrevocable <- false;
              if san_on () then begin
                San.tx_abort ~cpu:d.tid;
                San.tx_exit ~cpu:d.tid ~committed:false
              end;
              cleanup d;
              raise e)
    in
    attempt 0

  let read tx addr = read_word tx.owner_t tx addr
  let write tx addr v = write_word tx.owner_t tx addr v
  let alloc tx n = alloc_words tx.owner_t tx n
  let free tx addr n = free_words tx.owner_t tx addr n

  let stats t =
    let agg = Stats.create () in
    Array.iter
      (function Some d -> Stats.add_into ~dst:agg d.stats | None -> ())
      t.descs;
    agg

  let reset_stats t =
    Array.iter (function Some d -> Stats.reset d.stats | None -> ()) t.descs
end
