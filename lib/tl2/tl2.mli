(** TL2 (Dice, Shalev, Shavit; DISC 2006) — the baseline the paper compares
    TINYSTM against.  From-scratch reimplementation of the algorithm:

    - commit-time locking: writes are buffered in a per-transaction write set
      (with a Bloom-filter fast reject for read-after-write lookups) and the
      covering locks are acquired only at commit;
    - a global version clock sampled at start ([rv]); reads abort when they
      observe a version newer than [rv] — unlike TinySTM's LSA variant, TL2
      has no snapshot extension;
    - commit: acquire write locks, increment the clock to obtain [wv],
      validate the read set if [wv > rv + 1], write back, release locks
      stamped with [wv].

    Exposes the same {!Tstm_tm.Tm_intf.TM} operations as TinySTM so the
    transactional data structures and the benchmark harness run unmodified on
    either implementation. *)

module Make (R : Tstm_runtime.Runtime_intf.S) : sig
  module V : module type of Tstm_vmm.Vmm.Make (R)

  type t
  type tx

  val create :
    ?n_locks:int ->
    ?shifts:int ->
    ?max_threads:int ->
    ?max_retries:int ->
    ?cm:Tstm_cm.Cm.policy ->
    ?watchdog:Tstm_runtime.Watchdog.t ->
    memory_words:int ->
    unit ->
    t
  (** [n_locks] must be a power of two (default 2{^16}, matching the TinySTM
      default for fair comparisons); [shifts] is the address pre-shift of the
      per-stripe lock mapping (default 0).  [max_retries] (default 0 = never)
      is the retry budget after which a transaction escalates to a
      serial-irrevocable execution inside a quiescence fence, exactly as in
      {!Tinystm.Make.create}.  [cm] and [watchdog] mirror TinySTM's, with one
      adaptation to commit-time locking: a locked orec always belongs to a
      finite, unkillable committing transaction, so kill-capable policies
      degenerate to bounded winner-waits / loser-aborts. *)

  val memory : t -> V.t
  val clock_value : t -> int

  val name : string

  val read : tx -> int -> int
  val write : tx -> int -> int -> unit
  val alloc : tx -> int -> int
  val free : tx -> int -> int -> unit
  val atomically : ?read_only:bool -> t -> (tx -> 'a) -> 'a
  val stats : t -> Tstm_tm.Tm_stats.t
  val reset_stats : t -> unit
end
