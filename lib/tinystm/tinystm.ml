module Lockenc = Lockenc
module Config = Config
module Hmask = Hmask

module Make (R : Tstm_runtime.Runtime_intf.S) = struct
  module V = Tstm_vmm.Vmm.Make (R)
  module G = Tstm_util.Growbuf
  module Stats = Tstm_tm.Tm_stats

  let name = "tinystm"

  exception Abort_exn of Stats.abort_reason

  (* Observability: every site guards on [Obs.Sink.enabled] (one bool load)
     and emission never charges cycles, so traced and untraced runs are
     identical in virtual time and results. *)
  module Obs = Tstm_obs

  let obs_on () = Obs.Sink.enabled ()
  let emit ev = Obs.Sink.emit ~ts:(R.now_cycles ()) ~cpu:(R.tid ()) ev

  (* Chaos: like observability, every consultation is behind one boolean
     load; an inactive plan leaves the schedule untouched. *)
  module Chaos = Tstm_chaos.Chaos

  let chaos_on () = Chaos.enabled ()

  (* Real-domain fault injection: same one-boolean-load discipline.  A
     disarmed plan leaves every run (sim and real) byte-identical. *)
  module Fault = Tstm_fault.Fault
  module Intf = Tstm_tm.Tm_intf

  let fault_on () = Fault.enabled ()

  (* Consecutive allocation-failed aborts tolerated per [atomically] call
     before the transaction gives up with a typed [Tm_intf.Capacity]
     (retrying forever on a genuinely full arena would livelock; serial
     escalation cannot help because the fence does not free memory). *)
  let max_alloc_retries = 16

  (* Sanitizer: explicit sync-edge annotations at the operations that
     really order transactions (orec CAS/release, clock fetch_add/read,
     quiescence fence).  Same discipline as obs: one boolean load when
     disarmed, no cycles charged when armed. *)
  module San = Tstm_san.San

  let san_on () = San.enabled ()

  (* Contention management: policy decisions are pure tables in [Tstm_cm];
     the shared-memory plumbing they need (published priorities, remote-kill
     flags) lives behind [t.cm_active], a plain boolean that is false for the
     default [Backoff] policy without a watchdog — on that path no extra
     shared word is ever touched and runs are byte-identical to the
     pre-CM implementation. *)
  module Cm = Tstm_cm.Cm
  module Watchdog = Tstm_runtime.Watchdog

  let chaos_point p =
    let n = Chaos.preempt p in
    if n > 0 then R.charge n

  (* Fixed bookkeeping costs (cycles) charged in the simulated runtime on top
     of the shared-memory access costs; no-ops on real hardware. *)
  let c_tx_begin = 20
  let c_tx_end = 20
  let c_op = 4

  type desc = {
    owner : t;
    tid : int;
    stats : Stats.t;
    rng : Tstm_util.Xrand.t;
    mutable in_tx : bool;
    mutable read_only : bool;
    mutable irrevocable : bool;
      (* running serially inside the quiescence fence: direct memory access,
         no locks, cannot abort *)
    mutable rv : int;  (* upper bound of the snapshot's validity range *)
    (* Read set, partitioned by hierarchy slot; each buffer stores
       (lock index, version) pairs flattened. *)
    mutable r_set : G.t array;
    mutable hmask_read : Hmask.t;
    mutable hmask_write : Hmask.t;
    mutable hsnap : int array;  (* counter value at first touch *)
    mutable own_inc : int array;  (* own increments since first touch *)
    (* Second (coarser) hierarchy level, paper §3.2's "multiple levels of
       nesting": group snapshots, own increments, and the list of
       read-touched level-1 partitions per group. *)
    mutable hmask2 : Hmask.t;
    mutable hsnap2 : int array;
    mutable own_inc2 : int array;
    mutable l2_members : G.t array;
    mutable h2_dim : int;
    (* Write set (write-back): per-lock chains through [w_next]
       (index + 1; 0 terminates). *)
    w_addr : G.t;
    w_val : G.t;
    w_next : G.t;
    (* Undo log (write-through). *)
    u_addr : G.t;
    u_val : G.t;
    (* Acquired locks: lock index and the word it held before acquisition. *)
    l_idx : G.t;
    l_old : G.t;
    (* Transactional memory management logs. *)
    a_addr : G.t;
    a_size : G.t;
    f_addr : G.t;
    f_size : G.t;
    mutable h_dim : int;  (* hierarchy size the arrays above match *)
    mutable last_stamp : int;  (* serialization timestamp of the last commit *)
    (* Observability bookkeeping (only maintained while tracing is on). *)
    mutable obs_start : int;  (* cycles at the current attempt's begin *)
    mutable obs_reads0 : int;  (* stats.reads at the attempt's begin *)
    mutable obs_writes0 : int;
    (* Contention-management bookkeeping (plain fields: free). *)
    mutable eff_cm : Cm.policy;  (* effective policy for this attempt *)
    mutable work0 : int;  (* reads+writes at last commit (karma base) *)
    mutable ticket : int;  (* greedy seniority ticket; 0 = none drawn *)
    mutable alloc_fails : int;
      (* consecutive Alloc_failed aborts of the current atomically call *)
  }

  and t = {
    mem : V.t;
    mutable cfg : Config.t;
    mutable locks : R.sarray;
    mutable hier : R.sarray;
    mutable hier2 : R.sarray;  (* coarser second counter level; len 1 = off *)
    ctl : R.sarray;  (* clock / fence mode / roll-over count, padded apart *)
    flags : R.sarray;  (* per-thread in-transaction flags, padded apart *)
    descs : desc option array;
    max_threads : int;
    max_clock : int;
    conflict_wait : int;  (* bounded re-check attempts on a foreign lock *)
    max_retries : int;  (* consecutive aborts before irrevocable escalation *)
    cm : Cm.policy;
    watchdog : Watchdog.t option;
    cm_active : bool;
      (* kill flags / priorities are live; false on the default path *)
    kill_flags : R.sarray;  (* per-thread remote-abort flags, padded apart *)
    prios : R.sarray;
      (* per-thread published priorities, padded apart; slot 0 doubles as
         the greedy ticket counter *)
  }

  type tx = desc

  (* Control-word slots, spread over distinct cache lines of the simulated
     runtime (8 words per line by default). *)
  let clock_slot = 8
  let mode_slot = 16
  let rollover_slot = 24
  let ctl_len = 32
  let flag_slot tid = (tid + 1) * 8

  let create ?(config = Config.default) ?(max_threads = 64)
      ?(max_clock = Lockenc.max_version - 64) ?(conflict_wait = 0)
      ?(max_retries = 0) ?(cm = Cm.default) ?watchdog ~memory_words () =
    Config.validate config;
    if max_threads < 1 || max_threads > Lockenc.max_tid + 1 then
      invalid_arg "Tinystm.create: max_threads out of range";
    if max_clock < 16 || max_clock > Lockenc.max_version - 1 then
      invalid_arg "Tinystm.create: max_clock out of range";
    if conflict_wait < 0 then
      invalid_arg "Tinystm.create: conflict_wait < 0";
    if max_retries < 0 then
      invalid_arg "Tinystm.create: max_retries < 0";
    (* A watchdog can boost any policy to karma, so its presence arms the
       kill/priority plumbing too. *)
    let cm_active = Cm.can_kill cm || watchdog <> None in
    let cm_len = if cm_active then flag_slot max_threads + 8 else 1 in
    let t =
      {
        mem = V.create ~words:memory_words;
        cfg = config;
        locks = R.sarray_make config.Config.n_locks 0;
        hier = R.sarray_make config.Config.hierarchy 0;
        hier2 = R.sarray_make config.Config.hierarchy2 0;
        ctl = R.sarray_make ctl_len 0;
        flags = R.sarray_make (flag_slot max_threads + 8) 0;
        descs = Array.make max_threads None;
        max_threads;
        max_clock;
        conflict_wait;
        max_retries = Cm.effective_max_retries cm max_retries;
        cm;
        watchdog;
        cm_active;
        kill_flags = R.sarray_make cm_len 0;
        prios = R.sarray_make cm_len 0;
      }
    in
    R.sarray_label t.locks "locks";
    R.sarray_label t.hier "hier";
    R.sarray_label t.hier2 "hier2";
    R.sarray_label t.ctl "ctl";
    R.sarray_label t.flags "flags";
    R.sarray_label t.kill_flags "cm-kill";
    R.sarray_label t.prios "cm-prio";
    R.sarray_label (V.words t.mem) "mem";
    t

  let memory t = t.mem
  let config t = t.cfg
  let clock_value t = R.get t.ctl clock_slot
  let rollovers t = R.get t.ctl rollover_slot

  (* ------------------------------------------------------------------ *)
  (* Descriptors                                                         *)
  (* ------------------------------------------------------------------ *)

  let fresh_hier_state d h h2 =
    d.r_set <- Array.init h (fun _ -> G.create 32);
    d.hmask_read <- Hmask.create h;
    d.hmask_write <- Hmask.create h;
    d.hsnap <- Array.make h 0;
    d.own_inc <- Array.make h 0;
    d.h_dim <- h;
    d.hmask2 <- Hmask.create h2;
    d.hsnap2 <- Array.make h2 0;
    d.own_inc2 <- Array.make h2 0;
    d.l2_members <- Array.init h2 (fun _ -> G.create 8);
    d.h2_dim <- h2

  let new_desc t tid =
    let h = t.cfg.Config.hierarchy and h2 = t.cfg.Config.hierarchy2 in
    let d =
      {
        owner = t;
        tid;
        stats = Stats.create ();
        rng = Tstm_util.Xrand.create (0x7153 + tid);
        in_tx = false;
        read_only = false;
        irrevocable = false;
        rv = 0;
        r_set = [||];
        hmask_read = Hmask.create 1;
        hmask_write = Hmask.create 1;
        hsnap = [||];
        own_inc = [||];
        w_addr = G.create 32;
        w_val = G.create 32;
        w_next = G.create 32;
        u_addr = G.create 32;
        u_val = G.create 32;
        l_idx = G.create 32;
        l_old = G.create 32;
        a_addr = G.create 8;
        a_size = G.create 8;
        f_addr = G.create 8;
        f_size = G.create 8;
        h_dim = 0;
        last_stamp = 0;
        obs_start = 0;
        obs_reads0 = 0;
        obs_writes0 = 0;
        eff_cm = t.cm;
        work0 = 0;
        ticket = 0;
        alloc_fails = 0;
        hmask2 = Hmask.create 1;
        hsnap2 = [||];
        own_inc2 = [||];
        l2_members = [||];
        h2_dim = 0;
      }
    in
    fresh_hier_state d h h2;
    d

  let desc_for t =
    let tid = R.tid () in
    if tid >= t.max_threads then
      invalid_arg "Tinystm: thread id exceeds max_threads";
    match t.descs.(tid) with
    | Some d ->
        if d.h_dim <> t.cfg.Config.hierarchy
           || d.h2_dim <> t.cfg.Config.hierarchy2
        then fresh_hier_state d t.cfg.Config.hierarchy t.cfg.Config.hierarchy2;
        d
    | None ->
        let d = new_desc t tid in
        t.descs.(tid) <- Some d;
        d

  let cleanup d =
    Hmask.iter d.hmask_write (fun i -> d.own_inc.(i) <- 0);
    Hmask.iter d.hmask_read (fun i -> G.clear d.r_set.(i));
    Hmask.clear d.hmask_read;
    Hmask.clear d.hmask_write;
    Hmask.iter d.hmask2 (fun g ->
        d.own_inc2.(g) <- 0;
        G.clear d.l2_members.(g));
    Hmask.clear d.hmask2;
    G.clear d.w_addr;
    G.clear d.w_val;
    G.clear d.w_next;
    G.clear d.u_addr;
    G.clear d.u_val;
    G.clear d.l_idx;
    G.clear d.l_old;
    G.clear d.a_addr;
    G.clear d.a_size;
    G.clear d.f_addr;
    G.clear d.f_size;
    d.in_tx <- false

  (* ------------------------------------------------------------------ *)
  (* Quiescence fence (clock roll-over and re-tuning, paper §3.1, §4.2)  *)
  (* ------------------------------------------------------------------ *)

  (* Threads raise a private padded flag before transacting and re-check the
     fence mode afterwards (Dekker-style: sequentially consistent atomics on
     both sides), so an initiator that saw every flag down owns a quiescent
     instance. *)

  let rec enter_fence t d =
    if R.get t.ctl mode_slot <> 0 then begin
      R.yield ();
      enter_fence t d
    end
    else begin
      R.set t.flags (flag_slot d.tid) 1;
      if R.get t.ctl mode_slot <> 0 then begin
        R.set t.flags (flag_slot d.tid) 0;
        R.yield ();
        enter_fence t d
      end
      else if san_on () then San.fence_pass ~cpu:d.tid
    end

  let leave_fence t d =
    R.set t.flags (flag_slot d.tid) 0;
    if san_on () then San.thread_park ~cpu:d.tid

  let fence_and t f =
    let rec acquire () =
      if not (R.cas t.ctl mode_slot 0 1) then begin
        R.yield ();
        acquire ()
      end
    in
    acquire ();
    for tid = 0 to t.max_threads - 1 do
      while R.get t.flags (flag_slot tid) <> 0 do
        R.yield ()
      done
    done;
    if san_on () then San.fence_owner_entry ~cpu:(R.tid ());
    (* Release the fence even when [f] raises: an escalated transaction runs
       arbitrary user code here. *)
    match f () with
    | v ->
        if san_on () then San.fence_owner_exit ~cpu:(R.tid ());
        R.set t.ctl mode_slot 0;
        v
    | exception e ->
        if san_on () then San.fence_owner_exit ~cpu:(R.tid ());
        R.set t.ctl mode_slot 0;
        raise e

  let do_rollover t =
    fence_and t (fun () ->
        (* Another thread may have completed the roll-over while we waited
           for the fence; re-check before paying for the reset. *)
        if R.get t.ctl clock_slot >= t.max_clock - 1 then begin
          R.set t.ctl clock_slot 0;
          for i = 0 to R.sarray_length t.locks - 1 do
            R.set t.locks i 0
          done;
          for i = 0 to R.sarray_length t.hier - 1 do
            R.set t.hier i 0
          done;
          for i = 0 to R.sarray_length t.hier2 - 1 do
            R.set t.hier2 i 0
          done;
          ignore (R.fetch_add t.ctl rollover_slot 1);
          if san_on () then San.rollover ~cpu:(R.tid ());
          if obs_on () then emit Obs.Event.Clock_rollover
        end)

  let set_config t cfg =
    Config.validate cfg;
    let d = desc_for t in
    if d.in_tx then invalid_arg "Tinystm.set_config: inside a transaction";
    fence_and t (fun () ->
        t.cfg <- cfg;
        t.locks <- R.sarray_make cfg.Config.n_locks 0;
        t.hier <- R.sarray_make cfg.Config.hierarchy 0;
        t.hier2 <- R.sarray_make cfg.Config.hierarchy2 0;
        R.sarray_label t.locks "locks";
        R.sarray_label t.hier "hier";
        R.sarray_label t.hier2 "hier2";
        R.set t.ctl clock_slot 0;
        (* The clock restarts from zero, like a roll-over. *)
        if san_on () then San.rollover ~cpu:(R.tid ()))

  (* ------------------------------------------------------------------ *)
  (* Hierarchical locking (paper §3.2)                                   *)
  (* ------------------------------------------------------------------ *)

  let hier_enabled t = t.cfg.Config.hierarchy > 1
  let hier2_enabled t = t.cfg.Config.hierarchy2 > 1

  (* First touch of a partition (by read or write) snapshots its counter,
     before any of our own increments. *)
  (* Only called with hierarchical locking enabled; [addr] is the accessed
     address, [i] its level-1 partition. *)
  let hier_touch_read t d addr i =
    if hier2_enabled t then begin
      let g = Config.hier2_index t.cfg addr in
      if Hmask.add d.hmask2 g then d.hsnap2.(g) <- R.get t.hier2 g;
      if
        (not (Hmask.mem d.hmask_read i)) && not (Hmask.mem d.hmask_write i)
      then d.hsnap.(i) <- R.get t.hier i;
      (* Group membership records the partitions that carry read entries. *)
      if Hmask.add d.hmask_read i then G.push d.l2_members.(g) i
    end
    else if
      (not (Hmask.mem d.hmask_read i)) && not (Hmask.mem d.hmask_write i)
    then begin
      ignore (Hmask.add d.hmask_read i);
      d.hsnap.(i) <- R.get t.hier i
    end
    else ignore (Hmask.add d.hmask_read i)

  (* Increment the partition counter immediately *after* a successful lock
     CAS (and, crucially, before this transaction can reach its commit and
     draw a write timestamp).  Soundness of the validation fast path then
     follows: if a validator sees the counter unchanged since its first
     touch, any foreign acquisition it could be missing must have CASed
     after the snapshot with its increment still pending — so that writer's
     commit version is drawn after the validator's clock read and its
     write-back serializes strictly later than the validated snapshot.
     (The other order — increment before CAS — is unsound: a validator can
     absorb the increment into its snapshot, read the still-unlocked
     location, and later skip the partition that hides the acquisition.) *)
  let hier_note_acquired t d addr =
    if hier_enabled t then begin
      let i = Config.hier_index t.cfg addr in
      if (not (Hmask.mem d.hmask_write i)) && not (Hmask.mem d.hmask_read i)
      then d.hsnap.(i) <- R.get t.hier i;
      ignore (Hmask.add d.hmask_write i);
      d.own_inc.(i) <- d.own_inc.(i) + 1;
      ignore (R.fetch_add t.hier i 1);
      if hier2_enabled t then begin
        let g = Config.hier2_index t.cfg addr in
        if Hmask.add d.hmask2 g then d.hsnap2.(g) <- R.get t.hier2 g;
        d.own_inc2.(g) <- d.own_inc2.(g) + 1;
        ignore (R.fetch_add t.hier2 g 1)
      end
    end

  (* ------------------------------------------------------------------ *)
  (* Validation and snapshot extension                                   *)
  (* ------------------------------------------------------------------ *)

  let validate_partition t d i =
    let buf = d.r_set.(i) in
    let n = G.length buf in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < n do
      let li = G.get buf !k in
      let ver = G.get buf (!k + 1) in
      let l = R.get t.locks li in
      d.stats.Stats.val_locks_processed <-
        d.stats.Stats.val_locks_processed + 1;
      (if Lockenc.is_locked l then begin
         if Lockenc.owner l <> d.tid then ok := false
       end
       else if Lockenc.version l <> ver then ok := false);
      k := !k + 2
    done;
    !ok

  (* Level-1 check of one partition: skip via its counter or re-check its
     read-set entries. *)
  let validate_level1 t d ok i =
    if !ok then begin
      let c = R.get t.hier i in
      if c = d.hsnap.(i) + d.own_inc.(i) then
        (* Fast path: no foreign lock acquisition in this partition since we
           first touched it. *)
        d.stats.Stats.val_locks_skipped <-
          d.stats.Stats.val_locks_skipped + (G.length d.r_set.(i) / 2)
      else if not (validate_partition t d i) then ok := false
    end

  let validate t d =
    d.stats.Stats.validations <- d.stats.Stats.validations + 1;
    let ok = ref true in
    if hier2_enabled t then
      (* Two-level fast path: an unchanged group counter clears every
         partition under it at once. *)
      Hmask.iter d.hmask2 (fun g ->
          if !ok then begin
            let members = d.l2_members.(g) in
            let c2 = R.get t.hier2 g in
            if c2 = d.hsnap2.(g) + d.own_inc2.(g) then begin
              let entries = ref 0 in
              for k = 0 to G.length members - 1 do
                entries := !entries + (G.length d.r_set.(G.get members k) / 2)
              done;
              d.stats.Stats.val_locks_skipped <-
                d.stats.Stats.val_locks_skipped + !entries
            end
            else
              for k = 0 to G.length members - 1 do
                validate_level1 t d ok (G.get members k)
              done
          end)
    else if hier_enabled t then
      Hmask.iter d.hmask_read (fun i -> validate_level1 t d ok i)
    else
      Hmask.iter d.hmask_read (fun i ->
          if !ok && not (validate_partition t d i) then ok := false);
    !ok

  let extend t d =
    if chaos_on () then chaos_point Chaos.Clock_read;
    let now = R.get t.ctl clock_slot in
    if Chaos.bug_active Chaos.Skip_extension then begin
      (* Deliberately broken protocol (chaos bug injection): accept the new
         snapshot bound without validating the read set.  Exists solely so
         the stress checker can demonstrate it catches the resulting
         non-serializable histories. *)
      d.rv <- now;
      if san_on () then San.clock_read ~cpu:d.tid ~value:now;
      true
    end
    else if validate t d then begin
      d.rv <- now;
      if san_on () then San.clock_read ~cpu:d.tid ~value:now;
      d.stats.Stats.extensions <- d.stats.Stats.extensions + 1;
      if obs_on () then emit Obs.Event.Clock_extend;
      true
    end
    else false

  let abort reason = raise (Abort_exn reason)

  (* Injected-fault consultation at a linearization point.  A [Crash]
     outcome unwinds through the user-exception path of [atomically] —
     full rollback, locks released, speculative allocations freed — so a
     dying worker never corrupts shared STM state; a [Hang] stalls
     wall-clock without heartbeat ticks, so the pool monitor can see the
     worker go stale. *)
  let fault_point d p =
    match Fault.at_point ~tid:d.tid p with
    | Fault.Proceed -> ()
    | Fault.Crash ->
        d.stats.Stats.faults_crash <- d.stats.Stats.faults_crash + 1;
        if obs_on () then
          emit
            (Obs.Event.Tx_fault { kind = "crash"; point = Fault.point_name p });
        raise (Fault.Injected_crash { tid = d.tid; point = Fault.point_name p })
    | Fault.Hang ns ->
        d.stats.Stats.faults_hang <- d.stats.Stats.faults_hang + 1;
        if obs_on () then
          emit
            (Obs.Event.Tx_fault { kind = "hang"; point = Fault.point_name p });
        Fault.hang ~ns

  (* Bounded wait on a foreign lock (paper §3.1: "the transaction can try to
     wait for some time or abort immediately" — the paper picks immediate
     abort, our default; [conflict_wait] attempts enable the alternative).
     The wait must be bounded or two transactions blocked on each other's
     locks would deadlock.  Returns whether the lock was observed free. *)
  let rec wait_bounded t li attempts =
    if attempts <= 0 then false
    else begin
      R.yield ();
      if Lockenc.is_locked (R.get t.locks li) then
        wait_bounded t li (attempts - 1)
      else true
    end

  let wait_for_unlock t li = wait_bounded t li t.conflict_wait

  (* What to do about the foreign owner of lock [li].  Returns whether the
     lock was observed free (retry the barrier) — false means abort self.
     The [Backoff]/[Serialize] arm is exactly the historical behaviour; the
     kill-capable policies read both parties' published priorities, consult
     the pure decision table, and either flag the enemy for remote abort or
     wait for it, always with a bounded spin (an unbounded wait would
     deadlock two transactions blocked on each other's orecs, and a kill
     victim polls its flag only at barrier entry). *)
  let resolve_conflict t d li enemy =
    match d.eff_cm with
    | Cm.Backoff | Cm.Serialize _ -> wait_for_unlock t li
    | Cm.Suicide -> false
    | Cm.Karma | Cm.Greedy -> (
        let self_prio = R.get t.prios (flag_slot d.tid) in
        let enemy_prio = R.get t.prios (flag_slot enemy) in
        match
          Cm.on_enemy d.eff_cm ~self_prio ~enemy_prio ~self_tid:d.tid
            ~enemy_tid:enemy
        with
        | Cm.Abort_now -> false
        | Cm.Wait_retry -> wait_bounded t li Cm.wait_bound
        | Cm.Kill_enemy ->
            R.set t.kill_flags (flag_slot enemy) 1;
            wait_bounded t li Cm.wait_bound)

  (* Remote-abort poll: a kill-capable enemy flagged us; honour it at the
     next barrier entry (never while irrevocable — those run alone inside
     the fence and cannot be aborted). *)
  let check_killed t d =
    if t.cm_active && R.get t.kill_flags (flag_slot d.tid) <> 0 then begin
      R.set t.kill_flags (flag_slot d.tid) 0;
      abort Stats.Killed
    end

  (* Reading a version newer than the snapshot: extend (update transactions
     with a read set) or abort (read-only transactions cannot revalidate). *)
  let extend_or_abort t d =
    if d.read_only then abort Stats.Validation_failed
    else if not (extend t d) then abort Stats.Validation_failed

  (* ------------------------------------------------------------------ *)
  (* Read and write barriers (paper §3.1)                                *)
  (* ------------------------------------------------------------------ *)

  let mem_words t = V.words t.mem

  let rec read_word t d addr =
    R.charge_local c_op;
    if d.irrevocable then begin
      (* Serial slow path inside the fence: no concurrent transaction exists,
         memory is the truth. *)
      d.stats.Stats.reads <- d.stats.Stats.reads + 1;
      R.get (mem_words t) addr
    end
    else begin
    check_killed t d;
    (* The partition counter must be snapshotted *before* first sampling the
       lock: writers increment their counter right after a successful CAS,
       so an increment absorbed into a snapshot taken here means the
       matching acquisition already happened and our lock check below will
       see it (locked, or released with a new version).  Snapshotting after
       the check would let an acquire-and-increment slip in between, and
       validation would wrongly take the fast path. *)
    let part =
      if d.read_only then 0
      else if hier_enabled t then begin
        let i = Config.hier_index t.cfg addr in
        hier_touch_read t d addr i;
        i
      end
      else begin
        ignore (Hmask.add d.hmask_read 0);
        0
      end
    in
    let li = Config.lock_index t.cfg addr in
    let l1 = R.get t.locks li in
    if Lockenc.is_locked l1 then begin
      if Lockenc.owner l1 <> d.tid then
        if resolve_conflict t d li (Lockenc.owner l1) then read_word t d addr
        else abort Stats.Read_conflict
      else
      (* Read-after-write: we own the covering lock. *)
      match t.cfg.Config.strategy with
      | Config.Write_through ->
          (* Memory holds our latest value. *)
          d.stats.Stats.reads <- d.stats.Stats.reads + 1;
          R.get (mem_words t) addr
      | Config.Write_back ->
          (* Follow the lock's write-set chain; fall back to memory when the
             lock covers the address but we never wrote it (the committed
             value cannot change while we hold the lock). *)
          let rec find e =
            if e = 0 then R.get (mem_words t) addr
            else
              let k = e - 1 in
              if G.get d.w_addr k = addr then G.get d.w_val k
              else find (G.get d.w_next k)
          in
          d.stats.Stats.reads <- d.stats.Stats.reads + 1;
          find (Lockenc.payload l1)
    end
    else begin
      let v = R.get (mem_words t) addr in
      let l2 = R.get t.locks li in
      if l1 <> l2 then
        (* The lock changed under us (concurrent acquire/release or a
           write-through abort bumping the incarnation): retry. *)
        read_word t d addr
      else begin
        let ver = Lockenc.version l1 in
        if ver > d.rv then begin
          extend_or_abort t d;
          (* The snapshot moved forward: re-read so the value is covered. *)
          read_word t d addr
        end
        else begin
          if not d.read_only then begin
            let buf = d.r_set.(part) in
            G.push buf li;
            G.push buf ver
          end;
          if san_on () then San.read_accept ~cpu:d.tid ~addr;
          d.stats.Stats.reads <- d.stats.Stats.reads + 1;
          v
        end
      end
    end
    end

  let rec write_word t d addr v =
    R.charge_local c_op;
    if d.read_only then
      invalid_arg "Tinystm.write: transaction is read-only";
    if d.irrevocable then begin
      d.stats.Stats.writes <- d.stats.Stats.writes + 1;
      R.set (mem_words t) addr v
    end
    else begin
    check_killed t d;
    let li = Config.lock_index t.cfg addr in
    let l = R.get t.locks li in
    if Lockenc.is_locked l then begin
      if Lockenc.owner l <> d.tid then
        if resolve_conflict t d li (Lockenc.owner l) then write_word t d addr v
        else abort Stats.Write_conflict
      else begin
      (* Write-after-write under our own lock. *)
      (match t.cfg.Config.strategy with
      | Config.Write_through ->
          G.push d.u_addr addr;
          G.push d.u_val (R.get (mem_words t) addr);
          R.set (mem_words t) addr v
      | Config.Write_back -> (
          let rec find e =
            if e = 0 then None
            else
              let k = e - 1 in
              if G.get d.w_addr k = addr then Some k
              else find (G.get d.w_next k)
          in
          match find (Lockenc.payload l) with
          | Some k -> G.set d.w_val k v
          | None ->
              G.push d.w_addr addr;
              G.push d.w_val v;
              G.push d.w_next (Lockenc.payload l);
              R.set t.locks li
                (Lockenc.locked ~tid:d.tid ~payload:(G.length d.w_addr))));
      d.stats.Stats.writes <- d.stats.Stats.writes + 1
      end
    end
    else begin
      let ver = Lockenc.version l in
      if ver > d.rv then begin
        extend_or_abort t d;
        write_word t d addr v
      end
      else begin
        match t.cfg.Config.strategy with
        | Config.Write_back ->
            G.push d.w_addr addr;
            G.push d.w_val v;
            G.push d.w_next 0;
            if chaos_on () then chaos_point Chaos.Lock_cas;
            if
              R.cas t.locks li l
                (Lockenc.locked ~tid:d.tid ~payload:(G.length d.w_addr))
            then begin
              if san_on () then San.lock_acquire ~cpu:d.tid ~lock:li;
              if chaos_on () then chaos_point Chaos.Lock_cas;
              if obs_on () then emit (Obs.Event.Lock_acquire { lock = li });
              hier_note_acquired t d addr;
              G.push d.l_idx li;
              G.push d.l_old l;
              d.stats.Stats.writes <- d.stats.Stats.writes + 1
            end
            else begin
              (* Lost the acquisition race: retract the entry and retry the
                 whole procedure (the lock may now be owned or renewed). *)
              let n = G.length d.w_addr in
              G.shrink d.w_addr (n - 1);
              G.shrink d.w_val (n - 1);
              G.shrink d.w_next (n - 1);
              write_word t d addr v
            end
        | Config.Write_through ->
            if chaos_on () then chaos_point Chaos.Lock_cas;
            if R.cas t.locks li l (Lockenc.locked ~tid:d.tid ~payload:0) then begin
              if san_on () then San.lock_acquire ~cpu:d.tid ~lock:li;
              if chaos_on () then chaos_point Chaos.Lock_cas;
              if obs_on () then emit (Obs.Event.Lock_acquire { lock = li });
              hier_note_acquired t d addr;
              G.push d.l_idx li;
              G.push d.l_old l;
              G.push d.u_addr addr;
              G.push d.u_val (R.get (mem_words t) addr);
              R.set (mem_words t) addr v;
              d.stats.Stats.writes <- d.stats.Stats.writes + 1
            end
            else write_word t d addr v
      end
    end
    end

  (* ------------------------------------------------------------------ *)
  (* Transactional memory management (paper §3.1)                        *)
  (* ------------------------------------------------------------------ *)

  let alloc_words t d n =
    match V.alloc t.mem n with
    | addr ->
        G.push d.a_addr addr;
        G.push d.a_size n;
        addr
    | exception Out_of_memory ->
        (* Arena exhaustion (genuine or injected) mid-transaction: nothing
           was mutated by this failed call, so the rollback path frees any
           earlier speculative allocations and [live_words] cannot drift.
           Irrevocable transactions cannot be rolled back, so the failure
           escalates straight to the typed [Capacity] verdict. *)
        if obs_on () then
          emit (Obs.Event.Tx_fault { kind = "oom"; point = "alloc" });
        if d.irrevocable then
          raise (Intf.Capacity { stm = "tinystm"; retries = d.alloc_fails })
        else abort Stats.Alloc_failed

  (* A free is semantically an update: acquire every covering lock (by
     writing back the current values) so no concurrent reader can observe
     the block being recycled without a conflict. *)
  let free_words t d addr n =
    if not d.irrevocable then
      (* Lock every covered word so no concurrent reader can observe the
         block being recycled without a conflict; inside the fence there is
         no concurrency and the free is just deferred to the commit. *)
      for w = addr to addr + n - 1 do
        let v = read_word t d w in
        write_word t d w v
      done;
    G.push d.f_addr addr;
    G.push d.f_size n

  (* ------------------------------------------------------------------ *)
  (* Commit and rollback                                                 *)
  (* ------------------------------------------------------------------ *)

  let release_locks_commit t d wv =
    let n = G.length d.l_idx in
    let tracing = obs_on () in
    let sanning = san_on () in
    for k = 0 to n - 1 do
      R.set t.locks (G.get d.l_idx k)
        (Lockenc.unlocked ~version:wv ~incarnation:0);
      if sanning then San.lock_release ~cpu:d.tid ~lock:(G.get d.l_idx k);
      if tracing then emit (Obs.Event.Lock_release { lock = G.get d.l_idx k })
    done

  let release_locks_abort t d =
    let n = G.length d.l_idx in
    let tracing = obs_on () in
    let sanning = san_on () in
    let released k =
      if sanning then San.lock_release ~cpu:d.tid ~lock:(G.get d.l_idx k);
      if tracing then emit (Obs.Event.Lock_release { lock = G.get d.l_idx k })
    in
    match t.cfg.Config.strategy with
    | Config.Write_back ->
        (* Memory was never touched: restore the previous lock words. *)
        for k = 0 to n - 1 do
          R.set t.locks (G.get d.l_idx k) (G.get d.l_old k);
          released k
        done
    | Config.Write_through ->
        (* Memory was written and restored: bump the incarnation so a racing
           reader that sampled the lock before our acquisition cannot pass
           its lock/re-check (paper §3.1).  On incarnation overflow, take a
           fresh version from the clock. *)
        for k = 0 to n - 1 do
          let old = G.get d.l_old k in
          let inc = Lockenc.incarnation old + 1 in
          let word =
            if inc <= Lockenc.max_incarnation then
              Lockenc.unlocked ~version:(Lockenc.version old) ~incarnation:inc
            else
              Lockenc.unlocked ~version:(R.get t.ctl clock_slot) ~incarnation:0
          in
          R.set t.locks (G.get d.l_idx k) word;
          released k
        done

  let commit t d =
    R.charge_local c_tx_end;
    if G.length d.l_idx = 0 then begin
      (* No locks acquired: the incremental snapshot is consistent as-is. *)
      d.last_stamp <- d.rv;
      d.stats.Stats.commits <- d.stats.Stats.commits + 1;
      if d.read_only then
        d.stats.Stats.commits_read_only <- d.stats.Stats.commits_read_only + 1
    end
    else begin
      let wv = R.fetch_add t.ctl clock_slot 1 + 1 in
      if san_on () then San.clock_advance ~cpu:d.tid ~drawn:wv;
      if wv >= t.max_clock then abort Stats.Rollover;
      (* Validation is unnecessary when no other transaction committed since
         our snapshot bound (paper §3.2). *)
      if wv > d.rv + 1 then
        if not (validate t d) then abort Stats.Validation_failed;
      (match t.cfg.Config.strategy with
      | Config.Write_back ->
          let n = G.length d.w_addr in
          let words = mem_words t in
          for k = 0 to n - 1 do
            R.set words (G.get d.w_addr k) (G.get d.w_val k)
          done
      | Config.Write_through -> ());
      (* The snapshot-consistency check must see the write set still under
         lock, before any orec is released. *)
      if san_on () then San.commit_publish ~cpu:d.tid ~wv;
      release_locks_commit t d wv;
      (* Frees take effect only now that the locks carry the new version. *)
      let nf = G.length d.f_addr in
      for k = 0 to nf - 1 do
        V.free t.mem (G.get d.f_addr k) (G.get d.f_size k)
      done;
      d.last_stamp <- wv;
      d.stats.Stats.commits <- d.stats.Stats.commits + 1
    end;
    cleanup d;
    if san_on () then San.tx_exit ~cpu:d.tid ~committed:true

  let rollback ?record t d =
    (match t.cfg.Config.strategy with
    | Config.Write_back -> ()
    | Config.Write_through ->
        (* Undo in reverse order so earlier values win for rewritten words. *)
        let words = mem_words t in
        for k = G.length d.u_addr - 1 downto 0 do
          R.set words (G.get d.u_addr k) (G.get d.u_val k)
        done);
    (* Shadow state must be restored while the orecs still protect the
       written words, i.e. before the releases below. *)
    if san_on () then San.tx_abort ~cpu:d.tid;
    release_locks_abort t d;
    (* Allocations made by the aborted transaction are reclaimed; logged
       frees are dropped. *)
    let na = G.length d.a_addr in
    for k = 0 to na - 1 do
      V.free t.mem (G.get d.a_addr k) (G.get d.a_size k)
    done;
    (match record with
    | Some reason -> Stats.record_abort d.stats reason
    | None -> ());
    cleanup d;
    if san_on () then San.tx_exit ~cpu:d.tid ~committed:false

  (* ------------------------------------------------------------------ *)
  (* Transaction driver                                                  *)
  (* ------------------------------------------------------------------ *)

  (* Capped exponential back-off with deterministic per-transaction jitter:
     wait uniformly in [base/2, base] with base doubling per consecutive
     abort up to [Cm.backoff_cap].  The lower bound keeps a retry from
     re-colliding immediately; the cap keeps the worst-case wait bounded so
     the retry watchdog, not the back-off, decides when to escalate.  The
     formula lives in [Tstm_cm] (shared with TL2 and regression-tested for
     shift overflow and replay stability). *)
  let backoff d attempts =
    let n = Cm.backoff_cycles ~rng:d.rng ~attempts in
    d.stats.Stats.backoff_cycles <- d.stats.Stats.backoff_cycles + n;
    R.charge n;
    if not R.is_simulated then
      for _ = 1 to n / 8 do
        R.yield ()
      done

  (* Watchdog plumbing: feed commit/abort heartbeats, surface its detection
     events through observability and count forced policy switches.  All
     plain OCaml when tracing is off; never reached with [watchdog = None]. *)
  let feed_watchdog d evs =
    List.iter
      (fun ev ->
        (match ev with
        | Watchdog.Switch _ ->
            d.stats.Stats.cm_switches <- d.stats.Stats.cm_switches + 1
        | Watchdog.Livelock _ | Watchdog.Starved _ -> ());
        if obs_on () then
          emit
            (match ev with
            | Watchdog.Livelock { window } -> Obs.Event.Tx_livelock { window }
            | Watchdog.Starved { retries; _ } ->
                Obs.Event.Tx_starved { retries }
            | Watchdog.Switch { level } ->
                Obs.Event.Cm_switch { level = Watchdog.level_to_string level }))
      evs

  let note_commit_wd t d =
    match t.watchdog with
    | None -> ()
    | Some w ->
        feed_watchdog d (Watchdog.note_commit w ~now:(R.now_cycles ()) ~tid:d.tid)

  let note_abort_wd t d ~retries =
    match t.watchdog with
    | None -> ()
    | Some w ->
        feed_watchdog d
          (Watchdog.note_abort w ~now:(R.now_cycles ()) ~tid:d.tid ~retries)

  (* Per-attempt contention-management prologue: compute the effective
     policy (the watchdog's [Boosted] level forces a kill-capable policy),
     drop any stale remote-kill flag, and publish this attempt's priority.
     On the default path this is two plain reads and a field write. *)
  let cm_begin_attempt t d =
    d.eff_cm <-
      (match t.watchdog with
      | None -> t.cm
      | Some w -> (
          match Watchdog.level w with
          | Watchdog.Boosted -> if Cm.can_kill t.cm then t.cm else Cm.Karma
          | Watchdog.Normal | Watchdog.Serialized -> t.cm));
    if t.cm_active then begin
      R.set t.kill_flags (flag_slot d.tid) 0;
      if Cm.needs_prio d.eff_cm then begin
        let p =
          match d.eff_cm with
          | Cm.Greedy ->
              (* Seniority ticket, drawn once and kept across aborts. *)
              if d.ticket = 0 then
                d.ticket <- R.fetch_add t.prios 0 1 + 1;
              d.ticket
          | _ ->
              (* Karma: work invested since the last commit, aborted
                 attempts included; [+ 1] keeps live publications nonzero. *)
              d.stats.Stats.reads + d.stats.Stats.writes - d.work0 + 1
        in
        R.set t.prios (flag_slot d.tid) p
      end
    end

  (* Commit-side epilogue: retire the published priority and ticket, reset
     the karma base.  Plain field writes plus (when armed) one shared
     store. *)
  let cm_end_commit t d =
    d.work0 <- d.stats.Stats.reads + d.stats.Stats.writes;
    d.ticket <- 0;
    if t.cm_active && Cm.needs_prio d.eff_cm then
      R.set t.prios (flag_slot d.tid) 0

  let atomically_stamped ?(read_only = false) t f =
    let d = desc_for t in
    if d.in_tx then invalid_arg "Tinystm.atomically: nested transaction";
    d.alloc_fails <- 0;
    let rec attempt tries =
      let forced_serial =
        match t.watchdog with
        | None -> false
        | Some w -> Watchdog.level w = Watchdog.Serialized
      in
      if forced_serial || (t.max_retries > 0 && tries >= t.max_retries) then
        escalate tries
      else begin
      enter_fence t d;
      if
        d.h_dim <> t.cfg.Config.hierarchy
        || d.h2_dim <> t.cfg.Config.hierarchy2
      then fresh_hier_state d t.cfg.Config.hierarchy t.cfg.Config.hierarchy2;
      R.charge_local c_tx_begin;
      d.in_tx <- true;
      d.read_only <- read_only;
      cm_begin_attempt t d;
      if chaos_on () then chaos_point Chaos.Clock_read;
      d.rv <- R.get t.ctl clock_slot;
      if san_on () then begin
        San.tx_begin ~cpu:d.tid;
        San.clock_read ~cpu:d.tid ~value:d.rv
      end;
      if d.rv >= t.max_clock - 1 then begin
        d.in_tx <- false;
        if san_on () then San.tx_exit ~cpu:d.tid ~committed:false;
        leave_fence t d;
        do_rollover t;
        attempt tries
      end
      else begin
        if obs_on () then begin
          d.obs_start <- R.now_cycles ();
          d.obs_reads0 <- d.stats.Stats.reads;
          d.obs_writes0 <- d.stats.Stats.writes;
          emit Obs.Event.Tx_begin
        end;
        match
          (* Fault taps live inside this match so an injected crash unwinds
             through the user-exception branch below: rollback, fence
             release, [in_tx] cleared — the respawned worker can transact
             again. *)
          if fault_on () then fault_point d Fault.Clock_read;
          let v = f d in
          if fault_on () then fault_point d Fault.Commit;
          commit t d;
          v
        with
        | v ->
            if obs_on () then begin
              let lat = R.now_cycles () - d.obs_start in
              let reads = d.stats.Stats.reads - d.obs_reads0 in
              let writes = d.stats.Stats.writes - d.obs_writes0 in
              emit
                (Obs.Event.Tx_commit
                   { read_only; reads; writes; retries = tries });
              Obs.Sink.note_commit ~lat ~retries:tries ~reads ~writes
            end;
            Stats.record_retries d.stats tries;
            cm_end_commit t d;
            note_commit_wd t d;
            leave_fence t d;
            (v, d.last_stamp)
        | exception Abort_exn reason ->
            if obs_on () then begin
              let lat = R.now_cycles () - d.obs_start in
              emit
                (Obs.Event.Tx_abort
                   {
                     reason = Stats.abort_reason_to_string reason;
                     retries = tries;
                   });
              Obs.Sink.note_abort ~lat
            end;
            rollback ~record:reason t d;
            leave_fence t d;
            if chaos_on () then chaos_point Chaos.Abort;
            if fault_on () then fault_point d Fault.Abort;
            (* Allocation-failed aborts are capped: after
               [max_alloc_retries] consecutive failures the arena is
               genuinely full and retrying cannot help, so escalate to the
               typed [Capacity] verdict (shared state is already rolled
               back and consistent at this point). *)
            if reason = Stats.Alloc_failed then begin
              d.alloc_fails <- d.alloc_fails + 1;
              if d.alloc_fails >= max_alloc_retries then
                raise
                  (Intf.Capacity { stm = "tinystm"; retries = d.alloc_fails })
            end
            else d.alloc_fails <- 0;
            note_abort_wd t d ~retries:(tries + 1);
            if reason = Stats.Rollover then do_rollover t
            else if Cm.delay_after_abort d.eff_cm then backoff d tries;
            attempt (tries + 1)
        | exception e ->
            (* A user exception aborts the transaction and propagates. *)
            rollback t d;
            leave_fence t d;
            raise e
      end
      end
    (* Retry budget exhausted: re-run the transaction serially and
       irrevocably inside the quiescence fence.  No transaction is in
       flight once the fence is held, so the body reads and writes memory
       directly, acquires no locks, and cannot abort â pathological
       workloads degrade to serial execution instead of livelocking. *)
    and escalate tries =
      d.stats.Stats.escalations <- d.stats.Stats.escalations + 1;
      if obs_on () then emit (Obs.Event.Tx_escalate { retries = tries });
      (* The serial-irrevocable path cannot be rolled back, so injected
         faults are masked for its duration (the mask is per-thread and
         depth-counted; [Fun.protect] guarantees the unmask even when the
         body raises). *)
      Fault.mask ~tid:d.tid;
      Fun.protect ~finally:(fun () -> Fault.unmask ~tid:d.tid) @@ fun () ->
      fence_and t (fun () ->
          R.charge_local c_tx_begin;
          d.in_tx <- true;
          d.read_only <- read_only;
          d.irrevocable <- true;
          if san_on () then San.tx_begin ~cpu:d.tid;
          if obs_on () then begin
            d.obs_start <- R.now_cycles ();
            d.obs_reads0 <- d.stats.Stats.reads;
            d.obs_writes0 <- d.stats.Stats.writes;
            emit Obs.Event.Tx_begin
          end;
          match f d with
          | v ->
              R.charge_local c_tx_end;
              (* Serialization stamp.  A clock wrap is handled inline: we
                 already own a quiescent instance, which is all
                 [do_rollover] exists to establish. *)
              let wv =
                let wv = R.fetch_add t.ctl clock_slot 1 + 1 in
                if wv < t.max_clock then wv
                else begin
                  R.set t.ctl clock_slot 0;
                  for i = 0 to R.sarray_length t.locks - 1 do
                    R.set t.locks i 0
                  done;
                  for i = 0 to R.sarray_length t.hier - 1 do
                    R.set t.hier i 0
                  done;
                  for i = 0 to R.sarray_length t.hier2 - 1 do
                    R.set t.hier2 i 0
                  done;
                  ignore (R.fetch_add t.ctl rollover_slot 1);
                  if san_on () then San.rollover ~cpu:d.tid;
                  if obs_on () then emit Obs.Event.Clock_rollover;
                  R.fetch_add t.ctl clock_slot 1 + 1
                end
              in
              if san_on () then begin
                San.clock_advance ~cpu:d.tid ~drawn:wv;
                San.commit_publish ~cpu:d.tid ~wv
              end;
              let nf = G.length d.f_addr in
              for k = 0 to nf - 1 do
                V.free t.mem (G.get d.f_addr k) (G.get d.f_size k)
              done;
              d.last_stamp <- wv;
              d.stats.Stats.commits <- d.stats.Stats.commits + 1;
              if read_only then
                d.stats.Stats.commits_read_only <-
                  d.stats.Stats.commits_read_only + 1;
              if obs_on () then begin
                let lat = R.now_cycles () - d.obs_start in
                let reads = d.stats.Stats.reads - d.obs_reads0 in
                let writes = d.stats.Stats.writes - d.obs_writes0 in
                emit
                  (Obs.Event.Tx_commit
                     { read_only; reads; writes; retries = tries });
                Obs.Sink.note_commit ~lat ~retries:tries ~reads ~writes
              end;
              Stats.record_retries d.stats tries;
              cm_end_commit t d;
              note_commit_wd t d;
              d.irrevocable <- false;
              cleanup d;
              if san_on () then San.tx_exit ~cpu:d.tid ~committed:true;
              (v, wv)
          | exception e ->
              (* Irrevocable means exactly that: direct writes stay.  The
                 caller chose to run side-effecting code to completion; an
                 exception still releases the fence and propagates. *)
              d.irrevocable <- false;
              (* The stayed writes never published a version; restoring
                 their shadow to the previous life keeps later accesses
                 judged against a committed state. *)
              if san_on () then begin
                San.tx_abort ~cpu:d.tid;
                San.tx_exit ~cpu:d.tid ~committed:false
              end;
              cleanup d;
              raise e)
    in
    attempt 0

  let atomically ?read_only t f = fst (atomically_stamped ?read_only t f)

  (* ------------------------------------------------------------------ *)
  (* Public TM operations                                                *)
  (* ------------------------------------------------------------------ *)

  let read tx addr = read_word tx.owner tx addr
  let write tx addr v = write_word tx.owner tx addr v
  let alloc tx n = alloc_words tx.owner tx n
  let free tx addr n = free_words tx.owner tx addr n

  let stats t =
    let agg = Stats.create () in
    Array.iter
      (function Some d -> Stats.add_into ~dst:agg d.stats | None -> ())
      t.descs;
    agg

  let reset_stats t =
    Array.iter (function Some d -> Stats.reset d.stats | None -> ()) t.descs
end
