(** TINYSTM — word-based, time-based software transactional memory
    (paper §3), parameterised over the execution runtime.

    The implementation follows the paper's single-version, word-based LSA
    variant: encounter-time locking, invisible reads with incremental
    snapshot extension, a shared-counter global clock with roll-over, both
    write-back and write-through access strategies (selected per instance via
    {!Config.strategy}), transactional memory management, and the
    hierarchical-locking validation fast path of §3.2.

    One deliberate deviation, documented in DESIGN.md: hierarchical counters
    are incremented once per *lock acquisition* rather than once per
    transaction per partition.  The paper's once-per-transaction scheme lets
    a validator skip a partition in which the same transaction later acquired
    a second lock, which can miss a conflict; per-acquisition increments make
    the fast path sound while preserving the tuning trade-off. *)

module Lockenc : module type of Lockenc
module Config : module type of Config
module Hmask : module type of Hmask

module Make (R : Tstm_runtime.Runtime_intf.S) : sig
  module V : module type of Tstm_vmm.Vmm.Make (R)

  type t
  type tx

  val create :
    ?config:Config.t ->
    ?max_threads:int ->
    ?max_clock:int ->
    ?conflict_wait:int ->
    ?max_retries:int ->
    ?cm:Tstm_cm.Cm.policy ->
    ?watchdog:Tstm_runtime.Watchdog.t ->
    memory_words:int ->
    unit ->
    t
  (** Build an STM instance over a fresh memory arena.  [max_clock] (default:
      effectively unbounded) forces the clock roll-over mechanism when the
      global clock reaches it — tests use small values to exercise
      roll-over.  [conflict_wait] (default 0) is the number of bounded
      re-check attempts on encountering a foreign lock before aborting —
      paper §3.1 offers "wait for some time or abort immediately" and picks
      immediate abort, which is our default too.  [max_retries] (default 0 =
      never) is the retry budget: a transaction aborted that many times in a
      row escalates to a serial-irrevocable execution inside the quiescence
      fence — it runs alone, cannot abort, and counts as an escalation in
      {!Tstm_tm.Tm_stats}, so pathological workloads degrade to serial
      execution instead of livelocking.  [cm] (default
      {!Tstm_cm.Cm.default} = [Backoff], byte-identical to the historical
      behaviour) picks the contention-management policy; [Serialize n]
      additionally tightens the retry budget to [n].  [watchdog] arms the
      progress watchdog: commit/abort heartbeats feed it and its degradation
      level overrides [cm] ([Boosted] forces a kill-capable policy,
      [Serialized] forces immediate irrevocable escalation). *)

  val memory : t -> V.t
  (** The underlying word memory (for population and inspection). *)

  val config : t -> Config.t

  val set_config : t -> Config.t -> unit
  (** Re-tune the instance: suspends new transactions, waits for active ones
      to finish (the same quiescence fence as clock roll-over, paper §4.2),
      installs fresh lock/hierarchy arrays, resets the clock, and resumes.
      Must be called outside a transaction; concurrent transactions on other
      threads are safe. *)

  val clock_value : t -> int
  (** Current global clock (diagnostic). *)

  val rollovers : t -> int
  (** Number of clock roll-overs performed so far. *)

  (** {1 The TM interface} *)

  val name : string

  val read : tx -> int -> int
  val write : tx -> int -> int -> unit
  val alloc : tx -> int -> int
  val free : tx -> int -> int -> unit
  val atomically : ?read_only:bool -> t -> (tx -> 'a) -> 'a

  val atomically_stamped : ?read_only:bool -> t -> (tx -> 'a) -> 'a * int
  (** Like {!atomically}, and also returns the transaction's serialization
      timestamp: the commit version [wv] for transactions that acquired
      locks (unique per update), or the snapshot bound [rv] for lock-free
      transactions (which observed exactly the state left by every update
      with timestamp [<= rv]).  Sorting a concurrent history by
      [(timestamp, updates-before-reads)] therefore yields an equivalent
      serial execution — the property the serializability tests replay. *)

  val stats : t -> Tstm_tm.Tm_stats.t
  val reset_stats : t -> unit
end
