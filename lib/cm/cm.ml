(* Contention-management policies as pure decision tables.

   Everything here is a total function of plain integers: the STMs own the
   shared-memory plumbing (priority slots, kill flags, bounded spins) and
   consult these tables at each conflict site.  Keeping the decisions pure
   is what makes the policy × site matrix unit-testable without a runtime
   (see test_cm in test_robustness.ml). *)

type policy = Suicide | Backoff | Karma | Greedy | Serialize of int

let default = Backoff

type action = Abort_now | Wait_retry | Kill_enemy

(* Karma: the transaction that has invested more work wins; the loser is
   cheaper to re-execute.  Ties must break deterministically on something
   that differs between the two parties (the tid), otherwise two
   transactions with equal priorities would kill each other forever —
   exactly the symmetric livelock the policy exists to break.

   Greedy: smaller ticket = older = winner (Guerraoui et al.'s Greedy
   manager: seniority is stable across the loser's aborts, so the global
   oldest transaction always wins every conflict and the system makes
   progress).  A zero enemy ticket means the enemy published nothing —
   it is completing or idle, so its lock is about to go; wait for it. *)
let on_enemy p ~self_prio ~enemy_prio ~self_tid ~enemy_tid =
  match p with
  | Suicide -> Abort_now
  | Backoff | Serialize _ -> Wait_retry
  | Karma ->
      if
        self_prio > enemy_prio
        || (self_prio = enemy_prio && self_tid < enemy_tid)
      then Kill_enemy
      else Wait_retry
  | Greedy ->
      if enemy_prio = 0 then Wait_retry
      else if
        self_prio < enemy_prio
        || (self_prio = enemy_prio && self_tid < enemy_tid)
      then Kill_enemy
      else Wait_retry

(* The capped exponential back-off both STMs have used since the chaos PR:
   base doubles per consecutive abort up to the cap, the wait is uniform in
   [base/2, base] with deterministic per-transaction jitter.  The inner
   [min attempts 16] bounds the shift: without it, [16 lsl attempts]
   overflows at attempts >= 59 and the "wait" would go negative. *)
let backoff_cap = 4096

let backoff_cycles ~rng ~attempts =
  let base = min backoff_cap (16 lsl min attempts 16) in
  (base / 2) + Tstm_util.Xrand.int rng ((base / 2) + 1)

let delay_after_abort = function Suicide -> false | _ -> true

let effective_max_retries p max_retries =
  match p with
  | Serialize n -> if max_retries = 0 then n else min n max_retries
  | _ -> max_retries

let needs_prio = function Karma | Greedy -> true | _ -> false
let can_kill = needs_prio

(* Bounded spin budget for Wait_retry / Kill_enemy.  Must be finite (two
   transactions blocked on each other's orecs would otherwise deadlock, and
   a kill victim may be irrevocable and unkillable); large enough to cover
   a committing enemy's lock hold time in the simulator. *)
let wait_bound = 64

(* ------------------------------------------------------------------ *)
(* Name registry (mirrors Tstm_tm.Registry: ordered entries, aliases)  *)
(* ------------------------------------------------------------------ *)

type entry = {
  name : string;
  aliases : string list;
  doc : string;
  parse : string option -> (policy, string) result;
}

let serialize_default = 8

let entries =
  [
    {
      name = "backoff";
      aliases = [ "timid" ];
      doc = "bounded wait, then abort self with capped exponential backoff \
             (default)";
      parse = (fun _ -> Ok Backoff);
    };
    {
      name = "suicide";
      aliases = [];
      doc = "abort self immediately, retry with no backoff";
      parse = (fun _ -> Ok Suicide);
    };
    {
      name = "karma";
      aliases = [];
      doc = "priority from work done; richer kills poorer (ties: lower tid)";
      parse = (fun _ -> Ok Karma);
    };
    {
      name = "greedy";
      aliases = [];
      doc = "ticket-timestamp seniority; older kills younger, younger waits";
      parse = (fun _ -> Ok Greedy);
    };
    {
      name = "serialize";
      aliases = [];
      doc = "backoff, escalating to serial-irrevocable after N aborts \
             (serialize:N, default 8)";
      parse =
        (fun arg ->
          match arg with
          | None -> Ok (Serialize serialize_default)
          | Some a -> (
              match int_of_string_opt a with
              | Some n when n >= 1 -> Ok (Serialize n)
              | _ ->
                  Error
                    (Printf.sprintf
                       "serialize:%s: threshold must be a positive integer" a)));
    };
  ]

let names () = List.map (fun e -> e.name) entries

let entry_of name =
  List.find_opt
    (fun e -> String.equal e.name name || List.mem name e.aliases)
    entries

let unknown name =
  Error
    (Printf.sprintf "unknown contention manager %S (known: %s)" name
       (String.concat ", " (names ())))

let of_string s =
  let base, arg =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  match entry_of base with None -> unknown base | Some e -> e.parse arg

let mem s = match of_string s with Ok _ -> true | Error _ -> false

let to_string = function
  | Suicide -> "suicide"
  | Backoff -> "backoff"
  | Karma -> "karma"
  | Greedy -> "greedy"
  | Serialize n -> Printf.sprintf "serialize:%d" n

let describe name =
  match entry_of name with
  | Some e -> e.doc
  | None -> invalid_arg (Printf.sprintf "unknown contention manager %S" name)
