(** Pluggable contention management: pure decision tables resolved by name.

    The paper (§3.1) leaves contention management as a modular hook and
    evaluates only timid abort-and-backoff; this module packages that hook
    as data.  A {!policy} is a pure value; every decision function here is
    a total function of integers, so the policies are unit-testable in
    isolation and the STMs only supply the shared-memory plumbing (priority
    publication, kill flags, bounded spins).

    Policies are resolved by name through a small registry mirroring
    {!Tstm_tm.Registry}: canonical names, aliases, and an argument syntax
    [name:arg] for parameterised policies ([serialize:8]). *)

(** The shipped policies.

    - [Suicide]: abort self immediately on any conflict, retry with no
      back-off.  The most aggressive timid policy; livelocks under
      symmetric contention.
    - [Backoff]: the repository's historical default — bounded wait on a
      foreign lock ([conflict_wait] attempts), then abort self and retry
      after capped exponential back-off with deterministic jitter.
    - [Karma]: priority accumulated from work done (reads + writes since
      the last commit, kept across aborts).  The richer transaction kills
      the poorer one (remote-abort flag plus a bounded spin for the orec);
      the poorer one waits briefly, then aborts itself.
    - [Greedy]: timestamp seniority.  Every transaction draws a ticket at
      first begin and keeps it across aborts; older kills younger, younger
      waits for older.
    - [Serialize n]: like [Backoff], but escalate to serial-irrevocable
      execution after [n] consecutive aborts — a generalisation of the
      [max_retries] escalation budget. *)
type policy = Suicide | Backoff | Karma | Greedy | Serialize of int

val default : policy
(** [Backoff] — byte-identical to the pre-CM behaviour of both STMs. *)

(** What a transaction should do about an enemy that holds a lock it
    needs.  [Wait_retry] bounds the wait (an unbounded wait deadlocks two
    transactions blocked on each other's orecs) and aborts self on
    expiry. *)
type action =
  | Abort_now  (** abort self immediately, no delay before the retry *)
  | Wait_retry  (** bounded spin for the enemy's release, else abort self *)
  | Kill_enemy
      (** flag the enemy for remote abort, bounded spin for the release *)

val on_enemy :
  policy ->
  self_prio:int ->
  enemy_prio:int ->
  self_tid:int ->
  enemy_tid:int ->
  action
(** The conflict decision table.  Priorities are policy-specific: karma
    work for [Karma] (ties break toward the lower tid, which is what makes
    symmetric livelocks impossible), ticket timestamps for [Greedy]
    (smaller = older = winner; [enemy_prio = 0] means the enemy published
    no ticket — treat it as completing and wait).  [Suicide] always aborts;
    [Backoff]/[Serialize] always wait-then-abort. *)

val backoff_cycles : rng:Tstm_util.Xrand.t -> attempts:int -> int
(** The shared capped exponential back-off formula of both STMs:
    [base = min 4096 (16 lsl min attempts 16)], result uniform in
    [\[base/2, base\]] with deterministic jitter from [rng].  The inner
    [min] keeps the shift bounded, so the result never overflows however
    large [attempts] grows; see the regression test in
    [test_robustness.ml]. *)

val backoff_cap : int
(** Upper bound of {!backoff_cycles} (4096). *)

val delay_after_abort : policy -> bool
(** Whether the policy backs off after aborting itself ([Suicide] is the
    only policy that retries immediately). *)

val effective_max_retries : policy -> int -> int
(** [effective_max_retries p max_retries] folds a [Serialize n] threshold
    into the instance's escalation budget: the escalation fires at
    whichever bound is tighter ([n] when [max_retries = 0]).  Other
    policies return [max_retries] unchanged. *)

val needs_prio : policy -> bool
(** Whether the policy publishes per-thread priorities ([Karma],
    [Greedy]); when false the STM touches no extra shared state. *)

val can_kill : policy -> bool
(** Whether {!on_enemy} can return [Kill_enemy], i.e. whether victims must
    poll their kill flag ([Karma], [Greedy]). *)

val wait_bound : int
(** Bounded-spin budget (yields) for [Wait_retry]/[Kill_enemy] spins. *)

(** {1 Name registry} *)

val of_string : string -> (policy, string) result
(** Resolve a policy name or alias, with an optional [:arg] suffix for
    parameterised policies (e.g. ["karma"], ["serialize:8"]).  The error
    message lists the known names. *)

val to_string : policy -> string
(** Canonical rendering, parseable by {!of_string}
    (e.g. [Serialize 8] -> ["serialize:8"]). *)

val names : unit -> string list
(** Canonical policy names in registration (= presentation) order. *)

val mem : string -> bool
(** Whether {!of_string} would succeed. *)

val describe : string -> string
(** One-line description of a registered policy name; raises
    [Invalid_argument] for unknown names. *)
