(** Seeded, count-capped fault injection for real-domain runs.

    The real-hardware sibling of {!Tstm_chaos.Chaos}: worker-domain
    crashes (a distinguished exception raised at STM linearization-point
    taps), bounded worker hangs (wall-clock spins that let the pool
    monitor's heartbeat go stale), and probabilistic [Vmm.alloc]
    [Out_of_memory] injection.

    {b Replay discipline.}  Chaos draws from one RNG stream, which is only
    sound single-threaded.  Here every decision is a stateless hash of
    (seed, tid, per-tid decision index): thread [t]'s [k]-th consultation
    draws the same value in every run, independent of interleaving.  Only
    {e fired} injections claim a slot (one CAS) against [limit], so the
    cap is exact under concurrency, and capping a run at a previous run's
    {!fired} count bounds the replay to that run's injection schedule —
    the same per-thread decisions and the same total fault count, which is
    as much determinism as wall-clock interleaving admits.

    The plan is process-global, like chaos and the obs sink; every
    consultation is guarded by the one boolean load of {!enabled}, so a
    disarmed plan leaves real-domain runs byte-identical. *)

(** Linearization points where crash/hang faults may fire (mirrors
    {!Tstm_chaos.Chaos.point}). *)
type point = Lock_cas | Clock_read | Clock_inc | Commit | Abort

val point_name : point -> string

type kind = Crash | Hang | Oom

val kind_name : kind -> string
val kind_of_string : string -> kind option

exception Injected_crash of { tid : int; point : string }
(** The worker-death model: raised from inside a transaction, it unwinds
    through the STM's user-exception path (full rollback: locks released,
    speculative allocations freed) and kills the worker's job, leaving
    shared STM state consistent.  [Runtime_real.run_healed] treats it as a
    dead worker and respawns-and-requeues. *)

type config = {
  crash_pct : float;  (** chance a linearization-point visit crashes *)
  hang_pct : float;  (** chance a linearization-point visit stalls *)
  hang_us : int;  (** upper bound of one injected stall, microseconds *)
  oom_pct : float;  (** chance a [Vmm.alloc] fails with [Out_of_memory] *)
}

val default : config
(** crash 0.5% / hang 0.2% (up to 2ms) / oom 1% per consultation. *)

val enabled : unit -> bool
(** One boolean load; the only cost when disarmed. *)

val activate : ?config:config -> ?limit:int -> seed:int -> unit -> unit
(** Arm a fresh plan (resets masks, heartbeats and counters).  [limit]
    caps the total number of fired injections (default: unlimited).
    Raises [Invalid_argument] on out-of-range percentages. *)

val deactivate : unit -> unit

val with_plan : ?config:config -> ?limit:int -> seed:int -> (unit -> 'a) -> 'a
(** [activate], run, always [deactivate]. *)

(** Decision of one crash/hang consultation. *)
type outcome = Proceed | Crash | Hang of int  (** stall length, ns *)

val at_point : tid:int -> point -> outcome
(** One consultation at a linearization point.  Ticks the tid's heartbeat,
    never raises; the caller records stats/obs and then raises
    {!Injected_crash} or calls {!hang} itself. *)

val oom : tid:int -> bool
(** One allocation-failure consultation ([Vmm.alloc] entry); [true] means
    the caller should raise [Out_of_memory] before touching any allocator
    state. *)

val hang : ns:int -> unit
(** Spin for [ns] wall-clock nanoseconds {e without} ticking the heartbeat
    (so the pool monitor can detect the stall). *)

val mask : tid:int -> unit
(** Suspend injection for [tid] (nestable).  Used around the STMs'
    serial-irrevocable escalations, where a fault could not be rolled
    back. *)

val unmask : tid:int -> unit

val tick : tid:int -> unit
(** Stamp [tid]'s heartbeat with the current monotonic time.  Every armed
    consultation ticks implicitly; pool workers tick once at job start. *)

val last_tick : tid:int -> int
(** Monotonic ns of [tid]'s last heartbeat, or [-1] if never ticked. *)

val clear_ticks : unit -> unit

val seed : unit -> int option
val fired : unit -> int
val decisions : unit -> int
val fired_kind : kind -> int
val summary : unit -> string
