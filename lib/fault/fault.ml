(* Seeded, count-capped fault plan for real-domain runs.

   The chaos engine ([Tstm_chaos]) perturbs the *simulated* schedule and
   draws every decision from one SplitMix64 stream — safe only because the
   simulator is single-threaded under the hood.  This plan is its
   real-hardware sibling: decisions are made concurrently from many
   domains, so the single stream is replaced by a stateless hash of
   (seed, tid, per-tid decision index).  Thread t's k-th consultation
   always draws the same value regardless of interleaving, and the global
   fired count is claimed with a CAS against [limit], which preserves the
   chaos replay discipline in the only form real time allows: the same
   (seed, config, limit) triple produces the same per-thread decision
   sequences and exactly the same *number* of fired injections; capping
   [limit] at a previous run's [fired ()] bounds a replay to that run's
   schedule even though wall-clock interleaving is not reproducible.

   Everything is guarded behind the single boolean load of [enabled ()]:
   a disarmed plan costs one branch on the STM hot paths, keeping `bench
   real` snapshots byte-identical to a build without fault taps. *)

module Mono = Tstm_obs.Monotonic
module Bitops = Tstm_util.Bitops

type point = Lock_cas | Clock_read | Clock_inc | Commit | Abort

let point_name = function
  | Lock_cas -> "lock-cas"
  | Clock_read -> "clock-read"
  | Clock_inc -> "clock-inc"
  | Commit -> "commit"
  | Abort -> "abort"

type kind = Crash | Hang | Oom

let kind_index = function Crash -> 0 | Hang -> 1 | Oom -> 2
let n_kinds = 3
let kind_name = function Crash -> "crash" | Hang -> "hang" | Oom -> "oom"

let kind_of_string = function
  | "crash" -> Some Crash
  | "hang" -> Some Hang
  | "oom" -> Some Oom
  | _ -> None

exception Injected_crash of { tid : int; point : string }

let () =
  Printexc.register_printer (function
    | Injected_crash { tid; point } ->
        Some
          (Printf.sprintf "injected worker crash (tid %d, %s point)" tid point)
    | _ -> None)

type config = {
  crash_pct : float;  (** chance a linearization-point visit crashes *)
  hang_pct : float;  (** chance a linearization-point visit stalls *)
  hang_us : int;  (** upper bound of one injected stall, microseconds *)
  oom_pct : float;  (** chance a [Vmm.alloc] fails with [Out_of_memory] *)
}

let default = { crash_pct = 0.5; hang_pct = 0.2; hang_us = 2_000; oom_pct = 1.0 }

let validate cfg =
  let pct name v =
    if v < 0.0 || v > 100.0 then
      invalid_arg (Printf.sprintf "Fault: %s outside [0, 100]" name)
  in
  pct "crash_pct" cfg.crash_pct;
  pct "hang_pct" cfg.hang_pct;
  pct "oom_pct" cfg.oom_pct;
  if cfg.crash_pct +. cfg.hang_pct > 100.0 then
    invalid_arg "Fault: crash_pct + hang_pct > 100";
  if cfg.hang_us < 1 then invalid_arg "Fault: hang_us < 1"

(* Matches the STMs' max_threads ceiling (TinySTM's lock encoding caps
   tids at 127) and [Watchdog.max_cpus]. *)
let max_tids = 128

type plan = {
  seed : int;
  cfg : config;
  limit : int;
  fired : int Atomic.t;
  decisions : int Atomic.t array;  (* per-tid consultation counters *)
  fired_kind : int Atomic.t array;  (* per-kind fired counts *)
}

let state : plan option ref = ref None
let on = ref false
let enabled () = !on

(* Per-tid suspension depth: consultations report [Proceed] while the
   tid's depth is positive.  The STMs mask their serial-irrevocable
   escalations — a crash there would leave direct writes half-applied and
   an injected allocation failure could not be rolled back. *)
let masks = Array.init max_tids (fun _ -> Atomic.make 0)

(* Per-tid heartbeat: monotonic nanoseconds of the last consultation (or
   explicit [tick]).  Independent of the armed plan so the pool monitor
   can read stale beats even while a worker is mid-hang. *)
let ticks = Array.init max_tids (fun _ -> Atomic.make (-1))

let tick ~tid = Atomic.set ticks.(tid land (max_tids - 1)) (Mono.now_ns ())
let last_tick ~tid = Atomic.get ticks.(tid land (max_tids - 1))

let clear_ticks () =
  Array.iter (fun t -> Atomic.set t (-1)) ticks

let mask ~tid = ignore (Atomic.fetch_and_add masks.(tid land (max_tids - 1)) 1)

let unmask ~tid =
  let m = masks.(tid land (max_tids - 1)) in
  if Atomic.fetch_and_add m (-1) <= 0 then ignore (Atomic.fetch_and_add m 1)

let masked ~tid = Atomic.get masks.(tid land (max_tids - 1)) > 0

let activate ?(config = default) ?limit ~seed () =
  validate config;
  let limit = match limit with None -> max_int | Some l -> max 0 l in
  Array.iter (fun m -> Atomic.set m 0) masks;
  clear_ticks ();
  state :=
    Some
      {
        seed;
        cfg = config;
        limit;
        fired = Atomic.make 0;
        decisions = Array.init max_tids (fun _ -> Atomic.make 0);
        fired_kind = Array.init n_kinds (fun _ -> Atomic.make 0);
      };
  on := true

let deactivate () =
  on := false;
  state := None

let with_plan ?config ?limit ~seed f =
  activate ?config ?limit ~seed ();
  Fun.protect ~finally:deactivate f

(* One stateless draw: thread [tid]'s [idx]-th consultation.  Two rounds
   of the Stafford mix give independent-looking streams per tid. *)
let draw p ~tid ~idx =
  Bitops.mix (Bitops.mix (p.seed + ((tid + 1) * 1_000_003)) lxor idx)

let unit_of_hash h = float_of_int ((h lsr 13) land 0xFFFFF) /. 1_048_576.0

(* Claim one fired slot, or refuse once the cap is reached.  The CAS loop
   makes the cap exact under concurrent claims. *)
let rec claim p =
  let f = Atomic.get p.fired in
  if f >= p.limit then false
  else if Atomic.compare_and_set p.fired f (f + 1) then true
  else claim p

let count p k = ignore (Atomic.fetch_and_add p.fired_kind.(kind_index k) 1)

type outcome = Proceed | Crash | Hang of int  (** stall length, ns *)

let at_point ~tid _point =
  match !state with
  | Some p when !on && not (masked ~tid) ->
      tick ~tid;
      let idx =
        Atomic.fetch_and_add p.decisions.(tid land (max_tids - 1)) 1
      in
      let h = draw p ~tid ~idx in
      let u = unit_of_hash h *. 100.0 in
      if u < p.cfg.crash_pct then
        if claim p then begin
          count p Crash;
          Crash
        end
        else Proceed
      else if u < p.cfg.crash_pct +. p.cfg.hang_pct then
        if claim p then begin
          count p Hang;
          let us = 1 + (((h lsr 33) land 0xFFFF) mod p.cfg.hang_us) in
          Hang (us * 1_000)
        end
        else Proceed
      else Proceed
  | _ ->
      if !on then tick ~tid;
      Proceed

let oom ~tid =
  match !state with
  | Some p when !on && not (masked ~tid) ->
      tick ~tid;
      let idx =
        Atomic.fetch_and_add p.decisions.(tid land (max_tids - 1)) 1
      in
      let h = draw p ~tid ~idx in
      if unit_of_hash h *. 100.0 < p.cfg.oom_pct && claim p then begin
        count p Oom;
        true
      end
      else false
  | _ -> false

(* A bounded stall.  Deliberately does NOT tick the heartbeat: the whole
   point is that the worker's beat goes stale so the pool monitor can see
   it.  Spins rather than sleeps so a hang also holds on to its core the
   way a livelocked worker would. *)
let hang ~ns =
  let deadline = Mono.now_ns () + ns in
  while Mono.now_ns () < deadline do
    Domain.cpu_relax ()
  done

let seed () = match !state with Some p -> Some p.seed | None -> None
let fired () = match !state with Some p -> Atomic.get p.fired | None -> 0

let decisions () =
  match !state with
  | Some p -> Array.fold_left (fun a d -> a + Atomic.get d) 0 p.decisions
  | None -> 0

let fired_kind k =
  match !state with
  | Some p -> Atomic.get p.fired_kind.(kind_index k)
  | None -> 0

let summary () =
  match !state with
  | None -> "fault: inactive"
  | Some p ->
      let b = Buffer.create 64 in
      Buffer.add_string b
        (Printf.sprintf "fault: seed=%d fired=%d/%s decisions=%d" p.seed
           (Atomic.get p.fired)
           (if p.limit = max_int then "inf" else string_of_int p.limit)
           (decisions ()));
      List.iter
        (fun k ->
          let n = Atomic.get p.fired_kind.(kind_index k) in
          if n > 0 then
            Buffer.add_string b (Printf.sprintf " %s=%d" (kind_name k) n))
        [ Crash; Hang; Oom ];
      Buffer.contents b
