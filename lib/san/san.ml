(* FastTrack-style happens-before sanitizer over the simulated word memory.

   One vector clock per simulated CPU; release/acquire edges mirror the
   synchronization the STM protocols actually perform (orec CAS, global
   clock, quiescence fence, run fork/join).  Word shadow state is
   epoch-compressed: the last writer's [(clock, cpu)] packed in one int,
   plus a status int (published version / pending / raw).

   Reader-side ordering is deliberately NOT checked through epochs: an
   invisible-read STM is physically racy on the reader side by design (a
   committer may overwrite a word an active reader has sampled; the reader
   then fails validation).  Readers are instead checked against versions —
   accepted reads must sit at or below the snapshot bound, and at commit no
   logged read may have been superseded inside the transaction's
   serialization scope.  The latter is the check the armed protocol bugs
   (skip-validation, skip-extension) trip. *)

module G = Tstm_util.Growbuf
module Tap = Tstm_runtime.Tap

type kind =
  | Ww_race
  | Raw_race
  | Dirty_read
  | Stale_read
  | Read_beyond_snapshot
  | Lock_not_held
  | Double_acquire
  | Orec_leak
  | Clock_publish
  | Use_after_free

let kind_name = function
  | Ww_race -> "ww-race"
  | Raw_race -> "raw-race"
  | Dirty_read -> "dirty-read"
  | Stale_read -> "stale-read"
  | Read_beyond_snapshot -> "read-beyond-snapshot"
  | Lock_not_held -> "lock-not-held"
  | Double_acquire -> "double-acquire"
  | Orec_leak -> "orec-leak"
  | Clock_publish -> "clock-publish"
  | Use_after_free -> "use-after-free"

type finding = {
  kind : kind;
  cpu : int;
  other : int;
  label : string;
  addr : int;
  detail : string;
}

let render f =
  Printf.sprintf "%s cpu=%d %s:%d — %s" (kind_name f.kind) f.cpu f.label
    f.addr f.detail

(* Shadow status codes; [>= 0] is a published commit version. *)
let st_pending = -1
let st_raw = -2

(* Epoch packing: [(clock lsl 8) lor cpu]; the all-zero epoch is bottom. *)
let ep_cpu e = e land 255
let ep_clk e = e asr 8

type state = {
  ncpus : int;
  max_findings : int;
  vc : int array array;  (* C: one clock per CPU *)
  clock_vc : int array;  (* K: release history of the global clock word *)
  mode_vc : int array;  (* release history of the fence mode word *)
  park_vc : int array array;  (* T: release history of each fence flag *)
  lock_vc : (int, int array) Hashtbl.t;  (* L: per lock-array slot *)
  lock_owner : (int, int) Hashtbl.t;  (* current holder, [-1] = free *)
  seq_vc : int array;  (* release history of the global sequence lock *)
  mutable seq_owner : int;  (* committing holder of the seqlock, [-1] = free *)
  owned : G.t array;  (* per-CPU list of held lock slots *)
  mutable w_ep : int array;  (* per-word last-writer epoch *)
  mutable w_st : int array;  (* per-word status *)
  mutable a_st : Bytes.t;  (* 0 unknown / 1 allocated / 2 freed *)
  in_tx : bool array;
  rv : int array;  (* snapshot bound per CPU *)
  drawn : int array;  (* clock value drawn this tx; [-1] = none *)
  published : bool array;  (* commit_publish ran this tx *)
  rlog : G.t array;  (* accepted reads: (addr, epoch, status) triples *)
  wlog : G.t array;  (* writes: (addr, prev epoch, prev status) triples *)
  mutable findings_rev : finding list;
  mutable n_findings : int;
  mutable dropped : int;
}

let state : state option ref = ref None
let armed = ref false
let enabled () = !armed

let make ~ncpus ~max_findings =
  if ncpus < 1 || ncpus > 256 then invalid_arg "San.arm: ncpus";
  {
    ncpus;
    max_findings;
    vc = Array.init ncpus (fun _ -> Array.make ncpus 0);
    clock_vc = Array.make ncpus 0;
    mode_vc = Array.make ncpus 0;
    park_vc = Array.init ncpus (fun _ -> Array.make ncpus 0);
    lock_vc = Hashtbl.create 64;
    lock_owner = Hashtbl.create 64;
    seq_vc = Array.make ncpus 0;
    seq_owner = -1;
    owned = Array.init ncpus (fun _ -> G.create 8);
    w_ep = Array.make 4096 0;
    w_st = Array.make 4096 0;
    a_st = Bytes.make 4096 '\000';
    in_tx = Array.make ncpus false;
    rv = Array.make ncpus 0;
    drawn = Array.make ncpus (-1);
    published = Array.make ncpus false;
    rlog = Array.init ncpus (fun _ -> G.create 64);
    wlog = Array.init ncpus (fun _ -> G.create 64);
    findings_rev = [];
    n_findings = 0;
    dropped = 0;
  }

let report s ~kind ~cpu ?(other = -1) ?(label = "mem") ~addr detail =
  if s.n_findings >= s.max_findings then s.dropped <- s.dropped + 1
  else begin
    s.findings_rev <- { kind; cpu; other; label; addr; detail } :: s.findings_rev;
    s.n_findings <- s.n_findings + 1
  end

let join dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let epoch s cpu = (s.vc.(cpu).(cpu) lsl 8) lor cpu

(* Does epoch [e] happen before [cpu]'s current point? *)
let covered s cpu e = s.vc.(cpu).(ep_cpu e) >= ep_clk e

let ensure_shadow s addr =
  let n = Array.length s.w_ep in
  if addr >= n then begin
    let n' = ref (n * 2) in
    while addr >= !n' do
      n' := !n' * 2
    done;
    let ep = Array.make !n' 0 and st = Array.make !n' 0 in
    Array.blit s.w_ep 0 ep 0 n;
    Array.blit s.w_st 0 st 0 n;
    let ast = Bytes.make !n' '\000' in
    Bytes.blit s.a_st 0 ast 0 n;
    s.w_ep <- ep;
    s.w_st <- st;
    s.a_st <- ast
  end

let lock_clock s lk =
  match Hashtbl.find_opt s.lock_vc lk with
  | Some v -> v
  | None ->
      let v = Array.make s.ncpus 0 in
      Hashtbl.add s.lock_vc lk v;
      v

let uaf_check s ~cpu ~addr what =
  if Bytes.get s.a_st addr = '\002' then
    report s ~kind:Use_after_free ~cpu ~addr (what ^ " of a freed word")

(* --- memory access checks ------------------------------------------------ *)

let tx_write s ~cpu ~addr =
  ensure_shadow s addr;
  uaf_check s ~cpu ~addr "transactional write";
  let pep = s.w_ep.(addr) and pst = s.w_st.(addr) in
  (if pst = st_pending then begin
     let o = ep_cpu pep in
     if o <> cpu then
       report s ~kind:Ww_race ~cpu ~other:o ~addr
         (Printf.sprintf
            "transactional write while cpu=%d's transactional write to the \
             same word is still in flight (no orec edge between them)"
            o)
   end
   else if not (covered s cpu pep) then begin
     let o = ep_cpu pep in
     let kind = if pst = st_raw then Raw_race else Ww_race in
     report s ~kind ~cpu ~other:o ~addr
       (Printf.sprintf
          "transactional write not ordered after the previous %s by \
           cpu=%d@%d (no release→acquire edge)"
          (if pst = st_raw then "raw store" else "transactional write")
          o (ep_clk pep))
   end);
  let w = s.wlog.(cpu) in
  G.push w addr;
  G.push w pep;
  G.push w pst;
  s.w_ep.(addr) <- epoch s cpu;
  s.w_st.(addr) <- st_pending

let raw_store s ~cpu ~addr =
  ensure_shadow s addr;
  uaf_check s ~cpu ~addr "raw store";
  let pep = s.w_ep.(addr) and pst = s.w_st.(addr) in
  (if pst = st_pending then begin
     let o = ep_cpu pep in
     if o <> cpu then
       report s ~kind:Raw_race ~cpu ~other:o ~addr
         (Printf.sprintf
            "raw store while cpu=%d's transactional write to the same word \
             is in flight"
            o)
   end
   else if not (covered s cpu pep) then
     report s ~kind:Raw_race ~cpu ~other:(ep_cpu pep) ~addr
       (Printf.sprintf
          "raw store not ordered after the previous write by cpu=%d@%d"
          (ep_cpu pep) (ep_clk pep)));
  s.w_ep.(addr) <- epoch s cpu;
  s.w_st.(addr) <- st_raw

let raw_load s ~cpu ~addr =
  ensure_shadow s addr;
  uaf_check s ~cpu ~addr "raw load";
  let pep = s.w_ep.(addr) and pst = s.w_st.(addr) in
  if pst = st_pending then begin
    let o = ep_cpu pep in
    if o <> cpu then
      report s ~kind:Raw_race ~cpu ~other:o ~addr
        (Printf.sprintf
           "raw load while cpu=%d's transactional write to the same word is \
            in flight"
           o)
  end
  else if not (covered s cpu pep) then
    report s ~kind:Raw_race ~cpu ~other:(ep_cpu pep) ~addr
      (Printf.sprintf
         "raw load not ordered after the %s by cpu=%d@%d"
         (if pst = st_raw then "raw store" else "transactional write")
         (ep_cpu pep) (ep_clk pep))

(* The shadow a word had before this transaction's own first write to it:
   the first write-log triple for [addr] (pushed by [tx_write] in write
   order).  Without this, a read-modify-write hides a foreign republish of
   the word behind the transaction's own pending shadow. *)
let pre_write_shadow s cpu addr ~ep ~st =
  let wl = s.wlog.(cpu) in
  let n = G.length wl in
  let rec find k =
    if k >= n then (ep, st)
    else if G.get wl k = addr then (G.get wl (k + 1), G.get wl (k + 2))
    else find (k + 3)
  in
  find 0

(* Snapshot consistency: no logged read may have been superseded at or
   below [scope] (the commit's serialization point) by a foreign write.
   All reads of a word precede the transaction's own first write to it
   (later reads are served from the write set / under the own lock and are
   not logged), and a foreign publish cannot interleave with our writes
   (the orec protects the word from first store to release) — so judging
   self-pending words against the pre-write shadow is exact. *)
let stale_check s cpu ~scope =
  let rl = s.rlog.(cpu) in
  let n = G.length rl in
  let k = ref 0 in
  while !k < n do
    let addr = G.get rl !k
    and oep = G.get rl (!k + 1)
    and ost = G.get rl (!k + 2) in
    let cep = s.w_ep.(addr) and cst = s.w_st.(addr) in
    let cep, cst =
      if cst = st_pending && ep_cpu cep = cpu then
        pre_write_shadow s cpu addr ~ep:cep ~st:cst
      else (cep, cst)
    in
    (* A bottom shadow (all-zero epoch) means the word was freed and
       re-allocated since the read: a fresh life carrying no version
       information, not a republish at version 0.  Lifetime misuse is the
       allocator checks' business ([Use_after_free] fires on the access
       itself). *)
    if (cep <> oep || cst <> ost) && ep_cpu cep <> cpu && not (cep = 0 && cst = 0)
    then begin
      if cst = st_raw then
        report s ~kind:Raw_race ~cpu ~other:(ep_cpu cep) ~addr
          (Printf.sprintf
             "read accepted at %s was overwritten by a raw store by cpu=%d \
              before the transaction committed"
             (if ost >= 0 then "version " ^ string_of_int ost else "bottom")
             (ep_cpu cep))
      else if cst >= 0 && cst <= scope then
        report s ~kind:Stale_read ~cpu ~other:(ep_cpu cep) ~addr
          (Printf.sprintf
             "read accepted at %s was republished at version %d <= \
              serialization point %d by cpu=%d: the commit-time validation \
              that should have caught this did not run"
             (if ost >= 0 then "version " ^ string_of_int ost else "bottom")
             cst scope (ep_cpu cep))
      (* [cst = st_pending]: an in-flight foreign committer; its write
         version will exceed [scope], so the read is not stale under this
         serialization point. *)
    end;
    k := !k + 3
  done

(* --- STM annotations ----------------------------------------------------- *)

let with_state cpu f =
  match !state with
  | Some s when !armed && cpu >= 0 && cpu < s.ncpus -> f s
  | _ -> ()

let tx_begin ~cpu =
  with_state cpu (fun s ->
      s.in_tx.(cpu) <- true;
      s.published.(cpu) <- false;
      s.drawn.(cpu) <- -1;
      G.clear s.rlog.(cpu);
      G.clear s.wlog.(cpu))

let read_accept ~cpu ~addr =
  with_state cpu (fun s ->
      ensure_shadow s addr;
      uaf_check s ~cpu ~addr "transactional read";
      let ep = s.w_ep.(addr) and st = s.w_st.(addr) in
      let pc = ep_cpu ep in
      (if st = st_pending then begin
         if pc <> cpu then
           report s ~kind:Dirty_read ~cpu ~other:pc ~addr
             (Printf.sprintf
                "accepted a read of cpu=%d's in-flight (uncommitted) write"
                pc)
       end
       else if st = st_raw then begin
         if pc <> cpu && not (covered s cpu ep) then
           report s ~kind:Raw_race ~cpu ~other:pc ~addr
             (Printf.sprintf
                "transactional read of an unsynchronized raw store by \
                 cpu=%d@%d"
                pc (ep_clk ep))
       end
       else if st > s.rv.(cpu) && pc <> cpu then
         report s ~kind:Read_beyond_snapshot ~cpu ~other:pc ~addr
           (Printf.sprintf
              "accepted a read of version %d above the snapshot bound %d" st
              s.rv.(cpu)));
      let rl = s.rlog.(cpu) in
      G.push rl addr;
      G.push rl ep;
      G.push rl st)

let clock_read ~cpu ~value =
  with_state cpu (fun s ->
      s.rv.(cpu) <- value;
      join s.vc.(cpu) s.clock_vc)

let clock_advance ~cpu ~drawn =
  with_state cpu (fun s ->
      join s.vc.(cpu) s.clock_vc;
      join s.clock_vc s.vc.(cpu);
      s.vc.(cpu).(cpu) <- s.vc.(cpu).(cpu) + 1;
      s.drawn.(cpu) <- drawn)

let lock_acquire ~cpu ~lock =
  with_state cpu (fun s ->
      (match Hashtbl.find_opt s.lock_owner lock with
      | Some o when o >= 0 ->
          report s ~kind:Double_acquire ~cpu ~other:o ~label:"locks"
            ~addr:lock
            (if o = cpu then "acquired an orec it already holds"
             else Printf.sprintf "acquired an orec still held by cpu=%d" o)
      | _ -> ());
      Hashtbl.replace s.lock_owner lock cpu;
      G.push s.owned.(cpu) lock;
      join s.vc.(cpu) (lock_clock s lock))

let owned_remove o lk =
  let n = G.length o in
  let rec find k = if k >= n then -1 else if G.get o k = lk then k else find (k + 1) in
  let k = find 0 in
  if k >= 0 then begin
    G.set o k (G.get o (n - 1));
    G.shrink o (n - 1);
    true
  end
  else false

let lock_release ~cpu ~lock =
  with_state cpu (fun s ->
      (match Hashtbl.find_opt s.lock_owner lock with
      | Some o when o = cpu ->
          ignore (owned_remove s.owned.(cpu) lock);
          Hashtbl.replace s.lock_owner lock (-1)
      | Some o when o >= 0 ->
          report s ~kind:Lock_not_held ~cpu ~other:o ~label:"locks" ~addr:lock
            (Printf.sprintf "released an orec held by cpu=%d" o)
      | _ ->
          report s ~kind:Lock_not_held ~cpu ~label:"locks" ~addr:lock
            "released an orec it does not hold (double release?)");
      let l = lock_clock s lock in
      join l s.vc.(cpu);
      s.vc.(cpu).(cpu) <- s.vc.(cpu).(cpu) + 1)

(* --- global sequence lock (NOrec) ---------------------------------------- *)

(* There is exactly one global sequence lock, reported as slot 0 of the
   ["seqlock"] label.  Acquire = the even→odd CAS a writer wins before
   write-back; release = publishing the next even value; validate = a
   successful value-based revalidation of the whole read set against an
   even sequence value. *)

let seqlock_acquire ~cpu ~drawn =
  with_state cpu (fun s ->
      (if s.seq_owner >= 0 then
         report s ~kind:Double_acquire ~cpu ~other:s.seq_owner
           ~label:"seqlock" ~addr:0
           (if s.seq_owner = cpu then
              "acquired the sequence lock it already holds"
            else
              Printf.sprintf
                "acquired the sequence lock while cpu=%d is still committing"
                s.seq_owner));
      s.seq_owner <- cpu;
      join s.vc.(cpu) s.seq_vc;
      (* The version to be published at release plays the role a drawn clock
         value plays in orec STMs; [commit_publish] checks they agree. *)
      s.drawn.(cpu) <- drawn)

let seqlock_release ~cpu =
  with_state cpu (fun s ->
      (if s.seq_owner = cpu then s.seq_owner <- -1
       else if s.seq_owner >= 0 then
         report s ~kind:Lock_not_held ~cpu ~other:s.seq_owner ~label:"seqlock"
           ~addr:0
           (Printf.sprintf "released the sequence lock held by cpu=%d"
              s.seq_owner)
       else
         report s ~kind:Lock_not_held ~cpu ~label:"seqlock" ~addr:0
           "released the sequence lock it does not hold");
      join s.seq_vc s.vc.(cpu);
      s.vc.(cpu).(cpu) <- s.vc.(cpu).(cpu) + 1)

let seqlock_validate ~cpu ~value =
  with_state cpu (fun s ->
      join s.vc.(cpu) s.seq_vc;
      s.rv.(cpu) <- value;
      (* A passed value-based validation re-certifies the entire read set at
         the new snapshot: refresh every logged read to the word's current
         shadow so later stale checks judge against this validation point,
         not the original accept.  This is what makes value validation
         admissible to a version-based sanitizer — a benign same-value
         republish stops mattering once re-certified, while genuine
         protocol breakage still trips the commit-time check, because the
         commit CAS only succeeds when nothing republished after the last
         validation. *)
      let rl = s.rlog.(cpu) in
      let n = G.length rl in
      let k = ref 0 in
      while !k < n do
        let addr = G.get rl !k in
        let cep = s.w_ep.(addr) and cst = s.w_st.(addr) in
        let cep, cst =
          if cst = st_pending && ep_cpu cep = cpu then
            pre_write_shadow s cpu addr ~ep:cep ~st:cst
          else (cep, cst)
        in
        G.set rl (!k + 1) cep;
        G.set rl (!k + 2) cst;
        k := !k + 3
      done)

let commit_publish ~cpu ~wv =
  with_state cpu (fun s ->
      if s.in_tx.(cpu) then begin
        if s.drawn.(cpu) <> wv then
          report s ~kind:Clock_publish ~cpu ~label:"ctl" ~addr:0
            (Printf.sprintf
               "commit publishes version %d but the transaction drew %s from \
                the global clock"
               wv
               (if s.drawn.(cpu) < 0 then "nothing"
                else "version " ^ string_of_int s.drawn.(cpu)));
        stale_check s cpu ~scope:wv;
        s.published.(cpu) <- true;
        let e = epoch s cpu in
        let w = s.wlog.(cpu) in
        let n = G.length w in
        let k = ref 0 in
        while !k < n do
          let addr = G.get w !k in
          s.w_ep.(addr) <- e;
          s.w_st.(addr) <- wv;
          k := !k + 3
        done
      end)

let tx_abort ~cpu =
  with_state cpu (fun s ->
      if s.in_tx.(cpu) then begin
        (* Restore in reverse so a word written (or undone) several times
           lands back on its pre-transaction shadow state. *)
        let w = s.wlog.(cpu) in
        let k = ref (G.length w - 3) in
        while !k >= 0 do
          let addr = G.get w !k in
          s.w_ep.(addr) <- G.get w (!k + 1);
          s.w_st.(addr) <- G.get w (!k + 2);
          k := !k - 3
        done;
        G.clear w
      end)

let tx_exit ~cpu ~committed =
  with_state cpu (fun s ->
      if s.in_tx.(cpu) then begin
        if committed && not s.published.(cpu) then
          (* Lock-free commit (read-only, or an empty write set): the
             transaction serializes at its snapshot bound. *)
          stale_check s cpu ~scope:s.rv.(cpu);
        let o = s.owned.(cpu) in
        let n = G.length o in
        if n > 0 then begin
          for k = 0 to n - 1 do
            let lk = G.get o k in
            report s ~kind:Orec_leak ~cpu ~label:"locks" ~addr:lk
              (Printf.sprintf "orec still held after %s exit"
                 (if committed then "commit" else "abort"));
            Hashtbl.replace s.lock_owner lk (-1)
          done;
          G.clear o
        end;
        if s.seq_owner = cpu then begin
          report s ~kind:Orec_leak ~cpu ~label:"seqlock" ~addr:0
            (Printf.sprintf "sequence lock still held after %s exit"
               (if committed then "commit" else "abort"));
          s.seq_owner <- -1
        end;
        s.in_tx.(cpu) <- false;
        G.clear s.rlog.(cpu);
        G.clear s.wlog.(cpu)
      end)

let thread_park ~cpu =
  with_state cpu (fun s ->
      join s.park_vc.(cpu) s.vc.(cpu);
      s.vc.(cpu).(cpu) <- s.vc.(cpu).(cpu) + 1)

let fence_pass ~cpu = with_state cpu (fun s -> join s.vc.(cpu) s.mode_vc)

let fence_owner_entry ~cpu =
  with_state cpu (fun s ->
      join s.vc.(cpu) s.mode_vc;
      for j = 0 to s.ncpus - 1 do
        join s.vc.(cpu) s.park_vc.(j)
      done)

let fence_owner_exit ~cpu =
  with_state cpu (fun s ->
      join s.mode_vc s.vc.(cpu);
      s.vc.(cpu).(cpu) <- s.vc.(cpu).(cpu) + 1)

let rollover ~cpu =
  with_state cpu (fun s ->
      (* Published versions restart from zero after a clock rollover; the
         fence guarantees no transaction is in flight across it. *)
      for addr = 0 to Array.length s.w_st - 1 do
        if s.w_st.(addr) > 0 then s.w_st.(addr) <- 0
      done)

(* --- tap consumption ----------------------------------------------------- *)

let on_access ~cpu ~label ~index kind =
  match !state with
  | Some s when cpu >= 0 && cpu < s.ncpus && String.equal label "mem" -> (
      match kind with
      | Tap.Set | Tap.Faa | Tap.Cas true ->
          if s.in_tx.(cpu) then tx_write s ~cpu ~addr:index
          else raw_store s ~cpu ~addr:index
      | Tap.Cas false -> ()
      | Tap.Get ->
          (* Transactional reads are judged at their accept point
             ({!read_accept}); a bare in-transaction probe of a possibly
             locked word carries no obligation. *)
          if not s.in_tx.(cpu) then raw_load s ~cpu ~addr:index)
  | _ -> ()

let on_vmm_load ~cpu ~addr =
  match !state with
  | Some s when cpu >= 0 && cpu < s.ncpus -> raw_load s ~cpu ~addr
  | _ -> ()

let on_vmm_store ~cpu ~addr =
  match !state with
  | Some s when cpu >= 0 && cpu < s.ncpus -> raw_store s ~cpu ~addr
  | _ -> ()

let on_vmm_alloc ~cpu ~addr ~len =
  match !state with
  | Some s when cpu >= 0 && cpu < s.ncpus ->
      ensure_shadow s (addr + len - 1);
      for a = addr to addr + len - 1 do
        (* A fresh life for these words: forget the previous one's shadow
           (the TSan convention), mark allocated. *)
        s.w_ep.(a) <- 0;
        s.w_st.(a) <- 0;
        Bytes.set s.a_st a '\001'
      done
  | _ -> ()

let on_vmm_free ~cpu ~addr ~len =
  match !state with
  | Some s when cpu >= 0 && cpu < s.ncpus ->
      ensure_shadow s (addr + len - 1);
      for a = addr to addr + len - 1 do
        Bytes.set s.a_st a '\002'
      done
  | _ -> ()

let on_seqlock_acquire ~cpu ~drawn = seqlock_acquire ~cpu ~drawn
let on_seqlock_release ~cpu = seqlock_release ~cpu
let on_seqlock_validate ~cpu ~value = seqlock_validate ~cpu ~value

let on_run_boundary () =
  match !state with
  | Some s ->
      (* Fork/join: every CPU starts the next run knowing everything, with
         its own component bumped so post-boundary epochs are fresh. *)
      let sup = Array.make s.ncpus 0 in
      for c = 0 to s.ncpus - 1 do
        join sup s.vc.(c)
      done;
      for c = 0 to s.ncpus - 1 do
        Array.blit sup 0 s.vc.(c) 0 s.ncpus;
        s.vc.(c).(c) <- sup.(c) + 1
      done
  | None -> ()

(* --- arming -------------------------------------------------------------- *)

let arm ?(max_findings = 64) ~ncpus () =
  let s = make ~ncpus ~max_findings in
  state := Some s;
  armed := true;
  Tap.install
    (Some
       {
         Tap.on_access;
         on_vmm_load;
         on_vmm_store;
         on_vmm_alloc;
         on_vmm_free;
         on_run_boundary;
         on_seqlock_acquire;
         on_seqlock_release;
         on_seqlock_validate;
       })

let disarm () =
  Tap.install None;
  armed := false

let findings () =
  match !state with None -> [] | Some s -> List.rev s.findings_rev

let dropped () = match !state with None -> 0 | Some s -> s.dropped
let ok () = match !state with None -> true | Some s -> s.n_findings = 0

let summary () =
  match !state with
  | None -> "sanitizer never armed"
  | Some s when s.n_findings = 0 -> "clean"
  | Some s ->
      let tbl = Hashtbl.create 8 in
      List.iter
        (fun f ->
          let k = kind_name f.kind in
          Hashtbl.replace tbl k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
        s.findings_rev;
      let parts =
        Hashtbl.fold (fun k n acc -> Printf.sprintf "%s×%d" k n :: acc) tbl []
        |> List.sort compare
      in
      Printf.sprintf "%d finding%s: %s%s" s.n_findings
        (if s.n_findings = 1 then "" else "s")
        (String.concat ", " parts)
        (if s.dropped > 0 then Printf.sprintf " (+%d dropped)" s.dropped
         else "")

let with_armed ?max_findings ~ncpus f =
  arm ?max_findings ~ncpus ();
  Fun.protect ~finally:disarm (fun () ->
      let r = f () in
      (r, findings ()))
