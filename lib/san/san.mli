(** VmmSan: a FastTrack-style happens-before sanitizer for the simulated
    word memory.

    The bounded-window linearizability checker (PR 2) judges whole
    histories after the fact; this module is the complementary per-access
    oracle: O(1) shadow-state checks at every word access and every STM
    synchronization operation, localising the {e first} suspicious access
    pair instead of a whole bad history.

    {2 Model}

    Each simulated CPU carries a vector clock [C]; the STM operations that
    really synchronize — orec CAS acquire and release, global-clock
    [fetch_add] and read, the quiescence fence, run fork/join — are
    annotated by the STMs and the runtime and maintain release/acquire
    edges between those clocks.  Every [Vmm] word and every lock-array slot
    carries epoch-compressed shadow state: the last writer's [(cpu, clock)]
    epoch plus a status word (the publish version of the committing
    transaction, or {e pending} while a transaction is in flight, or
    {e raw} after a non-transactional store).

    {2 Checks}

    - {b racy pairs}: a non-transactional [Vmm.load]/[store] concurrent
      (not happens-before-ordered) with a transactional access to the same
      word; two transactional writes to the same word not ordered by an
      orec release→acquire edge; a transactional read observing a foreign
      in-flight (pending) write.
    - {b snapshot consistency}: at commit, a logged read superseded by a
      foreign write published at a version inside the committing
      transaction's serialization scope (its write version, or its snapshot
      bound for lock-free commits) — the per-access face of the paper's
      time-based validation argument (§3): this is exactly what the armed
      [skip-validation]/[skip-extension] protocol bugs break.
    - {b lock discipline}: release of a lock the CPU does not hold, double
      acquisition, and orecs still held when a transaction exits
      (orec leak).
    - {b clock discipline}: a commit that publishes a version it never drew
      from the global clock.
    - {b allocator}: any access to a word inside a freed block
      (use-after-free), via the {!Tstm_runtime.Tap} allocation events.

    Readers deliberately carry {e no} happens-before obligation against
    committed writes: a word-based STM with invisible reads is racy at the
    physical level by design (a reader may load a word a committer is about
    to overwrite and then fail validation), so reader-side ordering is
    checked through versions against the snapshot bound, never through raw
    epochs.  That is what keeps the sanitizer free of false positives on
    the correct protocols.

    The sanitizer is process-global, guarded by the single boolean load of
    {!enabled} (the [Tstm_obs.Sink] discipline), and never charges cycles:
    disabled runs are bit-identical to un-instrumented ones.  One armed
    scope covers one STM instance on the simulated runtime. *)

type kind =
  | Ww_race  (** two transactional writes not ordered by an orec edge *)
  | Raw_race  (** non-transactional access racing a transactional one *)
  | Dirty_read  (** transactional read of a foreign in-flight write *)
  | Stale_read  (** committed read superseded inside the serialization scope *)
  | Read_beyond_snapshot
      (** accepted read of a version newer than the snapshot bound *)
  | Lock_not_held  (** release without acquisition / double release *)
  | Double_acquire
  | Orec_leak  (** lock still held at transaction exit *)
  | Clock_publish  (** commit version never drawn from the global clock *)
  | Use_after_free

val kind_name : kind -> string

type finding = {
  kind : kind;
  cpu : int;  (** CPU that performed the flagged access *)
  other : int;  (** counterpart CPU of the access pair; [-1] if none *)
  label : string;  (** obs contention label of the array, e.g. ["mem"] *)
  addr : int;  (** word address or lock index under [label] *)
  detail : string;  (** rendered (cpu, addr, access-pair) diagnostic *)
}

val render : finding -> string
(** One line: [kind cpu=c mem:addr — detail]. *)

(** {1 Arming} *)

val arm : ?max_findings:int -> ncpus:int -> unit -> unit
(** Reset all shadow state, install the runtime {!Tstm_runtime.Tap} hooks
    and start checking.  [ncpus] bounds the vector clocks (accesses from
    CPUs at or above it are ignored).  At most [max_findings] (default 64)
    findings are retained; later ones are counted but dropped. *)

val disarm : unit -> unit
(** Stop checking and uninstall the tap.  The findings of the last armed
    scope remain readable. *)

val with_armed :
  ?max_findings:int -> ncpus:int -> (unit -> 'a) -> 'a * finding list
(** [with_armed ~ncpus f] runs [f] armed and returns its result with the
    findings, disarming on the way out (exceptions included). *)

val enabled : unit -> bool
(** One boolean load; instrumentation sites gate every other call on it. *)

val findings : unit -> finding list
(** Findings of the current (or last) armed scope, oldest first. *)

val dropped : unit -> int
(** Findings discarded beyond [max_findings]. *)

val ok : unit -> bool
val summary : unit -> string
(** One line: finding count by kind, or ["clean"]. *)

(** {1 Sync-edge annotations} — called by the STMs, gated on {!enabled}.
    All [cpu] arguments are simulated CPU ids. *)

val tx_begin : cpu:int -> unit
(** A transaction attempt starts (speculative or irrevocable). *)

val read_accept : cpu:int -> addr:int -> unit
(** A transactional read of [addr] was accepted (version validated and the
    value returned to the user). *)

val clock_read : cpu:int -> value:int -> unit
(** The global clock was sampled as the snapshot bound (transaction start
    or snapshot extension): acquires the clock's release history and sets
    the CPU's snapshot bound to [value]. *)

val clock_advance : cpu:int -> drawn:int -> unit
(** The global clock was atomically incremented and [drawn] (the new
    value) will serve as the commit version. *)

val lock_acquire : cpu:int -> lock:int -> unit
(** An orec CAS succeeded. *)

val lock_release : cpu:int -> lock:int -> unit
(** An orec was released (commit or rollback).  Call after the store, in
    the same atomic window. *)

val commit_publish : cpu:int -> wv:int -> unit
(** The transaction commits its writes at version [wv].  Runs the clock
    discipline and snapshot consistency checks and stamps the write set's
    shadow state.  Must be called {e before} the orecs are released (while
    the writes are still protected). *)

val tx_abort : cpu:int -> unit
(** The transaction rolls back: its writes' shadow state is restored.
    Must be called after undo writes and {e before} the orecs are
    released. *)

val tx_exit : cpu:int -> committed:bool -> unit
(** The attempt is over (after lock release): checks for leaked orecs; for
    lock-free commits runs the snapshot consistency check against the
    snapshot bound. *)

(** {2 Global sequence lock (NOrec)}

    Orec-free STMs synchronize through a single global sequence lock: even
    values are timestamps, a committing writer CASes it odd, writes back,
    and publishes the next even value.  These annotations (slot 0 of the
    ["seqlock"] label; normally driven through the
    {!Tstm_runtime.Tap.seqlock_acquire} family of producers) carry the
    whole happens-before structure of such an STM: acquire/release edges
    through the lock, plus re-certification of the read set on every
    passed value-based validation — which is what makes value validation
    admissible to this version-based sanitizer without false positives. *)

val seqlock_acquire : cpu:int -> drawn:int -> unit
(** The even→odd commit CAS succeeded; [drawn] is the even version the
    committer will publish at release (checked by {!commit_publish}).
    Checks the lock is free and acquires its release history. *)

val seqlock_release : cpu:int -> unit
(** The committer published the next even value: checks ownership and
    releases the CPU's history into the lock. *)

val seqlock_validate : cpu:int -> value:int -> unit
(** A value-based validation of the whole read set passed against the even
    sequence value [value] (transaction start, a fast-forward snapshot
    extension, or pre-commit revalidation): acquires the lock's release
    history, moves the snapshot bound to [value] and re-certifies every
    logged read at the current shadow state.  Only call after a validation
    that actually ran and passed — the armed protocol bugs must skip it. *)

val thread_park : cpu:int -> unit
(** The CPU lowers its in-transaction fence flag (releases its history to
    a future fence owner). *)

val fence_pass : cpu:int -> unit
(** The CPU observed the fence open and entered (acquires the last fence
    owner's history). *)

val fence_owner_entry : cpu:int -> unit
(** The fence owner observed every flag down: acquires all parked
    histories (quiescence). *)

val fence_owner_exit : cpu:int -> unit
(** The fence owner reopens the fence (releases its history). *)

val rollover : cpu:int -> unit
(** The global clock rolled over inside a fence: published shadow versions
    restart from zero. *)
