(** Deterministic chaos plan: seeded schedule perturbation and bug injection.

    The simulator ([Tstm_runtime.Runtime_sim]) already produces one fixed
    interleaving per workload — virtual-time ties break FIFO, so whole
    classes of schedules (lock-holder preemption at commit, a writer landing
    mid-snapshot-extension, …) are never exercised.  An active chaos plan
    perturbs that schedule in two ways, both drawn from a single SplitMix64
    stream:

    - {b jitter}: every yielding [Charge] point in [Sim_sched] may receive a
      small extra cycle charge, reordering virtual-time ties;
    - {b preemption}: the STMs consult {!preempt} at their linearization
      points (lock CAS, clock read/increment, commit, abort) and charge the
      returned cycles, forcing descheduling exactly where protocol bugs
      hide.

    The same [(seed, config, limit)] triple replays bit-identically, so any
    failure found by a seed sweep is reproducible from its printed seed.
    Chaos is meaningful only under the simulated runtime; activating it
    during [Runtime_real] runs is unsupported (the plan state is a single
    unsynchronised stream).

    The plan is process-global and consultations are guarded by the single
    boolean load of {!enabled}, mirroring the [Tstm_obs.Sink] discipline: an
    inactive plan costs one branch on the hot paths and charges nothing. *)

(** Linearization points at which the STMs request forced preemption. *)
type point =
  | Lock_cas  (** around an ownership-record CAS (acquire or post-acquire) *)
  | Clock_read  (** sampling the global clock (tx start, snapshot extension) *)
  | Clock_inc  (** incrementing the global clock at commit *)
  | Commit  (** inside commit while write locks are held *)
  | Abort  (** after rollback, before retrying *)

val point_name : point -> string

type config = {
  jitter_pct : float;  (** chance, in percent, that a Charge point jitters *)
  jitter_max : int;  (** max extra cycles added by one jitter *)
  preempt_pct : float;  (** chance, in percent, that a {!point} preempts *)
  preempt_max : int;  (** max cycles charged by one forced preemption *)
}

val default : config

val activate : ?config:config -> ?limit:int -> seed:int -> unit -> unit
(** Install a plan.  [limit] caps the number of injections that may fire
    (used by the shrinker); omitted means unlimited.  Raises
    [Invalid_argument] on out-of-range percentages. *)

val deactivate : unit -> unit

val with_plan : ?config:config -> ?limit:int -> seed:int -> (unit -> 'a) -> 'a
(** [with_plan ~seed f] runs [f] under an active plan and deactivates it on
    the way out, exceptions included. *)

val enabled : unit -> bool
(** One boolean load; gate every other call on it. *)

val jitter : unit -> int
(** Extra cycles to add at a yielding charge point; [0] when the plan decides
    not to fire (or is inactive). *)

val preempt : point -> int
(** Cycles the caller should [charge] to simulate an inopportune preemption
    at [point]; [0] when not firing. *)

val seed : unit -> int option
val injected : unit -> int
(** Injections fired so far under the current plan. *)

val injected_at : point -> int
val decisions : unit -> int
(** Injection decisions drawn so far (fired or not). *)

val summary : unit -> string
(** One-line report of the active plan: seed, fired/limit, per-point counts. *)

(** {1 Deliberate protocol bugs}

    Used to demonstrate that the serializability checker catches real STM
    protocol mistakes (acceptance: "a deliberately introduced bug is caught
    by the checker and the printed seed replays the failure").  Armed
    independently of the plan. *)

type bug =
  | Skip_extension
      (** TinySTM: snapshot extension blindly succeeds without validating the
          read set — stale reads survive, breaking opacity. *)
  | Skip_validation
      (** Commit-time read-set validation blindly succeeds (TinySTM and
          TL2). *)

val bug_name : bug -> string
val bug_of_string : string -> bug option
val set_bug : bug option -> unit
val bug_active : bug -> bool
val with_bug : bug option -> (unit -> 'a) -> 'a
