(* Black-box serializability checking for integer-set histories.

   Each completed operation is recorded with its invocation and response
   virtual times.  The checker then searches for a legal linearization: a
   total order of the operations, consistent with the real-time order
   (op A wholly before op B must come before B), under which replaying
   against a sequential [Set] model reproduces every recorded result and
   ends in the recorded final contents.

   The search is the classic Wing–Gong depth-first enumeration with two
   standard bounds that make it cheap on STM histories (which are very
   nearly sequential in virtual time):

   - a window: at each step only the first [window] pending operations are
     considered as the next linearization candidate, and an operation that
     starts strictly after some pending operation's response is never a
     candidate (real-time order would be violated);
   - memoization on the set of linearized operations.  For a two-state
     per-key model the set of applied operations determines the model
     state, so the bitset alone is a sound memo key.

   A node budget turns a pathological search into an explicit
   [Error "checker budget exceeded"], never a wrong verdict. *)

module IS = Set.Make (Int)

type op = Add of int | Remove of int | Contains of int

type event = { tid : int; inv : int; resp : int; op : op; result : bool }

type t = { logs : event list array }

let create ~nthreads =
  if nthreads < 1 then invalid_arg "History.create: nthreads < 1";
  { logs = Array.make nthreads [] }

let record t ~tid ~inv ~resp ~op ~result =
  if resp < inv then invalid_arg "History.record: resp < inv";
  t.logs.(tid) <- { tid; inv; resp; op; result } :: t.logs.(tid)

let size t = Array.fold_left (fun acc l -> acc + List.length l) 0 t.logs

(* All events merged, sorted by invocation time (ties by response then tid:
   any fixed deterministic order works, the checker only needs inv-sorted). *)
let events t =
  let all = Array.fold_left (fun acc l -> List.rev_append l acc) [] t.logs in
  List.sort
    (fun a b ->
      match compare a.inv b.inv with
      | 0 -> ( match compare a.resp b.resp with 0 -> compare a.tid b.tid | c -> c)
      | c -> c)
    all

let op_to_string = function
  | Add k -> Printf.sprintf "add %d" k
  | Remove k -> Printf.sprintf "remove %d" k
  | Contains k -> Printf.sprintf "contains %d" k

let event_to_string e =
  Printf.sprintf "[t%d %d..%d] %s -> %b" e.tid e.inv e.resp
    (op_to_string e.op) e.result

(* Sequential set semantics: returns (new model, result the op must have). *)
let apply model = function
  | Add k ->
      let fresh = not (IS.mem k model) in
      ((if fresh then IS.add k model else model), fresh)
  | Remove k ->
      let present = IS.mem k model in
      ((if present then IS.remove k model else model), present)
  | Contains k -> (model, IS.mem k model)

exception Budget

let check ?(window = 48) ?(max_nodes = 500_000) ~final evs =
  let ev = Array.of_list evs in
  let n = Array.length ev in
  let final_set = IS.of_list final in
  if n = 0 then if IS.is_empty final_set then Ok () else Error "empty history but non-empty final contents"
  else begin
    let done_ = Bytes.make n '\000' in
    let memo : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
    let nodes = ref 0 in
    (* Diagnostics: deepest prefix reached and the pending ops blocking it. *)
    let best = ref (-1) in
    let stuck : event list ref = ref [] in
    let note_depth ndone first_undone =
      if ndone > !best then begin
        best := ndone;
        let pending = ref [] and i = ref first_undone and taken = ref 0 in
        while !i < n && !taken < 4 do
          if Bytes.get done_ !i = '\000' then begin
            pending := ev.(!i) :: !pending;
            incr taken
          end;
          incr i
        done;
        stuck := List.rev !pending
      end
    in
    let rec dfs ndone model first_undone =
      incr nodes;
      if !nodes > max_nodes then raise Budget;
      note_depth ndone first_undone;
      if ndone = n then IS.equal model final_set
      else begin
        let key = Bytes.to_string done_ in
        if Hashtbl.mem memo key then false
        else begin
          let ok = ref false in
          let min_resp = ref max_int in
          let tried = ref 0 in
          let i = ref first_undone in
          let continue = ref true in
          while !continue && !i < n && !tried < window do
            if Bytes.get done_ !i = '\000' then begin
              let e = ev.(!i) in
              (* Events are inv-sorted: once an op starts after a pending
                 response, it and everything later is real-time-blocked. *)
              if e.inv > !min_resp then continue := false
              else begin
                let model', expected = apply model e.op in
                if expected = e.result then begin
                  Bytes.set done_ !i '\001';
                  let fu =
                    if !i <> first_undone then first_undone
                    else begin
                      let j = ref (first_undone + 1) in
                      while !j < n && Bytes.get done_ !j <> '\000' do incr j done;
                      !j
                    end
                  in
                  if dfs (ndone + 1) model' fu then ok := true;
                  Bytes.set done_ !i '\000'
                end;
                if !ok then continue := false
                else begin
                  min_resp := min !min_resp e.resp;
                  incr tried
                end
              end
            end;
            incr i
          done;
          if not !ok then Hashtbl.replace memo key ();
          !ok
        end
      end
    in
    match dfs 0 IS.empty 0 with
    | true -> Ok ()
    | false ->
        let b = Buffer.create 256 in
        Buffer.add_string b
          (Printf.sprintf
             "no serializable order: linearized %d/%d ops, then stuck on:" !best n);
        List.iter
          (fun e -> Buffer.add_string b ("\n  " ^ event_to_string e))
          !stuck;
        if !best = n then
          Buffer.add_string b
            (Printf.sprintf "\n  (all ops linearize but final contents differ: {%s} expected)"
               (String.concat ", " (List.map string_of_int (IS.elements final_set))));
        Error (Buffer.contents b)
    | exception Budget ->
        Error
          (Printf.sprintf "checker budget exceeded (%d nodes, window %d)"
             max_nodes window)
  end
