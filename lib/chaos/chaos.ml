(* Deterministic fault-injection plan.

   The plan is process-global, like [Tstm_obs.Sink]: the simulator scheduler
   and the STM hot paths guard every consultation behind the single boolean
   load of [enabled ()], so an inactive plan costs one branch.  All decisions
   are drawn from one SplitMix64 stream seeded by [activate ~seed], and the
   simulator is single-threaded under the hood, so a (seed, config, limit)
   triple replays bit-identically.

   Only *fired* injections consume the stream and count towards [limit]; a
   run capped at [limit = injected()] of a previous run therefore reproduces
   that run exactly, which is what the shrinker in [Tstm_harness.Stress]
   relies on. *)

module X = Tstm_util.Xrand

type point = Lock_cas | Clock_read | Clock_inc | Commit | Abort

let point_index = function
  | Lock_cas -> 0
  | Clock_read -> 1
  | Clock_inc -> 2
  | Commit -> 3
  | Abort -> 4

let n_points = 5

let point_name = function
  | Lock_cas -> "lock-cas"
  | Clock_read -> "clock-read"
  | Clock_inc -> "clock-inc"
  | Commit -> "commit"
  | Abort -> "abort"

type config = {
  jitter_pct : float;
  jitter_max : int;
  preempt_pct : float;
  preempt_max : int;
}

let default = { jitter_pct = 5.0; jitter_max = 256; preempt_pct = 20.0; preempt_max = 4096 }

let validate cfg =
  if cfg.jitter_pct < 0.0 || cfg.jitter_pct > 100.0 then
    invalid_arg "Chaos: jitter_pct outside [0, 100]";
  if cfg.preempt_pct < 0.0 || cfg.preempt_pct > 100.0 then
    invalid_arg "Chaos: preempt_pct outside [0, 100]";
  if cfg.jitter_max < 1 then invalid_arg "Chaos: jitter_max < 1";
  if cfg.preempt_max < 1 then invalid_arg "Chaos: preempt_max < 1"

type plan = {
  seed : int;
  rng : X.t;
  cfg : config;
  limit : int;
  mutable fired : int;
  mutable decisions : int;
  fired_at : int array; (* per-point fired counts, indexed by [point_index] *)
}

let state : plan option ref = ref None
let on = ref false
let enabled () = !on

let activate ?(config = default) ?limit ~seed () =
  validate config;
  let limit = match limit with None -> max_int | Some l -> max 0 l in
  state :=
    Some
      {
        seed;
        rng = X.create seed;
        cfg = config;
        limit;
        fired = 0;
        decisions = 0;
        fired_at = Array.make n_points 0;
      };
  on := true

let deactivate () =
  on := false;
  state := None

let with_plan ?config ?limit ~seed f =
  activate ?config ?limit ~seed ();
  Fun.protect ~finally:deactivate f

(* One injection decision.  Past the site limit we stop touching the RNG
   entirely: no further site can fire, and runs with different limits are
   allowed to diverge (the schedule already has). *)
let fire p pct max_cycles =
  p.decisions <- p.decisions + 1;
  if p.fired >= p.limit then 0
  else if X.below_percent p.rng pct then begin
    p.fired <- p.fired + 1;
    1 + X.int p.rng max_cycles
  end
  else 0

let jitter () =
  match !state with
  | Some p when !on -> fire p p.cfg.jitter_pct p.cfg.jitter_max
  | _ -> 0

let preempt point =
  match !state with
  | Some p when !on ->
      let n = fire p p.cfg.preempt_pct p.cfg.preempt_max in
      if n > 0 then begin
        let i = point_index point in
        p.fired_at.(i) <- p.fired_at.(i) + 1
      end;
      n
  | _ -> 0

let seed () = match !state with Some p -> Some p.seed | None -> None
let injected () = match !state with Some p -> p.fired | None -> 0
let decisions () = match !state with Some p -> p.decisions | None -> 0

let injected_at point =
  match !state with Some p -> p.fired_at.(point_index point) | None -> 0

let summary () =
  match !state with
  | None -> "chaos: inactive"
  | Some p ->
      let b = Buffer.create 64 in
      Buffer.add_string b
        (Printf.sprintf "chaos: seed=%d fired=%d/%d decisions=%d" p.seed p.fired
           (if p.limit = max_int then p.decisions else p.limit)
           p.decisions);
      Array.iteri
        (fun i n ->
          if n > 0 then
            Buffer.add_string b
              (Printf.sprintf " %s=%d"
                 (point_name
                    (match i with
                    | 0 -> Lock_cas
                    | 1 -> Clock_read
                    | 2 -> Clock_inc
                    | 3 -> Commit
                    | _ -> Abort))
                 n))
        p.fired_at;
      Buffer.contents b

(* Deliberate protocol bugs, used to prove the checker has teeth.  Kept
   independent of the plan so a bug can be armed with or without schedule
   perturbation. *)

type bug = Skip_extension | Skip_validation

let bug_name = function
  | Skip_extension -> "skip-extension"
  | Skip_validation -> "skip-validation"

let bug_of_string = function
  | "skip-extension" -> Some Skip_extension
  | "skip-validation" -> Some Skip_validation
  | _ -> None

let bugged = ref false
let bug : bug option ref = ref None

let set_bug b =
  bug := b;
  bugged := b <> None

let bug_active b = !bugged && !bug = Some b

let with_bug b f =
  set_bug b;
  Fun.protect ~finally:(fun () -> set_bug None) f
