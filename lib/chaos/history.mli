(** Operation histories over an integer set, and a serializability checker.

    The stress harness records every completed structure operation with its
    invocation and response timestamps (virtual time under the simulator).
    {!check} then decides whether the history is linearizable with respect to
    sequential set semantics — a black-box correctness criterion in the
    spirit of Proust (see PAPERS.md): no knowledge of the STM internals, only
    observed results. *)

type op = Add of int | Remove of int | Contains of int

type event = {
  tid : int;
  inv : int;  (** invocation timestamp *)
  resp : int;  (** response timestamp; [resp >= inv] *)
  op : op;
  result : bool;
      (** [Add]: element was absent and is now present; [Remove]: element was
          present and is now absent; [Contains]: membership. *)
}

type t
(** Mutable per-thread recorder.  [record] from thread [tid] must not race
    with itself — one recording thread per slot (trivially true under the
    simulator, where [record] runs between preemption points). *)

val create : nthreads:int -> t
val record : t -> tid:int -> inv:int -> resp:int -> op:op -> result:bool -> unit
val size : t -> int

val events : t -> event list
(** All recorded events sorted by invocation time (the order {!check}
    expects). *)

val op_to_string : op -> string
val event_to_string : event -> string

val check :
  ?window:int -> ?max_nodes:int -> final:int list -> event list -> (unit, string) result
(** [check ~final evs] searches for a linearization of [evs] (which must be
    sorted by [inv], as {!events} returns) that respects real-time order,
    replays every recorded result against a sequential set starting empty,
    and ends with exactly the elements [final].

    [window] bounds how many pending operations are considered at each step
    (histories from the simulator are nearly sequential, so a small window
    suffices); [max_nodes] bounds the search, turning pathological cases
    into [Error "checker budget exceeded"] rather than a wrong verdict.

    [Ok ()] means serializable; [Error msg] carries the deepest linearized
    prefix and the operations it got stuck on. *)
