(* Hygiene and determinism rules.  All identifier rules work on the
   parsetree, so occurrences inside comments and string literals are
   invisible by construction — the false-positive class the grep-era
   lint suffered from. *)

open Rule

let drop_stdlib = function "Stdlib" :: rest -> rest | comps -> comps

(* A prefix whose last element is capitalized names a module: the match
   must then be strictly longer (a bare constructor that happens to
   share the name — e.g. Json's own [Obj of members] — is not an access
   into the module). *)
let prefix_matches ~pre comps =
  let comps = drop_stdlib comps in
  let module_prefix =
    match List.rev pre with
    | last :: _ -> last <> "" && last.[0] >= 'A' && last.[0] <= 'Z'
    | [] -> false
  in
  (not (module_prefix && List.length comps = List.length pre))
  &&
  let rec go pre comps =
    match (pre, comps) with
    | [], _ -> true
    | p :: pre, c :: comps -> p = c && go pre comps
    | _ :: _, [] -> false
  in
  go pre comps

let dotted comps = String.concat "." comps

(* A rule that flags every reference whose flattened path matches one of
   [pres] (after an optional leading [Stdlib.]). *)
let mk_ident ~id ~scope_doc ~scope ~doc ~pres ~message =
  mk ~id ~severity:Finding.Error ~scope_doc ~scope ~doc
    (File_pass
       (fun file ->
         match file.str with
         | None -> []
         | Some str ->
             List.filter_map
               (fun (r : Astq.ref_) ->
                 match Astq.flatten r.r_lid with
                 | Some comps
                   when List.exists (fun pre -> prefix_matches ~pre comps) pres
                   ->
                     Some
                       (Finding.of_location ~rule:id ~severity:Finding.Error
                          r.r_loc (message comps))
                 | _ -> None)
               (Astq.structure_refs str)))

let obj_cast =
  mk_ident ~id:"obj-cast" ~scope_doc:"lib, bin, test" ~scope:(fun _ -> true)
    ~doc:"no unsafe casts or representation games through the Obj module"
    ~pres:[ [ "Obj" ] ]
    ~message:(fun comps ->
      dotted comps
      ^ " defeats the type system; there is no sound use of Obj in this \
         codebase")

let stdlib_random =
  mk_ident ~id:"stdlib-random"
    ~scope_doc:"lib, bin (except lib/util/xrand.ml)"
    ~scope:(fun p ->
      (in_lib p || in_bin p)
      && basename p <> "xrand.ml"
      && basename p <> "xrand.mli")
    ~doc:"all randomness threads a seeded Xrand stream for replayability"
    ~pres:[ [ "Random" ] ]
    ~message:(fun comps ->
      dotted comps
      ^ " breaks deterministic replay; use Xrand (lib/util/xrand.ml)")

let printf_in_lib =
  mk_ident ~id:"printf-in-lib" ~scope_doc:"lib (except lib/exec)"
    ~scope:(fun p -> in_lib p && not (under2 ~a:"lib" ~b:"exec" p))
    ~doc:
      "libraries return data or report through obs; printing belongs to \
       binaries and to lib/exec's Cli, which owns deterministic stdout"
    ~pres:[ [ "Printf"; "printf" ]; [ "print_endline" ]; [ "print_string" ] ]
    ~message:(fun comps ->
      dotted comps
      ^ " inside lib/; report through obs exporters or return data")

let wallclock =
  mk_ident ~id:"wallclock"
    ~scope_doc:"lib (except lib/obs/monotonic.ml and lib/exec)"
    ~scope:(fun p ->
      in_lib p
      && (not (under2 ~a:"lib" ~b:"exec" p))
      && basename p <> "monotonic.ml"
      && basename p <> "monotonic.mli")
    ~doc:
      "wall-clock reads live behind Tstm_obs.Monotonic (measurement) and \
       lib/exec (process supervision); everything else runs in virtual time"
    ~pres:[ [ "Sys"; "time" ]; [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ] ]
    ~message:(fun comps ->
      dotted comps
      ^ " is a nondeterministic clock; use Tstm_obs.Monotonic or virtual time")

let marshal_outside_exec =
  mk_ident ~id:"marshal-outside-exec" ~scope_doc:"lib, bin (except lib/exec)"
    ~scope:(fun p ->
      (in_lib p || in_bin p) && not (under2 ~a:"lib" ~b:"exec" p))
    ~doc:
      "Marshal round-trips are the job-pool protocol; anywhere else they \
       hide versioning and type-safety holes"
    ~pres:[ [ "Marshal" ] ]
    ~message:(fun comps ->
      dotted comps
      ^ " outside lib/exec; serialization goes through the typed exporters \
         or the exec job protocol")

let catch_all_handler =
  let id = "catch-all-handler" in
  mk ~id ~severity:Finding.Error ~scope_doc:"lib" ~scope:in_lib
    ~doc:
      "a try that swallows every exception also swallows Abort_exn, \
       Out_of_memory and assertion failures; match the exceptions the \
       expression can actually raise"
    (File_pass
       (fun file ->
         match file.str with
         | None -> []
         | Some str ->
             let acc = ref [] in
             let it =
               let open Ast_iterator in
               {
                 default_iterator with
                 expr =
                   (fun it e ->
                     (match e.Parsetree.pexp_desc with
                     | Parsetree.Pexp_try (_, cases) -> (
                         match List.rev cases with
                         | last :: _ -> (
                             match
                               ( last.Parsetree.pc_lhs.Parsetree.ppat_desc,
                                 last.Parsetree.pc_guard )
                             with
                             | Parsetree.Ppat_any, None ->
                                 acc :=
                                   Finding.of_location ~rule:id
                                     ~severity:Finding.Error
                                     last.Parsetree.pc_lhs.Parsetree.ppat_loc
                                     "catch-all `with _ ->` handler; match \
                                      the specific exceptions this \
                                      expression can raise"
                                   :: !acc
                             | _ -> ())
                         | [] -> ())
                     | _ -> ());
                     default_iterator.expr it e);
               }
             in
             it.structure it str;
             List.rev !acc))

let no_mli_allowlist = [ "intset_list.ml" ]

let mli_coverage =
  let id = "mli-coverage" in
  mk ~id ~severity:Finding.Error ~scope_doc:"lib" ~scope:in_lib
    ~doc:
      "every lib module states its interface; interface-only *_intf.ml \
       modules and the explicit allowlist are exempt"
    (Repo_pass
       (fun files ->
         let have_mli = Hashtbl.create 64 in
         List.iter
           (fun f -> if f.kind = Mli then Hashtbl.replace have_mli f.path ())
           files;
         List.filter_map
           (fun f ->
             if f.kind <> Ml || not (in_lib f.path) then None
             else
               let base = basename f.path in
               let is_intf =
                 String.length base > 8
                 && String.sub base (String.length base - 8) 8 = "_intf.ml"
               in
               if
                 is_intf
                 || List.mem base no_mli_allowlist
                 || Hashtbl.mem have_mli (f.path ^ "i")
               then None
               else
                 Some
                   (Finding.v ~rule:id ~severity:Finding.Error ~path:f.path
                      ~line:1
                      "missing .mli (interface-only *_intf.ml modules exempt)"))
           files))

let rules =
  [
    obj_cast;
    stdlib_random;
    printf_in_lib;
    wallclock;
    marshal_outside_exec;
    catch_all_handler;
    mli_coverage;
  ]
