(* The analysis driver: walk the tree, parse every OCaml file once with
   compiler-libs, run the per-file and whole-repo rule passes, then
   apply the suppression discipline (unknown and stale suppressions are
   themselves findings, so allow-comments cannot rot). *)

let fixture_dir_name = "lint_fixtures"

(* --- loading --------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let parse_error_finding ~path (loc : Location.t) =
  let line = max 1 loc.loc_start.pos_lnum in
  let col = max 0 (loc.loc_start.pos_cnum - loc.loc_start.pos_bol) in
  Finding.v ~rule:"parse-error" ~severity:Finding.Error ~path ~line ~col
    "compiler-libs could not parse this file"

let with_lexbuf ~path text f =
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  match f lexbuf with
  | v -> Ok v
  | exception Syntaxerr.Error e -> Error (Syntaxerr.location_of_error e)
  | exception Lexer.Error (_, loc) -> Error loc

type loaded = { file : Rule.file; parse_findings : Finding.t list }

let load_ml ~path text =
  let comments = Scan.comments text in
  match with_lexbuf ~path text Parse.implementation with
  | Ok str ->
      {
        file =
          { Rule.path; kind = Rule.Ml; text; str = Some str; intf = None; comments };
        parse_findings = [];
      }
  | Error loc ->
      {
        file = { Rule.path; kind = Rule.Ml; text; str = None; intf = None; comments };
        parse_findings = [ parse_error_finding ~path loc ];
      }

let load_mli ~path text =
  let comments = Scan.comments text in
  match with_lexbuf ~path text Parse.interface with
  | Ok intf ->
      {
        file =
          { Rule.path; kind = Rule.Mli; text; str = None; intf = Some intf; comments };
        parse_findings = [];
      }
  | Error loc ->
      {
        file = { Rule.path; kind = Rule.Mli; text; str = None; intf = None; comments };
        parse_findings = [ parse_error_finding ~path loc ];
      }

let load path =
  let text = read_file path in
  let base = Filename.basename path in
  if base = "dune" then
    Some
      {
        file =
          { Rule.path; kind = Rule.Dune; text; str = None; intf = None; comments = [] };
        parse_findings = [];
      }
  else if Filename.check_suffix base ".mli" then Some (load_mli ~path text)
  else if Filename.check_suffix base ".ml" then Some (load_ml ~path text)
  else None

let rec walk acc path =
  if Sys.is_directory path then begin
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc e ->
        let child = Filename.concat path e in
        if Sys.is_directory child then
          if e = "_build" || e = fixture_dir_name || (e <> "" && e.[0] = '.')
          then acc
          else walk acc child
        else match load child with Some l -> l :: acc | None -> acc)
      acc entries
  end
  else match load path with Some l -> l :: acc | None -> acc

(* Roots themselves are always entered, so `lint test/lint_fixtures`
   works while `lint test` skips the corpus. *)
let load_roots roots = List.rev (List.fold_left walk [] roots)

(* --- suppressions ---------------------------------------------------- *)

let file_directives (f : Rule.file) =
  match f.kind with
  | Rule.Dune -> Scan.dune_directives f.text
  | Rule.Ml | Rule.Mli -> Scan.directives f.comments

type allow = { a_line : int; a_id : string; mutable a_used : bool }

(* Apply the suppression discipline to one file's findings.  Returns the
   surviving findings plus the meta findings the directives themselves
   produce. *)
let apply_suppressions ~path ~directives findings =
  let allows = ref [] in
  let meta = ref [] in
  let push_meta ~line msg =
    meta :=
      Finding.v ~rule:"suppression-unknown" ~severity:Finding.Error ~path ~line
        msg
      :: !meta
  in
  List.iter
    (fun (d : Scan.directive) ->
      match d with
      | Scan.Allow { line; id; reason = _ } ->
          if List.mem id Rules.meta_ids then
            push_meta ~line
              (Printf.sprintf "rule `%s` cannot be suppressed" id)
          else if not (List.mem id Rules.known_ids) then
            push_meta ~line
              (Printf.sprintf
                 "unknown rule id `%s` in suppression (known: %s)" id
                 (String.concat ", " Rules.ids))
          else allows := { a_line = line; a_id = id; a_used = false } :: !allows
      | Scan.Expect _ -> ()
      | Scan.Malformed { line; text } ->
          push_meta ~line
            (Printf.sprintf
               "malformed lint directive `%s` (expected `lint: allow \
                <rule-id> — <reason>`)"
               text))
    directives;
  let allows = List.rev !allows in
  let kept =
    List.filter
      (fun (f : Finding.t) ->
        if List.mem f.rule Rules.meta_ids then true
        else
          match
            List.find_opt
              (fun a ->
                a.a_id = f.rule && (f.line = a.a_line || f.line = a.a_line + 1))
              allows
          with
          | Some a ->
              a.a_used <- true;
              false
          | None -> true)
      findings
  in
  let stale =
    List.filter_map
      (fun a ->
        if a.a_used then None
        else
          Some
            (Finding.v ~rule:"suppression-stale" ~severity:Finding.Error ~path
               ~line:a.a_line
               (Printf.sprintf
                  "suppression of `%s` masks no finding; delete it" a.a_id)))
      allows
  in
  kept @ List.rev !meta @ stale

(* --- running --------------------------------------------------------- *)

type result = { findings : Finding.t list; files_checked : int }

let raw_findings ~rules loaded =
  let files = List.map (fun l -> l.file) loaded in
  let per_file =
    List.concat_map
      (fun (r : Rule.t) ->
        match r.check with
        | Rule.File_pass check ->
            List.concat_map
              (fun (f : Rule.file) -> if r.scope f.path then check f else [])
              files
        | Rule.Repo_pass check -> check files)
      rules
  in
  let parse = List.concat_map (fun l -> l.parse_findings) loaded in
  parse @ per_file

let finish ~loaded findings =
  (* Suppressions are per-file: group findings by path, then fold each
     file's directives over them. *)
  let by_path = Hashtbl.create 64 in
  List.iter
    (fun (f : Finding.t) ->
      let cur = Option.value (Hashtbl.find_opt by_path f.path) ~default:[] in
      Hashtbl.replace by_path f.path (f :: cur))
    findings;
  let out =
    List.concat_map
      (fun l ->
        let path = l.file.Rule.path in
        let fs =
          List.rev (Option.value (Hashtbl.find_opt by_path path) ~default:[])
        in
        Hashtbl.remove by_path path;
        apply_suppressions ~path ~directives:(file_directives l.file) fs)
      loaded
  in
  (* Findings anchored in files we did not load (there should be none,
     but never drop a finding silently). *)
  let rest = Hashtbl.fold (fun _ fs acc -> fs @ acc) by_path [] in
  List.sort_uniq Finding.compare (out @ rest)

let run ?(rules = Rules.all) ~roots () =
  let loaded = load_roots roots in
  {
    findings = finish ~loaded (raw_findings ~rules loaded);
    files_checked = List.length loaded;
  }

(* In-memory single-file check (unit tests; per-file rules only). *)
let check_source ?(rules = Rules.all) ~path ~text () =
  let l =
    if Filename.check_suffix path ".mli" then load_mli ~path text
    else load_ml ~path text
  in
  let file_rules =
    List.filter (fun (r : Rule.t) ->
        match r.check with Rule.File_pass _ -> true | Rule.Repo_pass _ -> false)
      rules
  in
  finish ~loaded:[ l ] (raw_findings ~rules:file_rules [ l ])

(* --- teeth (fixture corpora) ----------------------------------------- *)

type teeth = { mismatches : string list; expectations : int }

let teeth ?(rules = Rules.all) ~roots () =
  let loaded = load_roots roots in
  let findings = finish ~loaded (raw_findings ~rules loaded) in
  let expected = Hashtbl.create 64 in
  List.iter
    (fun l ->
      List.iter
        (fun (d : Scan.directive) ->
          match d with
          | Scan.Expect { line; id } ->
              Hashtbl.replace expected (l.file.Rule.path, line, id) false
          | _ -> ())
        (file_directives l.file))
    loaded;
  let unexpected =
    List.filter_map
      (fun (f : Finding.t) ->
        let key = (f.path, f.line, f.rule) in
        if Hashtbl.mem expected key then begin
          Hashtbl.replace expected key true;
          None
        end
        else
          Some
            (Printf.sprintf "unexpected: %s:%d [%s] %s" f.path f.line f.rule
               f.message))
      findings
  in
  let missing =
    Hashtbl.fold
      (fun (path, line, id) hit acc ->
        if hit then acc
        else Printf.sprintf "missing: %s:%d [%s] did not fire" path line id :: acc)
      expected []
  in
  {
    mismatches = unexpected @ List.sort compare missing;
    expectations = Hashtbl.length expected;
  }
