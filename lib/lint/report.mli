(** Pure report renderers (findings in, string out; the binary prints).

    Three formats: [human] (path:line:col lines plus a summary),
    [github] (GitHub Actions [::error] workflow commands, rendered as
    inline PR annotations), and [json] (machine-readable,
    ["tstm-lint/1"] schema). *)

val human : files_checked:int -> rules:int -> Finding.t list -> string
val github : Finding.t list -> string
val json : files_checked:int -> Finding.t list -> string

val rule_table : Rule.t list -> string
(** Rule listing for [lint --rules]. *)
