(** Parsetree queries shared by the rules.

    The call-graph layer is a deliberate over-approximation: any
    reference to a known let-bound name counts as a call edge (a
    function passed to an iterator is a potential call), and a
    function's subtree includes nested definitions.  Both err on the
    side of reachability, the conservative direction for pairing
    rules. *)

type ref_ = { r_lid : Longident.t; r_loc : Location.t }

val flatten : Longident.t -> string list option
(** [None] on functor applications. *)

val suffix_matches : pat:string list -> Longident.t -> bool
(** The flattened path ends with [pat]: [pat = ["San"; "lock_acquire"]]
    matches both [San.lock_acquire] and [Tstm_san.San.lock_acquire]. *)

val head : Longident.t -> string option
(** Leading component: [Tstm_harness.Driver.run] has head
    [Tstm_harness]. *)

val structure_refs : Parsetree.structure -> ref_ list
(** Every longident reference — values, constructors, record fields,
    type constructors, module expressions/types, opens — in source
    order, with precise locations. *)

val signature_refs : Parsetree.signature -> ref_ list
val expr_refs : Parsetree.expression -> ref_ list

type fn = {
  fn_name : string;
  fn_loc : Location.t;  (** the whole value binding *)
  fn_refs : ref_ list;  (** references in the full subtree *)
}

val functions : Parsetree.structure -> fn list
(** Every [let]-bound name at any nesting depth. *)

type 'a effects = {
  fns : fn list;
  eff : (string, 'a list) Hashtbl.t;
  roots : fn list;  (** functions no other function references *)
}

val transitive_effects :
  direct:(ref_ -> 'a list) -> Parsetree.structure -> 'a effects
(** Build the intra-module call graph, seed each function with the
    effects [direct] assigns to its references, and close under
    caller-of transitivity. *)

val effects_of : 'a effects -> string -> 'a list
