let all = Rules_hygiene.rules @ Rules_stm.rules

let ids = List.map (fun (r : Rule.t) -> r.id) all

(* Meta rule ids the suppression machinery itself can emit; they exist
   so fixtures can `lint: expect` them and reports can title them, but
   they cannot be suppressed. *)
let meta_ids = [ "suppression-unknown"; "suppression-stale"; "parse-error" ]

let known_ids = ids @ meta_ids
