(* A small lexical scanner over OCaml source text.  Its only job is to
   find comments with their positions so the engine can read lint
   directives out of them; everything code-shaped is handled by the real
   parser (compiler-libs), which is what makes the rules blind to
   comments and string literals by construction.

   The scanner understands what the OCaml lexer understands about
   nesting: comments nest, string literals inside comments must be
   balanced (["*)"] inside a quoted string does not close the comment),
   quoted strings [{id|...|id}] are opaque, and [' '] char literals are
   distinguished from type variables ['a]. *)

type comment = { c_line : int; c_col : int; c_text : string }

type directive =
  | Allow of { line : int; id : string; reason : string }
  | Expect of { line : int; id : string }
  | Malformed of { line : int; text : string }

let comments src =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let bol = ref 0 in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let newline () =
    incr line;
    bol := !i + 1
  in
  let advance () =
    if src.[!i] = '\n' then newline ();
    incr i
  in
  (* Consume a string literal body starting after the opening quote. *)
  let rec skip_string () =
    if !i < n then
      match src.[!i] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !i < n then advance ();
          skip_string ()
      | _ ->
          advance ();
          skip_string ()
  in
  (* Quoted string {id|...|id}: [delim] is the raw "id" between { and |. *)
  let skip_quoted delim =
    let close = "|" ^ delim ^ "}" in
    let m = String.length close in
    let rec go () =
      if !i < n then
        if !i + m <= n && String.sub src !i m = close then
          for _ = 1 to m do
            advance ()
          done
        else begin
          advance ();
          go ()
        end
    in
    go ()
  in
  let quoted_delim_at k =
    (* At src.[k] = '{': returns Some delim if this opens a quoted
       string (brace, lowercase id, pipe). *)
    let rec go j =
      if j >= n then None
      else
        match src.[j] with
        | 'a' .. 'z' | '_' -> go (j + 1)
        | '|' -> Some (String.sub src (k + 1) (j - k - 1))
        | _ -> None
    in
    go (k + 1)
  in
  let rec skip_comment depth start_line start_col buf_start =
    if !i >= n then ()
    else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
      advance ();
      advance ();
      if depth = 1 then
        out :=
          {
            c_line = start_line;
            c_col = start_col;
            c_text = String.sub src buf_start (!i - 2 - buf_start);
          }
          :: !out
      else skip_comment (depth - 1) start_line start_col buf_start
    end
    else if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
      advance ();
      advance ();
      skip_comment (depth + 1) start_line start_col buf_start
    end
    else if src.[!i] = '"' then begin
      advance ();
      skip_string ();
      skip_comment depth start_line start_col buf_start
    end
    else begin
      advance ();
      skip_comment depth start_line start_col buf_start
    end
  in
  while !i < n do
    match src.[!i] with
    | '(' when peek 1 = Some '*' ->
        let l = !line and c = !i - !bol in
        advance ();
        advance ();
        skip_comment 1 l c !i
    | '"' ->
        advance ();
        skip_string ()
    | '{' -> (
        match quoted_delim_at !i with
        | Some delim ->
            for _ = 0 to String.length delim + 1 do
              advance ()
            done;
            skip_quoted delim
        | None -> advance ())
    | '\'' ->
        (* Char literal ['x'] or ['\n'], versus type variable ['a]. *)
        if peek 1 = Some '\\' then begin
          advance ();
          advance ();
          (* escaped char: skip to closing quote *)
          while !i < n && src.[!i] <> '\'' do
            advance ()
          done;
          if !i < n then advance ()
        end
        else if peek 2 = Some '\'' then begin
          advance ();
          advance ();
          advance ()
        end
        else advance ()
    | _ -> advance ()
  done;
  List.rev !out

(* --- directives ------------------------------------------------------ *)

let is_id_char = function
  | 'a' .. 'z' | '0' .. '9' | '-' -> true
  | _ -> false

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\n')
  |> List.filter (fun w -> w <> "")

let parse_directive ~line text =
  let t = String.trim text in
  let prefix = "lint:" in
  if
    String.length t < String.length prefix
    || String.sub t 0 (String.length prefix) <> prefix
  then None
  else
    let rest =
      String.trim (String.sub t 5 (String.length t - 5))
    in
    match split_words rest with
    | "allow" :: id :: reason when String.for_all is_id_char id && id <> "" ->
        (* A reason is mandatory: an unexplained suppression is itself a
           finding.  Accept any separator ("—", "--", ":") or none. *)
        let reason =
          match reason with
          | sep :: more when sep = "\xe2\x80\x94" || sep = "--" || sep = ":" ->
              String.concat " " more
          | words -> String.concat " " words
        in
        if reason = "" then Some (Malformed { line; text = t })
        else Some (Allow { line; id; reason })
    | "expect" :: id :: _ when String.for_all is_id_char id && id <> "" ->
        Some (Expect { line; id })
    | _ -> Some (Malformed { line; text = t })

let directives comments =
  List.filter_map
    (fun c -> parse_directive ~line:c.c_line c.c_text)
    comments

(* Dune files carry directives in ';' line comments. *)
let dune_directives src =
  let lines = String.split_on_char '\n' src in
  List.concat
    (List.mapi
       (fun k l ->
         match String.index_opt l ';' with
         | None -> []
         | Some p -> (
             let text = String.sub l (p + 1) (String.length l - p - 1) in
             match parse_directive ~line:(k + 1) text with
             | Some d -> [ d ]
             | None -> []))
       lines)
