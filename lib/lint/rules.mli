(** The rule registry: every shipped rule, in report order. *)

val all : Rule.t list
val ids : string list

val meta_ids : string list
(** Findings the engine itself can emit ([suppression-unknown],
    [suppression-stale], [parse-error]); valid in [lint: expect]
    directives but never suppressible. *)

val known_ids : string list
