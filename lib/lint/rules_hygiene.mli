(** Hygiene and determinism rules (AST-based, so comments and string
    literals can never trip them):

    - [obj-cast]: no use of the [Obj] module, anywhere.
    - [stdlib-random]: no [Stdlib.Random] in lib/bin; randomness threads a
      seeded {!Tstm_util.Xrand} stream.
    - [printf-in-lib]: no [Printf.printf]/[print_endline]/[print_string]
      inside lib/.
    - [wallclock]: no [Sys.time]/[Unix.gettimeofday]/[Unix.time] in lib/
      outside [Tstm_obs.Monotonic] and [lib/exec].
    - [marshal-outside-exec]: [Marshal] only inside [lib/exec].
    - [catch-all-handler]: no [try ... with _ ->] in lib/.
    - [mli-coverage]: every lib [.ml] has an [.mli] ([*_intf.ml] and the
      allowlist exempt). *)

val rules : Rule.t list
