type severity = Error | Warning

type t = {
  rule : string;
  severity : severity;
  path : string;
  line : int;
  col : int;
  message : string;
}

let severity_string = function Error -> "error" | Warning -> "warning"

let v ~rule ~severity ~path ~line ?(col = 0) message =
  { rule; severity; path; line; col; message }

let of_location ~rule ~severity (loc : Location.t) message =
  let p = loc.loc_start in
  {
    rule;
    severity;
    path = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    message;
  }

let compare a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let is_error f = f.severity = Error
