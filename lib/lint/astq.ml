(* Parsetree queries shared by the rules: longident references with
   precise locations, and an intra-module call graph of let-bound
   functions with transitive "effect" propagation.

   Everything here is an approximation chosen to be cheap and
   predictable: a reference to a known function name counts as a call
   edge (passing a function to an iterator is a potential call), and a
   function's own subtree includes the bodies of functions nested inside
   it.  Both over-approximate reachability, which is the conservative
   direction for pairing rules. *)

open Parsetree

type ref_ = { r_lid : Longident.t; r_loc : Location.t }

let flatten lid =
  (* Longident.flatten raises on functor applications; those carry no
     value reference we care about. *)
  let rec go acc = function
    | Longident.Lident s -> Some (s :: acc)
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> None
  in
  go [] lid

let suffix_matches ~pat lid =
  match flatten lid with
  | None -> false
  | Some comps ->
      let nc = List.length comps and np = List.length pat in
      nc >= np
      && List.filteri (fun i _ -> i >= nc - np) comps = pat

let head lid =
  match flatten lid with Some (h :: _) -> Some h | _ -> None

(* --- reference collection ------------------------------------------- *)

let refs_iterator push =
  let open Ast_iterator in
  {
    default_iterator with
    expr =
      (fun it e ->
        (match e.pexp_desc with
        | Pexp_ident { txt; loc } -> push { r_lid = txt; r_loc = loc }
        | Pexp_construct ({ txt; loc }, _) -> push { r_lid = txt; r_loc = loc }
        | Pexp_field (_, { txt; loc }) | Pexp_setfield (_, { txt; loc }, _) ->
            push { r_lid = txt; r_loc = loc }
        | Pexp_open (od, _) -> (
            match od.popen_expr.pmod_desc with
            | Pmod_ident { txt; loc } -> push { r_lid = txt; r_loc = loc }
            | _ -> ())
        | _ -> ());
        default_iterator.expr it e);
    typ =
      (fun it t ->
        (match t.ptyp_desc with
        | Ptyp_constr ({ txt; loc }, _) | Ptyp_class ({ txt; loc }, _) ->
            push { r_lid = txt; r_loc = loc }
        | _ -> ());
        default_iterator.typ it t);
    pat =
      (fun it p ->
        (match p.ppat_desc with
        | Ppat_construct ({ txt; loc }, _) -> push { r_lid = txt; r_loc = loc }
        | _ -> ());
        default_iterator.pat it p);
    module_expr =
      (fun it m ->
        (match m.pmod_desc with
        | Pmod_ident { txt; loc } -> push { r_lid = txt; r_loc = loc }
        | _ -> ());
        default_iterator.module_expr it m);
    module_type =
      (fun it m ->
        (match m.pmty_desc with
        | Pmty_ident { txt; loc } -> push { r_lid = txt; r_loc = loc }
        | _ -> ());
        default_iterator.module_type it m);
    open_description =
      (fun it od ->
        push { r_lid = od.popen_expr.txt; r_loc = od.popen_expr.loc };
        default_iterator.open_description it od);
  }

let structure_refs str =
  let acc = ref [] in
  let it = refs_iterator (fun r -> acc := r :: !acc) in
  it.structure it str;
  List.rev !acc

let signature_refs sg =
  let acc = ref [] in
  let it = refs_iterator (fun r -> acc := r :: !acc) in
  it.signature it sg;
  List.rev !acc

let expr_refs e =
  let acc = ref [] in
  let it = refs_iterator (fun r -> acc := r :: !acc) in
  it.expr it e;
  List.rev !acc

(* --- functions and the call graph ----------------------------------- *)

type fn = { fn_name : string; fn_loc : Location.t; fn_refs : ref_ list }

let functions str =
  let acc = ref [] in
  let it =
    let open Ast_iterator in
    {
      default_iterator with
      value_binding =
        (fun it vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt; _ } ->
              acc :=
                {
                  fn_name = txt;
                  fn_loc = vb.pvb_loc;
                  fn_refs = expr_refs vb.pvb_expr;
                }
                :: !acc
          | _ -> ());
          default_iterator.value_binding it vb);
    }
  in
  it.structure it str;
  List.rev !acc

type 'a effects = {
  fns : fn list;
  eff : (string, 'a list) Hashtbl.t;  (** transitive, after closure *)
  roots : fn list;  (** functions no other function references *)
}

let transitive_effects ~direct str =
  let fns = functions str in
  let names = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace names f.fn_name ()) fns;
  (* Direct effects and call edges per function name (merging shadowed
     names: the union is the conservative choice). *)
  let eff = Hashtbl.create 64 in
  let edges = Hashtbl.create 64 in
  let referenced = Hashtbl.create 64 in
  let add tbl k v =
    let cur = Option.value (Hashtbl.find_opt tbl k) ~default:[] in
    if not (List.mem v cur) then Hashtbl.replace tbl k (v :: cur)
  in
  List.iter
    (fun f ->
      if not (Hashtbl.mem eff f.fn_name) then Hashtbl.replace eff f.fn_name [];
      List.iter
        (fun r ->
          List.iter (fun e -> add eff f.fn_name e) (direct r);
          match r.r_lid with
          | Longident.Lident callee when Hashtbl.mem names callee ->
              if callee <> f.fn_name then begin
                add edges f.fn_name callee;
                Hashtbl.replace referenced callee ()
              end
          | _ -> ())
        f.fn_refs)
    fns;
  (* Fixpoint: propagate callee effects to callers. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun caller callees ->
        let cur = Option.value (Hashtbl.find_opt eff caller) ~default:[] in
        let extended =
          List.fold_left
            (fun cur callee ->
              List.fold_left
                (fun cur e -> if List.mem e cur then cur else e :: cur)
                cur
                (Option.value (Hashtbl.find_opt eff callee) ~default:[]))
            cur callees
        in
        if List.length extended <> List.length cur then begin
          Hashtbl.replace eff caller extended;
          changed := true
        end)
      edges
  done;
  let roots =
    List.filter (fun f -> not (Hashtbl.mem referenced f.fn_name)) fns
  in
  { fns; eff; roots }

let effects_of { eff; _ } name =
  Option.value (Hashtbl.find_opt eff name) ~default:[]
