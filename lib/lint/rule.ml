type kind = Ml | Mli | Dune

type file = {
  path : string;
  kind : kind;
  text : string;
  str : Parsetree.structure option;
  intf : Parsetree.signature option;
  comments : Scan.comment list;
}

type check =
  | File_pass of (file -> Finding.t list)
  | Repo_pass of (file list -> Finding.t list)

type t = {
  id : string;
  severity : Finding.severity;
  scope_doc : string;
  scope : string -> bool;
  doc : string;
  check : check;
}

(* --- path scoping helpers ------------------------------------------- *)

let segments path = String.split_on_char '/' path

(* [under ~dir path]: [path] has a segment equal to [dir].  Fixture
   corpora mirror the repo layout (test/lint_fixtures/lib/...), so
   segment tests make the same rule fire on real code and on its
   fixtures. *)
let under ~dir path = List.mem dir (segments path)

(* [under2 ~a ~b path]: segment [a] immediately followed by [b]. *)
let under2 ~a ~b path =
  let rec go = function
    | x :: (y :: _ as rest) -> (x = a && y = b) || go rest
    | _ -> false
  in
  go (segments path)

let in_lib path = under ~dir:"lib" path
let in_bin path = under ~dir:"bin" path

let basename path =
  match List.rev (segments path) with b :: _ -> b | [] -> path

let finding rule (loc : Location.t) message =
  Finding.of_location ~rule:rule.id ~severity:rule.severity loc message

let mk ~id ~severity ~scope_doc ~scope ~doc check =
  { id; severity; scope_doc; scope; doc; check }
