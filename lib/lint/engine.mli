(** The analysis driver.

    [run] walks the given roots (skipping [_build], dot-directories and
    [lint_fixtures] corpora — unless a corpus is itself a root), parses
    every [.ml]/[.mli] with compiler-libs, loads [dune] files for the
    repo passes, runs the rules, and applies the suppression
    discipline:

    - [(* lint: allow <rule-id> — <reason> *)] masks findings of that
      rule on the same or the next line;
    - an unknown/misspelled rule-id, a missing reason, or an attempt to
      suppress a meta rule is a [suppression-unknown] finding;
    - a suppression that masks nothing is a [suppression-stale] finding;
    - a file compiler-libs cannot parse is a [parse-error] finding. *)

type result = { findings : Finding.t list; files_checked : int }

val run : ?rules:Rule.t list -> roots:string list -> unit -> result
(** Findings are sorted and deduplicated; empty means a clean pass. *)

val check_source :
  ?rules:Rule.t list -> path:string -> text:string -> unit -> Finding.t list
(** In-memory single-file check: per-file rules plus the suppression
    machinery, no repo passes.  [path] is not read — it only drives rule
    scoping ([.mli] paths are parsed as interfaces). *)

type teeth = { mismatches : string list; expectations : int }

val teeth : ?rules:Rule.t list -> roots:string list -> unit -> teeth
(** Fixture-corpus mode: every finding must be announced by a
    [(* lint: expect <rule-id> *)] directive on its exact line, and
    every expectation must fire.  [mismatches] lists both directions;
    empty means the corpus bites exactly as declared. *)
