(* Pure renderers: findings in, string out.  The binary does the
   printing (printf-in-lib applies to this library too). *)

let buf_add = Buffer.add_string

let human ~files_checked ~rules findings =
  let b = Buffer.create 1024 in
  List.iter
    (fun (f : Finding.t) ->
      buf_add b
        (Printf.sprintf "%s:%d:%d: [%s] %s: %s\n" f.path f.line f.col f.rule
           (Finding.severity_string f.severity)
           f.message))
    findings;
  (match findings with
  | [] ->
      buf_add b
        (Printf.sprintf "lint: OK (%d files, %d rules)\n" files_checked rules)
  | fs ->
      let n = List.length fs in
      buf_add b
        (Printf.sprintf "lint: %d finding%s\n" n (if n = 1 then "" else "s")));
  Buffer.contents b

(* GitHub Actions workflow commands: one annotation per finding, shown
   inline on the PR diff.  Columns are 1-based there. *)
let github_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> buf_add b "%25"
      | '\n' -> buf_add b "%0A"
      | '\r' -> buf_add b "%0D"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let github findings =
  let b = Buffer.create 1024 in
  List.iter
    (fun (f : Finding.t) ->
      buf_add b
        (Printf.sprintf "::%s file=%s,line=%d,col=%d,title=%s::%s\n"
           (match f.severity with
           | Finding.Error -> "error"
           | Finding.Warning -> "warning")
           f.path f.line (f.col + 1) f.rule
           (github_escape f.message)))
    findings;
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> buf_add b "\\\""
      | '\\' -> buf_add b "\\\\"
      | '\n' -> buf_add b "\\n"
      | '\t' -> buf_add b "\\t"
      | '\r' -> buf_add b "\\r"
      | c when Char.code c < 0x20 ->
          buf_add b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json ~files_checked findings =
  let b = Buffer.create 1024 in
  buf_add b "{\n  \"version\": \"tstm-lint/1\",\n";
  buf_add b (Printf.sprintf "  \"files_checked\": %d,\n" files_checked);
  buf_add b "  \"findings\": [";
  List.iteri
    (fun i (f : Finding.t) ->
      if i > 0 then buf_add b ",";
      buf_add b
        (Printf.sprintf
           "\n    { \"rule\": \"%s\", \"severity\": \"%s\", \"file\": \
            \"%s\", \"line\": %d, \"col\": %d, \"message\": \"%s\" }"
           (json_escape f.rule)
           (Finding.severity_string f.severity)
           (json_escape f.path) f.line f.col (json_escape f.message)))
    findings;
  if findings <> [] then buf_add b "\n  ";
  buf_add b "]\n}\n";
  Buffer.contents b

let rule_table rules =
  let b = Buffer.create 1024 in
  List.iter
    (fun (r : Rule.t) ->
      buf_add b
        (Printf.sprintf "%-22s %-7s scope: %s\n%22s   %s\n" r.Rule.id
           (Finding.severity_string r.Rule.severity)
           r.Rule.scope_doc "" r.Rule.doc))
    rules;
  Buffer.contents b
