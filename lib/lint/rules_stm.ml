(* STM-protocol rules: the discipline the word-based STM's correctness
   rests on, checked where the dynamic tools (VmmSan, the chaos
   checker) cannot see — on every path, not just executed ones.

   The pairing analyses anchor on the sanitizer annotations
   (San.lock_acquire, San.lock_release, San.tx_abort, ...) that PR 3
   placed at the real protocol operations: the annotation *is* the
   machine-checkable marker of the operation, so a path that can
   acquire without reaching a release or an abort is either a protocol
   bug or a missing annotation — both findings. *)

open Rule

type eff = Acq | Rel | Abt | Mem | Chg

let suffix r pat = Astq.suffix_matches ~pat r.Astq.r_lid

let in_stm p =
  under2 ~a:"lib" ~b:"tinystm" p
  || under2 ~a:"lib" ~b:"tl2" p
  || under2 ~a:"lib" ~b:"norec" p

(* --- stm-lock-pairing ------------------------------------------------ *)

(* The global sequence lock follows the same acquire/release discipline as
   an orec slot; its Tap.seqlock producers are the machine-checkable
   markers of the even-to-odd CAS and the publishing store. *)
let lock_pairing_direct r =
  if suffix r [ "San"; "lock_acquire" ] then [ Acq ]
  else if suffix r [ "San"; "lock_release" ] then [ Rel ]
  else if suffix r [ "Tap"; "seqlock_acquire" ] then [ Acq ]
  else if suffix r [ "Tap"; "seqlock_release" ] then [ Rel ]
  else if suffix r [ "San"; "tx_abort" ] then [ Abt ]
  else if suffix r [ "Abort_exn" ] then [ Abt ]
  else []

let stm_lock_pairing =
  let id = "stm-lock-pairing" in
  mk ~id ~severity:Finding.Error ~scope_doc:"lib/tinystm, lib/tl2, lib/norec"
    ~scope:in_stm
    ~doc:
      "every call path that can acquire an orec or the global sequence \
       lock reaches a release or an abort within the module"
    (File_pass
       (fun file ->
         match file.str with
         | None -> []
         | Some str ->
             let g = Astq.transitive_effects ~direct:lock_pairing_direct str in
             List.filter_map
               (fun (f : Astq.fn) ->
                 let e = Astq.effects_of g f.fn_name in
                 if
                   List.mem Acq e
                   && (not (List.mem Rel e))
                   && not (List.mem Abt e)
                 then
                   Some
                     (Finding.of_location ~rule:id ~severity:Finding.Error
                        f.fn_loc
                        (Printf.sprintf
                           "entry point `%s` can acquire an orec \
                            (San.lock_acquire reachable) but reaches \
                            neither a release (San.lock_release) nor an \
                            abort (San.tx_abort)"
                           f.fn_name))
                 else None)
               g.roots))

(* --- vmm-charge ------------------------------------------------------ *)

let vmm_charge_direct r =
  if
    suffix r [ "V"; "load" ]
    || suffix r [ "V"; "store" ]
    || suffix r [ "Vmm"; "load" ]
    || suffix r [ "Vmm"; "store" ]
  then [ Mem ]
  else
    match Astq.flatten r.Astq.r_lid with
    | Some comps when List.length comps >= 2 -> (
        match List.rev comps with
        | ("charge" | "charge_local" | "charge_noyield") :: _ -> [ Chg ]
        | _ -> [])
    | _ -> []

let vmm_charge =
  let id = "vmm-charge" in
  mk ~id ~severity:Finding.Error
    ~scope_doc:"lib/tinystm, lib/tl2, lib/norec, lib/structures"
    ~scope:(fun p -> in_stm p || under2 ~a:"lib" ~b:"structures" p)
    ~doc:
      "raw Vmm word accesses are only reachable from entry points that \
       charge simulated cycles, so every simulated step is accounted"
    (File_pass
       (fun file ->
         match file.str with
         | None -> []
         | Some str ->
             let g = Astq.transitive_effects ~direct:vmm_charge_direct str in
             List.filter_map
               (fun (f : Astq.fn) ->
                 let e = Astq.effects_of g f.fn_name in
                 if List.mem Mem e && not (List.mem Chg e) then
                   Some
                     (Finding.of_location ~rule:id ~severity:Finding.Error
                        f.fn_loc
                        (Printf.sprintf
                           "entry point `%s` reaches a raw Vmm load/store \
                            but never charges Sim_sched cycles \
                            (R.charge/charge_local/charge_noyield)"
                           f.fn_name))
                 else None)
               g.roots))

(* --- tap-pairing ----------------------------------------------------- *)

let tap_pairs =
  [
    ([ "San"; "lock_acquire" ], [ "San"; "lock_release" ]);
    ([ "Tap"; "seqlock_acquire" ], [ "Tap"; "seqlock_release" ]);
    ([ "San"; "tx_begin" ], [ "San"; "tx_exit" ]);
    ([ "San"; "fence_owner_entry" ], [ "San"; "fence_owner_exit" ]);
    ([ "Tap"; "suspend" ], [ "Tap"; "resume" ]);
    ([ "Tap"; "vmm_alloc" ], [ "Tap"; "vmm_free" ]);
  ]

let tap_pairing =
  let id = "tap-pairing" in
  mk ~id ~severity:Finding.Error ~scope_doc:"lib" ~scope:in_lib
    ~doc:
      "sanitizer/tap producer hooks come in pairs; a module that emits one \
       side must emit the other or the shadow state leaks"
    (File_pass
       (fun file ->
         match file.str with
         | None -> []
         | Some str ->
             let refs = Astq.structure_refs str in
             let first pat =
               List.find_opt (fun r -> suffix r pat) refs
             in
             List.concat_map
               (fun (a, b) ->
                 let fail present missing (r : Astq.ref_) =
                   [
                     Finding.of_location ~rule:id ~severity:Finding.Error
                       r.r_loc
                       (Printf.sprintf
                          "%s without a matching %s anywhere in this module"
                          (String.concat "." present)
                          (String.concat "." missing));
                   ]
                 in
                 match (first a, first b) with
                 | Some r, None -> fail a b r
                 | None, Some r -> fail b a r
                 | _ -> [])
               tap_pairs))

(* --- layering -------------------------------------------------------- *)

(* The declared architecture: one row per library under lib/, with the
   set of libraries it may depend on (directly).  Checked against both
   the source parsetrees (module references) and the dune stanzas.  A
   new library must be added here before anything may depend on it. *)
type layer = {
  dir : string;  (** directory under lib/ *)
  root_module : string;  (** wrapped root module name *)
  lib_name : string;  (** dune library name *)
  allowed : string list;  (** dirs this library may depend on *)
}

let layers =
  [
    { dir = "util"; root_module = "Tstm_util"; lib_name = "tstm_util"; allowed = [] };
    { dir = "obs"; root_module = "Tstm_obs"; lib_name = "tstm_obs"; allowed = [ "util" ] };
    { dir = "chaos"; root_module = "Tstm_chaos"; lib_name = "tstm_chaos"; allowed = [ "util" ] };
    { dir = "fault"; root_module = "Tstm_fault"; lib_name = "tstm_fault"; allowed = [ "util"; "obs" ] };
    { dir = "cm"; root_module = "Tstm_cm"; lib_name = "tstm_cm"; allowed = [ "util" ] };
    { dir = "runtime"; root_module = "Tstm_runtime"; lib_name = "tstm_runtime"; allowed = [ "util"; "obs"; "chaos"; "fault" ] };
    { dir = "vmm"; root_module = "Tstm_vmm"; lib_name = "tstm_vmm"; allowed = [ "util"; "fault"; "runtime" ] };
    { dir = "san"; root_module = "Tstm_san"; lib_name = "tstm_san"; allowed = [ "util"; "runtime" ] };
    { dir = "tm"; root_module = "Tstm_tm"; lib_name = "tstm_tm"; allowed = [ "util"; "cm"; "runtime"; "vmm"; "obs" ] };
    { dir = "tinystm"; root_module = "Tinystm"; lib_name = "tinystm"; allowed = [ "util"; "cm"; "obs"; "chaos"; "fault"; "runtime"; "vmm"; "tm"; "san" ] };
    { dir = "tl2"; root_module = "Tstm_tl2"; lib_name = "tstm_tl2"; allowed = [ "util"; "cm"; "obs"; "chaos"; "fault"; "runtime"; "vmm"; "tm"; "san" ] };
    { dir = "norec"; root_module = "Tstm_norec"; lib_name = "tstm_norec"; allowed = [ "util"; "cm"; "obs"; "chaos"; "fault"; "runtime"; "vmm"; "tm"; "san" ] };
    { dir = "structures"; root_module = "Tstm_structures"; lib_name = "tstm_structures"; allowed = [ "util"; "runtime"; "vmm"; "tm" ] };
    { dir = "tuning"; root_module = "Tstm_tuning"; lib_name = "tstm_tuning"; allowed = [ "util"; "obs"; "tinystm" ] };
    { dir = "vacation"; root_module = "Tstm_vacation"; lib_name = "tstm_vacation"; allowed = [ "util"; "runtime"; "tm"; "structures" ] };
    { dir = "harness"; root_module = "Tstm_harness"; lib_name = "tstm_harness"; allowed = [ "util"; "cm"; "obs"; "chaos"; "fault"; "runtime"; "vmm"; "tm"; "san"; "tinystm"; "tl2"; "norec"; "structures"; "tuning"; "vacation" ] };
    { dir = "service"; root_module = "Tstm_service"; lib_name = "tstm_service"; allowed = [ "util"; "cm"; "obs"; "chaos"; "fault"; "runtime"; "tm"; "san"; "structures"; "vacation"; "harness" ] };
    { dir = "exec"; root_module = "Tstm_exec"; lib_name = "tstm_exec"; allowed = [ "util"; "cm"; "obs"; "runtime"; "tm"; "san"; "tinystm"; "harness"; "service" ] };
    { dir = "lint"; root_module = "Tstm_lint"; lib_name = "tstm_lint"; allowed = [] };
  ]

let layer_of_dir d = List.find_opt (fun l -> l.dir = d) layers
let layer_of_root m = List.find_opt (fun l -> l.root_module = m) layers
let layer_of_lib n = List.find_opt (fun l -> l.lib_name = n) layers

(* The lib/<dir> a path belongs to, fixture trees included
   (test/lint_fixtures/lib/<dir>/... resolves like lib/<dir>/...). *)
let owner_of_path path =
  let rec go = function
    | "lib" :: d :: _ -> layer_of_dir d
    | _ :: rest -> go rest
    | [] -> None
  in
  go (segments path)

(* Tokenize a dune file into (token, line) pairs; parens are their own
   tokens and ';' comments run to end of line. *)
let dune_tokens text =
  let toks = ref [] in
  let buf = Buffer.create 16 in
  let line = ref 1 in
  let tline = ref 1 in
  let flush () =
    if Buffer.length buf > 0 then begin
      toks := (Buffer.contents buf, !tline) :: !toks;
      Buffer.clear buf
    end
  in
  let in_comment = ref false in
  String.iter
    (fun c ->
      match c with
      | '\n' ->
          flush ();
          in_comment := false;
          incr line
      | _ when !in_comment -> ()
      | ';' ->
          flush ();
          in_comment := true
      | ' ' | '\t' | '\r' -> flush ()
      | '(' | ')' ->
          flush ();
          toks := (String.make 1 c, !line) :: !toks
      | _ ->
          if Buffer.length buf = 0 then tline := !line;
          Buffer.add_char buf c)
    text;
  flush ();
  List.rev !toks

(* The (token, line) list of every dependency named by a (libraries ...)
   field. *)
let dune_libraries text =
  let rec go acc = function
    | ("libraries", _) :: rest ->
        let rec deps acc = function
          | (")", _) :: rest -> go acc rest
          | ((tok, _) as t) :: rest when tok <> "(" -> deps (t :: acc) rest
          | rest -> go acc rest
        in
        deps acc rest
    | _ :: rest -> go acc rest
    | [] -> List.rev acc
  in
  go [] (dune_tokens text)

let layering =
  let id = "layering" in
  mk ~id ~severity:Finding.Error ~scope_doc:"lib (sources and dune stanzas)"
    ~scope:in_lib
    ~doc:
      "the library DAG is declared once (util at the bottom, \
       harness/service/exec at the top); both module references and dune \
       stanzas must respect it"
    (Repo_pass
       (fun files ->
         let out = ref [] in
         let seen = Hashtbl.create 64 in
         let flag ~path ~line ~col owner target =
           if not (Hashtbl.mem seen (path, target.dir)) then begin
             Hashtbl.replace seen (path, target.dir) ();
             out :=
               Finding.v ~rule:id ~severity:Finding.Error ~path ~line ~col
                 (Printf.sprintf
                    "layering violation: lib/%s must not depend on lib/%s \
                     (allowed: %s)"
                    owner.dir target.dir
                    (if owner.allowed = [] then "nothing"
                     else String.concat ", " owner.allowed))
               :: !out
           end
         in
         List.iter
           (fun f ->
             match owner_of_path f.path with
             | None -> ()
             | Some owner -> (
                 let check_ref (r : Astq.ref_) =
                   match Astq.head r.r_lid with
                   | Some h -> (
                       match layer_of_root h with
                       | Some target
                         when target.dir <> owner.dir
                              && not (List.mem target.dir owner.allowed) ->
                           let p = r.r_loc.loc_start in
                           flag ~path:f.path ~line:p.pos_lnum
                             ~col:(p.pos_cnum - p.pos_bol) owner target
                       | _ -> ())
                   | None -> ()
                 in
                 match f.kind with
                 | Ml ->
                     Option.iter
                       (fun s -> List.iter check_ref (Astq.structure_refs s))
                       f.str
                 | Mli ->
                     Option.iter
                       (fun s -> List.iter check_ref (Astq.signature_refs s))
                       f.intf
                 | Dune ->
                     List.iter
                       (fun (dep, line) ->
                         match layer_of_lib dep with
                         | Some target
                           when target.dir <> owner.dir
                                && not (List.mem target.dir owner.allowed) ->
                             flag ~path:f.path ~line ~col:0 owner target
                         | _ -> ())
                       (dune_libraries f.text)))
           files;
         List.rev !out))

let rules = [ stm_lock_pairing; vmm_charge; tap_pairing; layering ]
