(** One lint finding: a rule violation anchored at a precise source
    position.  Columns are 0-based (the compiler's convention); lines are
    1-based. *)

type severity = Error | Warning

type t = {
  rule : string;  (** rule id, e.g. ["stdlib-random"] *)
  severity : severity;
  path : string;  (** path as given to the engine, '/'-separated *)
  line : int;
  col : int;
  message : string;
}

val severity_string : severity -> string

val v :
  rule:string ->
  severity:severity ->
  path:string ->
  line:int ->
  ?col:int ->
  string ->
  t

val of_location : rule:string -> severity:severity -> Location.t -> string -> t
(** Anchor a finding at the start of a compiler-libs location. *)

val compare : t -> t -> int
(** Path, then line, then column, then rule id — the deterministic report
    order. *)

val is_error : t -> bool
