(** The typed rule API.

    A rule has an id (kebab-case, the name used in suppression
    comments), a severity, a human-readable scope description plus the
    path predicate that implements it, one line of doc, and a check: a
    per-file pass (most rules) or a whole-repo pass (rules that need to
    see every file at once, like the layering DAG).

    Scope predicates are segment tests on the '/'-separated path, so a
    fixture corpus that mirrors the repo layout
    ([test/lint_fixtures/lib/tinystm/...]) exercises exactly the same
    scoping as the real tree. *)

type kind = Ml | Mli | Dune

type file = {
  path : string;
  kind : kind;
  text : string;
  str : Parsetree.structure option;  (** parsetree, for [Ml] files *)
  intf : Parsetree.signature option;  (** parsetree, for [Mli] files *)
  comments : Scan.comment list;
}

type check =
  | File_pass of (file -> Finding.t list)
  | Repo_pass of (file list -> Finding.t list)
      (** receives every file the engine loaded, in walk order; the rule
          filters by its own scope *)

type t = {
  id : string;
  severity : Finding.severity;
  scope_doc : string;
  scope : string -> bool;  (** engine applies this to [File_pass] rules *)
  doc : string;
  check : check;
}

val segments : string -> string list
val under : dir:string -> string -> bool
val under2 : a:string -> b:string -> string -> bool
val in_lib : string -> bool
val in_bin : string -> bool
val basename : string -> string

val finding : t -> Location.t -> string -> Finding.t
(** A finding for this rule anchored at a location. *)

val mk :
  id:string ->
  severity:Finding.severity ->
  scope_doc:string ->
  scope:(string -> bool) ->
  doc:string ->
  check ->
  t
