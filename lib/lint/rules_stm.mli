(** STM-protocol rules over the intra-module call graph and the library
    DAG:

    - [stm-lock-pairing] (lib/tinystm, lib/tl2): every entry point (a
      function no other function in the module references) from which an
      orec acquire ([San.lock_acquire]) is reachable must also reach a
      release ([San.lock_release]) or an abort ([San.tx_abort] /
      [Abort_exn]).
    - [vmm-charge] (lib/tinystm, lib/tl2, lib/structures): raw Vmm word
      accesses ([V.load]/[V.store]) are only reachable from entry points
      that charge Sim_sched cycles.
    - [tap-pairing] (lib): sanitizer/tap producer hooks come in pairs per
      module (acquire/release, tx_begin/tx_exit, fence entry/exit,
      suspend/resume, vmm_alloc/vmm_free).
    - [layering] (whole repo): the declared library DAG, checked against
      both source module references and [dune] library stanzas. *)

type layer = {
  dir : string;
  root_module : string;
  lib_name : string;
  allowed : string list;
}

val layers : layer list
(** The declared architecture.  A new library under lib/ must be
    registered here before anything may depend on it. *)

val rules : Rule.t list
