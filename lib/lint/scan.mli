(** Lexical scanner: extracts comments (with positions) from OCaml source
    so the engine can read lint directives out of them.  Rules themselves
    never see comments or string literals — they work on the parsetree —
    which is what fixes the grep-era false-positive class.

    Directive syntax, inside a normal OCaml comment:

    - [(* lint: allow <rule-id> — <reason> *)] suppresses findings of
      [<rule-id>] on the same line or the next line.  The reason is
      mandatory.
    - [(* lint: expect <rule-id> *)] (fixture corpora only) declares that
      the rule must fire on this exact line.

    In [dune] files the same directives are read from [;] line comments. *)

type comment = {
  c_line : int;  (** 1-based line of the opening delimiter *)
  c_col : int;  (** 0-based column of the opening delimiter *)
  c_text : string;  (** text between the delimiters *)
}

type directive =
  | Allow of { line : int; id : string; reason : string }
  | Expect of { line : int; id : string }
  | Malformed of { line : int; text : string }
      (** a comment that starts with [lint:] but does not parse *)

val comments : string -> comment list
(** All comments in source order.  Understands nested comments, string
    literals (inside and outside comments), quoted strings
    [{id|...|id}] and char literals versus type variables. *)

val directives : comment list -> directive list

val dune_directives : string -> directive list
(** Directives in a dune file's [;] line comments. *)
