module Config = Tinystm.Config

type move =
  | Locks_double
  | Locks_halve
  | Shifts_up
  | Shifts_down
  | Hier_double
  | Hier_halve
  | Nop
  | Reverse

let move_label = function
  | Locks_double -> "1"
  | Locks_halve -> "2"
  | Shifts_up -> "3"
  | Shifts_down -> "4"
  | Hier_double -> "5"
  | Hier_halve -> "6"
  | Nop -> "7"
  | Reverse -> "8"

(* Absolute bounds of the search space (the paper sweeps locks 2^8..2^24,
   shifts 0..6(8), h 1..256; we allow a slightly wider box). *)
let min_locks = 1 lsl 4
let max_locks = 1 lsl 24
let min_shifts = 0
let max_shifts = 10
let min_hier = 1
let max_hier = 256

type key = int * int * int (* n_locks, shifts, hierarchy *)

let key_of (c : Config.t) : key = (c.Config.n_locks, c.Config.shifts, c.Config.hierarchy)

type step = { config : Config.t; throughput : float; move : move }

type t = {
  rng : Tstm_util.Xrand.t;
  samples_per_config : int;
  samples : float array;
  mutable n_samples : int;
  table : (key, float) Hashtbl.t;
  mutable current : Config.t;
  mutable came_from : (Config.t * float) option;
  mutable last_move : move;  (* the move that led into [current] *)
  (* Forbidden walls installed after >10 % drops (paper §4.2). *)
  mutable shifts_lo : int;
  mutable shifts_hi : int;
  mutable hier_lo : int;
  mutable hier_hi : int;
  mutable history_rev : step list;
}

let create ?(seed = 0x7e5) ?(samples_per_config = 3) initial =
  Config.validate initial;
  {
    rng = Tstm_util.Xrand.create seed;
    samples_per_config;
    samples = Array.make samples_per_config 0.0;
    n_samples = 0;
    table = Hashtbl.create 64;
    current = initial;
    came_from = None;
    last_move = Nop;
    shifts_lo = min_shifts;
    shifts_hi = max_shifts;
    hier_lo = min_hier;
    hier_hi = max_hier;
    history_rev = [];
  }

let current t = t.current
let history t = List.rev t.history_rev
let explored t = Hashtbl.length t.table

let best_two t =
  Hashtbl.fold
    (fun k v (b1, b2) ->
      match b1 with
      | None -> (Some (k, v), b2)
      | Some (_, v1) when v > v1 -> (Some (k, v), b1)
      | Some _ -> (
          match b2 with
          | None -> (b1, Some (k, v))
          | Some (_, v2) when v > v2 -> (b1, Some (k, v))
          | Some _ -> (b1, b2)))
    t.table (None, None)

(* The tuner searches the paper's three parameters; the write strategy and
   the optional second hierarchy level are carried along unchanged. *)
let config_of_key (t : t) ((n_locks, shifts, hierarchy) : key) =
  Config.make ~n_locks ~shifts ~hierarchy
    ~hierarchy2:t.current.Config.hierarchy2
    ~strategy:t.current.Config.strategy ()

let best t =
  match best_two t with
  | Some (k, v), _ -> Some (config_of_key t k, v)
  | None, _ -> None

(* The destination of a move from [c], if legal under the absolute bounds,
   the forbidden walls, and h <= locks. *)
let apply_move t (c : Config.t) = function
  | Locks_double ->
      let n = c.Config.n_locks * 2 in
      if n > max_locks then None else Some { c with Config.n_locks = n }
  | Locks_halve ->
      let n = c.Config.n_locks / 2 in
      if n < min_locks || n < c.Config.hierarchy then None
      else Some { c with Config.n_locks = n }
  | Shifts_up ->
      let s = c.Config.shifts + 1 in
      if s > t.shifts_hi then None else Some { c with Config.shifts = s }
  | Shifts_down ->
      let s = c.Config.shifts - 1 in
      if s < t.shifts_lo then None else Some { c with Config.shifts = s }
  | Hier_double ->
      let h = c.Config.hierarchy * 2 in
      if h > t.hier_hi || h > c.Config.n_locks then None
      else Some { c with Config.hierarchy = h }
  | Hier_halve ->
      let h = c.Config.hierarchy / 2 in
      if h < t.hier_lo || h < c.Config.hierarchy2 then None
      else Some { c with Config.hierarchy = h }
  | Nop -> Some c
  | Reverse -> (
      match best t with Some (b, _) -> Some b | None -> Some c)

let exploring_moves =
  [| Locks_double; Locks_halve; Shifts_up; Shifts_down; Hier_double; Hier_halve |]

(* Random move among 1-6 whose destination is legal and uncharted. *)
let pick_uncharted t =
  let candidates =
    Array.to_list exploring_moves
    |> List.filter_map (fun mv ->
           match apply_move t t.current mv with
           | Some c when not (Hashtbl.mem t.table (key_of c)) -> Some (mv, c)
           | _ -> None)
  in
  match candidates with
  | [] -> None
  | l ->
      let n = List.length l in
      Some (List.nth l (Tstm_util.Xrand.int t.rng n))

type decision = Keep_measuring | Reconfigure of Config.t

let goto t mv cfg =
  t.last_move <- mv;
  t.current <- cfg;
  (* The tuner runs on the control thread (CPU 0); timestamps come from the
     sink's installed clock since this layer has no runtime handle. *)
  if Tstm_obs.Sink.enabled () then
    Tstm_obs.Sink.emit_now ~cpu:0
      (Tstm_obs.Event.Tuner_move
         {
           label =
             Printf.sprintf "%s (move %s)" (Config.to_string cfg)
               (move_label mv);
         });
  Reconfigure cfg

let maybe_forbid t thr =
  (* A >10 % drop after a shifts/hierarchy move walls off further movement
     past the value we came from. *)
  match t.came_from with
  | Some (prev_cfg, prev_thr) when thr < prev_thr *. 0.90 -> (
      match t.last_move with
      | Shifts_up -> t.shifts_hi <- prev_cfg.Config.shifts
      | Shifts_down -> t.shifts_lo <- prev_cfg.Config.shifts
      | Hier_double -> t.hier_hi <- prev_cfg.Config.hierarchy
      | Hier_halve -> t.hier_lo <- prev_cfg.Config.hierarchy
      | Locks_double | Locks_halve | Nop | Reverse -> ())
  | _ -> ()

let record t sample =
  t.samples.(t.n_samples) <- sample;
  t.n_samples <- t.n_samples + 1;
  if t.n_samples < t.samples_per_config then Keep_measuring
  else begin
    t.n_samples <- 0;
    let thr = Tstm_util.Stats.maximum (Array.sub t.samples 0 t.samples_per_config) in
    Hashtbl.replace t.table (key_of t.current) thr;
    t.history_rev <-
      { config = t.current; throughput = thr; move = t.last_move }
      :: t.history_rev;
    let b1, b2 = best_two t in
    let best_key, best_thr =
      match b1 with Some kv -> kv | None -> (key_of t.current, thr)
    in
    let at_best = best_key = key_of t.current in
    let dropped_vs_prev =
      match t.came_from with
      | Some (_, prev_thr) -> thr < prev_thr *. 0.98
      | None -> false
    in
    let far_from_best = (not at_best) && thr < best_thr *. 0.90 in
    if dropped_vs_prev || far_from_best then begin
      maybe_forbid t thr;
      t.came_from <- None;
      goto t Reverse (config_of_key t best_key)
    end
    else
      match pick_uncharted t with
      | Some (mv, cfg) ->
          t.came_from <- Some (t.current, thr);
          goto t mv cfg
      | None ->
          if not at_best then begin
            t.came_from <- None;
            goto t Reverse (config_of_key t best_key)
          end
          else begin
            (* At the best configuration with no neighbours left.  If we now
               measure below the second best, switch to it (paper §4.2);
               otherwise stay put. *)
            match b2 with
            | Some (k2, thr2) when thr < thr2 ->
                t.came_from <- None;
                goto t Reverse (config_of_key t k2)
            | _ ->
                t.came_from <- None;
                goto t Nop t.current
          end
  end
