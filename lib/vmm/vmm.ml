module Tap = Tstm_runtime.Tap
module Fault = Tstm_fault.Fault

module Make (R : Tstm_runtime.Runtime_intf.S) = struct
  let max_class = 256
  let null = 0

  (* Control-word layout inside [ctl]:
     0                      bump pointer (next fresh address)
     1                      live word counter
     2                      total-allocated counter
     3 .. 3+max_class-1     free-list head per size class (0 = empty)
     3+max_class ..         spin lock per size class
     3+2*max_class          spin lock for the large-block extent table      *)
  type t = {
    words : R.sarray;
    ctl : R.sarray;
    capacity : int;
    (* Extents of live non-recyclable (bump-allocated) blocks, so their
       frees are validated too.  Mutated only under [large_lock_slot]. *)
    large : (int, int) Hashtbl.t;
  }

  let bump_slot = 0
  let live_slot = 1
  let total_slot = 2
  let head_slot n = 3 + (n - 1)
  let lock_slot n = 3 + max_class + (n - 1)
  let large_lock_slot = 3 + (2 * max_class)

  let create ~words:n =
    if n < 1 then invalid_arg "Vmm.create: words < 1";
    let t =
      {
        words = R.sarray_make (n + 1) 0;
        (* +1: address 0 is reserved *)
        ctl = R.sarray_make (4 + (2 * max_class)) 0;
        capacity = n;
        large = Hashtbl.create 16;
      }
    in
    R.set t.ctl bump_slot 1;
    t

  let capacity t = t.capacity
  let words t = t.words

  let check_addr t addr =
    if addr < 1 || addr > t.capacity then
      invalid_arg (Printf.sprintf "Vmm: address %d out of bounds" addr)

  (* Raw accesses announce themselves on the tap as explicit
     non-transactional events; the underlying word access is bracketed with
     [suspend]/[resume] so it is not double-reported through the generic
     array tap. *)

  let load t addr =
    check_addr t addr;
    Tap.suspend ();
    let v = R.get t.words addr in
    Tap.resume ();
    Tap.vmm_load ~addr;
    v

  let store t addr v =
    check_addr t addr;
    Tap.suspend ();
    R.set t.words addr v;
    Tap.resume ();
    Tap.vmm_store ~addr

  let lock t slot =
    while not (R.cas t.ctl slot 0 1) do
      R.yield ()
    done

  let unlock t slot = R.set t.ctl slot 0

  let bump t n =
    let base = R.fetch_add t.ctl bump_slot n in
    if base + n - 1 > t.capacity then raise Out_of_memory;
    base

  (* Free-list manipulation threads next pointers through the freed blocks
     themselves; those arena-word accesses are allocator protocol, not data,
     so they are hidden from the tap. *)

  let alloc t n =
    if n < 1 then invalid_arg "Vmm.alloc: size < 1";
    (* Injected allocation failure fires before any allocator state is
       touched, so a faulted alloc is indistinguishable from genuine
       exhaustion and leaves the accounting intact by construction. *)
    if Fault.enabled () && Fault.oom ~tid:(R.tid ()) then raise Out_of_memory;
    let base =
      Tap.suspend ();
      Fun.protect ~finally:Tap.resume (fun () ->
          if n > max_class then begin
            let base = bump t n in
            lock t large_lock_slot;
            Hashtbl.replace t.large base n;
            unlock t large_lock_slot;
            base
          end
          else begin
            lock t (lock_slot n);
            let head = R.get t.ctl (head_slot n) in
            if head = null then begin
              unlock t (lock_slot n);
              bump t n
            end
            else begin
              (* Pop: the first word of a free block holds the next pointer. *)
              R.set t.ctl (head_slot n) (R.get t.words head);
              unlock t (lock_slot n);
              head
            end
          end)
    in
    ignore (R.fetch_add t.ctl live_slot n);
    ignore (R.fetch_add t.ctl total_slot n);
    Tap.vmm_alloc ~addr:base ~len:n;
    base

  let free t addr n =
    if n < 1 then invalid_arg "Vmm.free: size < 1";
    check_addr t addr;
    check_addr t (addr + n - 1);
    Tap.suspend ();
    Fun.protect ~finally:Tap.resume (fun () ->
        if n <= max_class then begin
          lock t (lock_slot n);
          (* Double-free detection: the block must not already sit on its
             size class's free list.  O(list length) under the class lock —
             fine for a simulator arena whose lists stay short; a production
             allocator would pay one guard word per block instead.  Freeing
             the same address under a *different* size class is not
             detectable here. *)
          let b = ref (R.get t.ctl (head_slot n)) in
          let dup = ref false in
          while (not !dup) && !b <> null do
            if !b = addr then dup := true else b := R.get t.words !b
          done;
          if !dup then begin
            unlock t (lock_slot n);
            invalid_arg
              (Printf.sprintf "Vmm.free: double free of block %d (size %d)"
                 addr n)
          end;
          R.set t.words addr (R.get t.ctl (head_slot n));
          R.set t.ctl (head_slot n) addr;
          unlock t (lock_slot n)
        end
        else begin
          (* Non-recyclable blocks stay leaked (bump-only), but their frees
             are validated against the recorded extent: freeing a block that
             was never allocated, was already freed, or with a size other
             than the one it was allocated with raises. *)
          lock t large_lock_slot;
          let known = Hashtbl.find_opt t.large addr in
          (match known with
          | Some m when m = n -> Hashtbl.remove t.large addr
          | _ -> ());
          unlock t large_lock_slot;
          match known with
          | Some m when m = n -> ()
          | Some m ->
              invalid_arg
                (Printf.sprintf
                   "Vmm.free: large block %d allocated with size %d, freed \
                    with size %d"
                   addr m n)
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Vmm.free: large block %d (size %d) was never allocated \
                    or is already freed"
                   addr n)
        end);
    (* Counters move only once the free is known to be valid, so a rejected
       free leaves the accounting intact. *)
    ignore (R.fetch_add t.ctl live_slot (-n));
    Tap.vmm_free ~addr ~len:n

  let live_words t = R.get t.ctl live_slot
  let allocated_since_start t = R.get t.ctl total_slot
end
