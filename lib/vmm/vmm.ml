module Make (R : Tstm_runtime.Runtime_intf.S) = struct
  let max_class = 256
  let null = 0

  (* Control-word layout inside [ctl]:
     0                      bump pointer (next fresh address)
     1                      live word counter
     2                      total-allocated counter
     3 .. 3+max_class-1     free-list head per size class (0 = empty)
     3+max_class ..         spin lock per size class                     *)
  type t = { words : R.sarray; ctl : R.sarray; capacity : int }

  let bump_slot = 0
  let live_slot = 1
  let total_slot = 2
  let head_slot n = 3 + (n - 1)
  let lock_slot n = 3 + max_class + (n - 1)

  let create ~words:n =
    if n < 1 then invalid_arg "Vmm.create: words < 1";
    let t =
      {
        words = R.sarray_make (n + 1) 0;
        (* +1: address 0 is reserved *)
        ctl = R.sarray_make (3 + (2 * max_class)) 0;
        capacity = n;
      }
    in
    R.set t.ctl bump_slot 1;
    t

  let capacity t = t.capacity
  let words t = t.words

  let check_addr t addr =
    if addr < 1 || addr > t.capacity then
      invalid_arg (Printf.sprintf "Vmm: address %d out of bounds" addr)

  let load t addr =
    check_addr t addr;
    R.get t.words addr

  let store t addr v =
    check_addr t addr;
    R.set t.words addr v

  let lock t n =
    while not (R.cas t.ctl (lock_slot n) 0 1) do
      R.yield ()
    done

  let unlock t n = R.set t.ctl (lock_slot n) 0

  let bump t n =
    let base = R.fetch_add t.ctl bump_slot n in
    if base + n - 1 > t.capacity then raise Out_of_memory;
    base

  let alloc t n =
    if n < 1 then invalid_arg "Vmm.alloc: size < 1";
    let base =
      if n > max_class then bump t n
      else begin
        lock t n;
        let head = R.get t.ctl (head_slot n) in
        let base =
          if head = null then begin
            unlock t n;
            bump t n
          end
          else begin
            (* Pop: the first word of a free block holds the next pointer. *)
            R.set t.ctl (head_slot n) (R.get t.words head);
            unlock t n;
            head
          end
        in
        base
      end
    in
    ignore (R.fetch_add t.ctl live_slot n);
    ignore (R.fetch_add t.ctl total_slot n);
    base

  let free t addr n =
    if n < 1 then invalid_arg "Vmm.free: size < 1";
    check_addr t addr;
    check_addr t (addr + n - 1);
    if n <= max_class then begin
      lock t n;
      (* Double-free detection: the block must not already sit on its size
         class's free list.  O(list length) under the class lock — fine for
         a simulator arena whose lists stay short; a production allocator
         would pay one guard word per block instead.  Freeing the same
         address under a *different* size class is not detectable here. *)
      let b = ref (R.get t.ctl (head_slot n)) in
      let dup = ref false in
      while (not !dup) && !b <> null do
        if !b = addr then dup := true else b := R.get t.words !b
      done;
      if !dup then begin
        unlock t n;
        invalid_arg
          (Printf.sprintf "Vmm.free: double free of block %d (size %d)" addr n)
      end;
      R.set t.words addr (R.get t.ctl (head_slot n));
      R.set t.ctl (head_slot n) addr;
      unlock t n
    end;
    (* Counters move only once the free is known to be valid, so a rejected
       free leaves the accounting intact. *)
    ignore (R.fetch_add t.ctl live_slot (-n))
  (* Blocks larger than max_class are intentionally leaked (bump-only). *)

  let live_words t = R.get t.ctl live_slot
  let allocated_since_start t = R.get t.ctl total_slot
end
