(** Virtual word memory: the address space the STM manages.

    The paper's STM covers raw process memory and hashes *addresses* to a
    lock array; under a compacting GC there are no stable word addresses, so
    this module provides the sound equivalent: a flat arena of shared [int]
    words in which an address is an index.  The two properties TinySTM's
    tuning parameters rely on are preserved exactly:

    - address arithmetic: the lock hash [(addr lsr shifts) mod locks]
      operates on the integer address, so the [#shifts] locality parameter
      behaves as in the paper;
    - spatial locality: the bump allocator hands out adjacent words for
      adjacent allocations, so consecutively allocated structure nodes map to
      nearby lock-array stripes.

    Address 0 is reserved as the null address and never allocated.

    The allocator is thread-safe (per-size-class spin locks over the shared
    arena) and is deliberately *not* transactional: {!Tm_intf.TM}
    implementations wrap {!alloc}/{!free} with their own commit/abort logs to
    give transactional allocation semantics (paper §3.1, Memory
    Management). *)

module Make (R : Tstm_runtime.Runtime_intf.S) : sig
  type t

  val create : words:int -> t
  (** [create ~words] makes an arena with [words] usable words.  Raises
      [Invalid_argument] if [words < 1]. *)

  val null : int
  (** The reserved null address (0). *)

  val capacity : t -> int

  val words : t -> R.sarray
  (** The backing shared array; the STM reads and writes data through it. *)

  val load : t -> int -> int
  (** Raw (non-transactional) load; bounds-checked. *)

  val store : t -> int -> int -> unit
  (** Raw (non-transactional) store; bounds-checked. *)

  val alloc : t -> int -> int
  (** [alloc t n] returns the base address of [n >= 1] fresh contiguous
      words (contents unspecified).  Raises [Out_of_memory] when the arena is
      exhausted.  Small blocks ([n <= 256]) are recycled through free lists;
      larger blocks are bump-allocated and not recycled. *)

  val free : t -> int -> int -> unit
  (** [free t addr n] returns the block [addr, n] to the allocator.  The
      caller must pass the same [n] it allocated with.  Raises
      [Invalid_argument] when the block lies (even partly) outside the
      arena, when a recyclable block ([n <= 256]) is already on its size
      class's free list (double free), or when a non-recyclable block
      ([n > 256]) was never allocated, is already freed, or is freed with a
      size different from its allocation (extents of live large blocks are
      tracked).  A double free of a recyclable block under a different size
      class remains undetected. *)

  val live_words : t -> int
  (** Words currently allocated and not freed (diagnostic). *)

  val allocated_since_start : t -> int
  (** Total words ever handed out, including recycled ones (diagnostic). *)
end
