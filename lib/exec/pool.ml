(* Multi-process job pool.

   Workers are forked processes, not domains: every simulated run leans on
   process-global state (the virtual-time scheduler, `Tap` hooks, the chaos
   plan, the sanitizer's shadow state), which [Unix.fork] snapshots and
   isolates for free while domains would share and corrupt it.  Each job
   gets a fresh fork of the parent (whose global state is pristine — the
   parent never runs jobs itself), so a job's result is independent of
   which worker slot ran it, in which order, or after which other jobs:
   the determinism of the merged output reduces to the determinism of the
   simulator itself.

   The child evaluates its job, writes one marshalled [('r, string) result]
   to a pipe and [Unix._exit]s (never [exit]: the child must not flush
   inherited stdio buffers).  The parent multiplexes pipes with
   [Unix.select], enforcing a per-job timeout (SIGKILL + requeue), retrying
   crashed workers within a bounded budget, and failing fast on
   deterministic in-job exceptions (an [Error] row: retrying re-runs the
   same deterministic computation, so it cannot help).  Rows land in a
   rank-indexed array, making the verdict independent of completion
   order. *)

type progress = {
  rank : int;
  total : int;
  label : string;
  attempt : int;
  status : Tstm_obs.Progress.status;
  elapsed : float;
}

type failure = { rank : int; attempts : int; reason : string }
type 'r verdict = { rows : 'r option array; failures : failure list }

let ok v = v.failures = []

type running = {
  pid : int;
  rank : int;
  attempt : int;
  started : float;
  deadline : float;
  fd : Unix.file_descr;
  ic : in_channel;
}

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigabrt then "SIGABRT"
  else Printf.sprintf "signal %d" s

let default_timeout = 600.0

let map (type r) ?(jobs = 1) ?(timeout = default_timeout) ?(retries = 2)
    ?(on_progress = fun _ -> ()) ?sabotage ~label (f : int -> r) n :
    r verdict =
  if jobs < 1 then invalid_arg "Pool.map: jobs < 1";
  if n < 0 then invalid_arg "Pool.map: negative job count";
  let rows : r option array = Array.make n None in
  let failures = ref [] in
  let queue = Queue.create () in
  for rank = 0 to n - 1 do
    Queue.add (rank, 1) queue
  done;
  let running : running list ref = ref [] in
  let progress r status =
    on_progress
      {
        rank = r.rank;
        total = n;
        label = label r.rank;
        attempt = r.attempt;
        status;
        elapsed = Unix.gettimeofday () -. r.started;
      }
  in
  let spawn (rank, attempt) =
    let fd_r, fd_w = Unix.pipe () in
    (* Anything buffered on stdio would be duplicated by the fork and
       flushed once per process. *)
    flush stdout;
    flush stderr;
    on_progress
      {
        rank;
        total = n;
        label = label rank;
        attempt;
        status = Tstm_obs.Progress.Started;
        elapsed = 0.0;
      };
    match Unix.fork () with
    | 0 ->
        Unix.close fd_r;
        (match sabotage with
        | Some s when s ~rank ~attempt -> Unix.kill (Unix.getpid ()) Sys.sigkill
        | _ -> ());
        let oc = Unix.out_channel_of_descr fd_w in
        let v : (r, string) result =
          try Ok (f rank) with e -> Error (Printexc.to_string e)
        in
        Marshal.to_channel oc v [];
        flush oc;
        Unix._exit 0
    | pid ->
        Unix.close fd_w;
        let now = Unix.gettimeofday () in
        running :=
          {
            pid;
            rank;
            attempt;
            started = now;
            deadline = now +. timeout;
            fd = fd_r;
            ic = Unix.in_channel_of_descr fd_r;
          }
          :: !running
  in
  let drop r = running := List.filter (fun x -> x.pid <> r.pid) !running in
  let requeue_or_fail r reason status =
    if r.attempt > retries then begin
      failures := { rank = r.rank; attempts = r.attempt; reason } :: !failures;
      progress r (Tstm_obs.Progress.Gave_up reason)
    end
    else begin
      progress r status;
      Queue.add (r.rank, r.attempt + 1) queue
    end
  in
  (* A readable pipe either delivers a complete marshalled row (the child
     wrote, flushed and exited) or hits EOF mid-value (the child died). *)
  let finish r =
    drop r;
    let value =
      (* A dead child leaves a truncated value: End_of_file from the
         channel or Failure from the unmarshaller, nothing else. *)
      try Some (Marshal.from_channel r.ic : (r, string) result)
      with End_of_file | Failure _ -> None
    in
    close_in_noerr r.ic;
    let _, status = Unix.waitpid [] r.pid in
    match value with
    | Some (Ok v) ->
        rows.(r.rank) <- Some v;
        progress r Tstm_obs.Progress.Finished
    | Some (Error msg) ->
        (* The job itself raised: deterministic, so a retry would fail the
           same way. *)
        let reason = "exception: " ^ msg in
        failures :=
          { rank = r.rank; attempts = r.attempt; reason } :: !failures;
        progress r (Tstm_obs.Progress.Gave_up reason)
    | None ->
        let reason =
          match status with
          | Unix.WSIGNALED s -> "killed by " ^ signal_name s
          | Unix.WEXITED c -> Printf.sprintf "exited %d without a result" c
          | Unix.WSTOPPED s -> "stopped by " ^ signal_name s
        in
        requeue_or_fail r reason (Tstm_obs.Progress.Crashed reason)
  in
  let kill_timed_out r =
    drop r;
    (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ());
    close_in_noerr r.ic;
    ignore (Unix.waitpid [] r.pid);
    requeue_or_fail r
      (Printf.sprintf "timeout after %.0fs" timeout)
      Tstm_obs.Progress.Timed_out
  in
  while (not (Queue.is_empty queue)) || !running <> [] do
    while (not (Queue.is_empty queue)) && List.length !running < jobs do
      spawn (Queue.pop queue)
    done;
    let fds = List.map (fun r -> r.fd) !running in
    let now = Unix.gettimeofday () in
    let next_deadline =
      List.fold_left (fun a r -> Float.min a r.deadline) infinity !running
    in
    let wait = Float.max 0.005 (Float.min 1.0 (next_deadline -. now)) in
    let readable, _, _ =
      try Unix.select fds [] [] wait
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        match List.find_opt (fun r -> r.fd = fd) !running with
        | Some r -> finish r
        | None -> ())
      readable;
    let now = Unix.gettimeofday () in
    List.iter
      (fun r -> if r.deadline <= now then kill_timed_out r)
      (List.filter (fun r -> r.deadline <= now) !running)
  done;
  {
    rows;
    failures =
      List.sort
        (fun (a : failure) (b : failure) -> compare a.rank b.rank)
        !failures;
  }
