(* The unified experiment-job model: one [t] is a pure, serializable
   description of one simulated run, and [run] is its single evaluator —
   the only function a pool worker calls.  Everything a figure, the
   ablation sweep, a stress sweep or a single CLI point needs is a value
   of this type, so all of them ride the same planner and pool. *)

module F = Tstm_harness.Figures
module Stress = Tstm_harness.Stress
module Storm = Tstm_harness.Storm
module Ablation = Tstm_harness.Ablation
module Service = Tstm_service.Service
module Scenario = Tstm_harness.Scenario
module Workload = Tstm_harness.Workload
module San = Tstm_san.San

type point = {
  p_stm : string;
  p_spec : Workload.spec;
  p_n_locks : int;
  p_shifts : int;
  p_hierarchy : int;
  p_cm : string;
  p_periods : int;
  p_observe : bool;
  p_san : bool;
}

type t =
  | Figure_cell of { fig : int; cell : F.cell }
  | Point of point
  | Stress_run of Stress.spec
  | Storm_run of Storm.spec
  | Ablation_point of Ablation.point
  | Serve_run of Service.spec

type point_outcome = {
  result : Workload.result;
  collector : Tstm_obs.Sink.collector option;
  metrics : Tstm_obs.Metrics.t option;
  san_findings : San.finding list;
  san_summary : string;
}

type outcome =
  | Cell_value of F.value
  | Point_outcome of point_outcome
  | Stress_report of Stress.report
  | Storm_report of Storm.report
  | Ablation_row of Ablation.row
  | Serve_report of Service.report

let run_point p =
  let cm =
    match Tstm_cm.Cm.of_string p.p_cm with
    | Ok policy -> policy
    | Error msg -> invalid_arg ("Job.run_point: " ^ msg)
  in
  let body () =
    if not p.p_observe then
      ( Scenario.run_intset ~stm:p.p_stm ~n_locks:p.p_n_locks
          ~shifts:p.p_shifts ~hierarchy:p.p_hierarchy ~cm p.p_spec,
        None,
        None )
    else begin
      let n_periods = max 1 p.p_periods in
      let period = p.p_spec.Workload.duration /. float_of_int n_periods in
      let r, collector, metrics =
        Scenario.run_intset_observed ~stm:p.p_stm ~n_locks:p.p_n_locks
          ~shifts:p.p_shifts ~hierarchy:p.p_hierarchy ~cm ~period ~n_periods
          p.p_spec
      in
      (r, Some collector, Some metrics)
    end
  in
  let (result, collector, metrics), san_findings =
    if p.p_san then
      San.with_armed ~ncpus:(max 1 p.p_spec.Workload.nthreads) body
    else (body (), [])
  in
  let san_summary = if p.p_san then San.summary () else "" in
  Point_outcome { result; collector; metrics; san_findings; san_summary }

let run = function
  | Figure_cell { cell; _ } -> Cell_value (F.eval_cell cell)
  | Point p -> run_point p
  | Stress_run spec -> Stress_report (Stress.run_one spec)
  | Storm_run spec -> Storm_report (Storm.run_one spec)
  | Ablation_point pt -> Ablation_row (Ablation.run_point pt)
  | Serve_run spec -> Serve_report (Service.run_one spec)

let label = function
  | Figure_cell { fig; cell } ->
      Printf.sprintf "fig %d: %s" fig (F.cell_label cell)
  | Point p ->
      Printf.sprintf "point %s %s n=%d u=%.0f%% t=%d%s%s" p.p_stm
        (Workload.structure_to_string p.p_spec.Workload.structure)
        p.p_spec.Workload.initial_size p.p_spec.Workload.update_pct
        p.p_spec.Workload.nthreads
        (if p.p_observe then " observed" else "")
        (if p.p_san then " san" else "")
  | Stress_run spec ->
      Printf.sprintf "stress %s %s seed=%d%s%s" spec.Stress.stm
        (Workload.structure_to_string spec.Stress.structure)
        spec.Stress.seed
        (if spec.Stress.cm <> "backoff" then " cm=" ^ spec.Stress.cm else "")
        (if spec.Stress.san then " san" else "")
  | Storm_run spec ->
      Printf.sprintf "storm %s cm=%s seed=%d%s" spec.Storm.stm spec.Storm.cm
        spec.Storm.seed
        (if spec.Storm.watchdog then " watchdog" else "")
  | Ablation_point pt -> Ablation.point_label pt
  | Serve_run spec ->
      Printf.sprintf "serve %s %s shed=%s seed=%d%s" spec.Service.stm
        (Service.backend_to_string spec.Service.backend)
        (Service.shed_to_string spec.Service.shed)
        spec.Service.seed
        (if spec.Service.watchdog then " watchdog" else "")
