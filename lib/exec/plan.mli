(** Plans: ordered job lists decomposed from figures, the ablation sweep,
    stress sweeps and single points, plus their pooled execution.

    A plan is just a [Job.t array] in presentation order; {!execute} runs
    it on a {!Pool} and returns outcomes in plan order, so callers
    reassemble output that is byte-identical regardless of worker count or
    completion order.  Structurally-equal jobs are evaluated once and
    shared (Figs. 11 and 12 ride the same auto-tune trace). *)

type t = Job.t array

val figure : Tstm_harness.Figures.profile -> int -> t
(** The cells of one paper figure, in plan (= assembly) order. *)

val figures : Tstm_harness.Figures.profile -> int list -> t
(** Concatenated figure plans, in the given order. *)

val stress :
  seeds:int ->
  stms:string list ->
  structures:Tstm_harness.Workload.structure list ->
  Tstm_harness.Stress.spec ->
  t
(** One job per {!Tstm_harness.Stress.plan} spec. *)

val ablation : unit -> t
(** The standard {!Tstm_harness.Ablation.default_points} sweep. *)

val point : Job.point -> t
(** A single-job plan. *)

type result = {
  outcomes : Job.outcome option array;
      (** plan order; [None] where the job failed permanently *)
  failures : (Job.t * Pool.failure) list;
}

val ok : result -> bool

val execute :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?on_progress:(Pool.progress -> unit) ->
  ?sabotage:(rank:int -> attempt:int -> bool) ->
  t ->
  result
(** Deduplicate, run on a {!Pool.map} with [jobs] workers, expand rows
    back to plan shape.  Parameters as in {!Pool.map} (progress ranks and
    totals refer to the deduplicated job list). *)
