(** Shared CLI surface for [bench/main.exe] and [bin/repro.exe]: the
    cmdliner flag terms both binaries parse (so they cannot drift) and the
    drivers that route figures, the ablation sweep and single experiment
    points through the job planner and the multi-process pool.

    Output discipline: deterministic content (figure headers, tables, CSV
    notes) goes to stdout; scheduling-dependent content (progress lines,
    timings, sweep summaries, failure reports) goes to stderr.  stdout is
    therefore byte-identical for any [--jobs] value. *)

(** {1 Flag terms} *)

val profile_arg : Tstm_harness.Figures.profile Cmdliner.Term.t
(** [--profile quick|full]. *)

val full_flag : bool Cmdliner.Term.t
(** [--full], shorthand for [--profile full] (bench compatibility). *)

val jobs_arg : int Cmdliner.Term.t
(** [--jobs N] (default 1). *)

val csv_arg : string option Cmdliner.Term.t
val san_arg : bool Cmdliner.Term.t
val trace_arg : string option Cmdliner.Term.t
val metrics_csv_arg : string option Cmdliner.Term.t
val top_contended_arg : int option Cmdliner.Term.t
val periods_arg : int Cmdliner.Term.t
val structure_arg : Tstm_harness.Workload.structure Cmdliner.Term.t

val stm_arg : string Cmdliner.Term.t
(** Resolves through {!Tstm_tm.Registry} (names and aliases) to the
    canonical name; unknown values list the registered STMs. *)

val size_arg : int Cmdliner.Term.t
val updates_arg : float Cmdliner.Term.t
val overwrites_arg : float Cmdliner.Term.t
val threads_arg : int Cmdliner.Term.t
val duration_arg : float Cmdliner.Term.t
val locks_exp_arg : int Cmdliner.Term.t
val shifts_arg : int Cmdliner.Term.t
val hierarchy_arg : int Cmdliner.Term.t
val seed_arg : int Cmdliner.Term.t

val cm_arg : string Cmdliner.Term.t
(** [--cm CM]: contention-manager name validated through
    {!Tstm_cm.Cm.of_string} and normalised to canonical form; default
    ["backoff"] (the byte-identical historical behaviour). *)

val workload_arg : Tstm_harness.Workload.pattern Cmdliner.Term.t
(** [--workload PATTERN]: adversarial key/rate pattern
    ({!Tstm_harness.Workload.pattern_of_string} forms); default
    [Uniform]. *)

val watchdog_window_arg : default:int -> int Cmdliner.Term.t
(** [--watchdog-window CYCLES]: progress-watchdog window length.  Shared
    by `repro storm` and `repro serve` (different defaults). *)

val watchdog_retry_arg : default:int -> int Cmdliner.Term.t
(** [--watchdog-retry-ceiling N]: starvation retry ceiling. *)

val watchdog_calm_arg : default:int -> int Cmdliner.Term.t
(** [--watchdog-calm W]: calm windows before de-escalation. *)

(** {1 Pooled execution} *)

val execute :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?sabotage:(rank:int -> attempt:int -> bool) ->
  Plan.t ->
  Plan.result
(** {!Plan.execute} with progress lines, a sweep summary and failure
    reports on stderr. *)

(** {1 CSV output} *)

val save_csv : string -> Tstm_harness.Figures.output -> unit
(** Write one table/surface as [DIR/<sanitized title>.csv]. *)

val ensure_dir : string -> unit

(** {1 Drivers} *)

val run_figures :
  ?csv:string ->
  ?jobs:int ->
  profile:Tstm_harness.Figures.profile ->
  int list ->
  bool
(** Plan the given figures, evaluate all cells on the pool, assemble and
    print each figure in order (CSV per figure under [csv]).  Returns
    [false] — with an incomplete-figure note in place of the missing
    tables — when any cell failed permanently. *)

val run_ablation : ?jobs:int -> unit -> bool
(** The standard cost-model ablation sweep, pooled and printed in plan
    order. *)

val eval_point :
  ?jobs:int -> Job.point -> (Job.point_outcome, string) result
(** Evaluate one experiment point through the planner (rendering is left
    to the caller — bench and repro print different summaries). *)

val eval_points : ?jobs:int -> Job.point list -> Job.point_outcome option array
(** Evaluate a list of points (the `repro sweep` shape), outcomes in plan
    order; [None] where a point failed permanently. *)

(** {1 Wall-clock bench (real runtime)}

    Flag terms and drivers for [bench real] and [bench compare]: the
    real-hardware benchmark path producing machine-readable
    [BENCH_*.json] snapshots ({!Tstm_obs.Bench}) and the noise-aware
    regression comparator. *)

val real_stm_arg : string Cmdliner.Term.t
(** [--stm STM] (validated by {!Tstm_harness.Bench_real.run_cell}). *)

val real_all_stms_flag : bool Cmdliner.Term.t
(** [--all-stms]: bench every {!Tstm_harness.Bench_real.stm_names} entry
    into one snapshot (overrides [--stm]). *)

val real_structure_arg : string Cmdliner.Term.t
(** [--structure STRUCT]: a structure name or ["vacation"]. *)

val domains_arg : int list Cmdliner.Term.t
(** [--domains 1,2,4]: one snapshot cell per domain count. *)

val reps_arg : int Cmdliner.Term.t
val warmup_arg : float Cmdliner.Term.t

val real_duration_arg : float Cmdliner.Term.t
(** [--duration SECONDS]: wall-clock repetition length (default 0.2). *)

val out_arg : string option Cmdliner.Term.t
val observe_flag : bool Cmdliner.Term.t
val threshold_arg : float Cmdliner.Term.t
val report_only_flag : bool Cmdliner.Term.t

val git_rev : unit -> string
(** Short git revision of the working tree, or ["unknown"] outside a
    checkout. *)

val run_bench_real :
  ?out:string ->
  stms:string list ->
  structure:string ->
  domains:int list ->
  pattern:Tstm_harness.Workload.pattern ->
  size:int ->
  update_pct:float ->
  seed:int ->
  duration:float ->
  warmup:float ->
  reps:int ->
  observe:bool ->
  unit ->
  bool
(** Run one cell per (STM, domain count) pair into a single snapshot,
    print the human table on stdout and (with [out]) write the snapshot
    JSON.  Progress and integrity violations go to stderr.  Returns
    [false] when any cell failed or violated an invariant. *)

val run_bench_compare :
  threshold:float ->
  report_only:bool ->
  old_path:string ->
  new_path:string ->
  unit ->
  bool
(** Compare two snapshots ({!Tstm_obs.Bench.compare}) and print the
    verdict on stdout.  Returns [false] when a regression was flagged and
    [report_only] is unset, or when either file fails to load (unreadable,
    malformed, or a newer schema than this binary understands — the
    diagnostic on stderr says which).  With [report_only] set the result
    is always [true]: an informational comparison never fails the run. *)
