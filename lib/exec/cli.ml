(* Shared CLI surface for bench/main.exe and bin/repro.exe: one set of
   cmdliner terms (so the two binaries cannot drift) and the drivers that
   route figures, ablation sweeps and single points through the job
   planner and the multi-process pool.

   Output discipline: everything deterministic goes to stdout (figure
   headers, tables, CSV notes), everything scheduling-dependent — progress
   lines, wall-clock timings, the sweep summary — goes to stderr.  That is
   what makes `--jobs 1` and `--jobs N` byte-identical on stdout. *)

open Cmdliner
module F = Tstm_harness.Figures
module W = Tstm_harness.Workload
module Registry = Tstm_tm.Registry
module Progress = Tstm_obs.Progress

(* ------------------------------------------------------------------ *)
(* Shared flag terms                                                   *)
(* ------------------------------------------------------------------ *)

let profile_arg =
  let profile_enum = Arg.enum [ ("quick", F.quick); ("full", F.full) ] in
  Arg.(
    value
    & opt profile_enum F.quick
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Experiment scale: $(b,quick) (smoke) or $(b,full) (paper-size).")

let full_flag =
  Arg.(
    value & flag
    & info [ "full" ]
        ~doc:"Shorthand for $(b,--profile full): paper-size experiments.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Evaluate simulated runs on $(docv) worker processes.  Results \
           are merged in plan order, so stdout is byte-identical for any \
           $(docv).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write each table/surface as a CSV file into $(docv).")

let san_arg =
  Arg.(
    value & flag
    & info [ "san" ]
        ~doc:
          "Arm the happens-before sanitizer: shadow every simulated word and \
           lock slot, check the run for races, lock-discipline and \
           clock-discipline violations, and fail on any finding.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the run and write a Chrome trace-event JSON to $(docv) \
           (loadable in Perfetto or chrome://tracing).")

let metrics_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-csv" ] ~docv:"FILE"
        ~doc:
          "Record the run and write per-measurement-period metrics (one CSV \
           row per period) to $(docv).")

let top_contended_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "top-contended" ] ~docv:"N"
        ~doc:
          "Record the run and print the $(docv) most contended cache lines, \
           split into true conflicts and false sharing.")

let periods_arg =
  Arg.(
    value & opt int 10
    & info [ "periods" ]
        ~doc:
          "Measurement periods for observed runs (duration is split evenly; \
           only used with --trace/--metrics-csv/--top-contended).")

let structure_arg =
  let sconv =
    Arg.enum
      [
        ("list", W.List);
        ("rbtree", W.Rbtree);
        ("skiplist", W.Skiplist);
        ("hashset", W.Hashset);
      ]
  in
  Arg.(
    value & opt sconv W.List
    & info [ "s"; "structure" ] ~docv:"STRUCT"
        ~doc:"Data structure: list, rbtree, skiplist or hashset.")

(* STM names resolve through the registry, so the flag accepts exactly the
   set of packaged implementations (canonical names and aliases) and a typo
   lists them. *)
let stm_conv =
  let parse s =
    if Registry.mem s then Ok (Registry.canonical s)
    else
      Error
        (`Msg
           (Printf.sprintf "unknown STM %S (known: %s)" s
              (String.concat ", " (Registry.names ()))))
  in
  Arg.conv (parse, Format.pp_print_string)

(* The doc string enumerates the registry at startup, so a newly
   registered STM shows up in --help without touching this file. *)
let stm_doc () =
  String.concat ", "
    (List.map
       (fun (e : Registry.entry) ->
         match e.Registry.aliases with
         | [] -> e.Registry.name
         | aliases ->
             Printf.sprintf "%s (%s)" e.Registry.name
               (String.concat ", " aliases))
       (Registry.all ()))

let stm_arg =
  Arg.(
    value
    & opt stm_conv "tinystm-wb"
    & info [ "stm" ] ~docv:"STM"
        ~doc:(Printf.sprintf "STM implementation: %s." (stm_doc ())))

let size_arg =
  Arg.(value & opt int 256 & info [ "n"; "size" ] ~doc:"Initial structure size.")

let updates_arg =
  Arg.(value & opt float 20.0 & info [ "u"; "updates" ] ~doc:"Update rate (%).")

let overwrites_arg =
  Arg.(
    value & opt float 0.0
    & info [ "overwrites" ] ~doc:"Overwrite-transaction rate (%).")

let threads_arg =
  Arg.(value & opt int 8 & info [ "t"; "threads" ] ~doc:"Simulated CPUs.")

let duration_arg =
  Arg.(
    value & opt float 0.005
    & info [ "d"; "duration" ] ~doc:"Measured virtual seconds.")

let locks_exp_arg =
  Arg.(
    value & opt int 16
    & info [ "locks-exp" ] ~doc:"log2 of the lock-array size.")

let shifts_arg =
  Arg.(
    value & opt int 0 & info [ "shifts" ] ~doc:"Address shifts of the lock hash.")

let hierarchy_arg =
  Arg.(
    value & opt int 1
    & info [ "hierarchy" ] ~doc:"Hierarchical array size (1 = disabled).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")

(* Contention managers resolve through the Cm registry, keeping the flag in
   sync with the set of implemented policies; the value stays the validated
   name string so it can cross the job Marshal boundary cheaply. *)
let cm_conv =
  let parse s =
    match Tstm_cm.Cm.of_string s with
    | Ok p -> Ok (Tstm_cm.Cm.to_string p)
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Format.pp_print_string)

let cm_arg =
  Arg.(
    value & opt cm_conv "backoff"
    & info [ "cm" ] ~docv:"CM"
        ~doc:
          "Contention manager: backoff (default, the historical behaviour), \
           suicide, karma, greedy or serialize[:N].")

let workload_conv =
  let parse s =
    match W.pattern_of_string s with
    | Ok p -> Ok p
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf p -> Format.pp_print_string ppf (W.pattern_to_string p))

let workload_arg =
  Arg.(
    value & opt workload_conv W.Uniform
    & info [ "workload" ] ~docv:"PATTERN"
        ~doc:
          "Adversarial workload pattern: uniform (default), zipf:THETA, \
           hotspot:N, bimodal:SPAN or rates:F.")

(* Watchdog threshold flags, shared by `repro storm` and `repro serve` so
   the two commands cannot drift; the defaults differ per caller (storm's
   tight window vs the service's longer one), hence the parameter. *)
let watchdog_window_arg ~default =
  Arg.(
    value & opt int default
    & info [ "watchdog-window" ] ~docv:"CYCLES"
        ~doc:
          (Printf.sprintf
             "Progress-watchdog window length in cycles; a window with zero \
              commits counts as a livelock (default %d)." default))

let watchdog_retry_arg ~default =
  Arg.(
    value & opt int default
    & info [ "watchdog-retry-ceiling" ] ~docv:"N"
        ~doc:
          (Printf.sprintf
             "Retry count at which the watchdog declares a transaction \
              starved (default %d)." default))

let watchdog_calm_arg ~default =
  Arg.(
    value & opt int default
    & info [ "watchdog-calm" ] ~docv:"W"
        ~doc:
          (Printf.sprintf
             "Consecutive calm windows before the degradation ladder steps \
              back down a level (default %d)." default))

(* ------------------------------------------------------------------ *)
(* Pooled execution with stderr progress                               *)
(* ------------------------------------------------------------------ *)

let report_progress (p : Pool.progress) =
  match p.Pool.status with
  | Progress.Started -> ()
  | status ->
      prerr_string
        (Progress.job_line ~rank:p.Pool.rank ~total:p.Pool.total
           ~attempt:p.Pool.attempt ~status ~elapsed:p.Pool.elapsed
           p.Pool.label
        ^ "\n");
      flush stderr

let report_failures failures =
  List.iter
    (fun (job, (f : Pool.failure)) ->
      prerr_string
        (Printf.sprintf "FAILED %s: %s (%d attempt%s)\n" (Job.label job)
           f.Pool.reason f.Pool.attempts
           (if f.Pool.attempts = 1 then "" else "s")))
    failures;
  flush stderr

let execute ?(jobs = 1) ?timeout ?retries ?sabotage (plan : Plan.t) =
  let t0 = Unix.gettimeofday () in
  let res =
    Plan.execute ~jobs ?timeout ?retries ~on_progress:report_progress
      ?sabotage plan
  in
  prerr_string
    (Progress.sweep_line ~jobs:(Array.length plan) ~workers:jobs
       ~failed:(List.length res.Plan.failures)
       ~elapsed:(Unix.gettimeofday () -. t0)
    ^ "\n");
  flush stderr;
  report_failures res.Plan.failures;
  res

(* ------------------------------------------------------------------ *)
(* CSV output                                                          *)
(* ------------------------------------------------------------------ *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let save_csv dir (o : F.output) =
  let name, contents =
    match o with
    | F.Table t -> (t.Tstm_util.Series.title, Tstm_util.Series.table_to_csv t)
    | F.Surface s ->
        (s.Tstm_util.Series.s_title, Tstm_util.Series.surface_to_csv s)
  in
  let path = Filename.concat dir (sanitize name ^ ".csv") in
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Figures driver                                                      *)
(* ------------------------------------------------------------------ *)

let run_figures ?csv ?(jobs = 1) ~profile ns =
  let plans = List.map (fun n -> (n, F.plan profile n)) ns in
  let plan =
    Array.concat
      (List.map
         (fun (n, cells) ->
           Array.map (fun cell -> Job.Figure_cell { fig = n; cell }) cells)
         plans)
  in
  let res = execute ~jobs plan in
  let cursor = ref 0 in
  List.iter
    (fun (n, cells) ->
      let k = Array.length cells in
      let slice = Array.sub res.Plan.outcomes !cursor k in
      cursor := !cursor + k;
      print_string
        (Printf.sprintf "--- Figure %d: %s [%s profile] ---\n" n (F.describe n)
           profile.F.label);
      let missing =
        Array.fold_left
          (fun acc o -> if o = None then acc + 1 else acc)
          0 slice
      in
      if missing = 0 then begin
        let values =
          Array.map
            (function
              | Some (Job.Cell_value v) -> v
              | _ -> invalid_arg "Cli.run_figures: non-cell outcome")
            slice
        in
        let outputs = F.assemble profile n values in
        List.iter F.print_output outputs;
        match csv with
        | Some dir ->
            ensure_dir dir;
            List.iter (save_csv dir) outputs;
            print_string (Printf.sprintf "(CSV written to %s/)\n\n" dir)
        | None -> print_newline ()
      end
      else
        print_string
          (Printf.sprintf "(figure %d incomplete: %d of %d cells failed)\n\n" n
             missing k))
    plans;
  flush stdout;
  Plan.ok res

(* ------------------------------------------------------------------ *)
(* Ablation driver                                                     *)
(* ------------------------------------------------------------------ *)

let run_ablation ?(jobs = 1) () =
  let plan = Plan.ablation () in
  let res = execute ~jobs plan in
  print_string (Tstm_harness.Ablation.header ^ "\n");
  Array.iteri
    (fun i outcome ->
      match outcome with
      | Some (Job.Ablation_row row) ->
          print_string (Tstm_harness.Ablation.render row ^ "\n")
      | Some _ -> invalid_arg "Cli.run_ablation: non-ablation outcome"
      | None ->
          print_string
            (Printf.sprintf "(point failed: %s)\n" (Job.label plan.(i))))
    res.Plan.outcomes;
  print_newline ();
  flush stdout;
  Plan.ok res

(* ------------------------------------------------------------------ *)
(* Single points                                                       *)
(* ------------------------------------------------------------------ *)

let eval_point ?(jobs = 1) p =
  let res = execute ~jobs (Plan.point p) in
  match res.Plan.outcomes.(0) with
  | Some (Job.Point_outcome o) -> Ok o
  | Some _ -> invalid_arg "Cli.eval_point: non-point outcome"
  | None -> (
      match res.Plan.failures with
      | (_, f) :: _ -> Error f.Pool.reason
      | [] -> Error "job produced no outcome")

(* ------------------------------------------------------------------ *)
(* Wall-clock bench (real runtime)                                     *)
(* ------------------------------------------------------------------ *)

module BR = Tstm_harness.Bench_real
module Bench = Tstm_obs.Bench

let real_stm_arg =
  Arg.(
    value
    & opt string "tinystm-wb"
    & info [ "stm" ] ~docv:"STM"
        ~doc:
          (Printf.sprintf "STM implementation: %s."
             (String.concat ", " Tstm_harness.Bench_real.stm_names)))

let real_all_stms_flag =
  Arg.(
    value & flag
    & info [ "all-stms" ]
        ~doc:
          "Bench every packaged STM (one cell per STM and domain count) \
           into a single snapshot, ignoring --stm; the three-family \
           comparison BENCH_*.json that `bench compare` diffs.")

let real_structure_arg =
  Arg.(
    value
    & opt string "rbtree"
    & info [ "s"; "structure" ] ~docv:"STRUCT"
        ~doc:
          "Benchmark target: list, rbtree, skiplist, hashset or vacation \
           (the STAMP-style travel-reservation workload).")

let domains_arg =
  Arg.(
    value
    & opt (list int) [ 1; 2; 4 ]
    & info [ "domains" ] ~docv:"LIST"
        ~doc:
          "Comma-separated domain counts to bench, one snapshot cell each \
           (e.g. 1,2,4).")

let reps_arg =
  Arg.(
    value & opt int 3
    & info [ "reps" ] ~docv:"N"
        ~doc:
          "Timed repetitions per cell; the snapshot records every sample \
           and the mean with a 95% confidence interval.")

let warmup_arg =
  Arg.(
    value & opt float 0.05
    & info [ "warmup" ] ~docv:"SECONDS"
        ~doc:"Untimed warmup before the repetitions (0 = none).")

let real_duration_arg =
  Arg.(
    value & opt float 0.2
    & info [ "d"; "duration" ] ~docv:"SECONDS"
        ~doc:"Wall-clock length of each timed repetition.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:"Write the machine-readable snapshot (BENCH_*.json) to $(docv).")

let observe_flag =
  Arg.(
    value & flag
    & info [ "observe" ]
        ~doc:
          "Record wall-clock commit/abort latency histograms during the \
           timed phases through a per-domain sharded sink (adds the \
           instrumented-path overhead to what is measured).")

let threshold_arg =
  Arg.(
    value & opt float 10.0
    & info [ "threshold" ] ~docv:"PCT"
        ~doc:
          "Regression threshold: flag a cell only when its mean throughput \
           drops by more than $(docv) percent beyond the combined 95% \
           confidence intervals.")

let report_only_flag =
  Arg.(
    value & flag
    & info [ "report-only" ]
        ~doc:"Print the comparison but exit 0 even on regressions.")

let git_rev () =
  match
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try Some (String.trim (input_line ic)) with End_of_file -> None in
      match (Unix.close_process_in ic, line) with
      | Unix.WEXITED 0, Some l when l <> "" -> Some l
      | _ -> None
    with Unix.Unix_error _ | Sys_error _ -> None
  with
  | Some rev -> rev
  | None -> "unknown"

let run_bench_real ?out ~stms ~structure ~domains ~pattern ~size ~update_pct
    ~seed ~duration ~warmup ~reps ~observe () =
  let protocol =
    { BR.duration_s = duration; warmup_s = warmup; reps; observe }
  in
  let ok = ref true in
  let t0 = Unix.gettimeofday () in
  let cells =
    List.concat_map
      (fun stm ->
        List.filter_map
          (fun d ->
            prerr_string
              (Printf.sprintf "bench real: %s %s domains=%d (%d x %.3fs)...\n"
                 stm structure d reps duration);
            flush stderr;
            let req =
              {
                BR.stm;
                structure;
                domains = d;
                pattern;
                size;
                update_pct;
                seed;
              }
            in
            match BR.run_cell req protocol with
            | Error e ->
                prerr_string (Printf.sprintf "bench real: %s\n" e);
                flush stderr;
                ok := false;
                None
            | Ok (cell, integ) ->
                List.iter
                  (fun v ->
                    prerr_string
                      (Printf.sprintf
                         "bench real: INVARIANT VIOLATED (%s/%s d=%d): %s\n"
                         stm structure d v);
                    flush stderr;
                    ok := false)
                  integ.BR.violations;
                List.iter
                  (fun (rep, exn_s) ->
                    prerr_string
                      (Printf.sprintf
                         "bench real: FAILED REP %d (%s/%s d=%d): %s\n" rep
                         stm structure d exn_s);
                    flush stderr;
                    ok := false)
                  integ.BR.failed_reps;
                Some cell)
          domains)
      stms
  in
  if cells = [] then false
  else begin
    let snap =
      BR.snapshot ~rev:(git_rev ()) ~created_unix:(Unix.time ()) protocol
        cells
    in
    print_string (Bench.render snap);
    flush stdout;
    (match out with
    | Some path ->
        Bench.write ~path snap;
        prerr_string (Printf.sprintf "(snapshot written to %s)\n" path)
    | None -> ());
    prerr_string
      (Printf.sprintf "bench real: %d cell%s in %.1fs\n" (List.length cells)
         (if List.length cells = 1 then "" else "s")
         (Unix.gettimeofday () -. t0));
    flush stderr;
    !ok
  end

let run_bench_compare ~threshold ~report_only ~old_path ~new_path () =
  (* A snapshot that cannot be loaded (unreadable file, malformed JSON, or
     a newer schema than this binary understands) is a diagnostic, not a
     regression: say exactly what failed, and let --report-only still exit
     0 so an informational CI step never turns red on a format bump. *)
  let load path =
    match Bench.read ~path with
    | Ok snap -> Some snap
    | Error e ->
        prerr_string
          (Printf.sprintf
             "bench compare: cannot load %s: %s (comparison skipped)\n" path e);
        None
  in
  match (load old_path, load new_path) with
  | None, _ | _, None -> report_only
  | Some old_snap, Some new_snap ->
      let v = Bench.compare ~threshold_pct:threshold ~old_snap ~new_snap () in
      print_string (Bench.render_verdict v);
      flush stdout;
      report_only || v.Bench.regressions = 0

let eval_points ?(jobs = 1) points =
  let plan = Array.of_list (List.map (fun p -> Job.Point p) points) in
  let res = execute ~jobs plan in
  Array.map
    (function
      | Some (Job.Point_outcome o) -> Some o
      | Some _ -> invalid_arg "Cli.eval_points: non-point outcome"
      | None -> None)
    res.Plan.outcomes
