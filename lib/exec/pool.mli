(** Multi-process job pool: fork-per-job workers, marshalled result rows
    over pipes, rank-keyed merge.

    Workers are {e processes} ([Unix.fork]), not domains: the simulator's
    process-global state (virtual-time scheduler, [Tap] hooks, chaos plan,
    sanitizer shadow memory) is snapshotted and isolated by the fork, so
    every job runs against pristine state and its result is independent of
    worker count, scheduling, and completion order.  Robustness is built
    in: a per-job timeout (SIGKILL + requeue), crash detection with a
    bounded retry budget, and fail-fast on deterministic in-job exceptions.
    Rows land in a rank-indexed array — callers reassemble output in plan
    order, byte-identical regardless of parallelism. *)

type progress = {
  rank : int;  (** 0-based job rank *)
  total : int;
  label : string;
  attempt : int;  (** 1-based *)
  status : Tstm_obs.Progress.status;
  elapsed : float;  (** real seconds since this attempt started *)
}

type failure = {
  rank : int;
  attempts : int;  (** attempts consumed, including the failing one *)
  reason : string;
}

(** Partial-results verdict: [rows.(rank)] is [None] exactly when [rank]
    appears in [failures] (sorted by rank). *)
type 'r verdict = { rows : 'r option array; failures : failure list }

val ok : 'r verdict -> bool
(** No failures — every row present. *)

val default_timeout : float
(** Per-attempt timeout in seconds (600). *)

val map :
  ?jobs:int ->
  ?timeout:float ->
  ?retries:int ->
  ?on_progress:(progress -> unit) ->
  ?sabotage:(rank:int -> attempt:int -> bool) ->
  label:(int -> string) ->
  (int -> 'r) ->
  int ->
  'r verdict
(** [map ~label f n] evaluates [f rank] for ranks [0..n-1] on up to [jobs]
    (default 1) concurrent worker processes and merges the rows by rank.

    [f] must be deterministic and its result [Marshal]-safe (pure data).
    A worker that crashes or exceeds [timeout] seconds (default
    {!default_timeout}) is requeued up to [retries] (default 2) extra
    attempts; a job whose [f] raises fails permanently without retry (the
    failure is deterministic).  [on_progress] fires in the parent on every
    job lifecycle event — completion order, so nondeterministic: route it
    to stderr, never stdout.  [sabotage ~rank ~attempt] (tests only) makes
    the worker SIGKILL itself before evaluating, exercising the
    crash-retry path deterministically. *)
