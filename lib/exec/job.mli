(** The unified experiment-job model.

    A {!t} is a pure, serializable description of one simulated run — STM
    registry name, structure, workload spec, figure cell or stress seed,
    instrumentation flags — and {!run} is its single evaluator, the only
    function a {!Pool} worker executes.  Figures 2-12, the ablation sweep,
    chaos/sanitizer stress sweeps and single CLI points all compile down
    to jobs, so they all ride the same planner and pool.

    Both {!t} and {!outcome} are closure-free data: jobs reach workers by
    [Unix.fork] (structure sharing) and outcomes come back through
    [Marshal]. *)

(** A single experiment point (the `repro run` / `repro sweep` shape). *)
type point = {
  p_stm : string;  (** {!Tstm_tm.Registry} name or alias *)
  p_spec : Tstm_harness.Workload.spec;
  p_n_locks : int;
  p_shifts : int;
  p_hierarchy : int;
  p_cm : string;
      (** contention-manager name ({!Tstm_cm.Cm.of_string} form);
          ["backoff"] is the byte-identical historical default *)
  p_periods : int;  (** measurement periods when observed *)
  p_observe : bool;  (** record an event collector + per-period metrics *)
  p_san : bool;  (** arm the happens-before sanitizer *)
}

type t =
  | Figure_cell of { fig : int; cell : Tstm_harness.Figures.cell }
  | Point of point
  | Stress_run of Tstm_harness.Stress.spec
  | Storm_run of Tstm_harness.Storm.spec
  | Ablation_point of Tstm_harness.Ablation.point
  | Serve_run of Tstm_service.Service.spec

type point_outcome = {
  result : Tstm_harness.Workload.result;
  collector : Tstm_obs.Sink.collector option;  (** when observed *)
  metrics : Tstm_obs.Metrics.t option;  (** when observed *)
  san_findings : Tstm_san.San.finding list;
  san_summary : string;  (** rendered in the worker; [""] unless san *)
}

type outcome =
  | Cell_value of Tstm_harness.Figures.value
  | Point_outcome of point_outcome
  | Stress_report of Tstm_harness.Stress.report
  | Storm_report of Tstm_harness.Storm.report
  | Ablation_row of Tstm_harness.Ablation.row
  | Serve_report of Tstm_service.Service.report

val run : t -> outcome
(** Evaluate one job on the simulated runtime.  Deterministic: the outcome
    depends only on the job. *)

val label : t -> string
(** Short human-readable description (progress lines). *)
