(* Plans: ordered job lists decomposed from figures, sweeps and points.

   [execute] deduplicates structurally-equal jobs before pooling (e.g.
   Figs. 11 and 12 share one auto-tune trace; running `all` evaluates it
   once) and expands the rows back to plan shape afterwards — the merge
   stays rank-keyed and order-independent. *)

module F = Tstm_harness.Figures
module Stress = Tstm_harness.Stress
module Ablation = Tstm_harness.Ablation

type t = Job.t array

let figure profile n =
  Array.map (fun cell -> Job.Figure_cell { fig = n; cell }) (F.plan profile n)

let figures profile ns = Array.concat (List.map (figure profile) ns)

let stress ~seeds ~stms ~structures base =
  Array.map
    (fun spec -> Job.Stress_run spec)
    (Stress.plan ~seeds ~stms ~structures base)

let ablation () =
  Array.of_list (List.map (fun p -> Job.Ablation_point p) Ablation.default_points)

let point p = [| Job.Point p |]

type result = {
  outcomes : Job.outcome option array;
  failures : (Job.t * Pool.failure) list;
}

let ok r = r.failures = []

let execute ?jobs ?timeout ?retries ?on_progress ?sabotage (plan : t) =
  let index : (Job.t, int) Hashtbl.t = Hashtbl.create 64 in
  let uniq_rev = ref [] in
  let n_uniq = ref 0 in
  let assign =
    Array.map
      (fun job ->
        match Hashtbl.find_opt index job with
        | Some i -> i
        | None ->
            let i = !n_uniq in
            incr n_uniq;
            Hashtbl.add index job i;
            uniq_rev := job :: !uniq_rev;
            i)
      plan
  in
  let uniq = Array.of_list (List.rev !uniq_rev) in
  let verdict =
    Pool.map ?jobs ?timeout ?retries ?on_progress ?sabotage
      ~label:(fun i -> Job.label uniq.(i))
      (fun i -> Job.run uniq.(i))
      (Array.length uniq)
  in
  {
    outcomes = Array.map (fun i -> verdict.Pool.rows.(i)) assign;
    failures =
      List.map
        (fun (f : Pool.failure) -> (uniq.(f.Pool.rank), f))
        verdict.Pool.failures;
  }
