(* The service front-end: admission, dispatch, deadlines, shedding.

   Execution model: the full arrival schedule and every request's operation
   are precomputed from the seed, so the open-loop offered load is
   independent of how fast the service drains it.  Worker fibers share a
   global cursor into the schedule plus per-shard FIFO queues — plain OCaml
   state, race-free under the cooperative simulator because admission and
   queue manipulation contain no preemption point.  A worker loop is:
   admit everything that has arrived, take a batch from the first
   non-empty shard it may serve (round-robin scan from its own index),
   execute each request as one transaction, and otherwise charge idle
   cycles up to the next arrival.  The run terminates when the schedule is
   exhausted and every queue has drained: each dispatched request finishes
   in bounded virtual time because its attempt guard raises past the
   deadline or the retry budget (the Storm escape-hatch pattern: raised at
   attempt entry, before any transactional access, so there is nothing to
   undo even when irrevocable). *)

module R = Tstm_runtime.Runtime_sim
module Watchdog = Tstm_runtime.Watchdog
module Registry = Tstm_tm.Registry
module Cm = Tstm_cm.Cm
module Workload = Tstm_harness.Workload
module Driver = Tstm_harness.Driver
module Scenario = Tstm_harness.Scenario
module History = Tstm_chaos.History
module San = Tstm_san.San
module Slo = Tstm_obs.Slo
module Xrand = Tstm_util.Xrand
module Bitops = Tstm_util.Bitops

(* The STM registry is populated by [Scenario]'s initializer; depend on it
   explicitly so linking Service alone resolves STM names. *)
let () = ignore (Sys.opaque_identity Scenario.all_stms)

type shed_policy = No_shed | Drop_newest | Deadline_aware | Serialize_hot

let shed_to_string = function
  | No_shed -> "none"
  | Drop_newest -> "drop-newest"
  | Deadline_aware -> "deadline"
  | Serialize_hot -> "serialize-hot"

let all_sheds = [ No_shed; Drop_newest; Deadline_aware; Serialize_hot ]

let shed_of_string = function
  | "none" -> Ok No_shed
  | "drop-newest" -> Ok Drop_newest
  | "deadline" -> Ok Deadline_aware
  | "serialize-hot" -> Ok Serialize_hot
  | s ->
      Error
        (Printf.sprintf
           "unknown shedding policy %S (known: none, drop-newest, deadline, \
            serialize-hot)" s)

type backend = Intset of Workload.structure | Vacation

let backend_to_string = function
  | Intset s -> Workload.structure_to_string s
  | Vacation -> "vacation"

let backend_of_string s =
  if s = "vacation" then Ok Vacation
  else
    match Workload.structure_of_string s with
    | Some st -> Ok (Intset st)
    | None ->
        Error
          (Printf.sprintf
             "unknown backend %S (known: list, rbtree, skiplist, hashset, \
              vacation)" s)

type spec = {
  stm : string;
  cm : string;
  backend : backend;
  workers : int;
  shards : int;
  arrival : Arrival.t;
  overload : float option;
  session : int;
  think : float;
  pattern : Workload.pattern;
  key_range : int;
  initial_size : int;
  update_pct : float;
  horizon : float;
  deadline : float;
  retry_budget : int;
  queue_cap : int;
  batch : int;
  shed : shed_policy;
  watchdog : bool;
  wd_window : int;
  wd_starve : int;
  wd_calm : int;
  record : bool;
  san : bool;
  seed : int;
}

let default =
  {
    stm = "tinystm-wb";
    cm = "backoff";
    backend = Intset Workload.List;
    workers = 4;
    shards = 4;
    arrival = { Arrival.shape = Arrival.Poisson; rate = 100_000.0 };
    overload = Some 2.0;
    session = 4;
    think = 2e-5;
    pattern = Workload.Uniform;
    key_range = 128;
    initial_size = 64;
    update_pct = 20.0;
    horizon = 0.002;
    deadline = 5e-4;
    retry_budget = 8;
    queue_cap = 64;
    batch = 4;
    shed = Deadline_aware;
    watchdog = false;
    wd_window = 50_000;
    wd_starve = 64;
    wd_calm = 2;
    record = false;
    san = false;
    seed = 0;
  }

type report = {
  capacity : float;
  offered : float;
  goodput : float;
  slo : Slo.summary;
  max_depth : int;
  hot_dispatches : int;
  wd : Watchdog.snapshot option;
  stats : Tstm_tm.Tm_stats.t;
  violations : string list;
  san_findings : San.finding list;
  leak_words : int;
  elapsed : float;
  log : (float * Slo.verdict * int) array;
}

let accounted (s : Slo.summary) =
  s.Slo.requests = s.Slo.shed + s.Slo.admitted
  && s.Slo.admitted
     = s.Slo.committed + s.Slo.deadline_missed + s.Slo.budget_exhausted

let failed r =
  r.violations <> []
  || r.san_findings <> []
  || r.leak_words <> 0
  || not (accounted r.slo)

let repro_command spec =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "repro serve --stm %s --shed %s --seed %d" spec.stm
       (shed_to_string spec.shed) spec.seed);
  if spec.cm <> default.cm then
    Buffer.add_string b (Printf.sprintf " --cm %s" spec.cm);
  if spec.backend <> default.backend then
    Buffer.add_string b
      (Printf.sprintf " --backend %s" (backend_to_string spec.backend));
  if spec.workers <> default.workers then
    Buffer.add_string b (Printf.sprintf " --workers %d" spec.workers);
  if spec.shards <> default.shards then
    Buffer.add_string b (Printf.sprintf " --shards %d" spec.shards);
  if spec.arrival <> default.arrival then
    Buffer.add_string b
      (Printf.sprintf " --arrival %s" (Arrival.to_string spec.arrival));
  if spec.overload <> default.overload then
    Buffer.add_string b
      (Printf.sprintf " --overload %g"
         (match spec.overload with Some x -> x | None -> 0.0));
  if spec.session <> default.session then
    Buffer.add_string b (Printf.sprintf " --session %d" spec.session);
  if spec.pattern <> default.pattern then
    Buffer.add_string b
      (Printf.sprintf " --workload %s" (Workload.pattern_to_string spec.pattern));
  if spec.horizon <> default.horizon then
    Buffer.add_string b (Printf.sprintf " --horizon %g" spec.horizon);
  if spec.deadline <> default.deadline then
    Buffer.add_string b (Printf.sprintf " --deadline %g" spec.deadline);
  if spec.retry_budget <> default.retry_budget then
    Buffer.add_string b (Printf.sprintf " --budget %d" spec.retry_budget);
  if spec.queue_cap <> default.queue_cap then
    Buffer.add_string b (Printf.sprintf " --queue-cap %d" spec.queue_cap);
  if spec.batch <> default.batch then
    Buffer.add_string b (Printf.sprintf " --batch %d" spec.batch);
  if spec.watchdog then Buffer.add_string b " --watchdog";
  if spec.wd_window <> default.wd_window then
    Buffer.add_string b (Printf.sprintf " --watchdog-window %d" spec.wd_window);
  if spec.wd_starve <> default.wd_starve then
    Buffer.add_string b
      (Printf.sprintf " --watchdog-retry-ceiling %d" spec.wd_starve);
  if spec.wd_calm <> default.wd_calm then
    Buffer.add_string b (Printf.sprintf " --watchdog-calm %d" spec.wd_calm);
  if spec.record then Buffer.add_string b " --record";
  if spec.san then Buffer.add_string b " --san";
  Buffer.contents b

let cycles_per_second () =
  (R.params ()).Tstm_runtime.Cache_model.clock_ghz *. 1e9

(* ------------------------------------------------------------------ *)
(* Precomputed requests                                                *)
(* ------------------------------------------------------------------ *)

type vac_kind =
  | V_reserve of { cid : int; picks : (int * int) list }
  | V_cancel of { cid : int }
  | V_query of { picks : (int * int) list }

type op = Set_op of History.op | Vac_op of vac_kind

type request = { t_arr : float; shard : int; deadline : float; op : op }

(* Per-tenant Vacation sizing: small tables so a few tenants fit a test
   arena; the reserve/cancel/query mix below is the service's own (the
   benchmark's update-tables transactions would grow/shrink the resource
   tables and defeat the zero-drift drain check). *)
let vac_spec spec =
  {
    Tstm_vacation.Vacation.n_relations = spec.key_range;
    n_customers = spec.key_range;
    queries_per_tx = 2;
    reserve_pct = 80.0;
    delete_pct = 10.0;
  }

let gen_op spec gen_key g =
  match spec.backend with
  | Intset _ ->
      let p = Xrand.float g *. 100.0 in
      let key = gen_key g in
      Set_op
        (if p < spec.update_pct /. 2.0 then History.Add key
         else if p < spec.update_pct then History.Remove key
         else History.Contains key)
  | Vacation ->
      let vs = vac_spec spec in
      let picks () =
        List.init vs.Tstm_vacation.Vacation.queries_per_tx (fun _ ->
            let tbl = Xrand.int g 3 in
            (tbl, gen_key g))
      in
      let p = Xrand.float g *. 100.0 in
      Vac_op
        (if p < 60.0 then
           V_reserve
             { cid = 1 + Xrand.int g vs.Tstm_vacation.Vacation.n_customers;
               picks = picks () }
         else if p < 70.0 then
           V_cancel
             { cid = 1 + Xrand.int g vs.Tstm_vacation.Vacation.n_customers }
         else V_query { picks = picks () })

(* The schedule: session arrival instants from the (resolved) arrival
   process; each session pins one shard (tenant affinity, drawn through
   the skew pattern so a zipf pattern concentrates tenants) and spaces its
   requests by the think time.  Sorted by arrival, stable in generation
   order. *)
let gen_requests spec ~arrival =
  let sessions = Arrival.times arrival ~seed:spec.seed ~horizon:spec.horizon in
  let g = Xrand.create (Bitops.mix ((spec.seed * 7919) + 1)) in
  let pick_shard = Workload.key_gen spec.pattern ~key_range:spec.shards in
  let pick_key = Workload.key_gen spec.pattern ~key_range:spec.key_range in
  let acc = ref [] in
  List.iter
    (fun t0 ->
      let shard = pick_shard g - 1 in
      for k = 0 to spec.session - 1 do
        let t_arr = t0 +. (float_of_int k *. spec.think) in
        if t_arr < spec.horizon then
          acc :=
            {
              t_arr;
              shard;
              deadline = t_arr +. spec.deadline;
              op = gen_op spec pick_key g;
            }
            :: !acc
      done)
    sessions;
  let a = Array.of_list (List.rev !acc) in
  Array.stable_sort (fun r1 r2 -> Float.compare r1.t_arr r2.t_arr) a;
  a

(* ------------------------------------------------------------------ *)
(* Backend engines                                                     *)
(* ------------------------------------------------------------------ *)

(* One engine packages everything shard-indexed the dispatcher needs; the
   [exec] guard runs first inside every transaction attempt and may raise
   the give-up exceptions. *)
type engine = {
  exec : shard:int -> guard:(unit -> unit) -> op -> bool;
  finalize : unit -> string list;
      (* post-drain correctness checks (linearizability / consistency) *)
  cleanup : unit -> unit;  (* free all service-created state *)
  baseline : int;  (* live_words the cleanup must return to *)
  record : (shard:int -> tid:int -> inv:int -> resp:int -> op -> bool -> unit)
           option;
}

exception Deadline_hit
exception Budget_out

let validate spec =
  let fail msg = invalid_arg ("Service.run_one: " ^ msg) in
  if spec.workers < 1 then fail "workers < 1";
  if spec.shards < 1 then fail "shards < 1";
  if spec.session < 1 then fail "session < 1";
  if spec.retry_budget < 1 then fail "retry_budget < 1";
  if spec.queue_cap < 1 then fail "queue_cap < 1";
  if spec.batch < 1 then fail "batch < 1";
  if spec.horizon <= 0.0 then fail "horizon <= 0";
  if spec.deadline <= 0.0 then fail "deadline <= 0";
  if spec.think < 0.0 then fail "think < 0";
  if spec.key_range < 2 then fail "key_range < 2";
  if spec.initial_size < 0 then fail "initial_size < 0";
  (match spec.backend with
  | Intset _ when spec.initial_size >= spec.key_range ->
      fail "key_range must exceed initial_size"
  | _ -> ());
  if spec.update_pct < 0.0 || spec.update_pct > 100.0 then
    fail "update_pct outside [0, 100]";
  (match spec.overload with
  | Some x when not (Float.is_finite x && x > 0.0) ->
      fail "overload must be finite and positive"
  | _ -> ())

let memory_words spec =
  match spec.backend with
  | Intset _ ->
      (spec.shards
       * ((spec.initial_size + (8 * spec.workers) + 64) * 24))
      + 8192
  | Vacation ->
      let per =
        Tstm_vacation.Vacation.memory_words_for (vac_spec spec)
      in
      (spec.shards * per) + 8192

(* Build the backend over an already-created STM instance.  Population
   happens outside [R.run], so it costs no virtual time. *)
let make_engine (type a) spec
    (module M : Tstm_tm.Tm_intf.STM with type t = a) (t : a) =
  match spec.backend with
  | Intset structure ->
      let module D = Driver.Make (R) (M) in
      let shard_ops =
        Array.init spec.shards (fun _ -> D.make_structure t structure)
      in
      let empty_baseline = M.live_words t in
      let histories =
        if spec.record then
          Some
            (Array.init spec.shards (fun _ ->
                 History.create ~nthreads:spec.workers))
        else None
      in
      (* The checker replays from an empty set, so the pre-population
         inserts must be part of the recorded history: sequential tid-0
         events that precede (in real time) everything the workers log. *)
      Array.iteri
        (fun s ops ->
          let g = Xrand.create (Bitops.mix ((spec.seed * 131) + s)) in
          let inserted = ref 0 in
          while !inserted < spec.initial_size do
            let v = 1 + Xrand.int g spec.key_range in
            let inv = R.now_cycles () in
            if M.atomically t (fun tx -> ops.D.op_add tx v) then begin
              (match histories with
              | Some hs ->
                  History.record hs.(s) ~tid:0 ~inv ~resp:(R.now_cycles ())
                    ~op:(History.Add v) ~result:true
              | None -> ());
              incr inserted
            end
          done)
        shard_ops;
      let exec ~shard ~guard op =
        let ops = shard_ops.(shard) in
        match op with
        | Set_op sop ->
            M.atomically t (fun tx ->
                guard ();
                match sop with
                | History.Add k -> ops.D.op_add tx k
                | History.Remove k -> ops.D.op_remove tx k
                | History.Contains k -> ops.D.op_contains tx k)
        | Vac_op _ -> invalid_arg "Service: vacation op on intset backend"
      in
      let record =
        Option.map
          (fun hs ~shard ~tid ~inv ~resp op result ->
            match op with
            | Set_op sop ->
                History.record hs.(shard) ~tid ~inv ~resp ~op:sop ~result
            | Vac_op _ -> ())
          histories
      in
      let finalize () =
        match histories with
        | None -> []
        | Some hs ->
            let violations = ref [] in
            Array.iteri
              (fun s h ->
                let final =
                  M.atomically t (fun tx -> shard_ops.(s).D.op_to_list tx)
                in
                match
                  History.check ~window:64 ~final (History.events h)
                with
                | Ok () -> ()
                | Error msg ->
                    violations :=
                      Printf.sprintf "shard %d: %s" s msg :: !violations)
              hs;
            List.rev !violations
      in
      let cleanup () =
        Array.iter
          (fun ops ->
            let keys = M.atomically t (fun tx -> ops.D.op_to_list tx) in
            List.iter
              (fun k -> ignore (M.atomically t (fun tx -> ops.D.op_remove tx k)))
              keys)
          shard_ops
      in
      { exec; finalize; cleanup; baseline = empty_baseline; record }
  | Vacation ->
      let module V = Tstm_vacation.Vacation.Make (M) in
      let vs = vac_spec spec in
      let tenants =
        Array.init spec.shards (fun s ->
            let v = V.create t in
            V.populate v vs ~seed:(Bitops.mix ((spec.seed * 257) + s)))
      in
      (* Baseline after population: reservations and customer records are
         the only state the service adds, and cancelling every customer
         releases all of it. *)
      let populated_baseline = M.live_words t in
      let table_of = function
        | 0 -> V.Car
        | 1 -> V.Flight
        | _ -> V.Room
      in
      let exec ~shard ~guard op =
        let v = tenants.(shard) in
        match op with
        | Vac_op (V_reserve { cid; picks }) ->
            M.atomically t (fun tx ->
                guard ();
                (* Query each pick, reserve the cheapest available (ties:
                   first) — the Vacation client shape. *)
                let best = ref None in
                List.iter
                  (fun (tbl, id) ->
                    match V.query_price v tx (table_of tbl) id with
                    | Some price -> (
                        match !best with
                        | Some (_, _, p) when p <= price -> ()
                        | _ -> best := Some (tbl, id, price))
                    | None -> ())
                  picks;
                match !best with
                | Some (tbl, id, _) -> V.reserve v tx (table_of tbl) id cid
                | None -> false)
        | Vac_op (V_cancel { cid }) ->
            M.atomically t (fun tx ->
                guard ();
                Option.is_some (V.delete_customer v tx cid))
        | Vac_op (V_query { picks }) ->
            M.atomically t (fun tx ->
                guard ();
                List.fold_left
                  (fun acc (tbl, id) ->
                    acc || Option.is_some (V.query_price v tx (table_of tbl) id))
                  false picks)
        | Set_op _ -> invalid_arg "Service: set op on vacation backend"
      in
      let finalize () =
        let violations = ref [] in
        Array.iteri
          (fun s v ->
            try V.check_consistency v
            with V.Inconsistent msg ->
              violations := Printf.sprintf "tenant %d: %s" s msg :: !violations)
          tenants;
        List.rev !violations
      in
      let cleanup () =
        Array.iter
          (fun v ->
            for cid = 1 to vs.Tstm_vacation.Vacation.n_customers do
              ignore (M.atomically t (fun tx -> V.delete_customer v tx cid))
            done)
          tenants
      in
      {
        exec;
        finalize;
        cleanup;
        baseline = populated_baseline;
        record = None;
      }

(* ------------------------------------------------------------------ *)
(* Capacity calibration                                                *)
(* ------------------------------------------------------------------ *)

(* Closed-loop saturation: the same workers, shards and operation mix, but
   back-to-back with no arrival gaps — the commit rate is the service's
   capacity, the denominator of every goodput ratio and the base of the
   [--overload x] rate resolution.  Runs on its own fresh instance (and,
   when the spec arms the watchdog, its own fresh watchdog with the same
   thresholds: its per-commit accounting is part of the capacity being
   measured) so the measured run starts cold. *)
let calib_horizon = 0.001
let dispatch_cost = 80

let calibrate spec policy =
  let (module M) = Registry.get spec.stm in
  let wd =
    if spec.watchdog then
      Some
        (Watchdog.create ~window:spec.wd_window ~starve_retries:spec.wd_starve
           ~recover_windows:spec.wd_calm ())
    else None
  in
  let t = M.create ~cm:policy ?watchdog:wd ~memory_words:(memory_words spec) () in
  let engine = make_engine spec (module M) t in
  let g0 = Xrand.create (Bitops.mix ((spec.seed * 11) + 5)) in
  let pick_key = Workload.key_gen spec.pattern ~key_range:spec.key_range in
  (* One pregenerated op ring per worker keeps the loop allocation-free
     and the op mix identical to the open-loop run's. *)
  let ring_len = 256 in
  let rings =
    Array.init spec.workers (fun _ ->
        Array.init ring_len (fun _ -> gen_op spec pick_key g0))
  in
  let commits = ref 0 in
  R.run ~nthreads:spec.workers (fun w ->
      let ring = rings.(w) in
      let i = ref 0 in
      let shard = ref (w mod spec.shards) in
      while R.now () < calib_horizon do
        R.charge dispatch_cost;
        (* The same attempt bound as the open-loop run's retry budget, so a
           pathological contention-manager choice cannot hang calibration. *)
        let attempts = ref 0 in
        let guard () =
          incr attempts;
          if !attempts > max 64 spec.retry_budget then raise Budget_out
        in
        (match engine.exec ~shard:!shard ~guard ring.(!i) with
        | _ -> incr commits
        | exception Budget_out -> ());
        i := (!i + 1) mod ring_len;
        shard := (!shard + 1) mod spec.shards
      done);
  float_of_int !commits /. calib_horizon

(* ------------------------------------------------------------------ *)
(* The service run                                                     *)
(* ------------------------------------------------------------------ *)

let idle_quantum = 2_000

let run_one spec =
  validate spec;
  let policy =
    match Cm.of_string spec.cm with
    | Ok p -> p
    | Error msg -> invalid_arg ("Service.run_one: " ^ msg)
  in
  let hz = cycles_per_second () in
  let capacity = calibrate spec policy in
  let arrival =
    match spec.overload with
    | Some x -> Arrival.scale spec.arrival (x *. capacity)
    | None -> spec.arrival
  in
  let offered = Arrival.mean_rate arrival in
  let reqs = gen_requests spec ~arrival in
  let n = Array.length reqs in
  let wd =
    if spec.watchdog then
      Some
        (Watchdog.create ~window:spec.wd_window ~starve_retries:spec.wd_starve
           ~recover_windows:spec.wd_calm ())
    else None
  in
  let (module M) = Registry.get spec.stm in
  let body () =
    let t =
      M.create ~cm:policy ?watchdog:wd ~memory_words:(memory_words spec) ()
    in
    let engine = make_engine spec (module M) t in
    M.reset_stats t;
    (* Shared dispatcher state: plain OCaml, no preemption points inside
       any manipulation, so cooperative scheduling keeps it race-free. *)
    let queues = Array.init spec.shards (fun _ -> Queue.create ()) in
    let depth = Array.make spec.shards 0 in
    let cursor = ref 0 in
    let max_depth = ref 0 in
    let hot_dispatches = ref 0 in
    let slo = Slo.create () in
    let log = ref [] in
    let elapsed = ref 0.0 in
    let finish verdict lat_cycles =
      Slo.note slo verdict ~lat_cycles;
      log := (R.now (), verdict, lat_cycles) :: !log
    in
    let cap =
      match spec.shed with No_shed -> max_int | _ -> spec.queue_cap
    in
    let admit () =
      let now = R.now () in
      while !cursor < n && reqs.(!cursor).t_arr <= now do
        let r = reqs.(!cursor) in
        incr cursor;
        if depth.(r.shard) >= cap then finish Slo.Shed 0
        else begin
          Queue.push r queues.(r.shard);
          depth.(r.shard) <- depth.(r.shard) + 1;
          if depth.(r.shard) > !max_depth then max_depth := depth.(r.shard)
        end
      done
    in
    let wd_degraded () =
      match wd with
      | Some w -> Watchdog.level w <> Watchdog.Normal
      | None -> false
    in
    let hot_threshold = max 1 (spec.queue_cap / 2) in
    (* Under [Serialize_hot], a degraded watchdog or a deep queue turns a
       shard owner-only: cross-worker conflicts on the hot tenant drop to
       zero, the request-level analogue of serial-irrevocable escalation. *)
    let restricted s =
      spec.shed = Serialize_hot
      && (wd_degraded () || depth.(s) >= hot_threshold)
    in
    let take w =
      let found = ref None in
      let k = ref 0 in
      while !found = None && !k < spec.shards do
        let s = (w + !k) mod spec.shards in
        if depth.(s) > 0 then
          if restricted s then begin
            if s mod spec.workers = w then begin
              incr hot_dispatches;
              found := Some s
            end
          end
          else found := Some s;
        incr k
      done;
      match !found with
      | None -> None
      | Some s ->
          let m = min spec.batch depth.(s) in
          let batch = ref [] in
          for _ = 1 to m do
            batch := Queue.pop queues.(s) :: !batch
          done;
          depth.(s) <- depth.(s) - m;
          Some (List.rev !batch)
    in
    let lat_of r =
      let l = R.now () -. r.t_arr in
      if l <= 0.0 then 0 else int_of_float (l *. hz)
    in
    let hopeless_drop =
      match spec.shed with
      | Deadline_aware | Serialize_hot -> true
      | No_shed | Drop_newest -> false
    in
    let process w r =
      if hopeless_drop && R.now () > r.deadline then
        finish Slo.Dropped (lat_of r)
      else begin
        R.charge dispatch_cost;
        let attempts = ref 0 in
        let guard () =
          incr attempts;
          if !attempts > spec.retry_budget then raise Budget_out;
          if R.now () > r.deadline then raise Deadline_hit
        in
        let inv = R.now_cycles () in
        match engine.exec ~shard:r.shard ~guard r.op with
        | result ->
            let resp = R.now_cycles () in
            (match engine.record with
            | Some rec_fn ->
                rec_fn ~shard:r.shard ~tid:w ~inv ~resp r.op result
            | None -> ());
            if R.now () <= r.deadline then finish Slo.Committed (lat_of r)
            else finish Slo.Late (lat_of r)
        | exception Deadline_hit -> finish Slo.Gave_up (lat_of r)
        | exception Budget_out -> finish Slo.Budget_exhausted (lat_of r)
      end
    in
    R.run ~nthreads:spec.workers (fun w ->
        let rec loop () =
          admit ();
          match take w with
          | Some batch ->
              List.iter (process w) batch;
              R.yield ();
              loop ()
          | None ->
              if !cursor >= n && Array.for_all (fun d -> d = 0) depth then ()
              else begin
                (* Idle: advance to the next arrival (or a small quantum
                   when only restricted shards hold work). *)
                let now = R.now () in
                let dt =
                  if !cursor < n then reqs.(!cursor).t_arr -. now else 0.0
                in
                let cycles =
                  if dt > 0.0 then 1 + int_of_float (dt *. hz)
                  else idle_quantum
                in
                R.charge cycles;
                loop ()
              end
        in
        loop ();
        if R.now () > !elapsed then elapsed := R.now ());
    (* Drained: verify, then tear down the service state and compare the
       allocator against the engine's baseline. *)
    let violations = engine.finalize () in
    let stats = M.stats t in
    engine.cleanup ();
    let leak_words = M.live_words t - engine.baseline in
    (slo, log, violations, stats, leak_words, !elapsed, !max_depth,
     !hot_dispatches)
  in
  let ( (slo, log, violations, stats, leak_words, elapsed, max_depth,
         hot_dispatches),
        san_findings ) =
    if spec.san then San.with_armed ~ncpus:(max 1 spec.workers) body
    else (body (), [])
  in
  let summary = Slo.summary slo in
  {
    capacity;
    offered;
    goodput =
      (if spec.horizon > 0.0 then
         float_of_int summary.Slo.committed /. spec.horizon
       else 0.0);
    slo = summary;
    max_depth;
    hot_dispatches;
    wd = Option.map Watchdog.snapshot wd;
    stats;
    violations;
    san_findings;
    leak_words;
    elapsed;
    log = Array.of_list (List.rev !log);
  }

(* ------------------------------------------------------------------ *)
(* Per-period SLO table                                                *)
(* ------------------------------------------------------------------ *)

let per_period_metrics ~periods report =
  if periods < 1 then invalid_arg "Service.per_period_metrics: periods < 1";
  let span = if report.elapsed > 0.0 then report.elapsed else 1.0 in
  let slos = Array.init periods (fun _ -> Slo.create ()) in
  Array.iter
    (fun (t_done, verdict, lat) ->
      let idx =
        min (periods - 1)
          (max 0 (int_of_float (t_done /. span *. float_of_int periods)))
      in
      Slo.note slos.(idx) verdict ~lat_cycles:lat)
    report.log;
  let m = Tstm_obs.Metrics.create ~columns:Slo.columns in
  Array.iteri
    (fun i s ->
      let t_end = span *. float_of_int (i + 1) /. float_of_int periods in
      Tstm_obs.Metrics.add_row m
        (Slo.row ~period:i ~t_end (Slo.summary s)))
    slos;
  m

(* ------------------------------------------------------------------ *)
(* Sweep plan                                                          *)
(* ------------------------------------------------------------------ *)

(* seeds (outer) x stm x shed (inner), mirroring [Stress.plan]: plan rank
   order equals sequential execution order. *)
let plan ~seeds ~stms ~sheds base =
  let acc = ref [] in
  for seed = seeds - 1 downto 0 do
    List.iter
      (fun stm ->
        List.iter
          (fun shed -> acc := { base with stm; shed; seed } :: !acc)
          (List.rev sheds))
      (List.rev stms)
  done;
  Array.of_list !acc
