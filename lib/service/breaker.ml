(* Calm-window circuit breaker: Closed -> (fault burst) Open -> (cooldown)
   Half_open -> (calm window) Closed.  Mirrors the watchdog's calm-window
   recovery discipline at the request level; mutated only under the
   service's dispatch mutex. *)

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  fault_threshold : int;
  window_s : float;
  cooldown_s : float;
  calm : int;
}

let default =
  { fault_threshold = 5; window_s = 0.05; cooldown_s = 0.02; calm = 8 }

type t = {
  cfg : config;
  on_transition : state -> unit;
  faults : float Queue.t;  (* timestamps of recent faults, ascending *)
  mutable st : state;
  mutable opened_at : float;
  mutable calm_count : int;
  mutable trips : int;
}

let create ?(on_transition = fun _ -> ()) cfg =
  if cfg.fault_threshold < 1 then
    invalid_arg "Breaker.create: fault_threshold < 1";
  if cfg.window_s <= 0.0 then invalid_arg "Breaker.create: window_s <= 0";
  if cfg.cooldown_s <= 0.0 then invalid_arg "Breaker.create: cooldown_s <= 0";
  if cfg.calm < 1 then invalid_arg "Breaker.create: calm < 1";
  {
    cfg;
    on_transition;
    faults = Queue.create ();
    st = Closed;
    opened_at = 0.0;
    calm_count = 0;
    trips = 0;
  }

let state t = t.st
let trips t = t.trips

let transition t st =
  if t.st <> st then begin
    t.st <- st;
    t.on_transition st
  end

let prune t ~now =
  while
    (not (Queue.is_empty t.faults))
    && Queue.peek t.faults < now -. t.cfg.window_s
  do
    ignore (Queue.pop t.faults)
  done

let trip t ~now =
  t.opened_at <- now;
  t.calm_count <- 0;
  t.trips <- t.trips + 1;
  transition t Open

let on_fault t ~now =
  Queue.push now t.faults;
  prune t ~now;
  match t.st with
  | Closed -> if Queue.length t.faults >= t.cfg.fault_threshold then trip t ~now
  | Half_open ->
      (* A fault while probing: straight back to Open, fresh cooldown. *)
      trip t ~now
  | Open -> ()

let on_success t ~now =
  match t.st with
  | Half_open ->
      t.calm_count <- t.calm_count + 1;
      if t.calm_count >= t.cfg.calm then begin
        Queue.clear t.faults;
        prune t ~now;
        transition t Closed
      end
  | Closed | Open -> ()

let admit t ~now =
  match t.st with
  | Closed -> true
  | Half_open -> true
  | Open ->
      if now -. t.opened_at >= t.cfg.cooldown_s then begin
        t.calm_count <- 0;
        transition t Half_open;
        true
      end
      else false
