(* Real-domain service dispatcher: wall-clock arrivals into mutex-protected
   shard queues, dispatcher domains running one transaction per request,
   a circuit breaker fed by typed faults.  See service_real.mli. *)

module R = Tstm_runtime.Runtime_real
module Mono = Tstm_obs.Monotonic
module Slo = Tstm_obs.Slo
module Sink = Tstm_obs.Sink
module Event = Tstm_obs.Event
module Stats = Tstm_tm.Tm_stats
module Intf = Tstm_tm.Tm_intf
module Fault = Tstm_fault.Fault
module BR = Tstm_harness.Bench_real
module Driver = Tstm_harness.Driver
module Workload = Tstm_harness.Workload
module Xrand = Tstm_util.Xrand
module Bitops = Tstm_util.Bitops

type spec = {
  stm : string;
  workers : int;
  shards : int;
  structure : Workload.structure;
  arrival : Arrival.t;
  horizon_s : float;
  deadline_s : float;
  fault_budget : int;
  queue_cap : int;
  key_range : int;
  initial_size : int;
  update_pct : float;
  breaker : Breaker.config;
  seed : int;
}

let default =
  {
    stm = "tinystm-wb";
    workers = 3;
    shards = 4;
    structure = Workload.Hashset;
    arrival = { Arrival.shape = Arrival.Poisson; rate = 20_000.0 };
    horizon_s = 0.2;
    deadline_s = 0.01;
    fault_budget = 8;
    queue_cap = 256;
    key_range = 1024;
    initial_size = 128;
    update_pct = 50.0;
    breaker = Breaker.default;
    seed = 42;
  }

type report = {
  offered : int;
  elapsed_s : float;
  goodput : float;
  slo : Slo.summary;
  crash_faults : int;
  faults_retried : int;
  breaker_trips : int;
  breaker_state : string;
  leak_words : int;
  violations : string list;
  stats : Stats.t;
}

let failed r = r.violations <> [] || r.leak_words <> 0

type op = Contains | Add | Remove

type request = {
  t_arr : float;  (* seconds from run start *)
  shard : int;
  key : int;
  op : op;
}

(* The whole request stream is precomputed from the spec — the arrival
   instants by the same pure [Arrival.times] the simulated service uses,
   the per-request shard/key/op by one seeded RNG — so two runs of a spec
   offer identical work (wall-clock interleaving is the only variance). *)
let make_requests spec =
  let g = Xrand.create (Bitops.mix (spec.seed + 0x5e41)) in
  List.map
    (fun t_arr ->
      let shard = Xrand.int g spec.shards in
      let key = 1 + Xrand.int g spec.key_range in
      let op =
        if Xrand.below_percent g spec.update_pct then
          if Xrand.bool g then Add else Remove
        else Contains
      in
      { t_arr; shard; key; op })
    (Arrival.times spec.arrival ~seed:spec.seed ~horizon:spec.horizon_s)

type shard_q = { m : Mutex.t; q : request Queue.t }

let validate spec =
  if spec.workers < 1 then invalid_arg "Service_real: workers < 1";
  if spec.shards < 1 then invalid_arg "Service_real: shards < 1";
  if spec.horizon_s <= 0.0 then invalid_arg "Service_real: horizon <= 0";
  if spec.deadline_s <= 0.0 then invalid_arg "Service_real: deadline <= 0";
  if spec.fault_budget < 1 then invalid_arg "Service_real: fault_budget < 1";
  if spec.queue_cap < 1 then invalid_arg "Service_real: queue_cap < 1";
  if spec.key_range < 1 then invalid_arg "Service_real: key_range < 1";
  if spec.initial_size < 0 then invalid_arg "Service_real: initial_size < 0"

let run_packed (module M : BR.STM) spec =
  let module D = Driver.Make (R) (M) in
  let wspec =
    Workload.make ~structure:spec.structure ~initial_size:spec.initial_size
      ~update_pct:spec.update_pct ~nthreads:1 ~duration:1.0 ~seed:spec.seed
      ~key_range:spec.key_range ()
  in
  let memory_words = Workload.memory_words_for wspec * (spec.shards + 1) in
  let t = M.create ~memory_words () in
  (* Structure setup, population and (later) the drain run on the
     orchestrator with injection masked: a caller may arm the fault plan
     around the whole run, but the service's fault surface is the request
     path, not setup or the integrity audit. *)
  let masked f =
    let tid = R.tid () in
    Fault.mask ~tid;
    Fun.protect ~finally:(fun () -> Fault.unmask ~tid) f
  in
  let opss =
    masked (fun () ->
        Array.init spec.shards (fun _ -> D.make_structure t spec.structure))
  in
  let live_skel = M.live_words t in
  masked (fun () -> Array.iter (fun ops -> D.populate t ops wspec) opss);
  let requests = make_requests spec in
  let offered = List.length requests in
  let queues =
    Array.init spec.shards (fun _ ->
        { m = Mutex.create (); q = Queue.create () })
  in
  let closed = Atomic.make false in
  (* Shared accounting, all under one mutex: the SLO counters, the breaker
     (whose fault window needs a single timeline) and the fault counters. *)
  let stat_m = Mutex.create () in
  let slo = Slo.create () in
  let crash_faults = ref 0 in
  let faults_retried = ref 0 in
  let on_transition st =
    if Sink.enabled () then
      Sink.emit ~ts:(Mono.now_ns ()) ~cpu:(R.tid ())
        (Event.Breaker_trip { state = Breaker.state_to_string st })
  in
  let breaker = Breaker.create ~on_transition spec.breaker in
  let t0_ns = Mono.now_ns () in
  let now_s () = float_of_int (Mono.now_ns () - t0_ns) *. 1e-9 in
  let note v ~lat =
    Mutex.lock stat_m;
    Slo.note slo v ~lat_cycles:lat;
    Mutex.unlock stat_m
  in
  let deadline_len_ns = int_of_float (spec.deadline_s *. 1e9) in
  let feeder () =
    List.iter
      (fun r ->
        let rec wait () =
          let now = now_s () in
          if now < r.t_arr then begin
            Unix.sleepf (Float.min 0.0005 (r.t_arr -. now));
            wait ()
          end
        in
        wait ();
        let admitted =
          Mutex.lock stat_m;
          let a = Breaker.admit breaker ~now:(now_s ()) in
          Mutex.unlock stat_m;
          a
        in
        if not admitted then note Slo.Tripped ~lat:0
        else begin
          let sh = queues.(r.shard) in
          Mutex.lock sh.m;
          if Queue.length sh.q >= spec.queue_cap then begin
            Mutex.unlock sh.m;
            note Slo.Shed ~lat:0
          end
          else begin
            Queue.push r sh.q;
            Mutex.unlock sh.m
          end
        end)
      requests;
    Atomic.set closed true
  in
  let take_from i =
    let sh = queues.(i) in
    Mutex.lock sh.m;
    let r = Queue.take_opt sh.q in
    Mutex.unlock sh.m;
    r
  in
  let exec ops r tx =
    match r.op with
    | Contains -> ignore (ops.D.op_contains tx r.key)
    | Add -> ignore (ops.D.op_add tx r.key)
    | Remove -> ignore (ops.D.op_remove tx r.key)
  in
  let process r =
    let arr_ns = t0_ns + int_of_float (r.t_arr *. 1e9) in
    let deadline_ns = arr_ns + deadline_len_ns in
    if Mono.now_ns () > deadline_ns then
      (* Already hopeless at dequeue: deadline-aware drop, no transaction
         burned (same rung as the simulated service's Deadline_aware). *)
      note Slo.Dropped ~lat:(Mono.now_ns () - arr_ns)
    else begin
      let ops = opss.(r.shard) in
      let rec go crashes =
        match M.atomically t (fun tx -> exec ops r tx) with
        | () ->
            let fin = Mono.now_ns () in
            Mutex.lock stat_m;
            Slo.note slo
              (if fin <= deadline_ns then Slo.Committed else Slo.Late)
              ~lat_cycles:(fin - arr_ns);
            Breaker.on_success breaker ~now:(now_s ());
            Mutex.unlock stat_m
        | exception Fault.Injected_crash _ ->
            (* The transaction rolled back cleanly (locks released,
               speculative allocations freed); the request, not the
               worker, absorbs the crash.  Retry within the budget. *)
            Mutex.lock stat_m;
            incr crash_faults;
            Breaker.on_fault breaker ~now:(now_s ());
            let retry = crashes + 1 < spec.fault_budget in
            if retry then incr faults_retried;
            Mutex.unlock stat_m;
            if retry then go (crashes + 1)
            else note Slo.Faulted ~lat:(Mono.now_ns () - arr_ns)
        | exception Intf.Capacity _ ->
            (* Typed arena-exhaustion verdict: retrying cannot help. *)
            Mutex.lock stat_m;
            Breaker.on_fault breaker ~now:(now_s ());
            Mutex.unlock stat_m;
            note Slo.Faulted ~lat:(Mono.now_ns () - arr_ns)
      in
      go 0
    end
  in
  let all_empty () =
    Array.for_all
      (fun sh ->
        Mutex.lock sh.m;
        let e = Queue.is_empty sh.q in
        Mutex.unlock sh.m;
        e)
      queues
  in
  let worker wid () =
    let rec loop idle =
      let rec scan k =
        if k >= spec.shards then None
        else
          match take_from ((wid + idle + k) mod spec.shards) with
          | Some r -> Some r
          | None -> scan (k + 1)
      in
      match scan 0 with
      | Some r ->
          process r;
          loop 0
      | None ->
          if Atomic.get closed && all_empty () then ()
          else begin
            Unix.sleepf 0.0002;
            loop (idle + 1)
          end
    in
    loop 0
  in
  R.run ~nthreads:(spec.workers + 1) (fun tid ->
      if tid = 0 then feeder () else worker (tid - 1) ());
  let elapsed_s = now_s () in
  (* Drain: transactionally remove every remaining element, then compare
     the arena against the pre-populate skeleton baseline.  Injection is
     masked — the run is over; this is the integrity audit. *)
  let violations = ref [] in
  masked (fun () ->
      Array.iteri
        (fun i ops ->
          let keys = M.atomically t (fun tx -> ops.D.op_to_list tx) in
          List.iter
            (fun k -> ignore (M.atomically t (fun tx -> ops.D.op_remove tx k)))
            keys;
          let size = M.atomically t (fun tx -> ops.D.op_size tx) in
          if size <> 0 then
            violations :=
              Printf.sprintf "shard %d: %d elements survived the drain" i size
              :: !violations)
        opss);
  let leak_words = M.live_words t - live_skel in
  let s = Slo.summary slo in
  if s.Slo.requests <> offered then
    violations :=
      Printf.sprintf "accounting: %d verdicts <> %d offered" s.Slo.requests
        offered
      :: !violations;
  {
    offered;
    elapsed_s;
    goodput =
      (if elapsed_s > 0.0 then float_of_int s.Slo.committed /. elapsed_s
       else 0.0);
    slo = s;
    crash_faults = !crash_faults;
    faults_retried = !faults_retried;
    breaker_trips = Breaker.trips breaker;
    breaker_state = Breaker.state_to_string (Breaker.state breaker);
    leak_words;
    violations = List.rev !violations;
    stats = M.stats t;
  }

let run_one spec =
  validate spec;
  match BR.find_stm spec.stm with
  | Error m -> invalid_arg ("Service_real: " ^ m)
  | Ok (_canon, m) -> run_packed m spec
