(** Overload-robust transactional service front-end over the simulated
    runtime: arrival processes feed sessions of requests into bounded
    per-shard admission queues; worker fibers dispatch them as transactions
    against a registry STM with per-request deadlines and retry budgets;
    a load-shedding policy ladder keeps goodput and tail latency bounded
    when the offered load exceeds capacity.

    Everything is deterministic from the {!spec}: the arrival schedule, the
    per-request operations, admission, dispatch and every verdict replay
    bit-identically — a service run is one {!Tstm_exec} job, so `repro
    serve` output is byte-identical for any [--jobs].

    {b Request life cycle.}  Each request arrives at a virtual instant,
    targets one shard (tenant) and carries a deadline
    [t_arr + spec.deadline].  Admission either enqueues it or sheds it
    (policy-dependent).  A worker dequeues up to [batch] requests from one
    shard at a time and runs each as a single transaction; at every attempt
    boundary (before any transactional access, so there is nothing to roll
    back even when irrevocable) the request re-checks its deadline and retry
    budget and fails fast with a typed verdict instead of spinning.  The
    accounting identity [requests = shed + admitted] and
    [admitted = committed + deadline_missed + budget_exhausted] holds for
    every run ({!Tstm_obs.Slo}).

    {b Shedding ladder} ({!shed_policy}):
    - [No_shed]: unbounded queue, nothing is ever rejected — under overload
      the queue grows without bound and tail latency blows past the SLO.
    - [Drop_newest]: admission rejects arrivals into a full queue
      ([queue_cap]).
    - [Deadline_aware]: [Drop_newest] plus a hopeless check at dequeue — a
      request already past its deadline is dropped without burning a
      transaction on it.
    - [Serialize_hot]: [Deadline_aware] plus hot-shard serialization — when
      the {!Tstm_runtime.Watchdog} reports a degraded level, or a shard's
      queue exceeds half its cap, only the shard's owner worker
      ([shard mod workers]) may dispatch from it, removing cross-worker
      conflicts on the hot tenant (the request-level analogue of the STM's
      serial-irrevocable escalation). *)

type shed_policy = No_shed | Drop_newest | Deadline_aware | Serialize_hot

val shed_to_string : shed_policy -> string
val shed_of_string : string -> (shed_policy, string) result
val all_sheds : shed_policy list

(** What the service serves. *)
type backend =
  | Intset of Tstm_harness.Workload.structure
      (** one integer-set structure per shard on a shared STM instance;
          linearizability-checkable *)
  | Vacation
      (** multi-tenant reservation service: one {!Tstm_vacation.Vacation}
          manager per shard (tenant), all in one Vmm arena, audited by
          [check_consistency] *)

val backend_to_string : backend -> string
val backend_of_string : string -> (backend, string) result

type spec = {
  stm : string;  (** {!Tstm_tm.Registry} name or alias *)
  cm : string;  (** contention-manager name *)
  backend : backend;
  workers : int;  (** dispatcher fibers (simulated CPUs) *)
  shards : int;  (** admission queues / tenants *)
  arrival : Arrival.t;
  overload : float option;
      (** when [Some x], replace the arrival base rate with [x] times the
          calibrated closed-loop capacity (the `--overload 2` CLI form) *)
  session : int;  (** requests per arriving session (>= 1) *)
  think : float;  (** virtual seconds between a session's requests *)
  pattern : Tstm_harness.Workload.pattern;
      (** skew for both the shard pick and the per-request keys *)
  key_range : int;
  initial_size : int;  (** per-shard pre-population (Intset) *)
  update_pct : float;  (** Intset update share, percent *)
  horizon : float;  (** arrival window, virtual seconds *)
  deadline : float;  (** per-request, virtual seconds *)
  retry_budget : int;  (** max transaction attempts per request (>= 1) *)
  queue_cap : int;  (** per-shard admission bound (ignored by [No_shed]) *)
  batch : int;  (** max requests dequeued from one shard at a time *)
  shed : shed_policy;
  watchdog : bool;
  wd_window : int;
  wd_starve : int;
  wd_calm : int;
  record : bool;
      (** record per-shard operation histories and run the linearizability
          checker after drain (Intset only; ignored for Vacation, which is
          audited by [check_consistency] instead) *)
  san : bool;  (** arm VmmSan around the run *)
  seed : int;
}

val default : spec
(** 4 workers x 4 shards of a list-set service on [tinystm-wb]/[backoff]:
    2 ms horizon, Poisson arrivals at 2x calibrated capacity, 0.5 ms
    deadline, budget 8, queue cap 64, batch 4, [Deadline_aware] shedding,
    watchdog off (window 50_000 / ceiling 64 / calm 2 when armed). *)

type report = {
  capacity : float;  (** calibrated closed-loop commits/s *)
  offered : float;  (** resolved mean offered load, requests/s *)
  goodput : float;  (** in-deadline commits/s over the horizon *)
  slo : Tstm_obs.Slo.summary;
  max_depth : int;  (** peak admission-queue depth *)
  hot_dispatches : int;
      (** dispatches taken under hot-shard serialization (owner-only) *)
  wd : Tstm_runtime.Watchdog.snapshot option;
  stats : Tstm_tm.Tm_stats.t;
  violations : string list;
      (** linearizability ([record]) or consistency (Vacation) failures *)
  san_findings : Tstm_san.San.finding list;
  leak_words : int;
      (** [live_words] drift after drain + cleanup (0 = no leak) *)
  elapsed : float;  (** virtual end time *)
  log : (float * Tstm_obs.Slo.verdict * int) array;
      (** completion log: (virtual finish time, verdict, latency cycles)
          per request in finish order — the raw data behind
          {!per_period_metrics} *)
}

val failed : report -> bool
(** Violations, sanitizer findings, a leak, or broken accounting. *)

val repro_command : spec -> string
(** The `repro serve ...` command line replaying exactly this spec
    (non-default fields only). *)

val cycles_per_second : unit -> float
(** The simulated clock rate (for converting {!Tstm_obs.Slo} cycles). *)

val run_one : spec -> report
(** Calibrate capacity (a short closed-loop run on a fresh instance), then
    run the open-loop service and drain it.  Raises [Invalid_argument] on
    malformed specs (unknown names, [workers < 1], [shards < 1],
    [retry_budget < 1], ...). *)

val per_period_metrics : periods:int -> report -> Tstm_obs.Metrics.t
(** Bucket the report's completion log into [periods] equal slices of the
    run ([0, elapsed]) — a post-pass, no in-run coordination — and render
    one {!Tstm_obs.Slo} row per slice. *)

val plan :
  seeds:int -> stms:string list -> sheds:shed_policy list -> spec -> spec array
(** Ordered sweep specs: seeds (outer) x stm x shed policy (inner). *)
