(* Arrival processes, sampled by thinning.

   Thinning keeps the sampler exact for any bounded rate function: draw
   candidate gaps from an exponential at the peak rate, accept each
   candidate with probability rate(t)/peak.  One [Xrand] stream drives
   both draws, so the schedule is a pure function of (process, seed,
   horizon). *)

type shape =
  | Poisson
  | Bursty of { boost : float; period : float }
  | Diurnal of { amp : float; period : float }

type t = { shape : shape; rate : float }

let duty = 0.25

let rate_at t ~now =
  match t.shape with
  | Poisson -> t.rate
  | Bursty { boost; period } ->
      let phase = Float.rem now period /. period in
      if phase < duty then t.rate *. boost else t.rate
  | Diurnal { amp; period } ->
      t.rate *. (1.0 +. (amp *. sin (2.0 *. Float.pi *. now /. period)))

let peak_rate t =
  match t.shape with
  | Poisson -> t.rate
  | Bursty { boost; _ } -> t.rate *. boost
  | Diurnal { amp; _ } -> t.rate *. (1.0 +. amp)

let mean_rate t =
  match t.shape with
  | Poisson | Diurnal _ -> t.rate
  | Bursty { boost; _ } -> t.rate *. (1.0 +. (duty *. (boost -. 1.0)))

let scale t rate = { t with rate }

let times t ~seed ~horizon =
  let g = Tstm_util.Xrand.create (Tstm_util.Bitops.mix seed) in
  let lmax = peak_rate t in
  if lmax <= 0.0 || horizon <= 0.0 then []
  else
    let rec go now acc =
      (* Xrand.float is in [0, 1); shift away from 0 so log stays finite. *)
      let u = 1.0 -. Tstm_util.Xrand.float g in
      let now = now +. (-.log u /. lmax) in
      if now >= horizon then List.rev acc
      else if Tstm_util.Xrand.float g *. lmax <= rate_at t ~now then
        go now (now :: acc)
      else go now acc
    in
    go 0.0 []

let to_string t =
  match t.shape with
  | Poisson -> Printf.sprintf "poisson:%g" t.rate
  | Bursty { boost; period } ->
      Printf.sprintf "bursty:%g:%g:%g" t.rate boost period
  | Diurnal { amp; period } ->
      Printf.sprintf "diurnal:%g:%g:%g" t.rate period amp

let usage =
  "known arrival processes: poisson:RATE, bursty:RATE:BOOST:PERIOD, \
   diurnal:RATE:PERIOD[:AMP]"

let pos_float s =
  match float_of_string_opt s with
  | Some v when Float.is_finite v && v > 0.0 -> Some v
  | _ -> None

let of_string s =
  let parts = String.split_on_char ':' s in
  match parts with
  | [ "poisson"; r ] -> (
      match pos_float r with
      | Some rate -> Ok { shape = Poisson; rate }
      | None -> Error "poisson:RATE needs a positive finite rate")
  | [ "bursty"; r; b; p ] -> (
      match (pos_float r, pos_float b, pos_float p) with
      | Some rate, Some boost, Some period when boost > 1.0 ->
          Ok { shape = Bursty { boost; period }; rate }
      | _ ->
          Error
            "bursty:RATE:BOOST:PERIOD needs positive finite values with \
             BOOST > 1")
  | [ "diurnal"; r; p ] | [ "diurnal"; r; p; "" ] -> (
      match (pos_float r, pos_float p) with
      | Some rate, Some period ->
          Ok { shape = Diurnal { amp = 0.8; period }; rate }
      | _ -> Error "diurnal:RATE:PERIOD needs positive finite values")
  | [ "diurnal"; r; p; a ] -> (
      match (pos_float r, pos_float p, float_of_string_opt a) with
      | Some rate, Some period, Some amp
        when Float.is_finite amp && amp >= 0.0 && amp < 1.0 ->
          Ok { shape = Diurnal { amp; period }; rate }
      | _ ->
          Error
            "diurnal:RATE:PERIOD:AMP needs positive finite RATE/PERIOD and \
             0 <= AMP < 1")
  | _ -> Error (Printf.sprintf "cannot parse arrival process %S (%s)" s usage)
