(** Deterministic arrival processes for the service layer.

    A process is a shape plus a base rate; {!times} samples the session
    arrival instants over a horizon by thinning a homogeneous Poisson
    process at the peak rate — fully deterministic from the seed, so every
    overload run replays bit-identically.

    Shapes:
    - [Poisson]: constant rate [rate].
    - [Bursty]: [boost]× the base rate during the first quarter of every
      [period], base rate otherwise (mean > base — bursts are extra load).
    - [Diurnal]: sinusoidal [rate * (1 + amp * sin (2*pi*t / period))]
      (mean = base rate). *)

type shape =
  | Poisson
  | Bursty of { boost : float; period : float }
  | Diurnal of { amp : float; period : float }

type t = { shape : shape; rate : float  (** base rate, requests/s *) }

val duty : float
(** Fraction of each bursty period spent at the boosted rate (0.25). *)

val rate_at : t -> now:float -> float
(** Instantaneous rate at virtual time [now]. *)

val peak_rate : t -> float

val mean_rate : t -> float
(** Long-run average: [rate] for Poisson/Diurnal,
    [rate * (1 + duty * (boost - 1))] for Bursty. *)

val scale : t -> float -> t
(** [scale t r] replaces the base rate with [r] (same shape). *)

val times : t -> seed:int -> horizon:float -> float list
(** Ascending arrival instants in [\[0, horizon)]. *)

val to_string : t -> string
(** ["poisson:RATE"], ["bursty:RATE:BOOST:PERIOD"],
    ["diurnal:RATE:PERIOD:AMP"] — round-trips through {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse the {!to_string} forms ([diurnal]'s [:AMP] may be omitted,
    defaulting to [0.8]).  Every parameter must be finite and positive;
    [boost > 1]; [0 <= amp < 1].  Errors are usage messages suitable for
    cmdliner converters — parsing never raises. *)
