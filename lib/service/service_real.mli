(** Real-domain service front-end: the wall-clock sibling of {!Service},
    built for fault-injected runs.

    {!Service} is deterministic because it runs on the simulated runtime's
    cooperative scheduler; that machinery cannot express injected crashes
    of real worker domains, so this module re-implements the dispatch core
    over {!Tstm_runtime.Runtime_real}: the orchestrating domain feeds the
    precomputed arrival schedule ({!Arrival.times} — pure, shared with the
    simulated service) into mutex-protected per-shard admission queues in
    wall-clock time, and [workers] dispatcher domains drain them, running
    each request as one transaction against a shared
    {!Tstm_harness.Bench_real} STM instance (one intset structure per
    shard).

    {b Fault handling.}  A request whose transaction dies of
    [Tstm_fault.Fault.Injected_crash] is retried in place up to
    [fault_budget] attempts; every occurrence feeds the circuit
    {!Breaker}, and a request that exhausts the budget — or hits the typed
    arena [Tm_intf.Capacity] — ends with the {!Tstm_obs.Slo.Faulted}
    verdict.  While the breaker is [Open], arrivals are rejected with
    {!Tstm_obs.Slo.Tripped}; after its cooldown and calm window it closes
    and goodput recovers.  With no fault plan armed the breaker never
    trips and the run behaves like a plain open-loop service.

    {b Integrity.}  After the run the orchestrator masks injection, drains
    every shard (removes each remaining element transactionally) and
    checks the arena against the pre-populate baseline: [leak_words <> 0]
    means some aborted or crashed transaction leaked allocator words. *)

type spec = {
  stm : string;  (** {!Tstm_harness.Bench_real} name or alias *)
  workers : int;  (** dispatcher domains (the orchestrator feeds) *)
  shards : int;  (** admission queues / structures *)
  structure : Tstm_harness.Workload.structure;
  arrival : Arrival.t;  (** requests per wall-clock second *)
  horizon_s : float;  (** arrival window, seconds *)
  deadline_s : float;  (** per-request deadline, seconds *)
  fault_budget : int;  (** injected-crash retries per request (>= 1) *)
  queue_cap : int;  (** per-shard admission bound *)
  key_range : int;
  initial_size : int;  (** per-shard pre-population *)
  update_pct : float;  (** share of add/remove requests, percent *)
  breaker : Breaker.config;
  seed : int;
}

val default : spec
(** 3 workers x 4 shards of hashsets on [tinystm-wb]: Poisson arrivals at
    20k requests/s for 0.2 s, 10 ms deadline, fault budget 8, queue cap
    256, 50 % updates, default breaker. *)

type report = {
  offered : int;  (** arrivals generated from the schedule *)
  elapsed_s : float;  (** wall-clock run time (arrivals + drain of queues) *)
  goodput : float;  (** in-deadline commits/s over [elapsed_s] *)
  slo : Tstm_obs.Slo.summary;  (** latencies in nanoseconds ("cycles") *)
  crash_faults : int;  (** injected-crash exceptions caught *)
  faults_retried : int;  (** of those, retried within the budget *)
  breaker_trips : int;
  breaker_state : string;  (** final state *)
  leak_words : int;  (** arena drift after drain (0 = no leak) *)
  violations : string list;
  stats : Tstm_tm.Tm_stats.t;
}

val failed : report -> bool
(** Violations or a leak. *)

val run_one : spec -> report
(** Raises [Invalid_argument] on malformed specs (unknown STM,
    [workers < 1], ...). *)
