(** Calm-window circuit breaker for the real-domain service front-end.

    The request-level analogue of {!Tstm_runtime.Watchdog}'s degradation
    ladder: a burst of typed faults (injected crashes, arena [Capacity])
    within a sliding wall-clock window trips the breaker [Open]; admission
    then rejects arrivals with the [Tripped] verdict until a cooldown has
    passed, after which the breaker goes [Half_open] and lets probe
    requests through; a calm window — [calm] consecutive successful probes
    with no fault — closes it again (a fault while [Half_open] re-opens it
    immediately, restarting the cooldown).

    The type is not thread-safe by itself: the service mutates it only
    under its dispatch mutex, which is also what makes
    "faults-within-window" well-defined. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string
(** ["closed"], ["open"], ["half-open"] — the strings
    {!Tstm_obs.Event.Breaker_trip} carries. *)

type config = {
  fault_threshold : int;  (** faults within [window_s] that trip (>= 1) *)
  window_s : float;  (** sliding fault window, seconds *)
  cooldown_s : float;  (** [Open] duration before probing *)
  calm : int;  (** consecutive [Half_open] successes that close (>= 1) *)
}

val default : config
(** Trip on 5 faults within 50 ms; probe after a 20 ms cooldown; close
    after 8 calm probes. *)

type t

val create : ?on_transition:(state -> unit) -> config -> t
(** [on_transition] fires on every state change, with the new state
    (e.g. to emit {!Tstm_obs.Event.Breaker_trip}).  Raises
    [Invalid_argument] on a non-positive threshold, window, cooldown or
    calm count. *)

val state : t -> state
val trips : t -> int
(** Transitions into [Open] so far (including [Half_open] re-opens). *)

val admit : t -> now:float -> bool
(** Admission decision at time [now] (seconds, any monotonic origin —
    consistent across calls).  [Open] flips to [Half_open] here once the
    cooldown has passed; [Half_open] admits probes. *)

val on_fault : t -> now:float -> unit
(** Record one typed fault.  May trip [Closed] to [Open] (threshold
    reached) or knock [Half_open] back to [Open]. *)

val on_success : t -> now:float -> unit
(** Record one successfully completed request.  [calm] consecutive
    successes while [Half_open] close the breaker and clear the fault
    window. *)
