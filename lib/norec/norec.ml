(* NOrec: no ownership records, one global sequence lock, value-based
   validation (Dalessandro, Spear, Scott; PPoPP 2010).  Shares the repo's
   STM skeleton with TL2 (redo-log writes, Bloom read-after-write reject,
   quiescence-fence escalation) but replaces the whole lock array with a
   single seqlock word: even = timestamp, odd = a writer mid-commit. *)

module Make (R : Tstm_runtime.Runtime_intf.S) = struct
  module V = Tstm_vmm.Vmm.Make (R)
  module G = Tstm_util.Growbuf
  module Bloom = Tstm_util.Bloom
  module Stats = Tstm_tm.Tm_stats

  let name = "norec"

  exception Abort_exn of Stats.abort_reason

  (* Observability (same discipline as the other STMs: guarded, never
     charges). *)
  module Obs = Tstm_obs

  let obs_on () = Obs.Sink.enabled ()
  let emit ev = Obs.Sink.emit ~ts:(R.now_cycles ()) ~cpu:(R.tid ()) ev

  (* Chaos schedule perturbation (one-boolean-load discipline). *)
  module Chaos = Tstm_chaos.Chaos

  let chaos_on () = Chaos.enabled ()

  let chaos_point p =
    let n = Chaos.preempt p in
    if n > 0 then R.charge n

  (* Sanitizer sync-edge annotations.  The seqlock edges go through the
     generic {!Tstm_runtime.Tap} producers (which self-gate on the armed
     tap); the per-transaction annotations call {!Tstm_san.San} directly
     like the other STMs. *)
  module San = Tstm_san.San
  module Tap = Tstm_runtime.Tap

  let san_on () = San.enabled ()

  (* Injected faults (crash/hang/OOM) at linearization points — same
     one-boolean-load guard as obs/chaos; see [Tstm_fault.Fault]. *)
  module Fault = Tstm_fault.Fault
  module Intf = Tstm_tm.Tm_intf

  let fault_on () = Fault.enabled ()

  (* Consecutive allocation-failed aborts tolerated before escalating to the
     typed [Tm_intf.Capacity] verdict. *)
  let max_alloc_retries = 16

  (* Contention management.  A held sequence lock always belongs to a
     finite committing writer, so the kill-capable policies degenerate to
     "the decision-table winner waits out the commit, the loser aborts";
     [Suicide] aborts on any observed held lock.  Because there is only
     one lock, the symmetric hold-and-wait cycle that livelocks the
     lock-array STMs cannot form: some writer's CAS always lands. *)
  module Cm = Tstm_cm.Cm
  module Watchdog = Tstm_runtime.Watchdog

  let seq_locked s = s land 1 = 1

  let c_tx_begin = 20
  let c_tx_end = 20
  let c_op = 4

  (* NOrec's distinctive costs: every validation re-reads the whole read
     set by value (no per-stripe version shortcut), and every snapshot
     check samples the sequence word. *)
  let c_val = 2
  let c_seq = 1

  type desc = {
    owner_t : t;
    tid : int;
    stats : Stats.t;
    rng : Tstm_util.Xrand.t;
    mutable in_tx : bool;
    mutable read_only : bool;
    mutable irrevocable : bool;
    mutable rv : int;  (* snapshot: an even sequence value *)
    (* Read set: (address, observed value) pairs, flattened.  Kept for
       read-only transactions too — value-based validation is what lets
       any transaction fast-forward instead of aborting. *)
    r_addr : G.t;
    r_val : G.t;
    (* Redo-log write set with a Bloom read-after-write fast reject. *)
    w_addr : G.t;
    w_val : G.t;
    bloom : Bloom.t;
    (* Memory-management logs. *)
    a_addr : G.t;
    a_size : G.t;
    f_addr : G.t;
    f_size : G.t;
    (* Observability bookkeeping (only maintained while tracing is on). *)
    mutable obs_start : int;
    mutable obs_reads0 : int;
    mutable obs_writes0 : int;
    (* Contention-management bookkeeping. *)
    mutable eff_cm : Cm.policy;
    mutable work0 : int;
    mutable ticket : int;
    mutable alloc_fails : int;
      (* consecutive allocation-failed aborts of the current transaction *)
  }

  and t = {
    mem : V.t;
    ctl : R.sarray;  (* fence mode / sequence lock / committer, padded *)
    flags : R.sarray;  (* per-thread in-transaction flags, padded apart *)
    descs : desc option array;
    max_threads : int;
    max_retries : int;
    cm : Cm.policy;
    watchdog : Watchdog.t option;
    cm_active : bool;
    prios : R.sarray;
  }

  type tx = desc

  let mode_slot = 0
  let seq_slot = 8
  let committer_slot = 16
  let ctl_len = 24
  let flag_slot tid = (tid + 1) * 8

  let create ?(max_threads = 64) ?(max_retries = 0) ?(cm = Cm.default)
      ?watchdog ~memory_words () =
    if max_threads < 1 then invalid_arg "Norec.create: max_threads < 1";
    if max_retries < 0 then invalid_arg "Norec.create: max_retries < 0";
    let cm_active = Cm.can_kill cm || watchdog <> None in
    let t =
      {
        mem = V.create ~words:memory_words;
        ctl = R.sarray_make ctl_len 0;
        flags = R.sarray_make (flag_slot max_threads + 8) 0;
        descs = Array.make max_threads None;
        max_threads;
        max_retries = Cm.effective_max_retries cm max_retries;
        cm;
        watchdog;
        cm_active;
        prios =
          R.sarray_make (if cm_active then flag_slot max_threads + 8 else 1) 0;
      }
    in
    R.sarray_label t.ctl "ctl";
    R.sarray_label t.flags "flags";
    R.sarray_label t.prios "cm-prio";
    R.sarray_label (V.words t.mem) "mem";
    t

  let memory t = t.mem
  let clock_value t = R.get t.ctl seq_slot

  let new_desc t tid =
    {
      owner_t = t;
      tid;
      stats = Stats.create ();
      rng = Tstm_util.Xrand.create (0x9c3 + tid);
      in_tx = false;
      read_only = false;
      irrevocable = false;
      rv = 0;
      r_addr = G.create 64;
      r_val = G.create 64;
      w_addr = G.create 32;
      w_val = G.create 32;
      bloom = Bloom.create ();
      a_addr = G.create 8;
      a_size = G.create 8;
      f_addr = G.create 8;
      f_size = G.create 8;
      obs_start = 0;
      obs_reads0 = 0;
      obs_writes0 = 0;
      eff_cm = t.cm;
      work0 = 0;
      ticket = 0;
      alloc_fails = 0;
    }

  let desc_for t =
    let tid = R.tid () in
    if tid >= t.max_threads then
      invalid_arg "Norec: thread id exceeds max_threads";
    match t.descs.(tid) with
    | Some d -> d
    | None ->
        let d = new_desc t tid in
        t.descs.(tid) <- Some d;
        d

  let cleanup d =
    G.clear d.r_addr;
    G.clear d.r_val;
    G.clear d.w_addr;
    G.clear d.w_val;
    Bloom.clear d.bloom;
    G.clear d.a_addr;
    G.clear d.a_size;
    G.clear d.f_addr;
    G.clear d.f_size;
    d.in_tx <- false

  let abort reason = raise (Abort_exn reason)

  (* Injected-fault consultation at a linearization point (same contract as
     the other STMs: crash unwinds through the user-exception path with a
     full rollback; hang stalls wall-clock without heartbeat ticks). *)
  let fault_point d p =
    match Fault.at_point ~tid:d.tid p with
    | Fault.Proceed -> ()
    | Fault.Crash ->
        d.stats.Stats.faults_crash <- d.stats.Stats.faults_crash + 1;
        if obs_on () then
          emit
            (Obs.Event.Tx_fault { kind = "crash"; point = Fault.point_name p });
        raise (Fault.Injected_crash { tid = d.tid; point = Fault.point_name p })
    | Fault.Hang ns ->
        d.stats.Stats.faults_hang <- d.stats.Stats.faults_hang + 1;
        if obs_on () then
          emit
            (Obs.Event.Tx_fault { kind = "hang"; point = Fault.point_name p });
        Fault.hang ~ns

  (* The contention decision on an observed held sequence lock.  Returning
     means "wait for the (finite) commit to finish"; the policies that
     prefer the aborter abort self instead. *)
  let conflict_on_holder t d ~reason =
    match d.eff_cm with
    | Cm.Backoff | Cm.Serialize _ -> ()
    | Cm.Suicide -> abort reason
    | Cm.Karma | Cm.Greedy ->
        let enemy = R.get t.ctl committer_slot in
        if enemy <> d.tid then begin
          let self_prio = R.get t.prios (flag_slot d.tid) in
          let enemy_prio = R.get t.prios (flag_slot enemy) in
          match
            Cm.on_enemy d.eff_cm ~self_prio ~enemy_prio ~self_tid:d.tid
              ~enemy_tid:enemy
          with
          | Cm.Kill_enemy -> ()  (* winner waits out the finite commit *)
          | Cm.Abort_now | Cm.Wait_retry -> abort reason
        end

  (* Sample the sequence word until it is even; consult the contention
     manager at every held observation. *)
  let rec seq_even t d ~reason =
    R.charge_local c_seq;
    let s = R.get t.ctl seq_slot in
    if not (seq_locked s) then s
    else begin
      conflict_on_holder t d ~reason;
      R.yield ();
      seq_even t d ~reason
    end

  (* Value-validate the whole read set and return the even sequence value
     it was proven consistent at; aborts on any changed value.  The
     post-scan sequence re-check restarts the scan when a writer landed
     mid-validation, so a returned time is a true consistency point. *)
  let rec validate t d ~reason =
    d.stats.Stats.validations <- d.stats.Stats.validations + 1;
    let time = seq_even t d ~reason in
    let words = V.words t.mem in
    let n = G.length d.r_addr in
    let ok = ref true in
    let k = ref 0 in
    while !ok && !k < n do
      R.charge_local c_val;
      d.stats.Stats.val_locks_processed <-
        d.stats.Stats.val_locks_processed + 1;
      if R.get words (G.get d.r_addr !k) <> G.get d.r_val !k then ok := false;
      k := !k + 1
    done;
    if not !ok then abort Stats.Validation_failed
    else begin
      R.charge_local c_seq;
      if R.get t.ctl seq_slot <> time then validate t d ~reason else time
    end

  (* Fast-forward: move the snapshot to the current sequence value after a
     passed value validation — NOrec's analogue of LSA snapshot extension.
     The armed [Skip_extension] bug blindly fast-forwards without
     validating (and must not emit the sanitizer's re-certification edge,
     which is reserved for validations that actually ran and passed). *)
  let extend t d ~reason =
    if Chaos.bug_active Chaos.Skip_extension then
      d.rv <- seq_even t d ~reason
    else begin
      let time = validate t d ~reason in
      d.rv <- time;
      d.stats.Stats.extensions <- d.stats.Stats.extensions + 1;
      Tap.seqlock_validate ~value:time
    end

  (* ------------------------------------------------------------------ *)
  (* Quiescence fence (for irrevocable escalation)                       *)
  (* ------------------------------------------------------------------ *)

  (* Same Dekker-style protocol as TinySTM's roll-over fence and TL2's
     escalation fence. *)

  let rec enter_fence t d =
    if R.get t.ctl mode_slot <> 0 then begin
      R.yield ();
      enter_fence t d
    end
    else begin
      R.set t.flags (flag_slot d.tid) 1;
      if R.get t.ctl mode_slot <> 0 then begin
        R.set t.flags (flag_slot d.tid) 0;
        R.yield ();
        enter_fence t d
      end
      else if san_on () then San.fence_pass ~cpu:d.tid
    end

  let leave_fence t d =
    R.set t.flags (flag_slot d.tid) 0;
    if san_on () then San.thread_park ~cpu:d.tid

  let fence_and t f =
    let rec acquire () =
      if not (R.cas t.ctl mode_slot 0 1) then begin
        R.yield ();
        acquire ()
      end
    in
    acquire ();
    for tid = 0 to t.max_threads - 1 do
      while R.get t.flags (flag_slot tid) <> 0 do
        R.yield ()
      done
    done;
    if san_on () then San.fence_owner_entry ~cpu:(R.tid ());
    match f () with
    | v ->
        if san_on () then San.fence_owner_exit ~cpu:(R.tid ());
        R.set t.ctl mode_slot 0;
        v
    | exception e ->
        if san_on () then San.fence_owner_exit ~cpu:(R.tid ());
        R.set t.ctl mode_slot 0;
        raise e

  (* ------------------------------------------------------------------ *)
  (* Read and write barriers                                             *)
  (* ------------------------------------------------------------------ *)

  let c_bloom = 3
  let c_scan = 1

  (* Search the write set backwards so the most recent write wins. *)
  let write_set_find d addr =
    R.charge_local c_bloom;
    if Bloom.may_contain d.bloom addr then begin
      let rec go k =
        if k < 0 then None
        else begin
          R.charge_local c_scan;
          if G.get d.w_addr k = addr then Some k else go (k - 1)
        end
      in
      go (G.length d.w_addr - 1)
    end
    else None

  let read_word t d addr =
    R.charge_local c_op;
    if d.irrevocable then begin
      d.stats.Stats.reads <- d.stats.Stats.reads + 1;
      R.get (V.words t.mem) addr
    end
    else
      match if d.read_only then None else write_set_find d addr with
      | Some k ->
          d.stats.Stats.reads <- d.stats.Stats.reads + 1;
          G.get d.w_val k
      | None ->
          let words = V.words t.mem in
          let v = ref (R.get words addr) in
          (* The NOrec post-validation loop: the value is accepted only
             when the sequence word still equals the snapshot after the
             load; any movement (a writer committing or committed)
             triggers validation and fast-forward, then a re-read. *)
          R.charge_local c_seq;
          while R.get t.ctl seq_slot <> d.rv do
            extend t d ~reason:Stats.Read_conflict;
            v := R.get words addr;
            R.charge_local c_seq
          done;
          G.push d.r_addr addr;
          G.push d.r_val !v;
          if san_on () then San.read_accept ~cpu:d.tid ~addr;
          d.stats.Stats.reads <- d.stats.Stats.reads + 1;
          !v

  let write_word t d addr v =
    R.charge_local c_op;
    if d.read_only then invalid_arg "Norec.write: transaction is read-only";
    if d.irrevocable then begin
      d.stats.Stats.writes <- d.stats.Stats.writes + 1;
      R.set (V.words t.mem) addr v
    end
    else begin
      (match write_set_find d addr with
      | Some k -> G.set d.w_val k v
      | None ->
          G.push d.w_addr addr;
          G.push d.w_val v;
          Bloom.add d.bloom addr);
      d.stats.Stats.writes <- d.stats.Stats.writes + 1
    end

  (* ------------------------------------------------------------------ *)
  (* Memory management                                                   *)
  (* ------------------------------------------------------------------ *)

  let alloc_words t d n =
    match V.alloc t.mem n with
    | addr ->
        G.push d.a_addr addr;
        G.push d.a_size n;
        addr
    | exception Out_of_memory ->
        (* Arena exhaustion (genuine or injected) mid-transaction: the
           failed call mutated nothing, so rollback frees earlier
           speculative allocations and [live_words] cannot drift.
           Irrevocable transactions cannot roll back, so escalate straight
           to the typed [Capacity] verdict. *)
        if obs_on () then
          emit (Obs.Event.Tx_fault { kind = "oom"; point = "alloc" });
        if d.irrevocable then
          raise (Intf.Capacity { stm = "norec"; retries = d.alloc_fails })
        else abort Stats.Alloc_failed

  (* A free is an update: read-write the block so the commit is a writer
     (value validation then covers the block against concurrent access).
     Inside the fence there is no concurrency and the free is just
     deferred to the end of the escalated run. *)
  let free_words t d addr n =
    if not d.irrevocable then
      for w = addr to addr + n - 1 do
        let v = read_word t d w in
        write_word t d w v
      done;
    G.push d.f_addr addr;
    G.push d.f_size n

  (* ------------------------------------------------------------------ *)
  (* Commit                                                              *)
  (* ------------------------------------------------------------------ *)

  (* Acquire the sequence lock at the current snapshot.  A CAS can only
     succeed from [d.rv] itself, so a transaction whose snapshot lags the
     sequence word must revalidate (fast-forward) first; the armed
     [Skip_validation] bug blindly fast-forwards instead — the classic
     torn-commit mistake value validation exists to prevent. *)
  let rec acquire_seq t d =
    R.charge_local c_seq;
    let s = R.get t.ctl seq_slot in
    if seq_locked s then begin
      conflict_on_holder t d ~reason:Stats.Write_conflict;
      R.yield ();
      acquire_seq t d
    end
    else begin
      (if s <> d.rv then
         if Chaos.bug_active Chaos.Skip_validation then d.rv <- s
         else begin
           let time = validate t d ~reason:Stats.Write_conflict in
           d.rv <- time;
           Tap.seqlock_validate ~value:time
         end);
      if chaos_on () then chaos_point Chaos.Lock_cas;
      if not (R.cas t.ctl seq_slot d.rv (d.rv + 1)) then acquire_seq t d
      else begin
        Tap.seqlock_acquire ~drawn:(d.rv + 2);
        if t.cm_active then R.set t.ctl committer_slot d.tid;
        if chaos_on () then chaos_point Chaos.Lock_cas;
        if obs_on () then emit (Obs.Event.Lock_acquire { lock = 0 })
      end
    end

  let commit t d =
    R.charge_local c_tx_end;
    if G.length d.w_addr = 0 && G.length d.f_addr = 0 then begin
      (* Lock-free commit: no CAS, no store, nothing to publish. *)
      d.stats.Stats.commits <- d.stats.Stats.commits + 1;
      if d.read_only then
        d.stats.Stats.commits_read_only <- d.stats.Stats.commits_read_only + 1
    end
    else begin
      acquire_seq t d;
      if chaos_on () then chaos_point Chaos.Commit;
      let wv = d.rv + 2 in
      let words = V.words t.mem in
      for k = 0 to G.length d.w_addr - 1 do
        R.set words (G.get d.w_addr k) (G.get d.w_val k)
      done;
      (* The snapshot-consistency check must see the write set still under
         the sequence lock, before the new even value is published. *)
      if san_on () then San.commit_publish ~cpu:d.tid ~wv;
      if chaos_on () then chaos_point Chaos.Clock_inc;
      R.set t.ctl seq_slot wv;
      Tap.seqlock_release ();
      if obs_on () then emit (Obs.Event.Lock_release { lock = 0 });
      for k = 0 to G.length d.f_addr - 1 do
        V.free t.mem (G.get d.f_addr k) (G.get d.f_size k)
      done;
      d.stats.Stats.commits <- d.stats.Stats.commits + 1
    end;
    cleanup d;
    if san_on () then San.tx_exit ~cpu:d.tid ~committed:true

  let rollback ?record t d =
    (* Redo-log writes: memory was never touched, and every abort happens
       lock-free (the sequence lock is only ever held across the
       straight-line write-back), so there is nothing to release. *)
    if san_on () then San.tx_abort ~cpu:d.tid;
    for k = 0 to G.length d.a_addr - 1 do
      V.free t.mem (G.get d.a_addr k) (G.get d.a_size k)
    done;
    (match record with
    | Some reason -> Stats.record_abort d.stats reason
    | None -> ());
    cleanup d;
    if san_on () then San.tx_exit ~cpu:d.tid ~committed:false

  (* ------------------------------------------------------------------ *)
  (* Transaction driver                                                  *)
  (* ------------------------------------------------------------------ *)

  let backoff d attempts =
    let n = Cm.backoff_cycles ~rng:d.rng ~attempts in
    d.stats.Stats.backoff_cycles <- d.stats.Stats.backoff_cycles + n;
    R.charge n;
    if not R.is_simulated then
      for _ = 1 to n / 8 do
        R.yield ()
      done

  let feed_watchdog d evs =
    List.iter
      (fun ev ->
        (match ev with
        | Watchdog.Switch _ ->
            d.stats.Stats.cm_switches <- d.stats.Stats.cm_switches + 1
        | Watchdog.Livelock _ | Watchdog.Starved _ -> ());
        if obs_on () then
          emit
            (match ev with
            | Watchdog.Livelock { window } -> Obs.Event.Tx_livelock { window }
            | Watchdog.Starved { retries; _ } ->
                Obs.Event.Tx_starved { retries }
            | Watchdog.Switch { level } ->
                Obs.Event.Cm_switch { level = Watchdog.level_to_string level }))
      evs

  let note_commit_wd t d =
    match t.watchdog with
    | None -> ()
    | Some w ->
        feed_watchdog d (Watchdog.note_commit w ~now:(R.now_cycles ()) ~tid:d.tid)

  let note_abort_wd t d ~retries =
    match t.watchdog with
    | None -> ()
    | Some w ->
        feed_watchdog d
          (Watchdog.note_abort w ~now:(R.now_cycles ()) ~tid:d.tid ~retries)

  let cm_begin_attempt t d =
    d.eff_cm <-
      (match t.watchdog with
      | None -> t.cm
      | Some w -> (
          match Watchdog.level w with
          | Watchdog.Boosted -> if Cm.can_kill t.cm then t.cm else Cm.Karma
          | Watchdog.Normal | Watchdog.Serialized -> t.cm));
    if t.cm_active && Cm.needs_prio d.eff_cm then begin
      let p =
        match d.eff_cm with
        | Cm.Greedy ->
            if d.ticket = 0 then d.ticket <- R.fetch_add t.prios 0 1 + 1;
            d.ticket
        | _ -> d.stats.Stats.reads + d.stats.Stats.writes - d.work0 + 1
      in
      R.set t.prios (flag_slot d.tid) p
    end

  let cm_end_commit t d =
    d.work0 <- d.stats.Stats.reads + d.stats.Stats.writes;
    d.ticket <- 0;
    if t.cm_active && Cm.needs_prio d.eff_cm then
      R.set t.prios (flag_slot d.tid) 0

  (* The begin-time snapshot: wait for an even sequence value.  No
     contention decision here — nothing is invested yet, so aborting self
     would only re-enter the same wait. *)
  let rec sample_snapshot t =
    R.charge_local c_seq;
    let s = R.get t.ctl seq_slot in
    if seq_locked s then begin
      R.yield ();
      sample_snapshot t
    end
    else s

  let atomically ?(read_only = false) t f =
    let d = desc_for t in
    if d.in_tx then invalid_arg "Norec.atomically: nested transaction";
    d.alloc_fails <- 0;
    let rec attempt tries =
      let forced_serial =
        match t.watchdog with
        | None -> false
        | Some w -> Watchdog.level w = Watchdog.Serialized
      in
      if forced_serial || (t.max_retries > 0 && tries >= t.max_retries) then
        escalate tries
      else begin
        enter_fence t d;
        R.charge_local c_tx_begin;
        d.in_tx <- true;
        d.read_only <- read_only;
        cm_begin_attempt t d;
        if chaos_on () then chaos_point Chaos.Clock_read;
        d.rv <- sample_snapshot t;
        if san_on () then begin
          San.tx_begin ~cpu:d.tid;
          San.clock_read ~cpu:d.tid ~value:d.rv
        end;
        if obs_on () then begin
          d.obs_start <- R.now_cycles ();
          d.obs_reads0 <- d.stats.Stats.reads;
          d.obs_writes0 <- d.stats.Stats.writes;
          emit Obs.Event.Tx_begin
        end;
        match
          (* Fault taps live inside this match so an injected crash unwinds
             through the user-exception branch below: rollback, fence
             release, [in_tx] cleared — the respawned worker can transact
             again. *)
          if fault_on () then fault_point d Fault.Clock_read;
          let v = f d in
          if fault_on () then fault_point d Fault.Commit;
          commit t d;
          v
        with
        | v ->
            if obs_on () then begin
              let lat = R.now_cycles () - d.obs_start in
              let reads = d.stats.Stats.reads - d.obs_reads0 in
              let writes = d.stats.Stats.writes - d.obs_writes0 in
              emit
                (Obs.Event.Tx_commit
                   { read_only; reads; writes; retries = tries });
              Obs.Sink.note_commit ~lat ~retries:tries ~reads ~writes
            end;
            Stats.record_retries d.stats tries;
            cm_end_commit t d;
            note_commit_wd t d;
            leave_fence t d;
            v
        | exception Abort_exn reason ->
            if obs_on () then begin
              let lat = R.now_cycles () - d.obs_start in
              emit
                (Obs.Event.Tx_abort
                   {
                     reason = Stats.abort_reason_to_string reason;
                     retries = tries;
                   });
              Obs.Sink.note_abort ~lat
            end;
            rollback ~record:reason t d;
            leave_fence t d;
            if chaos_on () then chaos_point Chaos.Abort;
            if fault_on () then fault_point d Fault.Abort;
            (* Allocation-failed aborts are capped: after
               [max_alloc_retries] consecutive failures the arena is
               genuinely full and retrying cannot help — escalate to the
               typed [Capacity] verdict (shared state is already rolled
               back here). *)
            if reason = Stats.Alloc_failed then begin
              d.alloc_fails <- d.alloc_fails + 1;
              if d.alloc_fails >= max_alloc_retries then
                raise
                  (Intf.Capacity { stm = "norec"; retries = d.alloc_fails })
            end
            else d.alloc_fails <- 0;
            note_abort_wd t d ~retries:(tries + 1);
            if Cm.delay_after_abort d.eff_cm then backoff d tries;
            attempt (tries + 1)
        | exception e ->
            rollback t d;
            leave_fence t d;
            raise e
      end
    (* Retry budget exhausted: re-run serially and irrevocably inside the
       quiescence fence. *)
    and escalate tries =
      d.stats.Stats.escalations <- d.stats.Stats.escalations + 1;
      if obs_on () then emit (Obs.Event.Tx_escalate { retries = tries });
      (* The serial-irrevocable path cannot be rolled back: mask injected
         faults for its duration ([Fun.protect] guarantees the unmask). *)
      Fault.mask ~tid:d.tid;
      Fun.protect ~finally:(fun () -> Fault.unmask ~tid:d.tid) @@ fun () ->
      fence_and t (fun () ->
          R.charge_local c_tx_begin;
          d.in_tx <- true;
          d.read_only <- read_only;
          d.irrevocable <- true;
          if san_on () then San.tx_begin ~cpu:d.tid;
          if obs_on () then begin
            d.obs_start <- R.now_cycles ();
            d.obs_reads0 <- d.stats.Stats.reads;
            d.obs_writes0 <- d.stats.Stats.writes;
            emit Obs.Event.Tx_begin
          end;
          match f d with
          | v ->
              R.charge_local c_tx_end;
              (* Keep the sequence moving so the serial commit has a
                 unique serialization point: the fence guarantees
                 quiescence, so the CAS cannot fail. *)
              let s = R.get t.ctl seq_slot in
              let wv = s + 2 in
              ignore (R.cas t.ctl seq_slot s (s + 1));
              Tap.seqlock_acquire ~drawn:wv;
              if san_on () then San.commit_publish ~cpu:d.tid ~wv;
              R.set t.ctl seq_slot wv;
              Tap.seqlock_release ();
              for k = 0 to G.length d.f_addr - 1 do
                V.free t.mem (G.get d.f_addr k) (G.get d.f_size k)
              done;
              d.stats.Stats.commits <- d.stats.Stats.commits + 1;
              if read_only then
                d.stats.Stats.commits_read_only <-
                  d.stats.Stats.commits_read_only + 1;
              if obs_on () then begin
                let lat = R.now_cycles () - d.obs_start in
                let reads = d.stats.Stats.reads - d.obs_reads0 in
                let writes = d.stats.Stats.writes - d.obs_writes0 in
                emit
                  (Obs.Event.Tx_commit
                     { read_only; reads; writes; retries = tries });
                Obs.Sink.note_commit ~lat ~retries:tries ~reads ~writes
              end;
              Stats.record_retries d.stats tries;
              cm_end_commit t d;
              note_commit_wd t d;
              d.irrevocable <- false;
              cleanup d;
              if san_on () then San.tx_exit ~cpu:d.tid ~committed:true;
              v
          | exception e ->
              (* Irrevocable: direct writes stay; release the fence and
                 propagate. *)
              d.irrevocable <- false;
              if san_on () then begin
                San.tx_abort ~cpu:d.tid;
                San.tx_exit ~cpu:d.tid ~committed:false
              end;
              cleanup d;
              raise e)
    in
    attempt 0

  let read tx addr = read_word tx.owner_t tx addr
  let write tx addr v = write_word tx.owner_t tx addr v
  let alloc tx n = alloc_words tx.owner_t tx n
  let free tx addr n = free_words tx.owner_t tx addr n

  let stats t =
    let agg = Stats.create () in
    Array.iter
      (function Some d -> Stats.add_into ~dst:agg d.stats | None -> ())
      t.descs;
    agg

  let reset_stats t =
    Array.iter (function Some d -> Stats.reset d.stats | None -> ()) t.descs
end
