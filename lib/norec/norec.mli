(** NOrec (Dalessandro, Spear, Scott; PPoPP 2010) — the orec-free third
    family next to TinySTM and TL2.  From-scratch reimplementation:

    - no ownership records at all: the only shared metadata is one global
      sequence lock (even = timestamp, odd = a writer is committing), so
      the [n_locks]/[shifts] knobs of the paper's tuning space simply do
      not exist here (capability [lock_array = false]);
    - value-based validation: reads log [(address, value)] pairs; whenever
      the sequence number moves away from the transaction's snapshot, the
      whole read set is re-checked {e by value} against memory.  If every
      value still matches, the snapshot fast-forwards to the new sequence
      number instead of aborting (the NOrec analogue of LSA's snapshot
      extension, capability [snapshot_extension = true]);
    - redo-log writes with a Bloom-filter read-after-write fast reject
      (same write-set shape as TL2);
    - commit: transactions with an empty write set commit lock-free;
      writers CAS the sequence lock from their snapshot value to odd,
      write back, and publish [snapshot + 2].  A failed CAS means someone
      committed in between: revalidate (fast-forward) and retry.

    Contention management degenerates gracefully: a held sequence lock
    always belongs to a finite committing writer, so kill-capable policies
    reduce to winner-waits / loser-aborts, and [Suicide] aborts on any
    observed held lock.  Because there is only one lock, symmetric
    hold-and-wait livelock is structurally impossible: NOrec storms make
    progress under every policy.

    Exposes the same {!Tstm_tm.Tm_intf.TM} operations as the other STMs so
    the transactional data structures and the harness run unmodified. *)

module Make (R : Tstm_runtime.Runtime_intf.S) : sig
  module V : module type of Tstm_vmm.Vmm.Make (R)

  type t
  type tx

  val create :
    ?max_threads:int ->
    ?max_retries:int ->
    ?cm:Tstm_cm.Cm.policy ->
    ?watchdog:Tstm_runtime.Watchdog.t ->
    memory_words:int ->
    unit ->
    t
  (** [max_retries] (default 0 = never) is the retry budget after which a
      transaction escalates to serial-irrevocable execution inside the
      quiescence fence, exactly as in {!Tinystm.Make.create}.  [cm] and
      [watchdog] mirror the other STMs'. *)

  val memory : t -> V.t

  val clock_value : t -> int
  (** Current sequence value (even while no writer is committing). *)

  val name : string

  val read : tx -> int -> int
  val write : tx -> int -> int -> unit
  val alloc : tx -> int -> int
  val free : tx -> int -> int -> unit
  val atomically : ?read_only:bool -> t -> (tx -> 'a) -> 'a
  val stats : t -> Tstm_tm.Tm_stats.t
  val reset_stats : t -> unit
end
