type t = { mutable bits : int }

let word_bits = 62

let create () = { bits = 0 }
let clear t = t.bits <- 0

let hash1 addr = Bitops.mix addr mod word_bits

let hash2 addr =
  Bitops.mix (addr lxor 0x5bd1e995) mod word_bits

let mask addr = (1 lsl hash1 addr) lor (1 lsl hash2 addr)

let add t addr = t.bits <- t.bits lor mask addr

let may_contain t addr =
  let m = mask addr in
  t.bits land m = m

let saturated t = t.bits = (1 lsl word_bits) - 1
