(** Single-word Bloom filter over addresses, as used by the redo-log STMs
    (TL2, NOrec) to avoid traversing the write set on every read (paper
    §3.1: "TL2 uses Bloom filters to avoid unnecessary write set
    traversals").

    Two derived hash bits per element in a 62-bit word: false positives are
    possible (they cost a wasted write-set search), false negatives are not
    (that would break read-after-write). *)

type t

val create : unit -> t
val clear : t -> unit
val add : t -> int -> unit

val may_contain : t -> int -> bool
(** Never returns [false] for an added address. *)

val saturated : t -> bool
(** All bits set: every query answers [true] (diagnostic). *)
