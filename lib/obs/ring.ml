type stamped = { ts : int; cpu : int; ev : Event.t }

type t = {
  cap : int;
  mutable data : stamped array;
  mutable head : int;  (* index of the oldest entry *)
  mutable len : int;
  mutable dropped : int;
}

let dummy = { ts = 0; cpu = 0; ev = Event.Tx_begin }

let create ?(capacity = 1 lsl 16) () =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  { cap = capacity; data = Array.make (min 64 capacity) dummy; head = 0; len = 0; dropped = 0 }

(* Growth only ever happens before the first wrap, so [head = 0] and a plain
   blit preserves order. *)
let grow t =
  let n = min t.cap (2 * Array.length t.data) in
  let data = Array.make n dummy in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data && t.len < t.cap then grow t;
  let n = Array.length t.data in
  if t.len < n then begin
    t.data.((t.head + t.len) mod n) <- x;
    t.len <- t.len + 1
  end
  else begin
    t.data.(t.head) <- x;
    t.head <- (t.head + 1) mod n;
    t.dropped <- t.dropped + 1
  end

let length t = t.len
let capacity t = t.cap
let dropped t = t.dropped

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let iter t f =
  let n = Array.length t.data in
  for k = 0 to t.len - 1 do
    f t.data.((t.head + k) mod n)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc
