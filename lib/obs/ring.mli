(** Fixed-capacity ring buffer of stamped trace events.

    One ring per simulated CPU keeps event recording allocation-cheap and
    naturally bounded: the store grows geometrically (the [Util.Growbuf]
    idiom) until it reaches [capacity], after which new events overwrite the
    oldest and the {!dropped} counter advances.  Iteration is always oldest
    to newest. *)

type stamped = { ts : int;  (** virtual-time cycles *) cpu : int; ev : Event.t }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] defaults to [65536] events; it must be positive. *)

val push : t -> stamped -> unit

val length : t -> int
(** Number of events currently held, [<= capacity]. *)

val capacity : t -> int

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val clear : t -> unit
(** Forget all events (and the dropped count). *)

val iter : t -> (stamped -> unit) -> unit
(** Oldest to newest. *)

val to_list : t -> stamped list
(** Oldest first. *)
