(** Per-cache-line contention attribution.

    The simulated cache model reports every coherence line transfer (a line
    pulled out of another CPU's cache, or other copies invalidated before a
    write) together with whether the access hit the {e same word} the
    previous owner last wrote.  Aggregated per labelled shared array and
    line, this separates true conflicts (same word — e.g. two transactions
    hammering one lock stripe) from false sharing (different words on one
    line — the paper's §3.2 [#shifts] story on the lock array). *)

type entry = {
  label : string;  (** shared-array label, e.g. ["locks"] *)
  line : int;  (** line index within that array *)
  mutable transfers : int;  (** total coherence transfers *)
  mutable true_conflicts : int;  (** transfers on the previously-written word *)
  mutable false_sharing : int;  (** transfers on a different word of the line *)
}

type t

val create : unit -> t
val clear : t -> unit

val record : t -> label:string -> line:int -> same_word:bool -> unit

val total_transfers : t -> int

val entries : t -> entry list
(** Sorted by transfer count (descending), then label, then line — a
    deterministic order independent of hash-table iteration. *)

val top : t -> int -> entry list

val pp_top : n:int -> Format.formatter -> t -> unit
(** Pretty top-[n] report with a false-sharing/true-conflict breakdown. *)
