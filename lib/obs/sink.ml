type collector = {
  rings : Ring.t array;
  contend : Contend.t;
  commit_latency : Histo.t;
  abort_latency : Histo.t;
  retries : Histo.t;
  read_set : Histo.t;
  write_set : Histo.t;
}

type t = Null | Collect of collector

(* Mirrors the simulated runtime's CPU bound. *)
let max_cpus = 64

let collector ?ring_capacity () =
  {
    rings = Array.init max_cpus (fun _ -> Ring.create ?capacity:ring_capacity ());
    contend = Contend.create ();
    commit_latency = Histo.create ();
    abort_latency = Histo.create ();
    retries = Histo.create ();
    read_set = Histo.create ();
    write_set = Histo.create ();
  }

let sink = ref Null

(* [active] duplicates the Null/Collect distinction as one mutable bool so
   the hot-path guard is a single load and compare. *)
let active = ref false

let install s =
  sink := s;
  active := (match s with Null -> false | Collect _ -> true)

let current () = !sink
let enabled () = !active

let with_sink s f =
  let prev = !sink in
  install s;
  Fun.protect ~finally:(fun () -> install prev) f

let emit ~ts ~cpu ev =
  match !sink with
  | Null -> ()
  | Collect c ->
      if cpu >= 0 && cpu < Array.length c.rings then
        Ring.push c.rings.(cpu) { Ring.ts; cpu; ev }

let note_commit ~lat ~retries ~reads ~writes =
  match !sink with
  | Null -> ()
  | Collect c ->
      Histo.record c.commit_latency lat;
      Histo.record c.retries retries;
      Histo.record c.read_set reads;
      Histo.record c.write_set writes

let note_abort ~lat =
  match !sink with
  | Null -> ()
  | Collect c -> Histo.record c.abort_latency lat

let note_transfer ~ts ~cpu ~label ~line ~word ~same_word =
  match !sink with
  | Null -> ()
  | Collect c ->
      Contend.record c.contend ~label ~line ~same_word;
      if cpu >= 0 && cpu < Array.length c.rings then
        Ring.push c.rings.(cpu)
          { Ring.ts; cpu; ev = Event.Cache_transfer { label; line; word; same_word } }

let clock = ref (fun () -> 0)
let set_clock f = clock := f
let now () = !clock ()
let emit_now ~cpu ev = emit ~ts:(now ()) ~cpu ev
