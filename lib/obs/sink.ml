type collector = {
  rings : Ring.t array;
  contend : Contend.t;
  commit_latency : Histo.t;
  abort_latency : Histo.t;
  retries : Histo.t;
  read_set : Histo.t;
  write_set : Histo.t;
}

type t = Null | Collect of collector | Sharded of collector array

(* Mirrors the simulated runtime's CPU bound. *)
let max_cpus = 64

let collector ?ring_capacity () =
  {
    rings = Array.init max_cpus (fun _ -> Ring.create ?capacity:ring_capacity ());
    contend = Contend.create ();
    commit_latency = Histo.create ();
    abort_latency = Histo.create ();
    retries = Histo.create ();
    read_set = Histo.create ();
    write_set = Histo.create ();
  }

(* One collector per domain: each domain writes only its own shard, so
   recording stays plain mutable arithmetic — no atomics, no locks, no
   allocation — and remains race-free under true parallelism.  Shards are
   merged after the domains have joined. *)
let sharded ?ring_capacity () =
  Sharded (Array.init max_cpus (fun _ -> collector ?ring_capacity ()))

let merged shards =
  let dst = collector () in
  Array.iteri
    (fun i c ->
      (* Domain [i] only ever touches its own shard (and stamps its own
         cpu id), so taking ring [i] of shard [i] loses nothing. *)
      dst.rings.(i) <- c.rings.(i);
      Histo.merge ~dst:dst.commit_latency c.commit_latency;
      Histo.merge ~dst:dst.abort_latency c.abort_latency;
      Histo.merge ~dst:dst.retries c.retries;
      Histo.merge ~dst:dst.read_set c.read_set;
      Histo.merge ~dst:dst.write_set c.write_set)
    shards;
  dst

let sink = ref Null

(* [active] duplicates the Null/non-Null distinction as one mutable bool so
   the hot-path guard is a single load and compare. *)
let active = ref false

let install s =
  sink := s;
  active := (match s with Null -> false | Collect _ | Sharded _ -> true)

let current () = !sink
let enabled () = !active

let with_sink s f =
  let prev = !sink in
  install s;
  Fun.protect ~finally:(fun () -> install prev) f

(* Thread-id source for sinks that shard by domain: histogram notes carry
   no cpu argument, so the sharded sink asks this hook.  Installed by the
   real-hardware bench alongside the sharded sink; the default (always 0)
   keeps single-threaded users working unconfigured. *)
let domain_id = ref (fun () -> 0)
let set_domain_id f = domain_id := f

let shard_of shards cpu =
  if cpu >= 0 && cpu < Array.length shards then Some shards.(cpu) else None

let emit ~ts ~cpu ev =
  match !sink with
  | Null -> ()
  | Collect c ->
      if cpu >= 0 && cpu < Array.length c.rings then
        Ring.push c.rings.(cpu) { Ring.ts; cpu; ev }
  | Sharded shards -> (
      match shard_of shards cpu with
      | Some c -> Ring.push c.rings.(cpu) { Ring.ts; cpu; ev }
      | None -> ())

let note_histos c ~lat ~retries ~reads ~writes =
  Histo.record c.commit_latency lat;
  Histo.record c.retries retries;
  Histo.record c.read_set reads;
  Histo.record c.write_set writes

let note_commit ~lat ~retries ~reads ~writes =
  match !sink with
  | Null -> ()
  | Collect c -> note_histos c ~lat ~retries ~reads ~writes
  | Sharded shards -> (
      match shard_of shards (!domain_id ()) with
      | Some c -> note_histos c ~lat ~retries ~reads ~writes
      | None -> ())

let note_abort ~lat =
  match !sink with
  | Null -> ()
  | Collect c -> Histo.record c.abort_latency lat
  | Sharded shards -> (
      match shard_of shards (!domain_id ()) with
      | Some c -> Histo.record c.abort_latency lat
      | None -> ())

let note_transfer ~ts ~cpu ~label ~line ~word ~same_word =
  match !sink with
  | Null -> ()
  | Collect c ->
      Contend.record c.contend ~label ~line ~same_word;
      if cpu >= 0 && cpu < Array.length c.rings then
        Ring.push c.rings.(cpu)
          { Ring.ts; cpu; ev = Event.Cache_transfer { label; line; word; same_word } }
  | Sharded shards -> (
      (* Only the simulated cache model emits transfers; on the real path
         this never fires, but shard it correctly anyway. *)
      match shard_of shards cpu with
      | Some c ->
          Contend.record c.contend ~label ~line ~same_word;
          Ring.push c.rings.(cpu)
            { Ring.ts; cpu; ev = Event.Cache_transfer { label; line; word; same_word } }
      | None -> ())

let clock = ref (fun () -> 0)
let set_clock f = clock := f
let now () = !clock ()
let emit_now ~cpu ev = emit ~ts:(now ()) ~cpu ev
