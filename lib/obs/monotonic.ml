(* CLOCK_MONOTONIC via the bechamel stub (the only C binding the toolchain
   ships); origin-shifted so timestamps stay well inside OCaml's int range
   and are meaningful as "nanoseconds since process start". *)

let raw_ns () = Int64.to_int (Monotonic_clock.now ())
let origin = raw_ns ()
let now_ns () = raw_ns () - origin
let now_s () = float_of_int (now_ns ()) /. 1e9
let elapsed_ns ~since = now_ns () - since
let elapsed_s ~since = float_of_int (elapsed_ns ~since) /. 1e9

let resolution_ns () =
  (* Smallest observed positive delta over a few spins: a cheap sanity
     probe for tests and snapshot host metadata, not a hard guarantee. *)
  let best = ref max_int in
  for _ = 1 to 1000 do
    let a = now_ns () in
    let b = now_ns () in
    let d = b - a in
    if d > 0 && d < !best then best := d
  done;
  if !best = max_int then 1 else !best
