(** Exporters over a {!Sink.collector}: Chrome trace-event JSON (loadable in
    Perfetto / [chrome://tracing]), a pretty contention report, and a
    histogram summary.

    Virtual-time mapping: Chrome traces use microseconds; we emit
    [ts_us = cycles / (ghz * 1000)], so with the default 2 GHz cost model
    one Perfetto microsecond equals 2000 virtual cycles — i.e. the Perfetto
    time axis reads directly as simulated wall time. *)

val chrome_trace : ?ghz:float -> Sink.collector -> string
(** JSON string in the Chrome trace-event format: one track (tid) per CPU;
    transactions as duration slices named ["tx"] annotated with their
    outcome, abort reason and retry count; everything else as instant
    events.  [ghz] defaults to [2.0].  Deterministic: two identical
    simulated runs produce byte-identical traces. *)

val write_chrome_trace : ?ghz:float -> path:string -> Sink.collector -> unit

val top_contended : ?n:int -> Sink.collector -> string
(** Pretty top-[n] (default 10) contended-cache-lines report. *)

val histo_summary : Sink.collector -> string
(** One line per histogram: commit/abort latency, retries, set sizes. *)

val json_is_valid : string -> bool
(** Minimal structural JSON validator (objects, arrays, strings, numbers,
    booleans, null) used by the smoke tests — the toolchain has no JSON
    library and must not grow one. *)
