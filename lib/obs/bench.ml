(* Machine-readable wall-clock benchmark snapshots (BENCH_*.json) and the
   noise-aware regression comparator over two of them.

   This module is pure data: the harness that actually runs transactions
   on real domains lives in lib/harness/bench_real.ml (it needs the STMs,
   which sit above obs in the dependency order).  Keeping the snapshot
   model here means every layer — CI scripts, repro, tests — can read and
   compare trajectories without linking the benchmark. *)

let schema = "tstm-bench/1"

(* ------------------------------------------------------------------ *)
(* Model                                                               *)
(* ------------------------------------------------------------------ *)

type sample = {
  thr : float;  (* committed transactions per wall-clock second *)
  elapsed_s : float;  (* measured (monotonic) duration of the repetition *)
  commits : int;
  aborts : int;
}

type cell = {
  stm : string;
  structure : string;
  domains : int;
  workload : string;
  size : int;
  update_pct : float;
  samples : sample list;  (* one per repetition, in execution order *)
  stats : Json.t;  (* merged Tm_stats.to_json over all repetitions *)
}

type host = {
  cores : int;
  ocaml : string;
  os_type : string;
  word_size : int;
  clock_res_ns : int;
}

type t = {
  rev : string;
  created_unix : float;
  duration_s : float;
  warmup_s : float;
  reps : int;
  host : host;
  cells : cell list;
}

let cell_key c =
  Printf.sprintf "%s/%s/d%d/%s/n%d/u%g" c.stm c.structure c.domains c.workload
    c.size c.update_pct

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let mean_of l =
  match l with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let stddev_of l =
  match l with
  | [] | [ _ ] -> 0.0
  | _ ->
      let n = float_of_int (List.length l) in
      let m = mean_of l in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l in
      sqrt (ss /. (n -. 1.0))

(* Two-sided 95% Student-t quantiles by degrees of freedom (1..30, then
   the normal limit).  Repetition counts are small, so the normal
   approximation would understate the interval badly. *)
let t975 = function
  | n when n <= 0 -> 0.0
  | 1 -> 12.706
  | 2 -> 4.303
  | 3 -> 3.182
  | 4 -> 2.776
  | 5 -> 2.571
  | 6 -> 2.447
  | 7 -> 2.365
  | 8 -> 2.306
  | 9 -> 2.262
  | 10 -> 2.228
  | n when n <= 15 -> 2.131
  | n when n <= 20 -> 2.086
  | n when n <= 30 -> 2.042
  | _ -> 1.960

let cell_throughputs c = List.map (fun s -> s.thr) c.samples
let cell_mean c = mean_of (cell_throughputs c)

let cell_ci95 c =
  let l = cell_throughputs c in
  let n = List.length l in
  if n < 2 then 0.0
  else t975 (n - 1) *. stddev_of l /. sqrt (float_of_int n)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let sample_to_json s =
  Json.Obj
    [
      ("throughput_tx_s", Json.Float s.thr);
      ("elapsed_s", Json.Float s.elapsed_s);
      ("commits", Json.Int s.commits);
      ("aborts", Json.Int s.aborts);
    ]

let cell_to_json c =
  Json.Obj
    [
      ("stm", Json.String c.stm);
      ("structure", Json.String c.structure);
      ("domains", Json.Int c.domains);
      ("workload", Json.String c.workload);
      ("size", Json.Int c.size);
      ("update_pct", Json.Float c.update_pct);
      ( "throughput",
        Json.Obj
          [
            ("mean_tx_s", Json.Float (cell_mean c));
            ("ci95_tx_s", Json.Float (cell_ci95 c));
            ("samples", Json.List (List.map sample_to_json c.samples));
          ] );
      ("stats", c.stats);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("rev", Json.String t.rev);
      ("created_unix", Json.Float t.created_unix);
      ( "protocol",
        Json.Obj
          [
            ("duration_s", Json.Float t.duration_s);
            ("warmup_s", Json.Float t.warmup_s);
            ("reps", Json.Int t.reps);
          ] );
      ( "host",
        Json.Obj
          [
            ("cores", Json.Int t.host.cores);
            ("ocaml", Json.String t.host.ocaml);
            ("os_type", Json.String t.host.os_type);
            ("word_size", Json.Int t.host.word_size);
            ("clock_res_ns", Json.Int t.host.clock_res_ns);
          ] );
      ("cells", Json.List (List.map cell_to_json t.cells));
    ]

let to_string t = Json.to_string (to_json t)

(* Field-by-field readers: every miss is a named error, so a truncated or
   hand-edited snapshot fails loud in `bench compare` and in CI. *)

let get what conv j =
  match conv j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S" what)

let field what conv obj =
  match Json.member what obj with
  | Some j -> get what conv j
  | None -> Error (Printf.sprintf "missing field %S" what)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let sample_of_json j =
  let* thr = field "throughput_tx_s" Json.to_float j in
  let* elapsed_s = field "elapsed_s" Json.to_float j in
  let* commits = field "commits" Json.to_int j in
  let* aborts = field "aborts" Json.to_int j in
  Ok { thr; elapsed_s; commits; aborts }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let cell_of_json j =
  let* stm = field "stm" Json.to_str j in
  let* structure = field "structure" Json.to_str j in
  let* domains = field "domains" Json.to_int j in
  let* workload = field "workload" Json.to_str j in
  let* size = field "size" Json.to_int j in
  let* update_pct = field "update_pct" Json.to_float j in
  let* thr = field "throughput" Json.to_obj j in
  let* samples = field "samples" Json.to_list (Json.Obj thr) in
  let* samples = map_result sample_of_json samples in
  let stats = Option.value ~default:Json.Null (Json.member "stats" j) in
  Ok { stm; structure; domains; workload; size; update_pct; samples; stats }

let of_json j =
  let* s = field "schema" Json.to_str j in
  if s <> schema then
    Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
  else
    let* rev = field "rev" Json.to_str j in
    let* created_unix = field "created_unix" Json.to_float j in
    let* proto = field "protocol" Json.to_obj j in
    let proto = Json.Obj proto in
    let* duration_s = field "duration_s" Json.to_float proto in
    let* warmup_s = field "warmup_s" Json.to_float proto in
    let* reps = field "reps" Json.to_int proto in
    let* h = field "host" Json.to_obj j in
    let h = Json.Obj h in
    let* cores = field "cores" Json.to_int h in
    let* ocaml = field "ocaml" Json.to_str h in
    let* os_type = field "os_type" Json.to_str h in
    let* word_size = field "word_size" Json.to_int h in
    let* clock_res_ns = field "clock_res_ns" Json.to_int h in
    let* cells = field "cells" Json.to_list j in
    let* cells = map_result cell_of_json cells in
    Ok
      {
        rev;
        created_unix;
        duration_s;
        warmup_s;
        reps;
        host = { cores; ocaml; os_type; word_size; clock_res_ns };
        cells;
      }

let of_string s =
  match Json.of_string_opt s with
  | None -> Error "not valid JSON"
  | Some j -> of_json j

let write ~path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let read ~path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s

let host () =
  {
    cores = Domain.recommended_domain_count ();
    ocaml = Sys.ocaml_version;
    os_type = Sys.os_type;
    word_size = Sys.word_size;
    clock_res_ns = Monotonic.resolution_ns ();
  }

(* ------------------------------------------------------------------ *)
(* Comparison                                                          *)
(* ------------------------------------------------------------------ *)

type delta = {
  key : string;
  old_mean : float;
  new_mean : float;
  pct : float;  (* (new - old) / old * 100; positive = faster *)
  noise : float;  (* combined CI as a percentage of the old mean *)
  regression : bool;
}

type verdict = {
  deltas : delta list;
  regressions : int;
  missing : string list;  (* cells in OLD with no counterpart in NEW *)
  added : string list;  (* cells in NEW with no counterpart in OLD *)
}

(* A cell regresses when the new mean is below the old by more than both
   the caller's floor and the measured noise: the union of the two CIs
   plus the threshold must not explain the drop.  Intervals built from 3-5
   repetitions are wide, so this errs toward silence — the right default
   for a shared CI runner. *)
let compare_cells ~threshold_pct old_c new_c =
  let old_mean = cell_mean old_c and new_mean = cell_mean new_c in
  let ci = cell_ci95 old_c +. cell_ci95 new_c in
  let pct =
    if old_mean = 0.0 then 0.0
    else (new_mean -. old_mean) /. old_mean *. 100.0
  in
  let noise = if old_mean = 0.0 then 0.0 else ci /. old_mean *. 100.0 in
  let regression =
    old_mean > 0.0
    && new_mean < old_mean -. ci
    && pct < -.threshold_pct
  in
  { key = cell_key old_c; old_mean; new_mean; pct; noise; regression }

let compare ?(threshold_pct = 10.0) ~old_snap ~new_snap () =
  let new_tbl = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace new_tbl (cell_key c) c) new_snap.cells;
  let deltas, missing =
    List.fold_left
      (fun (ds, ms) old_c ->
        match Hashtbl.find_opt new_tbl (cell_key old_c) with
        | Some new_c ->
            Hashtbl.remove new_tbl (cell_key old_c);
            (compare_cells ~threshold_pct old_c new_c :: ds, ms)
        | None -> (ds, cell_key old_c :: ms))
      ([], []) old_snap.cells
  in
  let added = Hashtbl.fold (fun k _ acc -> k :: acc) new_tbl [] in
  let deltas = List.rev deltas in
  {
    deltas;
    regressions = List.length (List.filter (fun d -> d.regression) deltas);
    missing = List.rev missing;
    added = List.sort Stdlib.compare added;
  }

let render_verdict v =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-40s %12s %12s %8s %8s\n" "cell" "old tx/s" "new tx/s"
       "delta" "noise");
  List.iter
    (fun d ->
      Buffer.add_string b
        (Printf.sprintf "%-40s %12.0f %12.0f %+7.1f%% %7.1f%%%s\n" d.key
           d.old_mean d.new_mean d.pct d.noise
           (if d.regression then "  REGRESSION" else "")))
    v.deltas;
  List.iter
    (fun k -> Buffer.add_string b (Printf.sprintf "%-40s (missing in new)\n" k))
    v.missing;
  List.iter
    (fun k -> Buffer.add_string b (Printf.sprintf "%-40s (new cell)\n" k))
    v.added;
  Buffer.add_string b
    (if v.deltas = [] && (v.missing <> [] || v.added <> []) then
       (* Disjoint cell sets: a verdict over zero comparisons is vacuous,
          so say that instead of declaring a clean bill of health. *)
       Printf.sprintf
         "no comparable cells: the snapshots share no (stm, structure, \
          domains, workload) key (%d only in old, %d only in new)\n"
         (List.length v.missing) (List.length v.added)
     else if v.regressions = 0 then "no regressions beyond noise\n"
     else Printf.sprintf "%d regression(s) beyond noise\n" v.regressions);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Human table for one snapshot                                        *)
(* ------------------------------------------------------------------ *)

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "BENCH %s: %d cell(s), %d rep(s) x %.3fs (+%.3fs warmup), %d cores, \
        OCaml %s\n"
       t.rev (List.length t.cells) t.reps t.duration_s t.warmup_s t.host.cores
       t.host.ocaml);
  Buffer.add_string b
    (Printf.sprintf "%-40s %12s %10s %10s %10s\n" "cell" "mean tx/s" "ci95"
       "commits" "aborts");
  List.iter
    (fun c ->
      let commits = List.fold_left (fun a s -> a + s.commits) 0 c.samples in
      let aborts = List.fold_left (fun a s -> a + s.aborts) 0 c.samples in
      Buffer.add_string b
        (Printf.sprintf "%-40s %12.0f %10.0f %10d %10d\n" (cell_key c)
           (cell_mean c) (cell_ci95 c) commits aborts))
    t.cells;
  Buffer.contents b
