type entry = {
  label : string;
  line : int;
  mutable transfers : int;
  mutable true_conflicts : int;
  mutable false_sharing : int;
}

type t = { tbl : (string * int, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 256 }
let clear t = Hashtbl.reset t.tbl

let record t ~label ~line ~same_word =
  let e =
    match Hashtbl.find_opt t.tbl (label, line) with
    | Some e -> e
    | None ->
        let e =
          { label; line; transfers = 0; true_conflicts = 0; false_sharing = 0 }
        in
        Hashtbl.add t.tbl (label, line) e;
        e
  in
  e.transfers <- e.transfers + 1;
  if same_word then e.true_conflicts <- e.true_conflicts + 1
  else e.false_sharing <- e.false_sharing + 1

let total_transfers t =
  Hashtbl.fold (fun _ e acc -> acc + e.transfers) t.tbl 0

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
  |> List.sort (fun a b ->
         match compare b.transfers a.transfers with
         | 0 -> (
             match compare a.label b.label with
             | 0 -> compare a.line b.line
             | c -> c)
         | c -> c)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let top t n = take n (entries t)

let pp_top ~n ppf t =
  let es = top t n in
  if es = [] then Format.fprintf ppf "no contended cache lines recorded@."
  else begin
    Format.fprintf ppf "top %d contended cache lines (of %d transfers):@."
      (List.length es) (total_transfers t);
    Format.fprintf ppf "%-10s %8s %10s %10s %10s %8s@." "array" "line"
      "transfers" "true-conf" "false-shr" "false%";
    List.iter
      (fun e ->
        Format.fprintf ppf "%-10s %8d %10d %10d %10d %7.1f%%@." e.label e.line
          e.transfers e.true_conflicts e.false_sharing
          (100.0 *. float_of_int e.false_sharing /. float_of_int e.transfers))
      es
  end
