(** Typed trace events recorded by the observability layer.

    Events are emitted by the STM implementations, the simulated runtime and
    the tuner through {!Sink} and stamped there with a virtual-time cycle
    count and the emitting CPU id; the payloads below carry only what the
    emitting site knows locally.  Abort reasons travel as strings (produced
    by [Tm_stats.abort_reason_to_string]) so this library stays below
    [tstm_tm] in the dependency order. *)

type t =
  | Tx_begin  (** one per attempt: a retry emits a fresh [Tx_begin] *)
  | Tx_commit of { read_only : bool; reads : int; writes : int; retries : int }
  | Tx_abort of { reason : string; retries : int }
  | Tx_escalate of { retries : int }
      (** retry budget exhausted: the transaction re-runs on the
          serial-irrevocable slow path *)
  | Lock_acquire of { lock : int }  (** lock-array index *)
  | Lock_release of { lock : int }
  | Clock_extend  (** successful snapshot extension *)
  | Clock_rollover  (** clock wrapped; lock array reset under a fence *)
  | Tuner_move of { label : string }  (** the tuner reconfigured the STM *)
  | Cache_transfer of {
      label : string;  (** shared-array label, e.g. ["locks"] *)
      line : int;  (** line index within that array *)
      word : int;  (** word index of the access that paid the transfer *)
      same_word : bool;
          (** the previous owner last wrote this very word: a true conflict
              rather than false sharing *)
    }
  | Tx_livelock of { window : int }
      (** the progress watchdog saw a zero-commit window of [window] cycles *)
  | Tx_starved of { retries : int }
      (** a transaction crossed the watchdog's per-transaction retry
          ceiling *)
  | Cm_switch of { level : string }
      (** the watchdog moved the degradation level (and with it the
          effective contention-management policy) *)
  | Tx_fault of { kind : string; point : string }
      (** an injected fault fired inside a transaction ([kind] is
          ["crash"], ["hang"] or ["oom"]; [point] a
          [Tstm_fault.Fault.point_name] or ["alloc"]) *)
  | Pool_heal of { action : string; tid : int }
      (** the real-domain pool healed a worker: ["crash-respawn"],
          ["hang-detected"], ["hang-recovered"] *)
  | Breaker_trip of { state : string }
      (** the service circuit breaker changed state (["open"],
          ["half-open"], ["closed"]) *)

val name : t -> string
(** Short stable name, used for Chrome-trace event names. *)

val args : t -> (string * string) list
(** Payload as key/value strings for exporters (values are raw, unquoted). *)
