(* Progress-line formatting for multi-process sweeps: pure string
   builders, printed (to stderr) by the binaries so parallel runs stay
   observable without touching the deterministic stdout stream. *)

type status =
  | Started
  | Finished
  | Crashed of string
  | Timed_out
  | Gave_up of string

let status_word = function
  | Started -> "start"
  | Finished -> "done"
  | Crashed _ -> "crash"
  | Timed_out -> "timeout"
  | Gave_up _ -> "FAILED"

let status_detail = function
  | Started | Finished -> ""
  | Crashed reason -> Printf.sprintf " (%s)" reason
  | Timed_out -> " (killed)"
  | Gave_up reason -> Printf.sprintf " (%s)" reason

let job_line ~rank ~total ~attempt ~status ~elapsed label =
  let width = String.length (string_of_int total) in
  let retry = if attempt > 1 then Printf.sprintf " retry %d" (attempt - 1) else "" in
  match status with
  | Started ->
      Printf.sprintf "[%*d/%d] start%s          %s" width (rank + 1) total
        retry label
  | _ ->
      Printf.sprintf "[%*d/%d] %-7s%s %5.1fs  %s%s" width (rank + 1) total
        (status_word status) retry elapsed label (status_detail status)

let sweep_line ~jobs ~workers ~failed ~elapsed =
  let verdict =
    if failed = 0 then "all ok"
    else Printf.sprintf "%d FAILED (partial results)" failed
  in
  Printf.sprintf "(%d job%s on %d worker%s in %.1fs: %s)" jobs
    (if jobs = 1 then "" else "s")
    workers
    (if workers = 1 then "" else "s")
    elapsed verdict
