type t =
  | Tx_begin
  | Tx_commit of { read_only : bool; reads : int; writes : int; retries : int }
  | Tx_abort of { reason : string; retries : int }
  | Tx_escalate of { retries : int }
  | Lock_acquire of { lock : int }
  | Lock_release of { lock : int }
  | Clock_extend
  | Clock_rollover
  | Tuner_move of { label : string }
  | Cache_transfer of {
      label : string;
      line : int;
      word : int;
      same_word : bool;
    }
  | Tx_livelock of { window : int }
  | Tx_starved of { retries : int }
  | Cm_switch of { level : string }
  | Tx_fault of { kind : string; point : string }
  | Pool_heal of { action : string; tid : int }
  | Breaker_trip of { state : string }

let name = function
  | Tx_begin -> "tx_begin"
  | Tx_commit _ -> "tx_commit"
  | Tx_abort _ -> "tx_abort"
  | Tx_escalate _ -> "tx_escalate"
  | Lock_acquire _ -> "lock_acquire"
  | Lock_release _ -> "lock_release"
  | Clock_extend -> "clock_extend"
  | Clock_rollover -> "clock_rollover"
  | Tuner_move _ -> "tuner_move"
  | Cache_transfer _ -> "cache_transfer"
  | Tx_livelock _ -> "tx_livelock"
  | Tx_starved _ -> "tx_starved"
  | Cm_switch _ -> "cm_switch"
  | Tx_fault _ -> "tx_fault"
  | Pool_heal _ -> "pool_heal"
  | Breaker_trip _ -> "breaker_trip"

let args = function
  | Tx_begin | Clock_extend | Clock_rollover -> []
  | Tx_commit { read_only; reads; writes; retries } ->
      [
        ("outcome", "commit");
        ("read_only", string_of_bool read_only);
        ("reads", string_of_int reads);
        ("writes", string_of_int writes);
        ("retries", string_of_int retries);
      ]
  | Tx_abort { reason; retries } ->
      [
        ("outcome", "abort");
        ("reason", reason);
        ("retries", string_of_int retries);
      ]
  | Tx_escalate { retries } ->
      [ ("outcome", "escalate"); ("retries", string_of_int retries) ]
  | Lock_acquire { lock } | Lock_release { lock } ->
      [ ("lock", string_of_int lock) ]
  | Tuner_move { label } -> [ ("config", label) ]
  | Cache_transfer { label; line; word; same_word } ->
      [
        ("array", label);
        ("line", string_of_int line);
        ("word", string_of_int word);
        ("kind", if same_word then "true-conflict" else "false-sharing");
      ]
  | Tx_livelock { window } -> [ ("window", string_of_int window) ]
  | Tx_starved { retries } -> [ ("retries", string_of_int retries) ]
  | Cm_switch { level } -> [ ("level", level) ]
  | Tx_fault { kind; point } -> [ ("kind", kind); ("point", point) ]
  | Pool_heal { action; tid } ->
      [ ("action", action); ("tid", string_of_int tid) ]
  | Breaker_trip { state } -> [ ("state", state) ]
