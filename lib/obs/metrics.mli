(** Per-measurement-period metric time series and their CSV rendering.

    A generic named-column float table: the harness appends one row per
    measurement period (throughput, abort breakdown, latency percentiles…)
    and exports the result as CSV.  Formatting is deterministic ([%.6g]) so
    two identical simulated runs emit byte-identical files. *)

type t

val create : columns:string list -> t
val columns : t -> string list

val add_row : t -> float array -> unit
(** Raises [Invalid_argument] when the width does not match [columns]. *)

val n_rows : t -> int
val rows : t -> float array list
(** In insertion order. *)

val to_csv : t -> string
(** Header line plus one line per row. *)

val write : path:string -> t -> unit
