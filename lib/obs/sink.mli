(** The process-global event sink the instrumented layers write to.

    The default sink is {!Null}: every instrumentation site guards its work
    with {!enabled} (a single mutable-bool load), so a run with tracing off
    is indistinguishable — in virtual time and in results — from the
    untouched code.  Installing a {!Collect} sink routes events into
    per-CPU {!Ring}s, latency/retry/set-size {!Histo}s and a {!Contend}
    table.

    Under the deterministic simulator only one fiber runs at a time, so a
    single {!Collect} collector is race-free.  On real domains it is not:
    {!Sharded} gives every domain its own collector — recording stays plain
    non-atomic arithmetic with no allocation on the hot path — and the
    shards are {!merged} after the domains have joined.

    Emission never charges simulator cycles; a traced simulated run is
    bit-identical to an untraced one. *)

type collector = {
  rings : Ring.t array;  (** per-CPU event rings, indexed by CPU id *)
  contend : Contend.t;  (** cache-line contention attribution *)
  commit_latency : Histo.t;
      (** cycles (wall-clock nanoseconds on the real runtime) from the last
          [Tx_begin] to the commit *)
  abort_latency : Histo.t;  (** cycles wasted by each aborted attempt *)
  retries : Histo.t;  (** aborted attempts preceding each commit *)
  read_set : Histo.t;  (** transactional reads per committed transaction *)
  write_set : Histo.t;  (** transactional writes per committed transaction *)
}

type t =
  | Null
  | Collect of collector
  | Sharded of collector array
      (** one shard per domain id; see {!sharded} and {!merged} *)

val max_cpus : int

val collector : ?ring_capacity:int -> unit -> collector
(** Fresh, empty collector; [ring_capacity] bounds each per-CPU ring. *)

val sharded : ?ring_capacity:int -> unit -> t
(** A {!Sharded} sink of {!max_cpus} fresh collectors.  Each domain must
    only record under its own id (shard selection uses the event's [cpu],
    or {!set_domain_id} for the histogram notes), which the runtimes
    guarantee by construction: thread ids index the shards. *)

val merged : collector array -> collector
(** Combine shards into one collector after the writers have quiesced:
    histograms merge, ring [i] is taken from shard [i] (its only writer).
    Call only after the domains have joined. *)

val install : t -> unit
val current : unit -> t
val enabled : unit -> bool

val with_sink : t -> (unit -> 'a) -> 'a
(** Install a sink around [f], restoring the previous one afterwards (also
    on exceptions). *)

(** {1 Emission} — all no-ops under {!Null}. *)

val emit : ts:int -> cpu:int -> Event.t -> unit

val note_commit : lat:int -> retries:int -> reads:int -> writes:int -> unit
val note_abort : lat:int -> unit

val note_transfer :
  ts:int ->
  cpu:int ->
  label:string ->
  line:int ->
  word:int ->
  same_word:bool ->
  unit
(** Record a coherence transfer in the contention table and emit the
    corresponding {!Event.Cache_transfer}. *)

(** {1 Clock} — lets layers without access to a runtime (the tuner) stamp
    events with the current virtual time. *)

val set_clock : (unit -> int) -> unit
(** Install the virtual-time source (e.g. the simulator's cycle counter).
    The default clock returns [0]. *)

val now : unit -> int

val emit_now : cpu:int -> Event.t -> unit
(** [emit] stamped via the installed clock. *)

val set_domain_id : (unit -> int) -> unit
(** Install the thread-id source the {!Sharded} sink uses to pick the shard
    for {!note_commit}/{!note_abort} (which carry no [cpu] argument).  The
    real-hardware bench installs the runtime's [tid]; the default returns
    [0]. *)
