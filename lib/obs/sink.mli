(** The process-global event sink the instrumented layers write to.

    The default sink is {!Null}: every instrumentation site guards its work
    with {!enabled} (a single mutable-bool load), so a run with tracing off
    is indistinguishable — in virtual time and in results — from the
    untouched code.  Installing a {!Collect} sink routes events into
    per-CPU {!Ring}s, latency/retry/set-size {!Histo}s and a {!Contend}
    table.

    Emission never charges simulator cycles; a traced simulated run is
    bit-identical to an untraced one. *)

type collector = {
  rings : Ring.t array;  (** per-CPU event rings, indexed by CPU id *)
  contend : Contend.t;  (** cache-line contention attribution *)
  commit_latency : Histo.t;
      (** cycles from the last [Tx_begin] to the commit *)
  abort_latency : Histo.t;  (** cycles wasted by each aborted attempt *)
  retries : Histo.t;  (** aborted attempts preceding each commit *)
  read_set : Histo.t;  (** transactional reads per committed transaction *)
  write_set : Histo.t;  (** transactional writes per committed transaction *)
}

type t = Null | Collect of collector

val max_cpus : int

val collector : ?ring_capacity:int -> unit -> collector
(** Fresh, empty collector; [ring_capacity] bounds each per-CPU ring. *)

val install : t -> unit
val current : unit -> t
val enabled : unit -> bool

val with_sink : t -> (unit -> 'a) -> 'a
(** Install a sink around [f], restoring the previous one afterwards (also
    on exceptions). *)

(** {1 Emission} — all no-ops under {!Null}. *)

val emit : ts:int -> cpu:int -> Event.t -> unit

val note_commit : lat:int -> retries:int -> reads:int -> writes:int -> unit
val note_abort : lat:int -> unit

val note_transfer :
  ts:int ->
  cpu:int ->
  label:string ->
  line:int ->
  word:int ->
  same_word:bool ->
  unit
(** Record a coherence transfer in the contention table and emit the
    corresponding {!Event.Cache_transfer}. *)

(** {1 Clock} — lets layers without access to a runtime (the tuner) stamp
    events with the current virtual time. *)

val set_clock : (unit -> int) -> unit
(** Install the virtual-time source (e.g. the simulator's cycle counter).
    The default clock returns [0]. *)

val now : unit -> int

val emit_now : cpu:int -> Event.t -> unit
(** [emit] stamped via the installed clock. *)
