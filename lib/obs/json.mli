(** Minimal JSON values, printer and parser.

    Carries the machine-readable exports ({!Bench} snapshots,
    [Tm_stats.to_json]) without growing a dependency: the repo's lint bars
    external JSON libraries, so the ~200 lines live here.  The printer is
    deterministic — object members print in insertion order, arrays in
    element order — so two identical snapshots are byte-identical files. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a byte offset and reason. *)

val to_string : t -> string
(** Pretty-printed (2-space indent), newline-terminated, deterministic. *)

val of_string : string -> t
(** Parse; raises {!Parse_error} on malformed input (including trailing
    garbage). *)

val of_string_opt : string -> t option
(** [None] on any parse error. *)

(** {1 Accessors} — all total, [None]/[Some] style. *)

val member : string -> t -> t option
(** [member k (Obj ms)] looks up [k]; [None] on non-objects. *)

val to_int : t -> int option
(** Accepts [Int] and integral [Float]. *)

val to_float : t -> float option
(** Accepts [Float] and [Int]. *)

val to_str : t -> string option
val to_list : t -> t list option
val to_obj : t -> (string * t) list option
