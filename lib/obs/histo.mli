(** Log2-bucketed histograms over non-negative integers (virtual-cycle
    latencies, retry counts, read/write-set sizes).

    Bucket [0] holds the value [0]; bucket [k >= 1] holds values [v] with
    [2^(k-1) <= v < 2^k].  Recording is a handful of instructions, so
    histograms can stay on even in hot paths without perturbing the
    simulator's virtual time (they never charge cycles). *)

type t

val nbuckets : int

val create : unit -> t
val clear : t -> unit

val record : t -> int -> unit
(** Negative values are clamped to [0]. *)

val bucket_of : int -> int
val lower_bound : int -> int
(** Smallest value of a bucket: [lower_bound 0 = 0], [lower_bound k = 2^(k-1)]. *)

val upper_bound : int -> int
(** Largest value of a bucket: [upper_bound 0 = 0], [upper_bound k = 2^k - 1]. *)

val count : t -> int
(** Number of recorded samples. *)

val bucket_count : t -> int -> int

val sum : t -> int
(** Exact sum of the recorded values (tracked alongside the buckets). *)

val mean : t -> float
(** [0.] when empty. *)

val max_value : t -> int
(** Largest recorded value ([0] when empty). *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0..100]: the upper bound of the first
    bucket whose cumulative count reaches [p]% of the samples ([0] when
    empty).  An upper bound keeps the estimate conservative and
    deterministic. *)

val merge : dst:t -> t -> unit

val copy : t -> t

val diff : t -> since:t -> t
(** [diff cur ~since] is the histogram of samples recorded in [cur] after
    the snapshot [since] was taken ([since] must be an earlier copy of
    [cur]). *)

val pp : Format.formatter -> t -> unit
(** One line: count, mean, p50/p90/p99, max. *)
