(* Minimal JSON values: enough for the BENCH_*.json snapshots and the
   stats exporter.  The toolchain has no JSON library and must not grow
   one (see bin/lint.ml), so parsing and printing live here.  The printer
   is deterministic (object members keep insertion order) and the parser
   accepts exactly the JSON this repo emits plus ordinary whitespace. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_to_json f =
  match Float.classify_float f with
  | Float.FP_nan | Float.FP_infinite ->
      (* NaN/inf are not JSON; clamp to null-like 0 rather than emit
         garbage. *)
      "0.0"
  | _ ->
      if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%.17g" f

let rec print_buf ?(indent = 0) b v =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_to_json f)
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List [] -> Buffer.add_string b "[]"
  | List items ->
      Buffer.add_string b "[";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '\n';
          pad (indent + 2);
          print_buf ~indent:(indent + 2) b item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj members ->
      Buffer.add_string b "{";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '\n';
          pad (indent + 2);
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\": ";
          print_buf ~indent:(indent + 2) b item)
        members;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 4096 in
  print_buf b v;
  Buffer.add_char b '\n';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error c (Printf.sprintf "expected %C, found %C" ch x)
  | None -> error c (Printf.sprintf "expected %C, found end of input" ch)

let parse_keyword c kw v =
  let n = String.length kw in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = kw then begin
    c.pos <- c.pos + n;
    v
  end
  else error c (Printf.sprintf "expected %s" kw)

let parse_string_body c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents b
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then error c "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> error c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* Only the control-character range this repo ever emits. *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_char b '?';
            go ()
        | _ -> error c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') ->
        advance c;
        go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> error c (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* Integers beyond OCaml's int range degrade to float. *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error c (Printf.sprintf "bad number %S" text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> String (parse_string_body c)
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((k, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((k, v) :: acc))
          | _ -> error c "expected ',' or '}'"
        in
        members []
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> error c "expected ',' or ']'"
        in
        items []
      end
  | Some 't' -> parse_keyword c "true" (Bool true)
  | Some 'f' -> parse_keyword c "false" (Bool false)
  | Some 'n' -> parse_keyword c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

let of_string_opt s = try Some (of_string s) with Parse_error _ -> None

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj ms -> List.assoc_opt k ms | _ -> None

let to_int = function
  | Int i -> Some i
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_obj = function Obj ms -> Some ms | _ -> None
