(** Versioned, machine-readable wall-clock benchmark snapshots
    ([BENCH_*.json]) and the noise-aware regression comparator.

    A snapshot records one Synchrobench-style protocol run — fixed-duration
    timed repetitions after a warmup, per-cell throughput samples with a
    Student-t 95% confidence interval, merged transaction statistics and
    host metadata — keyed by git revision so the repo accumulates a perf
    trajectory ([BENCH_0001.json], [BENCH_0002.json], …) that CI and later
    PRs can diff mechanically.

    This module is pure data (build/serialize/compare); the harness that
    produces cells on real domains is [Tstm_harness.Bench_real]. *)

val schema : string
(** Format tag embedded in every snapshot (["tstm-bench/1"]); {!of_json}
    rejects anything else. *)

(** One timed repetition of one cell. *)
type sample = {
  thr : float;  (** committed transactions per wall-clock second *)
  elapsed_s : float;  (** measured monotonic duration of the repetition *)
  commits : int;
  aborts : int;
}

(** One benchmark cell: an (STM, structure, domain count, workload)
    combination with its repetition samples. *)
type cell = {
  stm : string;
  structure : string;
  domains : int;
  workload : string;  (** {!Tstm_harness.Workload.pattern_to_string} form *)
  size : int;
  update_pct : float;
  samples : sample list;
  stats : Json.t;  (** merged [Tm_stats.to_json] over all repetitions *)
}

type host = {
  cores : int;  (** [Domain.recommended_domain_count] on the runner *)
  ocaml : string;
  os_type : string;
  word_size : int;
  clock_res_ns : int;  (** observed {!Monotonic.resolution_ns} *)
}

type t = {
  rev : string;  (** git revision the snapshot was taken at *)
  created_unix : float;
  duration_s : float;  (** per-repetition measured duration *)
  warmup_s : float;
  reps : int;
  host : host;
  cells : cell list;
}

val cell_key : cell -> string
(** Stable identity used to match cells across snapshots:
    ["stm/structure/dN/workload/nSIZE/uPCT"]. *)

val cell_mean : cell -> float
(** Mean throughput over the samples ([0.] when empty). *)

val cell_ci95 : cell -> float
(** Half-width of the Student-t 95% confidence interval of the mean
    ([0.] with fewer than two samples). *)

val host : unit -> host
(** Probe the current machine. *)

(** {1 Serialization} — deterministic; see {!Json.to_string}. *)

val to_json : t -> Json.t
val to_string : t -> string
val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result
val write : path:string -> t -> unit
val read : path:string -> (t, string) result

(** {1 Regression comparison} *)

type delta = {
  key : string;
  old_mean : float;
  new_mean : float;
  pct : float;  (** [(new - old) / old * 100]; positive = faster *)
  noise : float;  (** combined 95% CI width as a % of the old mean *)
  regression : bool;
}

type verdict = {
  deltas : delta list;  (** cells present in both snapshots, old order *)
  regressions : int;
  missing : string list;  (** cells of the old snapshot absent from the new *)
  added : string list;  (** cells of the new snapshot absent from the old *)
}

val compare :
  ?threshold_pct:float -> old_snap:t -> new_snap:t -> unit -> verdict
(** Match cells by {!cell_key} and flag regressions: a cell regresses when
    the new mean falls below the old one by more than the combined 95%
    confidence intervals {e and} more than [threshold_pct] percent
    (default 10) — so neither measured noise nor small drifts trip CI. *)

val render_verdict : verdict -> string
(** Human table: one line per delta, missing/added notes, summary line. *)

val render : t -> string
(** Human table for a single snapshot (the [bench real] stdout report). *)
