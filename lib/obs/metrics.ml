type t = { cols : string array; mutable rows_rev : float array list }

let create ~columns =
  if columns = [] then invalid_arg "Metrics.create: no columns";
  { cols = Array.of_list columns; rows_rev = [] }

let columns t = Array.to_list t.cols

let add_row t row =
  if Array.length row <> Array.length t.cols then
    invalid_arg "Metrics.add_row: width mismatch";
  t.rows_rev <- Array.copy row :: t.rows_rev

let n_rows t = List.length t.rows_rev
let rows t = List.rev t.rows_rev

let to_csv t =
  let b = Buffer.create 1024 in
  Array.iteri
    (fun i c ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b c)
    t.cols;
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Array.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b (Printf.sprintf "%.6g" v))
        row;
      Buffer.add_char b '\n')
    (rows t);
  Buffer.contents b

let write ~path t =
  let oc = open_out path in
  output_string oc (to_csv t);
  close_out oc
