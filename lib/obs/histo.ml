(* 62 value buckets cover every non-negative OCaml int: bucket 0 is the
   value 0, bucket k holds [2^(k-1), 2^k). *)
let nbuckets = 63

type t = {
  counts : int array;
  mutable n : int;
  mutable total : int;
  mutable max_v : int;
}

let create () = { counts = Array.make nbuckets 0; n = 0; total = 0; max_v = 0 }

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.n <- 0;
  t.total <- 0;
  t.max_v <- 0

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    !b
  end

let lower_bound k = if k <= 0 then 0 else 1 lsl (k - 1)
let upper_bound k = if k <= 0 then 0 else (1 lsl k) - 1

let record t v =
  let v = max 0 v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  t.total <- t.total + v;
  if v > t.max_v then t.max_v <- v

let count t = t.n
let bucket_count t k = t.counts.(k)
let sum t = t.total
let mean t = if t.n = 0 then 0.0 else float_of_int t.total /. float_of_int t.n
let max_value t = t.max_v

let percentile t p =
  if t.n = 0 then 0
  else begin
    let need = p /. 100.0 *. float_of_int t.n in
    let cum = ref 0 and k = ref 0 and res = ref 0 in
    let found = ref false in
    while (not !found) && !k < nbuckets do
      cum := !cum + t.counts.(!k);
      if float_of_int !cum >= need && t.counts.(!k) > 0 then begin
        res := min (upper_bound !k) t.max_v;
        found := true
      end;
      incr k
    done;
    if !found then !res else t.max_v
  end

let merge ~dst t =
  for k = 0 to nbuckets - 1 do
    dst.counts.(k) <- dst.counts.(k) + t.counts.(k)
  done;
  dst.n <- dst.n + t.n;
  dst.total <- dst.total + t.total;
  if t.max_v > dst.max_v then dst.max_v <- t.max_v

let copy t =
  let c = create () in
  merge ~dst:c t;
  c

let diff cur ~since =
  let d = create () in
  for k = 0 to nbuckets - 1 do
    let v = cur.counts.(k) - since.counts.(k) in
    if v < 0 then invalid_arg "Histo.diff: not a snapshot of the same histogram";
    d.counts.(k) <- v
  done;
  d.n <- cur.n - since.n;
  d.total <- cur.total - since.total;
  (* The exact maximum of the window is unknown; the cumulative max is a
     safe upper bound for percentile clamping. *)
  d.max_v <- cur.max_v;
  d

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.1f p50=%d p90=%d p99=%d max=%d" t.n (mean t)
    (percentile t 50.0) (percentile t 90.0) (percentile t 99.0) t.max_v
