(** Progress-line formatting for multi-process sweeps.

    Pure string builders: the sweep runner reports job lifecycle events and
    the binaries render them to stderr, keeping the deterministic stdout
    stream untouched by scheduling noise. *)

type status =
  | Started
  | Finished
  | Crashed of string  (** worker died; will be retried if budget remains *)
  | Timed_out  (** worker exceeded the per-job timeout and was killed *)
  | Gave_up of string  (** job failed permanently (partial results) *)

val job_line :
  rank:int ->
  total:int ->
  attempt:int ->
  status:status ->
  elapsed:float ->
  string ->
  string
(** [job_line ~rank ~total ~attempt ~status ~elapsed label] — one line per
    job lifecycle event; [rank] is 0-based, [attempt] 1-based, [elapsed]
    in real seconds (ignored for [Started]). *)

val sweep_line :
  jobs:int -> workers:int -> failed:int -> elapsed:float -> string
(** Sweep summary trailer. *)
