let json_escape b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_args b args =
  Buffer.add_string b "\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      json_escape b k;
      Buffer.add_string b "\":\"";
      json_escape b v;
      Buffer.add_char b '"')
    args;
  Buffer.add_char b '}'

let chrome_trace ?(ghz = 2.0) (c : Sink.collector) =
  let b = Buffer.create 65536 in
  let us cycles = float_of_int cycles /. (ghz *. 1000.0) in
  let first = ref true in
  let event fmt =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n";
    Printf.ksprintf (Buffer.add_string b) fmt
  in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Array.iteri
    (fun cpu ring ->
      if Ring.length ring > 0 then begin
        event
          "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"cpu %d\"}}"
          cpu cpu;
        if Ring.dropped ring > 0 then
          event
            "{\"name\":\"ring_dropped\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":0.000,\"args\":{\"dropped\":\"%d\"}}"
            cpu (Ring.dropped ring);
        (* Pair each Tx_begin with the commit/abort that ends the attempt;
           a terminator whose begin was evicted becomes a zero-width slice. *)
        let pending = ref None in
        Ring.iter ring (fun { Ring.ts; cpu; ev } ->
            let slice t0 =
              let buf = Buffer.create 128 in
              add_args buf (Event.args ev);
              event
                "{\"name\":\"tx\",\"cat\":\"tx\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,%s}"
                cpu (us t0)
                (us (ts - t0))
                (Buffer.contents buf)
            in
            match ev with
            | Event.Tx_begin -> pending := Some ts
            | Event.Tx_commit _ | Event.Tx_abort _ ->
                let t0 = match !pending with Some t0 -> t0 | None -> ts in
                pending := None;
                slice t0
            | _ ->
                let buf = Buffer.create 64 in
                add_args buf (Event.args ev);
                event
                  "{\"name\":\"%s\",\"cat\":\"stm\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,%s}"
                  (Event.name ev) cpu (us ts) (Buffer.contents buf))
      end)
    c.Sink.rings;
  Buffer.add_string b "\n],\"otherData\":{\"clock_ghz\":\"";
  Printf.ksprintf (Buffer.add_string b) "%.3f" ghz;
  Buffer.add_string b "\",\"time_unit\":\"virtual us (cycles/ghz)\"}}\n";
  Buffer.contents b

let write_chrome_trace ?ghz ~path c =
  let oc = open_out path in
  output_string oc (chrome_trace ?ghz c);
  close_out oc

let top_contended ?(n = 10) (c : Sink.collector) =
  Format.asprintf "%a" (Contend.pp_top ~n) c.Sink.contend

let histo_summary (c : Sink.collector) =
  Format.asprintf
    "commit latency (cycles): %a@.abort latency  (cycles): %a@.retries/commit:          %a@.reads/commit:            %a@.writes/commit:           %a@."
    Histo.pp c.Sink.commit_latency Histo.pp c.Sink.abort_latency Histo.pp
    c.Sink.retries Histo.pp c.Sink.read_set Histo.pp c.Sink.write_set

(* ------------------------------------------------------------------ *)
(* Minimal JSON validator                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of int

let json_is_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect ch =
    if !pos < n && s.[!pos] = ch then advance () else raise (Bad !pos)
  in
  let literal lit =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then pos := !pos + l
    else raise (Bad !pos)
  in
  let string_ () =
    expect '"';
    let closed = ref false in
    while not !closed do
      if !pos >= n then raise (Bad !pos);
      (match s.[!pos] with
      | '"' -> closed := true
      | '\\' -> advance () (* skip the escaped char below *)
      | c when Char.code c < 0x20 -> raise (Bad !pos)
      | _ -> ());
      advance ()
    done
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do advance () done;
      if !pos = d0 then raise (Bad !pos)
    in
    digits ();
    if peek () = Some '.' then begin advance (); digits () end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    if !pos = start then raise (Bad !pos)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let more = ref true in
          while !more do
            skip_ws ();
            string_ ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some '}' ->
                advance ();
                more := false
            | _ -> raise (Bad !pos)
          done
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let more = ref true in
          while !more do
            value ();
            skip_ws ();
            match peek () with
            | Some ',' -> advance ()
            | Some ']' ->
                advance ();
                more := false
            | _ -> raise (Bad !pos)
          done
        end
    | Some '"' -> string_ ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some _ -> number ()
    | None -> raise (Bad !pos)
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | ok -> ok
  | exception Bad _ -> false
