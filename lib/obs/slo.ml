(* Request-level SLO accounting: verdict counters plus two latency
   histograms (in-deadline commits; every executed request).  Log2 buckets
   keep recording cheap enough for hot paths and make p999 as cheap as p50;
   the conservative upper-bound percentile of [Histo] keeps assertions
   deterministic. *)

type verdict =
  | Committed
  | Late
  | Gave_up
  | Dropped
  | Budget_exhausted
  | Shed
  | Faulted
  | Tripped

let verdict_to_string = function
  | Committed -> "committed"
  | Late -> "late"
  | Gave_up -> "gave-up"
  | Dropped -> "dropped"
  | Budget_exhausted -> "budget-exhausted"
  | Shed -> "shed"
  | Faulted -> "faulted"
  | Tripped -> "tripped"

type t = {
  lat_ok : Histo.t;  (* in-deadline commits *)
  lat_done : Histo.t;  (* every executed request (incl. late, give-ups) *)
  mutable committed : int;
  mutable late : int;
  mutable gave_up : int;
  mutable dropped : int;
  mutable budget_exhausted : int;
  mutable shed : int;
  mutable faulted : int;
  mutable tripped : int;
}

let create () =
  {
    lat_ok = Histo.create ();
    lat_done = Histo.create ();
    committed = 0;
    late = 0;
    gave_up = 0;
    dropped = 0;
    budget_exhausted = 0;
    shed = 0;
    faulted = 0;
    tripped = 0;
  }

let note t v ~lat_cycles =
  match v with
  | Committed ->
      t.committed <- t.committed + 1;
      Histo.record t.lat_ok lat_cycles;
      Histo.record t.lat_done lat_cycles
  | Late ->
      t.late <- t.late + 1;
      Histo.record t.lat_done lat_cycles
  | Gave_up ->
      t.gave_up <- t.gave_up + 1;
      Histo.record t.lat_done lat_cycles
  | Dropped ->
      t.dropped <- t.dropped + 1;
      Histo.record t.lat_done lat_cycles
  | Budget_exhausted ->
      t.budget_exhausted <- t.budget_exhausted + 1;
      Histo.record t.lat_done lat_cycles
  | Shed -> t.shed <- t.shed + 1
  | Faulted ->
      t.faulted <- t.faulted + 1;
      Histo.record t.lat_done lat_cycles
  | Tripped -> t.tripped <- t.tripped + 1

type summary = {
  requests : int;
  admitted : int;
  shed : int;
  committed : int;
  late : int;
  gave_up : int;
  dropped : int;
  budget_exhausted : int;
  faulted : int;
  tripped : int;
  deadline_missed : int;
  p50 : int;
  p99 : int;
  p999 : int;
  max_latency : int;
  mean : float;
  p99_done : int;
}

let summary (t : t) =
  let deadline_missed = t.late + t.gave_up + t.dropped in
  let admitted =
    t.committed + deadline_missed + t.budget_exhausted + t.faulted
  in
  {
    requests = admitted + t.shed + t.tripped;
    admitted;
    shed = t.shed;
    committed = t.committed;
    late = t.late;
    gave_up = t.gave_up;
    dropped = t.dropped;
    budget_exhausted = t.budget_exhausted;
    faulted = t.faulted;
    tripped = t.tripped;
    deadline_missed;
    p50 = Histo.percentile t.lat_ok 50.0;
    p99 = Histo.percentile t.lat_ok 99.0;
    p999 = Histo.percentile t.lat_ok 99.9;
    max_latency = Histo.max_value t.lat_ok;
    mean = Histo.mean t.lat_ok;
    p99_done = Histo.percentile t.lat_done 99.0;
  }

let summary_to_json s =
  Json.Obj
    [
      ("requests", Json.Int s.requests);
      ("admitted", Json.Int s.admitted);
      ("shed", Json.Int s.shed);
      ("committed", Json.Int s.committed);
      ("late", Json.Int s.late);
      ("gave_up", Json.Int s.gave_up);
      ("dropped", Json.Int s.dropped);
      ("budget_exhausted", Json.Int s.budget_exhausted);
      ("faulted", Json.Int s.faulted);
      ("tripped", Json.Int s.tripped);
      ("deadline_missed", Json.Int s.deadline_missed);
      ("p50_cycles", Json.Int s.p50);
      ("p99_cycles", Json.Int s.p99);
      ("p999_cycles", Json.Int s.p999);
      ("max_cycles", Json.Int s.max_latency);
      ("mean_cycles", Json.Float s.mean);
      ("p99_done_cycles", Json.Int s.p99_done);
    ]

let columns =
  [
    "period";
    "t_end_s";
    "requests";
    "admitted";
    "shed";
    "committed";
    "late";
    "gave_up";
    "dropped";
    "budget_exhausted";
    "p50_cycles";
    "p99_cycles";
    "p999_cycles";
  ]

let row ~period ~t_end s =
  [|
    float_of_int period;
    t_end;
    float_of_int s.requests;
    float_of_int s.admitted;
    float_of_int s.shed;
    float_of_int s.committed;
    float_of_int s.late;
    float_of_int s.gave_up;
    float_of_int s.dropped;
    float_of_int s.budget_exhausted;
    float_of_int s.p50;
    float_of_int s.p99;
    float_of_int s.p999;
  |]

let render ~cycles_to_ms s =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "requests=%d admitted=%d shed=%d committed=%d deadline-missed=%d \
        (late=%d gave-up=%d dropped=%d) budget-exhausted=%d\n"
       s.requests s.admitted s.shed s.committed s.deadline_missed s.late
       s.gave_up s.dropped s.budget_exhausted);
  if s.faulted + s.tripped > 0 then
    Buffer.add_string b
      (Printf.sprintf "faults: faulted=%d breaker-tripped=%d\n" s.faulted
         s.tripped);
  Buffer.add_string b
    (Printf.sprintf
       "latency (in-deadline commits): p50=%.3fms p99=%.3fms p999=%.3fms \
        max=%.3fms; p99 all executed=%.3fms\n"
       (cycles_to_ms s.p50) (cycles_to_ms s.p99) (cycles_to_ms s.p999)
       (cycles_to_ms s.max_latency)
       (cycles_to_ms s.p99_done));
  Buffer.contents b
