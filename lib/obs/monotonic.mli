(** Wall-clock monotonic time for the real-hardware benchmark path.

    Backed by [CLOCK_MONOTONIC] (the [bechamel.monotonic_clock] stub — no
    new dependency, bechamel is already in the toolchain), shifted so [0] is
    process start.  Unlike [Unix.gettimeofday] it never goes backwards under
    NTP adjustment, and unlike a float-of-seconds conversion it keeps full
    nanosecond resolution in an [int].

    This is the clock the {!Bench} protocol and {!Runtime_real} timestamps
    use; the simulator keeps its own virtual clock and never reads this
    one. *)

val now_ns : unit -> int
(** Nanoseconds since process start; monotonically non-decreasing. *)

val now_s : unit -> float
(** {!now_ns} in seconds. *)

val elapsed_ns : since:int -> int
(** [elapsed_ns ~since] = [now_ns () - since]. *)

val elapsed_s : since:int -> float

val resolution_ns : unit -> int
(** Smallest positive clock delta observed over a brief spin — a probe of
    effective resolution for host metadata, not a guarantee. *)
