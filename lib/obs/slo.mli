(** Request-level SLO accounting for the service layer.

    Every request submitted to {!Tstm_service.Service} ends in exactly one
    verdict; an [Slo.t] accumulates those verdicts plus the request-latency
    histograms ({!Histo} log2 buckets, so p999 stays cheap) and folds them
    into a {!summary} — the record the CSV/JSON exporters and the `repro
    serve` report render.  Latencies are virtual cycles; callers convert to
    wall units with their runtime's clock.

    The accounting identity every run must satisfy (asserted by the service
    tests): [requests = shed + tripped + admitted] and
    [admitted = committed + deadline_missed + budget_exhausted + faulted],
    where [deadline_missed = late + gave_up + dropped]. *)

(** The terminal state of one request. *)
type verdict =
  | Committed  (** transaction committed within the request deadline *)
  | Late  (** transaction committed, but past the deadline *)
  | Gave_up  (** dispatched, gave up at an attempt boundary past deadline *)
  | Dropped  (** dequeued already hopeless (deadline-aware shed) *)
  | Budget_exhausted  (** retry budget spent without a commit *)
  | Shed  (** rejected at admission (queue full) *)
  | Faulted
      (** admitted but killed by a typed fault (injected crash or arena
          [Capacity]) after exhausting its fault-retry budget *)
  | Tripped  (** rejected at admission by an open circuit breaker *)

val verdict_to_string : verdict -> string

type t

val create : unit -> t

val note : t -> verdict -> lat_cycles:int -> unit
(** Record one finished request.  [lat_cycles] is admission-to-completion
    latency in virtual cycles; it is ignored for [Shed] (the request never
    ran).  Negative values clamp to [0]. *)

(** Folded counters and latency percentiles (cycles). *)
type summary = {
  requests : int;  (** every request: [shed + admitted] *)
  admitted : int;
  shed : int;
  committed : int;  (** in-deadline commits — the goodput numerator *)
  late : int;
  gave_up : int;
  dropped : int;
  budget_exhausted : int;
  faulted : int;
  tripped : int;
  deadline_missed : int;  (** [late + gave_up + dropped] *)
  p50 : int;  (** in-deadline commit latency percentiles, cycles *)
  p99 : int;
  p999 : int;
  max_latency : int;
  mean : float;
  p99_done : int;
      (** p99 latency over {e every} executed request, including late
          commits and give-ups — the number that blows up when shedding is
          disabled *)
}

val summary : t -> summary

val summary_to_json : summary -> Json.t
(** Deterministic object export (insertion-ordered members). *)

val columns : string list
(** Per-period CSV columns for {!Metrics}: period index, end time,
    verdict counts and latency percentiles. *)

val row : period:int -> t_end:float -> summary -> float array
(** One {!Metrics} row (width matches {!columns}). *)

val render : cycles_to_ms:(int -> float) -> summary -> string
(** Multi-line human report (deterministic; no trailing spaces). *)
