(** The word-transaction interface.

    Every STM in this repository (TinySTM write-back, TinySTM write-through,
    TL2, NOrec) implements [TM]; every transactional data structure is a
    functor over it.  Addresses are {!Tstm_vmm.Vmm} word addresses ([int],
    0 = null).

    Inside a transaction, user code only ever observes consistent snapshots
    (the time-base guarantees of LSA/TL2); conflicts surface as an internal
    abort exception that {!TM.atomically} catches and retries, so user code
    must let exceptions propagate. *)

(** The tuning parameters every STM instance is created with (paper §4).
    STMs without a given knob ignore it at creation: TL2 has no
    hierarchical array, NOrec has no lock array at all.  Which knobs are
    live is declared by {!capabilities}, not guessed from names. *)
type tuning = {
  n_locks : int;  (** size of the lock array; a power of two *)
  shifts : int;  (** address right-shifts before lock hashing *)
  hierarchy : int;  (** hierarchical-array size; 1 = disabled *)
  hierarchy2 : int;  (** second counter level; 1 = single level *)
}

let default_tuning =
  { n_locks = 1 lsl 16; shifts = 0; hierarchy = 1; hierarchy2 = 1 }

(** What an STM implementation can actually do, declared by the
    implementation itself and carried through {!Registry}.  Plans, tuners
    and sweeps consult these flags instead of matching on STM names, so a
    new algorithm family slots in without touching the drivers. *)
type capabilities = {
  lock_array : bool;
      (** Has a per-stripe lock/orec array, so the [n_locks]/[shifts]
          knobs are meaningful ([false] for NOrec: one global seqlock). *)
  dynamic_reconfig : bool;
      (** Supports quiescent re-tuning via [configure] (the paper's §4.2
          roll-over fence); [false] makes [configure] a capability error. *)
  read_only_fastpath : bool;
      (** [atomically ~read_only:true] skips read-set maintenance. *)
  snapshot_extension : bool;
      (** Can revalidate and extend its snapshot instead of aborting on
          clock change (LSA extension; NOrec's value-based fast-forward). *)
}

(** Raised by [configure] (and by sweep axes that require a knob) when the
    target STM lacks the capability, e.g. re-tuning TL2 or sweeping the
    lock-array size of NOrec.  [stm] is the canonical name, [capability]
    the record field name, e.g. ["dynamic_reconfig"]. *)
exception Capability_error of { stm : string; capability : string }

let capability_error ~stm ~capability =
  raise (Capability_error { stm; capability })

(** Raised by [atomically] when the arena cannot satisfy a transactional
    allocation: either the allocation-failed abort/retry loop exhausted its
    budget ([retries] consecutive [Out_of_memory] aborts), or the
    allocation failed inside a serial-irrevocable escalation (where nothing
    can be rolled back).  A typed verdict instead of an escaped
    [Out_of_memory]: callers account it (service layer: a [Faulted]
    request) rather than dying. *)
exception Capacity of { stm : string; retries : int }

let () =
  Printexc.register_printer (function
    | Capability_error { stm; capability } ->
        Some
          (Printf.sprintf "STM %S does not support %s (capability error)" stm
             capability)
    | Capacity { stm; retries } ->
        Some
          (Printf.sprintf
             "STM %S out of arena capacity (%d allocation-failed retries)" stm
             retries)
    | _ -> None)

module type TM = sig
  type t
  (** An STM instance bound to a memory arena. *)

  type tx
  (** An active transaction (valid only inside the [atomically] callback). *)

  val name : string
  (** e.g. ["tinystm-wb"], ["tinystm-wt"], ["tl2"]. *)

  val read : tx -> int -> int
  (** [read tx addr] transactional load. *)

  val write : tx -> int -> int -> unit
  (** [write tx addr v] transactional store.  Raises [Invalid_argument] when
      the transaction was started with [~read_only:true]. *)

  val alloc : tx -> int -> int
  (** [alloc tx n] allocates [n] contiguous words; automatically released if
      the transaction aborts (paper §3.1, Memory Management). *)

  val free : tx -> int -> int -> unit
  (** [free tx addr n] frees a block at commit time; a no-op if the
      transaction aborts.  Acquires the covering locks first (a free is
      semantically an update). *)

  val atomically : ?read_only:bool -> t -> (tx -> 'a) -> 'a
  (** Run a transaction, retrying on aborts until it commits.
      [~read_only:true] enables the read-only fast path: no read set is kept
      and commit needs no validation (the incremental snapshot is always
      consistent).  Must not be nested. *)

  val stats : t -> Tm_stats.t
  (** Aggregated statistics over all threads (call while quiescent). *)

  val reset_stats : t -> unit
end

(** A packaged STM: the {!TM} operations plus instance construction and
    quiescent re-tuning, uniform across implementations so harness and CLI
    code can dispatch through {!Registry} instead of matching on names.
    Registered as first-class modules ([(module Some_stm : STM)]). *)
module type STM = sig
  include TM

  val family : string
  (** Algorithm family, e.g. ["tinystm"], ["tl2"], ["norec"].  Reports
      group columns by family; several registry entries may share one
      (tinystm-wb and tinystm-wt are both ["tinystm"]). *)

  val capabilities : capabilities
  (** What this implementation can do; see {!capabilities}. *)

  val create :
    ?tuning:tuning ->
    ?max_retries:int ->
    ?cm:Tstm_cm.Cm.policy ->
    ?watchdog:Tstm_runtime.Watchdog.t ->
    memory_words:int ->
    unit ->
    t
  (** Build an instance over a fresh memory arena.  [tuning] defaults to
      {!default_tuning} (2{^16} locks, no shifts, hierarchy disabled) —
      the paper's production default; knobs the implementation lacks are
      ignored.  [max_retries] (default 0 = never) is the retry budget
      before a transaction escalates to serial-irrevocable execution.
      [cm] (default {!Tstm_cm.Cm.default} = [Backoff]) selects the
      contention-management policy; the default is byte-identical to the
      historical behaviour.  [watchdog], when given, receives
      commit/abort heartbeats and its degradation level overrides [cm]
      ([Boosted] forces [Karma], [Serialized] forces immediate
      escalation). *)

  val configure : t -> tuning -> unit
  (** Re-tune a quiescent instance in place (the clock roll-over fence of
      paper §4.2).  Raises {!Capability_error} for STMs whose
      [capabilities.dynamic_reconfig] is [false] (TL2, NOrec). *)

  val live_words : t -> int
  (** Words currently allocated in the instance's arena — the allocator
      diagnostic behind the zero-drift integrity checks (the underlying
      memory handle itself stays hidden).  Call while quiescent. *)
end
