(** Transaction statistics, shared by every STM implementation.

    Counters are kept per thread inside each STM and aggregated on demand;
    the harness uses them for the abort-rate figures (Fig. 4) and the
    validation fast-path figure (Fig. 12). *)

type abort_reason =
  | Read_conflict  (** read found a lock owned by another transaction *)
  | Write_conflict  (** write found a lock owned by another transaction *)
  | Validation_failed  (** commit-time (or extension) validation failed *)
  | Rollover  (** aborted to participate in a clock roll-over fence *)
  | Killed  (** aborted remotely by a contention manager's kill decision *)
  | Alloc_failed
      (** a transactional allocation raised [Out_of_memory] (arena
          exhaustion or an injected fault); rolled back cleanly and
          retried with backoff, escalating to [Tm_intf.Capacity] after a
          bounded number of consecutive failures *)

val abort_reason_to_string : abort_reason -> string
val all_abort_reasons : abort_reason list

val retry_hist_buckets : int
(** Number of log2 buckets in {!t.retry_hist} (16). *)

val retry_bucket : int -> int
(** [retry_bucket retries] maps a per-transaction retry count to its
    histogram bucket: bucket 0 is first-try commits, bucket [k >= 1] covers
    [\[2^(k-1), 2^k)], saturating in the last bucket. *)

(** One thread's counters.  Mutable, owned by a single thread; aggregate with
    {!add_into} after the threads have quiesced. *)
type t = {
  mutable commits : int;
  mutable commits_read_only : int;  (** subset of [commits] *)
  mutable aborts_read_conflict : int;
  mutable aborts_write_conflict : int;
  mutable aborts_validation : int;
  mutable aborts_rollover : int;
  mutable reads : int;
  mutable writes : int;
  mutable extensions : int;  (** successful snapshot extensions *)
  mutable validations : int;  (** full or partial read-set validations *)
  mutable val_locks_processed : int;  (** read-set locks actually re-checked *)
  mutable val_locks_skipped : int;  (** locks skipped via the hierarchy fast path *)
  mutable escalations : int;
      (** transactions that exhausted their retry budget and committed on the
          serial-irrevocable slow path *)
  mutable backoff_cycles : int;  (** cycles spent in contention back-off *)
  mutable aborts_killed : int;
      (** aborts forced remotely by a kill-capable contention manager *)
  mutable aborts_alloc : int;
      (** aborts from failed transactional allocations ([Alloc_failed]) *)
  mutable faults_crash : int;
      (** injected worker crashes observed by this thread's transactions *)
  mutable faults_hang : int;
      (** injected bounded hangs observed by this thread's transactions *)
  mutable max_retries_seen : int;
      (** worst per-transaction retry count before a commit — the fairness
          headline: a large value with a healthy abort rate means one
          transaction starved *)
  mutable cm_switches : int;
      (** contention-manager policy switches forced by the watchdog *)
  retry_hist : int array;
      (** per-commit retry-count histogram over {!retry_hist_buckets} log2
          buckets; see {!retry_bucket} *)
}

val create : unit -> t
val reset : t -> unit
val aborts : t -> int
(** Total aborts across all reasons. *)

val record_abort : t -> abort_reason -> unit

val record_retries : t -> int -> unit
(** Record, at commit time, how many retries the transaction needed:
    updates [max_retries_seen] and the retry histogram. *)

val add_into : dst:t -> t -> unit
(** Accumulate a thread's counters into an aggregate ([max_retries_seen]
    merges with [max], everything else sums). *)

val copy : t -> t

(** {1 Derived ratios} — [0.] whenever the denominator is zero. *)

val abort_rate_pct : t -> float
(** Aborts as a percentage of all attempts (commits + aborts). *)

val reads_per_commit : t -> float
val writes_per_commit : t -> float

(** {1 Machine-readable export} *)

val to_json : t -> Tstm_obs.Json.t
(** Every counter as a flat JSON object, [retry_hist] as an array — the
    payload of [BENCH_*.json] snapshot cells and [repro run --stats-json].
    Round-trips through {!of_json}. *)

val of_json : Tstm_obs.Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] names the first missing or ill-typed
    field.  A [retry_hist] longer than {!retry_hist_buckets} is truncated.
    Fault-era fields ([aborts_alloc], [faults_crash], [faults_hang])
    default to 0 when absent so pre-fault snapshots keep loading. *)

val pp : Format.formatter -> t -> unit
(** Raw counters followed by the derived ratios, so a plain run's stats
    line is self-explanatory. *)
