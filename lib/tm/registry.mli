(** Name-keyed registry of packaged {!Tm_intf.STM} implementations — the
    single STM dispatch point in the repository.

    Implementations register themselves (typically at module initialisation
    of the library that instantiates them over a concrete runtime, e.g.
    [Tstm_harness.Scenario] for the simulated runtime) under a canonical
    name plus optional short aliases; harness and CLI code resolves either
    form.  Lookups raise [Invalid_argument] listing the known names, so a
    typo in a CLI flag produces an actionable message. *)

val register :
  ?aliases:string list -> ?label:string -> (module Tm_intf.STM) -> unit
(** Register under the module's [name].  [aliases] are alternate lookup
    keys (e.g. ["wb"] for ["tinystm-wb"]); [label] is the display label
    used in figure headings (defaults to the name).  Raises
    [Invalid_argument] when the name or an alias is already bound. *)

val find : string -> (module Tm_intf.STM) option
(** Resolve a canonical name or alias; [None] when unknown. *)

val get : string -> (module Tm_intf.STM)
(** Like {!find}; raises [Invalid_argument] when unknown. *)

val mem : string -> bool

val canonical : string -> string
(** Canonical name for a name or alias; raises when unknown. *)

val label : string -> string
(** Display label (e.g. ["TinySTM-WB"]); raises when unknown. *)

val names : unit -> string list
(** Canonical names in registration order. *)
