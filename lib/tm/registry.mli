(** Name-keyed registry of packaged {!Tm_intf.STM} implementations — the
    single STM dispatch point in the repository.

    Implementations register themselves (typically at module initialisation
    of the library that instantiates them over a concrete runtime, e.g.
    [Tstm_harness.Scenario] for the simulated runtime) under a canonical
    name plus optional short aliases; harness and CLI code resolves either
    form.  Lookups raise [Invalid_argument] listing the known names, so a
    typo in a CLI flag produces an actionable message.

    Each entry carries the module's self-declared algorithm [family] and
    {!Tm_intf.capabilities}, so drivers filter plans by capability
    ({!fold}, {!filter}, {!require}) instead of matching on names. *)

type entry = {
  name : string;  (** canonical name, e.g. ["tinystm-wb"] *)
  label : string;  (** display label, e.g. ["TinySTM-WB"] *)
  aliases : string list;
  family : string;  (** e.g. ["tinystm"], ["tl2"], ["norec"] *)
  capabilities : Tm_intf.capabilities;
  stm : (module Tm_intf.STM);
}

val register :
  ?aliases:string list -> ?label:string -> (module Tm_intf.STM) -> unit
(** Register under the module's [name]; [family] and [capabilities] are
    read off the module.  [aliases] are alternate lookup keys (e.g. ["wb"]
    for ["tinystm-wb"]); [label] is the display label used in figure
    headings (defaults to the name).  Raises [Invalid_argument] when the
    name or an alias is already bound. *)

val find : string -> (module Tm_intf.STM) option
(** Resolve a canonical name or alias; [None] when unknown. *)

val get : string -> (module Tm_intf.STM)
(** Like {!find}; raises [Invalid_argument] when unknown. *)

val mem : string -> bool

val entry_of : string -> entry option
(** Full entry for a name or alias; [None] when unknown. *)

val canonical : string -> string
(** Canonical name for a name or alias; raises when unknown. *)

val label : string -> string
(** Display label (e.g. ["TinySTM-WB"]); raises when unknown. *)

val family : string -> string
(** Algorithm family of a name or alias; raises when unknown. *)

val capabilities : string -> Tm_intf.capabilities
(** Capability record of a name or alias; raises when unknown. *)

val names : unit -> string list
(** Canonical names in registration order. *)

val all : unit -> entry list
(** Entries in registration order. *)

val fold : ('a -> entry -> 'a) -> 'a -> 'a
(** Left fold over entries in registration order — the way shared test
    batteries enumerate every registered implementation. *)

val filter : (entry -> bool) -> entry list
(** Entries satisfying a predicate, in registration order. *)

val families : unit -> string list
(** Distinct families in first-registration order. *)

val require : string -> string -> unit
(** [require stm capability] raises {!Tm_intf.Capability_error} when the
    named STM lacks the capability (field name, e.g. ["dynamic_reconfig"]);
    [Invalid_argument] for unknown STMs or capability names. *)
