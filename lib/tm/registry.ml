(* Name-keyed registry of packaged STM implementations.

   The registry is the single point of STM dispatch in the repository:
   harness, CLIs and tests resolve an implementation by its canonical name
   (or a short alias) and get back a first-class [(module Tm_intf.STM)].
   Entries are registered at module-initialisation time by the library that
   instantiates the implementation over a concrete runtime (see
   [Tstm_harness.Scenario], which registers tinystm-wb, tinystm-wt and tl2
   over the simulated runtime); a binary that links that library sees the
   entries before [main] runs. *)

type entry = {
  name : string;
  label : string;
  aliases : string list;
  stm : (module Tm_intf.STM);
}

(* Registration order is the presentation order (figures, CLIs), so keep an
   ordered list rather than hashing. *)
let entries : entry list ref = ref []

let all () = List.rev !entries

let names () = List.map (fun e -> e.name) (all ())

let entry_of name =
  List.find_opt
    (fun e -> String.equal e.name name || List.mem name e.aliases)
    (all ())

let mem name = entry_of name <> None

let register ?(aliases = []) ?label (stm : (module Tm_intf.STM)) =
  let module M = (val stm) in
  let name = M.name in
  let label = Option.value label ~default:name in
  List.iter
    (fun key ->
      if mem key then
        invalid_arg (Printf.sprintf "Registry.register: %S already bound" key))
    (name :: aliases);
  entries := { name; label; aliases; stm } :: !entries

let unknown name =
  invalid_arg
    (Printf.sprintf "unknown STM %S (known: %s)" name
       (String.concat ", " (names ())))

let find name = Option.map (fun e -> e.stm) (entry_of name)

let get name = match find name with Some stm -> stm | None -> unknown name

let canonical name =
  match entry_of name with Some e -> e.name | None -> unknown name

let label name =
  match entry_of name with Some e -> e.label | None -> unknown name
