(* Name-keyed registry of packaged STM implementations.

   The registry is the single point of STM dispatch in the repository:
   harness, CLIs and tests resolve an implementation by its canonical name
   (or a short alias) and get back a first-class [(module Tm_intf.STM)].
   Entries are registered at module-initialisation time by the library that
   instantiates the implementation over a concrete runtime (see
   [Tstm_harness.Scenario], which registers tinystm-wb, tinystm-wt, tl2 and
   norec over the simulated runtime); a binary that links that library sees
   the entries before [main] runs.

   Family and capability metadata are pulled from the module itself at
   registration, so the registry is also the single source of truth for
   capability-driven plan filtering ([fold], [filter], [families]). *)

type entry = {
  name : string;
  label : string;
  aliases : string list;
  family : string;
  capabilities : Tm_intf.capabilities;
  stm : (module Tm_intf.STM);
}

(* Registration order is the presentation order (figures, CLIs), so keep an
   ordered list rather than hashing. *)
let entries : entry list ref = ref []

let all () = List.rev !entries

let names () = List.map (fun e -> e.name) (all ())

let entry_of name =
  List.find_opt
    (fun e -> String.equal e.name name || List.mem name e.aliases)
    (all ())

let mem name = entry_of name <> None

let register ?(aliases = []) ?label (stm : (module Tm_intf.STM)) =
  let module M = (val stm) in
  let name = M.name in
  let label = Option.value label ~default:name in
  List.iter
    (fun key ->
      if mem key then
        invalid_arg (Printf.sprintf "Registry.register: %S already bound" key))
    (name :: aliases);
  entries :=
    {
      name;
      label;
      aliases;
      family = M.family;
      capabilities = M.capabilities;
      stm;
    }
    :: !entries

let unknown name =
  invalid_arg
    (Printf.sprintf "unknown STM %S (known: %s)" name
       (String.concat ", " (names ())))

let find name = Option.map (fun e -> e.stm) (entry_of name)

let get name = match find name with Some stm -> stm | None -> unknown name

let canonical name =
  match entry_of name with Some e -> e.name | None -> unknown name

let label name =
  match entry_of name with Some e -> e.label | None -> unknown name

let family name =
  match entry_of name with Some e -> e.family | None -> unknown name

let capabilities name =
  match entry_of name with Some e -> e.capabilities | None -> unknown name

let fold f init = List.fold_left f init (all ())

(* Families in first-appearance order, deduplicated. *)
let families () =
  List.rev
    (fold
       (fun acc e -> if List.mem e.family acc then acc else e.family :: acc)
       [])

let filter p = List.filter p (all ())

let require name capability =
  let e = match entry_of name with Some e -> e | None -> unknown name in
  let have =
    match capability with
    | "lock_array" -> e.capabilities.Tm_intf.lock_array
    | "dynamic_reconfig" -> e.capabilities.Tm_intf.dynamic_reconfig
    | "read_only_fastpath" -> e.capabilities.Tm_intf.read_only_fastpath
    | "snapshot_extension" -> e.capabilities.Tm_intf.snapshot_extension
    | other -> invalid_arg ("Registry.require: unknown capability " ^ other)
  in
  if not have then Tm_intf.capability_error ~stm:e.name ~capability
