type abort_reason =
  | Read_conflict
  | Write_conflict
  | Validation_failed
  | Rollover

let abort_reason_to_string = function
  | Read_conflict -> "read-conflict"
  | Write_conflict -> "write-conflict"
  | Validation_failed -> "validation"
  | Rollover -> "rollover"

let all_abort_reasons =
  [ Read_conflict; Write_conflict; Validation_failed; Rollover ]

type t = {
  mutable commits : int;
  mutable commits_read_only : int;
  mutable aborts_read_conflict : int;
  mutable aborts_write_conflict : int;
  mutable aborts_validation : int;
  mutable aborts_rollover : int;
  mutable reads : int;
  mutable writes : int;
  mutable extensions : int;
  mutable validations : int;
  mutable val_locks_processed : int;
  mutable val_locks_skipped : int;
  mutable escalations : int;
  mutable backoff_cycles : int;
}

let create () =
  {
    commits = 0;
    commits_read_only = 0;
    aborts_read_conflict = 0;
    aborts_write_conflict = 0;
    aborts_validation = 0;
    aborts_rollover = 0;
    reads = 0;
    writes = 0;
    extensions = 0;
    validations = 0;
    val_locks_processed = 0;
    val_locks_skipped = 0;
    escalations = 0;
    backoff_cycles = 0;
  }

let reset t =
  t.commits <- 0;
  t.commits_read_only <- 0;
  t.aborts_read_conflict <- 0;
  t.aborts_write_conflict <- 0;
  t.aborts_validation <- 0;
  t.aborts_rollover <- 0;
  t.reads <- 0;
  t.writes <- 0;
  t.extensions <- 0;
  t.validations <- 0;
  t.val_locks_processed <- 0;
  t.val_locks_skipped <- 0;
  t.escalations <- 0;
  t.backoff_cycles <- 0

let aborts t =
  t.aborts_read_conflict + t.aborts_write_conflict + t.aborts_validation
  + t.aborts_rollover

let record_abort t = function
  | Read_conflict -> t.aborts_read_conflict <- t.aborts_read_conflict + 1
  | Write_conflict -> t.aborts_write_conflict <- t.aborts_write_conflict + 1
  | Validation_failed -> t.aborts_validation <- t.aborts_validation + 1
  | Rollover -> t.aborts_rollover <- t.aborts_rollover + 1

let add_into ~dst t =
  dst.commits <- dst.commits + t.commits;
  dst.commits_read_only <- dst.commits_read_only + t.commits_read_only;
  dst.aborts_read_conflict <- dst.aborts_read_conflict + t.aborts_read_conflict;
  dst.aborts_write_conflict <-
    dst.aborts_write_conflict + t.aborts_write_conflict;
  dst.aborts_validation <- dst.aborts_validation + t.aborts_validation;
  dst.aborts_rollover <- dst.aborts_rollover + t.aborts_rollover;
  dst.reads <- dst.reads + t.reads;
  dst.writes <- dst.writes + t.writes;
  dst.extensions <- dst.extensions + t.extensions;
  dst.validations <- dst.validations + t.validations;
  dst.val_locks_processed <- dst.val_locks_processed + t.val_locks_processed;
  dst.val_locks_skipped <- dst.val_locks_skipped + t.val_locks_skipped;
  dst.escalations <- dst.escalations + t.escalations;
  dst.backoff_cycles <- dst.backoff_cycles + t.backoff_cycles

let copy t =
  let c = create () in
  add_into ~dst:c t;
  c

let abort_rate_pct t =
  let attempts = t.commits + aborts t in
  if attempts = 0 then 0.0
  else 100.0 *. float_of_int (aborts t) /. float_of_int attempts

let per_commit n t =
  if t.commits = 0 then 0.0 else float_of_int n /. float_of_int t.commits

let reads_per_commit t = per_commit t.reads t
let writes_per_commit t = per_commit t.writes t

let pp ppf t =
  Format.fprintf ppf
    "commits=%d (ro=%d) aborts=%d [rc=%d wc=%d val=%d roll=%d] reads=%d \
     writes=%d ext=%d validations=%d val-locks processed=%d skipped=%d \
     escalations=%d backoff-cycles=%d | abort-rate=%.1f%% \
     reads/commit=%.1f writes/commit=%.1f"
    t.commits t.commits_read_only (aborts t) t.aborts_read_conflict
    t.aborts_write_conflict t.aborts_validation t.aborts_rollover t.reads
    t.writes t.extensions t.validations t.val_locks_processed
    t.val_locks_skipped t.escalations t.backoff_cycles (abort_rate_pct t)
    (reads_per_commit t) (writes_per_commit t)
