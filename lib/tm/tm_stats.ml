type abort_reason =
  | Read_conflict
  | Write_conflict
  | Validation_failed
  | Rollover
  | Killed
  | Alloc_failed

let abort_reason_to_string = function
  | Read_conflict -> "read-conflict"
  | Write_conflict -> "write-conflict"
  | Validation_failed -> "validation"
  | Rollover -> "rollover"
  | Killed -> "killed"
  | Alloc_failed -> "alloc-failed"

let all_abort_reasons =
  [
    Read_conflict;
    Write_conflict;
    Validation_failed;
    Rollover;
    Killed;
    Alloc_failed;
  ]

let retry_hist_buckets = 16

(* Bucket 0 = committed first try; bucket k>=1 covers retry counts in
   [2^(k-1), 2^k), saturating in the last bucket. *)
let retry_bucket retries =
  if retries <= 0 then 0
  else begin
    let k = ref 1 in
    while retries lsr !k > 0 && !k < retry_hist_buckets - 1 do
      incr k
    done;
    !k
  end

type t = {
  mutable commits : int;
  mutable commits_read_only : int;
  mutable aborts_read_conflict : int;
  mutable aborts_write_conflict : int;
  mutable aborts_validation : int;
  mutable aborts_rollover : int;
  mutable reads : int;
  mutable writes : int;
  mutable extensions : int;
  mutable validations : int;
  mutable val_locks_processed : int;
  mutable val_locks_skipped : int;
  mutable escalations : int;
  mutable backoff_cycles : int;
  mutable aborts_killed : int;
  mutable aborts_alloc : int;
  mutable faults_crash : int;
  mutable faults_hang : int;
  mutable max_retries_seen : int;
  mutable cm_switches : int;
  retry_hist : int array;
}

let create () =
  {
    commits = 0;
    commits_read_only = 0;
    aborts_read_conflict = 0;
    aborts_write_conflict = 0;
    aborts_validation = 0;
    aborts_rollover = 0;
    reads = 0;
    writes = 0;
    extensions = 0;
    validations = 0;
    val_locks_processed = 0;
    val_locks_skipped = 0;
    escalations = 0;
    backoff_cycles = 0;
    aborts_killed = 0;
    aborts_alloc = 0;
    faults_crash = 0;
    faults_hang = 0;
    max_retries_seen = 0;
    cm_switches = 0;
    retry_hist = Array.make retry_hist_buckets 0;
  }

let reset t =
  t.commits <- 0;
  t.commits_read_only <- 0;
  t.aborts_read_conflict <- 0;
  t.aborts_write_conflict <- 0;
  t.aborts_validation <- 0;
  t.aborts_rollover <- 0;
  t.reads <- 0;
  t.writes <- 0;
  t.extensions <- 0;
  t.validations <- 0;
  t.val_locks_processed <- 0;
  t.val_locks_skipped <- 0;
  t.escalations <- 0;
  t.backoff_cycles <- 0;
  t.aborts_killed <- 0;
  t.aborts_alloc <- 0;
  t.faults_crash <- 0;
  t.faults_hang <- 0;
  t.max_retries_seen <- 0;
  t.cm_switches <- 0;
  Array.fill t.retry_hist 0 retry_hist_buckets 0

let aborts t =
  t.aborts_read_conflict + t.aborts_write_conflict + t.aborts_validation
  + t.aborts_rollover + t.aborts_killed + t.aborts_alloc

let record_abort t = function
  | Read_conflict -> t.aborts_read_conflict <- t.aborts_read_conflict + 1
  | Write_conflict -> t.aborts_write_conflict <- t.aborts_write_conflict + 1
  | Validation_failed -> t.aborts_validation <- t.aborts_validation + 1
  | Rollover -> t.aborts_rollover <- t.aborts_rollover + 1
  | Killed -> t.aborts_killed <- t.aborts_killed + 1
  | Alloc_failed -> t.aborts_alloc <- t.aborts_alloc + 1

let record_retries t retries =
  if retries > t.max_retries_seen then t.max_retries_seen <- retries;
  let b = retry_bucket retries in
  t.retry_hist.(b) <- t.retry_hist.(b) + 1

let add_into ~dst t =
  dst.commits <- dst.commits + t.commits;
  dst.commits_read_only <- dst.commits_read_only + t.commits_read_only;
  dst.aborts_read_conflict <- dst.aborts_read_conflict + t.aborts_read_conflict;
  dst.aborts_write_conflict <-
    dst.aborts_write_conflict + t.aborts_write_conflict;
  dst.aborts_validation <- dst.aborts_validation + t.aborts_validation;
  dst.aborts_rollover <- dst.aborts_rollover + t.aborts_rollover;
  dst.reads <- dst.reads + t.reads;
  dst.writes <- dst.writes + t.writes;
  dst.extensions <- dst.extensions + t.extensions;
  dst.validations <- dst.validations + t.validations;
  dst.val_locks_processed <- dst.val_locks_processed + t.val_locks_processed;
  dst.val_locks_skipped <- dst.val_locks_skipped + t.val_locks_skipped;
  dst.escalations <- dst.escalations + t.escalations;
  dst.backoff_cycles <- dst.backoff_cycles + t.backoff_cycles;
  dst.aborts_killed <- dst.aborts_killed + t.aborts_killed;
  dst.aborts_alloc <- dst.aborts_alloc + t.aborts_alloc;
  dst.faults_crash <- dst.faults_crash + t.faults_crash;
  dst.faults_hang <- dst.faults_hang + t.faults_hang;
  if t.max_retries_seen > dst.max_retries_seen then
    dst.max_retries_seen <- t.max_retries_seen;
  dst.cm_switches <- dst.cm_switches + t.cm_switches;
  for i = 0 to retry_hist_buckets - 1 do
    dst.retry_hist.(i) <- dst.retry_hist.(i) + t.retry_hist.(i)
  done

let copy t =
  let c = create () in
  add_into ~dst:c t;
  c

let abort_rate_pct t =
  let attempts = t.commits + aborts t in
  if attempts = 0 then 0.0
  else 100.0 *. float_of_int (aborts t) /. float_of_int attempts

let per_commit n t =
  if t.commits = 0 then 0.0 else float_of_int n /. float_of_int t.commits

let reads_per_commit t = per_commit t.reads t
let writes_per_commit t = per_commit t.writes t

module Json = Tstm_obs.Json

let to_json t =
  Json.Obj
    [
      ("commits", Json.Int t.commits);
      ("commits_read_only", Json.Int t.commits_read_only);
      ("aborts_read_conflict", Json.Int t.aborts_read_conflict);
      ("aborts_write_conflict", Json.Int t.aborts_write_conflict);
      ("aborts_validation", Json.Int t.aborts_validation);
      ("aborts_rollover", Json.Int t.aborts_rollover);
      ("aborts_killed", Json.Int t.aborts_killed);
      ("aborts_alloc", Json.Int t.aborts_alloc);
      ("faults_crash", Json.Int t.faults_crash);
      ("faults_hang", Json.Int t.faults_hang);
      ("reads", Json.Int t.reads);
      ("writes", Json.Int t.writes);
      ("extensions", Json.Int t.extensions);
      ("validations", Json.Int t.validations);
      ("val_locks_processed", Json.Int t.val_locks_processed);
      ("val_locks_skipped", Json.Int t.val_locks_skipped);
      ("escalations", Json.Int t.escalations);
      ("backoff_cycles", Json.Int t.backoff_cycles);
      ("max_retries_seen", Json.Int t.max_retries_seen);
      ("cm_switches", Json.Int t.cm_switches);
      ( "retry_hist",
        Json.List (Array.to_list (Array.map (fun n -> Json.Int n) t.retry_hist))
      );
    ]

let of_json j =
  let ( let* ) = Result.bind in
  let int k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "Tm_stats.of_json: missing int field %S" k)
  in
  (* Fields added after a snapshot schema has been published parse as 0
     when absent, so older BENCH_*.json baselines keep loading. *)
  let int0 k =
    match Option.bind (Json.member k j) Json.to_int with
    | Some n -> Ok n
    | None -> Ok 0
  in
  let* commits = int "commits" in
  let* commits_read_only = int "commits_read_only" in
  let* aborts_read_conflict = int "aborts_read_conflict" in
  let* aborts_write_conflict = int "aborts_write_conflict" in
  let* aborts_validation = int "aborts_validation" in
  let* aborts_rollover = int "aborts_rollover" in
  let* aborts_killed = int "aborts_killed" in
  let* aborts_alloc = int0 "aborts_alloc" in
  let* faults_crash = int0 "faults_crash" in
  let* faults_hang = int0 "faults_hang" in
  let* reads = int "reads" in
  let* writes = int "writes" in
  let* extensions = int "extensions" in
  let* validations = int "validations" in
  let* val_locks_processed = int "val_locks_processed" in
  let* val_locks_skipped = int "val_locks_skipped" in
  let* escalations = int "escalations" in
  let* backoff_cycles = int "backoff_cycles" in
  let* max_retries_seen = int "max_retries_seen" in
  let* cm_switches = int "cm_switches" in
  let* hist =
    match Option.bind (Json.member "retry_hist" j) Json.to_list with
    | None -> Error "Tm_stats.of_json: missing list field \"retry_hist\""
    | Some elems ->
        let rec ints acc = function
          | [] -> Ok (List.rev acc)
          | e :: rest -> (
              match Json.to_int e with
              | Some n -> ints (n :: acc) rest
              | None -> Error "Tm_stats.of_json: non-int in retry_hist")
        in
        ints [] elems
  in
  let t = create () in
  t.commits <- commits;
  t.commits_read_only <- commits_read_only;
  t.aborts_read_conflict <- aborts_read_conflict;
  t.aborts_write_conflict <- aborts_write_conflict;
  t.aborts_validation <- aborts_validation;
  t.aborts_rollover <- aborts_rollover;
  t.aborts_killed <- aborts_killed;
  t.aborts_alloc <- aborts_alloc;
  t.faults_crash <- faults_crash;
  t.faults_hang <- faults_hang;
  t.reads <- reads;
  t.writes <- writes;
  t.extensions <- extensions;
  t.validations <- validations;
  t.val_locks_processed <- val_locks_processed;
  t.val_locks_skipped <- val_locks_skipped;
  t.escalations <- escalations;
  t.backoff_cycles <- backoff_cycles;
  t.max_retries_seen <- max_retries_seen;
  t.cm_switches <- cm_switches;
  List.iteri
    (fun i n -> if i < retry_hist_buckets then t.retry_hist.(i) <- n)
    hist;
  Ok t

let pp_retry_hist ppf t =
  let last =
    let i = ref (retry_hist_buckets - 1) in
    while !i > 0 && t.retry_hist.(!i) = 0 do
      decr i
    done;
    !i
  in
  for i = 0 to last do
    Format.fprintf ppf "%s%d" (if i = 0 then "" else "/") t.retry_hist.(i)
  done

let pp ppf t =
  Format.fprintf ppf
    "commits=%d (ro=%d) aborts=%d [rc=%d wc=%d val=%d roll=%d kill=%d \
     alloc=%d] reads=%d writes=%d ext=%d validations=%d val-locks \
     processed=%d skipped=%d escalations=%d backoff-cycles=%d \
     max-retries=%d cm-switches=%d retry-hist=%a | abort-rate=%.1f%% \
     reads/commit=%.1f writes/commit=%.1f"
    t.commits t.commits_read_only (aborts t) t.aborts_read_conflict
    t.aborts_write_conflict t.aborts_validation t.aborts_rollover
    t.aborts_killed t.aborts_alloc t.reads t.writes t.extensions t.validations
    t.val_locks_processed t.val_locks_skipped t.escalations t.backoff_cycles
    t.max_retries_seen t.cm_switches pp_retry_hist t (abort_rate_pct t)
    (reads_per_commit t) (writes_per_commit t);
  if t.faults_crash + t.faults_hang > 0 then
    Format.fprintf ppf " faults[crash=%d hang=%d]" t.faults_crash
      t.faults_hang
