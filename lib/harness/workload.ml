type structure = List | Rbtree | Skiplist | Hashset

let structure_to_string = function
  | List -> "list"
  | Rbtree -> "rbtree"
  | Skiplist -> "skiplist"
  | Hashset -> "hashset"

let structure_of_string = function
  | "list" -> Some List
  | "rbtree" -> Some Rbtree
  | "skiplist" -> Some Skiplist
  | "hashset" -> Some Hashset
  | _ -> None

(* Adversarial key/rate patterns.  [Uniform] is the paper's harness and the
   default; the others are robustness workloads engineered to concentrate
   contention (skew, hot spots) or to starve particular threads (long
   readers, asymmetric rates).  All are deterministic functions of the
   per-thread RNG, so every pattern replays bit-identically from a seed. *)
type pattern =
  | Uniform
  | Zipf of float
  | Hotspot of int
  | Bimodal of int
  | Asym of float

let pattern_to_string = function
  | Uniform -> "uniform"
  | Zipf theta -> Printf.sprintf "zipf:%g" theta
  | Hotspot n -> Printf.sprintf "hotspot:%d" n
  | Bimodal span -> Printf.sprintf "bimodal:%d" span
  | Asym f -> Printf.sprintf "rates:%g" f

let pattern_of_string s =
  let base, arg =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        (String.sub s 0 i, Some (String.sub s (i + 1) (String.length s - i - 1)))
  in
  let float_arg () = Option.bind arg float_of_string_opt in
  let int_arg () = Option.bind arg int_of_string_opt in
  match base with
  | "uniform" -> ( match arg with None -> Ok Uniform | Some _ -> Error "uniform takes no argument")
  | "zipf" -> (
      (* [float_of_string] accepts "inf"/"nan"; a non-finite theta would
         poison the CDF, so reject it like any other malformed argument. *)
      match float_arg () with
      | Some theta when Float.is_finite theta && theta > 0.0 -> Ok (Zipf theta)
      | _ -> Error "zipf:THETA needs a positive finite float (e.g. zipf:1.2)")
  | "hotspot" -> (
      match int_arg () with
      | Some n when n >= 1 -> Ok (Hotspot n)
      | _ -> Error "hotspot:N needs a positive integer (e.g. hotspot:4)")
  | "bimodal" -> (
      match int_arg () with
      | Some span when span >= 1 -> Ok (Bimodal span)
      | _ -> Error "bimodal:SPAN needs a positive integer (e.g. bimodal:8)")
  | "rates" -> (
      match float_arg () with
      | Some f when Float.is_finite f && f >= 1.0 -> Ok (Asym f)
      | _ -> Error "rates:F needs a finite float >= 1 (e.g. rates:2.0)")
  | _ ->
      Error
        (Printf.sprintf
           "unknown workload pattern %S (known: uniform, zipf:THETA, \
            hotspot:N, bimodal:SPAN, rates:F)" s)

(* Key generator for a pattern.  The [Uniform] closure must consume exactly
   one [Xrand.int] per key — the historical stream — so default-pattern runs
   stay byte-identical. *)
let key_gen pattern ~key_range =
  match pattern with
  | Uniform | Bimodal _ | Asym _ ->
      fun g -> 1 + Tstm_util.Xrand.int g key_range
  | Hotspot n ->
      let hot = min n key_range in
      fun g ->
        if Tstm_util.Xrand.float g < 0.9 then 1 + Tstm_util.Xrand.int g hot
        else 1 + Tstm_util.Xrand.int g key_range
  | Zipf theta ->
      (* Inverse-CDF sampling over [1, key_range] with weight 1/k^theta. *)
      let cdf = Array.make key_range 0.0 in
      let total = ref 0.0 in
      for k = 0 to key_range - 1 do
        total := !total +. (1.0 /. (float_of_int (k + 1) ** theta));
        cdf.(k) <- !total
      done;
      let total = !total in
      fun g ->
        let u = Tstm_util.Xrand.float g *. total in
        let lo = ref 0 and hi = ref (key_range - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if cdf.(mid) < u then lo := mid + 1 else hi := mid
        done;
        !lo + 1

(* Long-reader span for [tid] under the pattern: even threads of a bimodal
   mix run scan transactions of that many lookups; 0 = normal mix. *)
let reader_span pattern ~tid =
  match pattern with
  | Bimodal span when tid land 1 = 0 -> span
  | _ -> 0

(* Extra think-time (local cycles) charged between transactions: odd
   threads of an asymmetric mix run slower by the given factor. *)
let idle_cycles pattern ~tid =
  match pattern with
  | Asym f when tid land 1 = 1 -> int_of_float ((f -. 1.0) *. 500.0)
  | _ -> 0

type spec = {
  structure : structure;
  initial_size : int;
  key_range : int;
  update_pct : float;
  overwrite_pct : float;
  nthreads : int;
  duration : float;
  seed : int;
  pattern : pattern;
}

let default =
  {
    structure = List;
    initial_size = 256;
    key_range = 512;
    update_pct = 20.0;
    overwrite_pct = 0.0;
    nthreads = 4;
    duration = 0.005;
    seed = 42;
    pattern = Uniform;
  }

let make ?(structure = default.structure) ?(initial_size = default.initial_size)
    ?key_range ?(update_pct = default.update_pct)
    ?(overwrite_pct = default.overwrite_pct) ?(nthreads = default.nthreads)
    ?(duration = default.duration) ?(seed = default.seed)
    ?(pattern = default.pattern) () =
  let key_range =
    match key_range with Some r -> r | None -> 2 * initial_size
  in
  if initial_size < 1 then invalid_arg "Workload.make: initial_size < 1";
  if key_range <= initial_size then
    invalid_arg "Workload.make: key_range must exceed initial_size";
  if update_pct < 0.0 || overwrite_pct < 0.0
     || update_pct +. overwrite_pct > 100.0
  then invalid_arg "Workload.make: bad transaction mix";
  if nthreads < 1 then invalid_arg "Workload.make: nthreads < 1";
  if duration <= 0.0 then invalid_arg "Workload.make: duration <= 0";
  {
    structure;
    initial_size;
    key_range;
    update_pct;
    overwrite_pct;
    nthreads;
    duration;
    seed;
    pattern;
  }

let memory_words_for spec =
  (* Largest node is a full skip-list tower (19 words); add slack for the
     transient size overshoot of concurrent updates and for bucket/sentinel
     headers. *)
  ((spec.initial_size + (8 * spec.nthreads) + 64) * 24) + 8192

type result = {
  commits : int;
  aborts : int;
  throughput : float;
  abort_rate : float;
  stats : Tstm_tm.Tm_stats.t;
  elapsed : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%.0f txs/s (%d commits, %d aborts in %.4fs)"
    r.throughput r.commits r.aborts r.elapsed
