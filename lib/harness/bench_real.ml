(* Wall-clock benchmark harness over the real-hardware runtime.

   Mirrors [Scenario]'s STM packaging (TinySTM per write strategy, TL2)
   but instantiated over [Runtime_real], and drives [Driver.step] — the
   exact paper mix the simulator measures — under a Synchrobench-style
   protocol: a warmup phase, then [reps] fixed-duration timed repetitions
   against one long-lived structure, timed with the monotonic clock.

   Every counted operation is exactly one [atomically] (one commit), so a
   run carries machine-checkable integrity: total commits must equal total
   operations, the structure must return to its populated size (update
   transactions pair inserts with removals and each thread drains its
   pending removal after the deadline), and the word allocator must show
   zero drift against the post-populate baseline. *)

module R = Tstm_runtime.Runtime_real
module Mono = Tstm_obs.Monotonic
module Json = Tstm_obs.Json
module Bench = Tstm_obs.Bench
module Sink = Tstm_obs.Sink
module Stats = Tstm_tm.Tm_stats
module Intf = Tstm_tm.Tm_intf
module Config = Tinystm.Config

module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)
module No = Tstm_norec.Norec.Make (R)

(* Histogram notes carry no cpu argument; the sharded sink asks this hook
   for the recording domain's shard.  Runtime_real's tids are dense and
   bounded by the thread count, so they index shards directly. *)
let () = Sink.set_domain_id R.tid

(* A packaged STM over the real runtime.  [Intf.STM] carries [live_words]
   (the allocator diagnostic the integrity check needs) since PR 7, so no
   local signature extension remains. *)
module type STM = Intf.STM

let config_of_tuning strategy (tu : Intf.tuning) =
  Config.make ~n_locks:tu.Intf.n_locks ~shifts:tu.Intf.shifts
    ~hierarchy:tu.Intf.hierarchy ~hierarchy2:tu.Intf.hierarchy2 ~strategy ()

module Tinystm_packed (Strategy : sig
  val name : string
  val strategy : Config.strategy
end) : STM = struct
  include Ts

  let name = Strategy.name
  let family = "tinystm"

  let capabilities =
    {
      Intf.lock_array = true;
      dynamic_reconfig = true;
      read_only_fastpath = true;
      snapshot_extension = true;
    }

  let create ?(tuning = Intf.default_tuning) ?max_retries ?cm ?watchdog
      ~memory_words () =
    Ts.create
      ~config:(config_of_tuning Strategy.strategy tuning)
      ?max_retries ?cm ?watchdog ~memory_words ()

  let configure t tuning =
    Ts.set_config t (config_of_tuning Strategy.strategy tuning)

  let live_words t = V.live_words (Ts.memory t)
end

module Stm_wb = Tinystm_packed (struct
  let name = "tinystm-wb"
  let strategy = Config.Write_back
end)

module Stm_wt = Tinystm_packed (struct
  let name = "tinystm-wt"
  let strategy = Config.Write_through
end)

module Stm_tl2 : STM = struct
  include Tl

  let family = "tl2"

  let capabilities =
    {
      Intf.lock_array = true;
      dynamic_reconfig = false;
      read_only_fastpath = true;
      snapshot_extension = false;
    }

  let create ?(tuning = Intf.default_tuning) ?max_retries ?cm ?watchdog
      ~memory_words () =
    Tl.create ~n_locks:tuning.Intf.n_locks ~shifts:tuning.Intf.shifts
      ?max_retries ?cm ?watchdog ~memory_words ()

  let configure _ _ =
    Intf.capability_error ~stm:"tl2" ~capability:"dynamic_reconfig"

  let live_words t = V.live_words (Tl.memory t)
end

module Stm_norec : STM = struct
  include No

  let family = "norec"

  let capabilities =
    {
      Intf.lock_array = false;
      dynamic_reconfig = false;
      read_only_fastpath = true;
      snapshot_extension = true;
    }

  let create ?tuning:_ ?max_retries ?cm ?watchdog ~memory_words () =
    No.create ?max_retries ?cm ?watchdog ~memory_words ()

  let configure _ _ =
    Intf.capability_error ~stm:"norec" ~capability:"dynamic_reconfig"

  let live_words t = V.live_words (No.memory t)
end

let stms =
  [
    ("tinystm-wb", [ "wb" ], (module Stm_wb : STM));
    ("tinystm-wt", [ "wt" ], (module Stm_wt : STM));
    ("tl2", [], (module Stm_tl2 : STM));
    ("norec", [], (module Stm_norec : STM));
  ]

let stm_names = List.map (fun (n, _, _) -> n) stms

let find_stm name =
  let matches (canon, aliases, _) = canon = name || List.mem name aliases in
  match List.find_opt matches stms with
  | Some (canon, _, m) -> Ok (canon, m)
  | None ->
      Error
        (Printf.sprintf "unknown STM %S (known: %s)" name
           (String.concat ", " stm_names))

type protocol = {
  duration_s : float;
  warmup_s : float;
  reps : int;
  observe : bool;
}

let default_protocol =
  { duration_s = 0.2; warmup_s = 0.05; reps = 3; observe = false }

type integrity = {
  ops_total : int;
  commits_total : int;
  violations : string list;
  failed_reps : (int * string) list;
}

let rep_seed base rep = Tstm_util.Bitops.mix (base + (0x9e3779b9 * (rep + 1)))

(* Aggregate per-repetition latency percentiles (commit/abort, in
   nanoseconds on this runtime) from a merged sharded collector. *)
let latency_json (c : Sink.collector) =
  let module H = Tstm_obs.Histo in
  let pcts h =
    Json.Obj
      [
        ("count", Json.Int (H.count h));
        ("p50_ns", Json.Int (H.percentile h 50.0));
        ("p99_ns", Json.Int (H.percentile h 99.0));
      ]
  in
  Json.Obj
    [
      ("commit", pcts c.Sink.commit_latency);
      ("abort", pcts c.Sink.abort_latency);
    ]

let cell_stats_json ~observe ~shards cum =
  let base = [ ("tm", Stats.to_json cum) ] in
  let latency =
    if observe then [ ("latency", latency_json (Sink.merged shards)) ]
    else []
  in
  Json.Obj (base @ latency)

type cell_request = {
  stm : string;
  structure : string;  (** a [Workload.structure] name, or ["vacation"] *)
  domains : int;
  pattern : Workload.pattern;
  size : int;  (** initial size; [n_relations] for vacation *)
  update_pct : float;  (** [reserve_pct] for vacation *)
  seed : int;
}

let default_request =
  {
    stm = "tinystm-wb";
    structure = "rbtree";
    domains = 2;
    pattern = Workload.Uniform;
    size = 256;
    update_pct = 20.0;
    seed = 42;
  }

(* The intset/paper-mix cell. *)
let run_structure_cell (module M : STM) ~canon ~structure (req : cell_request)
    (p : protocol) =
  let module D = Driver.Make (R) (M) in
  let spec =
    Workload.make ~structure ~initial_size:req.size
      ~update_pct:req.update_pct ~nthreads:req.domains ~duration:p.duration_s
      ~seed:req.seed ~pattern:req.pattern ()
  in
  let t = M.create ~memory_words:(Workload.memory_words_for spec) () in
  let ops = D.make_structure t spec.Workload.structure in
  D.populate t ops spec;
  let live0 = M.live_words t in
  let nthreads = spec.Workload.nthreads in
  let ops_counts = Array.make nthreads 0 in
  let phase ~seconds ~rep =
    let t0 = Mono.now_ns () in
    let deadline = t0 + int_of_float (seconds *. 1e9) in
    R.run ~nthreads (fun tid ->
        let g =
          Tstm_util.Xrand.create (rep_seed (D.thread_seed spec tid) rep)
        in
        let ctx = D.thread_ctx spec tid in
        let pending = ref None in
        let mine = ref 0 in
        while Mono.now_ns () < deadline do
          D.step t ops spec ctx g pending;
          incr mine
        done;
        (match !pending with
        | Some v ->
            ignore (M.atomically t (fun tx -> ops.D.op_remove tx v));
            incr mine
        | None -> ());
        ops_counts.(tid) <- ops_counts.(tid) + !mine);
    Mono.elapsed_s ~since:t0
  in
  if p.warmup_s > 0.0 then ignore (phase ~seconds:p.warmup_s ~rep:(-1));
  M.reset_stats t;
  Array.fill ops_counts 0 nthreads 0;
  let shards = Array.init Sink.max_cpus (fun _ -> Sink.collector ()) in
  let in_sink f =
    if p.observe then Sink.with_sink (Sink.Sharded shards) f else f ()
  in
  let cum = Stats.create () in
  let prev = ref (Stats.create ()) in
  let failed_reps = ref [] in
  let samples =
    List.filter_map
      (fun rep ->
        match in_sink (fun () -> phase ~seconds:p.duration_s ~rep) with
        | elapsed_s ->
            (* Stats accumulate across repetitions; diff against the
               previous snapshot for this repetition's sample. *)
            let now_stats = M.stats t in
            let commits = now_stats.Stats.commits - !prev.Stats.commits in
            let aborts = Stats.aborts now_stats - Stats.aborts !prev in
            prev := Stats.copy now_stats;
            Some
              {
                Bench.thr = float_of_int commits /. elapsed_s;
                elapsed_s;
                commits;
                aborts;
              }
        | exception e ->
            (* A raising worker must not abort the whole bench run: [R.run]
               has already awaited every domain of this repetition, so the
               pool is reusable.  Record the repetition as a typed failure
               (it yields no sample) and keep going; the CLI exits non-zero
               on any failed repetition. *)
            prev := Stats.copy (M.stats t);
            failed_reps := (rep, Printexc.to_string e) :: !failed_reps;
            None)
      (List.init p.reps Fun.id)
  in
  Stats.add_into ~dst:cum (M.stats t);
  let ops_total = Array.fold_left ( + ) 0 ops_counts in
  let size_after = M.atomically t (fun tx -> ops.D.op_size tx) in
  let live_after = M.live_words t in
  let violations =
    List.concat
      [
        (if cum.Stats.commits <> ops_total then
           [
             Printf.sprintf "commits (%d) <> operations (%d)"
               cum.Stats.commits ops_total;
           ]
         else []);
        (if size_after <> spec.Workload.initial_size then
           [
             Printf.sprintf "structure size %d <> populated size %d"
               size_after spec.Workload.initial_size;
           ]
         else []);
        (if live_after <> live0 then
           [
             Printf.sprintf "allocator drift: %d live words vs baseline %d"
               live_after live0;
           ]
         else []);
      ]
  in
  let cell =
    {
      Bench.stm = canon;
      structure = Workload.structure_to_string structure;
      domains = req.domains;
      workload = Workload.pattern_to_string req.pattern;
      size = req.size;
      update_pct = req.update_pct;
      samples;
      stats = cell_stats_json ~observe:p.observe ~shards cum;
    }
  in
  ( cell,
    {
      ops_total;
      commits_total = cum.Stats.commits;
      violations;
      failed_reps = List.rev !failed_reps;
    } )

(* The Vacation cell: same protocol, STAMP-style mix, integrity via the
   workload's own transactional audit. *)
let run_vacation_cell (module M : STM) ~canon (req : cell_request)
    (p : protocol) =
  let module Vac = Tstm_vacation.Vacation.Make (M) in
  let spec =
    {
      Vac.default_spec with
      Vac.n_relations = req.size;
      n_customers = req.size;
      reserve_pct = req.update_pct;
    }
  in
  let t = M.create ~memory_words:(Vac.memory_words_for spec) () in
  let v = Vac.create t in
  let v = Vac.populate v spec ~seed:req.seed in
  let nthreads = req.domains in
  let ops_counts = Array.make nthreads 0 in
  let phase ~seconds ~rep =
    let t0 = Mono.now_ns () in
    let deadline = t0 + int_of_float (seconds *. 1e9) in
    R.run ~nthreads (fun tid ->
        let g =
          Tstm_util.Xrand.create
            (rep_seed (Tstm_util.Bitops.mix ((req.seed * 131) + tid)) rep)
        in
        let mine = ref 0 in
        while Mono.now_ns () < deadline do
          Vac.client_step v spec g;
          incr mine
        done;
        ops_counts.(tid) <- ops_counts.(tid) + !mine);
    Mono.elapsed_s ~since:t0
  in
  if p.warmup_s > 0.0 then ignore (phase ~seconds:p.warmup_s ~rep:(-1));
  M.reset_stats t;
  Array.fill ops_counts 0 nthreads 0;
  let shards = Array.init Sink.max_cpus (fun _ -> Sink.collector ()) in
  let in_sink f =
    if p.observe then Sink.with_sink (Sink.Sharded shards) f else f ()
  in
  let prev = ref (Stats.create ()) in
  let failed_reps = ref [] in
  let samples =
    List.filter_map
      (fun rep ->
        match in_sink (fun () -> phase ~seconds:p.duration_s ~rep) with
        | elapsed_s ->
            let now_stats = M.stats t in
            let commits = now_stats.Stats.commits - !prev.Stats.commits in
            let aborts = Stats.aborts now_stats - Stats.aborts !prev in
            prev := Stats.copy now_stats;
            Some
              {
                Bench.thr = float_of_int commits /. elapsed_s;
                elapsed_s;
                commits;
                aborts;
              }
        | exception e ->
            (* Same contract as the structure cell: a raising worker fails
               this repetition, not the run. *)
            prev := Stats.copy (M.stats t);
            failed_reps := (rep, Printexc.to_string e) :: !failed_reps;
            None)
      (List.init p.reps Fun.id)
  in
  let cum = Stats.copy (M.stats t) in
  let ops_total = Array.fold_left ( + ) 0 ops_counts in
  let audit =
    match Vac.check_consistency v with
    | () -> []
    | exception Vac.Inconsistent msg ->
        [ Printf.sprintf "vacation audit failed: %s" msg ]
  in
  let violations =
    (if cum.Stats.commits <> ops_total then
       [
         Printf.sprintf "commits (%d) <> operations (%d)" cum.Stats.commits
           ops_total;
       ]
     else [])
    @ audit
  in
  let cell =
    {
      Bench.stm = canon;
      structure = "vacation";
      domains = req.domains;
      workload = "stamp";
      size = req.size;
      update_pct = req.update_pct;
      samples;
      stats = cell_stats_json ~observe:p.observe ~shards cum;
    }
  in
  ( cell,
    {
      ops_total;
      commits_total = cum.Stats.commits;
      violations;
      failed_reps = List.rev !failed_reps;
    } )

let run_cell (req : cell_request) (p : protocol) =
  if req.domains < 1 then Error "domains must be >= 1"
  else if p.reps < 1 then Error "reps must be >= 1"
  else if p.duration_s <= 0.0 then Error "duration must be > 0"
  else
    match find_stm req.stm with
    | Error _ as e -> e
    | Ok (canon, m) -> (
        if req.structure = "vacation" then
          Ok (run_vacation_cell m ~canon req p)
        else
          match Workload.structure_of_string req.structure with
          | Some s -> Ok (run_structure_cell m ~canon ~structure:s req p)
          | None ->
              Error
                (Printf.sprintf
                   "unknown structure %S (known: list, rbtree, skiplist, \
                    hashset, vacation)"
                   req.structure))

let snapshot ~rev ~created_unix (p : protocol) cells =
  {
    Bench.rev;
    created_unix;
    duration_s = p.duration_s;
    warmup_s = p.warmup_s;
    reps = p.reps;
    host = Bench.host ();
    cells;
  }
