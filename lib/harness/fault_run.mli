(** Seeded fault sweeps on real domains: the `repro fault` driver.

    One run arms a {!Tstm_fault.Fault} plan biased toward a single fault
    kind, drives the paper's transaction mix ({!Driver.step}) on real
    domains under {!Tstm_runtime.Runtime_real.run_healed}, and audits the
    aftermath: the run must complete with no escaped exception (crashes
    healed by respawn-and-requeue, hangs outlived, injected [Out_of_memory]
    absorbed by the STM's allocation-failed retry), the structure must
    drain cleanly, and the arena must return to its pre-populate skeleton
    baseline — zero [live_words] drift.

    Requeued jobs replay their operations from the start, so per-run
    commit counts are not an invariant; the evidence is exception-freedom
    plus allocator- and structure-consistency.  Sweeps are sequential and
    in-process (real domains cannot be forked into {!Tstm_exec} jobs). *)

type spec = {
  stm : string;  (** {!Bench_real} name or alias *)
  kind : Tstm_fault.Fault.kind;  (** the fault kind this plan arms *)
  structure : Workload.structure;
  domains : int;
  per_thread : int;  (** operations per worker job *)
  key_range : int;
  initial_size : int;
  update_pct : float;
  limit : int option;
      (** cap on fired injections (replay a schedule).  [None] means
          unlimited for hang/OOM plans but [4 * domains] for crash plans:
          an uncapped crash storm would kill nearly every replay of a
          requeued job and exhaust the pool's requeue budget. *)
  seed : int;
}

val default : spec
(** [tinystm-wb] hashset, 3 domains x 400 ops, crash kind, seed 42. *)

type report = {
  fired : int;  (** injections fired by the plan *)
  decisions : int;  (** consultations drawn *)
  heal : Tstm_runtime.Runtime_real.heal_report;
  commits : int;
  aborts_alloc : int;  (** allocation-failed aborts absorbed *)
  capacities : int;  (** typed [Capacity] escalations absorbed *)
  leak_words : int;  (** arena drift after drain (0 = healed cleanly) *)
  violations : string list;
  error : string option;  (** escaped exception — healing failed *)
}

val healed : report -> bool
(** No escaped exception, no violations, zero drift. *)

val run_one : spec -> report
(** Raises [Invalid_argument] on malformed specs (unknown STM,
    [domains < 1], ...).  Always disarms the plan before returning. *)

val plan :
  seeds:int ->
  stms:string list ->
  kinds:Tstm_fault.Fault.kind list ->
  spec ->
  spec array
(** Ordered sweep: seeds (outer) x stm x kind (inner). *)

val repro_command : spec -> string
(** The `repro fault ...` command line replaying exactly this spec. *)
