(* Hot-spot RMW storm: the progress-guarantee workload.

   Threads run in pairs; each pair hammers the same two words with
   read-modify-write transactions, and the two threads of a pair touch the
   words in opposite orders.  Under a contention manager with no aborter
   preference (suicide) the pair can shadow-box forever — exactly the
   livelock shape the watchdog exists to detect.  Priority-based managers
   (karma, greedy) break the symmetry and every thread completes its commit
   quota.

   Everything is deterministic from the spec; a virtual-time deadline bounds
   livelocked runs, so even a run that makes no progress terminates. *)

module R = Tstm_runtime.Runtime_sim
module Registry = Tstm_tm.Registry
module Cm = Tstm_cm.Cm
module Watchdog = Tstm_runtime.Watchdog

(* The STM registry is populated by [Scenario]'s initializer; depend on it
   explicitly so linking Storm alone is enough to resolve STM names. *)
let () = ignore (Sys.opaque_identity Scenario.all_stms)

type spec = {
  stm : string;
  cm : string;
  nthreads : int;
  quota : int;
  deadline : float;
  watchdog : bool;
  wd_window : int;
  wd_starve : int;
  wd_calm : int;
  seed : int;
}

(* The default zero-commit window is deliberately tight: the storm's retry
   loop burns only a few hundred cycles per attempt, so the watchdog's
   repo-wide 50k-cycle default would let the starvation ceiling fire first
   every time.  1024 cycles makes the livelock detector the one that trips
   — the signal this workload exists to demonstrate. *)
let default =
  {
    stm = "tinystm-wb";
    cm = "suicide";
    nthreads = 4;
    quota = 32;
    deadline = 0.002;
    watchdog = false;
    wd_window = 1024;
    wd_starve = 64;
    wd_calm = 2;
    seed = 0;
  }

type report = {
  commits : int array;
  completed : bool;
  livelocks : int;
  starvations : int;
  switches : int;
  escalations : int;
  killed : int;
  elapsed : float;
}

let repro_command spec =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "repro storm --stm %s --cm %s --seed %d" spec.stm spec.cm
       spec.seed);
  if spec.nthreads <> default.nthreads then
    Buffer.add_string b (Printf.sprintf " --threads %d" spec.nthreads);
  if spec.quota <> default.quota then
    Buffer.add_string b (Printf.sprintf " --quota %d" spec.quota);
  if spec.watchdog then Buffer.add_string b " --watchdog";
  if spec.wd_window <> default.wd_window then
    Buffer.add_string b (Printf.sprintf " --watchdog-window %d" spec.wd_window);
  if spec.wd_starve <> default.wd_starve then
    Buffer.add_string b
      (Printf.sprintf " --watchdog-retry-ceiling %d" spec.wd_starve);
  if spec.wd_calm <> default.wd_calm then
    Buffer.add_string b (Printf.sprintf " --watchdog-calm %d" spec.wd_calm);
  Buffer.contents b

(* The deadline escape: raised from inside the transaction body (before any
   transactional access, so there is nothing to undo even when irrevocable);
   [atomically] rolls back and lets it propagate. *)
exception Deadline

let run_one spec =
  if spec.nthreads < 2 then invalid_arg "Storm.run_one: need >= 2 threads";
  let policy =
    match Cm.of_string spec.cm with
    | Ok p -> p
    | Error msg -> invalid_arg ("Storm.run_one: " ^ msg)
  in
  let wd =
    if spec.watchdog then
      Some
        (Watchdog.create ~window:spec.wd_window
           ~starve_retries:spec.wd_starve ~recover_windows:spec.wd_calm ())
    else None
  in
  let (module M) = Registry.get spec.stm in
  let npairs = (spec.nthreads + 1) / 2 in
  let t =
    M.create ~cm:policy ?watchdog:wd ~memory_words:((npairs * 16) + 64) ()
  in
  let base =
    M.atomically t (fun tx ->
        let b = M.alloc tx (npairs * 16) in
        for i = 0 to (npairs * 16) - 1 do
          M.write tx (b + i) 0
        done;
        b)
  in
  let commits = Array.make spec.nthreads 0 in
  let elapsed = ref 0.0 in
  R.run ~nthreads:spec.nthreads (fun tid ->
      (* Pair words live 8 words apart: distinct addresses, distinct locks
         under the default lock hash. *)
      let a = base + (16 * (tid / 2)) in
      let b = a + 8 in
      let first, second = if tid land 1 = 0 then (a, b) else (b, a) in
      (* A small deterministic per-thread stagger so threads do not start in
         artificial perfect phase; the livelock, when it happens, comes from
         the conflict pattern, not from the starting line. *)
      let g =
        Tstm_util.Xrand.create
          (Tstm_util.Bitops.mix ((spec.seed * 65599) + tid))
      in
      R.charge_local (Tstm_util.Xrand.int g 64);
      let t0 = R.now () in
      (try
         while commits.(tid) < spec.quota do
           ignore
             (M.atomically t (fun tx ->
                  if R.now () -. t0 >= spec.deadline then raise Deadline;
                  let x = M.read tx first in
                  let y = M.read tx second in
                  M.write tx first (x + 1);
                  M.write tx second (y + 1);
                  x + y));
           commits.(tid) <- commits.(tid) + 1
         done
       with Deadline -> ());
      if R.now () > !elapsed then elapsed := R.now ());
  let stats = M.stats t in
  {
    commits;
    completed = Array.for_all (fun c -> c >= spec.quota) commits;
    livelocks = (match wd with None -> 0 | Some w -> Watchdog.livelocks w);
    starvations =
      (match wd with None -> 0 | Some w -> Watchdog.starvations w);
    switches = (match wd with None -> 0 | Some w -> Watchdog.switches w);
    escalations = stats.Tstm_tm.Tm_stats.escalations;
    killed = stats.Tstm_tm.Tm_stats.aborts_killed;
    elapsed = !elapsed;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<h>storm: %s commits=[%s] livelocks=%d starvations=%d switches=%d \
     escalations=%d killed=%d elapsed=%.6fs@]"
    (if r.completed then "completed" else "INCOMPLETE")
    (String.concat ";" (Array.to_list (Array.map string_of_int r.commits)))
    r.livelocks r.starvations r.switches r.escalations r.killed r.elapsed
