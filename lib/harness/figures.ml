(* Figure regeneration, decomposed into independent cells.

   Every figure is built twice through the same builder code, parameterised
   by an [eval : cell -> value] callback:

   - [plan] runs the builder with an eval that records each requested cell
     (returning a dummy value) and yields the ordered cell array;
   - [assemble] runs it again with an eval that pops the next value from a
     rank-indexed array and yields the printable outputs.

   Both traversals are structurally identical, so rank [i] of the plan
   always matches value [i] of the assembly — which is what lets the
   multi-process sweep runner ([Tstm_exec]) execute the cells in any order
   on any number of workers and still reassemble byte-identical output.
   [run_figure] is the sequential composition of the three. *)

module Series = Tstm_util.Series
module Config = Tinystm.Config

type profile = {
  label : string;
  dur_tree : float;
  dur_list : float;
  threads : int list;
  fig5_sizes : int list;
  fig5_updates : float list;
  surface_size : int;
  surface_lock_exps : int list;
  surface_shifts : int list;
  fig7_lock_exps : int list;
  fig7_shifts : int list;
  fig7_relations : int;
  fig8_h : int list;
  fig9_lock_exps : int list;
  fig9_h : int list;
  tune_size : int;
  tune_period : float;
  tune_steps : int;
}

let quick =
  {
    label = "quick";
    dur_tree = 0.002;
    dur_list = 0.002;
    threads = [ 1; 2; 4; 8 ];
    fig5_sizes = [ 256; 1024; 4096 ];
    fig5_updates = [ 0.0; 20.0; 60.0; 100.0 ];
    surface_size = 1024;
    surface_lock_exps = [ 8; 12; 16; 20; 24 ];
    surface_shifts = [ 0; 2; 4; 6 ];
    fig7_lock_exps = [ 16; 20; 24 ];
    fig7_shifts = [ 0; 4; 8 ];
    fig7_relations = 2048;
    fig8_h = [ 4; 64 ];
    fig9_lock_exps = [ 8; 12; 16; 20; 24 ];
    fig9_h = [ 4; 16; 64; 256 ];
    tune_size = 1024;
    tune_period = 0.001;
    tune_steps = 12;
  }

let full =
  {
    label = "full";
    dur_tree = 0.005;
    dur_list = 0.004;
    threads = [ 1; 2; 4; 6; 8 ];
    fig5_sizes = [ 256; 512; 1024; 2048; 4096 ];
    fig5_updates = [ 0.0; 20.0; 40.0; 60.0; 80.0; 100.0 ];
    surface_size = 4096;
    surface_lock_exps = [ 8; 12; 16; 20; 24 ];
    surface_shifts = [ 0; 1; 2; 3; 4; 5; 6 ];
    fig7_lock_exps = [ 16; 18; 20; 22; 24 ];
    fig7_shifts = [ 0; 2; 4; 6; 8 ];
    fig7_relations = 8192;
    fig8_h = [ 4; 16; 64 ];
    fig9_lock_exps = [ 8; 10; 12; 14; 16; 18; 20; 22; 24 ];
    fig9_h = [ 4; 16; 64; 256 ];
    tune_size = 4096;
    tune_period = 0.002;
    tune_steps = 20;
  }

type output = Table of Series.table | Surface of Series.surface

let print_output = function
  | Table t -> Series.print_table t
  | Surface s -> Series.print_surface s

(* ------------------------------------------------------------------ *)
(* Cells                                                               *)
(* ------------------------------------------------------------------ *)

type cell =
  | Intset_cell of {
      stm : string;
      n_locks : int;
      shifts : int;
      hierarchy : int;
      hierarchy2 : int;
      spec : Workload.spec;
    }
  | Vacation_cell of {
      n_locks : int;
      shifts : int;
      hierarchy : int;
      n_relations : int;
      nthreads : int;
      duration : float;
      seed : int;
    }
  | Autotune_cell of {
      structure : Workload.structure;
      size : int;
      period : float;
      steps : int;
    }

type value = Result of Workload.result | Trace of Scenario.tune_trace

let cell_label = function
  | Intset_cell { stm; spec; n_locks; shifts; hierarchy; _ } ->
      Printf.sprintf "%s %s n=%d u=%.0f%% t=%d locks=2^%d sh=%d h=%d" stm
        (Workload.structure_to_string spec.Workload.structure)
        spec.Workload.initial_size spec.Workload.update_pct
        spec.Workload.nthreads
        (Tstm_util.Bitops.log2 n_locks)
        shifts hierarchy
  | Vacation_cell { n_locks; shifts; n_relations; _ } ->
      Printf.sprintf "vacation rel=%d locks=2^%d sh=%d" n_relations
        (Tstm_util.Bitops.log2 n_locks)
        shifts
  | Autotune_cell { structure; size; steps; _ } ->
      Printf.sprintf "autotune %s n=%d steps=%d"
        (Workload.structure_to_string structure)
        size steps

(* Autotuned traces are expensive and shared between Figs. 11 and 12, so
   their evaluation is memoised process-wide (the simulator is
   deterministic, so the cache is semantically invisible). *)
let trace_cache : (cell, value) Hashtbl.t = Hashtbl.create 4

let eval_cell cell =
  match cell with
  | Intset_cell { stm; n_locks; shifts; hierarchy; hierarchy2; spec } ->
      Result
        (Scenario.run_intset ~stm ~n_locks ~shifts ~hierarchy ~hierarchy2 spec)
  | Vacation_cell
      { n_locks; shifts; hierarchy; n_relations; nthreads; duration; seed } ->
      let spec =
        {
          Scenario.Vac.default_spec with
          Scenario.Vac.n_relations;
          n_customers = n_relations;
        }
      in
      Result
        (Scenario.run_vacation ~n_locks ~shifts ~hierarchy ~spec ~nthreads
           ~duration ~seed ())
  | Autotune_cell { structure; size; period; steps } -> (
      match Hashtbl.find_opt trace_cache cell with
      | Some v -> v
      | None ->
          let spec =
            Workload.make ~structure ~initial_size:size ~update_pct:20.0
              ~nthreads:8 ~duration:1.0 ()
          in
          let v =
            Trace (Scenario.run_intset_autotuned ~period ~n_steps:steps spec)
          in
          Hashtbl.replace trace_cache cell v;
          v)

(* ------------------------------------------------------------------ *)
(* Builders, parameterised by eval                                     *)
(* ------------------------------------------------------------------ *)

type eval = cell -> value

let res = function
  | Result r -> r
  | Trace _ -> invalid_arg "Figures: cell evaluated to a trace, expected a run"

let trace = function
  | Trace t -> t
  | Result _ ->
      invalid_arg "Figures: cell evaluated to a run, expected a trace"

let default_locks = Config.default.Config.n_locks

let intset (ev : eval) ~stm ?(n_locks = default_locks) ?(shifts = 0)
    ?(hierarchy = 1) ?(hierarchy2 = 1) spec =
  res (ev (Intset_cell { stm; n_locks; shifts; hierarchy; hierarchy2; spec }))

let kilo x = x /. 1000.0

let duration_of p (structure : Workload.structure) =
  match structure with
  | Workload.List -> p.dur_list
  | Workload.Rbtree | Workload.Skiplist | Workload.Hashset -> p.dur_tree

(* ------------------------------------------------------------------ *)
(* Figures 2-3: throughput vs. threads                                 *)
(* ------------------------------------------------------------------ *)

let threads_table ev p ~title ~structure ~size ~update_pct ~overwrite_pct
    ~measure =
  let columns =
    List.map
      (fun stm ->
        let col =
          List.map
            (fun n ->
              let spec =
                Workload.make ~structure ~initial_size:size
                  ~update_pct ~overwrite_pct ~nthreads:n
                  ~duration:(duration_of p structure) ()
              in
              measure (intset ev ~stm spec))
            p.threads
        in
        (Scenario.stm_label stm, Array.of_list col))
      Scenario.all_stms
  in
  {
    Series.title;
    x_label = "threads";
    x = Array.of_list (List.map float_of_int p.threads);
    columns;
  }

let throughput_k (r : Workload.result) = kilo r.Workload.throughput
let aborts_k (r : Workload.result) = kilo r.Workload.abort_rate

let fig2 ev p =
  [
    Table
      (threads_table ev p
         ~title:"Fig 2a: Red-black tree, 256 elements, 20% updates (x10^3 txs/s)"
         ~structure:Workload.Rbtree ~size:256 ~update_pct:20.0
         ~overwrite_pct:0.0 ~measure:throughput_k);
    Table
      (threads_table ev p
         ~title:"Fig 2b: Red-black tree, 4096 elements, 20% updates (x10^3 txs/s)"
         ~structure:Workload.Rbtree ~size:4096 ~update_pct:20.0
         ~overwrite_pct:0.0 ~measure:throughput_k);
    Table
      (threads_table ev p
         ~title:"Fig 2c: Red-black tree, 4096 elements, 60% updates (x10^3 txs/s)"
         ~structure:Workload.Rbtree ~size:4096 ~update_pct:60.0
         ~overwrite_pct:0.0 ~measure:throughput_k);
  ]

let fig3 ev p =
  [
    Table
      (threads_table ev p
         ~title:"Fig 3a: Linked list, 256 elements, 0% updates (x10^3 txs/s)"
         ~structure:Workload.List ~size:256 ~update_pct:0.0 ~overwrite_pct:0.0
         ~measure:throughput_k);
    Table
      (threads_table ev p
         ~title:"Fig 3b: Linked list, 256 elements, 20% updates (x10^3 txs/s)"
         ~structure:Workload.List ~size:256 ~update_pct:20.0
         ~overwrite_pct:0.0 ~measure:throughput_k);
    Table
      (threads_table ev p
         ~title:"Fig 3c: Linked list, 4096 elements, 20% updates (x10^3 txs/s)"
         ~structure:Workload.List ~size:4096 ~update_pct:20.0
         ~overwrite_pct:0.0 ~measure:throughput_k);
  ]

let fig4 ev p =
  [
    Table
      (threads_table ev p
         ~title:"Fig 4a: Aborts, red-black tree, 4096 elements, 20% updates (x10^3/s)"
         ~structure:Workload.Rbtree ~size:4096 ~update_pct:20.0
         ~overwrite_pct:0.0 ~measure:aborts_k);
    Table
      (threads_table ev p
         ~title:"Fig 4b: Aborts, linked list, 256 elements, 20% updates (x10^3/s)"
         ~structure:Workload.List ~size:256 ~update_pct:20.0
         ~overwrite_pct:0.0 ~measure:aborts_k);
    Table
      (threads_table ev p
         ~title:
           "Fig 4c: Throughput, linked list, 256 elements, 5% overwrites (x10^3 txs/s)"
         ~structure:Workload.List ~size:256 ~update_pct:0.0 ~overwrite_pct:5.0
         ~measure:throughput_k);
  ]

(* ------------------------------------------------------------------ *)
(* Figure 5: size x update-rate surfaces (8 threads)                   *)
(* ------------------------------------------------------------------ *)

let fig5 ev p =
  let surface structure stm =
    let values =
      List.map
        (fun size ->
          Array.of_list
            (List.map
               (fun upd ->
                 let spec =
                   Workload.make ~structure ~initial_size:size ~update_pct:upd
                     ~nthreads:8 ~duration:(duration_of p structure) ()
                 in
                 kilo (intset ev ~stm spec).Workload.throughput)
               p.fig5_updates))
        p.fig5_sizes
    in
    {
      Series.s_title =
        Printf.sprintf "Fig 5: %s, %s, 8 threads (x10^3 txs/s)"
          (Workload.structure_to_string structure)
          (Scenario.stm_label stm);
      row_label = "size";
      col_label = "update%";
      rows = Array.of_list (List.map float_of_int p.fig5_sizes);
      cols = Array.of_list p.fig5_updates;
      values = Array.of_list values;
    }
  in
  List.concat_map
    (fun structure ->
      List.map (fun stm -> Surface (surface structure stm)) Scenario.all_stms)
    [ Workload.Rbtree; Workload.List ]

(* ------------------------------------------------------------------ *)
(* Figures 6-8: locks x shifts surfaces                                *)
(* ------------------------------------------------------------------ *)

let locks_shifts_surface ev p ~title ~structure ~size ~hierarchy ~lock_exps
    ~shifts =
  let values =
    List.map
      (fun s ->
        Array.of_list
          (List.map
             (fun e ->
               let spec =
                 Workload.make ~structure ~initial_size:size ~update_pct:20.0
                   ~nthreads:8 ~duration:(duration_of p structure) ()
               in
               kilo
                 (intset ev ~stm:"tinystm-wb" ~n_locks:(1 lsl e) ~shifts:s
                    ~hierarchy spec)
                   .Workload.throughput)
             lock_exps))
      shifts
  in
  {
    Series.s_title = title;
    row_label = "#shifts";
    col_label = "log2(#locks)";
    rows = Array.of_list (List.map float_of_int shifts);
    cols = Array.of_list (List.map float_of_int lock_exps);
    values = Array.of_list values;
  }

let fig6 ev p =
  [
    Surface
      (locks_shifts_surface ev p
         ~title:
           (Printf.sprintf
              "Fig 6a: red-black tree, h=4, size=%d, 20%% updates, 8 threads (x10^3 txs/s)"
              p.surface_size)
         ~structure:Workload.Rbtree ~size:p.surface_size ~hierarchy:4
         ~lock_exps:p.surface_lock_exps ~shifts:p.surface_shifts);
    Surface
      (locks_shifts_surface ev p
         ~title:
           (Printf.sprintf
              "Fig 6b: linked list, h=4, size=%d, 20%% updates, 8 threads (x10^3 txs/s)"
              p.surface_size)
         ~structure:Workload.List ~size:p.surface_size ~hierarchy:4
         ~lock_exps:p.surface_lock_exps ~shifts:p.surface_shifts);
  ]

let fig7 ev p =
  let values =
    List.map
      (fun s ->
        Array.of_list
          (List.map
             (fun e ->
               let r =
                 res
                   (ev
                      (Vacation_cell
                         {
                           n_locks = 1 lsl e;
                           shifts = s;
                           hierarchy = 4;
                           n_relations = p.fig7_relations;
                           nthreads = 8;
                           duration = p.dur_tree;
                           seed = 7;
                         }))
               in
               kilo r.Workload.throughput)
             p.fig7_lock_exps))
      p.fig7_shifts
  in
  [
    Surface
      {
        Series.s_title =
          Printf.sprintf
            "Fig 7: STAMP Vacation (%d relations), h=4, 8 threads (x10^3 txs/s)"
            p.fig7_relations;
        row_label = "#shifts";
        col_label = "log2(#locks)";
        rows = Array.of_list (List.map float_of_int p.fig7_shifts);
        cols = Array.of_list (List.map float_of_int p.fig7_lock_exps);
        values = Array.of_list values;
      };
  ]

let fig8 ev p =
  List.concat_map
    (fun structure ->
      List.map
        (fun h ->
          Surface
            (locks_shifts_surface ev p
               ~title:
                 (Printf.sprintf
                    "Fig 8: hierarchical %s, h=%d, size=%d, 20%% updates, 8 threads (x10^3 txs/s)"
                    (Workload.structure_to_string structure)
                    h p.surface_size)
               ~structure ~size:p.surface_size ~hierarchy:h
               ~lock_exps:p.surface_lock_exps ~shifts:p.surface_shifts))
        p.fig8_h)
    [ Workload.Rbtree; Workload.List ]

(* ------------------------------------------------------------------ *)
(* Figure 9: improvement percentages along each tuning axis            *)
(* ------------------------------------------------------------------ *)

let improvement_column values =
  let min_v = Array.fold_left Float.min values.(0) values in
  Array.map (fun v -> (v -. min_v) /. min_v *. 100.0) values

let fig9 ev p =
  let run ~structure ~n_locks ~shifts ~hierarchy =
    let spec =
      Workload.make ~structure ~initial_size:p.surface_size ~update_pct:20.0
        ~nthreads:8 ~duration:(duration_of p structure) ()
    in
    (intset ev ~stm:"tinystm-wb" ~n_locks ~shifts ~hierarchy spec)
      .Workload.throughput
  in
  let curve xs f = improvement_column (Array.of_list (List.map f xs)) in
  let left =
    {
      Series.title =
        Printf.sprintf
          "Fig 9a: improvement%% vs #locks (size=%d, 20%%, 8 threads)"
          p.surface_size;
      x_label = "log2(#locks)";
      x = Array.of_list (List.map float_of_int p.fig9_lock_exps);
      columns =
        [
          ( "rbtree h=4 shift=3",
            curve p.fig9_lock_exps (fun e ->
                run ~structure:Workload.Rbtree ~n_locks:(1 lsl e) ~shifts:3
                  ~hierarchy:4) );
          ( "list h=4 shift=2",
            curve p.fig9_lock_exps (fun e ->
                run ~structure:Workload.List ~n_locks:(1 lsl e) ~shifts:2
                  ~hierarchy:4) );
          ( "rbtree h=64 shift=3",
            curve p.fig9_lock_exps (fun e ->
                run ~structure:Workload.Rbtree ~n_locks:(1 lsl e) ~shifts:3
                  ~hierarchy:64) );
          ( "list h=64 shift=2",
            curve p.fig9_lock_exps (fun e ->
                run ~structure:Workload.List ~n_locks:(1 lsl e) ~shifts:2
                  ~hierarchy:64) );
        ];
    }
  in
  let locks22 = 1 lsl 22 in
  let middle =
    {
      Series.title =
        Printf.sprintf
          "Fig 9b: improvement%% vs #shifts (size=%d, 20%%, 8 threads, locks=2^22)"
          p.surface_size;
      x_label = "#shifts";
      x = Array.of_list (List.map float_of_int p.surface_shifts);
      columns =
        [
          ( "rbtree h=4",
            curve p.surface_shifts (fun s ->
                run ~structure:Workload.Rbtree ~n_locks:locks22 ~shifts:s
                  ~hierarchy:4) );
          ( "list h=4",
            curve p.surface_shifts (fun s ->
                run ~structure:Workload.List ~n_locks:locks22 ~shifts:s
                  ~hierarchy:4) );
          ( "rbtree h=64",
            curve p.surface_shifts (fun s ->
                run ~structure:Workload.Rbtree ~n_locks:locks22 ~shifts:s
                  ~hierarchy:64) );
          ( "list h=64",
            curve p.surface_shifts (fun s ->
                run ~structure:Workload.List ~n_locks:locks22 ~shifts:s
                  ~hierarchy:64) );
        ];
    }
  in
  let right =
    {
      Series.title =
        Printf.sprintf
          "Fig 9c: improvement%% vs h (size=%d, 20%%, 8 threads, locks=2^22)"
          p.surface_size;
      x_label = "h";
      x = Array.of_list (List.map float_of_int p.fig9_h);
      columns =
        [
          ( "rbtree shift=3",
            curve p.fig9_h (fun h ->
                run ~structure:Workload.Rbtree ~n_locks:locks22 ~shifts:3
                  ~hierarchy:h) );
          ( "list shift=3",
            curve p.fig9_h (fun h ->
                run ~structure:Workload.List ~n_locks:locks22 ~shifts:3
                  ~hierarchy:h) );
          ( "rbtree shift=2",
            curve p.fig9_h (fun h ->
                run ~structure:Workload.Rbtree ~n_locks:locks22 ~shifts:2
                  ~hierarchy:h) );
          ( "list shift=2",
            curve p.fig9_h (fun h ->
                run ~structure:Workload.List ~n_locks:locks22 ~shifts:2
                  ~hierarchy:h) );
        ];
    }
  in
  [ Table left; Table middle; Table right ]

(* ------------------------------------------------------------------ *)
(* Figures 10-12: dynamic tuning traces                                *)
(* ------------------------------------------------------------------ *)

let autotune_trace ev p structure =
  trace
    (ev
       (Autotune_cell
          {
            structure;
            size = p.tune_size;
            period = p.tune_period;
            steps = p.tune_steps;
          }))

let trace_table title (steps : Tstm_tuning.Tuner.step list) =
  let n = List.length steps in
  let col f = Array.of_list (List.map f steps) in
  {
    Series.title;
    x_label = "step";
    x = Array.init n (fun i -> float_of_int (i + 1));
    columns =
      [
        ( "log2(locks)",
          col (fun s ->
              float_of_int
                (Tstm_util.Bitops.log2 s.Tstm_tuning.Tuner.config.Config.n_locks)) );
        ( "shifts",
          col (fun s -> float_of_int s.Tstm_tuning.Tuner.config.Config.shifts) );
        ( "h",
          col (fun s ->
              float_of_int s.Tstm_tuning.Tuner.config.Config.hierarchy) );
        ( "throughput k/s",
          col (fun s -> kilo s.Tstm_tuning.Tuner.throughput) );
        ( "move",
          col (fun s ->
              float_of_string
                (Tstm_tuning.Tuner.move_label s.Tstm_tuning.Tuner.move)) );
      ];
  }

let fig10 ev p =
  let tr = autotune_trace ev p Workload.Rbtree in
  [
    Table
      (trace_table
         (Printf.sprintf
            "Fig 10: auto-tuning path, red-black tree, size=%d, 8 threads"
            p.tune_size)
         tr.Scenario.steps);
  ]

let fig11 ev p =
  let tr = autotune_trace ev p Workload.List in
  [
    Table
      (trace_table
         (Printf.sprintf
            "Fig 11: auto-tuning path, linked list, size=%d, 8 threads"
            p.tune_size)
         tr.Scenario.steps);
  ]

let fig12 ev p =
  let tr = autotune_trace ev p Workload.List in
  let n = List.length tr.Scenario.validation_rates in
  [
    Table
      {
        Series.title =
          Printf.sprintf
            "Fig 12: validation locks processed vs skipped, linked list, size=%d, auto-tuning (x10^6/s)"
            p.tune_size;
        x_label = "step";
        x = Array.init n (fun i -> float_of_int (i + 1));
        columns =
          [
            ( "processed M/s",
              Array.of_list
                (List.map
                   (fun (pr, _) -> pr /. 1e6)
                   tr.Scenario.validation_rates) );
            ( "skipped M/s",
              Array.of_list
                (List.map
                   (fun (_, sk) -> sk /. 1e6)
                   tr.Scenario.validation_rates) );
          ];
      };
  ]

(* ------------------------------------------------------------------ *)
(* Plan / assemble / run                                               *)
(* ------------------------------------------------------------------ *)

let fig_numbers = [ 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let describe = function
  | 2 -> "Red-black tree throughput vs threads (3 panels)"
  | 3 -> "Linked list throughput vs threads (3 panels)"
  | 4 -> "Abort rates (tree, list) and large-write-set list throughput"
  | 5 -> "Throughput vs structure size x update rate, 8 threads"
  | 6 -> "Throughput vs #locks x #shifts (tree, list), h=4"
  | 7 -> "Throughput vs #locks x #shifts, STAMP Vacation"
  | 8 -> "Influence of hierarchical-array size h on the locks/shifts surface"
  | 9 -> "Improvement % along each tuning axis (locks, shifts, h)"
  | 10 -> "Hill-climbing auto-tuning path, red-black tree"
  | 11 -> "Hill-climbing auto-tuning path, linked list"
  | 12 -> "Validation locks processed vs skipped under auto-tuning"
  | _ -> "unknown figure"

let build ev p = function
  | 2 -> fig2 ev p
  | 3 -> fig3 ev p
  | 4 -> fig4 ev p
  | 5 -> fig5 ev p
  | 6 -> fig6 ev p
  | 7 -> fig7 ev p
  | 8 -> fig8 ev p
  | 9 -> fig9 ev p
  | 10 -> fig10 ev p
  | 11 -> fig11 ev p
  | 12 -> fig12 ev p
  | n -> invalid_arg (Printf.sprintf "Figures: no figure %d" n)

(* The dummy values handed out while planning: builders may compute on them
   (ratios, percentages), but the plan-mode outputs are discarded. *)
let dummy_value = function
  | Intset_cell _ | Vacation_cell _ ->
      Result
        {
          Workload.commits = 0;
          aborts = 0;
          throughput = 0.0;
          abort_rate = 0.0;
          stats = Tstm_tm.Tm_stats.create ();
          elapsed = 0.0;
        }
  | Autotune_cell _ ->
      Trace { Scenario.steps = []; validation_rates = [] }

let plan p n =
  let acc = ref [] in
  let ev cell =
    acc := cell :: !acc;
    dummy_value cell
  in
  ignore (build ev p n);
  Array.of_list (List.rev !acc)

let assemble p n values =
  let next = ref 0 in
  let ev _cell =
    if !next >= Array.length values then
      invalid_arg "Figures.assemble: too few values for plan";
    let v = values.(!next) in
    incr next;
    v
  in
  let out = build ev p n in
  if !next <> Array.length values then
    invalid_arg "Figures.assemble: too many values for plan";
  out

let run_figure p n = assemble p n (Array.map eval_cell (plan p n))
