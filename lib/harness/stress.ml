(* Chaos stress harness: seed sweeps, serializability checking, shrinking.

   One [run_one] executes a fully deterministic chaos run: build a fresh STM
   instance, run [nthreads] threads of random single-operation transactions
   under an active chaos plan, read the final contents, and check the
   recorded history against sequential set semantics.  Everything is keyed
   by the spec, so a failing spec *is* the repro — [repro_command] renders
   it as a `repro stress` invocation. *)

module R = Tstm_runtime.Runtime_sim
module Chaos = Tstm_chaos.Chaos
module History = Tstm_chaos.History
module San = Tstm_san.San
module Registry = Tstm_tm.Registry

type spec = {
  stm : string;
  structure : Workload.structure;
  nthreads : int;
  per_thread : int;
  key_range : int;
  seed : int;
  max_retries : int;
  cm : string;
  pattern : Workload.pattern;
  chaos : Chaos.config;
  site_limit : int option;
  bug : Chaos.bug option;
  window : int;
  san : bool;
}

let default =
  {
    stm = "tinystm-wb";
    structure = Workload.List;
    nthreads = 4;
    per_thread = 24;
    key_range = 16;
    seed = 0;
    max_retries = 0;
    cm = "backoff";
    pattern = Workload.Uniform;
    chaos = Chaos.default;
    site_limit = None;
    bug = None;
    window = 48;
    san = false;
  }

type report = {
  violation : string option;
  san_findings : San.finding list;
  injected : int;
  decisions : int;
  events : int;
  commits : int;
  aborts : int;
  escalations : int;
}

let failed r = r.violation <> None || r.san_findings <> []

let repro_command spec =
  let b = Buffer.create 96 in
  Buffer.add_string b
    (Printf.sprintf "repro stress --stm %s --structure %s --seed %d" spec.stm
       (Workload.structure_to_string spec.structure)
       spec.seed);
  if spec.nthreads <> default.nthreads then
    Buffer.add_string b (Printf.sprintf " --threads %d" spec.nthreads);
  if spec.per_thread <> default.per_thread then
    Buffer.add_string b (Printf.sprintf " --ops %d" spec.per_thread);
  if spec.key_range <> default.key_range then
    Buffer.add_string b (Printf.sprintf " --key-range %d" spec.key_range);
  if spec.max_retries <> default.max_retries then
    Buffer.add_string b (Printf.sprintf " --max-retries %d" spec.max_retries);
  if spec.cm <> default.cm then
    Buffer.add_string b (Printf.sprintf " --cm %s" spec.cm);
  if spec.pattern <> default.pattern then
    Buffer.add_string b
      (Printf.sprintf " --workload %s" (Workload.pattern_to_string spec.pattern));
  (match spec.site_limit with
  | Some l -> Buffer.add_string b (Printf.sprintf " --sites %d" l)
  | None -> ());
  (match spec.bug with
  | Some bug -> Buffer.add_string b (" --bug " ^ Chaos.bug_name bug)
  | None -> ());
  if spec.san then Buffer.add_string b " --san";
  Buffer.contents b

(* Sized like [Workload.memory_words_for]: at most [key_range] live elements
   plus transient overshoot of concurrent inserts. *)
let memory_words spec =
  ((spec.key_range + (8 * spec.nthreads) + 64) * 24) + 8192

let run_one spec =
  let words = memory_words spec in
  let policy =
    match Tstm_cm.Cm.of_string spec.cm with
    | Ok p -> p
    | Error msg -> invalid_arg ("Stress.run_one: " ^ msg)
  in
  let history = History.create ~nthreads:spec.nthreads in
  Chaos.with_bug spec.bug (fun () ->
      let final, stats, injected, decisions, san_findings =
        Chaos.with_plan ~config:spec.chaos ?limit:spec.site_limit
          ~seed:spec.seed (fun () ->
            let body () =
              let (module M) = Registry.get spec.stm in
              let module D = Driver.Make (R) (M) in
              let t =
                M.create ~max_retries:spec.max_retries ~cm:policy
                  ~memory_words:words ()
              in
              let ops = D.make_structure t spec.structure in
              D.run_recorded ~pattern:spec.pattern t ops
                ~nthreads:spec.nthreads ~per_thread:spec.per_thread
                ~key_range:spec.key_range ~seed:spec.seed history;
              let final = M.atomically t (fun tx -> ops.D.op_to_list tx) in
              (final, M.stats t)
            in
            let (final, stats), fs =
              if spec.san then San.with_armed ~ncpus:(max 1 spec.nthreads) body
              else (body (), [])
            in
            (final, stats, Chaos.injected (), Chaos.decisions (), fs))
      in
      let events = History.events history in
      let violation =
        match History.check ~window:spec.window ~final events with
        | Ok () -> None
        | Error msg -> Some msg
      in
      {
        violation;
        san_findings;
        injected;
        decisions;
        events = List.length events;
        commits = stats.Tstm_tm.Tm_stats.commits;
        aborts = Tstm_tm.Tm_stats.aborts stats;
        escalations = stats.Tstm_tm.Tm_stats.escalations;
      })

(* ------------------------------------------------------------------ *)
(* Shrinking                                                           *)
(* ------------------------------------------------------------------ *)

type shrunk = { limit : int; report : report }

(* Reduce a failing run to a small injection-site budget that still fails.
   Capping at exactly [injected] fired sites reproduces the original run
   (sites past the cap never fired anyway); below that, bisection — the
   usual shrinker heuristic of assuming monotonicity, re-verified at the
   returned limit by construction (we only ever return limits whose run we
   executed and saw fail). *)
let shrink spec (base : report) =
  if not (failed base) then None
  else begin
    let check l = run_one { spec with site_limit = Some l } in
    let r0 = check 0 in
    if failed r0 then Some { limit = 0; report = r0 }
    else
      let rhi = check base.injected in
      if not (failed rhi) then None
      else begin
        let lo = ref 0 and hi = ref base.injected in
        let rep = ref rhi in
        while !hi - !lo > 1 do
          let mid = !lo + ((!hi - !lo) / 2) in
          let rm = check mid in
          if failed rm then begin
            hi := mid;
            rep := rm
          end
          else lo := mid
        done;
        Some { limit = !hi; report = !rep }
      end
  end

(* ------------------------------------------------------------------ *)
(* Seed sweep                                                          *)
(* ------------------------------------------------------------------ *)

type sweep_result = {
  runs : int;
  total_events : int;
  total_injected : int;
  total_escalations : int;
  total_commits : int;
  total_aborts : int;
  first_failure : (spec * report) option;
}

(* The ordered spec list of a sweep: seeds (outer) x stm x structure
   (inner) — the same nesting as the sequential [sweep], so plan rank
   order equals sequential execution order. *)
let plan ~seeds ~stms ~structures base =
  let acc = ref [] in
  for seed = seeds - 1 downto 0 do
    List.iter
      (fun stm ->
        List.iter
          (fun structure -> acc := { base with stm; structure; seed } :: !acc)
          (List.rev structures))
      (List.rev stms)
  done;
  Array.of_list !acc

(* Fold reports in plan order, truncating after the first failure — the
   summary a sequential early-exiting sweep would have produced, however
   many runs were actually executed (a parallel sweep completes in-flight
   jobs past the failure; their reports are ignored). *)
let summarize results =
  let acc =
    {
      runs = 0;
      total_events = 0;
      total_injected = 0;
      total_escalations = 0;
      total_commits = 0;
      total_aborts = 0;
      first_failure = None;
    }
  in
  Array.fold_left
    (fun acc (spec, r) ->
      if acc.first_failure <> None then acc
      else
        {
          runs = acc.runs + 1;
          total_events = acc.total_events + r.events;
          total_injected = acc.total_injected + r.injected;
          total_escalations = acc.total_escalations + r.escalations;
          total_commits = acc.total_commits + r.commits;
          total_aborts = acc.total_aborts + r.aborts;
          first_failure = (if failed r then Some (spec, r) else None);
        })
    acc results

(* Sweep sequentially with early exit — equivalent to evaluating the plan
   in order and summarising, but stops issuing runs at the first failure. *)
let sweep ?(on_run = fun _ _ -> ()) ~seeds ~stms ~structures base =
  let specs = plan ~seeds ~stms ~structures base in
  let results = ref [] in
  (try
     Array.iter
       (fun spec ->
         let r = run_one spec in
         results := (spec, r) :: !results;
         on_run spec r;
         if failed r then raise Exit)
       specs
   with Exit -> ());
  summarize (Array.of_list (List.rev !results))
