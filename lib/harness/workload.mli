(** Workload specifications and results for the paper's microbenchmarks.

    A workload runs a fixed thread count against one transactional structure
    for a fixed (virtual) duration.  Transactions are drawn per the paper's
    harness (§3.3): read transactions look up a random key; update
    transactions alternately insert a fresh key and remove the key they last
    inserted (so every update transaction writes); overwrite transactions
    (Fig. 4 right) rewrite every entry up to a random key. *)

type structure = List | Rbtree | Skiplist | Hashset

val structure_to_string : structure -> string
val structure_of_string : string -> structure option

(** Adversarial key/rate patterns (deterministic from the per-thread seed).

    - [Uniform]: the paper's harness — keys uniform in [1, key_range].
    - [Zipf theta]: zipfian key skew with exponent [theta]; higher = more
      contention concentrated on the low keys.
    - [Hotspot n]: 90 % of key draws land on the [n] hottest keys — a
      single-word storm for small [n].
    - [Bimodal span]: even threads run long read-only scan transactions of
      [span] lookups; odd threads run the normal short mix — the classic
      long-reader vs short-writer starvation shape.
    - [Asym f]: odd threads issue transactions [f]× slower (extra local
      think-time), giving per-CPU asymmetric op rates. *)
type pattern =
  | Uniform
  | Zipf of float
  | Hotspot of int
  | Bimodal of int
  | Asym of float

val pattern_to_string : pattern -> string
(** Canonical parseable form: ["uniform"], ["zipf:1.2"], ["hotspot:4"],
    ["bimodal:8"], ["rates:2"]. *)

val pattern_of_string : string -> (pattern, string) result

val key_gen : pattern -> key_range:int -> Tstm_util.Xrand.t -> int
(** Per-thread key sampler.  [Uniform] (and the patterns that keep uniform
    keys) consumes exactly one [Xrand.int] per key — the historical stream,
    so default runs replay byte-identically. *)

val reader_span : pattern -> tid:int -> int
(** Scan length for [tid]'s transactions (0 = run the normal mix). *)

val idle_cycles : pattern -> tid:int -> int
(** Extra local think-time cycles charged between [tid]'s transactions. *)

type spec = {
  structure : structure;
  initial_size : int;
  key_range : int;  (** keys are drawn from [1, key_range] *)
  update_pct : float;
  overwrite_pct : float;
  nthreads : int;
  duration : float;  (** measured seconds (virtual under the simulator) *)
  seed : int;
  pattern : pattern;
}

val default : spec
(** List of 256 elements, range 512, 20 % updates, 4 threads, 5 ms,
    uniform keys. *)

val make :
  ?structure:structure ->
  ?initial_size:int ->
  ?key_range:int ->
  ?update_pct:float ->
  ?overwrite_pct:float ->
  ?nthreads:int ->
  ?duration:float ->
  ?seed:int ->
  ?pattern:pattern ->
  unit ->
  spec
(** [key_range] defaults to twice [initial_size], as in the paper's
    size-preserving harness; [pattern] defaults to [Uniform]. *)

val memory_words_for : spec -> int
(** A safe arena size for the spec's structure and churn. *)

type result = {
  commits : int;
  aborts : int;
  throughput : float;  (** committed transactions per second *)
  abort_rate : float;  (** aborts per second *)
  stats : Tstm_tm.Tm_stats.t;
  elapsed : float;
}

val pp_result : Format.formatter -> result -> unit
