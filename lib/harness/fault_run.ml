(* Seeded fault sweeps on real domains.  See fault_run.mli. *)

module R = Tstm_runtime.Runtime_real
module Fault = Tstm_fault.Fault
module Intf = Tstm_tm.Tm_intf
module Stats = Tstm_tm.Tm_stats
module Xrand = Tstm_util.Xrand

type spec = {
  stm : string;
  kind : Fault.kind;
  structure : Workload.structure;
  domains : int;
  per_thread : int;
  key_range : int;
  initial_size : int;
  update_pct : float;
  limit : int option;
  seed : int;
}

let default =
  {
    stm = "tinystm-wb";
    kind = Fault.Crash;
    structure = Workload.Hashset;
    domains = 3;
    per_thread = 400;
    key_range = 512;
    initial_size = 128;
    update_pct = 50.0;
    limit = None;
    seed = 42;
  }

type report = {
  fired : int;
  decisions : int;
  heal : R.heal_report;
  commits : int;
  aborts_alloc : int;
  capacities : int;
  leak_words : int;
  violations : string list;
  error : string option;
}

let healed r = r.error = None && r.violations = [] && r.leak_words = 0

(* Each sweep run arms exactly one fault kind, at rates high enough to
   fire dozens of injections per run on this workload size (the default
   rates are tuned for long service runs, not short sweeps). *)
let config_for (k : Fault.kind) =
  match k with
  | Fault.Crash ->
      { Fault.crash_pct = 2.0; hang_pct = 0.0; hang_us = 1; oom_pct = 0.0 }
  | Fault.Hang ->
      { Fault.crash_pct = 0.0; hang_pct = 2.0; hang_us = 20_000; oom_pct = 0.0 }
  | Fault.Oom ->
      { Fault.crash_pct = 0.0; hang_pct = 0.0; hang_us = 1; oom_pct = 5.0 }

(* Injected hangs stall up to hang_us = 20 ms; a 5 ms heartbeat timeout
   guarantees the monitor actually observes them as stale. *)
let hang_timeout_for (k : Fault.kind) =
  match k with
  | Fault.Hang -> 0.005
  | Fault.Crash | Fault.Oom -> 0.05

let validate spec =
  if spec.domains < 1 then invalid_arg "Fault_run: domains < 1";
  if spec.per_thread < 1 then invalid_arg "Fault_run: per_thread < 1";
  if spec.key_range < 1 then invalid_arg "Fault_run: key_range < 1";
  if spec.initial_size < 0 then invalid_arg "Fault_run: initial_size < 0";
  match spec.limit with
  | Some l when l < 0 -> invalid_arg "Fault_run: limit < 0"
  | _ -> ()

let run_packed (module M : Bench_real.STM) spec =
  let module D = Driver.Make (R) (M) in
  let wspec =
    Workload.make ~structure:spec.structure ~initial_size:spec.initial_size
      ~update_pct:spec.update_pct ~nthreads:spec.domains ~duration:1.0
      ~seed:spec.seed ~key_range:spec.key_range ()
  in
  let t = M.create ~memory_words:(Workload.memory_words_for wspec) () in
  let ops = D.make_structure t spec.structure in
  let live_skel = M.live_words t in
  (* Populate before arming: the fault surface is the concurrent run. *)
  D.populate t ops wspec;
  M.reset_stats t;
  let capacities = Atomic.make 0 in
  (* One worker job.  A crash respawn replays it from the start — the
     per-tid RNG is rebuilt, so the replay is the same operation stream.
     Keys inserted before the crash are swept up by the drain below; the
     typed Capacity verdict (arena exhausted after the STM's bounded
     alloc-retry) is absorbed per operation so injected OOM storms cannot
     kill a worker. *)
  let job tid =
    let ctx = D.thread_ctx wspec tid in
    let g = Xrand.create (D.thread_seed wspec tid) in
    let pending = ref None in
    for _ = 1 to spec.per_thread do
      match D.step t ops wspec ctx g pending with
      | () -> ()
      | exception Intf.Capacity _ ->
          Atomic.incr capacities;
          pending := None
    done;
    match !pending with
    | None -> ()
    | Some k -> (
        match M.atomically t (fun tx -> ops.D.op_remove tx k) with
        | (_ : bool) -> ()
        | exception Intf.Capacity _ -> Atomic.incr capacities)
  in
  (* An uncapped crash plan at these rates would kill nearly every replay
     of a requeued job and exhaust the requeue budget; capping the fired
     count turns it into a bounded storm — after the cap, replays run
     clean and the pool converges.  Hangs and OOMs never kill a job, so
     they stay uncapped unless the spec says otherwise. *)
  let limit =
    match (spec.limit, spec.kind) with
    | (Some _ as l), _ -> l
    | None, Fault.Crash -> Some (4 * spec.domains)
    | None, (Fault.Hang | Fault.Oom) -> None
  in
  Fault.activate ~config:(config_for spec.kind) ?limit ~seed:spec.seed ();
  let fired = ref 0 and decisions = ref 0 in
  let outcome =
    Fun.protect
      ~finally:(fun () ->
        fired := Fault.fired ();
        decisions := Fault.decisions ();
        Fault.deactivate ())
    @@ fun () ->
    match
      R.run_healed ~hang_timeout_s:(hang_timeout_for spec.kind)
        ~nthreads:spec.domains job
    with
    | heal -> Ok heal
    | exception e -> Error (Printexc.to_string e)
  in
  (* Post-run audit, injection disarmed: drain the structure to empty and
     compare the arena against the pre-populate skeleton.  Crash replays
     make commit/size counts meaningless, but drift is exact. *)
  let violations = ref [] in
  let keys = M.atomically t (fun tx -> ops.D.op_to_list tx) in
  List.iter
    (fun k -> ignore (M.atomically t (fun tx -> ops.D.op_remove tx k)))
    keys;
  let size = M.atomically t (fun tx -> ops.D.op_size tx) in
  if size <> 0 then
    violations :=
      Printf.sprintf "%d elements survived the drain" size :: !violations;
  let stats = M.stats t in
  {
    fired = !fired;
    decisions = !decisions;
    heal = (match outcome with Ok h -> h | Error _ -> R.no_heal);
    commits = stats.Stats.commits;
    aborts_alloc = stats.Stats.aborts_alloc;
    capacities = Atomic.get capacities;
    leak_words = M.live_words t - live_skel;
    violations = List.rev !violations;
    error = (match outcome with Ok _ -> None | Error e -> Some e);
  }

let run_one spec =
  validate spec;
  match Bench_real.find_stm spec.stm with
  | Error m -> invalid_arg ("Fault_run: " ^ m)
  | Ok (_canon, m) -> run_packed m spec

let plan ~seeds ~stms ~kinds spec =
  if seeds < 1 then invalid_arg "Fault_run.plan: seeds < 1";
  if stms = [] then invalid_arg "Fault_run.plan: no stms";
  if kinds = [] then invalid_arg "Fault_run.plan: no kinds";
  Array.of_list
    (List.concat_map
       (fun s ->
         List.concat_map
           (fun stm ->
             List.map
               (fun kind -> { spec with seed = spec.seed + s; stm; kind })
               kinds)
           stms)
       (List.init seeds Fun.id))

let repro_command spec =
  Printf.sprintf
    "repro fault --stm %s --kind %s --structure %s --domains %d --ops %d \
     --initial %d --key-range %d --update %g --seed %d%s"
    spec.stm (Fault.kind_name spec.kind)
    (Workload.structure_to_string spec.structure)
    spec.domains spec.per_thread spec.initial_size spec.key_range
    spec.update_pct spec.seed
    (match spec.limit with
    | None -> ""
    | Some l -> Printf.sprintf " --limit %d" l)
