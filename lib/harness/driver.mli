(** The benchmark thread driver, generic over runtime and STM.

    [run] executes the paper's microbenchmark loop (§3.3) and reports
    throughput and abort statistics.  The optional [control] gives a
    controller callback on thread 0 at fixed period boundaries — the hook
    the dynamic tuner (§4) plugs into; the optional [collector] records one
    metrics row per measurement period for the CSV exporter. *)

module Make
    (R : Tstm_runtime.Runtime_intf.S)
    (T : Tstm_tm.Tm_intf.TM) : sig
  (** Structure operations bound to one instance (see {!make_structure}). *)
  type ops = {
    op_contains : T.tx -> int -> bool;
    op_add : T.tx -> int -> bool;
    op_remove : T.tx -> int -> bool;
    op_overwrite : T.tx -> int -> int;
    op_size : T.tx -> int;
    op_to_list : T.tx -> int list;
  }

  val make_structure : T.t -> Workload.structure -> ops
  (** Allocate the requested structure in the instance's memory. *)

  val populate : T.t -> ops -> Workload.spec -> unit
  (** Deterministically fill the structure to [spec.initial_size]. *)

  type thread_ctx
  (** Per-thread workload-pattern context: the key sampler plus this
      thread's role (long-reader span, think-time) under the pattern. *)

  val thread_ctx : Workload.spec -> int -> thread_ctx
  (** [thread_ctx spec tid] builds thread [tid]'s context for the spec's
      pattern. *)

  val thread_seed : Workload.spec -> int -> int
  (** The deterministic per-thread RNG seed the driver's own loops use. *)

  val step :
    T.t ->
    ops ->
    Workload.spec ->
    thread_ctx ->
    Tstm_util.Xrand.t ->
    int option ref ->
    unit
  (** Execute exactly {e one} benchmark transaction of the paper mix
      (lookup / insert-remove pair / overwrite, or the pattern's scan
      role).  The [int option ref] threads the pending-removal key between
      consecutive update transactions; start each thread with [ref None].
      Exposed so external harnesses (the wall-clock bench) can drive the
      same mix under their own timing loop while counting operations:
      one call = one [atomically] = one commit. *)

  val run_recorded :
    ?pattern:Workload.pattern ->
    T.t ->
    ops ->
    nthreads:int ->
    per_thread:int ->
    key_range:int ->
    seed:int ->
    Tstm_chaos.History.t ->
    unit
  (** Chaos-stress loop: each thread runs [per_thread] random
      single-operation transactions (add/remove/contains, keys in
      [1..key_range]) and records each completed operation with its
      invocation/response timestamps into the history for black-box
      serializability checking.  Statistics are reset on entry.
      [pattern] (default [Uniform], the historical stream) contributes key
      skew and per-thread think-time; operations stay single so the checker
      still applies. *)

  (** Periodic controller: thread 0 invokes [on_period idx throughput
      stats] after each of the [n_periods] measurement periods of [period]
      virtual seconds, where [throughput] is the committed transaction rate
      over that period (all threads) and [stats] is the {e cumulative}
      aggregate since the run started.  The callback may re-tune the STM
      (e.g. [Tinystm.set_config]); the next period starts after it
      returns. *)
  type control = {
    period : float;
    n_periods : int;
    on_period : int -> float -> Tstm_tm.Tm_stats.t -> unit;
  }

  val obs_columns : string list
  (** Column names of the per-period metrics recorded under a collector. *)

  val run :
    ?control:control ->
    ?collector:Tstm_obs.Sink.collector ->
    T.t ->
    ops ->
    Workload.spec ->
    Workload.result * Tstm_obs.Metrics.t option
  (** Reset statistics, run [spec.nthreads] workers, and report — the one
      driver entry point.

      Without [control], workers run for [spec.duration] virtual seconds.
      With [control], the run ends after [control.n_periods] controller
      callbacks instead ([spec.duration] is ignored) and the reported
      elapsed time is [period * n_periods].

      With [collector], one {!Tstm_obs.Metrics} row is recorded per
      measurement period (virtual end time, throughput, commit/abort
      breakdown deltas, p50/p99 commit and abort latencies read from
      [collector]'s histograms) and returned as [Some metrics]; the rows
      are recorded before the caller's [on_period] fires.  A [collector]
      without a [control] records a single period spanning the whole
      duration.  The caller is responsible for installing [collector] as
      the active sink — typically via [Tstm_obs.Sink.with_sink] — so the
      latency histograms actually fill. *)
end
