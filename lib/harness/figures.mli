(** Regeneration of every figure in the paper's evaluation (Figs. 2-12),
    decomposed into independently-evaluable cells.

    A figure is described by a builder that requests experiment {!cell}s
    through an [eval] callback.  [plan] runs the builder once, recording the
    cells it asks for; the cells can then be evaluated in any order (and in
    any process — they are serialisable), and [assemble] replays the builder
    feeding the values back in rank order to produce the printable series.
    [run_figure] is the sequential composition of the three; the
    multi-process sweep runner ([Tstm_exec]) farms the middle step out to
    worker processes and still reassembles byte-identical output.

    A {!profile} scales experiment sizes: [quick] for smoke runs, [full]
    for paper-comparable parameters (several minutes of real time for the
    linked-list surfaces). *)

type profile = {
  label : string;
  dur_tree : float;  (** measurement window for tree/hash workloads (s) *)
  dur_list : float;  (** measurement window for list workloads (s) *)
  threads : int list;  (** thread axis of Figs. 2-4 *)
  fig5_sizes : int list;
  fig5_updates : float list;
  surface_size : int;  (** structure size for Figs. 6/8/9 *)
  surface_lock_exps : int list;
  surface_shifts : int list;
  fig7_lock_exps : int list;
  fig7_shifts : int list;
  fig7_relations : int;
  fig8_h : int list;
  fig9_lock_exps : int list;
  fig9_h : int list;
  tune_size : int;
  tune_period : float;
  tune_steps : int;
}

val quick : profile
val full : profile

type output =
  | Table of Tstm_util.Series.table
  | Surface of Tstm_util.Series.surface

val print_output : output -> unit

(** One experiment a figure needs: a pure, serialisable description
    (structural equality and [Marshal]-safe — no closures, no custom
    blocks). *)
type cell =
  | Intset_cell of {
      stm : string;  (** registry name, e.g. ["tinystm-wb"] *)
      n_locks : int;
      shifts : int;
      hierarchy : int;
      hierarchy2 : int;
      spec : Workload.spec;
    }
  | Vacation_cell of {
      n_locks : int;
      shifts : int;
      hierarchy : int;
      n_relations : int;
      nthreads : int;
      duration : float;
      seed : int;
    }
  | Autotune_cell of {
      structure : Workload.structure;
      size : int;
      period : float;
      steps : int;
    }

(** What evaluating a cell yields. *)
type value = Result of Workload.result | Trace of Scenario.tune_trace

val cell_label : cell -> string
(** Short human-readable description (for progress lines). *)

val eval_cell : cell -> value
(** Run one cell on the simulated runtime.  Deterministic: the value
    depends only on the cell.  Autotune traces are memoised process-wide
    (Figs. 11 and 12 share one). *)

val plan : profile -> int -> cell array
(** The ordered cells figure [n] needs under the given profile. *)

val assemble : profile -> int -> value array -> output list
(** Rebuild figure [n]'s series from the values of its plan, in plan
    order.  Raises [Invalid_argument] if the array length does not match
    the plan. *)

val fig_numbers : int list
(** [2; ...; 12]. *)

val run_figure : profile -> int -> output list
(** [assemble p n (Array.map eval_cell (plan p n))] — runs the experiment
    for one paper figure and returns its series.  Raises
    [Invalid_argument] for unknown figure numbers. *)

val describe : int -> string
(** One-line description of what the figure shows. *)
