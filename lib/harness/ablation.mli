(** Cost-model ablation sweep: sensitivity of the headline comparison
    (Fig. 3b: list, 256 elements, 20% updates, 8 threads) to the simulator
    cost constants, plus the paper's §3.1 bounded-wait contention
    management and §3.2 two-level hierarchical array.

    Points are pure data and {!run_point} installs the cost model it needs
    before running, so points evaluate independently in any order or
    process — the sweep decomposes into {!Tstm_exec} jobs. *)

type point =
  | Cost of { label : string; params : Tstm_runtime.Cache_model.params }
      (** headline per-family comparison point under altered cost constants *)
  | Conflict_wait of int
      (** bounded wait of [n] attempts on a foreign lock (0 = abort now) *)
  | Two_level of { hierarchy : int; hierarchy2 : int }
      (** two-level hierarchical array on the validation-heavy list *)

type row =
  | Cost_row of { label : string; cells : (string * float) list }
      (** one throughput cell per registered algorithm family, in
          family-registration order (family name, tx/s) *)
  | Wait_row of { attempts : int; throughput : float; aborts : int }
  | Two_level_row of {
      hierarchy : int;
      hierarchy2 : int;
      throughput : float;
      processed : int;  (** validation lock words processed *)
      skipped : int;  (** validation lock words skipped via counters *)
    }

val default_points : point list
(** The standard sweep, in presentation order. *)

val run_point : point -> row
(** Evaluate one point on the simulated runtime (deterministic; configures
    the cost model itself). *)

val point_label : point -> string
(** Short progress-line label. *)

val header : string
(** Section heading printed above the rendered rows. *)

val render : row -> string
(** One output line per row (no trailing newline). *)
