(** Chaos stress harness: deterministic seed sweeps with black-box
    serializability checking and failing-schedule shrinking.

    Each run is fully determined by its {!spec}: same spec, bit-identical
    schedule, history and verdict.  A failure therefore travels as a spec;
    {!repro_command} renders it as the `repro stress` invocation that
    replays it. *)

type spec = {
  stm : Scenario.stm_kind;
  structure : Workload.structure;
  nthreads : int;
  per_thread : int;  (** operations per thread *)
  key_range : int;
  seed : int;  (** chaos plan seed, also salts the per-thread op streams *)
  max_retries : int;  (** 0 = no irrevocable escalation *)
  chaos : Tstm_chaos.Chaos.config;
  site_limit : int option;  (** cap on fired injection sites (shrinking) *)
  bug : Tstm_chaos.Chaos.bug option;  (** deliberate protocol bug to arm *)
  window : int;  (** checker window *)
  san : bool;  (** arm the happens-before sanitizer for the run *)
}

val default : spec

type report = {
  violation : string option;  (** checker diagnostic; [None] = serializable *)
  san_findings : Tstm_san.San.finding list;
      (** sanitizer findings; always [[]] when [spec.san] is false *)
  injected : int;  (** chaos injections fired *)
  decisions : int;
  events : int;  (** operations recorded and checked *)
  commits : int;
  aborts : int;
  escalations : int;
}

val failed : report -> bool
(** A run fails when the checker found a violation or the sanitizer
    reported at least one finding. *)

val stm_code : Scenario.stm_kind -> string
(** CLI code: ["wb"], ["wt"] or ["tl2"]. *)

val repro_command : spec -> string
(** The `repro stress ...` command line replaying exactly this spec. *)

val memory_words : spec -> int

val run_one : spec -> report
(** One deterministic run: fresh instance, chaos plan [seed], random
    single-op transactions, serializability check of the recorded history
    against the structure's final contents. *)

type shrunk = { limit : int; report : report }

val shrink : spec -> report -> shrunk option
(** Given a failing report for [spec], find a small injection-site limit
    that still fails (bisection; the returned limit was re-executed and
    seen to fail).  [None] if the report did not fail or shrinking could
    not reproduce the failure under a site cap. *)

type sweep_result = {
  runs : int;
  total_events : int;
  total_injected : int;
  total_escalations : int;
  total_commits : int;
  total_aborts : int;
  first_failure : (spec * report) option;
}

val sweep :
  ?on_run:(spec -> report -> unit) ->
  seeds:int ->
  stms:Scenario.stm_kind list ->
  structures:Workload.structure list ->
  spec ->
  sweep_result
(** Run seeds [0..seeds-1] (outer loop) across the given STMs and
    structures (inner loops), stopping at the first failed run
    (serializability violation or sanitizer finding). *)
