(** Chaos stress harness: deterministic seed sweeps with black-box
    serializability checking and failing-schedule shrinking.

    Each run is fully determined by its {!spec}: same spec, bit-identical
    schedule, history and verdict.  A failure therefore travels as a spec;
    {!repro_command} renders it as the `repro stress` invocation that
    replays it.  Specs and reports are pure data ([Marshal]-safe), so a
    sweep decomposes into independent per-spec jobs ({!plan}) whose reports
    reassemble into the sequential verdict ({!summarize}). *)

type spec = {
  stm : string;  (** {!Tstm_tm.Registry} name or alias *)
  structure : Workload.structure;
  nthreads : int;
  per_thread : int;  (** operations per thread *)
  key_range : int;
  seed : int;  (** chaos plan seed, also salts the per-thread op streams *)
  max_retries : int;  (** 0 = no irrevocable escalation *)
  cm : string;
      (** contention-manager name ({!Tstm_cm.Cm.of_string} form); the
          default ["backoff"] replays historical runs byte-identically *)
  pattern : Workload.pattern;  (** adversarial key/rate pattern *)
  chaos : Tstm_chaos.Chaos.config;
  site_limit : int option;  (** cap on fired injection sites (shrinking) *)
  bug : Tstm_chaos.Chaos.bug option;  (** deliberate protocol bug to arm *)
  window : int;  (** checker window *)
  san : bool;  (** arm the happens-before sanitizer for the run *)
}

val default : spec

type report = {
  violation : string option;  (** checker diagnostic; [None] = serializable *)
  san_findings : Tstm_san.San.finding list;
      (** sanitizer findings; always [[]] when [spec.san] is false *)
  injected : int;  (** chaos injections fired *)
  decisions : int;
  events : int;  (** operations recorded and checked *)
  commits : int;
  aborts : int;
  escalations : int;
}

val failed : report -> bool
(** A run fails when the checker found a violation or the sanitizer
    reported at least one finding. *)

val repro_command : spec -> string
(** The `repro stress ...` command line replaying exactly this spec. *)

val memory_words : spec -> int

val run_one : spec -> report
(** One deterministic run: fresh instance (STM resolved through
    {!Tstm_tm.Registry}), chaos plan [seed], random single-op transactions,
    serializability check of the recorded history against the structure's
    final contents. *)

type shrunk = { limit : int; report : report }

val shrink : spec -> report -> shrunk option
(** Given a failing report for [spec], find a small injection-site limit
    that still fails (bisection; the returned limit was re-executed and
    seen to fail).  [None] if the report did not fail or shrinking could
    not reproduce the failure under a site cap. *)

type sweep_result = {
  runs : int;
  total_events : int;
  total_injected : int;
  total_escalations : int;
  total_commits : int;
  total_aborts : int;
  first_failure : (spec * report) option;
}

val plan :
  seeds:int ->
  stms:string list ->
  structures:Workload.structure list ->
  spec ->
  spec array
(** The ordered specs of a sweep over seeds [0..seeds-1] (outer) x STMs x
    structures (inner) — rank order equals sequential execution order. *)

val summarize : (spec * report) array -> sweep_result
(** Fold reports in plan order, truncating after the first failed run —
    the verdict an early-exiting sequential sweep would produce.  Entries
    past the first failure are ignored, so the summary is independent of
    how many in-flight parallel runs completed. *)

val sweep :
  ?on_run:(spec -> report -> unit) ->
  seeds:int ->
  stms:string list ->
  structures:Workload.structure list ->
  spec ->
  sweep_result
(** Run the {!plan} in order, stopping at the first failed run
    (serializability violation or sanitizer finding). *)
