module Make
    (R : Tstm_runtime.Runtime_intf.S)
    (T : Tstm_tm.Tm_intf.TM) =
struct
  module Ll = Tstm_structures.Intset_list.Make (T)
  module Rb = Tstm_structures.Rbtree.Make (T)
  module Sk = Tstm_structures.Skiplist.Make (T)
  module Hs = Tstm_structures.Hashset.Make (T)

  type ops = {
    op_contains : T.tx -> int -> bool;
    op_add : T.tx -> int -> bool;
    op_remove : T.tx -> int -> bool;
    op_overwrite : T.tx -> int -> int;
    op_size : T.tx -> int;
    op_to_list : T.tx -> int list;
  }

  let make_structure t = function
    | Workload.List ->
        let s = Ll.create t in
        {
          op_contains = Ll.contains s;
          op_add = Ll.add s;
          op_remove = Ll.remove s;
          op_overwrite = Ll.overwrite_upto s;
          op_size = Ll.size s;
          op_to_list = Ll.to_list s;
        }
    | Workload.Rbtree ->
        let s = Rb.create t in
        {
          op_contains = Rb.contains s;
          op_add = Rb.add s;
          op_remove = Rb.remove s;
          op_overwrite = Rb.overwrite_upto s;
          op_size = Rb.size s;
          op_to_list = Rb.to_list s;
        }
    | Workload.Skiplist ->
        let s = Sk.create t in
        {
          op_contains = Sk.contains s;
          op_add = Sk.add s;
          op_remove = Sk.remove s;
          op_overwrite = Sk.overwrite_upto s;
          op_size = Sk.size s;
          op_to_list = Sk.to_list s;
        }
    | Workload.Hashset ->
        let s = Hs.create t in
        {
          op_contains = Hs.contains s;
          op_add = Hs.add s;
          op_remove = Hs.remove s;
          op_overwrite = Hs.overwrite_upto s;
          op_size = Hs.size s;
          op_to_list = Hs.to_list s;
        }

  let populate t ops (spec : Workload.spec) =
    let g = Tstm_util.Xrand.create spec.Workload.seed in
    let inserted = ref 0 in
    while !inserted < spec.Workload.initial_size do
      let v = 1 + Tstm_util.Xrand.int g spec.Workload.key_range in
      if T.atomically t (fun tx -> ops.op_add tx v) then incr inserted
    done

  (* Per-thread workload-pattern context: the key sampler plus this thread's
     role under the pattern.  For [Uniform] the sampler consumes the
     historical RNG stream and [span]/[idle] are zero, so the default path
     is unchanged. *)
  type thread_ctx = {
    draw_key : Tstm_util.Xrand.t -> int;
    span : int;  (* > 0: run scan transactions of this many lookups *)
    idle : int;  (* extra local think-time cycles between transactions *)
  }

  let thread_ctx (spec : Workload.spec) tid =
    {
      draw_key =
        Workload.key_gen spec.Workload.pattern
          ~key_range:spec.Workload.key_range;
      span = Workload.reader_span spec.Workload.pattern ~tid;
      idle = Workload.idle_cycles spec.Workload.pattern ~tid;
    }

  (* One benchmark transaction.  [pending] alternates update transactions
     between inserting a fresh key and removing the key inserted last, so
     every update transaction performs writes and the structure size stays
     (almost) constant — the paper's harness discipline. *)
  let step t ops (spec : Workload.spec) ctx g pending =
    if ctx.idle > 0 then R.charge_local ctx.idle;
    if ctx.span > 0 then
      (* Long-reader role (bimodal pattern): one scan transaction of [span]
         lookups instead of the paper mix. *)
      ignore
        (T.atomically t (fun tx ->
             let hits = ref 0 in
             for _ = 1 to ctx.span do
               if ops.op_contains tx (ctx.draw_key g) then incr hits
             done;
             !hits))
    else
    let p = Tstm_util.Xrand.float g *. 100.0 in
    let draw () = ctx.draw_key g in
    if p < spec.Workload.overwrite_pct then
      ignore (T.atomically t (fun tx -> ops.op_overwrite tx (draw ())))
    else if p < spec.Workload.overwrite_pct +. spec.Workload.update_pct then begin
      match !pending with
      | Some v ->
          ignore (T.atomically t (fun tx -> ops.op_remove tx v));
          pending := None
      | None ->
          let v =
            T.atomically t (fun tx ->
                let rec try_add () =
                  let v = draw () in
                  if ops.op_add tx v then v else try_add ()
                in
                try_add ())
          in
          pending := Some v
    end
    else
      (* Lookups run as regular transactions (with a read set), matching the
         paper's harness: Fig. 12's validation rates (~4000 read-set locks
         per transaction on the 4096-element list) are only possible if
         lookups validate too.  The read-only fast path remains available
         through the API and is exercised by tests and examples. *)
      ignore (T.atomically t (fun tx -> ops.op_contains tx (draw ())))

  (* ------------------------------------------------------------------ *)
  (* Recorded runs for the chaos stress harness                          *)
  (* ------------------------------------------------------------------ *)

  (* Random single-operation transactions with invocation/response
     timestamps taken in virtual time just outside [atomically], recorded
     per thread for black-box serializability checking. *)
  let run_recorded ?(pattern = Workload.Uniform) t ops ~nthreads ~per_thread
      ~key_range ~seed history =
    T.reset_stats t;
    let module H = Tstm_chaos.History in
    let draw_key = Workload.key_gen pattern ~key_range in
    R.run ~nthreads (fun tid ->
        let g =
          Tstm_util.Xrand.create (Tstm_util.Bitops.mix ((seed * 131071) + tid))
        in
        (* Operations stay single so the serializability checker applies;
           the pattern contributes key skew and per-thread think-time. *)
        let idle = Workload.idle_cycles pattern ~tid in
        for _ = 1 to per_thread do
          if idle > 0 then R.charge_local idle;
          let key = draw_key g in
          let op =
            match Tstm_util.Xrand.int g 4 with
            | 0 | 1 -> H.Add key
            | 2 -> H.Remove key
            | _ -> H.Contains key
          in
          let inv = R.now_cycles () in
          let result =
            T.atomically t (fun tx ->
                match op with
                | H.Add k -> ops.op_add tx k
                | H.Remove k -> ops.op_remove tx k
                | H.Contains k -> ops.op_contains tx k)
          in
          let resp = R.now_cycles () in
          H.record history ~tid ~inv ~resp ~op ~result
        done)

  let thread_seed (spec : Workload.spec) tid =
    Tstm_util.Bitops.mix ((spec.Workload.seed * 8191) + tid)

  let result_of_stats elapsed stats =
    let commits = stats.Tstm_tm.Tm_stats.commits in
    let aborts = Tstm_tm.Tm_stats.aborts stats in
    {
      Workload.commits;
      aborts;
      throughput = float_of_int commits /. elapsed;
      abort_rate = float_of_int aborts /. elapsed;
      stats;
      elapsed;
    }

  type control = {
    period : float;
    n_periods : int;
    on_period : int -> float -> Tstm_tm.Tm_stats.t -> unit;
  }

  let run_timed t ops (spec : Workload.spec) =
    T.reset_stats t;
    R.run ~nthreads:spec.Workload.nthreads (fun tid ->
        let g = Tstm_util.Xrand.create (thread_seed spec tid) in
        let ctx = thread_ctx spec tid in
        let pending = ref None in
        let t0 = R.now () in
        let tend = t0 +. spec.Workload.duration in
        while R.now () < tend do
          step t ops spec ctx g pending
        done)

  let run_controlled t ops (spec : Workload.spec) ~period ~n_periods
      ~on_period =
    T.reset_stats t;
    (* Per-thread commit counters on private cache lines, plus a stop flag;
       thread 0 aggregates them at period boundaries. *)
    let ctl = R.sarray_make (8 * (spec.Workload.nthreads + 2)) 0 in
    let stop_slot = 0 in
    let commit_slot tid = 8 * (tid + 1) in
    R.run ~nthreads:spec.Workload.nthreads (fun tid ->
        let g = Tstm_util.Xrand.create (thread_seed spec tid) in
        let ctx = thread_ctx spec tid in
        let pending = ref None in
        let mine = ref 0 in
        if tid = 0 then begin
          let periods_done = ref 0 in
          let next = ref (R.now () +. period) in
          let last_total = ref 0 in
          while !periods_done < n_periods do
            step t ops spec ctx g pending;
            incr mine;
            R.set ctl (commit_slot 0) !mine;
            if R.now () >= !next then begin
              let total = ref 0 in
              for k = 0 to spec.Workload.nthreads - 1 do
                total := !total + R.get ctl (commit_slot k)
              done;
              let thr = float_of_int (!total - !last_total) /. period in
              last_total := !total;
              on_period !periods_done thr (T.stats t);
              incr periods_done;
              next := R.now () +. period
            end
          done;
          R.set ctl stop_slot 1
        end
        else
          while R.get ctl stop_slot = 0 do
            step t ops spec ctx g pending;
            incr mine;
            R.set ctl (commit_slot tid) !mine
          done)

  (* ------------------------------------------------------------------ *)
  (* Per-period metric rows for the CSV exporter                         *)
  (* ------------------------------------------------------------------ *)

  let obs_columns =
    [
      "period";
      "t_end_s";
      "throughput_tx_s";
      "commits";
      "aborts";
      "aborts_read_conflict";
      "aborts_write_conflict";
      "aborts_validation";
      "aborts_rollover";
      "p50_commit_cycles";
      "p99_commit_cycles";
      "p50_abort_cycles";
      "p99_abort_cycles";
    ]

  (* A metrics recorder chained in front of the caller's controller: one
     row per measurement period, diffed against the previous period. *)
  let metrics_recorder collector =
    let module S = Tstm_tm.Tm_stats in
    let module H = Tstm_obs.Histo in
    let m = Tstm_obs.Metrics.create ~columns:obs_columns in
    let prev = ref (S.create ()) in
    let prev_commit = ref (H.copy collector.Tstm_obs.Sink.commit_latency) in
    let prev_abort = ref (H.copy collector.Tstm_obs.Sink.abort_latency) in
    let record idx thr (cum : S.t) =
      let p = !prev in
      let commit_h = H.diff collector.Tstm_obs.Sink.commit_latency ~since:!prev_commit in
      let abort_h = H.diff collector.Tstm_obs.Sink.abort_latency ~since:!prev_abort in
      let d fld = float_of_int (fld cum - fld p) in
      Tstm_obs.Metrics.add_row m
        [|
          float_of_int idx;
          R.now ();
          thr;
          d (fun s -> s.S.commits);
          d S.aborts;
          d (fun s -> s.S.aborts_read_conflict);
          d (fun s -> s.S.aborts_write_conflict);
          d (fun s -> s.S.aborts_validation);
          d (fun s -> s.S.aborts_rollover);
          float_of_int (H.percentile commit_h 50.0);
          float_of_int (H.percentile commit_h 99.0);
          float_of_int (H.percentile abort_h 50.0);
          float_of_int (H.percentile abort_h 99.0);
        |];
      prev := S.copy cum;
      prev_commit := H.copy collector.Tstm_obs.Sink.commit_latency;
      prev_abort := H.copy collector.Tstm_obs.Sink.abort_latency
    in
    (m, record)

  let run ?control ?collector t ops (spec : Workload.spec) =
    (* A collector without an explicit control still needs a period
       structure for its metric rows: one period spanning the duration. *)
    let control =
      match (control, collector) with
      | None, Some _ ->
          Some
            {
              period = spec.Workload.duration;
              n_periods = 1;
              on_period = (fun _ _ _ -> ());
            }
      | c, _ -> c
    in
    match control with
    | None ->
        run_timed t ops spec;
        (result_of_stats spec.Workload.duration (T.stats t), None)
    | Some { period; n_periods; on_period } ->
        let metrics, on_period =
          match collector with
          | None -> (None, on_period)
          | Some c ->
              let m, record = metrics_recorder c in
              ( Some m,
                fun idx thr cum ->
                  record idx thr cum;
                  on_period idx thr cum )
        in
        run_controlled t ops spec ~period ~n_periods ~on_period;
        let elapsed = period *. float_of_int n_periods in
        (result_of_stats elapsed (T.stats t), metrics)
end
