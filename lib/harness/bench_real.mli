(** Wall-clock benchmark harness over the real-hardware runtime
    ({!Tstm_runtime.Runtime_real}) — the producer of
    [Tstm_obs.Bench] snapshot cells.

    Runs the paper's transaction mix ({!Driver.step}) — or the Vacation
    workload — against one long-lived structure under a Synchrobench-style
    protocol: a warmup phase, then [reps] fixed-duration repetitions timed
    with the monotonic clock, each yielding one throughput sample.  With
    [observe] set, a per-domain sharded {!Tstm_obs.Sink} records wall-clock
    commit/abort latency histograms during the timed phases (merged after
    the domains join; the histogram unit is nanoseconds on this runtime).

    Because real-hardware runs are nondeterministic, every run carries its
    own machine-checkable {!integrity} evidence: one counted operation is
    exactly one [atomically], so total commits must equal total operations;
    the intset mix pairs inserts with removals and drains per-thread
    pending keys after the deadline, so the structure must return to its
    populated size and the word allocator to its post-populate baseline
    (Vacation instead runs its transactional consistency audit). *)

val stm_names : string list
(** Canonical STM names available on the real runtime
    (["tinystm-wb"], ["tinystm-wt"], ["tl2"], ["norec"]); the aliases
    ["wb"] and ["wt"] also resolve. *)

(** A packaged STM over {!Tstm_runtime.Runtime_real} — the real-runtime
    analogue of the registry's simulated packagings. *)
module type STM = Tstm_tm.Tm_intf.STM

val find_stm : string -> (string * (module STM), string) result
(** Resolve a name or alias to its canonical name and packaged module
    (shared by the bench cells, the fault sweep driver and the real-domain
    service). *)

type protocol = {
  duration_s : float;  (** length of each timed repetition *)
  warmup_s : float;  (** untimed warmup before the repetitions; 0 = none *)
  reps : int;  (** timed repetitions per cell *)
  observe : bool;  (** record latency histograms via a sharded sink *)
}

val default_protocol : protocol
(** 0.2 s × 3 repetitions after 0.05 s warmup, no latency recording. *)

(** One benchmark cell to run. *)
type cell_request = {
  stm : string;  (** canonical name or alias; see {!stm_names} *)
  structure : string;  (** a {!Workload.structure} name, or ["vacation"] *)
  domains : int;
  pattern : Workload.pattern;  (** ignored by the Vacation workload *)
  size : int;  (** initial size; relations/customers for vacation *)
  update_pct : float;  (** update share; [reserve_pct] for vacation *)
  seed : int;
}

val default_request : cell_request
(** TinySTM-WB on a 256-element red-black tree, 2 domains, 20 % updates,
    uniform keys. *)

(** Post-run invariant evidence; [violations = []] means every check
    passed. *)
type integrity = {
  ops_total : int;  (** operations executed (each exactly one commit) *)
  commits_total : int;  (** merged [Tm_stats.commits] over the timed reps *)
  violations : string list;
  failed_reps : (int * string) list;
      (** repetitions whose phase raised, as (rep index, exception).  A
          raising worker fails its repetition — it yields no sample and the
          CLI exits non-zero — but never aborts the remaining repetitions:
          [Runtime_real.run] has already awaited every domain, so the pool
          stays reusable. *)
}

val run_cell :
  cell_request -> protocol -> (Tstm_obs.Bench.cell * integrity, string) result
(** Populate, warm up, run the timed repetitions, check integrity.
    [Error] reports an invalid request (unknown STM or structure,
    non-positive protocol parameters) without running anything. *)

val snapshot :
  rev:string ->
  created_unix:float ->
  protocol ->
  Tstm_obs.Bench.cell list ->
  Tstm_obs.Bench.t
(** Assemble a versioned snapshot from completed cells, probing the host
    metadata. *)
