module R = Tstm_runtime.Runtime_sim
module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)
module No = Tstm_norec.Norec.Make (R)
module Vac = Tstm_vacation.Vacation.Make (Ts)
module Config = Tinystm.Config
module Intf = Tstm_tm.Tm_intf
module Registry = Tstm_tm.Registry

(* Timestamps for layers without a runtime handle (the tuner) come from the
   sink's clock; every scenario runs on the simulated runtime. *)
let () = Tstm_obs.Sink.set_clock R.now_cycles

(* ------------------------------------------------------------------ *)
(* The STM registry entries                                            *)
(* ------------------------------------------------------------------ *)

let config_of_tuning strategy (tu : Intf.tuning) =
  Config.make ~n_locks:tu.Intf.n_locks ~shifts:tu.Intf.shifts
    ~hierarchy:tu.Intf.hierarchy ~hierarchy2:tu.Intf.hierarchy2 ~strategy ()

(* TinySTM packaged per write strategy: the strategy is part of the STM's
   identity (the paper compares WB and WT as distinct competitors), not a
   tuning knob. *)
module Tinystm_packed (Strategy : sig
  val name : string
  val strategy : Config.strategy
end) : Intf.STM = struct
  include Ts

  let name = Strategy.name
  let family = "tinystm"

  let capabilities =
    {
      Intf.lock_array = true;
      dynamic_reconfig = true;
      read_only_fastpath = true;
      snapshot_extension = true;
    }

  let create ?(tuning = Intf.default_tuning) ?max_retries ?cm ?watchdog
      ~memory_words () =
    Ts.create
      ~config:(config_of_tuning Strategy.strategy tuning)
      ?max_retries ?cm ?watchdog ~memory_words ()

  let configure t tuning =
    Ts.set_config t (config_of_tuning Strategy.strategy tuning)

  let live_words t = V.live_words (Ts.memory t)
end

module Stm_wb = Tinystm_packed (struct
  let name = "tinystm-wb"
  let strategy = Config.Write_back
end)

module Stm_wt = Tinystm_packed (struct
  let name = "tinystm-wt"
  let strategy = Config.Write_through
end)

module Stm_tl2 : Intf.STM = struct
  include Tl

  let family = "tl2"

  let capabilities =
    {
      Intf.lock_array = true;
      dynamic_reconfig = false;
      read_only_fastpath = true;
      snapshot_extension = false;
    }

  let create ?(tuning = Intf.default_tuning) ?max_retries ?cm ?watchdog
      ~memory_words () =
    (* TL2 has no hierarchical array; those knobs are ignored. *)
    Tl.create ~n_locks:tuning.Intf.n_locks ~shifts:tuning.Intf.shifts
      ?max_retries ?cm ?watchdog ~memory_words ()

  let configure _ _ =
    Intf.capability_error ~stm:"tl2" ~capability:"dynamic_reconfig"

  let live_words t = V.live_words (Tl.memory t)
end

module Stm_norec : Intf.STM = struct
  include No

  let family = "norec"

  let capabilities =
    {
      Intf.lock_array = false;
      dynamic_reconfig = false;
      read_only_fastpath = true;
      snapshot_extension = true;
    }

  let create ?tuning:_ ?max_retries ?cm ?watchdog ~memory_words () =
    (* NOrec has no lock array and no hierarchy: the whole tuning record
       is inert (capabilities.lock_array = false). *)
    No.create ?max_retries ?cm ?watchdog ~memory_words ()

  let configure _ _ =
    Intf.capability_error ~stm:"norec" ~capability:"dynamic_reconfig"

  let live_words t = V.live_words (No.memory t)
end

let () =
  Registry.register ~aliases:[ "wb" ] ~label:"TinySTM-WB"
    (module Stm_wb : Intf.STM);
  Registry.register ~aliases:[ "wt" ] ~label:"TinySTM-WT"
    (module Stm_wt : Intf.STM);
  Registry.register ~label:"TL2" (module Stm_tl2 : Intf.STM);
  Registry.register ~label:"NOrec" (module Stm_norec : Intf.STM)

(* Canonical enumeration order for reports: family-major, so columns of
   the same algorithm family stay adjacent in every table regardless of
   registration interleaving. *)
let all_stms =
  List.concat_map
    (fun fam ->
      List.map
        (fun e -> e.Registry.name)
        (Registry.filter (fun e -> e.Registry.family = fam)))
    (Registry.families ())

let stm_label = Registry.label

(* ------------------------------------------------------------------ *)
(* Experiment entry points                                             *)
(* ------------------------------------------------------------------ *)

let default_locks = Config.default.Config.n_locks

let tuning_of ?(n_locks = default_locks) ?(shifts = 0) ?(hierarchy = 1)
    ?(hierarchy2 = 1) () =
  { Intf.n_locks; shifts; hierarchy; hierarchy2 }

let run_intset ~stm ?n_locks ?shifts ?hierarchy ?hierarchy2 ?cm ?watchdog
    (spec : Workload.spec) =
  let (module M) = Registry.get stm in
  let module D = Driver.Make (R) (M) in
  let tuning = tuning_of ?n_locks ?shifts ?hierarchy ?hierarchy2 () in
  let t =
    M.create ~tuning ?cm ?watchdog
      ~memory_words:(Workload.memory_words_for spec) ()
  in
  let ops = D.make_structure t spec.Workload.structure in
  D.populate t ops spec;
  fst (D.run t ops spec)

let run_intset_observed ~stm ?n_locks ?shifts ?hierarchy ?hierarchy2 ?cm
    ?watchdog ?ring_capacity ~period ~n_periods (spec : Workload.spec) =
  let (module M) = Registry.get stm in
  let module D = Driver.Make (R) (M) in
  let tuning = tuning_of ?n_locks ?shifts ?hierarchy ?hierarchy2 () in
  let collector = Tstm_obs.Sink.collector ?ring_capacity () in
  let t =
    M.create ~tuning ?cm ?watchdog
      ~memory_words:(Workload.memory_words_for spec) ()
  in
  let ops = D.make_structure t spec.Workload.structure in
  D.populate t ops spec;
  (* The sink goes live only for the measured run: population noise stays
     out of the trace, and the previous sink (normally [Null]) comes back
     afterwards even on exceptions. *)
  let result, metrics =
    Tstm_obs.Sink.with_sink (Tstm_obs.Sink.Collect collector) (fun () ->
        D.run
          ~control:
            { D.period; n_periods; on_period = (fun _ _ _ -> ()) }
          ~collector t ops spec)
  in
  (result, collector, Option.get metrics)

let run_vacation ?(n_locks = default_locks) ?(shifts = 0) ?(hierarchy = 1)
    ?(spec = Vac.default_spec) ~nthreads ~duration ~seed () =
  let config = Config.make ~n_locks ~shifts ~hierarchy () in
  let t =
    Ts.create ~config ~memory_words:(Vac.memory_words_for spec) ()
  in
  let v = Vac.create t in
  let v = Vac.populate v spec ~seed in
  Ts.reset_stats t;
  R.run ~nthreads (fun tid ->
      let g = Tstm_util.Xrand.create (Tstm_util.Bitops.mix ((seed * 131) + tid)) in
      let t0 = R.now () in
      while R.now () -. t0 < duration do
        Vac.client_step v spec g
      done);
  let stats = Ts.stats t in
  let commits = stats.Tstm_tm.Tm_stats.commits in
  let aborts = Tstm_tm.Tm_stats.aborts stats in
  {
    Workload.commits;
    aborts;
    throughput = float_of_int commits /. duration;
    abort_rate = float_of_int aborts /. duration;
    stats;
    elapsed = duration;
  }

type tune_trace = {
  steps : Tstm_tuning.Tuner.step list;
  validation_rates : (float * float) list;
}

let tuning_start =
  (* The paper's evaluation starts tuning from 2^8 locks, shift 0 and a
     disabled hierarchical array (§4.3). *)
  Config.make ~n_locks:(1 lsl 8) ~shifts:0 ~hierarchy:1 ()

module D_ts = Driver.Make (R) (Ts)

let run_intset_autotuned ?(initial = tuning_start) ?(period = 0.002)
    ?(n_steps = 20) ?(tuner_seed = 0x51ce) (spec : Workload.spec) =
  let words = Workload.memory_words_for spec in
  let t = Ts.create ~config:initial ~memory_words:words () in
  let ops = D_ts.make_structure t spec.Workload.structure in
  D_ts.populate t ops spec;
  let tuner = Tstm_tuning.Tuner.create ~seed:tuner_seed initial in
  let rates = ref [] in
  let prev_proc = ref 0 and prev_skip = ref 0 in
  let step_proc = ref 0 and step_skip = ref 0 and step_periods = ref 0 in
  let on_period _idx throughput (cum : Tstm_tm.Tm_stats.t) =
    step_proc :=
      !step_proc + (cum.Tstm_tm.Tm_stats.val_locks_processed - !prev_proc);
    step_skip :=
      !step_skip + (cum.Tstm_tm.Tm_stats.val_locks_skipped - !prev_skip);
    prev_proc := cum.Tstm_tm.Tm_stats.val_locks_processed;
    prev_skip := cum.Tstm_tm.Tm_stats.val_locks_skipped;
    incr step_periods;
    match Tstm_tuning.Tuner.record tuner throughput with
    | Tstm_tuning.Tuner.Keep_measuring -> ()
    | Tstm_tuning.Tuner.Reconfigure cfg ->
        let span = float_of_int !step_periods *. period in
        rates :=
          (float_of_int !step_proc /. span, float_of_int !step_skip /. span)
          :: !rates;
        step_proc := 0;
        step_skip := 0;
        step_periods := 0;
        if not (Config.equal cfg (Ts.config t)) then Ts.set_config t cfg
  in
  ignore
    (D_ts.run
       ~control:{ D_ts.period; n_periods = 3 * n_steps; on_period }
       t ops spec);
  {
    steps = Tstm_tuning.Tuner.history tuner;
    validation_rates = List.rev !rates;
  }
