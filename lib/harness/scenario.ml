module R = Tstm_runtime.Runtime_sim
module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)
module Vac = Tstm_vacation.Vacation.Make (Ts)
module D_ts = Driver.Make (R) (Ts)
module D_tl = Driver.Make (R) (Tl)
module Config = Tinystm.Config

(* Timestamps for layers without a runtime handle (the tuner) come from the
   sink's clock; every scenario runs on the simulated runtime. *)
let () = Tstm_obs.Sink.set_clock R.now_cycles

type stm_kind = Tinystm_wb | Tinystm_wt | Tl2

let stm_label = function
  | Tinystm_wb -> "TinySTM-WB"
  | Tinystm_wt -> "TinySTM-WT"
  | Tl2 -> "TL2"

let all_stms = [ Tinystm_wb; Tinystm_wt; Tl2 ]

let default_locks = Config.default.Config.n_locks

let run_intset ~stm ?(n_locks = default_locks) ?(shifts = 0) ?(hierarchy = 1)
    ?(hierarchy2 = 1) (spec : Workload.spec) =
  let words = Workload.memory_words_for spec in
  match stm with
  | Tl2 ->
      let t = Tl.create ~n_locks ~shifts ~memory_words:words () in
      let ops = D_tl.make_structure t spec.Workload.structure in
      D_tl.populate t ops spec;
      D_tl.run t ops spec
  | Tinystm_wb | Tinystm_wt ->
      let strategy =
        if stm = Tinystm_wb then Config.Write_back else Config.Write_through
      in
      let config =
        Config.make ~n_locks ~shifts ~hierarchy ~hierarchy2 ~strategy ()
      in
      let t = Ts.create ~config ~memory_words:words () in
      let ops = D_ts.make_structure t spec.Workload.structure in
      D_ts.populate t ops spec;
      D_ts.run t ops spec

let run_intset_observed ~stm ?(n_locks = default_locks) ?(shifts = 0)
    ?(hierarchy = 1) ?(hierarchy2 = 1) ?ring_capacity ~period ~n_periods
    (spec : Workload.spec) =
  let words = Workload.memory_words_for spec in
  let collector = Tstm_obs.Sink.collector ?ring_capacity () in
  (* The sink goes live only for the measured run: population noise stays
     out of the trace, and the previous sink (normally [Null]) comes back
     afterwards even on exceptions. *)
  let observe f = Tstm_obs.Sink.with_sink (Tstm_obs.Sink.Collect collector) f in
  let result, metrics =
    match stm with
    | Tl2 ->
        let t = Tl.create ~n_locks ~shifts ~memory_words:words () in
        let ops = D_tl.make_structure t spec.Workload.structure in
        D_tl.populate t ops spec;
        observe (fun () ->
            D_tl.run_observed t ops spec ~period ~n_periods collector)
    | Tinystm_wb | Tinystm_wt ->
        let strategy =
          if stm = Tinystm_wb then Config.Write_back else Config.Write_through
        in
        let config =
          Config.make ~n_locks ~shifts ~hierarchy ~hierarchy2 ~strategy ()
        in
        let t = Ts.create ~config ~memory_words:words () in
        let ops = D_ts.make_structure t spec.Workload.structure in
        D_ts.populate t ops spec;
        observe (fun () ->
            D_ts.run_observed t ops spec ~period ~n_periods collector)
  in
  (result, collector, metrics)

let run_vacation ?(n_locks = default_locks) ?(shifts = 0) ?(hierarchy = 1)
    ?(spec = Vac.default_spec) ~nthreads ~duration ~seed () =
  let config = Config.make ~n_locks ~shifts ~hierarchy () in
  let t =
    Ts.create ~config ~memory_words:(Vac.memory_words_for spec) ()
  in
  let v = Vac.create t in
  let v = Vac.populate v spec ~seed in
  Ts.reset_stats t;
  R.run ~nthreads (fun tid ->
      let g = Tstm_util.Xrand.create (Tstm_util.Bitops.mix ((seed * 131) + tid)) in
      let t0 = R.now () in
      while R.now () -. t0 < duration do
        Vac.client_step v spec g
      done);
  let stats = Ts.stats t in
  let commits = stats.Tstm_tm.Tm_stats.commits in
  let aborts = Tstm_tm.Tm_stats.aborts stats in
  {
    Workload.commits;
    aborts;
    throughput = float_of_int commits /. duration;
    abort_rate = float_of_int aborts /. duration;
    stats;
    elapsed = duration;
  }

type tune_trace = {
  steps : Tstm_tuning.Tuner.step list;
  validation_rates : (float * float) list;
}

let tuning_start =
  (* The paper's evaluation starts tuning from 2^8 locks, shift 0 and a
     disabled hierarchical array (§4.3). *)
  Config.make ~n_locks:(1 lsl 8) ~shifts:0 ~hierarchy:1 ()

let run_intset_autotuned ?(initial = tuning_start) ?(period = 0.002)
    ?(n_steps = 20) ?(tuner_seed = 0x51ce) (spec : Workload.spec) =
  let words = Workload.memory_words_for spec in
  let t = Ts.create ~config:initial ~memory_words:words () in
  let ops = D_ts.make_structure t spec.Workload.structure in
  D_ts.populate t ops spec;
  let tuner = Tstm_tuning.Tuner.create ~seed:tuner_seed initial in
  let rates = ref [] in
  let prev_proc = ref 0 and prev_skip = ref 0 in
  let step_proc = ref 0 and step_skip = ref 0 and step_periods = ref 0 in
  let on_period _idx throughput (cum : Tstm_tm.Tm_stats.t) =
    step_proc :=
      !step_proc + (cum.Tstm_tm.Tm_stats.val_locks_processed - !prev_proc);
    step_skip :=
      !step_skip + (cum.Tstm_tm.Tm_stats.val_locks_skipped - !prev_skip);
    prev_proc := cum.Tstm_tm.Tm_stats.val_locks_processed;
    prev_skip := cum.Tstm_tm.Tm_stats.val_locks_skipped;
    incr step_periods;
    match Tstm_tuning.Tuner.record tuner throughput with
    | Tstm_tuning.Tuner.Keep_measuring -> ()
    | Tstm_tuning.Tuner.Reconfigure cfg ->
        let span = float_of_int !step_periods *. period in
        rates :=
          (float_of_int !step_proc /. span, float_of_int !step_skip /. span)
          :: !rates;
        step_proc := 0;
        step_skip := 0;
        step_periods := 0;
        if not (Config.equal cfg (Ts.config t)) then Ts.set_config t cfg
  in
  D_ts.run_with_control t ops spec ~period ~n_periods:(3 * n_steps) ~on_period;
  {
    steps = Tstm_tuning.Tuner.history tuner;
    validation_rates = List.rev !rates;
  }
