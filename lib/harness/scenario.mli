(** Top-level experiment entry points on the simulated runtime: one call per
    (STM implementation, workload) pair.  All the figure drivers build on
    these.

    Loading this module registers the packaged STM implementations —
    ["tinystm-wb"] (alias ["wb"]), ["tinystm-wt"] (alias ["wt"]), ["tl2"]
    and ["norec"] — in {!Tstm_tm.Registry}; every [~stm] argument below is
    a registry name or alias. *)

module R = Tstm_runtime.Runtime_sim
module Ts : module type of Tinystm.Make (R)
module Tl : module type of Tstm_tl2.Tl2.Make (R)
module No : module type of Tstm_norec.Norec.Make (R)
module Vac : module type of Tstm_vacation.Vacation.Make (Ts)

val all_stms : string list
(** Canonical registry names in family-major presentation order: entries
    of the same algorithm family stay adjacent, families in
    first-registration order. *)

val stm_label : string -> string
(** Display label, e.g. ["TinySTM-WB"]; raises [Invalid_argument] for
    unknown names. *)

val run_intset :
  stm:string ->
  ?n_locks:int ->
  ?shifts:int ->
  ?hierarchy:int ->
  ?hierarchy2:int ->
  ?cm:Tstm_cm.Cm.policy ->
  ?watchdog:Tstm_runtime.Watchdog.t ->
  Workload.spec ->
  Workload.result
(** Create a fresh instance with the given tuning parameters (TL2 ignores
    [hierarchy]), build and populate the spec's structure, run the
    workload.  [cm] (default [Backoff], byte-identical to the historical
    behaviour) and [watchdog] select the contention manager and arm the
    progress watchdog. *)

val run_intset_observed :
  stm:string ->
  ?n_locks:int ->
  ?shifts:int ->
  ?hierarchy:int ->
  ?hierarchy2:int ->
  ?cm:Tstm_cm.Cm.policy ->
  ?watchdog:Tstm_runtime.Watchdog.t ->
  ?ring_capacity:int ->
  period:float ->
  n_periods:int ->
  Workload.spec ->
  Workload.result * Tstm_obs.Sink.collector * Tstm_obs.Metrics.t
(** {!run_intset} under a live observability sink: the measured run (not
    the population phase) records events into a fresh collector and one
    metrics row per measurement period; the previous sink is restored on
    return.  Total measured time is [period * n_periods] virtual seconds.
    Deterministic: same spec and seed give byte-identical traces. *)

val run_vacation :
  ?n_locks:int ->
  ?shifts:int ->
  ?hierarchy:int ->
  ?spec:Vac.spec ->
  nthreads:int ->
  duration:float ->
  seed:int ->
  unit ->
  Workload.result
(** The Vacation benchmark on TinySTM write-back (Fig. 7's subject). *)

(** Trace of an auto-tuned run (Figs. 10-12). *)
type tune_trace = {
  steps : Tstm_tuning.Tuner.step list;
      (** one entry per configuration the tuner measured, in order *)
  validation_rates : (float * float) list;
      (** per configuration step: (locks processed/s, locks skipped/s)
          during read-set validation — the data of Fig. 12 *)
}

val run_intset_autotuned :
  ?initial:Tinystm.Config.t ->
  ?period:float ->
  ?n_steps:int ->
  ?tuner_seed:int ->
  Workload.spec ->
  tune_trace
(** Run the workload while the hill-climbing tuner re-tunes the instance
    every [period] seconds (3 measurement periods per configuration step,
    [n_steps] steps).  [initial] defaults to the paper's evaluation start:
    2{^8} locks, 0 shifts, hierarchy disabled. *)
