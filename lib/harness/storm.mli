(** Hot-spot RMW storm: the progress-guarantee workload.

    Threads run in pairs hammering the same two words with read-modify-write
    transactions; the two threads of a pair touch the words in {e opposite}
    orders, the classic symmetric-conflict livelock shape.  A contention
    manager with no aborter preference ([suicide]) can shadow-box forever —
    detected by the {!Tstm_runtime.Watchdog} when armed; priority managers
    ([karma], [greedy]) break the symmetry and every thread completes its
    commit quota.

    Deterministic from the spec.  A virtual-time deadline bounds livelocked
    runs: past the deadline each thread's next transaction attempt raises
    internally (before touching any transactional state) and the thread
    gives up, so even a zero-progress run terminates and reports
    [completed = false]. *)

type spec = {
  stm : string;  (** {!Tstm_tm.Registry} name or alias *)
  cm : string;  (** contention-manager name, {!Tstm_cm.Cm.of_string} form *)
  nthreads : int;  (** >= 2; odd counts leave the last thread unpaired *)
  quota : int;  (** commits each thread must reach *)
  deadline : float;  (** virtual seconds before a thread gives up *)
  watchdog : bool;  (** arm the progress watchdog *)
  wd_window : int;  (** watchdog zero-commit window, cycles *)
  wd_starve : int;  (** watchdog per-transaction retry ceiling; 0 disables *)
  wd_calm : int;  (** calm windows before one de-escalation step *)
  seed : int;
}

val default : spec
(** 4 threads on [tinystm-wb] under [suicide], quota 32, 2 ms deadline,
    watchdog off with a 1024-cycle window, retry ceiling 64 and calm
    window 2 (tight enough that the storm's livelock detector, not the
    starvation ceiling, trips first — pinned by a golden test). *)

type report = {
  commits : int array;  (** per-thread commit counts *)
  completed : bool;  (** every thread reached [quota] before [deadline] *)
  livelocks : int;  (** watchdog zero-commit windows (0 when unarmed) *)
  starvations : int;  (** watchdog retry-ceiling crossings *)
  switches : int;  (** watchdog degradation-level changes *)
  escalations : int;  (** serial-irrevocable escalations *)
  killed : int;  (** aborts inflicted by priority contention managers *)
  elapsed : float;  (** max per-thread virtual end time *)
}

val repro_command : spec -> string
(** The `repro storm ...` command line replaying exactly this spec. *)

val run_one : spec -> report
(** One deterministic storm.  Raises [Invalid_argument] for an unknown
    contention-manager name or [nthreads < 2]. *)

val pp_report : Format.formatter -> report -> unit
