(* Cost-model ablation: how the headline comparison responds to each
   simulator cost constant, plus the §3.1 contention-management and §3.2
   two-level-hierarchy alternatives.

   Each point is pure data and [run_point] is self-contained (it installs
   the cost model it needs before running), so points evaluate
   independently in any order or process. *)

module CM = Tstm_runtime.Cache_model
module Rs = Tstm_runtime.Runtime_sim

type point =
  | Cost of { label : string; params : CM.params }
  | Conflict_wait of int
  | Two_level of { hierarchy : int; hierarchy2 : int }

type row =
  | Cost_row of { label : string; cells : (string * float) list }
  | Wait_row of { attempts : int; throughput : float; aborts : int }
  | Two_level_row of {
      hierarchy : int;
      hierarchy2 : int;
      throughput : float;
      processed : int;
      skipped : int;
    }

(* DESIGN.md calls out the simulator cost constants as a design choice; this
   sweep shows how the headline comparison (Fig. 3b: list, 256 elements,
   20% updates, 8 threads) responds to each of them. *)
let default_points =
  [
    Cost { label = "baseline"; params = CM.default };
    Cost
      {
        label = "line_transfer x2";
        params = { CM.default with CM.line_transfer = 200 };
      };
    Cost
      {
        label = "line_transfer /2";
        params = { CM.default with CM.line_transfer = 50 };
      };
    Cost
      { label = "cas_extra x3"; params = { CM.default with CM.cas_extra = 60 } };
    Cost
      {
        label = "no L1 (flat hierarchy)";
        params = { CM.default with CM.l1_miss = 0 };
      };
    Cost
      {
        label = "tiny private cache (16 KiB)";
        params =
          { CM.default with CM.private_cache_lines = 256; CM.l1_lines = 64 };
      };
    Conflict_wait 0;
    Conflict_wait 4;
    Conflict_wait 32;
    Two_level { hierarchy = 1; hierarchy2 = 1 };
    Two_level { hierarchy = 64; hierarchy2 = 1 };
    Two_level { hierarchy = 64; hierarchy2 = 8 };
    Two_level { hierarchy = 256; hierarchy2 = 16 };
  ]

let headline_spec ~initial_size =
  Workload.make ~structure:Workload.List ~initial_size ~update_pct:20.0
    ~nthreads:8 ~duration:0.002 ()

let run_point = function
  | Cost { label; params } ->
      Rs.configure params;
      let spec = headline_spec ~initial_size:256 in
      (* One representative per algorithm family (the first registered
         entry), so a newly registered family joins the headline
         sensitivity table without touching this sweep. *)
      let cells =
        List.map
          (fun fam ->
            match
              Tstm_tm.Registry.filter (fun e -> e.Tstm_tm.Registry.family = fam)
            with
            | [] -> assert false
            | e :: _ ->
                let r =
                  Scenario.run_intset ~stm:e.Tstm_tm.Registry.name spec
                in
                (fam, r.Workload.throughput))
          (Tstm_tm.Registry.families ())
      in
      Cost_row { label; cells }
  | Conflict_wait attempts ->
      (* Contention-management alternative of §3.1: bounded wait instead of
         immediate abort on a foreign lock.  [conflict_wait] is a
         TinySTM-specific constructor knob, not part of the packaged STM
         interface, so this point builds the instance directly. *)
      Rs.configure CM.default;
      let spec = headline_spec ~initial_size:256 in
      let t =
        Scenario.Ts.create
          ~config:(Tinystm.Config.make ())
          ~conflict_wait:attempts
          ~memory_words:(Workload.memory_words_for spec)
          ()
      in
      let module D = Driver.Make (Rs) (Scenario.Ts) in
      let ops = D.make_structure t spec.Workload.structure in
      D.populate t ops spec;
      let r, _ = D.run t ops spec in
      Wait_row
        { attempts; throughput = r.Workload.throughput; aborts = r.Workload.aborts }
  | Two_level { hierarchy; hierarchy2 } ->
      (* The paper's §3.2 generalization: a second, coarser counter level
         over the hierarchical array (validation-heavy list workload). *)
      Rs.configure CM.default;
      let spec = headline_spec ~initial_size:1024 in
      let r =
        Scenario.run_intset ~stm:"tinystm-wb" ~n_locks:(1 lsl 16) ~shifts:2
          ~hierarchy ~hierarchy2 spec
      in
      let s = r.Workload.stats in
      Two_level_row
        {
          hierarchy;
          hierarchy2;
          throughput = r.Workload.throughput;
          processed = s.Tstm_tm.Tm_stats.val_locks_processed;
          skipped = s.Tstm_tm.Tm_stats.val_locks_skipped;
        }

let point_label = function
  | Cost { label; _ } -> Printf.sprintf "ablation %s" label
  | Conflict_wait n -> Printf.sprintf "ablation conflict_wait=%d" n
  | Two_level { hierarchy; hierarchy2 } ->
      Printf.sprintf "ablation h=%d h2=%d" hierarchy hierarchy2

let header = "=== Cost-model ablation (list 256, 20% updates, 8 threads) ==="

let render = function
  | Cost_row { label; cells } ->
      let body =
        String.concat "   "
          (List.map
             (fun (fam, v) ->
               Printf.sprintf "%s %8.0f tx/s" (String.uppercase_ascii fam) v)
             cells)
      in
      let ratio =
        match (List.assoc_opt "tinystm" cells, List.assoc_opt "tl2" cells) with
        | Some wb, Some tl2 when tl2 > 0. ->
            Printf.sprintf "   (WB/TL2 %.2f)" (wb /. tl2)
        | _ -> ""
      in
      Printf.sprintf "%-34s %s%s" label body ratio
  | Wait_row { attempts; throughput; aborts } ->
      Printf.sprintf "conflict_wait=%-3d                  WB %8.0f tx/s   aborts %d"
        attempts throughput aborts
  | Two_level_row { hierarchy; hierarchy2; throughput; processed; skipped } ->
      Printf.sprintf
        "hierarchy h=%-3d h2=%-3d            WB %8.0f tx/s   val locks: %d processed, %d skipped"
        hierarchy hierarchy2 throughput processed skipped
