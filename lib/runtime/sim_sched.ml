type fiber = { id : int; mutable vtime : int }

type _ Effect.t += Charge : int -> unit Effect.t

type job =
  | Start of fiber * (int -> unit)
  | Resume of fiber * (unit, unit) Effect.Deep.continuation

(* Binary min-heap on (vtime, seq): seq breaks ties FIFO, which keeps the
   schedule deterministic and fair. *)
module Heap = struct
  type entry = { key : int; seq : int; job : job }
  type t = { mutable a : entry array; mutable len : int; mutable seq : int }

  let dummy =
    { key = 0; seq = 0; job = Start ({ id = -1; vtime = 0 }, fun _ -> ()) }

  let create () = { a = Array.make 64 dummy; len = 0; seq = 0 }

  let less x y = x.key < y.key || (x.key = y.key && x.seq < y.seq)

  let push t key job =
    if t.len = Array.length t.a then begin
      let a = Array.make (2 * t.len) dummy in
      Array.blit t.a 0 a 0 t.len;
      t.a <- a
    end;
    let e = { key; seq = t.seq; job } in
    t.seq <- t.seq + 1;
    let i = ref t.len in
    t.len <- t.len + 1;
    t.a.(!i) <- e;
    (* Sift up. *)
    let continue_up = ref true in
    while !continue_up && !i > 0 do
      let parent = (!i - 1) / 2 in
      if less t.a.(!i) t.a.(parent) then begin
        let tmp = t.a.(parent) in
        t.a.(parent) <- t.a.(!i);
        t.a.(!i) <- tmp;
        i := parent
      end
      else continue_up := false
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.a.(0) in
      t.len <- t.len - 1;
      t.a.(0) <- t.a.(t.len);
      t.a.(t.len) <- dummy;
      (* Sift down. *)
      let i = ref 0 in
      let continue_down = ref true in
      while !continue_down do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && less t.a.(l) t.a.(!smallest) then smallest := l;
        if r < t.len && less t.a.(r) t.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = t.a.(!smallest) in
          t.a.(!smallest) <- t.a.(!i);
          t.a.(!i) <- tmp;
          i := !smallest
        end
        else continue_down := false
      done;
      Some top.job
    end
end

type state = {
  heap : Heap.t;
  mutable current : fiber option;
  mutable nswitches : int;
}

let state = ref None

let inside () =
  match !state with
  | Some s -> s.current <> None
  | None -> false

let current_fiber () =
  match !state with
  | Some s -> s.current
  | None -> None

let tid () = match current_fiber () with Some f -> f.id | None -> 0
let now_cycles () = match current_fiber () with Some f -> f.vtime | None -> 0

let charge_noyield c =
  assert (c >= 0);
  match current_fiber () with Some f -> f.vtime <- f.vtime + c | None -> ()

let charge c =
  assert (c >= 0);
  if inside () then Effect.perform (Charge c)

let last_switches = ref 0

let switches () =
  match !state with Some s -> s.nswitches | None -> !last_switches

let handler_for (s : state) (fb : fiber) =
  {
    Effect.Deep.retc = (fun () -> ());
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Charge c ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                (* Yielding charges are the scheduler's preemption points;
                   an active chaos plan may stretch any of them, reordering
                   virtual-time ties.  Same seed, same stretches. *)
                let c =
                  if Tstm_chaos.Chaos.enabled () then
                    c + Tstm_chaos.Chaos.jitter ()
                  else c
                in
                fb.vtime <- fb.vtime + c;
                Heap.push s.heap fb.vtime (Resume (fb, k)))
        | _ -> None);
  }

let run ~nthreads body =
  if nthreads < 1 then invalid_arg "Sim_sched.run: nthreads < 1";
  if !state <> None then invalid_arg "Sim_sched.run: nested run";
  let s = { heap = Heap.create (); current = None; nswitches = 0 } in
  state := Some s;
  for i = 0 to nthreads - 1 do
    let fb = { id = i; vtime = 0 } in
    Heap.push s.heap 0 (Start (fb, body))
  done;
  let exec job =
    s.nswitches <- s.nswitches + 1;
    match job with
    | Start (fb, f) ->
        s.current <- Some fb;
        Effect.Deep.match_with (fun () -> f fb.id) () (handler_for s fb)
    | Resume (fb, k) ->
        s.current <- Some fb;
        Effect.Deep.continue k ()
  in
  let finish () =
    last_switches := s.nswitches;
    state := None
  in
  let rec loop () =
    match Heap.pop s.heap with
    | None -> ()
    | Some job ->
        exec job;
        s.current <- None;
        loop ()
  in
  (try loop () with e -> finish (); raise e);
  finish ()
