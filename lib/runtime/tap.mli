(** Process-global instrumentation tap on the simulated runtime's shared
    memory, in the spirit of {!Tstm_obs.Sink}: the default is {!Null} (no
    hooks installed) and every emission site guards on {!enabled} — a single
    mutable-bool load — so an untapped run is indistinguishable, in virtual
    time and in results, from the untouched code.  Hooks never charge
    simulator cycles; a tapped run is bit-identical to an untapped one.

    Consumers (the {!Tstm_san} happens-before sanitizer) install a {!hooks}
    record; producers are:

    - {!Runtime_sim}: every [sarray] access ({!access}) with the array's
      label, and the {!run_boundary} full-synchronization points at the
      start and end of each simulated run;
    - {!Tstm_vmm.Vmm}: the allocator events ({!vmm_alloc}, {!vmm_free}) and
      the explicitly non-transactional word accesses ({!vmm_load},
      {!vmm_store}).

    The allocator brackets its own free-list manipulation with
    {!suspend}/{!resume} so protocol-internal accesses to arena words (next
    pointers threaded through freed blocks) are not misread as data
    accesses.  Suspension is per-CPU and reentrant. *)

type access = Get | Set | Cas of bool  (** [Cas success] *) | Faa

type hooks = {
  on_access : cpu:int -> label:string -> index:int -> access -> unit;
      (** A shared-array access by [cpu] on the array labelled [label]
          (see {!Runtime_intf.S.sarray_label}; [""] when unlabelled). *)
  on_vmm_load : cpu:int -> addr:int -> unit;
      (** Non-transactional [Vmm.load]. *)
  on_vmm_store : cpu:int -> addr:int -> unit;
      (** Non-transactional [Vmm.store]. *)
  on_vmm_alloc : cpu:int -> addr:int -> len:int -> unit;
  on_vmm_free : cpu:int -> addr:int -> len:int -> unit;
  on_run_boundary : unit -> unit;
      (** Start or end of a simulated run: a real full synchronization
          (threads are forked/joined there). *)
  on_seqlock_acquire : cpu:int -> drawn:int -> unit;
      (** [cpu] won the global sequence lock (the CAS even→odd); [drawn]
          is the even version it will publish at release.  Orec-free STMs
          (NOrec) have no per-stripe locks: this acquire/release pair is
          their only write-side synchronization edge. *)
  on_seqlock_release : cpu:int -> unit;
      (** [cpu] published [drawn] and released the sequence lock
          (odd→even): a release edge every later acquirer/validator
          synchronizes with. *)
  on_seqlock_validate : cpu:int -> value:int -> unit;
      (** [cpu] completed a successful value-based revalidation of its
          read set against the (even) sequence value [value]: an acquire
          edge from every earlier release, re-certifying the whole read
          set at that snapshot. *)
}

val install : hooks option -> unit
(** [install (Some h)] arms the tap; [install None] restores the zero-cost
    null tap. *)

val enabled : unit -> bool
(** One boolean load; producers gate every emission on it. *)

val suspend : unit -> unit
(** Suppress emission from the calling CPU until the matching {!resume}
    (reentrant).  Used by the allocator around free-list internals. *)

val resume : unit -> unit

(** {1 Producer entry points} — no-ops when {!enabled} is false or the
    calling CPU is suspended. *)

val access : label:string -> index:int -> access -> unit
val vmm_load : addr:int -> unit
val vmm_store : addr:int -> unit
val vmm_alloc : addr:int -> len:int -> unit
val vmm_free : addr:int -> len:int -> unit
val run_boundary : unit -> unit

val seqlock_acquire : drawn:int -> unit
val seqlock_release : unit -> unit
val seqlock_validate : value:int -> unit
