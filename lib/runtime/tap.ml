type access = Get | Set | Cas of bool | Faa

type hooks = {
  on_access : cpu:int -> label:string -> index:int -> access -> unit;
  on_vmm_load : cpu:int -> addr:int -> unit;
  on_vmm_store : cpu:int -> addr:int -> unit;
  on_vmm_alloc : cpu:int -> addr:int -> len:int -> unit;
  on_vmm_free : cpu:int -> addr:int -> len:int -> unit;
  on_run_boundary : unit -> unit;
  on_seqlock_acquire : cpu:int -> drawn:int -> unit;
  on_seqlock_release : cpu:int -> unit;
  on_seqlock_validate : cpu:int -> value:int -> unit;
}

let hooks = ref None

(* [active] duplicates the Some/None distinction as one mutable bool so the
   hot-path guard is a single load and compare (the Sink discipline). *)
let active = ref false

(* Per-CPU reentrant suppression depth; sized like [Sink.max_cpus]. *)
let max_cpus = 64

let suspended = Array.make max_cpus 0

let install h =
  hooks := h;
  Array.fill suspended 0 max_cpus 0;
  active := h <> None

let enabled () = !active
let cpu () = Sim_sched.tid ()

(* No-ops while disarmed, so the disarmed tap touches no state at all;
   arming happens outside simulated runs, never inside a bracket. *)
let suspend () = if !active then suspended.(cpu ()) <- suspended.(cpu ()) + 1
let resume () = if !active then suspended.(cpu ()) <- suspended.(cpu ()) - 1
let live () = !active && suspended.(cpu ()) = 0

let access ~label ~index kind =
  if live () then
    match !hooks with
    | Some h -> h.on_access ~cpu:(cpu ()) ~label ~index kind
    | None -> ()

let vmm_load ~addr =
  if live () then
    match !hooks with Some h -> h.on_vmm_load ~cpu:(cpu ()) ~addr | None -> ()

let vmm_store ~addr =
  if live () then
    match !hooks with Some h -> h.on_vmm_store ~cpu:(cpu ()) ~addr | None -> ()

let vmm_alloc ~addr ~len =
  if live () then
    match !hooks with
    | Some h -> h.on_vmm_alloc ~cpu:(cpu ()) ~addr ~len
    | None -> ()

let vmm_free ~addr ~len =
  if live () then
    match !hooks with
    | Some h -> h.on_vmm_free ~cpu:(cpu ()) ~addr ~len
    | None -> ()

let run_boundary () =
  if !active then
    match !hooks with Some h -> h.on_run_boundary () | None -> ()

let seqlock_acquire ~drawn =
  if live () then
    match !hooks with
    | Some h -> h.on_seqlock_acquire ~cpu:(cpu ()) ~drawn
    | None -> ()

let seqlock_release () =
  if live () then
    match !hooks with
    | Some h -> h.on_seqlock_release ~cpu:(cpu ())
    | None -> ()

let seqlock_validate ~value =
  if live () then
    match !hooks with
    | Some h -> h.on_seqlock_validate ~cpu:(cpu ()) ~value
    | None -> ()
