let name = "domains"
let is_simulated = false

type sarray = int Atomic.t array

let sarray_make len init = Array.init len (fun _ -> Atomic.make init)
let sarray_length = Array.length
let get a i = Atomic.get a.(i)
let set a i v = Atomic.set a.(i) v
let cas a i expected desired = Atomic.compare_and_set a.(i) expected desired
let fetch_add a i d = Atomic.fetch_and_add a.(i) d

let tid_key = Domain.DLS.new_key (fun () -> 0)
let tid () = Domain.DLS.get tid_key

let run ~nthreads body =
  if nthreads < 1 then invalid_arg "Runtime_real.run: nthreads < 1";
  let worker i () =
    Domain.DLS.set tid_key i;
    body i
  in
  let domains =
    List.init (nthreads - 1) (fun i -> Domain.spawn (worker (i + 1)))
  in
  worker 0 ();
  List.iter Domain.join domains

let now () = Unix.gettimeofday ()
let now_cycles () = int_of_float (Unix.gettimeofday () *. 1e9)
let sarray_label _ _ = ()
let charge _ = ()
let charge_local _ = ()
let yield () = Domain.cpu_relax ()
