let name = "domains"
let is_simulated = false

type sarray = int Atomic.t array

let sarray_make len init = Array.init len (fun _ -> Atomic.make init)
let sarray_length = Array.length
let get a i = Atomic.get a.(i)
let set a i v = Atomic.set a.(i) v
let cas a i expected desired = Atomic.compare_and_set a.(i) expected desired
let fetch_add a i d = Atomic.fetch_and_add a.(i) d

let tid_key = Domain.DLS.new_key (fun () -> 0)
let tid () = Domain.DLS.get tid_key

(* Worker-domain pool.

   Domain.spawn costs a full runtime-system handshake (~tens of
   microseconds plus a minor-heap's worth of allocation), which the bench
   harness would pay per repetition per thread.  Instead domains are
   spawned once, parked on a condition variable, and handed one job per
   [run]; the pool grows on demand and is torn down by [at_exit]. *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable busy : bool;  (* a submitted job has not yet finished *)
  mutable error : exn option;  (* exception the last job died with *)
  mutable shutdown : bool;
  mutable domain : unit Domain.t option;  (* None until spawned *)
}

let worker_loop w () =
  let rec loop () =
    Mutex.lock w.mutex;
    while w.job = None && not w.shutdown do
      Condition.wait w.cond w.mutex
    done;
    if w.shutdown then Mutex.unlock w.mutex
    else begin
      let f = match w.job with Some f -> f | None -> assert false in
      w.job <- None;
      Mutex.unlock w.mutex;
      let err = (try f (); None with e -> Some e) in
      Mutex.lock w.mutex;
      w.error <- err;
      w.busy <- false;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex;
      loop ()
    end
  in
  loop ()

let fresh_worker () =
  let w =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      busy = false;
      error = None;
      shutdown = false;
      domain = None;
    }
  in
  w.domain <- Some (Domain.spawn (worker_loop w));
  w

(* The pool itself is only ever touched by the orchestrating thread ([run]
   is not reentrant), so a plain growable list suffices. *)
let pool : worker list ref = ref []
let in_run = ref false

let ensure_workers n =
  let have = List.length !pool in
  if n > have then
    pool := !pool @ List.init (n - have) (fun _ -> fresh_worker ());
  (* First [n] workers, oldest first, so repeated same-width runs reuse the
     same domains (and their warmed DLS state). *)
  List.filteri (fun i _ -> i < n) !pool

let submit w f =
  Mutex.lock w.mutex;
  w.job <- Some f;
  w.busy <- true;
  w.error <- None;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.busy do
    Condition.wait w.cond w.mutex
  done;
  let err = w.error in
  w.error <- None;
  Mutex.unlock w.mutex;
  err

let shutdown_pool () =
  let ws = !pool in
  pool := [];
  List.iter
    (fun w ->
      Mutex.lock w.mutex;
      w.shutdown <- true;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex)
    ws;
  List.iter (fun w -> Option.iter Domain.join w.domain) ws

let () = at_exit shutdown_pool

let run ~nthreads body =
  if nthreads < 1 then invalid_arg "Runtime_real.run: nthreads < 1";
  if !in_run then invalid_arg "Runtime_real.run: not reentrant";
  in_run := true;
  Fun.protect
    ~finally:(fun () -> in_run := false)
    (fun () ->
      let job i () =
        Domain.DLS.set tid_key i;
        body i
      in
      let workers = ensure_workers (nthreads - 1) in
      List.iteri (fun i w -> submit w (job (i + 1))) workers;
      (* Worker 0 runs on the orchestrating domain.  Whatever happens to
         it, every submitted job must still be awaited — otherwise the
         next [run] would race a domain still executing the previous
         body over the same shared arrays. *)
      let err0 = (try job 0 (); None with e -> Some e) in
      let errs = List.map await workers in
      match List.find_map Fun.id (err0 :: errs) with
      | Some e -> raise e
      | None -> ())

let now () = Tstm_obs.Monotonic.now_s ()
let now_cycles () = Tstm_obs.Monotonic.now_ns ()
let sarray_label _ _ = ()
let charge _ = ()
let charge_local _ = ()
let yield () = Domain.cpu_relax ()
