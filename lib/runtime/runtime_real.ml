let name = "domains"
let is_simulated = false

type sarray = int Atomic.t array

let sarray_make len init = Array.init len (fun _ -> Atomic.make init)
let sarray_length = Array.length
let get a i = Atomic.get a.(i)
let set a i v = Atomic.set a.(i) v
let cas a i expected desired = Atomic.compare_and_set a.(i) expected desired
let fetch_add a i d = Atomic.fetch_and_add a.(i) d

let tid_key = Domain.DLS.new_key (fun () -> 0)
let tid () = Domain.DLS.get tid_key

(* Worker-domain pool.

   Domain.spawn costs a full runtime-system handshake (~tens of
   microseconds plus a minor-heap's worth of allocation), which the bench
   harness would pay per repetition per thread.  Instead domains are
   spawned once, parked on a condition variable, and handed one job per
   [run]; the pool grows on demand and is torn down by [at_exit]. *)

type worker = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : (unit -> unit) option;
  mutable busy : bool;  (* a submitted job has not yet finished *)
  mutable error : exn option;  (* exception the last job died with *)
  mutable shutdown : bool;
  mutable domain : unit Domain.t option;  (* None until spawned *)
}

let worker_loop w () =
  let rec loop () =
    Mutex.lock w.mutex;
    while w.job = None && not w.shutdown do
      Condition.wait w.cond w.mutex
    done;
    if w.shutdown then Mutex.unlock w.mutex
    else begin
      let f = match w.job with Some f -> f | None -> assert false in
      w.job <- None;
      Mutex.unlock w.mutex;
      let err = (try f (); None with e -> Some e) in
      Mutex.lock w.mutex;
      w.error <- err;
      w.busy <- false;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex;
      loop ()
    end
  in
  loop ()

let fresh_worker () =
  let w =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      busy = false;
      error = None;
      shutdown = false;
      domain = None;
    }
  in
  w.domain <- Some (Domain.spawn (worker_loop w));
  w

(* The pool itself is only ever touched by the orchestrating thread ([run]
   is not reentrant), so a plain growable list suffices. *)
let pool : worker list ref = ref []
let in_run = ref false

let ensure_workers n =
  let have = List.length !pool in
  if n > have then
    pool := !pool @ List.init (n - have) (fun _ -> fresh_worker ());
  (* First [n] workers, oldest first, so repeated same-width runs reuse the
     same domains (and their warmed DLS state). *)
  List.filteri (fun i _ -> i < n) !pool

let submit w f =
  Mutex.lock w.mutex;
  w.job <- Some f;
  w.busy <- true;
  w.error <- None;
  Condition.broadcast w.cond;
  Mutex.unlock w.mutex

let await w =
  Mutex.lock w.mutex;
  while w.busy do
    Condition.wait w.cond w.mutex
  done;
  let err = w.error in
  w.error <- None;
  Mutex.unlock w.mutex;
  err

let shutdown_pool () =
  let ws = !pool in
  pool := [];
  List.iter
    (fun w ->
      Mutex.lock w.mutex;
      w.shutdown <- true;
      Condition.broadcast w.cond;
      Mutex.unlock w.mutex)
    ws;
  List.iter (fun w -> Option.iter Domain.join w.domain) ws

let () = at_exit shutdown_pool

let run ~nthreads body =
  if nthreads < 1 then invalid_arg "Runtime_real.run: nthreads < 1";
  if !in_run then invalid_arg "Runtime_real.run: not reentrant";
  in_run := true;
  Fun.protect
    ~finally:(fun () -> in_run := false)
    (fun () ->
      let job i () =
        Domain.DLS.set tid_key i;
        body i
      in
      let workers = ensure_workers (nthreads - 1) in
      List.iteri (fun i w -> submit w (job (i + 1))) workers;
      (* Worker 0 runs on the orchestrating domain.  Whatever happens to
         it, every submitted job must still be awaited — otherwise the
         next [run] would race a domain still executing the previous
         body over the same shared arrays. *)
      let err0 = (try job 0 (); None with e -> Some e) in
      let errs = List.map await workers in
      match List.find_map Fun.id (err0 :: errs) with
      | Some e -> raise e
      | None -> ())

(* ---------------------------------------------------------------------- *)
(* Self-healing run: heartbeat monitoring + respawn-and-requeue            *)
(* ---------------------------------------------------------------------- *)

module Fault = Tstm_fault.Fault

type heal_report = {
  crashes_healed : int;
  hangs_detected : int;
  hangs_recovered : int;
  requeues : int;
}

let no_heal =
  { crashes_healed = 0; hangs_detected = 0; hangs_recovered = 0; requeues = 0 }

let heal_emit ~tid action =
  if Tstm_obs.Sink.enabled () then
    Tstm_obs.Sink.emit
      ~ts:(Tstm_obs.Monotonic.now_ns ())
      ~cpu:tid
      (Tstm_obs.Event.Pool_heal { action; tid })

(* Swap a replacement into the global pool so [at_exit] joins the live
   domain, not the one we already joined. *)
let replace_worker old fresh =
  pool := List.map (fun w -> if w == old then fresh else w) !pool

let run_healed ?(hang_timeout_s = 0.05) ?(poll_s = 0.001) ?(max_requeues = 128)
    ~nthreads body =
  if nthreads < 1 then invalid_arg "Runtime_real.run_healed: nthreads < 1";
  if !in_run then invalid_arg "Runtime_real.run_healed: not reentrant";
  in_run := true;
  Fun.protect ~finally:(fun () -> in_run := false) @@ fun () ->
  let job i () =
    Domain.DLS.set tid_key i;
    (* One explicit heartbeat at job start, so a worker that crashes or
       hangs before its first linearization point is still monitored. *)
    Fault.tick ~tid:i;
    body i
  in
  (* Unlike [run], the orchestrating domain is a supervisor, not worker 0:
     it has to keep polling heartbeats while every worker runs, so all
     [nthreads] jobs go to pool domains. *)
  let workers = Array.of_list (ensure_workers nthreads) in
  let requeued = Array.make nthreads 0 in
  let finished = Array.make nthreads false in
  let errors = Array.make nthreads None in
  let hanging = Array.make nthreads false in
  let crashes = ref 0 in
  let hangs = ref 0 in
  let recovered = ref 0 in
  let requeues = ref 0 in
  Fault.clear_ticks ();
  Array.iteri (fun i w -> submit w (job i)) workers;
  let timeout_ns = int_of_float (hang_timeout_s *. 1e9) in
  let all_done () = Array.for_all Fun.id finished in
  while not (all_done ()) do
    for i = 0 to nthreads - 1 do
      if not finished.(i) then begin
        let w = workers.(i) in
        Mutex.lock w.mutex;
        let busy = w.busy in
        let err = w.error in
        if not busy then w.error <- None;
        Mutex.unlock w.mutex;
        if not busy then begin
          if hanging.(i) then begin
            hanging.(i) <- false;
            incr recovered;
            heal_emit ~tid:i "hang-recovered"
          end;
          match err with
          | Some (Fault.Injected_crash _ as e) ->
              (* The job died of an injected crash.  The parked worker is
                 idle, but the model is a dead domain: shut it down, join
                 it, spawn a replacement, requeue the job.  The requeue
                 budget is a safety valve against an unbounded plan. *)
              if requeued.(i) >= max_requeues then begin
                finished.(i) <- true;
                errors.(i) <- Some e
              end
              else begin
                requeued.(i) <- requeued.(i) + 1;
                incr requeues;
                Mutex.lock w.mutex;
                w.shutdown <- true;
                Condition.broadcast w.cond;
                Mutex.unlock w.mutex;
                Option.iter Domain.join w.domain;
                let w' = fresh_worker () in
                replace_worker w w';
                workers.(i) <- w';
                incr crashes;
                heal_emit ~tid:i "crash-respawn";
                submit w' (job i)
              end
          | err ->
              finished.(i) <- true;
              errors.(i) <- err
        end
        else begin
          (* Busy: compare the heartbeat against the stall threshold.
             Detection is advisory — an injected hang is a bounded spin
             that deliberately stops ticking, and the worker resumes on
             its own — so the monitor records the detect/recover pair
             rather than killing a live domain. *)
          let last = Fault.last_tick ~tid:i in
          let stale =
            last >= 0 && Tstm_obs.Monotonic.now_ns () - last > timeout_ns
          in
          if stale && not hanging.(i) then begin
            hanging.(i) <- true;
            incr hangs;
            heal_emit ~tid:i "hang-detected"
          end
          else if (not stale) && hanging.(i) then begin
            hanging.(i) <- false;
            incr recovered;
            heal_emit ~tid:i "hang-recovered"
          end
        end
      end
    done;
    if not (all_done ()) then Unix.sleepf poll_s
  done;
  (* Every job has been awaited; propagate the first error in thread-id
     order (same contract as [run]). *)
  (match Array.to_list errors |> List.find_map Fun.id with
  | Some e -> raise e
  | None -> ());
  {
    crashes_healed = !crashes;
    hangs_detected = !hangs;
    hangs_recovered = !recovered;
    requeues = !requeues;
  }

let now () = Tstm_obs.Monotonic.now_s ()
let now_cycles () = Tstm_obs.Monotonic.now_ns ()
let sarray_label _ _ = ()
let charge _ = ()
let charge_local _ = ()
let yield () = Domain.cpu_relax ()
