let current_params = ref Cache_model.default
let glob = ref (Cache_model.create_global Cache_model.default)

let configure p =
  Cache_model.validate p;
  current_params := p;
  glob := Cache_model.create_global p

let params () = !current_params

let name = "sim"
let is_simulated = true

type sarray = {
  data : int array;
  cache : Cache_model.t;
  p : Cache_model.params;
  mutable label : string;
}

let sarray_make len init =
  let p = !current_params in
  { data = Array.make len init; cache = Cache_model.create !glob len; p;
    label = "" }

let sarray_length a = Array.length a.data

(* Each access first charges its base cost (a preemption point, so another
   fiber may interleave here), then executes atomically, adding the
   cache-contention penalty discovered at execution time.  The [Tap]
   emission sits inside the same atomic window as the access itself (no
   charge separates them), so a tap consumer observes accesses in exactly
   the order they execute; emission never charges cycles, keeping tapped
   runs bit-identical to untapped ones. *)

let get a i =
  if Sim_sched.inside () then begin
    Sim_sched.charge a.p.Cache_model.read_hit;
    let cost = Cache_model.read_cost a.cache ~cpu:(Sim_sched.tid ()) ~index:i in
    Sim_sched.charge_noyield (cost - a.p.Cache_model.read_hit)
  end;
  let v = a.data.(i) in
  if Tap.enabled () then Tap.access ~label:a.label ~index:i Tap.Get;
  v

let set a i v =
  if Sim_sched.inside () then begin
    Sim_sched.charge a.p.Cache_model.write_hit;
    let cost = Cache_model.write_cost a.cache ~cpu:(Sim_sched.tid ()) ~index:i in
    Sim_sched.charge_noyield (cost - a.p.Cache_model.write_hit)
  end;
  a.data.(i) <- v;
  if Tap.enabled () then Tap.access ~label:a.label ~index:i Tap.Set

let cas a i expected desired =
  if Sim_sched.inside () then begin
    Sim_sched.charge (a.p.Cache_model.write_hit + a.p.Cache_model.cas_extra);
    let cost = Cache_model.write_cost a.cache ~cpu:(Sim_sched.tid ()) ~index:i in
    Sim_sched.charge_noyield (cost - a.p.Cache_model.write_hit)
  end;
  let ok =
    if a.data.(i) = expected then begin
      a.data.(i) <- desired;
      true
    end
    else false
  in
  if Tap.enabled () then Tap.access ~label:a.label ~index:i (Tap.Cas ok);
  ok

let fetch_add a i d =
  if Sim_sched.inside () then begin
    Sim_sched.charge (a.p.Cache_model.write_hit + a.p.Cache_model.cas_extra);
    let cost = Cache_model.write_cost a.cache ~cpu:(Sim_sched.tid ()) ~index:i in
    Sim_sched.charge_noyield (cost - a.p.Cache_model.write_hit)
  end;
  let old = a.data.(i) in
  a.data.(i) <- old + d;
  if Tap.enabled () then Tap.access ~label:a.label ~index:i Tap.Faa;
  old

(* Start every run with cold private caches so a result depends only on the
   experiment, not on what the process simulated before.  The run
   boundaries are real full synchronizations (fibers are forked and joined
   here), which the tap reports so a happens-before consumer can join its
   clocks. *)
let run ~nthreads body =
  Cache_model.reset_tags !glob;
  if Tap.enabled () then Tap.run_boundary ();
  Fun.protect
    ~finally:(fun () -> if Tap.enabled () then Tap.run_boundary ())
    (fun () -> Sim_sched.run ~nthreads body)

let tid = Sim_sched.tid

let now () =
  float_of_int (Sim_sched.now_cycles ())
  /. (!current_params.Cache_model.clock_ghz *. 1e9)

let now_cycles = Sim_sched.now_cycles

let sarray_label a label =
  a.label <- label;
  Cache_model.set_label a.cache label

let charge = Sim_sched.charge
let charge_local = Sim_sched.charge_noyield

(* A blocked spinner must advance virtual time or the min-time scheduler
   would never run anyone else. *)
let yield () = Sim_sched.charge 64
