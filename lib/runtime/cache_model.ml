type params = {
  clock_ghz : float;
  words_per_line : int;
  read_hit : int;
  write_hit : int;
  cas_extra : int;
  l1_lines : int;
  l1_miss : int;
  line_transfer : int;
  private_cache_lines : int;
}

let default =
  {
    clock_ghz = 2.0;
    words_per_line = 8;
    read_hit = 3;
    write_hit = 3;
    cas_extra = 20;
    l1_lines = 512;
    l1_miss = 11;
    line_transfer = 100;
    private_cache_lines = 16384;
  }

let validate p =
  if not (Tstm_util.Bitops.is_pow2 p.words_per_line) then
    invalid_arg "Cache_model: words_per_line must be a power of two";
  if not (Tstm_util.Bitops.is_pow2 p.private_cache_lines) then
    invalid_arg "Cache_model: private_cache_lines must be a power of two";
  if not (Tstm_util.Bitops.is_pow2 p.l1_lines) then
    invalid_arg "Cache_model: l1_lines must be a power of two";
  if p.l1_lines > p.private_cache_lines then
    invalid_arg "Cache_model: l1_lines must not exceed private_cache_lines";
  if p.l1_miss < 0 then invalid_arg "Cache_model: negative cost";
  if p.clock_ghz <= 0.0 then invalid_arg "Cache_model: clock_ghz <= 0";
  if p.read_hit < 0 || p.write_hit < 0 || p.cas_extra < 0 || p.line_transfer < 0
  then invalid_arg "Cache_model: negative cost"

let max_cpus = 64

type global = {
  params : params;
  tags : int array array;  (* per CPU: direct-mapped L2 tags *)
  l1_tags : int array array;  (* per CPU: direct-mapped L1 tags *)
  mutable next_base : int;  (* allocator for global line ids *)
}

let create_global params =
  validate params;
  {
    params;
    tags = Array.make max_cpus [||];
    l1_tags = Array.make max_cpus [||];
    next_base = 1;
  }

let reset_tags g =
  Array.iter (fun t -> Array.fill t 0 (Array.length t) (-1)) g.tags;
  Array.iter (fun t -> Array.fill t 0 (Array.length t) (-1)) g.l1_tags

type t = {
  g : global;
  line_shift : int;
  base : int;  (* global id of this array's line 0 *)
  owner : int array;  (* last exclusive writer per line; -1 = none *)
  sharers : int array;  (* bitmask of CPUs that may hold a copy *)
  last_word : int array;  (* word index of the last store per line; -1 = none *)
  mutable label : string option;  (* observability name; None = unattributed *)
}

let create g len =
  let p = g.params in
  let lines = (len lsr Tstm_util.Bitops.log2 p.words_per_line) + 1 in
  let base = g.next_base in
  g.next_base <- base + lines;
  {
    g;
    line_shift = Tstm_util.Bitops.log2 p.words_per_line;
    base;
    owner = Array.make lines (-1);
    sharers = Array.make lines 0;
    last_word = Array.make lines (-1);
    label = None;
  }

let set_label t label = t.label <- Some label

(* Report a coherence transfer to the observability sink, separating true
   word conflicts from false sharing via the line's last-stored word.  Only
   called on transfers caused by another CPU's copy (not cold misses or
   capacity refills), and only when tracing is enabled — it never charges
   cycles, so traced and untraced runs are identical. *)
let note_transfer t ~cpu ~line ~index =
  match t.label with
  | None -> ()
  | Some label ->
      Tstm_obs.Sink.note_transfer ~ts:(Sim_sched.now_cycles ()) ~cpu ~label
        ~line ~word:index
        ~same_word:(t.last_word.(line) = index)

(* Both cache levels are 8-way set-associative with round-robin replacement
   (a direct-mapped model suffers pathological aliasing whenever an array's
   size is close to the cache span, which no real set-associative cache
   does).  Tag layout: [sets * ways] entries plus one replacement cursor per
   set, flattened per CPU. *)
let ways = 8

let cpu_tags g cpu =
  let t = g.tags.(cpu) in
  if t <> [||] then t
  else begin
    (* ways tags + 1 round-robin cursor per set *)
    let sets = g.params.private_cache_lines / ways in
    let t = Array.make (sets * (ways + 1)) (-1) in
    g.tags.(cpu) <- t;
    t
  end

let cpu_l1_tags g cpu =
  let t = g.l1_tags.(cpu) in
  if t <> [||] then t
  else begin
    let sets = g.params.l1_lines / ways in
    let t = Array.make (sets * (ways + 1)) (-1) in
    g.l1_tags.(cpu) <- t;
    t
  end

let probe tags n_sets gline =
  let base = (gline land (n_sets - 1)) * (ways + 1) in
  let rec go i = i < ways && (tags.(base + i) = gline || go (i + 1)) in
  go 0

let install tags n_sets gline =
  let base = (gline land (n_sets - 1)) * (ways + 1) in
  if not (probe tags n_sets gline) then begin
    let cursor = (tags.(base + ways) + 1) land (ways - 1) in
    tags.(base + cursor) <- gline;
    tags.(base + ways) <- cursor
  end

let resident g cpu gline =
  probe (cpu_tags g cpu) (g.params.private_cache_lines / ways) gline

let in_l1 g cpu gline =
  probe (cpu_l1_tags g cpu) (g.params.l1_lines / ways) gline

let touch g cpu gline =
  install (cpu_tags g cpu) (g.params.private_cache_lines / ways) gline;
  install (cpu_l1_tags g cpu) (g.params.l1_lines / ways) gline

(* A resident (L2) access costs extra when the line fell out of L1. *)
let level_cost g cpu gline =
  if in_l1 g cpu gline then 0
  else begin
    install (cpu_l1_tags g cpu) (g.params.l1_lines / ways) gline;
    g.params.l1_miss
  end

let read_cost t ~cpu ~index =
  let p = t.g.params in
  let line = index lsr t.line_shift in
  let gline = t.base + line in
  let bit = 1 lsl cpu in
  let owner = t.owner.(line) in
  if owner >= 0 && owner <> cpu then begin
    (* Dirty in another CPU's cache: transfer and downgrade to shared. *)
    if Tstm_obs.Sink.enabled () then note_transfer t ~cpu ~line ~index;
    t.owner.(line) <- -1;
    t.sharers.(line) <- t.sharers.(line) lor bit lor (1 lsl owner);
    touch t.g cpu gline;
    p.read_hit + p.line_transfer
  end
  else if t.sharers.(line) land bit <> 0 && resident t.g cpu gline then
    p.read_hit + level_cost t.g cpu gline
  else begin
    (* Cold, invalidated or capacity/conflict-evicted: refill. *)
    t.sharers.(line) <- t.sharers.(line) lor bit;
    touch t.g cpu gline;
    p.read_hit + p.line_transfer
  end

let write_cost t ~cpu ~index =
  let p = t.g.params in
  let line = index lsr t.line_shift in
  let gline = t.base + line in
  let bit = 1 lsl cpu in
  let cost =
    if t.owner.(line) = cpu && resident t.g cpu gline then
      p.write_hit + level_cost t.g cpu gline
    else if t.sharers.(line) = bit && resident t.g cpu gline then begin
      (* Sole resident sharer: silent upgrade to exclusive. *)
      t.owner.(line) <- cpu;
      p.write_hit + level_cost t.g cpu gline
    end
    else begin
      (* Fetch exclusive ownership and invalidate every other copy.  When
         another CPU held a dirty or shared copy this is contention, not a
         cold miss, and gets attributed. *)
      if
        Tstm_obs.Sink.enabled ()
        && ((t.owner.(line) >= 0 && t.owner.(line) <> cpu)
           || t.sharers.(line) land lnot bit <> 0)
      then note_transfer t ~cpu ~line ~index;
      t.owner.(line) <- cpu;
      t.sharers.(line) <- bit;
      touch t.g cpu gline;
      p.write_hit + p.line_transfer
    end
  in
  t.last_word.(line) <- index;
  cost
