(** The execution substrate every other library is parameterised over.

    A [RUNTIME] provides (i) shared flat [int] arrays with atomic operations
    — the only memory the STM metadata and the virtual word memory live in —
    and (ii) a notion of threads and time.  Two implementations exist:

    - {!Runtime_real}: OCaml 5 domains and [Atomic]; wall-clock time; cycle
      charges are no-ops.  Use it to run the STM on real hardware.
    - {!Runtime_sim}: a deterministic virtual-time multicore simulator (one
      effect-handler fiber per simulated CPU, min-virtual-time scheduling and
      a cache-line contention cost model).  Use it to reproduce the paper's
      thread-scaling figures on a single-core machine.

    The STM algorithms are written once against this signature, so the code
    that produces the figures is the same code that runs on real domains. *)

module type S = sig
  val name : string
  (** Human-readable runtime name, e.g. ["sim"] or ["domains"]. *)

  val is_simulated : bool

  (** {1 Shared memory} *)

  type sarray
  (** A fixed-length array of [int] words shared between threads.  All
      accesses behave as sequentially consistent atomic operations. *)

  val sarray_make : int -> int -> sarray
  (** [sarray_make len init]. *)

  val sarray_length : sarray -> int

  val get : sarray -> int -> int
  val set : sarray -> int -> int -> unit

  val cas : sarray -> int -> int -> int -> bool
  (** [cas a i expected desired] atomically replaces [a.(i)] when it equals
      [expected]; returns whether it did. *)

  val fetch_add : sarray -> int -> int -> int
  (** [fetch_add a i d] atomically adds [d] and returns the previous value. *)

  (** {1 Threads and time} *)

  val run : nthreads:int -> (int -> unit) -> unit
  (** [run ~nthreads body] executes [body tid] for [tid] in [0..nthreads-1],
      one thread per (real or simulated) CPU, and returns when all have
      finished.  Calls must not be nested. *)

  val tid : unit -> int
  (** Id of the calling thread; [0] outside {!run}. *)

  val now : unit -> float
  (** Seconds.  In the simulator this is the calling fiber's virtual time and
      it only advances through {!charge} and shared-memory operations; in the
      real runtime it is the wall clock. *)

  val now_cycles : unit -> int
  (** Cycle-granularity timestamp for event tracing: the calling fiber's
      virtual time in the simulator, wall-clock nanoseconds on real
      hardware.  [0] outside {!run} in the simulator. *)

  val sarray_label : sarray -> string -> unit
  (** Name a shared array for contention attribution in traces (e.g.
      ["locks"]).  A no-op on real hardware and whenever the observability
      sink is disabled; never affects costs or results. *)

  val charge : int -> unit
  (** [charge c] accounts [c] cycles of thread-private work.  In the
      simulator this is also a preemption point; a no-op on real hardware. *)

  val charge_local : int -> unit
  (** Like {!charge} but never a preemption point — for small bookkeeping
      costs where a context switch per call would only slow the simulation
      (interleaving at shared-memory operations is what matters for
      correctness).  A no-op on real hardware. *)

  val yield : unit -> unit
  (** Politely give other threads a chance to run (spin-wait back-off). *)
end
