(** Progress watchdog: livelock and starvation detection in virtual time.

    A pure state machine fed by the STM's transaction driver — [note_commit]
    on every commit, [note_abort] on every abort.  It watches two progress
    signals:

    - {b livelock}: a window of [window] virtual cycles elapses with zero
      commits across all CPUs;
    - {b starvation}: a single transaction crosses [starve_retries]
      consecutive aborts.

    Either trigger escalates the degradation {!level} one step
    ([Normal -> Boosted -> Serialized]); the STM maps levels onto
    contention-manager behaviour (its configured policy, then karma, then
    forced serial-irrevocable execution).  A recovery probe de-escalates one
    step after [recover_windows] consecutive windows that saw commits, so a
    transient storm does not pin the instance in serial mode.

    All state is plain OCaml (no shared arrays): feeding the watchdog
    charges no virtual cycles, and under the cooperative simulator the
    shared record needs no synchronisation.  An STM created without a
    watchdog pays one [option] pattern match per commit/abort. *)

type level = Normal | Boosted | Serialized

val level_to_string : level -> string

type event =
  | Livelock of { window : int }
      (** a zero-commit window of [window] cycles elapsed *)
  | Starved of { tid : int; retries : int }
      (** a transaction crossed the per-transaction retry ceiling *)
  | Switch of { level : level }  (** the degradation level changed *)

type t

val create :
  ?window:int -> ?starve_retries:int -> ?recover_windows:int -> unit -> t
(** [window] (default 50_000 cycles = 25 virtual µs) is the zero-commit
    detection window; [starve_retries] (default 64) the per-transaction
    retry ceiling (0 disables starvation detection); [recover_windows]
    (default 2) the number of consecutive commit-bearing windows before one
    de-escalation step. *)

val level : t -> level

(** Point-in-time export of the watchdog's externally relevant state: the
    degradation level, the cumulative detection counters and the configured
    thresholds.  Layers above the STM (the service admission layer, CLI
    reports) read this instead of poking individual accessors. *)
type snapshot = {
  snap_level : level;
  snap_livelocks : int;
  snap_starvations : int;
  snap_switches : int;
  snap_window : int;  (** configured zero-commit window, cycles *)
  snap_starve_retries : int;  (** configured retry ceiling; 0 = disabled *)
  snap_recover_windows : int;  (** configured calm-window count *)
}

val snapshot : t -> snapshot

val note_commit : t -> now:int -> tid:int -> event list
(** Record a commit at virtual cycle [now] on CPU [tid].  May de-escalate
    (the recovery probe); a level change is returned as a [Switch] event. *)

val note_abort : t -> now:int -> tid:int -> retries:int -> event list
(** Record an abort: the transaction on [tid] has now aborted [retries]
    consecutive times.  Returns the detection events this abort triggered
    (livelock, starvation, level switches), in order, for the caller to
    surface as observability events. *)

val livelocks : t -> int
(** Zero-commit windows detected so far. *)

val starvations : t -> int
(** Retry-ceiling crossings detected so far. *)

val switches : t -> int
(** Level changes (escalations and de-escalations) so far. *)

val last_commit : t -> tid:int -> int
(** Per-CPU commit heartbeat: virtual cycle of [tid]'s most recent commit
    ([-1] if it never committed).  CPUs are tracked up to a fixed bound;
    out-of-range tids still count toward window totals. *)
