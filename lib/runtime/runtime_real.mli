(** The real-hardware implementation of {!Runtime_intf.S}: one OCaml domain
    per thread, [Atomic] cells for shared words, monotonic wall-clock time,
    and zero-cost [charge].  Functionally interchangeable with
    {!Runtime_sim}; used by the wall-clock bench path
    ([Tstm_harness.Bench_real]), the examples, and tests that exercise true
    parallelism.

    {2 Semantics and guarantees}

    - {b Shared arrays.}  [sarray] is an [int Atomic.t array]; [get]/[set]
      are sequentially-consistent atomic loads/stores, [cas] is
      [Atomic.compare_and_set], and [fetch_add] is the hardware
      [Atomic.fetch_and_add] — a single atomic read-modify-write, safe as a
      clock-bump or counter under contention.
    - {b Thread identity.}  [tid] reads a domain-local key.  [run]
      assigns ids [0 .. nthreads-1]; the orchestrating domain is thread 0
      and worker domains are handed their id with each job, so ids are
      stable within a run and dense across it — they can index per-thread
      descriptor arrays directly.
    - {b Domain pool.}  Worker domains are spawned once and reused across
      [run] calls (parked on a condition variable between jobs), so a
      bench loop of many short timed repetitions does not pay
      [Domain.spawn] per repetition.  The pool grows on demand to the
      largest [nthreads - 1] seen and is joined by an [at_exit] hook.
    - {b Error propagation.}  If any thread body raises, [run] still
      awaits {e every} thread of the run — no domain is left executing a
      stale body into the next run — and then re-raises the first
      exception in thread-id order.  Pool workers survive a raising job
      and are reused.
    - {b Reentrancy.}  [run] is not reentrant and must be called from one
      orchestrating thread at a time ([Invalid_argument] otherwise).  Code
      {e inside} a run must not call [run].
    - {b Clocks.}  [now] / [now_cycles] read the monotonic clock
      ({!Tstm_obs.Monotonic}, [CLOCK_MONOTONIC]): seconds as [float],
      nanoseconds as [int].  Under this runtime a "cycle" is therefore a
      nanosecond, and STM commit/abort latencies recorded through
      [Tstm_obs.Sink] are wall-clock nanoseconds.
    - {b Costs.}  [charge] / [charge_local] / [sarray_label] are no-ops:
      real hardware charges its own cycles.  [yield] is
      [Domain.cpu_relax], suitable inside spin loops. *)

include Runtime_intf.S

(** {2 Self-healing runs}

    {!run_healed} is [run] hardened against the fault kinds
    {!Tstm_fault.Fault} injects: it dispatches {e all} [nthreads] jobs to
    pool domains and keeps the orchestrating domain as a supervisor that
    polls worker heartbeats.  A job that dies of
    [Tstm_fault.Fault.Injected_crash] is healed — the worker is shut down
    and joined, a fresh domain replaces it in the pool, and the job is
    requeued (bounded by [max_requeues], after which the crash propagates) —
    while a worker whose heartbeat goes stale past [hang_timeout_s] is
    flagged hung and flagged again when it recovers (detection is advisory:
    injected hangs are bounded spins that resume on their own, and domains
    cannot be safely killed).  Any other exception is awaited like [run]
    (every job finishes first) and re-raised first-in-thread-id-order. *)

(** What the supervisor healed during one {!run_healed}. *)
type heal_report = {
  crashes_healed : int;  (** workers respawned after an injected crash *)
  hangs_detected : int;  (** stale-heartbeat flags raised *)
  hangs_recovered : int;  (** flags cleared (worker resumed or finished) *)
  requeues : int;  (** jobs resubmitted after a heal *)
}

val no_heal : heal_report
(** All-zero report, for callers that ran without healing. *)

val run_healed :
  ?hang_timeout_s:float ->
  ?poll_s:float ->
  ?max_requeues:int ->
  nthreads:int ->
  (int -> unit) ->
  heal_report
(** Defaults: [hang_timeout_s = 0.05], [poll_s = 0.001],
    [max_requeues = 128].  Not reentrant with itself or [run]
    ([Invalid_argument]). *)
