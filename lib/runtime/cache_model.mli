(** Cache cost model used by the simulated runtime: MESI-like coherence plus
    a finite, direct-mapped private cache per CPU.

    Two mechanisms price every access:

    - {b coherence}: per line of each shared array we track the last
      exclusive writer and a sharer bitmask; pulling a line another CPU wrote
      last, or invalidating other copies before a write, pays
      [line_transfer];
    - {b capacity}: each CPU owns a two-level direct-mapped private cache
      (a small L1 inside a larger L2) over a global line-id space spanning
      all shared arrays; an access that fell out of L1 pays [l1_miss], and a
      line evicted from L2 (capacity or slot conflict) must be re-fetched at
      [line_transfer] even when coherence alone would have allowed a hit.
      This is what gives the paper's [#shifts] parameter its meaning: fewer
      distinct lock-array stripes per transaction keeps the lock metadata
      inside L1.

    Both are what make the paper's tuning parameters matter: a small lock
    array suffers false sharing and contended invalidations, a large one
    blows the private-cache footprint unless the [#shifts] parameter
    compresses the stripes touched by a traversal, and the global clock
    serialises through its line. *)

type params = {
  clock_ghz : float;  (** converts cycles to seconds (paper machine: 2 GHz) *)
  words_per_line : int;  (** must be a power of two *)
  read_hit : int;  (** cycles: load served by the private cache *)
  write_hit : int;  (** cycles: store to an exclusively-owned resident line *)
  cas_extra : int;  (** additional cycles for CAS / fetch-and-add *)
  l1_lines : int;  (** direct-mapped L1 lines per CPU; a power of two *)
  l1_miss : int;  (** cycles: L1 miss served by the private L2 *)
  line_transfer : int;  (** cycles: remote fetch, invalidation or refill *)
  private_cache_lines : int;
      (** direct-mapped private (L2) lines per CPU; a power of two *)
}

val default : params
(** Costs loosely calibrated to the paper's 8-core 2 GHz Xeon: a 32 KiB L1
    and a 1 MiB private L2 at 64-byte (8-word) lines. *)

val validate : params -> unit
(** Raises [Invalid_argument] on nonsensical parameters. *)

type global
(** Process-wide state: the per-CPU tag arrays and the line-id allocator. *)

val create_global : params -> global

val reset_tags : global -> unit
(** Empty every CPU's private cache (called at the start of each simulated
    run so results do not depend on what ran before). *)

type t
(** Per-shared-array coherence state, registered in a [global]. *)

val create : global -> int -> t
(** [create g len] for an array of [len] words. *)

val set_label : t -> string -> unit
(** Name this array for the observability layer: with a label set and the
    {!Tstm_obs.Sink} enabled, every coherence transfer is attributed per
    line — split into true word conflicts vs. false sharing — and emitted
    as a [Cache_transfer] event.  Unlabelled arrays stay silent.  Labels
    never affect costs. *)

val read_cost : t -> cpu:int -> index:int -> int
(** Cost of a load by [cpu]; updates coherence and tag state. *)

val write_cost : t -> cpu:int -> index:int -> int
(** Cost of a store (or the write half of an atomic) by [cpu]; updates
    coherence and tag state. *)
