(* Progress watchdog: a pure virtual-time state machine.

   The STM driver feeds it commit/abort notifications; it detects
   zero-commit windows (livelock) and per-transaction retry ceilings
   (starvation) and walks the degradation ladder Normal -> Boosted ->
   Serialized, with a recovery probe stepping back down once commits
   resume.  No shared arrays: plain OCaml state, zero virtual cycles, safe
   under the cooperative simulator. *)

type level = Normal | Boosted | Serialized

let level_to_string = function
  | Normal -> "normal"
  | Boosted -> "boosted"
  | Serialized -> "serialized"

type event =
  | Livelock of { window : int }
  | Starved of { tid : int; retries : int }
  | Switch of { level : level }

(* Per-CPU heartbeat bound: matches the STMs' max_threads ceiling
   (TinySTM's lock encoding caps tids at 127). *)
let max_cpus = 128

type t = {
  window : int;
  starve_retries : int;
  recover_windows : int;
  mutable lvl : level;
  mutable window_start : int;
  mutable commits_in_window : int;
  mutable calm_windows : int;
  mutable n_livelocks : int;
  mutable n_starvations : int;
  mutable n_switches : int;
  heartbeat : int array;  (* last commit cycle per CPU; -1 = never *)
}

let create ?(window = 50_000) ?(starve_retries = 64) ?(recover_windows = 2) ()
    =
  if window < 1 then invalid_arg "Watchdog.create: window < 1";
  if starve_retries < 0 then invalid_arg "Watchdog.create: starve_retries < 0";
  if recover_windows < 1 then
    invalid_arg "Watchdog.create: recover_windows < 1";
  {
    window;
    starve_retries;
    recover_windows;
    lvl = Normal;
    window_start = 0;
    commits_in_window = 0;
    calm_windows = 0;
    n_livelocks = 0;
    n_starvations = 0;
    n_switches = 0;
    heartbeat = Array.make max_cpus (-1);
  }

let level t = t.lvl
let livelocks t = t.n_livelocks
let starvations t = t.n_starvations
let switches t = t.n_switches

type snapshot = {
  snap_level : level;
  snap_livelocks : int;
  snap_starvations : int;
  snap_switches : int;
  snap_window : int;
  snap_starve_retries : int;
  snap_recover_windows : int;
}

let snapshot t =
  {
    snap_level = t.lvl;
    snap_livelocks = t.n_livelocks;
    snap_starvations = t.n_starvations;
    snap_switches = t.n_switches;
    snap_window = t.window;
    snap_starve_retries = t.starve_retries;
    snap_recover_windows = t.recover_windows;
  }

let last_commit t ~tid =
  if tid >= 0 && tid < max_cpus then t.heartbeat.(tid) else -1

let set_level t lvl acc =
  if t.lvl = lvl then acc
  else begin
    t.lvl <- lvl;
    t.n_switches <- t.n_switches + 1;
    Switch { level = lvl } :: acc
  end

let escalate t acc =
  match t.lvl with
  | Normal -> set_level t Boosted acc
  | Boosted -> set_level t Serialized acc
  | Serialized -> acc

let de_escalate t acc =
  match t.lvl with
  | Serialized -> set_level t Boosted acc
  | Boosted -> set_level t Normal acc
  | Normal -> acc

(* Close the current window if [now] moved past it, judging it by the
   commits it saw; the next window then starts at [now] (a re-sync rather
   than a fixed grid, so an idle gap between runs never reports a burst of
   livelocks).  At most one verdict per notification. *)
let close_window t ~now acc =
  if now < t.window_start + t.window then acc
  else begin
    let acc =
      if t.commits_in_window = 0 then begin
        t.n_livelocks <- t.n_livelocks + 1;
        t.calm_windows <- 0;
        escalate t (Livelock { window = t.window } :: acc)
      end
      else begin
        t.calm_windows <- t.calm_windows + 1;
        if t.calm_windows >= t.recover_windows && t.lvl <> Normal then begin
          t.calm_windows <- 0;
          de_escalate t acc
        end
        else acc
      end
    in
    t.window_start <- now;
    t.commits_in_window <- 0;
    acc
  end

let note_commit t ~now ~tid =
  let acc = close_window t ~now [] in
  t.commits_in_window <- t.commits_in_window + 1;
  if tid >= 0 && tid < max_cpus then t.heartbeat.(tid) <- now;
  List.rev acc

let note_abort t ~now ~tid ~retries =
  let acc = close_window t ~now [] in
  let acc =
    if t.starve_retries > 0 && retries = t.starve_retries then begin
      t.n_starvations <- t.n_starvations + 1;
      escalate t (Starved { tid; retries } :: acc)
    end
    else acc
  in
  List.rev acc
