(** Travel-reservation workload in the style of STAMP's Vacation benchmark
    (evaluated by the paper in Fig. 7 via the TANGER-compiled original).

    A manager owns four transactional red-black maps: cars, flights and
    rooms map resource ids to reservation records; customers map customer
    ids to a linked list of held reservations.  Client transactions are
    medium-sized (tens of reads across several trees, a few writes).

    Word-memory layouts: resource record [id; used; free; total; price]
    (5 words); customer record [id; list head] (2 words); reservation item
    [table; resource id; price; next] (4 words). *)

(** Workload parameters (STM-independent). *)
type spec = {
  n_relations : int;  (** resources per table *)
  n_customers : int;
  queries_per_tx : int;
  reserve_pct : float;  (** share of make-reservation transactions *)
  delete_pct : float;  (** share of delete-customer; rest update tables *)
}

val default_spec : spec
(** 4096 relations/customers, 4 queries per transaction, 80/10/10 mix. *)

val memory_words_for : spec -> int
(** Arena size covering tables, customers and the steady-state reservation
    churn of the default mix. *)

module Make (T : Tstm_tm.Tm_intf.TM) : sig
  type table = Car | Flight | Room

  type t

  type nonrec spec = spec = {
    n_relations : int;
    n_customers : int;
    queries_per_tx : int;
    reserve_pct : float;
    delete_pct : float;
  }

  val default_spec : spec
  val memory_words_for : spec -> int

  val create : T.t -> t
  val populate : t -> spec -> seed:int -> t
  (** Fill all three resource tables with randomly priced capacity. *)

  (** {1 Manager operations} (run inside a caller transaction) *)

  val add_resource : t -> T.tx -> table -> int -> int -> int -> unit
  (** [add_resource t tx tbl id num price]: grow (or create) a resource. *)

  val delete_resource : t -> T.tx -> table -> int -> int -> bool
  (** Retire up to [num] unreserved units; removes the resource when none
      remain; [false] if the resource is unknown. *)

  val query_price : t -> T.tx -> table -> int -> int option

  val reserve : t -> T.tx -> table -> int -> int -> bool
  (** [reserve t tx tbl id cid]: book one unit for customer [cid] (created
      on first use); [false] when sold out or absent. *)

  val delete_customer : t -> T.tx -> int -> int option
  (** Cancel all of a customer's reservations, release the units, remove
      the customer; returns the total bill, or [None] if unknown. *)

  (** {1 Client driver} *)

  val client_step : t -> spec -> Tstm_util.Xrand.t -> unit
  (** Execute one transaction drawn from the configured mix. *)

  (** {1 Testing support} *)

  exception Inconsistent of string

  val check_consistency : t -> unit
  (** Audits, in one transaction: used + free = total for every resource,
      non-negative counts, per-resource used equal to the reservations held
      across all customers, and no dangling reservation. *)
end
