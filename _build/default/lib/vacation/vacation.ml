(** Travel-reservation workload in the style of STAMP's Vacation benchmark
    (the paper evaluates it in Fig. 7 via the TANGER-compiled original).

    A manager owns four tables, each a transactional red-black map: cars,
    flights and rooms map resource ids to reservation records; customers map
    customer ids to a record heading a linked list of held reservations.
    Client transactions are medium-sized (tens of reads across several
    trees, a few writes), which is exactly the footprint that separates this
    workload from the list/tree microbenchmarks.

    Word-memory layouts:
    - resource record: [id; used; free; total; price] (5 words);
    - customer record: [id; reservation-list head] (2 words);
    - reservation item: [table; resource id; price; next] (4 words). *)

(* The workload parameters are STM-independent, so they live outside the
   functor: a spec built once can drive any STM's instantiation. *)
type spec = {
  n_relations : int;
  n_customers : int;
  queries_per_tx : int;
  reserve_pct : float;
  delete_pct : float;  (* remainder: update-tables transactions *)
}

let default_spec =
  {
    n_relations = 4096;
    n_customers = 4096;
    queries_per_tx = 4;
    reserve_pct = 80.0;
    delete_pct = 10.0;
  }

let memory_words_for (spec : spec) =
  (* 3 tables x relations x (6-word node + 5-word record), customers x
     (6-word node + 2-word record), plus reservation items: with the default
     mix (80 % reserve at ~2.5 items vs 10 % delete-customer) the item
     population reaches ~20-25 4-word items per customer at steady state —
     budget generously for it. *)
  (spec.n_relations * 3 * 16) + (spec.n_customers * (16 + 192)) + 65536

module Make (T : Tstm_tm.Tm_intf.TM) = struct
  module Rb = Tstm_structures.Rbtree.Make (T)

  type table = Car | Flight | Room

  let table_index = function Car -> 0 | Flight -> 1 | Room -> 2
  let table_of_index = function
    | 0 -> Car
    | 1 -> Flight
    | _ -> Room

  type t = {
    stm : T.t;
    resources : Rb.t array;  (* indexed by table_index *)
    customers : Rb.t;
    n_relations : int;
    n_customers : int;
  }

  type nonrec spec = spec = {
    n_relations : int;
    n_customers : int;
    queries_per_tx : int;
    reserve_pct : float;
    delete_pct : float;
  }

  let default_spec = default_spec
  let memory_words_for = memory_words_for

  (* Resource record accessors. *)
  let r_used tx a = T.read tx (a + 1)
  let r_free tx a = T.read tx (a + 2)
  let r_total tx a = T.read tx (a + 3)
  let r_price tx a = T.read tx (a + 4)
  let set_used tx a v = T.write tx (a + 1) v
  let set_free tx a v = T.write tx (a + 2) v
  let set_total tx a v = T.write tx (a + 3) v
  let set_price tx a v = T.write tx (a + 4) v

  (* Customer record and reservation items. *)
  let c_head tx a = T.read tx (a + 1)
  let set_c_head tx a v = T.write tx (a + 1) v
  let i_table tx a = T.read tx a
  let i_id tx a = T.read tx (a + 1)
  let i_next tx a = T.read tx (a + 3)

  let create stm =
    {
      stm;
      resources = Array.init 3 (fun _ -> Rb.create stm);
      customers = Rb.create stm;
      n_relations = 0;
      n_customers = 0;
    }

  (* ------------------------------------------------------------------ *)
  (* Manager operations (run inside a caller transaction)                *)
  (* ------------------------------------------------------------------ *)

  let add_resource t tx tbl id num price =
    let map = t.resources.(table_index tbl) in
    match Rb.find_opt map tx id with
    | Some rec_ ->
        set_free tx rec_ (r_free tx rec_ + num);
        set_total tx rec_ (r_total tx rec_ + num);
        set_price tx rec_ price
    | None ->
        let rec_ = T.alloc tx 5 in
        T.write tx rec_ id;
        set_used tx rec_ 0;
        set_free tx rec_ num;
        set_total tx rec_ num;
        set_price tx rec_ price;
        ignore (Rb.insert map tx id rec_)

  (* Retire up to [num] unreserved units; removes the resource entirely when
     none remain.  Returns false when the resource is missing. *)
  let delete_resource t tx tbl id num =
    let map = t.resources.(table_index tbl) in
    match Rb.find_opt map tx id with
    | None -> false
    | Some rec_ ->
        let retired = min num (r_free tx rec_) in
        set_free tx rec_ (r_free tx rec_ - retired);
        set_total tx rec_ (r_total tx rec_ - retired);
        if r_total tx rec_ = 0 && r_used tx rec_ = 0 then begin
          ignore (Rb.remove map tx id);
          T.free tx rec_ 5
        end;
        true

  let query_price t tx tbl id =
    match Rb.find_opt t.resources.(table_index tbl) tx id with
    | None -> None
    | Some rec_ -> Some (r_price tx rec_)

  let find_or_add_customer t tx cid =
    match Rb.find_opt t.customers tx cid with
    | Some c -> c
    | None ->
        let c = T.alloc tx 2 in
        T.write tx c cid;
        set_c_head tx c 0;
        ignore (Rb.insert t.customers tx cid c);
        c

  (* Reserve one unit of (tbl, id) for customer [cid]; false when sold out
     or absent. *)
  let reserve t tx tbl id cid =
    match Rb.find_opt t.resources.(table_index tbl) tx id with
    | None -> false
    | Some rec_ ->
        if r_free tx rec_ <= 0 then false
        else begin
          set_free tx rec_ (r_free tx rec_ - 1);
          set_used tx rec_ (r_used tx rec_ + 1);
          let c = find_or_add_customer t tx cid in
          let item = T.alloc tx 4 in
          T.write tx item (table_index tbl);
          T.write tx (item + 1) id;
          T.write tx (item + 2) (r_price tx rec_);
          T.write tx (item + 3) (c_head tx c);
          set_c_head tx c item;
          true
        end

  (* Cancel every reservation of [cid], release the units, and remove the
     customer.  Returns the total bill, or None when the customer is
     unknown. *)
  let delete_customer t tx cid =
    match Rb.find_opt t.customers tx cid with
    | None -> None
    | Some c ->
        let bill = ref 0 in
        let rec cancel item =
          if item <> 0 then begin
            let tbl = table_of_index (i_table tx item) in
            let id = i_id tx item in
            (match Rb.find_opt t.resources.(table_index tbl) tx id with
            | Some rec_ ->
                set_free tx rec_ (r_free tx rec_ + 1);
                set_used tx rec_ (r_used tx rec_ - 1)
            | None -> ());
            bill := !bill + T.read tx (item + 2);
            let next = i_next tx item in
            T.free tx item 4;
            cancel next
          end
        in
        cancel (c_head tx c);
        ignore (Rb.remove t.customers tx cid);
        T.free tx c 2;
        Some !bill

  (* ------------------------------------------------------------------ *)
  (* Population and client transactions                                  *)
  (* ------------------------------------------------------------------ *)

  let populate (t : t) (spec : spec) ~seed =
    let g = Tstm_util.Xrand.create seed in
    let t : t =
      { t with n_relations = spec.n_relations; n_customers = spec.n_customers }
    in
    for id = 1 to spec.n_relations do
      List.iter
        (fun tbl ->
          T.atomically t.stm (fun tx ->
              add_resource t tx tbl id
                (100 * (1 + Tstm_util.Xrand.int g 5))
                (50 + Tstm_util.Xrand.int g 450)))
        [ Car; Flight; Room ]
    done;
    t

  (* One client transaction, drawn from the configured mix. *)
  let client_step (t : t) (spec : spec) g =
    let p = Tstm_util.Xrand.float g *. 100.0 in
    if p < spec.reserve_pct then
      (* Make-reservation: query a few random resources per table, remember
         the priciest available one, then book it (STAMP's policy). *)
      T.atomically t.stm (fun tx ->
          let cid = 1 + Tstm_util.Xrand.int g spec.n_customers in
          let chosen = Array.make 3 0 in
          let chosen_price = Array.make 3 (-1) in
          for _ = 1 to spec.queries_per_tx do
            let tbl = Tstm_util.Xrand.int g 3 in
            let id = 1 + Tstm_util.Xrand.int g spec.n_relations in
            match Rb.find_opt t.resources.(tbl) tx id with
            | Some rec_ when r_free tx rec_ > 0 ->
                let price = r_price tx rec_ in
                if price > chosen_price.(tbl) then begin
                  chosen_price.(tbl) <- price;
                  chosen.(tbl) <- id
                end
            | _ -> ()
          done;
          for tbl = 0 to 2 do
            if chosen.(tbl) <> 0 then
              ignore (reserve t tx (table_of_index tbl) chosen.(tbl) cid)
          done)
    else if p < spec.reserve_pct +. spec.delete_pct then
      T.atomically t.stm (fun tx ->
          ignore (delete_customer t tx (1 + Tstm_util.Xrand.int g spec.n_customers)))
    else
      (* Update-tables: grow or retire random resources. *)
      T.atomically t.stm (fun tx ->
          for _ = 1 to spec.queries_per_tx do
            let tbl = table_of_index (Tstm_util.Xrand.int g 3) in
            let id = 1 + Tstm_util.Xrand.int g spec.n_relations in
            if Tstm_util.Xrand.bool g then
              add_resource t tx tbl id 100 (50 + Tstm_util.Xrand.int g 450)
            else ignore (delete_resource t tx tbl id 100)
          done)

  (* ------------------------------------------------------------------ *)
  (* Consistency checking (tests)                                        *)
  (* ------------------------------------------------------------------ *)

  exception Inconsistent of string

  (* Every resource must satisfy used + free = total with used, free >= 0,
     and the per-resource used counts must equal the reservations held
     across all customers. *)
  let check_consistency t =
    T.atomically t.stm (fun tx ->
        let held = Hashtbl.create 256 in
        List.iter
          (fun (_, c) ->
            let rec walk item =
              if item <> 0 then begin
                let k = (i_table tx item, i_id tx item) in
                Hashtbl.replace held k
                  (1 + Option.value ~default:0 (Hashtbl.find_opt held k));
                walk (i_next tx item)
              end
            in
            walk (c_head tx c))
          (Rb.bindings t.customers tx);
        for tbl = 0 to 2 do
          List.iter
            (fun (id, rec_) ->
              let used = r_used tx rec_
              and free = r_free tx rec_
              and total = r_total tx rec_ in
              if used < 0 || free < 0 then raise (Inconsistent "negative count");
              if used + free <> total then
                raise (Inconsistent "used + free <> total");
              let h = Option.value ~default:0 (Hashtbl.find_opt held (tbl, id)) in
              if h <> used then raise (Inconsistent "held <> used"))
            (Rb.bindings t.resources.(tbl) tx);
          (* And no reservation may point at a missing resource. *)
          Hashtbl.iter
            (fun (tb, id) _ ->
              if tb = tbl && Rb.find_opt t.resources.(tbl) tx id = None then
                raise (Inconsistent "dangling reservation"))
            held
        done)

end
