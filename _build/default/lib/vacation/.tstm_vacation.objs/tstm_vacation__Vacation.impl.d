lib/vacation/vacation.ml: Array Hashtbl List Option Tstm_structures Tstm_tm Tstm_util
