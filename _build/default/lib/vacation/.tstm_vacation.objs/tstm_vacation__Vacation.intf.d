lib/vacation/vacation.mli: Tstm_tm Tstm_util
