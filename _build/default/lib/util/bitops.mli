(** Small bit-manipulation and integer-hash helpers shared across the STM
    metadata code (lock-array indexing, hierarchy masks, power-of-two
    sizing). *)

val is_pow2 : int -> bool
(** [is_pow2 n] is true iff [n] is a positive power of two. *)

val ceil_pow2 : int -> int
(** Smallest power of two [>= n].  Requires [n >= 1]. *)

val log2 : int -> int
(** [log2 n] for a positive power of two [n] returns [i] with [n = 2^i]. *)

val mix : int -> int
(** A strong avalanche mix of an int (Stafford variant 13 truncated to the
    OCaml word).  Used where a *scrambling* hash is wanted, e.g. to pick
    random slots in tests. *)

val popcount : int -> int
(** Number of set bits. *)
