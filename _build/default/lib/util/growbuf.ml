type t = { mutable data : int array; mutable len : int }

let create capacity =
  let capacity = max 1 capacity in
  { data = Array.make capacity 0; len = 0 }

let length t = t.len
let capacity t = Array.length t.data

let grow t =
  let data = Array.make (2 * Array.length t.data) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Growbuf.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Growbuf.set";
  t.data.(i) <- x

let clear t = t.len <- 0

let shrink t n =
  if n < 0 || n > t.len then invalid_arg "Growbuf.shrink";
  t.len <- n

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []
