(** Growable flat [int] buffers.

    The STM read and write sets are stored as struct-of-array layouts over
    these buffers: appending must not allocate in the common case, and
    clearing must be O(1), because both happen on every transaction. *)

type t

val create : int -> t
(** [create capacity] with an initial capacity (grown on demand). *)

val length : t -> int
val capacity : t -> int

val push : t -> int -> unit
(** Append one element, growing (doubling) if needed. *)

val get : t -> int -> int
(** Bounds-checked read. *)

val set : t -> int -> int -> unit
(** Bounds-checked write to an existing index [< length]. *)

val clear : t -> unit
(** Forget all elements; capacity is retained. *)

val shrink : t -> int -> unit
(** [shrink t n] truncates to the first [n] elements. Requires [n <= length]. *)

val to_list : t -> int list
(** Snapshot as a list (for tests and debugging). *)
