(** Benchmark result series and their textual rendering.

    Every paper figure is regenerated as one or more [table]s: a shared x-axis
    and one column per curve (e.g. thread count vs. throughput for TinySTM-WB,
    TinySTM-WT, TL2), or a 2-D [surface] (e.g. #locks x #shifts vs.
    throughput).  Renderers produce aligned human-readable tables and CSV. *)

type table = {
  title : string;
  x_label : string;
  x : float array;
  columns : (string * float array) list;  (** each array matches [x] *)
}

type surface = {
  s_title : string;
  row_label : string;  (** label of the first axis *)
  col_label : string;  (** label of the second axis *)
  rows : float array;  (** first-axis values *)
  cols : float array;  (** second-axis values *)
  values : float array array;  (** [values.(i).(j)] at [rows.(i)], [cols.(j)] *)
}

val pp_table : Format.formatter -> table -> unit
val pp_surface : Format.formatter -> surface -> unit

val table_to_csv : table -> string
val surface_to_csv : surface -> string

val print_table : table -> unit
(** [pp_table] to stdout followed by a blank line. *)

val print_surface : surface -> unit
