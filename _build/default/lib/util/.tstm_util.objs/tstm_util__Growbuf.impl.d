lib/util/growbuf.ml: Array
