lib/util/xrand.ml: Int64
