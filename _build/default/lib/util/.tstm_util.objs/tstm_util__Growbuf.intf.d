lib/util/growbuf.mli:
