lib/util/bitops.mli:
