lib/util/series.ml: Array Buffer Float Format List String
