lib/util/xrand.mli:
