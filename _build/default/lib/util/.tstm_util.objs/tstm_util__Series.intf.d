lib/util/series.mli: Format
