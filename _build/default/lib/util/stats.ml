type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let maximum a =
  assert (Array.length a > 0);
  Array.fold_left Float.max a.(0) a

let summarize a =
  assert (Array.length a > 0);
  let n = Array.length a in
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int n
  in
  {
    n;
    mean = m;
    min = Array.fold_left Float.min a.(0) a;
    max = maximum a;
    stddev = sqrt var;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.1f min=%.1f max=%.1f sd=%.1f" s.n s.mean
    s.min s.max s.stddev
