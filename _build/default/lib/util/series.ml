type table = {
  title : string;
  x_label : string;
  x : float array;
  columns : (string * float array) list;
}

type surface = {
  s_title : string;
  row_label : string;
  col_label : string;
  rows : float array;
  cols : float array;
  values : float array array;
}

let pp_float ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Format.fprintf ppf "%.0f" v
  else Format.fprintf ppf "%.2f" v

let float_to_string v = Format.asprintf "%a" pp_float v

let pp_table ppf t =
  let headers = t.x_label :: List.map fst t.columns in
  let row i =
    float_to_string t.x.(i)
    :: List.map (fun (_, col) -> float_to_string col.(i)) t.columns
  in
  let all_rows = List.init (Array.length t.x) row in
  let widths =
    List.mapi
      (fun j h ->
        List.fold_left
          (fun w r -> max w (String.length (List.nth r j)))
          (String.length h) all_rows)
      headers
  in
  let pad w s = String.make (w - String.length s) ' ' ^ s in
  Format.fprintf ppf "== %s ==@." t.title;
  let print_row cells =
    List.iteri
      (fun j c ->
        if j > 0 then Format.fprintf ppf "  ";
        Format.fprintf ppf "%s" (pad (List.nth widths j) c))
      cells;
    Format.fprintf ppf "@."
  in
  print_row headers;
  List.iter print_row all_rows

let pp_surface ppf s =
  Format.fprintf ppf "== %s ==@." s.s_title;
  Format.fprintf ppf "%12s \\ %s@." s.row_label s.col_label;
  Format.fprintf ppf "%12s" "";
  Array.iter (fun c -> Format.fprintf ppf "  %10s" (float_to_string c)) s.cols;
  Format.fprintf ppf "@.";
  Array.iteri
    (fun i r ->
      Format.fprintf ppf "%12s" (float_to_string r);
      Array.iter
        (fun v -> Format.fprintf ppf "  %10s" (float_to_string v))
        s.values.(i);
      Format.fprintf ppf "@.")
    s.rows

let table_to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (t.x_label);
  List.iter (fun (name, _) -> Buffer.add_string buf ("," ^ name)) t.columns;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i x ->
      Buffer.add_string buf (float_to_string x);
      List.iter
        (fun (_, col) -> Buffer.add_string buf ("," ^ float_to_string col.(i)))
        t.columns;
      Buffer.add_char buf '\n')
    t.x;
  Buffer.contents buf

let surface_to_csv s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (s.row_label ^ "\\" ^ s.col_label);
  Array.iter (fun c -> Buffer.add_string buf ("," ^ float_to_string c)) s.cols;
  Buffer.add_char buf '\n';
  Array.iteri
    (fun i r ->
      Buffer.add_string buf (float_to_string r);
      Array.iter
        (fun v -> Buffer.add_string buf ("," ^ float_to_string v))
        s.values.(i);
      Buffer.add_char buf '\n')
    s.rows;
  Buffer.contents buf

let print_table t = Format.printf "%a@." pp_table t
let print_surface s = Format.printf "%a@." pp_surface s
