(** Deterministic pseudo-random numbers (SplitMix64).

    Every source of randomness in this repository flows through this module so
    that simulator runs and property tests are bit-reproducible.  The
    generator is the SplitMix64 mixer of Steele, Lea and Flood; it is fast,
    has a 64-bit state, and supports cheap splitting which we use to derive
    independent per-thread streams from a single experiment seed. *)

type t
(** Mutable generator state. Not thread-safe: use one [t] per thread. *)

val create : int -> t
(** [create seed] makes a fresh generator.  Equal seeds give equal streams. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val bool : t -> bool
(** Uniform boolean. *)

val float : t -> float
(** Uniform float in [\[0, 1)]. *)

val below_percent : t -> float -> bool
(** [below_percent g p] is [true] with probability [p/100].  Used to draw
    "is this an update transaction?" decisions from an update rate given in
    percent, as in the paper's workloads. *)
