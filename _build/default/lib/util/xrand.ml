type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* SplitMix64 finalizer: xor-shift-multiply mixing of the advanced state. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix64 g.state

let split g =
  let seed = next_int64 g in
  { state = seed }

let int g n =
  assert (n > 0);
  (* Take the top bits (best-mixed) and reduce; modulo bias is negligible for
     the workload sizes used here (n <= 2^24 against a 62-bit range). *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 2) in
  r mod n

let bool g = Int64.logand (next_int64 g) 1L = 1L

let float g =
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 g) 11) in
  float_of_int r *. (1.0 /. 9007199254740992.0)

let below_percent g p = float g *. 100.0 < p
