let is_pow2 n = n > 0 && n land (n - 1) = 0

let ceil_pow2 n =
  assert (n >= 1);
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let log2 n =
  assert (is_pow2 n);
  let rec go n i = if n = 1 then i else go (n lsr 1) (i + 1) in
  go n 0

let mix x =
  let open Int64 in
  let z = of_int x in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  (* Keep the result a non-negative OCaml int. *)
  to_int (shift_right_logical z 2)

let popcount n =
  let rec go n acc = if n = 0 then acc else go (n land (n - 1)) (acc + 1) in
  go n 0
