(** Summary statistics over float samples (used by the harness to aggregate
    repeated throughput measurements). *)

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  stddev : float;
}

val summarize : float array -> summary
(** Requires a non-empty array. *)

val mean : float array -> float
val maximum : float array -> float

val pp_summary : Format.formatter -> summary -> unit
