type structure = List | Rbtree | Skiplist | Hashset

let structure_to_string = function
  | List -> "list"
  | Rbtree -> "rbtree"
  | Skiplist -> "skiplist"
  | Hashset -> "hashset"

let structure_of_string = function
  | "list" -> Some List
  | "rbtree" -> Some Rbtree
  | "skiplist" -> Some Skiplist
  | "hashset" -> Some Hashset
  | _ -> None

type spec = {
  structure : structure;
  initial_size : int;
  key_range : int;
  update_pct : float;
  overwrite_pct : float;
  nthreads : int;
  duration : float;
  seed : int;
}

let default =
  {
    structure = List;
    initial_size = 256;
    key_range = 512;
    update_pct = 20.0;
    overwrite_pct = 0.0;
    nthreads = 4;
    duration = 0.005;
    seed = 42;
  }

let make ?(structure = default.structure) ?(initial_size = default.initial_size)
    ?key_range ?(update_pct = default.update_pct)
    ?(overwrite_pct = default.overwrite_pct) ?(nthreads = default.nthreads)
    ?(duration = default.duration) ?(seed = default.seed) () =
  let key_range =
    match key_range with Some r -> r | None -> 2 * initial_size
  in
  if initial_size < 1 then invalid_arg "Workload.make: initial_size < 1";
  if key_range <= initial_size then
    invalid_arg "Workload.make: key_range must exceed initial_size";
  if update_pct < 0.0 || overwrite_pct < 0.0
     || update_pct +. overwrite_pct > 100.0
  then invalid_arg "Workload.make: bad transaction mix";
  if nthreads < 1 then invalid_arg "Workload.make: nthreads < 1";
  if duration <= 0.0 then invalid_arg "Workload.make: duration <= 0";
  {
    structure;
    initial_size;
    key_range;
    update_pct;
    overwrite_pct;
    nthreads;
    duration;
    seed;
  }

let memory_words_for spec =
  (* Largest node is a full skip-list tower (19 words); add slack for the
     transient size overshoot of concurrent updates and for bucket/sentinel
     headers. *)
  ((spec.initial_size + (8 * spec.nthreads) + 64) * 24) + 8192

type result = {
  commits : int;
  aborts : int;
  throughput : float;
  abort_rate : float;
  stats : Tstm_tm.Tm_stats.t;
  elapsed : float;
}

let pp_result ppf r =
  Format.fprintf ppf "%.0f txs/s (%d commits, %d aborts in %.4fs)"
    r.throughput r.commits r.aborts r.elapsed
