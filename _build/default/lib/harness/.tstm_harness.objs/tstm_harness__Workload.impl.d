lib/harness/workload.ml: Format Tstm_tm
