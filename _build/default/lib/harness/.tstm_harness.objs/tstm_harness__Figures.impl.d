lib/harness/figures.ml: Array Float Hashtbl List Printf Scenario Tinystm Tstm_tuning Tstm_util Workload
