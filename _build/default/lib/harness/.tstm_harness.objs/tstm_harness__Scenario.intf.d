lib/harness/scenario.mli: Tinystm Tstm_runtime Tstm_tl2 Tstm_tuning Tstm_vacation Workload
