lib/harness/workload.mli: Format Tstm_tm
