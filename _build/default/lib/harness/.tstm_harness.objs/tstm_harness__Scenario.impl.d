lib/harness/scenario.ml: Driver List Tinystm Tstm_runtime Tstm_tl2 Tstm_tm Tstm_tuning Tstm_util Tstm_vacation Workload
