lib/harness/driver.ml: Tstm_runtime Tstm_structures Tstm_tm Tstm_util Workload
