lib/harness/figures.mli: Tstm_util
