lib/harness/driver.mli: Tstm_runtime Tstm_tm Workload
