(** Regeneration of every figure in the paper's evaluation (Figs. 2-12).

    Each [figN] function runs the corresponding experiment on the simulated
    8-core runtime and returns printable series; [run_figure] prints them.
    A {!profile} scales experiment sizes: [quick] for smoke runs, [full]
    for paper-comparable parameters (several minutes of real time for the
    linked-list surfaces). *)

type profile = {
  label : string;
  dur_tree : float;  (** measurement window for tree/hash workloads (s) *)
  dur_list : float;  (** measurement window for list workloads (s) *)
  threads : int list;  (** thread axis of Figs. 2-4 *)
  fig5_sizes : int list;
  fig5_updates : float list;
  surface_size : int;  (** structure size for Figs. 6/8/9 *)
  surface_lock_exps : int list;
  surface_shifts : int list;
  fig7_lock_exps : int list;
  fig7_shifts : int list;
  fig7_relations : int;
  fig8_h : int list;
  fig9_lock_exps : int list;
  fig9_h : int list;
  tune_size : int;
  tune_period : float;
  tune_steps : int;
}

val quick : profile
val full : profile

type output =
  | Table of Tstm_util.Series.table
  | Surface of Tstm_util.Series.surface

val print_output : output -> unit

val fig_numbers : int list
(** [2; ...; 12]. *)

val run_figure : profile -> int -> output list
(** Runs the experiment for one paper figure and returns its series (already
    printed figure-by-figure by the caller via {!print_output}).  Raises
    [Invalid_argument] for unknown figure numbers. *)

val describe : int -> string
(** One-line description of what the figure shows. *)
