(** Workload specifications and results for the paper's microbenchmarks.

    A workload runs a fixed thread count against one transactional structure
    for a fixed (virtual) duration.  Transactions are drawn per the paper's
    harness (§3.3): read transactions look up a random key; update
    transactions alternately insert a fresh key and remove the key they last
    inserted (so every update transaction writes); overwrite transactions
    (Fig. 4 right) rewrite every entry up to a random key. *)

type structure = List | Rbtree | Skiplist | Hashset

val structure_to_string : structure -> string
val structure_of_string : string -> structure option

type spec = {
  structure : structure;
  initial_size : int;
  key_range : int;  (** keys are drawn from [1, key_range] *)
  update_pct : float;
  overwrite_pct : float;
  nthreads : int;
  duration : float;  (** measured seconds (virtual under the simulator) *)
  seed : int;
}

val default : spec
(** List of 256 elements, range 512, 20 % updates, 4 threads, 5 ms. *)

val make :
  ?structure:structure ->
  ?initial_size:int ->
  ?key_range:int ->
  ?update_pct:float ->
  ?overwrite_pct:float ->
  ?nthreads:int ->
  ?duration:float ->
  ?seed:int ->
  unit ->
  spec
(** [key_range] defaults to twice [initial_size], as in the paper's
    size-preserving harness. *)

val memory_words_for : spec -> int
(** A safe arena size for the spec's structure and churn. *)

type result = {
  commits : int;
  aborts : int;
  throughput : float;  (** committed transactions per second *)
  abort_rate : float;  (** aborts per second *)
  stats : Tstm_tm.Tm_stats.t;
  elapsed : float;
}

val pp_result : Format.formatter -> result -> unit
