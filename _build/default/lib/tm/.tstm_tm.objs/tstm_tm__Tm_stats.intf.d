lib/tm/tm_stats.mli: Format
