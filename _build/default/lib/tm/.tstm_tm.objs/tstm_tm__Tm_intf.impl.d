lib/tm/tm_intf.ml: Tm_stats
