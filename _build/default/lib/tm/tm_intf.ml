(** The word-transaction interface.

    Every STM in this repository (TinySTM write-back, TinySTM write-through,
    TL2) implements [TM]; every transactional data structure is a functor
    over it.  Addresses are {!Tstm_vmm.Vmm} word addresses ([int], 0 = null).

    Inside a transaction, user code only ever observes consistent snapshots
    (the time-base guarantees of LSA/TL2); conflicts surface as an internal
    abort exception that {!TM.atomically} catches and retries, so user code
    must let exceptions propagate. *)

module type TM = sig
  type t
  (** An STM instance bound to a memory arena. *)

  type tx
  (** An active transaction (valid only inside the [atomically] callback). *)

  val name : string
  (** e.g. ["tinystm-wb"], ["tinystm-wt"], ["tl2"]. *)

  val read : tx -> int -> int
  (** [read tx addr] transactional load. *)

  val write : tx -> int -> int -> unit
  (** [write tx addr v] transactional store.  Raises [Invalid_argument] when
      the transaction was started with [~read_only:true]. *)

  val alloc : tx -> int -> int
  (** [alloc tx n] allocates [n] contiguous words; automatically released if
      the transaction aborts (paper §3.1, Memory Management). *)

  val free : tx -> int -> int -> unit
  (** [free tx addr n] frees a block at commit time; a no-op if the
      transaction aborts.  Acquires the covering locks first (a free is
      semantically an update). *)

  val atomically : ?read_only:bool -> t -> (tx -> 'a) -> 'a
  (** Run a transaction, retrying on aborts until it commits.
      [~read_only:true] enables the read-only fast path: no read set is kept
      and commit needs no validation (the incremental snapshot is always
      consistent).  Must not be nested. *)

  val stats : t -> Tm_stats.t
  (** Aggregated statistics over all threads (call while quiescent). *)

  val reset_stats : t -> unit
end
