lib/vmm/vmm.ml: Printf Tstm_runtime
