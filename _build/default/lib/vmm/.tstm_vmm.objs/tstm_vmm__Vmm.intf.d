lib/vmm/vmm.mli: Tstm_runtime
