lib/tl2/bloom.mli:
