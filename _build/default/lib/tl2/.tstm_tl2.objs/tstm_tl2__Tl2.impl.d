lib/tl2/tl2.ml: Array Bloom Tstm_runtime Tstm_tm Tstm_util Tstm_vmm
