lib/tl2/bloom.ml: Tstm_util
