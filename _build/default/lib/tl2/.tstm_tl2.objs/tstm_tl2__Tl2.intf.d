lib/tl2/tl2.mli: Tstm_runtime Tstm_tm Tstm_vmm
