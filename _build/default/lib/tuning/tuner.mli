(** The paper's dynamic tuning strategy (§4.2): hill climbing over the
    (#locks, #shifts, hierarchy size) configuration space, with a memory of
    measured configurations and forbidden areas.

    The tuner is a pure decision engine: the benchmark driver feeds it one
    throughput sample per measurement period and applies the configuration it
    asks for (via [Tinystm.set_config]).  Per the paper: the throughput of a
    configuration is the maximum of three consecutive period measurements;
    the eight moves are double/halve #locks, increment/decrement #shifts,
    double/halve the hierarchical array, a nop, and a reverse to the
    best-measured configuration.  A move is reversed when throughput drops
    more than 2 % below the configuration it came from or more than 10 %
    below the best; a drop of more than 10 % after a shifts/hierarchy move
    additionally forbids moving beyond the previous value in that
    direction. *)

type move =
  | Locks_double
  | Locks_halve
  | Shifts_up
  | Shifts_down
  | Hier_double
  | Hier_halve
  | Nop
  | Reverse

val move_label : move -> string
(** The paper's move numbers: "1".."8". *)

type t

val create : ?seed:int -> ?samples_per_config:int -> Tinystm.Config.t -> t
(** Start tuning from an initial configuration.  [samples_per_config]
    defaults to 3 (the paper measures each configuration three times and
    keeps the maximum). *)

val current : t -> Tinystm.Config.t

type decision =
  | Keep_measuring
      (** Not enough samples yet for the current configuration. *)
  | Reconfigure of Tinystm.Config.t
      (** Install this configuration for the next measurement periods (it
          may equal the current one when the tuner performs a nop). *)

val record : t -> float -> decision
(** Feed the throughput measured over one period under the current
    configuration. *)

type step = {
  config : Tinystm.Config.t;
  throughput : float;  (** max of the period samples for this configuration *)
  move : move;  (** the move that led into this configuration *)
}

val history : t -> step list
(** Configuration steps in chronological order (the data of Figs. 10/11). *)

val best : t -> (Tinystm.Config.t * float) option
(** Best configuration measured so far. *)

val explored : t -> int
(** Number of distinct configurations measured. *)
