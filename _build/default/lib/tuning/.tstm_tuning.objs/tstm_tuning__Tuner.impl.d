lib/tuning/tuner.ml: Array Hashtbl List Tinystm Tstm_util
