lib/tuning/tuner.mli: Tinystm
