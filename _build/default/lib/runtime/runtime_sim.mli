(** The simulated-multicore implementation of {!Runtime_intf.S}.

    Shared arrays carry a {!Cache_model.t}; every access inside a
    {!Runtime_intf.S.run} charges its base cycle cost (a preemption point)
    plus a contention penalty computed from the cache-line state at the
    instant the access executes.  Accesses outside [run] (e.g. populating a
    data structure before the timed phase) execute at zero cost.

    The cost parameters are process-global and read when an array is created;
    call {!configure} before building the experiment state. *)

val configure : Cache_model.params -> unit
(** Set the cost model for subsequently created arrays.  Raises
    [Invalid_argument] on bad parameters. *)

val params : unit -> Cache_model.params
(** Currently configured parameters. *)

include Runtime_intf.S
