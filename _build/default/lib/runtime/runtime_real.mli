(** The real-hardware implementation of {!Runtime_intf.S}: one OCaml domain
    per thread, [Atomic] cells for shared words, wall-clock time, and
    zero-cost [charge].  Functionally interchangeable with {!Runtime_sim};
    used by the examples and by tests that exercise true parallelism. *)

include Runtime_intf.S
