(** Deterministic virtual-time fiber scheduler (the simulated multicore).

    Each simulated CPU runs one fiber (an OCaml 5 effect-handler
    continuation).  Fibers advance a private virtual-time counter by charging
    cycle costs; the scheduler always resumes the runnable fiber with the
    smallest virtual time (FIFO on ties), which is the classic discrete-event
    simulation of parallel execution.  Because the whole simulation runs on
    one OS thread, shared-memory operations between charge points are
    naturally atomic, and every run is bit-reproducible. *)

val run : nthreads:int -> (int -> unit) -> unit
(** [run ~nthreads body] starts one fiber per CPU executing [body cpu] and
    returns when all fibers have finished.  Must not be nested. *)

val inside : unit -> bool
(** Whether the caller is executing on a fiber of a live {!run}. *)

val tid : unit -> int
(** Current CPU id; [0] outside {!run}. *)

val now_cycles : unit -> int
(** Virtual time of the current fiber, in cycles; [0] outside {!run}. *)

val charge : int -> unit
(** Advance the current fiber's virtual time by [c >= 0] cycles and allow the
    scheduler to switch to another fiber.  No-op outside {!run}. *)

val charge_noyield : int -> unit
(** Advance virtual time without a preemption point (used for contention
    penalties discovered at the instant an access executes). *)

val switches : unit -> int
(** Number of context switches performed by the last / current [run]
    (observability for tests and the ablation bench). *)
