lib/runtime/cache_model.ml: Array Tstm_util
