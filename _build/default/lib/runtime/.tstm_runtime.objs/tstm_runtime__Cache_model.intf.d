lib/runtime/cache_model.mli:
