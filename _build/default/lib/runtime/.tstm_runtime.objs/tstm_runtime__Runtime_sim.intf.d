lib/runtime/runtime_sim.mli: Cache_model Runtime_intf
