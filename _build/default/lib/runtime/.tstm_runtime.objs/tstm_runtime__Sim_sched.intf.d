lib/runtime/sim_sched.mli:
