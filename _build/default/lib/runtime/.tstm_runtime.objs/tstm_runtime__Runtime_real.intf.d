lib/runtime/runtime_real.mli: Runtime_intf
