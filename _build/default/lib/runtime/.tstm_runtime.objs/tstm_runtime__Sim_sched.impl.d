lib/runtime/sim_sched.ml: Array Effect
