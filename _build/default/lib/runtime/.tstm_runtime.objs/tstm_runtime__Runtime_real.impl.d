lib/runtime/runtime_real.ml: Array Atomic Domain List Unix
