lib/runtime/runtime_sim.ml: Array Cache_model Sim_sched
