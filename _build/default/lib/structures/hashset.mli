(** Transactional hash set: a fixed power-of-two bucket array of sorted
    linked lists in word memory.  Short transactions with high
    disjoint-access parallelism — the favourable contrast to
    {!Intset_list}. *)

module Make (T : Tstm_tm.Tm_intf.TM) : sig
  type t

  val create : ?n_buckets:int -> T.t -> t
  (** [n_buckets] defaults to 64; must be a power of two. *)

  val contains : t -> T.tx -> int -> bool
  val add : t -> T.tx -> int -> bool
  val remove : t -> T.tx -> int -> bool

  val overwrite_upto : t -> T.tx -> int -> int
  (** Rewrite every element with key < bound (bucket order); returns the
      count. *)

  val size : t -> T.tx -> int
  val to_list : t -> T.tx -> int list
  (** Sorted ascending. *)

  exception Broken of string

  val check_invariants : t -> T.tx -> int
  (** Buckets sorted, every element in its home bucket; returns the element
      count. *)
end
