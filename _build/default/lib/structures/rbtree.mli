(** Transactional red-black tree (set and map), the paper's tree benchmark
    (§3.3) and the table substrate of the Vacation workload.

    Iterative CLRS insertion/deletion over word memory with parent pointers;
    update transactions touch O(log n) nodes.  Instead of CLRS's shared nil
    sentinel — which every delete would write, serialising all deletes under
    an STM — the fixup tracks the spliced node's parent explicitly.

    Node layout: [key; value; left; right; parent; color] (6 words). *)

module Make (T : Tstm_tm.Tm_intf.TM) : sig
  type t

  val create : T.t -> t
  (** Allocates the root header (runs its own transaction). *)

  (** {1 Set interface} (keys must avoid [min_int]/[max_int]) *)

  val contains : t -> T.tx -> int -> bool
  val add : t -> T.tx -> int -> bool
  val remove : t -> T.tx -> int -> bool
  (** The removed node is freed transactionally. *)

  val overwrite_upto : t -> T.tx -> int -> int
  (** Rewrite the value of every entry with key < bound, in key order;
      returns how many (Fig. 4's large-write-set operation). *)

  val size : t -> T.tx -> int
  val to_list : t -> T.tx -> int list

  (** {1 Map interface} (used by Vacation) *)

  val insert : t -> T.tx -> int -> int -> bool
  (** [insert t tx k v] binds [k] to [v] if absent; returns whether a node
      was created (an existing binding is left untouched). *)

  val put : t -> T.tx -> int -> int -> unit
  (** Insert or update. *)

  val find_opt : t -> T.tx -> int -> int option
  val bindings : t -> T.tx -> (int * int) list
  (** Key-ordered (key, value) pairs. *)

  (** {1 Testing support} *)

  exception Broken of string

  val check_invariants : t -> T.tx -> int
  (** Verifies BST order, parent pointers, no red-red edges, uniform black
      height and a black root; returns the node count.  Raises {!Broken}. *)
end
