lib/structures/intset_list.ml: List Set_intf Tstm_tm
