lib/structures/rbtree.mli: Tstm_tm
