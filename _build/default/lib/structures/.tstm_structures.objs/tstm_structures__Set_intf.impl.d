lib/structures/set_intf.ml:
