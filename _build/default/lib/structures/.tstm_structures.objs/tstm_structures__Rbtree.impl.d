lib/structures/rbtree.ml: Tstm_tm
