lib/structures/skiplist.mli: Tstm_tm
