lib/structures/hashset.ml: List Tstm_tm Tstm_util
