lib/structures/skiplist.ml: Array List Tstm_tm Tstm_util
