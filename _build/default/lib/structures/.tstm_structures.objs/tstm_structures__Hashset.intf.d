lib/structures/hashset.mli: Tstm_tm
