(** Transactional red-black tree (the paper's red-black-tree benchmark,
    §3.3, taken from the STAMP distribution; also the table substrate of the
    Vacation benchmark).  Iterative CLRS insertion and deletion with parent
    pointers, so update transactions write a handful of locations — the
    opposite profile of the linked list.

    Node layout in word memory: [key; value; left; right; parent; color].
    The null pointer is address 0; instead of CLRS's sentinel we track the
    fixup parent explicitly, which avoids a shared sentinel node that every
    delete would write (a serialisation hotspot under an STM). *)

module Make (T : Tstm_tm.Tm_intf.TM) = struct
  type t = { hdr : int }  (* one word holding the root pointer *)

  let red = 0
  let black = 1
  let node_words = 6

  let get_key tx a = T.read tx a
  let get_value tx a = T.read tx (a + 1)
  let get_left tx a = T.read tx (a + 2)
  let get_right tx a = T.read tx (a + 3)
  let get_parent tx a = T.read tx (a + 4)
  let get_color tx a = T.read tx (a + 5)
  let set_key tx a v = T.write tx a v
  let set_value tx a v = T.write tx (a + 1) v
  let set_left tx a v = T.write tx (a + 2) v
  let set_right tx a v = T.write tx (a + 3) v
  let set_parent tx a v = T.write tx (a + 4) v
  let set_color tx a v = T.write tx (a + 5) v

  (* Null-safe color: missing children are black. *)
  let color_of tx a = if a = 0 then black else get_color tx a

  let get_root tx t = T.read tx t.hdr
  let set_root tx t r = T.write tx t.hdr r

  let create stm =
    T.atomically stm (fun tx ->
        let hdr = T.alloc tx 1 in
        T.write tx hdr 0;
        { hdr })

  (* ------------------------------------------------------------------ *)
  (* Rotations                                                           *)
  (* ------------------------------------------------------------------ *)

  let left_rotate t tx x =
    let y = get_right tx x in
    let yl = get_left tx y in
    set_right tx x yl;
    if yl <> 0 then set_parent tx yl x;
    let xp = get_parent tx x in
    set_parent tx y xp;
    if xp = 0 then set_root tx t y
    else if x = get_left tx xp then set_left tx xp y
    else set_right tx xp y;
    set_left tx y x;
    set_parent tx x y

  let right_rotate t tx x =
    let y = get_left tx x in
    let yr = get_right tx y in
    set_left tx x yr;
    if yr <> 0 then set_parent tx yr x;
    let xp = get_parent tx x in
    set_parent tx y xp;
    if xp = 0 then set_root tx t y
    else if x = get_right tx xp then set_right tx xp y
    else set_left tx xp y;
    set_right tx y x;
    set_parent tx x y

  (* ------------------------------------------------------------------ *)
  (* Lookup                                                              *)
  (* ------------------------------------------------------------------ *)

  let rec find_node tx x k =
    if x = 0 then 0
    else
      let xk = get_key tx x in
      if k = xk then x
      else find_node tx (if k < xk then get_left tx x else get_right tx x) k

  let contains t tx k = find_node tx (get_root tx t) k <> 0

  let find_opt t tx k =
    let x = find_node tx (get_root tx t) k in
    if x = 0 then None else Some (get_value tx x)

  (* ------------------------------------------------------------------ *)
  (* Insertion                                                           *)
  (* ------------------------------------------------------------------ *)

  let rec insert_fixup t tx z =
    let p = get_parent tx z in
    if p <> 0 && get_color tx p = red then begin
      let g = get_parent tx p in
      (* The parent is red, so it is not the root and [g] exists. *)
      if p = get_left tx g then begin
        let y = get_right tx g in
        if color_of tx y = red then begin
          set_color tx p black;
          set_color tx y black;
          set_color tx g red;
          insert_fixup t tx g
        end
        else begin
          let z = if z = get_right tx p then (left_rotate t tx p; p) else z in
          let p = get_parent tx z in
          let g = get_parent tx p in
          set_color tx p black;
          set_color tx g red;
          right_rotate t tx g
        end
      end
      else begin
        let y = get_left tx g in
        if color_of tx y = red then begin
          set_color tx p black;
          set_color tx y black;
          set_color tx g red;
          insert_fixup t tx g
        end
        else begin
          let z = if z = get_left tx p then (right_rotate t tx p; p) else z in
          let p = get_parent tx z in
          let g = get_parent tx p in
          set_color tx p black;
          set_color tx g red;
          left_rotate t tx g
        end
      end
    end

  (* [insert t tx k v] returns [true] iff [k] was absent (a node was
     created); an existing binding is left untouched (set semantics — use
     {!put} for map semantics). *)
  let insert t tx k v =
    let rec descend x =
      let xk = get_key tx x in
      if k = xk then false
      else if k < xk then begin
        let l = get_left tx x in
        if l = 0 then attach x k v true else descend l
      end
      else begin
        let r = get_right tx x in
        if r = 0 then attach x k v false else descend r
      end
    and attach p k v as_left =
      let z = T.alloc tx node_words in
      set_key tx z k;
      set_value tx z v;
      set_left tx z 0;
      set_right tx z 0;
      set_parent tx z p;
      set_color tx z red;
      if p = 0 then set_root tx t z
      else if as_left then set_left tx p z
      else set_right tx p z;
      insert_fixup t tx z;
      let r = get_root tx t in
      set_color tx r black;
      true
    in
    let root = get_root tx t in
    if root = 0 then attach 0 k v true else descend root

  let put t tx k v =
    let x = find_node tx (get_root tx t) k in
    if x = 0 then ignore (insert t tx k v) else set_value tx x v

  (* ------------------------------------------------------------------ *)
  (* Deletion                                                            *)
  (* ------------------------------------------------------------------ *)

  let rec min_node tx x =
    let l = get_left tx x in
    if l = 0 then x else min_node tx l

  (* Replace the subtree rooted at [u] by [v] ([v] may be null). *)
  let transplant t tx u v =
    let p = get_parent tx u in
    if p = 0 then set_root tx t v
    else if u = get_left tx p then set_left tx p v
    else set_right tx p v;
    if v <> 0 then set_parent tx v p

  (* [x] (possibly null) sits where a black node was removed; [xp] is its
     parent (null iff [x] is the root). *)
  let rec delete_fixup t tx x xp =
    if xp = 0 then begin
      if x <> 0 then set_color tx x black
    end
    else if x <> 0 && get_color tx x = red then set_color tx x black
    else if x = get_left tx xp then begin
      let w = get_right tx xp in
      let w =
        if get_color tx w = red then begin
          set_color tx w black;
          set_color tx xp red;
          left_rotate t tx xp;
          get_right tx xp
        end
        else w
      in
      if
        color_of tx (get_left tx w) = black
        && color_of tx (get_right tx w) = black
      then begin
        set_color tx w red;
        delete_fixup t tx xp (get_parent tx xp)
      end
      else begin
        let w =
          if color_of tx (get_right tx w) = black then begin
            set_color tx (get_left tx w) black;
            set_color tx w red;
            right_rotate t tx w;
            get_right tx xp
          end
          else w
        in
        set_color tx w (get_color tx xp);
        set_color tx xp black;
        set_color tx (get_right tx w) black;
        left_rotate t tx xp;
        let r = get_root tx t in
        if r <> 0 then set_color tx r black
      end
    end
    else begin
      let w = get_left tx xp in
      let w =
        if get_color tx w = red then begin
          set_color tx w black;
          set_color tx xp red;
          right_rotate t tx xp;
          get_left tx xp
        end
        else w
      in
      if
        color_of tx (get_left tx w) = black
        && color_of tx (get_right tx w) = black
      then begin
        set_color tx w red;
        delete_fixup t tx xp (get_parent tx xp)
      end
      else begin
        let w =
          if color_of tx (get_left tx w) = black then begin
            set_color tx (get_right tx w) black;
            set_color tx w red;
            left_rotate t tx w;
            get_left tx xp
          end
          else w
        in
        set_color tx w (get_color tx xp);
        set_color tx xp black;
        set_color tx (get_left tx w) black;
        right_rotate t tx xp;
        let r = get_root tx t in
        if r <> 0 then set_color tx r black
      end
    end

  let remove t tx k =
    let z = find_node tx (get_root tx t) k in
    if z = 0 then false
    else begin
      let zl = get_left tx z and zr = get_right tx z in
      let removed_color, x, xp =
        if zl = 0 then begin
          let xp = get_parent tx z in
          transplant t tx z zr;
          (get_color tx z, zr, xp)
        end
        else if zr = 0 then begin
          let xp = get_parent tx z in
          transplant t tx z zl;
          (get_color tx z, zl, xp)
        end
        else begin
          (* Two children: splice in the successor [y]. *)
          let y = min_node tx zr in
          let y_color = get_color tx y in
          let x = get_right tx y in
          let xp =
            if get_parent tx y = z then y
            else begin
              let yp = get_parent tx y in
              transplant t tx y x;
              set_right tx y zr;
              set_parent tx zr y;
              yp
            end
          in
          transplant t tx z y;
          set_left tx y zl;
          set_parent tx zl y;
          set_color tx y (get_color tx z);
          (y_color, x, xp)
        end
      in
      if removed_color = black then delete_fixup t tx x xp;
      T.free tx z node_words;
      true
    end

  let add t tx k =
    if k = min_int || k = max_int then invalid_arg "Rbtree: reserved key";
    insert t tx k 0

  (* ------------------------------------------------------------------ *)
  (* Traversals                                                          *)
  (* ------------------------------------------------------------------ *)

  let overwrite_upto t tx bound =
    let rec go x count =
      if x = 0 then (count, true)
      else
        let count, continue_ = go (get_left tx x) count in
        if not continue_ then (count, false)
        else
          let xk = get_key tx x in
          if xk >= bound then (count, false)
          else begin
            set_value tx x (get_value tx x);
            go (get_right tx x) (count + 1)
          end
    in
    fst (go (get_root tx t) 0)

  let size t tx =
    let rec go x acc =
      if x = 0 then acc
      else go (get_right tx x) (go (get_left tx x) acc + 1)
    in
    go (get_root tx t) 0

  let to_list t tx =
    let rec go x acc =
      if x = 0 then acc
      else go (get_left tx x) (get_key tx x :: go (get_right tx x) acc)
    in
    go (get_root tx t) []

  let bindings t tx =
    let rec go x acc =
      if x = 0 then acc
      else
        go (get_left tx x)
          ((get_key tx x, get_value tx x) :: go (get_right tx x) acc)
    in
    go (get_root tx t) []

  (* ------------------------------------------------------------------ *)
  (* Invariant checking (tests)                                          *)
  (* ------------------------------------------------------------------ *)

  exception Broken of string

  (* Checks the red-black invariants, BST order and parent-pointer
     consistency; returns the number of nodes. *)
  let check_invariants t tx =
    let rec go x parent lo hi =
      if x = 0 then (1, 0)
      else begin
        let k = get_key tx x in
        (match lo with
        | Some l when k <= l -> raise (Broken "BST order (low)")
        | _ -> ());
        (match hi with
        | Some h when k >= h -> raise (Broken "BST order (high)")
        | _ -> ());
        if get_parent tx x <> parent then raise (Broken "parent pointer");
        let c = get_color tx x in
        if c <> red && c <> black then raise (Broken "invalid color");
        if c = red then begin
          if color_of tx (get_left tx x) = red then raise (Broken "red-red");
          if color_of tx (get_right tx x) = red then raise (Broken "red-red")
        end;
        let bh_l, n_l = go (get_left tx x) x lo (Some k) in
        let bh_r, n_r = go (get_right tx x) x (Some k) hi in
        if bh_l <> bh_r then raise (Broken "black height");
        ((bh_l + if c = black then 1 else 0), n_l + n_r + 1)
      end
    in
    let root = get_root tx t in
    if root <> 0 then begin
      if get_color tx root <> black then raise (Broken "red root");
      if get_parent tx root <> 0 then raise (Broken "root parent")
    end;
    snd (go root 0 None None)
end
