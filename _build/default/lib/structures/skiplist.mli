(** Transactional skip list over word memory.

    Tower heights are a deterministic function of the key (geometric with
    p = 1/2 from a hash), so simulated runs stay bit-reproducible without
    per-thread RNG state.  Node layout: [key; value; level; next_0 ..
    next_{level-1}]. *)

module Make (T : Tstm_tm.Tm_intf.TM) : sig
  type t

  val max_level : int

  val create : T.t -> t

  val contains : t -> T.tx -> int -> bool
  val add : t -> T.tx -> int -> bool
  val remove : t -> T.tx -> int -> bool

  val overwrite_upto : t -> T.tx -> int -> int
  (** Rewrite every entry with key < bound along level 0; returns the
      count. *)

  val size : t -> T.tx -> int
  val to_list : t -> T.tx -> int list

  exception Broken of string

  val check_invariants : t -> T.tx -> int
  (** Checks that every level is a sorted sub-sequence of level 0 and tower
      heights match node levels; returns the element count. *)
end
