(** Common signature of the transactional integer-set structures.

    All operations run inside a caller-supplied transaction, so several
    operations can be composed atomically; the benchmark harness runs one
    operation per transaction, as the paper's microbenchmarks do.

    Keys must lie strictly between [min_int] and [max_int] (the extremes are
    reserved for sentinels). *)

module type SET = sig
  type t
  type stm
  type tx

  val create : stm -> t
  (** Allocates the structure's backbone in the STM's word memory (runs its
      own transaction). *)

  val contains : t -> tx -> int -> bool
  val add : t -> tx -> int -> bool
  (** [true] iff the key was absent and has been inserted. *)

  val remove : t -> tx -> int -> bool
  (** [true] iff the key was present and has been removed (its node is freed
      transactionally). *)

  val overwrite_upto : t -> tx -> int -> int
  (** The paper's large-write-set operation (Fig. 4 right): traverse the
      structure in key order and rewrite every entry with key < the given
      bound; returns the number of entries rewritten. *)

  val size : t -> tx -> int
  val to_list : t -> tx -> int list
  (** Elements in ascending key order. *)
end
