(** Sorted singly-linked integer list (the paper's linked-list benchmark,
    §3.3): every operation traverses from the head, so read sets grow
    linearly with the structure size and all transactions touch the same
    prefix of nodes — the adversarial case for STM scalability.

    Node layout in word memory: [value; next].  Head and tail sentinels hold
    [min_int] and [max_int]. *)

module Make (T : Tstm_tm.Tm_intf.TM) :
  Set_intf.SET with type stm := T.t and type tx := T.tx = struct
  type t = { head : int }

  let value tx a = T.read tx a
  let next tx a = T.read tx (a + 1)
  let set_value tx a v = T.write tx a v
  let set_next tx a n = T.write tx (a + 1) n

  let create stm =
    T.atomically stm (fun tx ->
        let tail = T.alloc tx 2 in
        set_value tx tail max_int;
        set_next tx tail 0;
        let head = T.alloc tx 2 in
        set_value tx head min_int;
        set_next tx head tail;
        { head })

  (* First node with value >= v, together with its predecessor. *)
  let locate t tx v =
    let rec go prev curr =
      let cv = value tx curr in
      if cv >= v then (prev, curr, cv) else go curr (next tx curr)
    in
    go t.head (next tx t.head)

  let check_key v =
    if v = min_int || v = max_int then invalid_arg "Intset_list: reserved key"

  let contains t tx v =
    check_key v;
    let _, _, cv = locate t tx v in
    cv = v

  let add t tx v =
    check_key v;
    let prev, curr, cv = locate t tx v in
    if cv = v then false
    else begin
      let n = T.alloc tx 2 in
      set_value tx n v;
      set_next tx n curr;
      set_next tx prev n;
      true
    end

  let remove t tx v =
    check_key v;
    let prev, curr, cv = locate t tx v in
    if cv <> v then false
    else begin
      set_next tx prev (next tx curr);
      T.free tx curr 2;
      true
    end

  let overwrite_upto t tx v =
    check_key v;
    let rec go curr count =
      let cv = value tx curr in
      if cv >= v then count
      else begin
        set_value tx curr cv;
        go (next tx curr) (count + 1)
      end
    in
    go (next tx t.head) 0

  let size t tx =
    let rec go curr count =
      let cv = value tx curr in
      if cv = max_int then count else go (next tx curr) (count + 1)
    in
    go (next tx t.head) 0

  let to_list t tx =
    let rec go curr acc =
      let cv = value tx curr in
      if cv = max_int then List.rev acc else go (next tx curr) (cv :: acc)
    in
    go (next tx t.head) []
end
