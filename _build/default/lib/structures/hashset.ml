(** Transactional hash set: a fixed array of buckets, each a sorted linked
    list.  Short transactions with excellent disjoint-access parallelism —
    the favourable contrast to {!Intset_list}.

    Layout in word memory: header [n_buckets; bucket_0 .. bucket_{n-1}];
    bucket nodes are [value; next] pairs (no sentinels; 0 = empty). *)

module Make (T : Tstm_tm.Tm_intf.TM) = struct
  type t = { hdr : int; n_buckets : int }

  let get_bucket tx t i = T.read tx (t.hdr + 1 + i)
  let set_bucket tx t i v = T.write tx (t.hdr + 1 + i) v
  let get_value tx a = T.read tx a
  let get_next tx a = T.read tx (a + 1)
  let set_value tx a v = T.write tx a v
  let set_next tx a v = T.write tx (a + 1) v

  let create ?(n_buckets = 64) stm =
    if not (Tstm_util.Bitops.is_pow2 n_buckets) then
      invalid_arg "Hashset.create: n_buckets must be a power of two";
    T.atomically stm (fun tx ->
        let hdr = T.alloc tx (1 + n_buckets) in
        T.write tx hdr n_buckets;
        for i = 0 to n_buckets - 1 do
          T.write tx (hdr + 1 + i) 0
        done;
        { hdr; n_buckets })

  let bucket_of t k = Tstm_util.Bitops.mix k land (t.n_buckets - 1)

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "Hashset: reserved key"

  (* Predecessor (0 = bucket head) and candidate node for key [k]. *)
  let locate t tx b k =
    let rec go prev curr =
      if curr = 0 then (prev, 0)
      else
        let v = get_value tx curr in
        if v >= k then (prev, curr) else go curr (get_next tx curr)
    in
    go 0 (get_bucket tx t b)

  let contains t tx k =
    check_key k;
    let b = bucket_of t k in
    let _, c = locate t tx b k in
    c <> 0 && get_value tx c = k

  let add t tx k =
    check_key k;
    let b = bucket_of t k in
    let prev, c = locate t tx b k in
    if c <> 0 && get_value tx c = k then false
    else begin
      let z = T.alloc tx 2 in
      set_value tx z k;
      set_next tx z c;
      if prev = 0 then set_bucket tx t b z else set_next tx prev z;
      true
    end

  let remove t tx k =
    check_key k;
    let b = bucket_of t k in
    let prev, c = locate t tx b k in
    if c = 0 || get_value tx c <> k then false
    else begin
      let nxt = get_next tx c in
      if prev = 0 then set_bucket tx t b nxt else set_next tx prev nxt;
      T.free tx c 2;
      true
    end

  (* Rewrites every element with key < bound, bucket by bucket (hash order,
     not key order — the write-set size is what matters here). *)
  let overwrite_upto t tx bound =
    let count = ref 0 in
    for b = 0 to t.n_buckets - 1 do
      let rec go curr =
        if curr <> 0 then begin
          let v = get_value tx curr in
          if v < bound then begin
            set_value tx curr v;
            incr count
          end;
          go (get_next tx curr)
        end
      in
      go (get_bucket tx t b)
    done;
    !count

  let size t tx =
    let total = ref 0 in
    for b = 0 to t.n_buckets - 1 do
      let rec go curr acc =
        if curr = 0 then acc else go (get_next tx curr) (acc + 1)
      in
      total := !total + go (get_bucket tx t b) 0
    done;
    !total

  let to_list t tx =
    let acc = ref [] in
    for b = t.n_buckets - 1 downto 0 do
      let rec go curr items =
        if curr = 0 then items else go (get_next tx curr) (get_value tx curr :: items)
      in
      acc := go (get_bucket tx t b) [] @ !acc
    done;
    List.sort compare !acc

  exception Broken of string

  (* Buckets sorted, every element hashed to its bucket. *)
  let check_invariants t tx =
    let total = ref 0 in
    for b = 0 to t.n_buckets - 1 do
      let rec go prev curr =
        if curr <> 0 then begin
          let v = get_value tx curr in
          if bucket_of t v <> b then raise (Broken "wrong bucket");
          (match prev with
          | Some p when p >= v -> raise (Broken "bucket not sorted")
          | _ -> ());
          incr total;
          go (Some v) (get_next tx curr)
        end
      in
      go None (get_bucket tx t b)
    done;
    !total
end
