(** Transactional skip list.  Tower levels are derived deterministically from
    the key (trailing zeros of a hash), so structure layout — and therefore
    simulated runs — are reproducible without per-thread RNG state.

    Node layout in word memory: [key; value; level; next_0 .. next_{level-1}]
    (size [3 + level]).  The head tower carries [min_int] at every level;
    the null pointer 0 terminates each level. *)

module Make (T : Tstm_tm.Tm_intf.TM) = struct
  let max_level = 16

  type t = { head : int }

  let get_key tx a = T.read tx a
  let get_value tx a = T.read tx (a + 1)
  let get_level tx a = T.read tx (a + 2)
  let get_next tx a i = T.read tx (a + 3 + i)
  let set_key tx a v = T.write tx a v
  let set_value tx a v = T.write tx (a + 1) v
  let set_level tx a v = T.write tx (a + 2) v
  let set_next tx a i v = T.write tx (a + 3 + i) v

  (* Geometric level with p = 1/2, deterministic in the key. *)
  let level_for k =
    let h = Tstm_util.Bitops.mix k in
    let rec zeros n i = if i >= max_level - 1 || n land 1 = 1 then i else zeros (n lsr 1) (i + 1) in
    1 + zeros h 0

  let create stm =
    T.atomically stm (fun tx ->
        let head = T.alloc tx (3 + max_level) in
        set_key tx head min_int;
        set_value tx head 0;
        set_level tx head max_level;
        for i = 0 to max_level - 1 do
          set_next tx head i 0
        done;
        { head })

  (* Fills [preds] with the rightmost node of key < k at each level; returns
     the level-0 successor (candidate match). *)
  let find_preds t tx k preds =
    let rec down lvl node =
      let rec forward node =
        let nxt = get_next tx node lvl in
        if nxt <> 0 && get_key tx nxt < k then forward nxt else node
      in
      let node = forward node in
      preds.(lvl) <- node;
      if lvl > 0 then down (lvl - 1) node
      else get_next tx node 0
    in
    down (max_level - 1) t.head

  let check_key k =
    if k = min_int || k = max_int then invalid_arg "Skiplist: reserved key"

  let contains t tx k =
    check_key k;
    let preds = Array.make max_level 0 in
    let c = find_preds t tx k preds in
    c <> 0 && get_key tx c = k

  let add t tx k =
    check_key k;
    let preds = Array.make max_level 0 in
    let c = find_preds t tx k preds in
    if c <> 0 && get_key tx c = k then false
    else begin
      let lvl = level_for k in
      let z = T.alloc tx (3 + lvl) in
      set_key tx z k;
      set_value tx z 0;
      set_level tx z lvl;
      for i = 0 to lvl - 1 do
        set_next tx z i (get_next tx preds.(i) i);
        set_next tx preds.(i) i z
      done;
      true
    end

  let remove t tx k =
    check_key k;
    let preds = Array.make max_level 0 in
    let c = find_preds t tx k preds in
    if c = 0 || get_key tx c <> k then false
    else begin
      let lvl = get_level tx c in
      for i = 0 to lvl - 1 do
        if get_next tx preds.(i) i = c then
          set_next tx preds.(i) i (get_next tx c i)
      done;
      T.free tx c (3 + lvl);
      true
    end

  let overwrite_upto t tx bound =
    check_key bound;
    let rec go node count =
      if node = 0 then count
      else
        let k = get_key tx node in
        if k >= bound then count
        else begin
          set_value tx node (get_value tx node);
          go (get_next tx node 0) (count + 1)
        end
    in
    go (get_next tx t.head 0) 0

  let size t tx =
    let rec go node count =
      if node = 0 then count else go (get_next tx node 0) (count + 1)
    in
    go (get_next tx t.head 0) 0

  let to_list t tx =
    let rec go node acc =
      if node = 0 then List.rev acc
      else go (get_next tx node 0) (get_key tx node :: acc)
    in
    go (get_next tx t.head 0) []

  exception Broken of string

  (* Every level must be a sorted sub-sequence of level 0, and every node's
     tower must be linked at exactly its [level] levels. *)
  let check_invariants t tx =
    let level0 = to_list t tx in
    let sorted l = List.for_all2 ( < ) (List.filteri (fun i _ -> i < List.length l - 1) l)
        (List.tl l)
    in
    if List.length level0 > 1 && not (sorted level0) then
      raise (Broken "level 0 not sorted");
    for lvl = 1 to max_level - 1 do
      let rec walk node acc =
        if node = 0 then List.rev acc
        else begin
          if get_level tx node <= lvl then raise (Broken "tower too short");
          walk (get_next tx node lvl) (get_key tx node :: acc)
        end
      in
      let keys = walk (get_next tx t.head lvl) [] in
      List.iter
        (fun k -> if not (List.mem k level0) then raise (Broken "orphan key"))
        keys;
      if List.length keys > 1 && not (sorted keys) then
        raise (Broken "upper level not sorted")
    done;
    List.length level0
end
