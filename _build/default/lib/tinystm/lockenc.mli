(** Encoding of TinySTM's versioned-lock words (paper §3.1, Figure 1).

    Each lock is one word.  The least significant bit says whether the lock
    is owned:

    - unlocked: [ version | incarnation(3 bits) | 0 ] — the version is the
      commit timestamp of the last writer; the incarnation number is bumped
      on write-through aborts so that a reader racing with an abort-and-
      restore cannot miss the intervening write;
    - locked: [ payload | owner tid (7 bits) | 1 ] — the paper stores a
      pointer to the owner transaction (write-through) or to a write-set
      entry (write-back); with integer descriptors we store the owner's
      thread id and, for write-back, the index of the first write-set entry
      covering this lock (entries for the same lock are chained). *)

val is_locked : int -> bool

(** {1 Unlocked words} *)

val unlocked : version:int -> incarnation:int -> int
val version : int -> int
val incarnation : int -> int

val max_incarnation : int
(** 7 (three bits, as in the paper). *)

val max_version : int
(** Largest encodable version. *)

(** {1 Locked words} *)

val locked : tid:int -> payload:int -> int
val owner : int -> int
val payload : int -> int

val max_tid : int
(** 127. *)

val no_payload : int
(** Payload value meaning "none" (used by write-through locks). *)
