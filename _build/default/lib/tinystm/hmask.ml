type t = { bits : Bytes.t; touched : Tstm_util.Growbuf.t }

let create h =
  if h < 1 then invalid_arg "Hmask.create";
  { bits = Bytes.make h '\000'; touched = Tstm_util.Growbuf.create 8 }

let size t = Bytes.length t.bits
let mem t i = Bytes.unsafe_get t.bits i <> '\000'

let add t i =
  if mem t i then false
  else begin
    Bytes.unsafe_set t.bits i '\001';
    Tstm_util.Growbuf.push t.touched i;
    true
  end

let clear t =
  let n = Tstm_util.Growbuf.length t.touched in
  for j = 0 to n - 1 do
    Bytes.unsafe_set t.bits (Tstm_util.Growbuf.get t.touched j) '\000'
  done;
  Tstm_util.Growbuf.clear t.touched

let iter t f =
  let n = Tstm_util.Growbuf.length t.touched in
  for j = 0 to n - 1 do
    f (Tstm_util.Growbuf.get t.touched j)
  done

let cardinal t = Tstm_util.Growbuf.length t.touched
