(** Per-transaction bit masks over the hierarchical array (paper §3.2): the
    read mask and write mask of [h] bits each.  Adding is idempotent and
    clearing is O(set bits), which matters because masks are reset on every
    transaction. *)

type t

val create : int -> t
(** [create h] for slots [0 .. h-1]. *)

val size : t -> int
val mem : t -> int -> bool

val add : t -> int -> bool
(** [add t i] sets bit [i]; returns [true] iff it was previously clear. *)

val clear : t -> unit

val iter : t -> (int -> unit) -> unit
(** Iterate over set bits in insertion order. *)

val cardinal : t -> int
