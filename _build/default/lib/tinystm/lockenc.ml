let is_locked w = w land 1 = 1

(* unlocked: version in bits 4.., incarnation in bits 1..3, bit 0 clear *)

let max_incarnation = 7
let max_version = max_int lsr 4

let unlocked ~version ~incarnation =
  assert (version >= 0 && version <= max_version);
  assert (incarnation >= 0 && incarnation <= max_incarnation);
  (version lsl 4) lor (incarnation lsl 1)

let version w = w lsr 4
let incarnation w = (w lsr 1) land 7

(* locked: payload in bits 8.., tid in bits 1..7, bit 0 set *)

let max_tid = 127
let no_payload = (max_int lsr 8) land max_int

let locked ~tid ~payload =
  assert (tid >= 0 && tid <= max_tid);
  assert (payload >= 0);
  (payload lsl 8) lor (tid lsl 1) lor 1

let owner w = (w lsr 1) land max_tid
let payload w = w lsr 8
