(** TinySTM tuning configuration (paper §4): the three runtime parameters the
    dynamic tuner searches over, plus the write strategy. *)

type strategy = Write_back | Write_through

val strategy_to_string : strategy -> string

type t = {
  n_locks : int;  (** size ℓ of the lock array; a power of two *)
  shifts : int;  (** address right-shifts before lock hashing (locality) *)
  hierarchy : int;
      (** size h of the hierarchical array; a power of two; 1 = disabled *)
  hierarchy2 : int;
      (** size of the optional second, coarser counter level (paper §3.2:
          "this scheme can be generalized hierarchically to multiple levels
          of nesting"); a power of two dividing [hierarchy]; 1 = single
          level *)
  strategy : strategy;
}

val default : t
(** The paper's production default: 2{^16} locks, 0 shifts, hierarchy
    disabled, write-back. *)

val make :
  ?n_locks:int -> ?shifts:int -> ?hierarchy:int -> ?hierarchy2:int ->
  ?strategy:strategy -> unit -> t
(** [default] with overrides; validated. *)

val validate : t -> unit
(** Raises [Invalid_argument] unless [n_locks] is a power of two in
    [2{^1}, 2{^26}], [shifts] is in [0, 16], [hierarchy] is a power of two
    in [1, 1024] not exceeding [n_locks] (the counter hash must be consistent
    with the lock hash: two addresses on the same lock share a counter), and
    [hierarchy2] is a power of two not exceeding [hierarchy] (two addresses
    on the same level-1 counter share a level-2 counter). *)

val lock_index : t -> int -> int
(** [(addr lsr shifts) mod n_locks] — per-stripe mapping; consecutive
    stripes of [2{^shifts}] words share a lock. *)

val hier_index : t -> int -> int
(** [(addr lsr shifts) mod hierarchy]; consistent with {!lock_index}. *)

val hier2_index : t -> int -> int
(** [(addr lsr shifts) mod hierarchy2]; consistent with {!hier_index}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
