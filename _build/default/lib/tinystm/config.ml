type strategy = Write_back | Write_through

let strategy_to_string = function
  | Write_back -> "write-back"
  | Write_through -> "write-through"

type t = {
  n_locks : int;
  shifts : int;
  hierarchy : int;
  hierarchy2 : int;
  strategy : strategy;
}

let validate c =
  let module B = Tstm_util.Bitops in
  if not (B.is_pow2 c.n_locks) || c.n_locks < 2 || c.n_locks > 1 lsl 26 then
    invalid_arg "Config: n_locks must be a power of two in [2, 2^26]";
  if c.shifts < 0 || c.shifts > 16 then
    invalid_arg "Config: shifts must be in [0, 16]";
  if not (B.is_pow2 c.hierarchy) || c.hierarchy < 1 || c.hierarchy > 1024 then
    invalid_arg "Config: hierarchy must be a power of two in [1, 1024]";
  if c.hierarchy > c.n_locks then
    invalid_arg "Config: hierarchy must not exceed n_locks";
  if not (B.is_pow2 c.hierarchy2) || c.hierarchy2 < 1 then
    invalid_arg "Config: hierarchy2 must be a positive power of two";
  if c.hierarchy2 > c.hierarchy then
    invalid_arg "Config: hierarchy2 must not exceed hierarchy"

let default =
  {
    n_locks = 1 lsl 16;
    shifts = 0;
    hierarchy = 1;
    hierarchy2 = 1;
    strategy = Write_back;
  }

let make ?(n_locks = default.n_locks) ?(shifts = default.shifts)
    ?(hierarchy = default.hierarchy) ?(hierarchy2 = default.hierarchy2)
    ?(strategy = default.strategy) () =
  let c = { n_locks; shifts; hierarchy; hierarchy2; strategy } in
  validate c;
  c

let lock_index c addr = (addr lsr c.shifts) land (c.n_locks - 1)
let hier_index c addr = (addr lsr c.shifts) land (c.hierarchy - 1)
let hier2_index c addr = (addr lsr c.shifts) land (c.hierarchy2 - 1)

let pp ppf c =
  if c.hierarchy2 > 1 then
    Format.fprintf ppf "{locks=2^%d; shifts=%d; h=%d/%d; %s}"
      (Tstm_util.Bitops.log2 c.n_locks)
      c.shifts c.hierarchy c.hierarchy2
      (strategy_to_string c.strategy)
  else
    Format.fprintf ppf "{locks=2^%d; shifts=%d; h=%d; %s}"
      (Tstm_util.Bitops.log2 c.n_locks)
      c.shifts c.hierarchy
      (strategy_to_string c.strategy)

let to_string c = Format.asprintf "%a" pp c

let equal a b =
  a.n_locks = b.n_locks && a.shifts = b.shifts && a.hierarchy = b.hierarchy
  && a.hierarchy2 = b.hierarchy2 && a.strategy = b.strategy
