lib/tinystm/hmask.ml: Bytes Tstm_util
