lib/tinystm/lockenc.mli:
