lib/tinystm/hmask.mli:
