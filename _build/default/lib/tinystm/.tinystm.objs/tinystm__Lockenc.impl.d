lib/tinystm/lockenc.ml:
