lib/tinystm/tinystm.mli: Config Hmask Lockenc Tstm_runtime Tstm_tm Tstm_vmm
