lib/tinystm/config.ml: Format Tstm_util
