lib/tinystm/config.mli: Format
