lib/tinystm/tinystm.ml: Array Config Hmask Lockenc Tstm_runtime Tstm_tm Tstm_util Tstm_vmm
