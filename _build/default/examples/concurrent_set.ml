(* Concurrent transactional sets on real domains: the same workload run over
   all four data structures and all three STM variants.

     dune exec examples/concurrent_set.exe

   Shows how the structure functors compose with any TM implementation and
   how structure choice dominates performance (compare the list, where every
   operation traverses from the head, with the tree and hash set). *)

module R = Tstm_runtime.Runtime_real

let n_domains = 4
let ops_per_domain = 5_000
let size = 512

module Bench (T : Tstm_tm.Tm_intf.TM) = struct
  module D = Tstm_harness.Driver.Make (R) (T)

  let run stm label structure =
    let spec =
      Tstm_harness.Workload.make ~structure ~initial_size:size
        ~update_pct:20.0 ~nthreads:n_domains ~duration:1.0 ()
    in
    let ops = D.make_structure stm structure in
    D.populate stm ops spec;
    T.reset_stats stm;
    let t0 = Unix.gettimeofday () in
    R.run ~nthreads:n_domains (fun tid ->
        let g = Tstm_util.Xrand.create (tid * 7919) in
        let pending = ref None in
        for _ = 1 to ops_per_domain do
          let p = Tstm_util.Xrand.float g *. 100.0 in
          let draw () = 1 + Tstm_util.Xrand.int g spec.Tstm_harness.Workload.key_range in
          if p < 20.0 then (
            match !pending with
            | Some v ->
                ignore (T.atomically stm (fun tx -> ops.D.op_remove tx v));
                pending := None
            | None ->
                let v =
                  T.atomically stm (fun tx ->
                      let rec go () =
                        let v = draw () in
                        if ops.D.op_add tx v then v else go ()
                      in
                      go ())
                in
                pending := Some v)
          else
            ignore
              (T.atomically ~read_only:true stm (fun tx ->
                   ops.D.op_contains tx (draw ())))
        done);
    let dt = Unix.gettimeofday () -. t0 in
    let s = T.stats stm in
    Printf.printf "  %-22s %10.0f txs/s  (commits=%d aborts=%d)\n" label
      (float_of_int s.Tstm_tm.Tm_stats.commits /. dt)
      s.Tstm_tm.Tm_stats.commits
      (Tstm_tm.Tm_stats.aborts s)
end

module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)
module B_ts = Bench (Ts)
module B_tl = Bench (Tl)

let () =
  List.iter
    (fun structure ->
      let name = Tstm_harness.Workload.structure_to_string structure in
      Printf.printf "%s (%d elements, 20%% updates, %d domains):\n" name size
        n_domains;
      List.iter
        (fun strategy ->
          let stm =
            Ts.create
              ~config:(Tinystm.Config.make ~n_locks:4096 ~strategy ())
              ~memory_words:(size * 32) ()
          in
          B_ts.run stm
            ("tinystm-" ^ Tinystm.Config.strategy_to_string strategy)
            structure)
        [ Tinystm.Config.Write_back; Tinystm.Config.Write_through ];
      let stm = Tl.create ~n_locks:4096 ~memory_words:(size * 32) () in
      B_tl.run stm "tl2" structure)
    [
      Tstm_harness.Workload.List;
      Tstm_harness.Workload.Rbtree;
      Tstm_harness.Workload.Skiplist;
      Tstm_harness.Workload.Hashset;
    ]
