(* The Vacation travel-reservation workload (STAMP-style, paper Fig. 7) on
   real OCaml domains, with a full consistency audit at the end.

     dune exec examples/vacation_demo.exe
*)

module R = Tstm_runtime.Runtime_real
module Stm = Tinystm.Make (R)
module Vac = Tstm_vacation.Vacation.Make (Stm)

let n_domains = 4
let txs_per_domain = 10_000

let () =
  let spec =
    {
      Tstm_vacation.Vacation.default_spec with
      Tstm_vacation.Vacation.n_relations = 1024;
      n_customers = 1024;
    }
  in
  let stm =
    Stm.create
      ~config:(Tinystm.Config.make ~n_locks:(1 lsl 14) ~hierarchy:4 ())
      ~memory_words:(Tstm_vacation.Vacation.memory_words_for spec)
      ()
  in
  let v = Vac.create stm in
  Printf.printf "populating %d resources per table, %d customers...\n%!"
    spec.Tstm_vacation.Vacation.n_relations
    spec.Tstm_vacation.Vacation.n_customers;
  let v = Vac.populate v spec ~seed:2024 in
  Stm.reset_stats stm;
  let t0 = Unix.gettimeofday () in
  R.run ~nthreads:n_domains (fun tid ->
      let g = Tstm_util.Xrand.create (42 + tid) in
      for _ = 1 to txs_per_domain do
        Vac.client_step v spec g
      done);
  let dt = Unix.gettimeofday () -. t0 in
  let s = Stm.stats stm in
  Printf.printf
    "%d domains x %d transactions in %.2fs: %.0f txs/s (aborts: %d)\n"
    n_domains txs_per_domain dt
    (float_of_int s.Tstm_tm.Tm_stats.commits /. dt)
    (Tstm_tm.Tm_stats.aborts s);
  print_string "auditing reservation tables... ";
  Vac.check_consistency v;
  print_endline "consistent."
