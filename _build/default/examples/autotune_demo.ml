(* Dynamic tuning demo (the paper's §4): start an 8-CPU simulated linked-list
   workload from a deliberately poor configuration (2^8 locks, no shifts,
   hierarchy off) and watch the hill climber find a better one.

     dune exec examples/autotune_demo.exe
*)

module S = Tstm_harness.Scenario
module W = Tstm_harness.Workload
module Tuner = Tstm_tuning.Tuner

let () =
  let spec =
    W.make ~structure:W.List ~initial_size:1024 ~update_pct:20.0 ~nthreads:8
      ~duration:1.0 ()
  in
  Printf.printf
    "Auto-tuning a linked list (1024 elements, 20%% updates, 8 simulated CPUs)\n";
  Printf.printf "starting from {locks=2^8; shifts=0; h=1}...\n\n";
  let tr = S.run_intset_autotuned ~period:0.001 ~n_steps:15 spec in
  Printf.printf "%4s  %-42s %10s  %s\n" "step" "configuration" "thr (k/s)"
    "move";
  let first = ref None and best = ref 0.0 in
  List.iteri
    (fun i (s : Tuner.step) ->
      if !first = None then first := Some s.Tuner.throughput;
      if s.Tuner.throughput > !best then best := s.Tuner.throughput;
      Printf.printf "%4d  %-42s %10.1f  %s\n" (i + 1)
        (Tinystm.Config.to_string s.Tuner.config)
        (s.Tuner.throughput /. 1e3)
        (Tuner.move_label s.Tuner.move))
    tr.S.steps;
  match !first with
  | Some f ->
      Printf.printf
        "\nbest configuration is %.1fx the starting throughput\n"
        (!best /. f)
  | None -> ()
