examples/quickstart.ml: Printf Tinystm Tstm_runtime Tstm_tm Tstm_util Unix
