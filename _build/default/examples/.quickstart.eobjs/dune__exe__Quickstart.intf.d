examples/quickstart.mli:
