examples/concurrent_set.ml: List Printf Tinystm Tstm_harness Tstm_runtime Tstm_tl2 Tstm_tm Tstm_util Unix
