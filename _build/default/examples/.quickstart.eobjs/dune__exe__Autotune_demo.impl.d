examples/autotune_demo.ml: List Printf Tinystm Tstm_harness Tstm_tuning
