examples/vacation_demo.ml: Printf Tinystm Tstm_runtime Tstm_tm Tstm_util Tstm_vacation Unix
