(* Quickstart: money transfers between accounts, running real transactions
   on real OCaml domains.

     dune exec examples/quickstart.exe

   The pattern: instantiate TinySTM over a runtime, allocate words in its
   memory arena, and wrap reads/writes in [atomically].  Conflicting
   transfers abort and retry automatically; the total balance is invariant. *)

module R = Tstm_runtime.Runtime_real
module Stm = Tinystm.Make (R)

let n_accounts = 32
let initial_balance = 1_000
let n_domains = 4
let transfers_per_domain = 25_000

let () =
  let stm =
    Stm.create
      ~config:(Tinystm.Config.make ~n_locks:1024 ())
      ~memory_words:4096 ()
  in
  (* Allocate and initialise the accounts in one transaction. *)
  let accounts =
    Stm.atomically stm (fun tx ->
        let base = Stm.alloc tx n_accounts in
        for i = 0 to n_accounts - 1 do
          Stm.write tx (base + i) initial_balance
        done;
        base)
  in
  let transfer tx ~src ~dst amount =
    let s = Stm.read tx (accounts + src) in
    if s >= amount then begin
      Stm.write tx (accounts + src) (s - amount);
      Stm.write tx (accounts + dst) (Stm.read tx (accounts + dst) + amount)
    end
  in
  let t0 = Unix.gettimeofday () in
  R.run ~nthreads:n_domains (fun tid ->
      let g = Tstm_util.Xrand.create (2024 + tid) in
      for _ = 1 to transfers_per_domain do
        let src = Tstm_util.Xrand.int g n_accounts
        and dst = Tstm_util.Xrand.int g n_accounts
        and amount = 1 + Tstm_util.Xrand.int g 50 in
        if src <> dst then
          Stm.atomically stm (fun tx -> transfer tx ~src ~dst amount)
      done);
  let dt = Unix.gettimeofday () -. t0 in
  let total =
    Stm.atomically ~read_only:true stm (fun tx ->
        let sum = ref 0 in
        for i = 0 to n_accounts - 1 do
          sum := !sum + Stm.read tx (accounts + i)
        done;
        !sum)
  in
  let stats = Stm.stats stm in
  Printf.printf "%d domains x %d transfers in %.2fs (%.0f txs/s)\n" n_domains
    transfers_per_domain dt
    (float_of_int stats.Tstm_tm.Tm_stats.commits /. dt);
  Printf.printf "commits=%d aborts=%d\n" stats.Tstm_tm.Tm_stats.commits
    (Tstm_tm.Tm_stats.aborts stats);
  Printf.printf "total balance: %d (expected %d) -> %s\n" total
    (n_accounts * initial_balance)
    (if total = n_accounts * initial_balance then "OK" else "BROKEN!");
  assert (total = n_accounts * initial_balance)
