(* Tests for the Vacation workload: manager operation semantics and global
   consistency (used + free = total; held reservations match used counts)
   under sequential and concurrent clients, on TinySTM and TL2. *)

module R = Tstm_runtime.Runtime_sim
module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)
module Vac_ts = Tstm_vacation.Vacation.Make (Ts)
module Vac_tl = Tstm_vacation.Vacation.Make (Tl)

let check_bool = Alcotest.(check bool)

let small_spec =
  {
    Vac_ts.default_spec with
    Vac_ts.n_relations = 64;
    n_customers = 64;
    queries_per_tx = 3;
  }

let make_ts () =
  let stm =
    Ts.create
      ~config:(Tinystm.Config.make ~n_locks:1024 ~hierarchy:4 ())
      ~memory_words:(Vac_ts.memory_words_for small_spec)
      ()
  in
  let v = Vac_ts.create stm in
  (stm, Vac_ts.populate v small_spec ~seed:11)

let test_populate_consistent () =
  let _, v = make_ts () in
  Vac_ts.check_consistency v

let test_reserve_and_release () =
  let stm, v = make_ts () in
  (* Reserve one car for customer 1. *)
  let ok =
    Ts.atomically stm (fun tx -> Vac_ts.reserve v tx Vac_ts.Car 5 1)
  in
  check_bool "reservation made" true ok;
  Vac_ts.check_consistency v;
  (* Deleting the customer releases the unit. *)
  let bill = Ts.atomically stm (fun tx -> Vac_ts.delete_customer v tx 1) in
  check_bool "bill computed" true (bill <> None && Option.get bill > 0);
  Vac_ts.check_consistency v;
  (* Deleting again: customer unknown. *)
  check_bool "second delete fails" true
    (Ts.atomically stm (fun tx -> Vac_ts.delete_customer v tx 1) = None)

let test_reserve_until_sold_out () =
  let stm, v = make_ts () in
  (* Resource capacities are multiples of 100 in [100, 500]. *)
  let booked = ref 0 in
  (try
     while true do
       if not (Ts.atomically stm (fun tx -> Vac_ts.reserve v tx Vac_ts.Room 7 2))
       then raise Exit;
       incr booked;
       if !booked > 600 then Alcotest.fail "never sold out"
     done
   with Exit -> ());
  check_bool "sold a plausible count" true (!booked >= 100 && !booked <= 500);
  check_bool "capacity is a multiple of 100" true (!booked mod 100 = 0);
  Vac_ts.check_consistency v

let test_add_and_delete_resource () =
  let stm, v = make_ts () in
  Ts.atomically stm (fun tx ->
      Vac_ts.add_resource v tx Vac_ts.Flight 999 100 42);
  check_bool "price visible" true
    (Ts.atomically stm (fun tx -> Vac_ts.query_price v tx Vac_ts.Flight 999)
    = Some 42);
  Vac_ts.check_consistency v;
  check_bool "retire succeeds" true
    (Ts.atomically stm (fun tx -> Vac_ts.delete_resource v tx Vac_ts.Flight 999 100));
  check_bool "resource gone" true
    (Ts.atomically stm (fun tx -> Vac_ts.query_price v tx Vac_ts.Flight 999)
    = None);
  Vac_ts.check_consistency v

let test_delete_resource_keeps_reserved_units () =
  let stm, v = make_ts () in
  check_bool "reserve" true
    (Ts.atomically stm (fun tx -> Vac_ts.reserve v tx Vac_ts.Car 9 3));
  (* Retiring more units than exist must still keep the reserved one. *)
  ignore
    (Ts.atomically stm (fun tx -> Vac_ts.delete_resource v tx Vac_ts.Car 9 100000));
  check_bool "resource survives while reserved" true
    (Ts.atomically stm (fun tx -> Vac_ts.query_price v tx Vac_ts.Car 9) <> None);
  Vac_ts.check_consistency v

let test_sequential_clients () =
  let _, v = make_ts () in
  let g = Tstm_util.Xrand.create 77 in
  for _ = 1 to 400 do
    Vac_ts.client_step v small_spec g
  done;
  Vac_ts.check_consistency v

let test_concurrent_clients () =
  let _, v = make_ts () in
  R.run ~nthreads:6 (fun tid ->
      let g = Tstm_util.Xrand.create (123 + tid) in
      for _ = 1 to 120 do
        Vac_ts.client_step v small_spec g
      done);
  Vac_ts.check_consistency v

let test_concurrent_clients_tl2 () =
  let stm = Tl.create ~n_locks:1024 ~memory_words:(Vac_tl.memory_words_for small_spec) () in
  let v = Vac_tl.create stm in
  let v = Vac_tl.populate v small_spec ~seed:11 in
  R.run ~nthreads:6 (fun tid ->
      let g = Tstm_util.Xrand.create (321 + tid) in
      for _ = 1 to 120 do
        Vac_tl.client_step v small_spec g
      done);
  Vac_tl.check_consistency v

let test_concurrent_deterministic () =
  let run () =
    let stm, v = make_ts () in
    R.run ~nthreads:4 (fun tid ->
        let g = Tstm_util.Xrand.create (555 + tid) in
        for _ = 1 to 80 do
          Vac_ts.client_step v small_spec g
        done);
    let s = Ts.stats stm in
    (s.Tstm_tm.Tm_stats.commits, Tstm_tm.Tm_stats.aborts s)
  in
  check_bool "deterministic" true (run () = run ())

let test_memory_reclaimed_by_churn () =
  (* Customer delete must free reservation items and the customer record;
     run a churn and verify live words do not grow without bound. *)
  let stm, v = make_ts () in
  let measure () = Ts.V.live_words (Ts.memory stm) in
  let g = Tstm_util.Xrand.create 999 in
  for _ = 1 to 200 do
    Vac_ts.client_step v small_spec g
  done;
  let after_warm = measure () in
  for _ = 1 to 600 do
    Vac_ts.client_step v small_spec g
  done;
  let final = measure () in
  (* Reservations are bounded by resources; allow head-room but no blow-up. *)
  check_bool
    (Printf.sprintf "no unbounded growth (%d -> %d)" after_warm final)
    true
    (final < (2 * after_warm) + 65536);
  Vac_ts.check_consistency v

let () =
  Alcotest.run "tstm_vacation"
    [
      ( "manager",
        [
          Alcotest.test_case "populate consistent" `Quick
            test_populate_consistent;
          Alcotest.test_case "reserve/release" `Quick test_reserve_and_release;
          Alcotest.test_case "sell out" `Quick test_reserve_until_sold_out;
          Alcotest.test_case "add/delete resource" `Quick
            test_add_and_delete_resource;
          Alcotest.test_case "retire keeps reserved" `Quick
            test_delete_resource_keeps_reserved_units;
        ] );
      ( "clients",
        [
          Alcotest.test_case "sequential" `Quick test_sequential_clients;
          Alcotest.test_case "concurrent (tinystm)" `Quick
            test_concurrent_clients;
          Alcotest.test_case "concurrent (tl2)" `Quick
            test_concurrent_clients_tl2;
          Alcotest.test_case "deterministic" `Quick
            test_concurrent_deterministic;
          Alcotest.test_case "memory churn bounded" `Quick
            test_memory_reclaimed_by_churn;
        ] );
    ]
