(* Model-based and invariant tests for the transactional data structures,
   run over TinySTM (write-back and write-through) and TL2. *)

module R = Tstm_runtime.Runtime_sim
module IS = Set.Make (Int)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A uniform view of one structure over one STM. *)
type harness = {
  h_name : string;
  contains : int -> bool;
  add : int -> bool;
  remove : int -> bool;
  overwrite_upto : int -> int;
  size : unit -> int;
  to_list : unit -> int list;
  check_invariants : unit -> int;  (* returns node count *)
  run_concurrent : nthreads:int -> (int -> (int -> bool) -> (int -> bool) -> unit) -> unit;
      (* run_concurrent ~n body: body tid add remove, with ops transactional *)
  live_words : unit -> int;
}

module Build (T : sig
  include Tstm_tm.Tm_intf.TM

  val make_instance : unit -> t
  val live : t -> int
end) =
struct
  module Ll = Tstm_structures.Intset_list.Make (T)
  module Rb = Tstm_structures.Rbtree.Make (T)
  module Sk = Tstm_structures.Skiplist.Make (T)
  module Hs = Tstm_structures.Hashset.Make (T)

  let wrap name ~contains ~add ~remove ~overwrite ~size ~to_list ~check stm =
    {
      h_name = Printf.sprintf "%s/%s" T.name name;
      contains = (fun k -> T.atomically stm (fun tx -> contains tx k));
      add = (fun k -> T.atomically stm (fun tx -> add tx k));
      remove = (fun k -> T.atomically stm (fun tx -> remove tx k));
      overwrite_upto = (fun k -> T.atomically stm (fun tx -> overwrite tx k));
      size = (fun () -> T.atomically stm size);
      to_list = (fun () -> T.atomically stm to_list);
      check_invariants = (fun () -> T.atomically stm check);
      run_concurrent =
        (fun ~nthreads body ->
          R.run ~nthreads (fun tid ->
              body tid
                (fun k -> T.atomically stm (fun tx -> add tx k))
                (fun k -> T.atomically stm (fun tx -> remove tx k))));
      live_words = (fun () -> T.live stm);
    }

  let list () =
    let stm = T.make_instance () in
    let s = Ll.create stm in
    wrap "list"
      ~contains:(fun tx k -> Ll.contains s tx k)
      ~add:(fun tx k -> Ll.add s tx k)
      ~remove:(fun tx k -> Ll.remove s tx k)
      ~overwrite:(fun tx k -> Ll.overwrite_upto s tx k)
      ~size:(fun tx -> Ll.size s tx)
      ~to_list:(fun tx -> Ll.to_list s tx)
      ~check:(fun tx ->
        (* sortedness is the list invariant *)
        let l = Ll.to_list s tx in
        if List.sort compare l <> l then failwith "list unsorted";
        List.length l)
      stm

  let rbtree () =
    let stm = T.make_instance () in
    let s = Rb.create stm in
    wrap "rbtree"
      ~contains:(fun tx k -> Rb.contains s tx k)
      ~add:(fun tx k -> Rb.add s tx k)
      ~remove:(fun tx k -> Rb.remove s tx k)
      ~overwrite:(fun tx k -> Rb.overwrite_upto s tx k)
      ~size:(fun tx -> Rb.size s tx)
      ~to_list:(fun tx -> Rb.to_list s tx)
      ~check:(fun tx -> Rb.check_invariants s tx)
      stm

  let skiplist () =
    let stm = T.make_instance () in
    let s = Sk.create stm in
    wrap "skiplist"
      ~contains:(fun tx k -> Sk.contains s tx k)
      ~add:(fun tx k -> Sk.add s tx k)
      ~remove:(fun tx k -> Sk.remove s tx k)
      ~overwrite:(fun tx k -> Sk.overwrite_upto s tx k)
      ~size:(fun tx -> Sk.size s tx)
      ~to_list:(fun tx -> Sk.to_list s tx)
      ~check:(fun tx -> Sk.check_invariants s tx)
      stm

  let hashset () =
    let stm = T.make_instance () in
    let s = Hs.create ~n_buckets:16 stm in
    wrap "hashset"
      ~contains:(fun tx k -> Hs.contains s tx k)
      ~add:(fun tx k -> Hs.add s tx k)
      ~remove:(fun tx k -> Hs.remove s tx k)
      ~overwrite:(fun tx k -> Hs.overwrite_upto s tx k)
      ~size:(fun tx -> Hs.size s tx)
      ~to_list:(fun tx -> Hs.to_list s tx)
      ~check:(fun tx -> Hs.check_invariants s tx)
      stm

  let all = [ list; rbtree; skiplist; hashset ]
end

module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)

module Ts_wb = Build (struct
  include Ts

  let name = "tinystm-wb"

  let make_instance () =
    create
      ~config:
        (Tinystm.Config.make ~n_locks:256 ~hierarchy:4
           ~strategy:Tinystm.Config.Write_back ())
      ~memory_words:200_000 ()

  let live t = V.live_words (memory t)
end)

module Ts_wt = Build (struct
  include Ts

  let name = "tinystm-wt"

  let make_instance () =
    create
      ~config:
        (Tinystm.Config.make ~n_locks:256
           ~strategy:Tinystm.Config.Write_through ())
      ~memory_words:200_000 ()

  let live t = V.live_words (memory t)
end)

module Tl2_b = Build (struct
  include Tl

  let make_instance () = create ~n_locks:256 ~memory_words:200_000 ()
  let live t = V.live_words (memory t)
end)

let harness_makers =
  Ts_wb.all @ Ts_wt.all @ Tl2_b.all

(* ------------------------------------------------------------------ *)
(* Deterministic unit tests over every harness                        *)
(* ------------------------------------------------------------------ *)

let sequential_basics make () =
  let h = make () in
  check_bool "empty contains" false (h.contains 5);
  check_int "empty size" 0 (h.size ());
  check_bool "add new" true (h.add 5);
  check_bool "add dup" false (h.add 5);
  check_bool "contains" true (h.contains 5);
  check_bool "add more" true (h.add 3);
  check_bool "add more" true (h.add 9);
  Alcotest.(check (list int)) "sorted contents" [ 3; 5; 9 ] (h.to_list ());
  check_int "size" 3 (h.size ());
  check_bool "remove absent" false (h.remove 4);
  check_bool "remove present" true (h.remove 5);
  check_bool "gone" false (h.contains 5);
  Alcotest.(check (list int)) "contents" [ 3; 9 ] (h.to_list ());
  ignore (h.check_invariants ())

let overwrite_counts make () =
  let h = make () in
  List.iter (fun k -> ignore (h.add k)) [ 1; 5; 10; 15; 20 ];
  check_int "overwrite below 12" 3 (h.overwrite_upto 12);
  check_int "overwrite below 1" 0 (h.overwrite_upto 1);
  check_int "overwrite all" 5 (h.overwrite_upto 1000);
  Alcotest.(check (list int)) "values intact" [ 1; 5; 10; 15; 20 ]
    (h.to_list ())

let memory_reclaimed make () =
  let h = make () in
  let baseline = h.live_words () in
  for k = 1 to 50 do
    ignore (h.add k)
  done;
  for k = 1 to 50 do
    ignore (h.remove k)
  done;
  check_int "all node memory freed" baseline (h.live_words ());
  check_int "empty" 0 (h.size ())

let concurrent_disjoint make () =
  (* Each thread owns a key range: all inserts must survive. *)
  let h = make () in
  let n = 4 and per = 40 in
  h.run_concurrent ~nthreads:n (fun tid add _remove ->
      for i = 0 to per - 1 do
        check_bool "insert own key" true (add ((tid * 1000) + i))
      done);
  check_int "all present" (n * per) (h.size ());
  ignore (h.check_invariants ())

let concurrent_churn make () =
  (* Threads add then remove their own random keys; the structure must end
     exactly with the keys whose removal failed... here each thread removes
     what it added, so the set returns to its initial contents. *)
  let h = make () in
  List.iter (fun k -> ignore (h.add k)) [ 100_000; 200_000 ];
  let n = 4 and per = 30 in
  h.run_concurrent ~nthreads:n (fun tid add remove ->
      let g = Tstm_util.Xrand.create (555 + tid) in
      for _ = 1 to per do
        (* Keys are made thread-unique so add/remove always succeed. *)
        let k = (Tstm_util.Xrand.int g 10_000 * 8) + tid in
        if add k then check_bool "remove own add" true (remove k)
      done);
  Alcotest.(check (list int)) "back to initial" [ 100_000; 200_000 ]
    (h.to_list ());
  ignore (h.check_invariants ())

let concurrent_mixed_with_invariants make () =
  (* Full contention: everyone works on the same small key range; afterwards
     the structure's internal invariants must hold and contents must match a
     replay of the committed operations... we can't replay, so we check
     invariants and that size = |to_list| with unique sorted elements. *)
  let h = make () in
  let n = 6 and per = 50 in
  h.run_concurrent ~nthreads:n (fun tid add remove ->
      let g = Tstm_util.Xrand.create (777 + tid) in
      for _ = 1 to per do
        let k = 1 + Tstm_util.Xrand.int g 64 in
        if Tstm_util.Xrand.bool g then ignore (add k) else ignore (remove k)
      done);
  let l = h.to_list () in
  check_bool "sorted unique" true
    (List.sort_uniq compare l = l);
  check_int "size consistent" (List.length l) (h.size ());
  check_int "invariants hold" (List.length l) (h.check_invariants ())

let suite_for make name =
  [
    Alcotest.test_case (name ^ ": basics") `Quick (sequential_basics make);
    Alcotest.test_case (name ^ ": overwrite") `Quick (overwrite_counts make);
    Alcotest.test_case (name ^ ": memory reclaim") `Quick
      (memory_reclaimed make);
    Alcotest.test_case (name ^ ": concurrent disjoint") `Quick
      (concurrent_disjoint make);
    Alcotest.test_case (name ^ ": concurrent churn") `Quick
      (concurrent_churn make);
    Alcotest.test_case (name ^ ": concurrent mixed") `Quick
      (concurrent_mixed_with_invariants make);
  ]

(* ------------------------------------------------------------------ *)
(* qcheck: random op sequences vs. the Set model                       *)
(* ------------------------------------------------------------------ *)

let model_prop make label =
  QCheck.Test.make
    ~name:(label ^ " matches Set model")
    ~count:40
    QCheck.(list (pair bool (int_range 1 50)))
    (fun ops ->
      let h = make () in
      let model = ref IS.empty in
      List.for_all
        (fun (is_add, k) ->
          if is_add then begin
            let expected = not (IS.mem k !model) in
            model := IS.add k !model;
            h.add k = expected
          end
          else begin
            let expected = IS.mem k !model in
            model := IS.remove k !model;
            h.remove k = expected
          end)
        ops
      && h.to_list () = IS.elements !model
      && h.check_invariants () = IS.cardinal !model)

let () =
  let unit_suites =
    List.map
      (fun make ->
        let h = make () in
        (h.h_name, suite_for make h.h_name))
      harness_makers
  in
  let prop_suite =
    ( "model-props",
      List.map
        (fun make ->
          let h = make () in
          QCheck_alcotest.to_alcotest (model_prop make h.h_name))
        harness_makers )
  in
  Alcotest.run "tstm_structures" (unit_suites @ [ prop_suite ])
