(* Serializability replay checker.

   Threads run random set operations concurrently through
   [Tinystm.atomically_stamped], logging (timestamp, operation, result).
   The STM's time base promises that sorting the committed history by
   timestamp — updates before lock-free transactions at equal stamps —
   yields an equivalent serial execution.  We replay that serial order
   against a plain [Set.Make(Int)] model and demand that every logged
   result matches, and that the final structure contents equal the model.

   This is the strongest end-to-end correctness statement in the suite: a
   single lost update, dirty read, broken snapshot or wrong timestamp makes
   the replay diverge.  It runs on the deterministic simulator and on real
   domains, over both write strategies, the hierarchical fast path and TL2's
   workloads' structures. *)

module IS = Set.Make (Int)

type op = Add of int | Remove of int | Contains of int

type event = {
  stamp : int;
  is_update : bool;
  op : op;
  result : bool;
}

let check_bool = Alcotest.(check bool)

module Run (R : Tstm_runtime.Runtime_intf.S) () = struct
  module Ts = Tinystm.Make (R)
  module Rb = Tstm_structures.Rbtree.Make (Ts)
  module Ll = Tstm_structures.Intset_list.Make (Ts)

  let replay events final =
    (* Updates sort before lock-free transactions at equal stamps: a
       lock-free transaction with snapshot bound v observed every update
       with commit version <= v. *)
    let ordered =
      List.sort
        (fun a b ->
          match compare a.stamp b.stamp with
          | 0 -> compare b.is_update a.is_update
          | c -> c)
        events
    in
    let model = ref IS.empty in
    List.iter
      (fun e ->
        let expected =
          match e.op with
          | Add k ->
              let fresh = not (IS.mem k !model) in
              if fresh then model := IS.add k !model;
              fresh
          | Remove k ->
              let present = IS.mem k !model in
              if present then model := IS.remove k !model;
              present
          | Contains k -> IS.mem k !model
        in
        if expected <> e.result then
          Alcotest.failf "replay diverged at stamp %d (%s)" e.stamp
            (match e.op with
            | Add k -> Printf.sprintf "add %d" k
            | Remove k -> Printf.sprintf "remove %d" k
            | Contains k -> Printf.sprintf "contains %d" k))
      ordered;
    check_bool "final contents match the serial model" true
      (final = IS.elements !model)

  let run_history ?(hierarchy2 = 1) ~strategy ~hierarchy ~structure ~nthreads
      ~per () =
    let stm =
      Ts.create
        ~config:
          (Tinystm.Config.make ~n_locks:256 ~hierarchy ~hierarchy2 ~strategy
             ())
        ~memory_words:200_000 ()
    in
    let with_set :
        ((Ts.tx -> op -> bool) -> (Ts.tx -> int list) -> unit) -> unit =
     fun k ->
      match structure with
      | `Rbtree ->
          let s = Rb.create stm in
          k
            (fun tx -> function
              | Add key -> Rb.add s tx key
              | Remove key -> Rb.remove s tx key
              | Contains key -> Rb.contains s tx key)
            (fun tx -> Rb.to_list s tx)
      | `List ->
          let s = Ll.create stm in
          k
            (fun tx -> function
              | Add key -> Ll.add s tx key
              | Remove key -> Ll.remove s tx key
              | Contains key -> Ll.contains s tx key)
            (fun tx -> Ll.to_list s tx)
    in
    with_set (fun apply to_list ->
        let logs = Array.make nthreads [] in
        R.run ~nthreads (fun tid ->
            let g = Tstm_util.Xrand.create (9100 + tid) in
            for _ = 1 to per do
              let key = 1 + Tstm_util.Xrand.int g 48 in
              let op =
                match Tstm_util.Xrand.int g 3 with
                | 0 -> Add key
                | 1 -> Remove key
                | _ -> Contains key
              in
              (* Wrap so we can tell lock-free transactions (failed updates,
                 lookups) from real updates: an update that changed nothing
                 acquires no locks and carries its snapshot stamp. *)
              let (result, wrote), stamp =
                Ts.atomically_stamped stm (fun tx ->
                    let r = apply tx op in
                    let wrote =
                      match op with
                      | Add _ | Remove _ -> r
                      | Contains _ -> false
                    in
                    (r, wrote))
              in
              logs.(tid) <-
                { stamp; is_update = wrote; op; result } :: logs.(tid)
            done);
        let events = List.concat (Array.to_list logs) in
        let final = Ts.atomically stm to_list in
        replay events final)

  let tests =
    [
      Alcotest.test_case "rbtree / write-back" `Quick
        (run_history ~strategy:Tinystm.Config.Write_back ~hierarchy:1
           ~structure:`Rbtree ~nthreads:6 ~per:120);
      Alcotest.test_case "rbtree / write-through" `Quick
        (run_history ~strategy:Tinystm.Config.Write_through ~hierarchy:1
           ~structure:`Rbtree ~nthreads:6 ~per:120);
      Alcotest.test_case "rbtree / hierarchical h=8" `Quick
        (run_history ~strategy:Tinystm.Config.Write_back ~hierarchy:8
           ~structure:`Rbtree ~nthreads:6 ~per:120);
      Alcotest.test_case "rbtree / two-level h=16/4" `Quick
        (run_history ~strategy:Tinystm.Config.Write_back ~hierarchy:16
           ~hierarchy2:4 ~structure:`Rbtree ~nthreads:6 ~per:120);
      Alcotest.test_case "list / two-level h=16/4 write-through" `Quick
        (run_history ~strategy:Tinystm.Config.Write_through ~hierarchy:16
           ~hierarchy2:4 ~structure:`List ~nthreads:4 ~per:80);
      Alcotest.test_case "list / write-back" `Quick
        (run_history ~strategy:Tinystm.Config.Write_back ~hierarchy:1
           ~structure:`List ~nthreads:4 ~per:80);
      Alcotest.test_case "list / write-through h=4" `Quick
        (run_history ~strategy:Tinystm.Config.Write_through ~hierarchy:4
           ~structure:`List ~nthreads:4 ~per:80);
    ]
end

module Sim = Run (Tstm_runtime.Runtime_sim) ()
module Real = Run (Tstm_runtime.Runtime_real) ()

let () =
  Alcotest.run "serializability"
    [ ("simulated", Sim.tests); ("domains", Real.tests) ]
