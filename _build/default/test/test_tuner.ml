(* Tests for the hill-climbing tuner: decision rules, memory, forbidden
   areas, convergence on synthetic throughput landscapes. *)

module Tuner = Tstm_tuning.Tuner
module Config = Tinystm.Config

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let initial = Config.make ~n_locks:(1 lsl 8) ~shifts:0 ~hierarchy:1 ()

(* Drive the tuner against a synthetic throughput function for [steps]
   configuration steps; returns the tuner. *)
let drive ?(seed = 1) ?(steps = 40) f =
  let t = Tuner.create ~seed initial in
  for _ = 1 to steps * 3 do
    let thr = f (Tuner.current t) in
    ignore (Tuner.record t thr)
  done;
  t

let test_keep_measuring_until_three () =
  let t = Tuner.create initial in
  (match Tuner.record t 100.0 with
  | Tuner.Keep_measuring -> ()
  | Tuner.Reconfigure _ -> Alcotest.fail "decided after 1 sample");
  (match Tuner.record t 100.0 with
  | Tuner.Keep_measuring -> ()
  | Tuner.Reconfigure _ -> Alcotest.fail "decided after 2 samples");
  match Tuner.record t 100.0 with
  | Tuner.Reconfigure _ -> ()
  | Tuner.Keep_measuring -> Alcotest.fail "no decision after 3 samples"

let test_uses_max_of_samples () =
  let t = Tuner.create initial in
  ignore (Tuner.record t 50.0);
  ignore (Tuner.record t 150.0);
  ignore (Tuner.record t 100.0);
  match Tuner.best t with
  | Some (_, thr) -> Alcotest.(check (float 1e-9)) "max kept" 150.0 thr
  | None -> Alcotest.fail "no best recorded"

let test_first_move_explores () =
  let t = Tuner.create initial in
  ignore (Tuner.record t 100.0);
  ignore (Tuner.record t 100.0);
  (match Tuner.record t 100.0 with
  | Tuner.Reconfigure c ->
      check_bool "moved to a different config" false (Config.equal c initial)
  | Tuner.Keep_measuring -> Alcotest.fail "expected a move");
  check_int "one config explored" 1 (Tuner.explored t)

let test_reverse_on_big_drop () =
  let t = Tuner.create initial in
  (* First config measures 100. *)
  ignore (Tuner.record t 100.0);
  ignore (Tuner.record t 100.0);
  let next =
    match Tuner.record t 100.0 with
    | Tuner.Reconfigure c -> c
    | Tuner.Keep_measuring -> Alcotest.fail "expected move"
  in
  check_bool "moved" false (Config.equal next initial);
  (* The new config is much worse: tuner must reverse to the best (initial). *)
  ignore (Tuner.record t 50.0);
  ignore (Tuner.record t 50.0);
  match Tuner.record t 50.0 with
  | Tuner.Reconfigure c ->
      check_bool "reversed to best" true (Config.equal c initial)
  | Tuner.Keep_measuring -> Alcotest.fail "expected reverse"

let test_small_improvement_continues () =
  let t = Tuner.create initial in
  ignore (Tuner.record t 100.0);
  ignore (Tuner.record t 100.0);
  let c1 =
    match Tuner.record t 100.0 with
    | Tuner.Reconfigure c -> c
    | Tuner.Keep_measuring -> Alcotest.fail "move"
  in
  ignore (Tuner.record t 110.0);
  ignore (Tuner.record t 110.0);
  match Tuner.record t 110.0 with
  | Tuner.Reconfigure c2 ->
      (* Improved: keep climbing (a fresh uncharted config, not a reverse). *)
      check_bool "kept moving" false (Config.equal c2 c1);
      check_bool "not back to start" false (Config.equal c2 initial)
  | Tuner.Keep_measuring -> Alcotest.fail "expected another move"

let test_convergence_on_locks_landscape () =
  (* Throughput rises with log2(locks) up to 2^14 then falls: the tuner must
     end up near 2^14. *)
  let f (c : Config.t) =
    let e = Tstm_util.Bitops.log2 c.Config.n_locks in
    1000.0 -. (50.0 *. Float.abs (float_of_int e -. 14.0))
    -. (10.0 *. float_of_int c.Config.shifts)
    -. (10.0 *. float_of_int (Tstm_util.Bitops.log2 c.Config.hierarchy))
  in
  let t = drive ~steps:60 f in
  match Tuner.best t with
  | Some (c, _) ->
      let e = Tstm_util.Bitops.log2 c.Config.n_locks in
      check_bool (Printf.sprintf "converged near 2^14 (got 2^%d)" e) true
        (abs (e - 14) <= 1)
  | None -> Alcotest.fail "nothing explored"

let test_convergence_on_shifts_landscape () =
  let f (c : Config.t) =
    800.0 -. (60.0 *. Float.abs (float_of_int c.Config.shifts -. 3.0))
  in
  let t = drive ~seed:5 ~steps:60 f in
  match Tuner.best t with
  | Some (c, _) ->
      check_bool
        (Printf.sprintf "converged near shifts=3 (got %d)" c.Config.shifts)
        true
        (abs (c.Config.shifts - 3) <= 1)
  | None -> Alcotest.fail "nothing explored"

let test_forbidden_wall_after_big_drop () =
  (* Throughput collapses for shifts > 2 (drop far beyond 10%): once the
     tuner has burned itself, it must never explore shifts >= 4 again. *)
  let f (c : Config.t) = if c.Config.shifts > 2 then 10.0 else 500.0 in
  let t = drive ~seed:3 ~steps:80 f in
  let visited = Tuner.history t in
  let offenders =
    List.filter
      (fun (s : Tuner.step) -> s.Tuner.config.Config.shifts > 3)
      visited
  in
  check_int "never explored past the wall" 0 (List.length offenders)

let test_configs_always_valid () =
  let f (c : Config.t) =
    float_of_int (Tstm_util.Bitops.mix (Hashtbl.hash c) land 1023)
  in
  let t = drive ~seed:9 ~steps:100 f in
  List.iter
    (fun (s : Tuner.step) -> Config.validate s.Tuner.config)
    (Tuner.history t);
  check_bool "explored several configs" true (Tuner.explored t >= 5)

let test_history_in_order () =
  let t = Tuner.create initial in
  for i = 1 to 9 do
    ignore (Tuner.record t (float_of_int (100 + i)))
  done;
  let h = Tuner.history t in
  check_int "three steps" 3 (List.length h);
  (match h with
  | first :: _ ->
      check_bool "first step is the initial config" true
        (Config.equal first.Tuner.config initial)
  | [] -> Alcotest.fail "empty history");
  List.iter (fun (s : Tuner.step) -> check_bool "thr > 0" true (s.Tuner.throughput > 0.0)) h

let test_move_labels () =
  Alcotest.(check (list string))
    "paper numbering"
    [ "1"; "2"; "3"; "4"; "5"; "6"; "7"; "8" ]
    (List.map Tuner.move_label
       [
         Tuner.Locks_double;
         Tuner.Locks_halve;
         Tuner.Shifts_up;
         Tuner.Shifts_down;
         Tuner.Hier_double;
         Tuner.Hier_halve;
         Tuner.Nop;
         Tuner.Reverse;
       ])

let test_hierarchy_never_exceeds_locks () =
  let f (c : Config.t) =
    (* Reward small lock arrays and big hierarchies to push at the h <= locks
       boundary. *)
    1000.0
    -. (20.0 *. float_of_int (Tstm_util.Bitops.log2 c.Config.n_locks))
    +. (30.0 *. float_of_int (Tstm_util.Bitops.log2 c.Config.hierarchy))
  in
  let t = drive ~seed:11 ~steps:120 f in
  List.iter
    (fun (s : Tuner.step) ->
      check_bool "h <= locks" true
        (s.Tuner.config.Config.hierarchy <= s.Tuner.config.Config.n_locks))
    (Tuner.history t)

let prop_tuner_deterministic =
  QCheck.Test.make ~name:"tuner is deterministic for a given seed" ~count:20
    QCheck.(int_range 0 1000)
    (fun seed ->
      let run () =
        let t = Tuner.create ~seed initial in
        let g = Tstm_util.Xrand.create seed in
        for _ = 1 to 60 do
          ignore (Tuner.record t (float_of_int (Tstm_util.Xrand.int g 1000)))
        done;
        List.map
          (fun (s : Tuner.step) -> (Config.to_string s.Tuner.config, s.Tuner.throughput))
          (Tuner.history t)
      in
      run () = run ())

let () =
  Alcotest.run "tstm_tuning"
    [
      ( "decisions",
        [
          Alcotest.test_case "three samples per config" `Quick
            test_keep_measuring_until_three;
          Alcotest.test_case "max of samples" `Quick test_uses_max_of_samples;
          Alcotest.test_case "first move explores" `Quick
            test_first_move_explores;
          Alcotest.test_case "reverse on drop" `Quick test_reverse_on_big_drop;
          Alcotest.test_case "improvement continues" `Quick
            test_small_improvement_continues;
        ] );
      ( "search",
        [
          Alcotest.test_case "converges on locks" `Quick
            test_convergence_on_locks_landscape;
          Alcotest.test_case "converges on shifts" `Quick
            test_convergence_on_shifts_landscape;
          Alcotest.test_case "forbidden walls" `Quick
            test_forbidden_wall_after_big_drop;
          Alcotest.test_case "configs valid" `Quick test_configs_always_valid;
          Alcotest.test_case "h <= locks" `Quick
            test_hierarchy_never_exceeds_locks;
        ] );
      ( "bookkeeping",
        [
          Alcotest.test_case "history order" `Quick test_history_in_order;
          Alcotest.test_case "move labels" `Quick test_move_labels;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_tuner_deterministic ] );
    ]
