(* Tests for the TinySTM core: lock encoding, configuration, hierarchy masks,
   and the STM semantics (atomicity, isolation, snapshot consistency, memory
   management, clock roll-over, re-tuning) under both runtimes and both write
   strategies. *)

open Tinystm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Lockenc                                                            *)
(* ------------------------------------------------------------------ *)

let test_lockenc_unlocked () =
  let w = Lockenc.unlocked ~version:1234 ~incarnation:5 in
  check_bool "not locked" false (Lockenc.is_locked w);
  check_int "version" 1234 (Lockenc.version w);
  check_int "incarnation" 5 (Lockenc.incarnation w)

let test_lockenc_locked () =
  let w = Lockenc.locked ~tid:17 ~payload:9999 in
  check_bool "locked" true (Lockenc.is_locked w);
  check_int "owner" 17 (Lockenc.owner w);
  check_int "payload" 9999 (Lockenc.payload w)

let test_lockenc_zero_is_pristine () =
  check_bool "0 unlocked" false (Lockenc.is_locked 0);
  check_int "0 version" 0 (Lockenc.version 0);
  check_int "0 incarnation" 0 (Lockenc.incarnation 0)

let prop_lockenc_unlocked_roundtrip =
  QCheck.Test.make ~name:"unlocked roundtrip" ~count:500
    QCheck.(pair (int_range 0 (1 lsl 50)) (int_range 0 7))
    (fun (version, incarnation) ->
      let w = Lockenc.unlocked ~version ~incarnation in
      (not (Lockenc.is_locked w))
      && Lockenc.version w = version
      && Lockenc.incarnation w = incarnation)

let prop_lockenc_locked_roundtrip =
  QCheck.Test.make ~name:"locked roundtrip" ~count:500
    QCheck.(pair (int_range 0 127) (int_range 0 (1 lsl 30)))
    (fun (tid, payload) ->
      let w = Lockenc.locked ~tid ~payload in
      Lockenc.is_locked w && Lockenc.owner w = tid
      && Lockenc.payload w = payload)

let prop_lockenc_disjoint =
  QCheck.Test.make ~name:"locked and unlocked words never collide" ~count:500
    QCheck.(
      quad (int_range 0 (1 lsl 40)) (int_range 0 7) (int_range 0 127)
        (int_range 0 (1 lsl 30)))
    (fun (version, incarnation, tid, payload) ->
      Lockenc.unlocked ~version ~incarnation
      <> Lockenc.locked ~tid ~payload)

(* ------------------------------------------------------------------ *)
(* Config                                                             *)
(* ------------------------------------------------------------------ *)

let test_config_default_valid () = Config.validate Config.default

let test_config_two_level () =
  Config.validate (Config.make ~hierarchy:16 ~hierarchy2:4 ());
  let bad f = try f (); false with Invalid_argument _ -> true in
  check_bool "h2 > h rejected" true
    (bad (fun () -> ignore (Config.make ~hierarchy:4 ~hierarchy2:8 ())));
  check_bool "non-pow2 h2" true
    (bad (fun () -> ignore (Config.make ~hierarchy:16 ~hierarchy2:3 ())));
  (* Two addresses on the same level-1 counter share a level-2 counter. *)
  let c = Config.make ~n_locks:64 ~hierarchy:16 ~hierarchy2:4 () in
  for a = 0 to 200 do
    for b = 0 to 200 do
      if Config.hier_index c a = Config.hier_index c b then
        check_int "nested consistency" (Config.hier2_index c a)
          (Config.hier2_index c b)
    done
  done

let test_config_rejects_bad () =
  let bad f = try f (); false with Invalid_argument _ -> true in
  check_bool "non-pow2 locks" true
    (bad (fun () -> ignore (Config.make ~n_locks:1000 ())));
  check_bool "negative shifts" true
    (bad (fun () -> ignore (Config.make ~shifts:(-1) ())));
  check_bool "huge shifts" true
    (bad (fun () -> ignore (Config.make ~shifts:30 ())));
  check_bool "non-pow2 hierarchy" true
    (bad (fun () -> ignore (Config.make ~hierarchy:3 ())));
  check_bool "hierarchy > locks" true
    (bad (fun () -> ignore (Config.make ~n_locks:4 ~hierarchy:8 ())))

let test_config_lock_index_stripes () =
  let c = Config.make ~n_locks:16 ~shifts:2 () in
  (* With 2 shifts, runs of 4 consecutive addresses share a lock. *)
  check_int "addr 0" (Config.lock_index c 0) (Config.lock_index c 3);
  check_bool "next stripe differs" true
    (Config.lock_index c 3 <> Config.lock_index c 4);
  (* Wrap-around: 16 locks * 4 words per stripe = 64-address period. *)
  check_int "period" (Config.lock_index c 5) (Config.lock_index c (5 + 64))

let test_config_hier_consistent () =
  (* Two addresses mapping to the same lock must map to the same counter. *)
  let c = Config.make ~n_locks:64 ~hierarchy:8 ~shifts:1 () in
  for a = 0 to 500 do
    for delta = 1 to 30 do
      let b = a + delta in
      if Config.lock_index c a = Config.lock_index c b then
        check_int
          (Printf.sprintf "consistent at %d,%d" a b)
          (Config.hier_index c a) (Config.hier_index c b)
    done
  done

let prop_config_indices_in_range =
  QCheck.Test.make ~name:"lock/hier indices in range" ~count:500
    QCheck.(
      quad (int_range 0 6) (* shifts *)
        (int_range 3 12) (* log locks *)
        (int_range 0 3) (* log hierarchy *)
        (int_range 0 (1 lsl 24)) (* addr *))
    (fun (shifts, log_locks, log_h, addr) ->
      let c =
        Config.make ~shifts ~n_locks:(1 lsl log_locks)
          ~hierarchy:(1 lsl log_h) ()
      in
      let li = Config.lock_index c addr and hi = Config.hier_index c addr in
      li >= 0 && li < c.Config.n_locks && hi >= 0 && hi < c.Config.hierarchy)

(* ------------------------------------------------------------------ *)
(* Hmask                                                              *)
(* ------------------------------------------------------------------ *)

let test_hmask_basic () =
  let m = Hmask.create 16 in
  check_bool "empty" false (Hmask.mem m 3);
  check_bool "first add" true (Hmask.add m 3);
  check_bool "second add" false (Hmask.add m 3);
  check_bool "mem" true (Hmask.mem m 3);
  check_int "cardinal" 1 (Hmask.cardinal m)

let test_hmask_clear () =
  let m = Hmask.create 8 in
  ignore (Hmask.add m 1);
  ignore (Hmask.add m 7);
  Hmask.clear m;
  check_bool "cleared 1" false (Hmask.mem m 1);
  check_bool "cleared 7" false (Hmask.mem m 7);
  check_int "cardinal" 0 (Hmask.cardinal m)

let test_hmask_iter_order () =
  let m = Hmask.create 8 in
  ignore (Hmask.add m 5);
  ignore (Hmask.add m 2);
  ignore (Hmask.add m 5);
  let order = ref [] in
  Hmask.iter m (fun i -> order := i :: !order);
  Alcotest.(check (list int)) "insertion order" [ 5; 2 ] (List.rev !order)

let prop_hmask_model =
  QCheck.Test.make ~name:"hmask behaves like a set" ~count:300
    QCheck.(list (int_range 0 31))
    (fun adds ->
      let m = Hmask.create 32 in
      let model = Hashtbl.create 32 in
      List.for_all
        (fun i ->
          let fresh = not (Hashtbl.mem model i) in
          Hashtbl.replace model i ();
          Hmask.add m i = fresh && Hmask.mem m i)
        adds
      && Hmask.cardinal m = Hashtbl.length model)

(* ------------------------------------------------------------------ *)
(* STM semantics, generic over runtime and strategy                   *)
(* ------------------------------------------------------------------ *)

exception User_error

module Semantics (R : Tstm_runtime.Runtime_intf.S) () = struct
  module T = Tinystm.Make (R)

  let make ?(strategy = Config.Write_back) ?(n_locks = 1 lsl 10) ?(shifts = 0)
      ?(hierarchy = 1) ?max_clock ?(words = 4096) () =
    T.create
      ~config:(Config.make ~n_locks ~shifts ~hierarchy ~strategy ())
      ?max_clock ~memory_words:words ()

  let for_strategy strategy =
    let test_read_write_commit () =
      let t = make ~strategy () in
      let a = T.atomically t (fun tx -> T.alloc tx 2) in
      T.atomically t (fun tx ->
          T.write tx a 10;
          T.write tx (a + 1) 20);
      let x, y = T.atomically t (fun tx -> (T.read tx a, T.read tx (a + 1))) in
      check_int "first word" 10 x;
      check_int "second word" 20 y

    and test_read_your_writes () =
      let t = make ~strategy () in
      let a = T.atomically t (fun tx -> T.alloc tx 1) in
      T.atomically t (fun tx ->
          T.write tx a 1;
          check_int "sees own write" 1 (T.read tx a);
          T.write tx a 2;
          check_int "sees overwrite" 2 (T.read tx a));
      check_int "committed" 2 (T.atomically t (fun tx -> T.read tx a))

    and test_read_under_own_lock_other_addr () =
      (* Two addresses sharing one lock: writing one then reading the other
         must return the committed value of the other. *)
      let t = make ~strategy ~n_locks:2 () in
      let a = T.atomically t (fun tx -> T.alloc tx 4) in
      T.atomically t (fun tx -> T.write tx (a + 2) 77);
      T.atomically t (fun tx ->
          T.write tx a 1;
          check_int "unwritten neighbour" 77 (T.read tx (a + 2)))

    and test_user_exception_aborts () =
      let t = make ~strategy () in
      let a = T.atomically t (fun tx -> T.alloc tx 1) in
      T.atomically t (fun tx -> T.write tx a 5);
      (try
         T.atomically t (fun tx ->
             T.write tx a 99;
             raise User_error)
       with User_error -> ());
      check_int "write rolled back" 5 (T.atomically t (fun tx -> T.read tx a))

    and test_read_only_rejects_writes () =
      let t = make ~strategy () in
      let a = T.atomically t (fun tx -> T.alloc tx 1) in
      (try
         T.atomically ~read_only:true t (fun tx -> T.write tx a 1);
         Alcotest.fail "write in read-only transaction must fail"
       with Invalid_argument _ -> ());
      (* The instance must remain usable. *)
      check_int "still works" 0 (T.atomically t (fun tx -> T.read tx a))

    and test_alloc_abort_reclaims () =
      let t = make ~strategy () in
      let before = T.V.live_words (T.memory t) in
      (try
         T.atomically t (fun tx ->
             ignore (T.alloc tx 8);
             raise User_error)
       with User_error -> ());
      check_int "allocation reclaimed" before (T.V.live_words (T.memory t))

    and test_free_commit_releases () =
      let t = make ~strategy () in
      let a = T.atomically t (fun tx -> T.alloc tx 8) in
      let live = T.V.live_words (T.memory t) in
      T.atomically t (fun tx -> T.free tx a 8);
      check_int "freed at commit" (live - 8) (T.V.live_words (T.memory t))

    and test_free_abort_keeps () =
      let t = make ~strategy () in
      let a = T.atomically t (fun tx -> T.alloc tx 8) in
      T.atomically t (fun tx -> T.write tx a 123);
      let live = T.V.live_words (T.memory t) in
      (try
         T.atomically t (fun tx ->
             T.free tx a 8;
             raise User_error)
       with User_error -> ());
      check_int "free dropped on abort" live (T.V.live_words (T.memory t));
      check_int "contents intact" 123 (T.atomically t (fun tx -> T.read tx a))

    and test_stats_counts () =
      let t = make ~strategy () in
      let a = T.atomically t (fun tx -> T.alloc tx 1) in
      T.reset_stats t;
      T.atomically t (fun tx -> T.write tx a 1);
      ignore (T.atomically ~read_only:true t (fun tx -> T.read tx a));
      let s = T.stats t in
      check_int "commits" 2 s.Tstm_tm.Tm_stats.commits;
      check_int "read-only commits" 1 s.Tstm_tm.Tm_stats.commits_read_only;
      check_bool "reads counted" true (s.Tstm_tm.Tm_stats.reads >= 1);
      check_bool "writes counted" true (s.Tstm_tm.Tm_stats.writes >= 1)

    and test_counter_no_lost_updates () =
      let t = make ~strategy ~words:64 () in
      let a = T.atomically t (fun tx -> T.alloc tx 1) in
      T.atomically t (fun tx -> T.write tx a 0);
      let n = 4 and per = 200 in
      R.run ~nthreads:n (fun _ ->
          for _ = 1 to per do
            T.atomically t (fun tx -> T.write tx a (T.read tx a + 1))
          done);
      check_int "exact count" (n * per)
        (T.atomically t (fun tx -> T.read tx a))

    and test_bank_conservation () =
      (* Random transfers between accounts: the sum is invariant under any
         serializable execution. *)
      let accounts = 16 and n = 4 and per = 150 in
      let t = make ~strategy ~words:1024 ~n_locks:64 () in
      let base = T.atomically t (fun tx -> T.alloc tx accounts) in
      T.atomically t (fun tx ->
          for i = 0 to accounts - 1 do
            T.write tx (base + i) 100
          done);
      R.run ~nthreads:n (fun tid ->
          let g = Tstm_util.Xrand.create (7000 + tid) in
          for _ = 1 to per do
            let src = Tstm_util.Xrand.int g accounts
            and dst = Tstm_util.Xrand.int g accounts
            and amount = Tstm_util.Xrand.int g 10 in
            T.atomically t (fun tx ->
                let s = T.read tx (base + src) in
                let d = T.read tx (base + dst) in
                if src <> dst then begin
                  T.write tx (base + src) (s - amount);
                  T.write tx (base + dst) (d + amount)
                end)
          done);
      let total =
        T.atomically ~read_only:true t (fun tx ->
            let sum = ref 0 in
            for i = 0 to accounts - 1 do
              sum := !sum + T.read tx (base + i)
            done;
            !sum)
      in
      check_int "money conserved" (accounts * 100) total

    and test_snapshot_consistency () =
      (* Writers keep x = y; readers must never observe x <> y, even while
         writers abort (exercises write-through incarnation numbers). *)
      let t = make ~strategy ~n_locks:4 ~words:64 () in
      let a = T.atomically t (fun tx -> T.alloc tx 2) in
      let violations = Atomic.make 0 in
      R.run ~nthreads:4 (fun tid ->
          let g = Tstm_util.Xrand.create (9000 + tid) in
          if tid < 2 then
            for _ = 1 to 200 do
              T.atomically t (fun tx ->
                  let v = Tstm_util.Xrand.int g 1000 in
                  T.write tx a v;
                  T.write tx (a + 1) v)
            done
          else
            for _ = 1 to 200 do
              let x, y =
                T.atomically ~read_only:true t (fun tx ->
                    (T.read tx a, T.read tx (a + 1)))
              in
              if x <> y then Atomic.incr violations
            done);
      check_int "no torn snapshots" 0 (Atomic.get violations)

    and test_update_tx_snapshot_consistency () =
      (* Same but the readers are update transactions (read-set validation
         and extension paths). *)
      let t = make ~strategy ~n_locks:4 ~words:64 () in
      let a = T.atomically t (fun tx -> T.alloc tx 3) in
      let violations = Atomic.make 0 in
      R.run ~nthreads:4 (fun tid ->
          let g = Tstm_util.Xrand.create (11000 + tid) in
          if tid < 2 then
            for _ = 1 to 200 do
              T.atomically t (fun tx ->
                  let v = Tstm_util.Xrand.int g 1000 in
                  T.write tx a v;
                  T.write tx (a + 1) v)
            done
          else
            for _ = 1 to 200 do
              T.atomically t (fun tx ->
                  let x = T.read tx a in
                  let y = T.read tx (a + 1) in
                  if x <> y then Atomic.incr violations;
                  T.write tx (a + 2) x)
            done);
      check_int "no torn reads in update txs" 0 (Atomic.get violations)
    in
    let tag = Config.strategy_to_string strategy in
    [
      Alcotest.test_case (tag ^ ": read/write/commit") `Quick
        test_read_write_commit;
      Alcotest.test_case (tag ^ ": read-your-writes") `Quick
        test_read_your_writes;
      Alcotest.test_case (tag ^ ": read under own lock") `Quick
        test_read_under_own_lock_other_addr;
      Alcotest.test_case (tag ^ ": user exception aborts") `Quick
        test_user_exception_aborts;
      Alcotest.test_case (tag ^ ": read-only rejects writes") `Quick
        test_read_only_rejects_writes;
      Alcotest.test_case (tag ^ ": alloc abort reclaims") `Quick
        test_alloc_abort_reclaims;
      Alcotest.test_case (tag ^ ": free at commit") `Quick
        test_free_commit_releases;
      Alcotest.test_case (tag ^ ": free dropped on abort") `Quick
        test_free_abort_keeps;
      Alcotest.test_case (tag ^ ": stats") `Quick test_stats_counts;
      Alcotest.test_case (tag ^ ": no lost updates") `Quick
        test_counter_no_lost_updates;
      Alcotest.test_case (tag ^ ": bank conservation") `Quick
        test_bank_conservation;
      Alcotest.test_case (tag ^ ": snapshot consistency") `Quick
        test_snapshot_consistency;
      Alcotest.test_case (tag ^ ": update-tx snapshots") `Quick
        test_update_tx_snapshot_consistency;
    ]

  let tests = for_strategy Config.Write_back @ for_strategy Config.Write_through
end

module Sim_sem = Semantics (Tstm_runtime.Runtime_sim) ()
module Real_sem = Semantics (Tstm_runtime.Runtime_real) ()

(* ------------------------------------------------------------------ *)
(* Features best tested on the simulator (deterministic)              *)
(* ------------------------------------------------------------------ *)

module TS = Tinystm.Make (Tstm_runtime.Runtime_sim)

let make_sim ?(strategy = Config.Write_back) ?(n_locks = 1 lsl 10)
    ?(hierarchy = 1) ?(hierarchy2 = 1) ?max_clock ?(words = 4096) () =
  TS.create
    ~config:(Config.make ~n_locks ~hierarchy ~hierarchy2 ~strategy ())
    ?max_clock ~memory_words:words ()

let test_rollover () =
  let t = make_sim ~max_clock:64 () in
  let a = TS.atomically t (fun tx -> TS.alloc tx 1) in
  for i = 1 to 500 do
    TS.atomically t (fun tx -> TS.write tx a i)
  done;
  check_bool "rolled over" true (TS.rollovers t >= 1);
  check_int "data survives roll-over" 500
    (TS.atomically t (fun tx -> TS.read tx a));
  check_bool "clock was reset" true (TS.clock_value t < 64)

let test_rollover_under_threads () =
  let t = make_sim ~max_clock:48 ~words:256 () in
  let a = TS.atomically t (fun tx -> TS.alloc tx 8) in
  Tstm_runtime.Runtime_sim.run ~nthreads:4 (fun tid ->
      for i = 1 to 120 do
        TS.atomically t (fun tx -> TS.write tx (a + tid) i)
      done);
  check_bool "rollovers happened" true (TS.rollovers t >= 1);
  for tid = 0 to 3 do
    check_int "each thread's last write visible" 120
      (TS.atomically t (fun tx -> TS.read tx (a + tid)))
  done

let test_set_config_preserves_data () =
  let t = make_sim () in
  let a = TS.atomically t (fun tx -> TS.alloc tx 4) in
  TS.atomically t (fun tx ->
      for i = 0 to 3 do
        TS.write tx (a + i) (100 + i)
      done);
  TS.set_config t (Config.make ~n_locks:64 ~shifts:3 ~hierarchy:8 ());
  check_bool "config installed" true
    (Config.equal (TS.config t) (Config.make ~n_locks:64 ~shifts:3 ~hierarchy:8 ()));
  for i = 0 to 3 do
    check_int "data preserved" (100 + i)
      (TS.atomically t (fun tx -> TS.read tx (a + i)))
  done;
  (* And the instance still accepts updates afterwards. *)
  TS.atomically t (fun tx -> TS.write tx a 7);
  check_int "post-retune write" 7 (TS.atomically t (fun tx -> TS.read tx a))

let test_set_config_during_parallel_run () =
  let t = make_sim ~words:2048 ~n_locks:256 () in
  let a = TS.atomically t (fun tx -> TS.alloc tx 16) in
  TS.atomically t (fun tx ->
      for i = 0 to 15 do
        TS.write tx (a + i) 0
      done);
  Tstm_runtime.Runtime_sim.run ~nthreads:4 (fun tid ->
      if tid = 0 then begin
        (* The "tuner" thread re-tunes twice while others transact. *)
        for _ = 1 to 40 do
          TS.atomically t (fun tx -> TS.write tx a (TS.read tx a + 1))
        done;
        TS.set_config t (Config.make ~n_locks:32 ~hierarchy:4 ());
        for _ = 1 to 40 do
          TS.atomically t (fun tx -> TS.write tx a (TS.read tx a + 1))
        done;
        TS.set_config t (Config.make ~n_locks:1024 ~shifts:2 ())
      end
      else
        for _ = 1 to 120 do
          TS.atomically t (fun tx ->
              TS.write tx (a + tid) (TS.read tx (a + tid) + 1))
        done);
  check_int "tuner's counter" 80 (TS.atomically t (fun tx -> TS.read tx a));
  for tid = 1 to 3 do
    check_int "worker counter" 120
      (TS.atomically t (fun tx -> TS.read tx (a + tid)))
  done

let test_hierarchy_correctness_under_contention ?(hierarchy = 8)
    ?(hierarchy2 = 1) () =
  (* Run the bank-conservation workload with hierarchical locking on: the
     fast path must never hide a real conflict. *)
  List.iter
    (fun strategy ->
      let accounts = 32 in
      let t =
        make_sim ~strategy ~n_locks:64 ~hierarchy ~hierarchy2 ~words:1024 ()
      in
      let base = TS.atomically t (fun tx -> TS.alloc tx accounts) in
      TS.atomically t (fun tx ->
          for i = 0 to accounts - 1 do
            TS.write tx (base + i) 50
          done);
      Tstm_runtime.Runtime_sim.run ~nthreads:6 (fun tid ->
          let g = Tstm_util.Xrand.create (31 * tid) in
          for _ = 1 to 150 do
            let src = Tstm_util.Xrand.int g accounts
            and dst = Tstm_util.Xrand.int g accounts in
            TS.atomically t (fun tx ->
                (* Long read phase (sum everything) then transfer: stresses
                   validation and the hierarchy fast path. *)
                let sum = ref 0 in
                for i = 0 to accounts - 1 do
                  sum := !sum + TS.read tx (base + i)
                done;
                if src <> dst then begin
                  TS.write tx (base + src) (TS.read tx (base + src) - 1);
                  TS.write tx (base + dst) (TS.read tx (base + dst) + 1)
                end)
          done);
      let total =
        TS.atomically ~read_only:true t (fun tx ->
            let sum = ref 0 in
            for i = 0 to accounts - 1 do
              sum := !sum + TS.read tx (base + i)
            done;
            !sum)
      in
      check_int
        (Config.strategy_to_string strategy ^ ": conserved with hierarchy")
        (accounts * 50) total)
    [ Config.Write_back; Config.Write_through ]

let test_hierarchy_fast_path_skips ?(hierarchy = 64) ?(hierarchy2 = 1) () =
  (* Validation-heavy, low-write workload: the hierarchy must skip most
     read-set locks. *)
  let t = make_sim ~n_locks:1024 ~hierarchy ~hierarchy2 ~words:8192 () in
  let n = 512 in
  let base = TS.atomically t (fun tx -> TS.alloc tx n) in
  TS.atomically t (fun tx ->
      for i = 0 to n - 1 do
        TS.write tx (base + i) i
      done);
  TS.reset_stats t;
  Tstm_runtime.Runtime_sim.run ~nthreads:2 (fun tid ->
      if tid = 0 then
        (* Big-read-set update transactions. *)
        for _ = 1 to 50 do
          TS.atomically t (fun tx ->
              let sum = ref 0 in
              for i = 0 to n - 1 do
                sum := !sum + TS.read tx (base + i)
              done;
              TS.write tx base !sum)
        done
      else
        (* Occasional remote writer forcing commits to validate, touching a
           single partition. *)
        for j = 1 to 50 do
          TS.atomically t (fun tx -> TS.write tx (base + n - 1) j)
        done);
  let s = TS.stats t in
  check_bool "some validation happened" true
    (s.Tstm_tm.Tm_stats.validations > 0);
  check_bool
    (Printf.sprintf "fast path skipped locks (processed=%d skipped=%d)"
       s.Tstm_tm.Tm_stats.val_locks_processed
       s.Tstm_tm.Tm_stats.val_locks_skipped)
    true
    (s.Tstm_tm.Tm_stats.val_locks_skipped > 0)

let test_aborts_recorded_under_contention () =
  let t = make_sim ~n_locks:4 ~words:64 () in
  let a = TS.atomically t (fun tx -> TS.alloc tx 1) in
  Tstm_runtime.Runtime_sim.run ~nthreads:8 (fun _ ->
      for _ = 1 to 100 do
        TS.atomically t (fun tx -> TS.write tx a (TS.read tx a + 1))
      done);
  let s = TS.stats t in
  check_int "committed exactly" 800 (TS.atomically t (fun tx -> TS.read tx a));
  check_bool "aborts under contention" true (Tstm_tm.Tm_stats.aborts s > 0)

let test_clock_and_stamps_monotone () =
  let t = make_sim () in
  let a = TS.atomically t (fun tx -> TS.alloc tx 1) in
  (* A pure allocation acquires no locks, so it commits lock-free and does
     not advance the clock. *)
  check_int "clock untouched by lock-free tx" 0 (TS.clock_value t);
  let stamps =
    List.init 5 (fun i ->
        snd (TS.atomically_stamped t (fun tx -> TS.write tx a i)))
  in
  let rec increasing = function
    | x :: (y :: _ as rest) -> x < y && increasing rest
    | _ -> true
  in
  check_bool "update stamps strictly increase" true (increasing stamps);
  check_int "clock equals last stamp" (List.nth stamps 4) (TS.clock_value t);
  (* A lock-free transaction's stamp equals the current clock. *)
  let _, ro_stamp = TS.atomically_stamped ~read_only:true t (fun tx -> TS.read tx a) in
  check_int "read-only stamp = clock" (TS.clock_value t) ro_stamp

let test_deterministic_sim_run () =
  let run () =
    let t = make_sim ~n_locks:16 ~words:256 () in
    let a = TS.atomically t (fun tx -> TS.alloc tx 4) in
    Tstm_runtime.Runtime_sim.run ~nthreads:4 (fun tid ->
        let g = Tstm_util.Xrand.create tid in
        for _ = 1 to 100 do
          let slot = Tstm_util.Xrand.int g 4 in
          TS.atomically t (fun tx ->
              TS.write tx (a + slot) (TS.read tx (a + slot) + 1))
        done);
    let s = TS.stats t in
    ( s.Tstm_tm.Tm_stats.commits,
      Tstm_tm.Tm_stats.aborts s,
      TS.atomically t (fun tx ->
          (TS.read tx a) + (TS.read tx (a + 1)) + (TS.read tx (a + 2))
          + TS.read tx (a + 3)) )
  in
  check_bool "bit-identical reruns" true (run () = run ())

let () =
  Alcotest.run "tinystm"
    [
      ( "lockenc",
        [
          Alcotest.test_case "unlocked" `Quick test_lockenc_unlocked;
          Alcotest.test_case "locked" `Quick test_lockenc_locked;
          Alcotest.test_case "zero pristine" `Quick test_lockenc_zero_is_pristine;
        ] );
      ( "lockenc-props",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_lockenc_unlocked_roundtrip;
            prop_lockenc_locked_roundtrip;
            prop_lockenc_disjoint;
          ] );
      ( "config",
        [
          Alcotest.test_case "default valid" `Quick test_config_default_valid;
          Alcotest.test_case "rejects bad" `Quick test_config_rejects_bad;
          Alcotest.test_case "stripes" `Quick test_config_lock_index_stripes;
          Alcotest.test_case "two-level" `Quick test_config_two_level;
          Alcotest.test_case "hier consistent" `Quick test_config_hier_consistent;
        ] );
      ( "config-props",
        List.map QCheck_alcotest.to_alcotest [ prop_config_indices_in_range ] );
      ( "hmask",
        [
          Alcotest.test_case "basic" `Quick test_hmask_basic;
          Alcotest.test_case "clear" `Quick test_hmask_clear;
          Alcotest.test_case "iter order" `Quick test_hmask_iter_order;
        ] );
      ("hmask-props", List.map QCheck_alcotest.to_alcotest [ prop_hmask_model ]);
      ("semantics (sim)", Sim_sem.tests);
      ("semantics (domains)", Real_sem.tests);
      ( "features (sim)",
        [
          Alcotest.test_case "clock roll-over" `Quick test_rollover;
          Alcotest.test_case "roll-over under threads" `Quick
            test_rollover_under_threads;
          Alcotest.test_case "set_config preserves data" `Quick
            test_set_config_preserves_data;
          Alcotest.test_case "set_config during run" `Quick
            test_set_config_during_parallel_run;
          Alcotest.test_case "hierarchy under contention" `Quick (fun () ->
              test_hierarchy_correctness_under_contention ());
          Alcotest.test_case "two-level hierarchy under contention" `Quick
            (fun () ->
              test_hierarchy_correctness_under_contention ~hierarchy:32
                ~hierarchy2:4 ());
          Alcotest.test_case "hierarchy fast path" `Quick (fun () ->
              test_hierarchy_fast_path_skips ());
          Alcotest.test_case "two-level fast path" `Quick (fun () ->
              test_hierarchy_fast_path_skips ~hierarchy:64 ~hierarchy2:8 ());
          Alcotest.test_case "aborts recorded" `Quick
            test_aborts_recorded_under_contention;
          Alcotest.test_case "clock and stamps" `Quick
            test_clock_and_stamps_monotone;
          Alcotest.test_case "deterministic" `Quick test_deterministic_sim_run;
        ] );
    ]
