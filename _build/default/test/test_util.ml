(* Tests for tstm_util: RNG determinism, bit helpers, growable buffers,
   statistics and series rendering. *)

open Tstm_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Xrand                                                              *)
(* ------------------------------------------------------------------ *)

let test_xrand_deterministic () =
  let g1 = Xrand.create 42 and g2 = Xrand.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Xrand.next_int64 g1)
      (Xrand.next_int64 g2)
  done

let test_xrand_seed_sensitivity () =
  let g1 = Xrand.create 1 and g2 = Xrand.create 2 in
  check_bool "different seeds diverge"
    false
    (Xrand.next_int64 g1 = Xrand.next_int64 g2)

let test_xrand_split_independent () =
  let g = Xrand.create 7 in
  let g' = Xrand.split g in
  let a = Xrand.next_int64 g and b = Xrand.next_int64 g' in
  check_bool "split streams differ" false (a = b)

let test_xrand_int_range () =
  let g = Xrand.create 3 in
  for _ = 1 to 10_000 do
    let v = Xrand.int g 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_xrand_int_covers () =
  let g = Xrand.create 5 in
  let seen = Array.make 8 false in
  for _ = 1 to 4_000 do
    seen.(Xrand.int g 8) <- true
  done;
  Array.iteri (fun i b -> check_bool (Printf.sprintf "value %d seen" i) true b) seen

let test_xrand_float_range () =
  let g = Xrand.create 11 in
  for _ = 1 to 10_000 do
    let v = Xrand.float g in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_xrand_percent_extremes () =
  let g = Xrand.create 13 in
  for _ = 1 to 1_000 do
    check_bool "0%% never" false (Xrand.below_percent g 0.0);
    check_bool "100%% always" true (Xrand.below_percent g 100.0)
  done

let test_xrand_percent_rate () =
  let g = Xrand.create 17 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Xrand.below_percent g 20.0 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n *. 100.0 in
  check_bool "about 20%" true (rate > 18.0 && rate < 22.0)

(* ------------------------------------------------------------------ *)
(* Bitops                                                             *)
(* ------------------------------------------------------------------ *)

let test_is_pow2 () =
  check_bool "1" true (Bitops.is_pow2 1);
  check_bool "2" true (Bitops.is_pow2 2);
  check_bool "1024" true (Bitops.is_pow2 1024);
  check_bool "0" false (Bitops.is_pow2 0);
  check_bool "3" false (Bitops.is_pow2 3);
  check_bool "neg" false (Bitops.is_pow2 (-4))

let test_ceil_pow2 () =
  check_int "1" 1 (Bitops.ceil_pow2 1);
  check_int "2" 2 (Bitops.ceil_pow2 2);
  check_int "3" 4 (Bitops.ceil_pow2 3);
  check_int "1000" 1024 (Bitops.ceil_pow2 1000);
  check_int "1024" 1024 (Bitops.ceil_pow2 1024)

let test_log2 () =
  check_int "1" 0 (Bitops.log2 1);
  check_int "2" 1 (Bitops.log2 2);
  check_int "2^20" 20 (Bitops.log2 (1 lsl 20))

let test_popcount () =
  check_int "0" 0 (Bitops.popcount 0);
  check_int "0xff" 8 (Bitops.popcount 0xff);
  check_int "pow2" 1 (Bitops.popcount (1 lsl 40))

let test_mix_nonneg_and_spread () =
  let seen = Hashtbl.create 64 in
  for i = 0 to 1_000 do
    let m = Bitops.mix i in
    check_bool "non-negative" true (m >= 0);
    Hashtbl.replace seen m ()
  done;
  check_bool "no trivial collisions" true (Hashtbl.length seen > 990)

(* qcheck properties *)

let prop_ceil_pow2 =
  QCheck.Test.make ~name:"ceil_pow2 is smallest pow2 >= n" ~count:500
    QCheck.(int_range 1 (1 lsl 20))
    (fun n ->
      let p = Bitops.ceil_pow2 n in
      Bitops.is_pow2 p && p >= n && (p = 1 || p / 2 < n))

let prop_log2_roundtrip =
  QCheck.Test.make ~name:"log2 inverts shift" ~count:100
    QCheck.(int_range 0 50)
    (fun i -> Bitops.log2 (1 lsl i) = i)

let prop_popcount_sum =
  QCheck.Test.make ~name:"popcount (a lor b) <= popcount a + popcount b"
    ~count:500
    QCheck.(pair (int_range 0 max_int) (int_range 0 max_int))
    (fun (a, b) ->
      Bitops.popcount (a lor b) <= Bitops.popcount a + Bitops.popcount b)

(* ------------------------------------------------------------------ *)
(* Growbuf                                                            *)
(* ------------------------------------------------------------------ *)

let test_growbuf_basic () =
  let b = Growbuf.create 2 in
  check_int "empty" 0 (Growbuf.length b);
  for i = 0 to 99 do
    Growbuf.push b (i * i)
  done;
  check_int "length" 100 (Growbuf.length b);
  for i = 0 to 99 do
    check_int "get" (i * i) (Growbuf.get b i)
  done

let test_growbuf_set () =
  let b = Growbuf.create 4 in
  Growbuf.push b 1;
  Growbuf.push b 2;
  Growbuf.set b 0 10;
  check_int "set" 10 (Growbuf.get b 0);
  check_int "untouched" 2 (Growbuf.get b 1)

let test_growbuf_clear_retains_capacity () =
  let b = Growbuf.create 1 in
  for i = 0 to 999 do
    Growbuf.push b i
  done;
  let cap = Growbuf.capacity b in
  Growbuf.clear b;
  check_int "cleared" 0 (Growbuf.length b);
  check_int "capacity kept" cap (Growbuf.capacity b);
  Growbuf.push b 5;
  check_int "reusable" 5 (Growbuf.get b 0)

let test_growbuf_shrink () =
  let b = Growbuf.create 4 in
  for i = 0 to 9 do
    Growbuf.push b i
  done;
  Growbuf.shrink b 4;
  check_int "shrunk" 4 (Growbuf.length b);
  Alcotest.check_raises "bad shrink" (Invalid_argument "Growbuf.shrink")
    (fun () -> Growbuf.shrink b 10)

let test_growbuf_bounds () =
  let b = Growbuf.create 4 in
  Growbuf.push b 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Growbuf.get") (fun () ->
      ignore (Growbuf.get b 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Growbuf.set") (fun () ->
      Growbuf.set b (-1) 0)

let prop_growbuf_model =
  QCheck.Test.make ~name:"growbuf behaves like a list" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let b = Growbuf.create 1 in
      List.iter (Growbuf.push b) xs;
      Growbuf.to_list b = xs)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_simple () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  check_int "n" 3 s.Stats.n;
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Stats.mean;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 3.0 s.Stats.max

let test_stats_constant () =
  let s = Stats.summarize [| 5.0; 5.0; 5.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "sd" 0.0 s.Stats.stddev

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      let a = Array.of_list xs in
      let s = Stats.summarize a in
      s.Stats.min <= s.Stats.mean +. 1e-6 && s.Stats.mean <= s.Stats.max +. 1e-6)

(* ------------------------------------------------------------------ *)
(* Series                                                             *)
(* ------------------------------------------------------------------ *)

let sample_table =
  {
    Series.title = "t";
    x_label = "threads";
    x = [| 1.0; 2.0 |];
    columns = [ ("a", [| 10.0; 20.0 |]); ("b", [| 1.5; 2.5 |]) ];
  }

let test_table_csv () =
  let csv = Series.table_to_csv sample_table in
  Alcotest.(check string) "csv" "threads,a,b\n1,10,1.50\n2,20,2.50\n" csv

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_table_render_contains () =
  let s = Format.asprintf "%a" Series.pp_table sample_table in
  check_bool "has labels" true
    (contains ~sub:"== t ==" s && contains ~sub:"threads" s
   && contains ~sub:"20" s)

let test_growbuf_push_after_shrink () =
  let b = Growbuf.create 4 in
  for i = 0 to 9 do
    Growbuf.push b i
  done;
  Growbuf.shrink b 3;
  Growbuf.push b 99;
  Alcotest.(check (list int)) "contents" [ 0; 1; 2; 99 ] (Growbuf.to_list b)

let test_surface_render_contains () =
  let s =
    {
      Series.s_title = "surf";
      row_label = "r";
      col_label = "c";
      rows = [| 1.0 |];
      cols = [| 3.0; 4.0 |];
      values = [| [| 7.25; 8.0 |] |];
    }
  in
  let txt = Format.asprintf "%a" Series.pp_surface s in
  check_bool "title" true (contains ~sub:"== surf ==" txt);
  check_bool "value" true (contains ~sub:"7.25" txt);
  check_bool "axis labels" true (contains ~sub:"r" txt && contains ~sub:"c" txt)

let test_surface_csv () =
  let s =
    {
      Series.s_title = "surf";
      row_label = "r";
      col_label = "c";
      rows = [| 1.0; 2.0 |];
      cols = [| 3.0; 4.0 |];
      values = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |];
    }
  in
  Alcotest.(check string) "csv" "r\\c,3,4\n1,1,2\n2,3,4\n"
    (Series.surface_to_csv s)

(* ------------------------------------------------------------------ *)

let qsuite name tests = (name, List.map QCheck_alcotest.to_alcotest tests)

let () =
  Alcotest.run "tstm_util"
    [
      ( "xrand",
        [
          Alcotest.test_case "deterministic" `Quick test_xrand_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_xrand_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick
            test_xrand_split_independent;
          Alcotest.test_case "int range" `Quick test_xrand_int_range;
          Alcotest.test_case "int covers" `Quick test_xrand_int_covers;
          Alcotest.test_case "float range" `Quick test_xrand_float_range;
          Alcotest.test_case "percent extremes" `Quick
            test_xrand_percent_extremes;
          Alcotest.test_case "percent rate" `Quick test_xrand_percent_rate;
        ] );
      ( "bitops",
        [
          Alcotest.test_case "is_pow2" `Quick test_is_pow2;
          Alcotest.test_case "ceil_pow2" `Quick test_ceil_pow2;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "mix" `Quick test_mix_nonneg_and_spread;
        ] );
      qsuite "bitops-props" [ prop_ceil_pow2; prop_log2_roundtrip; prop_popcount_sum ];
      ( "growbuf",
        [
          Alcotest.test_case "push/get" `Quick test_growbuf_basic;
          Alcotest.test_case "set" `Quick test_growbuf_set;
          Alcotest.test_case "clear" `Quick test_growbuf_clear_retains_capacity;
          Alcotest.test_case "shrink" `Quick test_growbuf_shrink;
          Alcotest.test_case "push after shrink" `Quick
            test_growbuf_push_after_shrink;
          Alcotest.test_case "bounds" `Quick test_growbuf_bounds;
        ] );
      qsuite "growbuf-props" [ prop_growbuf_model ];
      ( "stats",
        [
          Alcotest.test_case "simple" `Quick test_stats_simple;
          Alcotest.test_case "constant" `Quick test_stats_constant;
        ] );
      qsuite "stats-props" [ prop_stats_mean_bounds ];
      ( "series",
        [
          Alcotest.test_case "table csv" `Quick test_table_csv;
          Alcotest.test_case "table render" `Quick test_table_render_contains;
          Alcotest.test_case "surface render" `Quick
            test_surface_render_contains;
          Alcotest.test_case "surface csv" `Quick test_surface_csv;
        ] );
    ]
