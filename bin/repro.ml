(* Command-line entry point: regenerate paper figures or run individual
   experiment points on the simulated multicore runtime.

   Every simulated sweep (figures, parameter sweeps, stress seeds) is
   decomposed into Tstm_exec jobs and evaluated on a multi-process pool:
   `--jobs N` forks N workers, and because results merge in plan order,
   stdout is byte-identical for any N. *)

open Cmdliner
module F = Tstm_harness.Figures
module W = Tstm_harness.Workload
module S = Tstm_harness.Scenario
module San = Tstm_san.San
module Cli = Tstm_exec.Cli
module Job = Tstm_exec.Job
module Plan = Tstm_exec.Plan

let print_san_findings fs =
  Printf.printf "\nsanitizer findings (%d):\n" (List.length fs);
  List.iter (fun f -> Printf.printf "  %s\n" (San.render f)) fs

let fig_cmd =
  let fig_n =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Figure number (2-12).")
  in
  let run profile csv jobs n =
    if List.mem n F.fig_numbers then
      if Cli.run_figures ?csv ~jobs ~profile [ n ] then `Ok ()
      else `Error (false, Printf.sprintf "figure %d incomplete" n)
    else `Error (false, Printf.sprintf "no figure %d (valid: 2-12)" n)
  in
  Cmd.v (Cmd.info "fig" ~doc:"Regenerate one paper figure")
    Term.(
      ret (const run $ Cli.profile_arg $ Cli.csv_arg $ Cli.jobs_arg $ fig_n))

let all_cmd =
  let run profile csv jobs =
    if not (Cli.run_figures ?csv ~jobs ~profile F.fig_numbers) then exit 1
  in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every figure (2-12)")
    Term.(const run $ Cli.profile_arg $ Cli.csv_arg $ Cli.jobs_arg)

let list_cmd =
  let run () =
    List.iter
      (fun n -> Printf.printf "fig %2d  %s\n" n (F.describe n))
      F.fig_numbers
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible figures")
    Term.(const run $ const ())

let run_cmd =
  let stats_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Also write the run's aggregated transaction statistics \
             (Tm_stats) as JSON to $(docv) — the same counter export the \
             BENCH_*.json snapshots embed.")
  in
  let run structure stm size updates overwrites threads duration locks_exp
      shifts hierarchy seed cm pattern trace metrics_csv top_contended periods
      san stats_json jobs =
    match
      W.make ~structure ~initial_size:size ~update_pct:updates
        ~overwrite_pct:overwrites ~nthreads:threads ~duration ~seed ~pattern ()
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | spec ->
    let observing =
      trace <> None || metrics_csv <> None || top_contended <> None
    in
    let point =
      {
        Job.p_stm = stm;
        p_spec = spec;
        p_n_locks = 1 lsl locks_exp;
        p_shifts = shifts;
        p_hierarchy = hierarchy;
        p_cm = cm;
        p_periods = max 1 periods;
        p_observe = observing;
        p_san = san;
      }
    in
    match Cli.eval_point ~jobs point with
    | Error reason ->
        Printf.eprintf "run failed: %s\n" reason;
        exit 1
    | Ok o ->
        (match trace with
        | Some path ->
            Tstm_obs.Export.write_chrome_trace ~path
              (Option.get o.Job.collector);
            Printf.printf "(trace written to %s)\n" path
        | None -> ());
        (match metrics_csv with
        | Some path ->
            Tstm_obs.Metrics.write ~path (Option.get o.Job.metrics);
            Printf.printf "(metrics CSV written to %s)\n" path
        | None -> ());
        (match top_contended with
        | Some n ->
            print_string
              (Tstm_obs.Export.top_contended ~n (Option.get o.Job.collector))
        | None -> ());
        Format.printf "%s %s size=%d updates=%.0f%% threads=%d: %a@."
          (S.stm_label stm)
          (W.structure_to_string structure)
          size updates threads W.pp_result o.Job.result;
        Format.printf "  stats: %a@." Tstm_tm.Tm_stats.pp o.Job.result.W.stats;
        (match stats_json with
        | Some path ->
            let oc = open_out path in
            output_string oc
              (Tstm_obs.Json.to_string
                 (Tstm_tm.Tm_stats.to_json o.Job.result.W.stats));
            close_out oc;
            Printf.printf "(stats JSON written to %s)\n" path
        | None -> ());
        if san then begin
          Printf.printf "  san: %s\n" o.Job.san_summary;
          if o.Job.san_findings <> [] then begin
            print_san_findings o.Job.san_findings;
            exit 1
          end
        end;
        `Ok ()
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a single experiment point")
    Term.(
      ret
        (const run $ Cli.structure_arg $ Cli.stm_arg $ Cli.size_arg
        $ Cli.updates_arg $ Cli.overwrites_arg $ Cli.threads_arg
        $ Cli.duration_arg $ Cli.locks_exp_arg $ Cli.shifts_arg
        $ Cli.hierarchy_arg $ Cli.seed_arg $ Cli.cm_arg $ Cli.workload_arg
        $ Cli.trace_arg $ Cli.metrics_csv_arg $ Cli.top_contended_arg
        $ Cli.periods_arg $ Cli.san_arg $ stats_json_arg $ Cli.jobs_arg))

let sweep_cmd =
  let axis_conv =
    Arg.enum
      [
        ("locks-exp", `Locks);
        ("shifts", `Shifts);
        ("hierarchy", `Hierarchy);
        ("threads", `Threads);
        ("size", `Size);
        ("updates", `Updates);
      ]
  in
  let axis_arg =
    Arg.(
      required
      & pos 0 (some axis_conv) None
      & info [] ~docv:"AXIS"
          ~doc:
            "Swept parameter: locks-exp, shifts, hierarchy, threads, size or \
             updates.")
  in
  let values_arg =
    Arg.(
      required
      & pos 1 (some (list float)) None
      & info [] ~docv:"VALUES" ~doc:"Comma-separated axis values.")
  in
  let run structure stm size updates threads duration locks_exp shifts
      hierarchy seed cm pattern csv jobs axis values =
    (* Sweeping a knob the STM does not have would tabulate a flat line of
       noise; the capability declaration turns that into a typed error. *)
    match
      (match axis with
      | `Locks | `Shifts | `Hierarchy ->
          Tstm_tm.Registry.require stm "lock_array"
      | `Threads | `Size | `Updates -> ())
    with
    | exception Tstm_tm.Tm_intf.Capability_error _ ->
        `Error
          ( false,
            Printf.sprintf
              "axis %s needs a lock array, which STM %S does not have \
               (capability lock_array = false)"
              (match axis with
              | `Locks -> "locks-exp"
              | `Shifts -> "shifts"
              | _ -> "hierarchy")
              (Tstm_tm.Registry.canonical stm) )
    | exception Invalid_argument msg -> `Error (false, msg)
    | () ->
    let point v =
      let i = int_of_float v in
      let size = if axis = `Size then i else size in
      let updates = if axis = `Updates then v else updates in
      let threads = if axis = `Threads then i else threads in
      let locks_exp = if axis = `Locks then i else locks_exp in
      let shifts = if axis = `Shifts then i else shifts in
      let hierarchy = if axis = `Hierarchy then i else hierarchy in
      let spec =
        W.make ~structure ~initial_size:size ~update_pct:updates
          ~nthreads:threads ~duration ~seed ~pattern ()
      in
      {
        Job.p_stm = stm;
        p_spec = spec;
        p_n_locks = 1 lsl locks_exp;
        p_shifts = shifts;
        p_hierarchy = hierarchy;
        p_cm = cm;
        p_periods = 1;
        p_observe = false;
        p_san = false;
      }
    in
    match List.map point values with
    | exception Invalid_argument msg -> `Error (false, msg)
    | points ->
    let outcomes = Cli.eval_points ~jobs points in
    if Array.exists (fun o -> o = None) outcomes then begin
      Printf.eprintf "sweep incomplete: some points failed\n";
      exit 1
    end;
    let results =
      Array.to_list
        (Array.map (fun o -> (Option.get o).Job.result) outcomes)
    in
    let axis_label =
      match axis with
      | `Locks -> "log2(#locks)"
      | `Shifts -> "#shifts"
      | `Hierarchy -> "h"
      | `Threads -> "threads"
      | `Size -> "size"
      | `Updates -> "update%"
    in
    let table =
      {
        Tstm_util.Series.title =
          Printf.sprintf "sweep %s: %s %s" axis_label (S.stm_label stm)
            (W.structure_to_string structure);
        x_label = axis_label;
        x = Array.of_list values;
        columns =
          [
            ( "throughput k/s",
              Array.of_list
                (List.map (fun r -> r.W.throughput /. 1e3) results) );
            ( "aborts k/s",
              Array.of_list
                (List.map (fun r -> r.W.abort_rate /. 1e3) results) );
          ];
      }
    in
    Tstm_util.Series.print_table table;
    (match csv with
    | Some dir ->
        Cli.ensure_dir dir;
        Cli.save_csv dir (F.Table table)
    | None -> ());
    `Ok ()
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep one tuning/workload axis and tabulate")
    Term.(
      ret
        (const run $ Cli.structure_arg $ Cli.stm_arg $ Cli.size_arg
        $ Cli.updates_arg $ Cli.threads_arg $ Cli.duration_arg
        $ Cli.locks_exp_arg $ Cli.shifts_arg $ Cli.hierarchy_arg $ Cli.seed_arg
        $ Cli.cm_arg $ Cli.workload_arg $ Cli.csv_arg $ Cli.jobs_arg $ axis_arg
        $ values_arg))

let tune_cmd =
  let steps_arg =
    Arg.(
      value & opt int 15 & info [ "steps" ] ~doc:"Tuning configuration steps.")
  in
  let period_arg =
    Arg.(
      value & opt float 0.002
      & info [ "period" ] ~doc:"Measurement period (virtual seconds).")
  in
  let run structure size updates threads steps period seed =
    match
      W.make ~structure ~initial_size:size ~update_pct:updates
        ~nthreads:threads ~duration:1.0 ~seed ()
    with
    | exception Invalid_argument msg -> `Error (false, msg)
    | spec ->
    let tr = S.run_intset_autotuned ~period ~n_steps:steps spec in
    Printf.printf "step  config                         thr(k/s)  move\n";
    List.iteri
      (fun i (s : Tstm_tuning.Tuner.step) ->
        Printf.printf "%4d  %-30s %8.0f  %s\n" (i + 1)
          (Tinystm.Config.to_string s.Tstm_tuning.Tuner.config)
          (s.Tstm_tuning.Tuner.throughput /. 1000.0)
          (Tstm_tuning.Tuner.move_label s.Tstm_tuning.Tuner.move))
      tr.S.steps;
    `Ok ()
  in
  Cmd.v (Cmd.info "tune" ~doc:"Run the dynamic tuner and print its path")
    Term.(
      ret
        (const run $ Cli.structure_arg $ Cli.size_arg $ Cli.updates_arg
        $ Cli.threads_arg $ steps_arg $ period_arg $ Cli.seed_arg))

let stress_cmd =
  let module St = Tstm_harness.Stress in
  let module Chaos = Tstm_chaos.Chaos in
  let seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep chaos seeds 0..N-1.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Replay a single chaos seed instead of sweeping (prints the \
             per-run detail; combine with --sites for a shrunk schedule).")
  in
  let all_flag label doc_ = Arg.(value & flag & info [ label ] ~doc:doc_) in
  let threads_arg =
    Arg.(
      value & opt int St.default.St.nthreads
      & info [ "t"; "threads" ] ~doc:"Simulated CPUs.")
  in
  let ops_arg =
    Arg.(
      value & opt int St.default.St.per_thread
      & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let key_range_arg =
    Arg.(
      value & opt int St.default.St.key_range
      & info [ "key-range" ] ~doc:"Keys are drawn uniformly from 1..RANGE.")
  in
  let max_retries_arg =
    Arg.(
      value & opt int St.default.St.max_retries
      & info [ "max-retries" ]
          ~doc:
            "Retry budget before a transaction escalates to the \
             serial-irrevocable slow path (0 = never).")
  in
  let sites_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sites" ] ~docv:"L"
          ~doc:
            "Cap the number of chaos injections that may fire (replaying a \
             shrunk schedule).")
  in
  let window_arg =
    Arg.(
      value & opt int St.default.St.window
      & info [ "window" ] ~doc:"Serializability checker window.")
  in
  let bug_arg =
    let bconv =
      Arg.enum
        [
          ("skip-extension", Chaos.Skip_extension);
          ("skip-validation", Chaos.Skip_validation);
        ]
    in
    Arg.(
      value
      & opt (some bconv) None
      & info [ "bug" ] ~docv:"BUG"
          ~doc:
            "Arm a deliberate protocol bug (skip-extension, skip-validation) \
             to demonstrate the checker catches it.")
  in
  let print_report (spec : St.spec) (r : St.report) =
    Printf.printf
      "%s %s seed=%d: %d ops checked, %d commits, %d aborts, %d escalations, \
       %d/%d injections fired -> %s\n"
      spec.St.stm
      (W.structure_to_string spec.St.structure)
      spec.St.seed r.St.events r.St.commits r.St.aborts r.St.escalations
      r.St.injected r.St.decisions
      (match (r.St.violation, r.St.san_findings) with
      | Some _, _ -> "VIOLATION"
      | None, _ :: _ -> "SANITIZER FINDING"
      | None, [] ->
          if spec.St.san then "serializable, san-clean" else "serializable")
  in
  let report_failure spec (r : St.report) =
    (match r.St.violation with
    | Some msg -> Printf.printf "\nserializability violation:\n%s\n" msg
    | None -> ());
    if r.St.san_findings <> [] then print_san_findings r.St.san_findings;
    match St.shrink spec r with
    | Some { St.limit; report = _ } ->
        let shrunk = { spec with St.site_limit = Some limit } in
        Printf.printf
          "shrunk to %d injection site%s (from %d fired)\nminimal repro: %s\n"
          limit
          (if limit = 1 then "" else "s")
          r.St.injected
          (St.repro_command shrunk)
    | None ->
        Printf.printf "could not shrink; repro: %s\n" (St.repro_command spec)
  in
  let run stm all_stms structure all_structures seeds seed threads ops
      key_range max_retries cm pattern sites window bug san jobs =
    let base =
      {
        St.default with
        St.stm;
        structure;
        nthreads = threads;
        per_thread = ops;
        key_range;
        max_retries;
        cm;
        pattern;
        site_limit = sites;
        bug;
        window;
        san;
      }
    in
    let stms = if all_stms then S.all_stms else [ stm ] in
    let structures =
      if all_structures then [ W.List; W.Rbtree; W.Skiplist; W.Hashset ]
      else [ structure ]
    in
    match seed with
    | Some seed ->
        (* Replay mode: one seed, full detail per run, always sequential
           (shrinking re-executes interactively anyway). *)
        let failed = ref false in
        List.iter
          (fun stm ->
            List.iter
              (fun structure ->
                let spec = { base with St.stm; structure; seed } in
                let r = St.run_one spec in
                print_report spec r;
                if St.failed r then begin
                  failed := true;
                  report_failure spec r
                end)
              structures)
          stms;
        if !failed then exit 1
    | None -> (
        let specs = St.plan ~seeds ~stms ~structures base in
        let plan = Array.map (fun s -> Job.Stress_run s) specs in
        let res = Cli.execute ~jobs plan in
        (* Summarize the prefix up to the first permanently-failed job: a
           sequential sweep past that point is unknowable, so the verdict
           only counts runs it would provably have reached. *)
        let n = Array.length specs in
        let complete =
          let rec go i =
            if i >= n then n
            else
              match res.Plan.outcomes.(i) with
              | None -> i
              | Some _ -> go (i + 1)
          in
          go 0
        in
        let pairs =
          Array.init complete (fun i ->
              match res.Plan.outcomes.(i) with
              | Some (Job.Stress_report r) -> (specs.(i), r)
              | _ -> assert false)
        in
        let sw = St.summarize pairs in
        Printf.printf
          "stress: %d runs (%d seeds x %d stm x %d structures), %d ops \
           checked, %d injections, %d commits, %d aborts, %d escalations\n"
          sw.St.runs seeds (List.length stms)
          (List.length structures)
          sw.St.total_events sw.St.total_injected sw.St.total_commits
          sw.St.total_aborts sw.St.total_escalations;
        match sw.St.first_failure with
        | Some (spec, r) ->
            print_report spec r;
            report_failure spec r;
            exit 1
        | None ->
            if complete < n then begin
              Printf.eprintf
                "sweep inconclusive: run %d of %d never produced a report\n"
                (complete + 1) n;
              exit 1
            end;
            Printf.printf "zero %s\n"
              (if san then "serializability violations or sanitizer findings"
               else "serializability violations"))
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Chaos stress: sweep seeded schedule perturbations and check every \
          history for serializability")
    Term.(
      const run $ Cli.stm_arg
      $ all_flag "all-stms"
          "Stress every registered STM (overrides --stm)."
      $ Cli.structure_arg
      $ all_flag "all-structures"
          "Stress list, rbtree, skiplist and hashset (overrides --structure)."
      $ seeds_arg $ seed_arg $ threads_arg $ ops_arg $ key_range_arg
      $ max_retries_arg $ Cli.cm_arg $ Cli.workload_arg $ sites_arg
      $ window_arg $ bug_arg $ Cli.san_arg $ Cli.jobs_arg)

let storm_cmd =
  let module Storm = Tstm_harness.Storm in
  let all_stms_flag =
    Arg.(
      value & flag
      & info [ "all-stms" ]
          ~doc:"Storm every registered STM (overrides --stm).")
  in
  let threads_arg =
    Arg.(
      value & opt int Storm.default.Storm.nthreads
      & info [ "t"; "threads" ] ~doc:"Simulated CPUs (paired; >= 2).")
  in
  let quota_arg =
    Arg.(
      value & opt int Storm.default.Storm.quota
      & info [ "quota" ] ~doc:"Commits each thread must reach.")
  in
  let watchdog_flag =
    Arg.(
      value & flag
      & info [ "watchdog" ]
          ~doc:
            "Arm the progress watchdog: livelock/starvation detection plus \
             the graceful-degradation ladder.")
  in
  let expect_livelock_flag =
    Arg.(
      value & flag
      & info [ "expect-livelock" ]
          ~doc:
            "Assert the run livelocks: exit non-zero unless the watchdog \
             detected at least one zero-commit window (with --watchdog) or \
             some thread missed its quota (without).  The assertion only \
             applies to lock-array STMs; a single-seqlock STM (capability \
             lock_array = false) admits no hold-and-wait cycle, so it is \
             instead required to complete.")
  in
  let print_report stm (r : Storm.report) =
    Format.printf "%-10s %a@." stm Storm.pp_report r
  in
  let run stm all_stms threads quota watchdog wd_window wd_starve wd_calm
      expect_livelock seed cm jobs =
    let stms = if all_stms then S.all_stms else [ stm ] in
    let specs =
      Array.of_list
        (List.map
           (fun stm ->
             {
               Storm.default with
               Storm.stm;
               cm;
               nthreads = threads;
               quota;
               watchdog;
               wd_window;
               wd_starve;
               wd_calm;
               seed;
             })
           stms)
    in
    let plan = Array.map (fun s -> Job.Storm_run s) specs in
    let res = Cli.execute ~jobs plan in
    (* The livelock expectation is a lock-array property: symmetric
       hold-and-wait needs at least two locks.  An STM without one (a
       single global seqlock) is obstruction-free on this workload — the
       CAS winner always commits — so under --expect-livelock it must
       instead complete. *)
    let expects_livelock stm =
      expect_livelock
      && (Tstm_tm.Registry.capabilities stm).Tstm_tm.Tm_intf.lock_array
    in
    let failed = ref false in
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Some (Job.Storm_report r) ->
            print_report specs.(i).Storm.stm r;
            let expects = expects_livelock specs.(i).Storm.stm in
            let bad =
              if expects then
                if watchdog then r.Storm.livelocks = 0 else r.Storm.completed
              else not r.Storm.completed
            in
            if bad then begin
              failed := true;
              Printf.printf "  FAILED: %s; repro: %s\n"
                (if expects then "expected a livelock"
                 else "incomplete (some thread missed its quota)")
                (Storm.repro_command specs.(i))
            end
        | _ ->
            failed := true;
            Printf.printf "%s: storm run produced no report\n"
              specs.(i).Storm.stm)
      res.Plan.outcomes;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "Hot-spot RMW storm: the progress-guarantee workload (pairs of \
          threads hammering the same words in opposite orders)")
    Term.(
      const run $ Cli.stm_arg $ all_stms_flag $ threads_arg $ quota_arg
      $ watchdog_flag
      $ Cli.watchdog_window_arg ~default:Storm.default.Storm.wd_window
      $ Cli.watchdog_retry_arg ~default:Storm.default.Storm.wd_starve
      $ Cli.watchdog_calm_arg ~default:Storm.default.Storm.wd_calm
      $ expect_livelock_flag $ Cli.seed_arg $ Cli.cm_arg $ Cli.jobs_arg)

let fault_cmd =
  let module FR = Tstm_harness.Fault_run in
  let module BReal = Tstm_harness.Bench_real in
  let module Fault = Tstm_fault.Fault in
  let d = FR.default in
  let structure_conv =
    let parse s =
      match W.structure_of_string s with
      | Some x -> Ok x
      | None -> Error (`Msg (Printf.sprintf "unknown structure %S" s))
    in
    Arg.conv
      (parse, fun ppf s -> Format.pp_print_string ppf (W.structure_to_string s))
  in
  let structure_arg =
    Arg.(
      value
      & opt structure_conv d.FR.structure
      & info [ "structure" ] ~docv:"STRUCT"
          ~doc:"Structure under fault: list, rbtree, skiplist or hashset.")
  in
  let kind_conv =
    Arg.enum
      [
        ("crash", `K (Fault.Crash : Fault.kind));
        ("hang", `K (Fault.Hang : Fault.kind));
        ("oom", `K (Fault.Oom : Fault.kind));
        ("all", `All);
      ]
  in
  let kind_arg =
    Arg.(
      value
      & opt kind_conv (`K d.FR.kind)
      & info [ "kind" ] ~docv:"KIND"
          ~doc:"Fault kind to arm: crash, hang, oom or all.")
  in
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Sweep fault-plan seeds SEED..SEED+N-1 (1 = just --seed).")
  in
  let domains_arg =
    Arg.(
      value & opt int d.FR.domains
      & info [ "t"; "domains" ] ~doc:"Worker domains (real hardware).")
  in
  let ops_arg =
    Arg.(
      value & opt int d.FR.per_thread
      & info [ "ops" ] ~doc:"Operations per worker job.")
  in
  let initial_arg =
    Arg.(
      value & opt int d.FR.initial_size
      & info [ "initial" ] ~doc:"Pre-populated structure size.")
  in
  let key_range_arg =
    Arg.(
      value & opt int d.FR.key_range
      & info [ "key-range" ] ~doc:"Keys are drawn uniformly from 1..RANGE.")
  in
  let update_arg =
    Arg.(
      value & opt float d.FR.update_pct
      & info [ "update" ] ~doc:"Update transaction share, percent.")
  in
  let limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"L"
          ~doc:
            "Cap the number of fired injections (replaying a prior run's \
             schedule).")
  in
  let expect_heal_flag =
    Arg.(
      value & flag
      & info [ "expect-heal" ]
          ~doc:
            "Assert the sweep exercised self-healing: exit non-zero unless \
             every run healed cleanly $(b,and) at least one injection \
             fired.")
  in
  let run stm all_stms structure kind seeds domains ops initial key_range
      update limit expect_heal seed =
    let base =
      {
        FR.stm;
        kind = d.FR.kind;
        structure;
        domains;
        per_thread = ops;
        key_range;
        initial_size = initial;
        update_pct = update;
        limit;
        seed;
      }
    in
    let stms = if all_stms then BReal.stm_names else [ stm ] in
    let kinds =
      match kind with
      | `All -> ([ Fault.Crash; Fault.Hang; Fault.Oom ] : Fault.kind list)
      | `K k -> [ k ]
    in
    match FR.plan ~seeds ~stms ~kinds base with
    | exception Invalid_argument msg -> `Error (false, msg)
    | specs ->
        (* Real-domain runs cannot be forked into the job pool; the sweep
           is sequential and in-process. *)
        let failed = ref false in
        let total_fired = ref 0 in
        Array.iter
          (fun (spec : FR.spec) ->
            match FR.run_one spec with
            | exception Invalid_argument msg ->
                failed := true;
                Printf.printf "fault: %s\n" msg
            | r ->
                total_fired := !total_fired + r.FR.fired;
                Printf.printf
                  "fault %s %s %s seed=%d: %d/%d injections fired, %d \
                   commits, %d crashes healed (%d requeues), %d hangs \
                   detected / %d recovered, %d alloc aborts, %d capacity \
                   verdicts -> %s\n"
                  spec.FR.stm
                  (Fault.kind_name spec.FR.kind)
                  (W.structure_to_string spec.FR.structure)
                  spec.FR.seed r.FR.fired r.FR.decisions r.FR.commits
                  r.FR.heal.Tstm_runtime.Runtime_real.crashes_healed
                  r.FR.heal.Tstm_runtime.Runtime_real.requeues
                  r.FR.heal.Tstm_runtime.Runtime_real.hangs_detected
                  r.FR.heal.Tstm_runtime.Runtime_real.hangs_recovered
                  r.FR.aborts_alloc r.FR.capacities
                  (if FR.healed r then "healed" else "FAILED");
                if not (FR.healed r) then begin
                  failed := true;
                  (match r.FR.error with
                  | Some e -> Printf.printf "  ESCAPED: %s\n" e
                  | None -> ());
                  List.iter
                    (fun v -> Printf.printf "  VIOLATION: %s\n" v)
                    r.FR.violations;
                  if r.FR.leak_words <> 0 then
                    Printf.printf "  LEAK: %d words after drain\n"
                      r.FR.leak_words;
                  Printf.printf "  repro: %s\n" (FR.repro_command spec)
                end)
          specs;
        if expect_heal && !total_fired = 0 then begin
          failed := true;
          Printf.printf "fault: --expect-heal, but no injection ever fired\n"
        end;
        if !failed then exit 1;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:
         "Fault-injection sweep on real domains: seeded crash/hang/OOM \
          plans that the runtime must heal (respawn-and-requeue, bounded \
          alloc retry) with zero arena drift")
    Term.(
      ret
        (const run $ Cli.real_stm_arg $ Cli.real_all_stms_flag $ structure_arg
        $ kind_arg $ seeds_arg $ domains_arg $ ops_arg $ initial_arg
        $ key_range_arg $ update_arg $ limit_arg $ expect_heal_flag
        $ Cli.seed_arg))

let serve_cmd =
  let module Sv = Tstm_service.Service in
  let module Arrival = Tstm_service.Arrival in
  let module Slo = Tstm_obs.Slo in
  let d = Sv.default in
  let shed_conv =
    let parse s =
      match Sv.shed_of_string s with Ok p -> Ok p | Error m -> Error (`Msg m)
    in
    Arg.conv
      (parse, fun ppf p -> Format.pp_print_string ppf (Sv.shed_to_string p))
  in
  let backend_conv =
    let parse s =
      match Sv.backend_of_string s with
      | Ok b -> Ok b
      | Error m -> Error (`Msg m)
    in
    Arg.conv
      (parse, fun ppf b -> Format.pp_print_string ppf (Sv.backend_to_string b))
  in
  let arrival_conv =
    let parse s =
      match Arrival.of_string s with
      | Ok a -> Ok a
      | Error m -> Error (`Msg m)
    in
    Arg.conv
      (parse, fun ppf a -> Format.pp_print_string ppf (Arrival.to_string a))
  in
  let all_stms_flag =
    Arg.(
      value & flag
      & info [ "all-stms" ]
          ~doc:"Serve on every registered STM (overrides --stm).")
  in
  let shed_arg =
    Arg.(
      value & opt shed_conv d.Sv.shed
      & info [ "shed" ] ~docv:"POLICY"
          ~doc:
            "Load-shedding policy: none, drop-newest, deadline (default) or \
             serialize-hot — each step keeps the previous one's behaviour \
             and adds its own.")
  in
  let all_sheds_flag =
    Arg.(
      value & flag
      & info [ "all-sheds" ]
          ~doc:"Run every shedding policy in ladder order (overrides --shed).")
  in
  let backend_arg =
    Arg.(
      value & opt backend_conv d.Sv.backend
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "What the service serves: an integer-set structure (list, \
             rbtree, skiplist, hashset) or the multi-tenant vacation \
             reservation service.")
  in
  let workers_arg =
    Arg.(
      value & opt int d.Sv.workers
      & info [ "workers" ] ~doc:"Dispatcher fibers (simulated CPUs).")
  in
  let shards_arg =
    Arg.(
      value & opt int d.Sv.shards
      & info [ "shards" ] ~doc:"Admission queues / tenants.")
  in
  let arrival_arg =
    Arg.(
      value & opt arrival_conv d.Sv.arrival
      & info [ "arrival" ] ~docv:"PROCESS"
          ~doc:
            "Arrival process: poisson:RATE, bursty:RATE:BOOST:PERIOD or \
             diurnal:RATE:PERIOD[:AMP] (sessions per second).")
  in
  let overload_arg =
    Arg.(
      value
      & opt float (match d.Sv.overload with Some x -> x | None -> 0.0)
      & info [ "overload" ] ~docv:"X"
          ~doc:
            "Replace the arrival base rate with $(docv) times the calibrated \
             closed-loop capacity (0 = use the --arrival rate as-is).")
  in
  let session_arg =
    Arg.(
      value & opt int d.Sv.session
      & info [ "session" ] ~doc:"Requests per arriving session.")
  in
  let horizon_arg =
    Arg.(
      value & opt float d.Sv.horizon
      & info [ "horizon" ] ~doc:"Arrival window, virtual seconds.")
  in
  let deadline_arg =
    Arg.(
      value & opt float d.Sv.deadline
      & info [ "deadline" ] ~doc:"Per-request deadline, virtual seconds.")
  in
  let budget_arg =
    Arg.(
      value & opt int d.Sv.retry_budget
      & info [ "budget" ] ~doc:"Transaction attempts per request before it \
                                fails fast as budget-exhausted.")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int d.Sv.queue_cap
      & info [ "queue-cap" ]
          ~doc:"Per-shard admission bound (ignored by --shed none).")
  in
  let batch_arg =
    Arg.(
      value & opt int d.Sv.batch
      & info [ "batch" ] ~doc:"Requests dequeued from one shard at a time.")
  in
  let watchdog_flag =
    Arg.(
      value & flag
      & info [ "watchdog" ]
          ~doc:
            "Arm the progress watchdog (also felt by serialize-hot: a \
             degraded level turns every shard owner-only).")
  in
  let record_flag =
    Arg.(
      value & flag
      & info [ "record" ]
          ~doc:
            "Record per-shard operation histories and run the \
             linearizability checker after drain (intset backends only).")
  in
  let seeds_arg =
    Arg.(
      value & opt int 1
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Sweep service seeds 0..N-1 (1 = just --seed).")
  in
  let periods_arg =
    Arg.(
      value & opt int 8
      & info [ "periods" ]
          ~doc:"Slices in the per-period SLO table (--metrics-csv).")
  in
  let real_flag =
    Arg.(
      value & flag
      & info [ "real" ]
          ~doc:
            "Serve on real domains (Runtime_real) instead of the simulator: \
             wall-clock arrivals into mutex-protected shard queues, \
             dispatcher domains, per-request crash-retry budgets and a \
             fault-fed circuit breaker.  Simulator-only flags (--shed, \
             --overload, --session, --batch, --watchdog, --record, --san, \
             --seeds, --metrics-csv, --jobs, --all-stms, --all-sheds) do \
             not apply.")
  in
  let fault_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"S"
          ~doc:
            "Arm a crash/hang/OOM fault plan (default rates) with seed \
             $(docv) for the duration of a --real run.")
  in
  let fault_limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-limit" ] ~docv:"L"
          ~doc:"Cap fired injections of the --real fault plan at $(docv).")
  in
  let run_real stm backend workers shards arrival horizon deadline budget
      queue_cap seed fault_seed fault_limit =
    let module SR = Tstm_service.Service_real in
    let module Fault = Tstm_fault.Fault in
    match backend with
    | Sv.Vacation ->
        `Error (false, "serve --real supports the intset backends only")
    | Sv.Intset structure -> (
        let spec =
          {
            SR.default with
            SR.stm;
            workers;
            shards;
            structure;
            arrival;
            horizon_s = horizon;
            deadline_s = deadline;
            fault_budget = budget;
            queue_cap;
            seed;
          }
        in
        let armed = fault_seed <> None in
        (match fault_seed with
        | Some s ->
            (* Service-shaped plan: a crash/OOM burst dense enough to trip
               the breaker within one arrival window (the library default
               rates are tuned for long benchmark runs).  Hangs are left
               out — the dispatchers run under plain [R.run], so a hang
               only adds latency without feeding the breaker.  Use
               --fault-limit to bound the burst and watch the breaker
               recover. *)
            let burst =
              { Fault.crash_pct = 10.0; hang_pct = 0.0; hang_us = 1;
                oom_pct = 2.0 }
            in
            Fault.activate ~config:burst ?limit:fault_limit ~seed:s ()
        | None -> ());
        let fault_note = ref "" in
        let finish () =
          if armed then begin
            fault_note := Fault.summary ();
            Fault.deactivate ()
          end
        in
        match Fun.protect ~finally:finish (fun () -> SR.run_one spec) with
        | exception Invalid_argument msg -> `Error (false, msg)
        | r ->
            Printf.printf
              "serve --real %s %s seed=%d: offered=%d elapsed=%.3fs \
               goodput=%.0f/s\n"
              spec.SR.stm
              (W.structure_to_string structure)
              spec.SR.seed r.SR.offered r.SR.elapsed_s r.SR.goodput;
            print_string
              (Slo.render
                 ~cycles_to_ms:(fun c -> float_of_int c *. 1e-6)
                 r.SR.slo);
            Printf.printf
              "  crash faults=%d (retried %d) breaker: %d trip(s), final %s\n"
              r.SR.crash_faults r.SR.faults_retried r.SR.breaker_trips
              r.SR.breaker_state;
            if !fault_note <> "" then
              Printf.printf "  fault plan: %s\n" !fault_note;
            if SR.failed r then begin
              List.iter
                (fun v -> Printf.printf "  VIOLATION: %s\n" v)
                r.SR.violations;
              if r.SR.leak_words <> 0 then
                Printf.printf "  LEAK: %d words after drain\n" r.SR.leak_words;
              exit 1
            end;
            `Ok ())
  in
  let run stm all_stms shed all_sheds backend workers shards arrival overload
      session pattern horizon deadline budget queue_cap batch watchdog
      wd_window wd_starve wd_calm record san seeds seed metrics_csv periods
      jobs real fault_seed fault_limit =
    if real then
      run_real stm backend workers shards arrival horizon deadline budget
        queue_cap seed fault_seed fault_limit
    else if fault_seed <> None || fault_limit <> None then
      `Error (false, "--fault-seed/--fault-limit require --real")
    else
    let base =
      {
        d with
        Sv.stm;
        shed;
        backend;
        workers;
        shards;
        arrival;
        overload = (if overload > 0.0 then Some overload else None);
        session;
        pattern;
        horizon;
        deadline;
        retry_budget = budget;
        queue_cap;
        batch;
        watchdog;
        wd_window;
        wd_starve;
        wd_calm;
        record;
        san;
        seed;
      }
    in
    let stms = if all_stms then S.all_stms else [ stm ] in
    let sheds = if all_sheds then Sv.all_sheds else [ shed ] in
    let specs =
      if seeds <= 1 then
        Array.of_list
          (List.concat_map
             (fun stm -> List.map (fun shed -> { base with Sv.stm; shed }) sheds)
             stms)
      else Sv.plan ~seeds ~stms ~sheds base
    in
    if metrics_csv <> None && Array.length specs > 1 then
      `Error (false, "--metrics-csv needs a single run (one stm/shed/seed)")
    else begin
      let plan = Array.map (fun s -> Job.Serve_run s) specs in
      let res = Cli.execute ~jobs plan in
      let hz = Sv.cycles_per_second () in
      let failed = ref false in
      Array.iteri
        (fun i outcome ->
          let spec = specs.(i) in
          match outcome with
          | Some (Job.Serve_report r) ->
              Printf.printf
                "serve %s %s shed=%s seed=%d: capacity=%.0f/s offered=%.0f/s \
                 goodput=%.0f/s (%.0f%% of capacity)\n"
                spec.Sv.stm
                (Sv.backend_to_string spec.Sv.backend)
                (Sv.shed_to_string spec.Sv.shed)
                spec.Sv.seed r.Sv.capacity r.Sv.offered r.Sv.goodput
                (if r.Sv.capacity > 0.0 then
                   100.0 *. r.Sv.goodput /. r.Sv.capacity
                 else 0.0);
              print_string
                (Slo.render ~cycles_to_ms:(fun c -> float_of_int c /. hz *. 1e3)
                   r.Sv.slo);
              Printf.printf "  peak queue depth=%d hot dispatches=%d%s\n"
                r.Sv.max_depth r.Sv.hot_dispatches
                (match r.Sv.wd with
                | Some w ->
                    Printf.sprintf " watchdog: %s (livelocks=%d starvations=%d)"
                      (Tstm_runtime.Watchdog.level_to_string
                         w.Tstm_runtime.Watchdog.snap_level)
                      w.Tstm_runtime.Watchdog.snap_livelocks
                      w.Tstm_runtime.Watchdog.snap_starvations
                | None -> "");
              if spec.Sv.san then
                Printf.printf "  san: %d finding(s)\n"
                  (List.length r.Sv.san_findings);
              (match metrics_csv with
              | Some path ->
                  Tstm_obs.Metrics.write ~path
                    (Sv.per_period_metrics ~periods r);
                  Printf.printf "(per-period SLO CSV written to %s)\n" path
              | None -> ());
              if Sv.failed r then begin
                failed := true;
                List.iter
                  (fun v -> Printf.printf "  VIOLATION: %s\n" v)
                  r.Sv.violations;
                if r.Sv.san_findings <> [] then
                  print_san_findings r.Sv.san_findings;
                if r.Sv.leak_words <> 0 then
                  Printf.printf "  LEAK: %d words after drain\n" r.Sv.leak_words;
                Printf.printf "  repro: %s\n" (Sv.repro_command spec)
              end
          | Some _ | None ->
              failed := true;
              Printf.printf "serve %s shed=%s seed=%d: no report\n"
                spec.Sv.stm
                (Sv.shed_to_string spec.Sv.shed)
                spec.Sv.seed)
        res.Tstm_exec.Plan.outcomes;
      if !failed then exit 1;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Open-loop overload service: arrival-driven sessions against a \
          sharded transactional backend with admission control, per-request \
          deadlines/retry budgets and a load-shedding policy ladder")
    Term.(
      ret
        (const run $ Cli.stm_arg $ all_stms_flag $ shed_arg $ all_sheds_flag
        $ backend_arg $ workers_arg $ shards_arg $ arrival_arg $ overload_arg
        $ session_arg $ Cli.workload_arg $ horizon_arg $ deadline_arg
        $ budget_arg $ queue_cap_arg $ batch_arg $ watchdog_flag
        $ Cli.watchdog_window_arg ~default:d.Sv.wd_window
        $ Cli.watchdog_retry_arg ~default:d.Sv.wd_starve
        $ Cli.watchdog_calm_arg ~default:d.Sv.wd_calm
        $ record_flag $ Cli.san_arg $ seeds_arg $ Cli.seed_arg
        $ Cli.metrics_csv_arg $ periods_arg $ Cli.jobs_arg $ real_flag
        $ fault_seed_arg $ fault_limit_arg))

let () =
  let doc = "TinySTM (PPoPP'08) reproduction: figures and experiments" in
  let info = Cmd.info "repro" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            fig_cmd;
            all_cmd;
            list_cmd;
            run_cmd;
            sweep_cmd;
            tune_cmd;
            stress_cmd;
            storm_cmd;
            serve_cmd;
            fault_cmd;
          ]))
