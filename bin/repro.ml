(* Command-line entry point: regenerate paper figures or run individual
   experiment points on the simulated multicore runtime. *)

open Cmdliner
module F = Tstm_harness.Figures
module W = Tstm_harness.Workload
module S = Tstm_harness.Scenario
module San = Tstm_san.San

let san_arg =
  Arg.(
    value & flag
    & info [ "san" ]
        ~doc:
          "Arm the happens-before sanitizer: shadow every simulated word and \
           lock slot, check the run for races, lock-discipline and \
           clock-discipline violations, and fail on any finding.")

let print_san_findings fs =
  Printf.printf "\nsanitizer findings (%d):\n" (List.length fs);
  List.iter (fun f -> Printf.printf "  %s\n" (San.render f)) fs

let profile_arg =
  let profile_enum = Arg.enum [ ("quick", F.quick); ("full", F.full) ] in
  Arg.(
    value
    & opt profile_enum F.quick
    & info [ "p"; "profile" ] ~docv:"PROFILE"
        ~doc:"Experiment scale: $(b,quick) (smoke) or $(b,full) (paper-size).")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write each table/surface as a CSV file into $(docv).")

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    name

let save_csv dir (o : F.output) =
  let name, contents =
    match o with
    | F.Table t -> (t.Tstm_util.Series.title, Tstm_util.Series.table_to_csv t)
    | F.Surface s ->
        (s.Tstm_util.Series.s_title, Tstm_util.Series.surface_to_csv s)
  in
  let path = Filename.concat dir (sanitize name ^ ".csv") in
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_and_print ?csv profile n =
  Printf.printf "--- Figure %d: %s [%s profile] ---\n%!" n (F.describe n)
    profile.F.label;
  let t0 = Unix.gettimeofday () in
  let outputs = F.run_figure profile n in
  List.iter F.print_output outputs;
  (match csv with
  | Some dir ->
      (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      List.iter (save_csv dir) outputs;
      Printf.printf "(CSV written to %s/)\n" dir
  | None -> ());
  Printf.printf "(figure %d done in %.1fs)\n\n%!" n (Unix.gettimeofday () -. t0)

let fig_cmd =
  let fig_n =
    Arg.(
      required
      & pos 0 (some int) None
      & info [] ~docv:"N" ~doc:"Figure number (2-12).")
  in
  let run profile csv n =
    if List.mem n F.fig_numbers then (run_and_print ?csv profile n; `Ok ())
    else `Error (false, Printf.sprintf "no figure %d (valid: 2-12)" n)
  in
  Cmd.v (Cmd.info "fig" ~doc:"Regenerate one paper figure")
    Term.(ret (const run $ profile_arg $ csv_arg $ fig_n))

let all_cmd =
  let run profile csv = List.iter (run_and_print ?csv profile) F.fig_numbers in
  Cmd.v (Cmd.info "all" ~doc:"Regenerate every figure (2-12)")
    Term.(const run $ profile_arg $ csv_arg)

let list_cmd =
  let run () =
    List.iter
      (fun n -> Printf.printf "fig %2d  %s\n" n (F.describe n))
      F.fig_numbers
  in
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible figures") Term.(const run $ const ())

let structure_arg =
  let sconv =
    Arg.enum
      [
        ("list", W.List);
        ("rbtree", W.Rbtree);
        ("skiplist", W.Skiplist);
        ("hashset", W.Hashset);
      ]
  in
  Arg.(
    value & opt sconv W.List
    & info [ "s"; "structure" ] ~docv:"STRUCT"
        ~doc:"Data structure: list, rbtree, skiplist or hashset.")

let stm_arg =
  let mconv =
    Arg.enum [ ("wb", S.Tinystm_wb); ("wt", S.Tinystm_wt); ("tl2", S.Tl2) ]
  in
  Arg.(
    value & opt mconv S.Tinystm_wb
    & info [ "stm" ] ~docv:"STM" ~doc:"STM: wb, wt or tl2.")

let size_arg =
  Arg.(value & opt int 256 & info [ "n"; "size" ] ~doc:"Initial structure size.")

let updates_arg =
  Arg.(value & opt float 20.0 & info [ "u"; "updates" ] ~doc:"Update rate (%).")

let overwrites_arg =
  Arg.(value & opt float 0.0 & info [ "overwrites" ] ~doc:"Overwrite-transaction rate (%).")

let threads_arg =
  Arg.(value & opt int 8 & info [ "t"; "threads" ] ~doc:"Simulated CPUs.")

let duration_arg =
  Arg.(
    value & opt float 0.005
    & info [ "d"; "duration" ] ~doc:"Measured virtual seconds.")

let locks_exp_arg =
  Arg.(value & opt int 16 & info [ "locks-exp" ] ~doc:"log2 of the lock-array size.")

let shifts_arg =
  Arg.(value & opt int 0 & info [ "shifts" ] ~doc:"Address shifts of the lock hash.")

let hierarchy_arg =
  Arg.(
    value & opt int 1
    & info [ "hierarchy" ] ~doc:"Hierarchical array size (1 = disabled).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the run and write a Chrome trace-event JSON to $(docv) \
           (loadable in Perfetto or chrome://tracing).")

let metrics_csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-csv" ] ~docv:"FILE"
        ~doc:
          "Record the run and write per-measurement-period metrics (one CSV \
           row per period) to $(docv).")

let top_contended_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "top-contended" ] ~docv:"N"
        ~doc:
          "Record the run and print the $(docv) most contended cache lines, \
           split into true conflicts and false sharing.")

let periods_arg =
  Arg.(
    value & opt int 10
    & info [ "periods" ]
        ~doc:
          "Measurement periods for observed runs (duration is split evenly; \
           only used with --trace/--metrics-csv/--top-contended).")

let run_cmd =
  let run structure stm size updates overwrites threads duration locks_exp
      shifts hierarchy seed trace metrics_csv top_contended periods san =
    let spec =
      W.make ~structure ~initial_size:size ~update_pct:updates
        ~overwrite_pct:overwrites ~nthreads:threads ~duration ~seed ()
    in
    let observing =
      trace <> None || metrics_csv <> None || top_contended <> None
    in
    let body () =
      if not observing then
        S.run_intset ~stm ~n_locks:(1 lsl locks_exp) ~shifts ~hierarchy spec
      else begin
        let n_periods = max 1 periods in
        let period = duration /. float_of_int n_periods in
        let r, collector, metrics =
          S.run_intset_observed ~stm ~n_locks:(1 lsl locks_exp) ~shifts
            ~hierarchy ~period ~n_periods spec
        in
        (match trace with
        | Some path ->
            Tstm_obs.Export.write_chrome_trace ~path collector;
            Printf.printf "(trace written to %s)\n" path
        | None -> ());
        (match metrics_csv with
        | Some path ->
            Tstm_obs.Metrics.write ~path metrics;
            Printf.printf "(metrics CSV written to %s)\n" path
        | None -> ());
        (match top_contended with
        | Some n -> print_string (Tstm_obs.Export.top_contended ~n collector)
        | None -> ());
        r
      end
    in
    let r, findings =
      if san then San.with_armed ~ncpus:(max 1 threads) body
      else (body (), [])
    in
    Format.printf "%s %s size=%d updates=%.0f%% threads=%d: %a@."
      (S.stm_label stm)
      (W.structure_to_string structure)
      size updates threads W.pp_result r;
    Format.printf "  stats: %a@." Tstm_tm.Tm_stats.pp r.W.stats;
    if san then begin
      Printf.printf "  san: %s\n" (San.summary ());
      if findings <> [] then begin
        print_san_findings findings;
        exit 1
      end
    end
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a single experiment point")
    Term.(
      const run $ structure_arg $ stm_arg $ size_arg $ updates_arg
      $ overwrites_arg $ threads_arg $ duration_arg $ locks_exp_arg
      $ shifts_arg $ hierarchy_arg $ seed_arg $ trace_arg $ metrics_csv_arg
      $ top_contended_arg $ periods_arg $ san_arg)

let sweep_cmd =
  let axis_conv =
    Arg.enum
      [
        ("locks-exp", `Locks);
        ("shifts", `Shifts);
        ("hierarchy", `Hierarchy);
        ("threads", `Threads);
        ("size", `Size);
        ("updates", `Updates);
      ]
  in
  let axis_arg =
    Arg.(
      required
      & pos 0 (some axis_conv) None
      & info [] ~docv:"AXIS"
          ~doc:
            "Swept parameter: locks-exp, shifts, hierarchy, threads, size or \
             updates.")
  in
  let values_arg =
    Arg.(
      required
      & pos 1 (some (list float)) None
      & info [] ~docv:"VALUES" ~doc:"Comma-separated axis values.")
  in
  let run structure stm size updates threads duration locks_exp shifts
      hierarchy seed csv axis values =
    let point v =
      let i = int_of_float v in
      let size = if axis = `Size then i else size in
      let updates = if axis = `Updates then v else updates in
      let threads = if axis = `Threads then i else threads in
      let locks_exp = if axis = `Locks then i else locks_exp in
      let shifts = if axis = `Shifts then i else shifts in
      let hierarchy = if axis = `Hierarchy then i else hierarchy in
      let spec =
        W.make ~structure ~initial_size:size ~update_pct:updates
          ~nthreads:threads ~duration ~seed ()
      in
      S.run_intset ~stm ~n_locks:(1 lsl locks_exp) ~shifts ~hierarchy spec
    in
    let results = List.map point values in
    let axis_label =
      match axis with
      | `Locks -> "log2(#locks)"
      | `Shifts -> "#shifts"
      | `Hierarchy -> "h"
      | `Threads -> "threads"
      | `Size -> "size"
      | `Updates -> "update%"
    in
    let table =
      {
        Tstm_util.Series.title =
          Printf.sprintf "sweep %s: %s %s" axis_label (S.stm_label stm)
            (W.structure_to_string structure);
        x_label = axis_label;
        x = Array.of_list values;
        columns =
          [
            ( "throughput k/s",
              Array.of_list
                (List.map (fun r -> r.W.throughput /. 1e3) results) );
            ( "aborts k/s",
              Array.of_list
                (List.map (fun r -> r.W.abort_rate /. 1e3) results) );
          ];
      }
    in
    Tstm_util.Series.print_table table;
    match csv with
    | Some dir ->
        (try Unix.mkdir dir 0o755
         with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        save_csv dir (F.Table table)
    | None -> ()
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Sweep one tuning/workload axis and tabulate")
    Term.(
      const run $ structure_arg $ stm_arg $ size_arg $ updates_arg
      $ threads_arg $ duration_arg $ locks_exp_arg $ shifts_arg
      $ hierarchy_arg $ seed_arg $ csv_arg $ axis_arg $ values_arg)

let tune_cmd =
  let steps_arg =
    Arg.(value & opt int 15 & info [ "steps" ] ~doc:"Tuning configuration steps.")
  in
  let period_arg =
    Arg.(
      value & opt float 0.002
      & info [ "period" ] ~doc:"Measurement period (virtual seconds).")
  in
  let run structure size updates threads steps period seed =
    let spec =
      W.make ~structure ~initial_size:size ~update_pct:updates
        ~nthreads:threads ~duration:1.0 ~seed ()
    in
    let tr = S.run_intset_autotuned ~period ~n_steps:steps spec in
    Printf.printf "step  config                         thr(k/s)  move\n";
    List.iteri
      (fun i (s : Tstm_tuning.Tuner.step) ->
        Printf.printf "%4d  %-30s %8.0f  %s\n" (i + 1)
          (Tinystm.Config.to_string s.Tstm_tuning.Tuner.config)
          (s.Tstm_tuning.Tuner.throughput /. 1000.0)
          (Tstm_tuning.Tuner.move_label s.Tstm_tuning.Tuner.move))
      tr.S.steps
  in
  Cmd.v (Cmd.info "tune" ~doc:"Run the dynamic tuner and print its path")
    Term.(
      const run $ structure_arg $ size_arg $ updates_arg $ threads_arg
      $ steps_arg $ period_arg $ seed_arg)

let stress_cmd =
  let module St = Tstm_harness.Stress in
  let module Chaos = Tstm_chaos.Chaos in
  let seeds_arg =
    Arg.(
      value & opt int 50
      & info [ "seeds" ] ~docv:"N" ~doc:"Sweep chaos seeds 0..N-1.")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"S"
          ~doc:
            "Replay a single chaos seed instead of sweeping (prints the \
             per-run detail; combine with --sites for a shrunk schedule).")
  in
  let all_flag label doc_ =
    Arg.(value & flag & info [ label ] ~doc:doc_)
  in
  let threads_arg =
    Arg.(value & opt int St.default.St.nthreads & info [ "t"; "threads" ] ~doc:"Simulated CPUs.")
  in
  let ops_arg =
    Arg.(
      value & opt int St.default.St.per_thread
      & info [ "ops" ] ~doc:"Operations per thread.")
  in
  let key_range_arg =
    Arg.(
      value & opt int St.default.St.key_range
      & info [ "key-range" ] ~doc:"Keys are drawn uniformly from 1..RANGE.")
  in
  let max_retries_arg =
    Arg.(
      value & opt int St.default.St.max_retries
      & info [ "max-retries" ]
          ~doc:
            "Retry budget before a transaction escalates to the \
             serial-irrevocable slow path (0 = never).")
  in
  let sites_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "sites" ] ~docv:"L"
          ~doc:
            "Cap the number of chaos injections that may fire (replaying a \
             shrunk schedule).")
  in
  let window_arg =
    Arg.(
      value & opt int St.default.St.window
      & info [ "window" ] ~doc:"Serializability checker window.")
  in
  let bug_arg =
    let bconv =
      Arg.enum
        [
          ("skip-extension", Chaos.Skip_extension);
          ("skip-validation", Chaos.Skip_validation);
        ]
    in
    Arg.(
      value
      & opt (some bconv) None
      & info [ "bug" ] ~docv:"BUG"
          ~doc:
            "Arm a deliberate protocol bug (skip-extension, skip-validation) \
             to demonstrate the checker catches it.")
  in
  let print_report spec (r : St.report) =
    Printf.printf
      "%s %s seed=%d: %d ops checked, %d commits, %d aborts, %d escalations, \
       %d/%d injections fired -> %s\n"
      (St.stm_code spec.St.stm)
      (W.structure_to_string spec.St.structure)
      spec.St.seed r.St.events r.St.commits r.St.aborts r.St.escalations
      r.St.injected r.St.decisions
      (match (r.St.violation, r.St.san_findings) with
      | Some _, _ -> "VIOLATION"
      | None, _ :: _ -> "SANITIZER FINDING"
      | None, [] -> if spec.St.san then "serializable, san-clean" else "serializable")
  in
  let report_failure spec (r : St.report) =
    (match r.St.violation with
    | Some msg -> Printf.printf "\nserializability violation:\n%s\n" msg
    | None -> ());
    if r.St.san_findings <> [] then print_san_findings r.St.san_findings;
    (match St.shrink spec r with
    | Some { St.limit; report = _ } ->
        let shrunk = { spec with St.site_limit = Some limit } in
        Printf.printf
          "shrunk to %d injection site%s (from %d fired)\nminimal repro: %s\n"
          limit
          (if limit = 1 then "" else "s")
          r.St.injected
          (St.repro_command shrunk)
    | None ->
        Printf.printf "could not shrink; repro: %s\n" (St.repro_command spec))
  in
  let run stm all_stms structure all_structures seeds seed threads ops
      key_range max_retries sites window bug san =
    let base =
      {
        St.default with
        St.stm;
        structure;
        nthreads = threads;
        per_thread = ops;
        key_range;
        max_retries;
        site_limit = sites;
        bug;
        window;
        san;
      }
    in
    let stms = if all_stms then S.all_stms else [ stm ] in
    let structures =
      if all_structures then [ W.List; W.Rbtree; W.Skiplist; W.Hashset ]
      else [ structure ]
    in
    match seed with
    | Some seed ->
        (* Replay mode: one seed, full detail per run. *)
        let failed = ref false in
        List.iter
          (fun stm ->
            List.iter
              (fun structure ->
                let spec = { base with St.stm; structure; seed } in
                let r = St.run_one spec in
                print_report spec r;
                if St.failed r then begin
                  failed := true;
                  report_failure spec r
                end)
              structures)
          stms;
        if !failed then exit 1
    | None -> (
        let sw = St.sweep ~seeds ~stms ~structures base in
        Printf.printf
          "stress: %d runs (%d seeds x %d stm x %d structures), %d ops \
           checked, %d injections, %d commits, %d aborts, %d escalations\n"
          sw.St.runs seeds (List.length stms)
          (List.length structures)
          sw.St.total_events sw.St.total_injected sw.St.total_commits
          sw.St.total_aborts sw.St.total_escalations;
        match sw.St.first_failure with
        | None ->
            Printf.printf "zero %s\n"
              (if san then "serializability violations or sanitizer findings"
               else "serializability violations")
        | Some (spec, r) ->
            print_report spec r;
            report_failure spec r;
            exit 1)
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Chaos stress: sweep seeded schedule perturbations and check every \
          history for serializability")
    Term.(
      const run $ stm_arg
      $ all_flag "all-stms" "Stress wb, wt and tl2 (overrides --stm)."
      $ structure_arg
      $ all_flag "all-structures"
          "Stress list, rbtree, skiplist and hashset (overrides --structure)."
      $ seeds_arg $ seed_arg $ threads_arg $ ops_arg $ key_range_arg
      $ max_retries_arg $ sites_arg $ window_arg $ bug_arg $ san_arg)

let () =
  let doc = "TinySTM (PPoPP'08) reproduction: figures and experiments" in
  let info = Cmd.info "repro" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fig_cmd; all_cmd; list_cmd; run_cmd; sweep_cmd; tune_cmd; stress_cmd ]))
