(* Repo lint: source hygiene rules the type checker cannot express.

   Rules (scopes in brackets):
   - no unsafe casts through the [Obj] module [everywhere];
   - no [Stdlib.Random] — determinism lives in [lib/util/xrand.ml], the
     seeded SplitMix64 stream; everything else must thread an [Xrand.t]
     [lib, bin];
   - no naked [Printf.printf] inside [lib] — libraries report through the
     obs exporters or return data, only binaries and tests print [lib];
   - every [.ml] in [lib] has an [.mli], except interface-only modules
     ([*_intf.ml]) and the explicit allowlist [lib].

   Patterns are assembled by concatenation so this file does not flag
   itself.  Usage: [lint.exe DIR...]; directory names are the scopes. *)

let failures = ref 0

let fail path line msg =
  incr failures;
  Printf.printf "%s:%d: %s\n" path line msg

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m > 0 && go 0

let no_mli_allowlist = [ "intset_list.ml" ]

let pat_magic = "Obj." ^ "magic"
let pat_random_qualified = "Stdlib." ^ "Random."
let pat_random = "Random" ^ "."
let pat_printf = "Printf" ^ ".printf"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let check_file ~scope path =
  let lines = read_lines path in
  List.iteri
    (fun i line ->
      let ln = i + 1 in
      if contains ~sub:pat_magic line then
        fail path ln (pat_magic ^ " is forbidden");
      if
        (scope = "lib" || scope = "bin")
        && Filename.basename path <> "xrand.ml"
        && (contains ~sub:pat_random_qualified line
           || contains ~sub:(" " ^ pat_random) line
           || contains ~sub:("(" ^ pat_random) line
           || String.length line >= String.length pat_random
              && String.sub line 0 (String.length pat_random) = pat_random)
      then
        fail path ln
          ("Stdlib Random breaks deterministic replay; use Xrand "
         ^ "(lib/util/xrand.ml)");
      if
        scope = "lib"
        && contains ~sub:pat_printf line
      then
        fail path ln
          (pat_printf ^ " inside lib/; report through obs or return data"))
    lines

let check_mli path =
  let base = Filename.basename path in
  let is_intf =
    String.length base > 8
    && String.sub base (String.length base - 8) 8 = "_intf.ml"
  in
  if
    (not is_intf)
    && (not (List.mem base no_mli_allowlist))
    && not (Sys.file_exists (path ^ "i"))
  then fail path 1 "missing .mli (interface-only *_intf.ml modules exempt)"

let rec walk ~scope dir =
  let entries = Sys.readdir dir in
  Array.sort compare entries;
  Array.iter
    (fun e ->
      let path = Filename.concat dir e in
      if Sys.is_directory path then begin
        if e <> "_build" && e.[0] <> '.' then walk ~scope path
      end
      else if Filename.check_suffix e ".ml" then begin
        check_file ~scope path;
        if scope = "lib" then check_mli path
      end)
    entries

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib"; "bin"; "test" ]
  in
  List.iter (fun root -> walk ~scope:(Filename.basename root) root) roots;
  if !failures > 0 then begin
    Printf.printf "lint: %d failure%s\n" !failures
      (if !failures = 1 then "" else "s");
    exit 1
  end;
  print_endline "lint: OK"
