(* Thin cmdliner driver over Tstm_lint (see lib/lint).

   Usage:
     lint [DIR|FILE]...                 repo pass (default: lib bin test)
     lint --format=github lib bin test  CI annotations
     lint --format=json ...             machine-readable findings
     lint --teeth test/lint_fixtures    fixture corpus: every finding must
                                        match a `lint: expect` directive
     lint --rules                       list the shipped rules

   Exit status: 0 clean, 1 findings (or teeth mismatches). *)

open Tstm_lint

type format = Human | Github | Json

let run_lint format roots =
  let roots = if roots = [] then [ "lib"; "bin"; "test" ] else roots in
  let { Engine.findings; files_checked } = Engine.run ~roots () in
  let rules = List.length Rules.all in
  (match format with
  | Human -> print_string (Report.human ~files_checked ~rules findings)
  | Github ->
      print_string (Report.github findings);
      print_string (Report.human ~files_checked ~rules findings)
  | Json -> print_string (Report.json ~files_checked findings));
  if List.exists Finding.is_error findings then 1 else 0

let run_teeth roots =
  let roots = if roots = [] then [ "test/lint_fixtures" ] else roots in
  let { Engine.mismatches; expectations } = Engine.teeth ~roots () in
  match mismatches with
  | [] ->
      Printf.printf "lint --teeth: OK (%d expectations all fired at their \
                     declared lines)\n"
        expectations;
      0
  | ms ->
      List.iter print_endline ms;
      Printf.printf "lint --teeth: %d mismatch%s\n" (List.length ms)
        (if List.length ms = 1 then "" else "es");
      1

let run_rules () =
  print_string (Report.rule_table Rules.all);
  0

let main list_rules teeth format roots =
  if list_rules then run_rules ()
  else if teeth then run_teeth roots
  else run_lint format roots

open Cmdliner

let format =
  let fmt_conv =
    Arg.enum [ ("human", Human); ("github", Github); ("json", Json) ]
  in
  Arg.(
    value
    & opt fmt_conv Human
    & info [ "format" ] ~docv:"FORMAT"
        ~doc:
          "Report format: $(b,human), $(b,github) (GitHub Actions \
           annotations) or $(b,json).")

let teeth =
  Arg.(
    value & flag
    & info [ "teeth" ]
        ~doc:
          "Fixture-corpus mode: walk the given roots (default \
           test/lint_fixtures) and require every finding to be announced \
           by a $(b,lint: expect) directive on its exact line, and every \
           expectation to fire.")

let list_rules =
  Arg.(value & flag & info [ "rules" ] ~doc:"List the shipped rules and exit.")

let roots =
  Arg.(value & pos_all string [] & info [] ~docv:"DIR"
         ~doc:"Roots to lint (default: lib bin test).")

let cmd =
  let doc = "AST-driven STM-discipline lint for this repository" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Static analysis over real OCaml parsetrees (compiler-libs): \
         hygiene and determinism rules plus STM-protocol rules \
         (orec acquire/release pairing, tap pairing, cycle-charge \
         reachability, the library layering DAG).  See DESIGN.md \
         section 4h.";
      `P
        "Suppress a finding with an explained allow comment: \
         (* lint: allow <rule-id> — <reason> *).  Unknown rule ids and \
         stale suppressions are themselves findings.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(const main $ list_rules $ teeth $ format $ roots)

let () = exit (Cmd.eval' cmd)
