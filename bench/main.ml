(* Benchmark harness:

     dune exec bench/main.exe                 micro + ablation + all figures
     dune exec bench/main.exe -- --full       same, paper-size profile
     dune exec bench/main.exe -- --fig 6      one figure (quick)
     dune exec bench/main.exe -- --fig 6 --jobs 4
                                              same, on 4 worker processes
     dune exec bench/main.exe -- --micro      Bechamel microbenchmarks only
     dune exec bench/main.exe -- --ablation   cost-model ablation sweep
     dune exec bench/main.exe -- --trace t.json --metrics-csv m.csv \
                                  --top-contended 10
                                              observed flagship run
                                              (list 256, 20%, 8 threads)
     dune exec bench/main.exe -- real --stm tl2 --structure rbtree \
                                  --domains 1,2 --duration 0.2 --reps 3 \
                                  --out BENCH_x.json
                                              wall-clock bench on real
                                              domains, snapshot JSON
     dune exec bench/main.exe -- compare OLD.json NEW.json
                                              noise-aware regression check
                                              between two snapshots

   The figure drivers regenerate every figure of the paper's evaluation
   (Figs. 2-12) on the simulated 8-core runtime; the microbenchmarks time
   the real-hardware hot paths (transactional read/write/commit for
   TinySTM-WB/WT and TL2, plus lock-word and Bloom-filter primitives).
   All simulated sweeps route through Tstm_exec: `--jobs N` fans the
   independent runs out to N worker processes with byte-identical
   stdout. *)

open Bechamel
open Toolkit
open Cmdliner

module R = Tstm_runtime.Runtime_real
module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)
module F = Tstm_harness.Figures
module W = Tstm_harness.Workload
module Cli = Tstm_exec.Cli
module Job = Tstm_exec.Job

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (Bechamel, real runtime)                            *)
(* ------------------------------------------------------------------ *)

let make_ts strategy =
  let t =
    Ts.create
      ~config:(Tinystm.Config.make ~n_locks:4096 ~strategy ())
      ~memory_words:65536 ()
  in
  let base = Ts.atomically t (fun tx -> Ts.alloc tx 1024) in
  Ts.atomically t (fun tx ->
      for i = 0 to 1023 do
        Ts.write tx (base + i) i
      done);
  (t, base)

let make_tl () =
  let t = Tl.create ~n_locks:4096 ~memory_words:65536 () in
  let base = Tl.atomically t (fun tx -> Tl.alloc tx 1024) in
  Tl.atomically t (fun tx ->
      for i = 0 to 1023 do
        Tl.write tx (base + i) i
      done);
  (t, base)

let micro_tests () =
  let wb, wb_base = make_ts Tinystm.Config.Write_back in
  let wt, wt_base = make_ts Tinystm.Config.Write_through in
  let tl, tl_base = make_tl () in
  let reads_tx name t read atomically base =
    Test.make ~name
      (Staged.stage (fun () ->
           atomically t (fun tx ->
               let s = ref 0 in
               for i = 0 to 99 do
                 s := !s + read tx (base + i)
               done;
               !s)))
  in
  let update_tx name t read write atomically base =
    Test.make ~name
      (Staged.stage (fun () ->
           atomically t (fun tx ->
               for i = 0 to 9 do
                 write tx (base + i) (read tx (base + i) + 1)
               done)))
  in
  [
    Test.make ~name:"lockenc encode+decode"
      (Staged.stage (fun () ->
           let w = Tinystm.Lockenc.unlocked ~version:123456 ~incarnation:3 in
           Tinystm.Lockenc.version w + Tinystm.Lockenc.incarnation w));
    Test.make ~name:"bloom add+query"
      (Staged.stage
         (let b = Tstm_util.Bloom.create () in
          fun () ->
            Tstm_util.Bloom.clear b;
            Tstm_util.Bloom.add b 42;
            Tstm_util.Bloom.may_contain b 42));
    reads_tx "tinystm-wb: 100-read tx" wb Ts.read
      (fun t f -> Ts.atomically t f)
      wb_base;
    reads_tx "tinystm-wb: 100-read ro-tx" wb Ts.read
      (fun t f -> Ts.atomically ~read_only:true t f)
      wb_base;
    reads_tx "tl2: 100-read tx" tl Tl.read (fun t f -> Tl.atomically t f) tl_base;
    update_tx "tinystm-wb: 10-rmw tx" wb Ts.read Ts.write
      (fun t f -> Ts.atomically t f)
      wb_base;
    update_tx "tinystm-wt: 10-rmw tx" wt Ts.read Ts.write
      (fun t f -> Ts.atomically t f)
      wt_base;
    update_tx "tl2: 10-rmw tx" tl Tl.read Tl.write
      (fun t f -> Tl.atomically t f)
      tl_base;
  ]

let run_micro () =
  print_endline "=== Microbenchmarks (real runtime, single domain) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-28s %10.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        analyzed)
    (micro_tests ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Observed run                                                        *)
(* ------------------------------------------------------------------ *)

(* The flagship comparison point (Fig. 3b: list, 256 elements, 20% updates,
   8 threads) run under a live observability sink, exporting whatever the
   --trace/--metrics-csv/--top-contended flags asked for. *)
let run_observed ~jobs ~trace ~metrics_csv ~top_contended =
  print_endline "=== Observed run (list 256, 20% updates, 8 threads, WB) ===";
  let spec =
    W.make ~structure:W.List ~initial_size:256 ~update_pct:20.0 ~nthreads:8
      ~duration:0.005 ()
  in
  let point =
    {
      Job.p_stm = "tinystm-wb";
      p_spec = spec;
      p_n_locks = Tinystm.Config.default.Tinystm.Config.n_locks;
      p_shifts = 0;
      p_hierarchy = 1;
      p_cm = "backoff";
      p_periods = 10;
      p_observe = true;
      p_san = false;
    }
  in
  match Cli.eval_point ~jobs point with
  | Error reason ->
      Printf.eprintf "observed run failed: %s\n" reason;
      false
  | Ok o ->
      let collector = Option.get o.Job.collector in
      Format.printf "%a@." W.pp_result o.Job.result;
      print_string (Tstm_obs.Export.histo_summary collector);
      (match trace with
      | Some path ->
          Tstm_obs.Export.write_chrome_trace ~path collector;
          Printf.printf "(trace written to %s)\n" path
      | None -> ());
      (match metrics_csv with
      | Some path ->
          Tstm_obs.Metrics.write ~path (Option.get o.Job.metrics);
          Printf.printf "(metrics CSV written to %s)\n" path
      | None -> ());
      (match top_contended with
      | Some n -> print_string (Tstm_obs.Export.top_contended ~n collector)
      | None -> ());
      print_newline ();
      true

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let fig_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fig" ] ~docv:"N" ~doc:"Run one paper figure (2-12).")

let micro_flag =
  Arg.(value & flag & info [ "micro" ] ~doc:"Bechamel microbenchmarks only.")

let ablation_flag =
  Arg.(
    value & flag
    & info [ "ablation" ] ~doc:"Cost-model ablation sweep only.")

let main profile full jobs fig micro ablation trace metrics_csv top_contended =
  let profile = if full then F.full else profile in
  let observing =
    trace <> None || metrics_csv <> None || top_contended <> None
  in
  let ok =
    if observing then run_observed ~jobs ~trace ~metrics_csv ~top_contended
    else if micro then begin
      run_micro ();
      true
    end
    else if ablation then Cli.run_ablation ~jobs ()
    else
      match fig with
      | Some n ->
          if List.mem n F.fig_numbers then Cli.run_figures ~jobs ~profile [ n ]
          else begin
            Printf.eprintf "no figure %d (valid: 2-12)\n" n;
            false
          end
      | None ->
          run_micro ();
          let ok_abl = Cli.run_ablation ~jobs () in
          let ok_figs = Cli.run_figures ~jobs ~profile F.fig_numbers in
          ok_abl && ok_figs
  in
  if ok then 0 else 1

(* ------------------------------------------------------------------ *)
(* Wall-clock subcommands (real domains)                               *)
(* ------------------------------------------------------------------ *)

let real_cmd =
  let run stm all_stms structure domains size updates seed pattern duration
      warmup reps observe out =
    let stms =
      if all_stms then Tstm_harness.Bench_real.stm_names else [ stm ]
    in
    if
      Cli.run_bench_real ?out ~stms ~structure ~domains ~pattern ~size
        ~update_pct:updates ~seed ~duration ~warmup ~reps ~observe ()
    then 0
    else 1
  in
  Cmd.v
    (Cmd.info "real"
       ~doc:
         "Wall-clock benchmark on real domains: Synchrobench-style timed \
          repetitions per (STM, structure, domain-count) cell, human table \
          on stdout and a machine-readable BENCH_*.json snapshot with \
          --out.")
    Term.(
      const run $ Cli.real_stm_arg $ Cli.real_all_stms_flag
      $ Cli.real_structure_arg $ Cli.domains_arg
      $ Cli.size_arg $ Cli.updates_arg $ Cli.seed_arg $ Cli.workload_arg
      $ Cli.real_duration_arg $ Cli.warmup_arg $ Cli.reps_arg
      $ Cli.observe_flag $ Cli.out_arg)

let compare_cmd =
  let old_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"OLD.json" ~doc:"Baseline snapshot.")
  in
  let new_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"Candidate snapshot.")
  in
  let run threshold report_only old_path new_path =
    if Cli.run_bench_compare ~threshold ~report_only ~old_path ~new_path ()
    then 0
    else 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Compare two BENCH_*.json snapshots cell by cell and exit non-zero \
          on a regression beyond noise (see --threshold; --report-only \
          always exits 0).")
    Term.(
      const run $ Cli.threshold_arg $ Cli.report_only_flag $ old_arg $ new_arg)

let () =
  let doc = "TinySTM (PPoPP'08) reproduction: microbenchmarks and figures" in
  let info = Cmd.info "main" ~doc in
  let default =
    Term.(
      const main $ Cli.profile_arg $ Cli.full_flag $ Cli.jobs_arg $ fig_arg
      $ micro_flag $ ablation_flag $ Cli.trace_arg $ Cli.metrics_csv_arg
      $ Cli.top_contended_arg)
  in
  exit (Cmd.eval' (Cmd.group ~default info [ real_cmd; compare_cmd ]))
