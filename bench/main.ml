(* Benchmark harness:

     dune exec bench/main.exe                 micro + all figures (quick)
     dune exec bench/main.exe -- --full       micro + all figures (full)
     dune exec bench/main.exe -- --fig 6      one figure (quick)
     dune exec bench/main.exe -- --fig 6 --full
     dune exec bench/main.exe -- --micro      Bechamel microbenchmarks only
     dune exec bench/main.exe -- --ablation   cost-model ablation sweep
     dune exec bench/main.exe -- --trace t.json --metrics-csv m.csv \
                                  --top-contended 10
                                              observed flagship run
                                              (list 256, 20%, 8 threads)

   The figure drivers regenerate every figure of the paper's evaluation
   (Figs. 2-12) on the simulated 8-core runtime; the microbenchmarks time
   the real-hardware hot paths (transactional read/write/commit for
   TinySTM-WB/WT and TL2, plus lock-word and Bloom-filter primitives). *)

open Bechamel
open Toolkit

module R = Tstm_runtime.Runtime_real
module Ts = Tinystm.Make (R)
module Tl = Tstm_tl2.Tl2.Make (R)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks (Bechamel, real runtime)                            *)
(* ------------------------------------------------------------------ *)

let make_ts strategy =
  let t =
    Ts.create
      ~config:(Tinystm.Config.make ~n_locks:4096 ~strategy ())
      ~memory_words:65536 ()
  in
  let base = Ts.atomically t (fun tx -> Ts.alloc tx 1024) in
  Ts.atomically t (fun tx ->
      for i = 0 to 1023 do
        Ts.write tx (base + i) i
      done);
  (t, base)

let make_tl () =
  let t = Tl.create ~n_locks:4096 ~memory_words:65536 () in
  let base = Tl.atomically t (fun tx -> Tl.alloc tx 1024) in
  Tl.atomically t (fun tx ->
      for i = 0 to 1023 do
        Tl.write tx (base + i) i
      done);
  (t, base)

let micro_tests () =
  let wb, wb_base = make_ts Tinystm.Config.Write_back in
  let wt, wt_base = make_ts Tinystm.Config.Write_through in
  let tl, tl_base = make_tl () in
  let reads_tx name t read atomically base =
    Test.make ~name
      (Staged.stage (fun () ->
           atomically t (fun tx ->
               let s = ref 0 in
               for i = 0 to 99 do
                 s := !s + read tx (base + i)
               done;
               !s)))
  in
  let update_tx name t read write atomically base =
    Test.make ~name
      (Staged.stage (fun () ->
           atomically t (fun tx ->
               for i = 0 to 9 do
                 write tx (base + i) (read tx (base + i) + 1)
               done)))
  in
  [
    Test.make ~name:"lockenc encode+decode"
      (Staged.stage (fun () ->
           let w = Tinystm.Lockenc.unlocked ~version:123456 ~incarnation:3 in
           Tinystm.Lockenc.version w + Tinystm.Lockenc.incarnation w));
    Test.make ~name:"bloom add+query"
      (Staged.stage
         (let b = Tstm_tl2.Bloom.create () in
          fun () ->
            Tstm_tl2.Bloom.clear b;
            Tstm_tl2.Bloom.add b 42;
            Tstm_tl2.Bloom.may_contain b 42));
    reads_tx "tinystm-wb: 100-read tx" wb Ts.read
      (fun t f -> Ts.atomically t f)
      wb_base;
    reads_tx "tinystm-wb: 100-read ro-tx" wb Ts.read
      (fun t f -> Ts.atomically ~read_only:true t f)
      wb_base;
    reads_tx "tl2: 100-read tx" tl Tl.read (fun t f -> Tl.atomically t f) tl_base;
    update_tx "tinystm-wb: 10-rmw tx" wb Ts.read Ts.write
      (fun t f -> Ts.atomically t f)
      wb_base;
    update_tx "tinystm-wt: 10-rmw tx" wt Ts.read Ts.write
      (fun t f -> Ts.atomically t f)
      wt_base;
    update_tx "tl2: 10-rmw tx" tl Tl.read Tl.write
      (fun t f -> Tl.atomically t f)
      tl_base;
  ]

let run_micro () =
  print_endline "=== Microbenchmarks (real runtime, single domain) ===";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-28s %10.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-28s (no estimate)\n%!" name)
        analyzed)
    (micro_tests ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Cost-model ablation                                                 *)
(* ------------------------------------------------------------------ *)

(* DESIGN.md calls out the simulator cost constants as a design choice; this
   sweep shows how the headline comparison (Fig. 3b: list, 256 elements,
   20% updates, 8 threads) responds to each of them. *)
let run_ablation () =
  print_endline "=== Cost-model ablation (list 256, 20% updates, 8 threads) ===";
  let module CM = Tstm_runtime.Cache_model in
  let point label params =
    Tstm_runtime.Runtime_sim.configure params;
    let spec =
      Tstm_harness.Workload.make ~structure:Tstm_harness.Workload.List
        ~initial_size:256 ~update_pct:20.0 ~nthreads:8 ~duration:0.002 ()
    in
    let wb =
      Tstm_harness.Scenario.run_intset ~stm:Tstm_harness.Scenario.Tinystm_wb
        spec
    in
    let tl =
      Tstm_harness.Scenario.run_intset ~stm:Tstm_harness.Scenario.Tl2 spec
    in
    Printf.printf "%-34s WB %8.0f tx/s   TL2 %8.0f tx/s   (WB/TL2 %.2f)\n%!"
      label wb.Tstm_harness.Workload.throughput
      tl.Tstm_harness.Workload.throughput
      (wb.Tstm_harness.Workload.throughput
      /. tl.Tstm_harness.Workload.throughput)
  in
  point "baseline" CM.default;
  point "line_transfer x2" { CM.default with CM.line_transfer = 200 };
  point "line_transfer /2" { CM.default with CM.line_transfer = 50 };
  point "cas_extra x3" { CM.default with CM.cas_extra = 60 };
  point "no L1 (flat hierarchy)" { CM.default with CM.l1_miss = 0 };
  point "tiny private cache (16 KiB)"
    { CM.default with CM.private_cache_lines = 256; CM.l1_lines = 64 };
  (* Contention-management alternative of §3.1: bounded wait instead of
     immediate abort on a foreign lock. *)
  let wait_point attempts =
    Tstm_runtime.Runtime_sim.configure CM.default;
    let spec =
      Tstm_harness.Workload.make ~structure:Tstm_harness.Workload.List
        ~initial_size:256 ~update_pct:20.0 ~nthreads:8 ~duration:0.002 ()
    in
    let module S = Tstm_harness.Scenario in
    let t =
      S.Ts.create
        ~config:(Tinystm.Config.make ())
        ~conflict_wait:attempts
        ~memory_words:(Tstm_harness.Workload.memory_words_for spec)
        ()
    in
    let module D = Tstm_harness.Driver.Make (Tstm_runtime.Runtime_sim) (S.Ts) in
    let ops = D.make_structure t spec.Tstm_harness.Workload.structure in
    D.populate t ops spec;
    let r = D.run t ops spec in
    Printf.printf "conflict_wait=%-3d                  WB %8.0f tx/s   aborts %d\n%!"
      attempts r.Tstm_harness.Workload.throughput
      r.Tstm_harness.Workload.aborts
  in
  List.iter wait_point [ 0; 4; 32 ];
  (* The paper's §3.2 generalization: a second, coarser counter level over
     the hierarchical array (validation-heavy list workload). *)
  let two_level_point (h, h2) =
    Tstm_runtime.Runtime_sim.configure CM.default;
    let spec =
      Tstm_harness.Workload.make ~structure:Tstm_harness.Workload.List
        ~initial_size:1024 ~update_pct:20.0 ~nthreads:8 ~duration:0.002 ()
    in
    let r =
      Tstm_harness.Scenario.run_intset ~stm:Tstm_harness.Scenario.Tinystm_wb
        ~n_locks:(1 lsl 16) ~shifts:2 ~hierarchy:h ~hierarchy2:h2 spec
    in
    let s = r.Tstm_harness.Workload.stats in
    Printf.printf
      "hierarchy h=%-3d h2=%-3d            WB %8.0f tx/s   val locks: %d processed, %d skipped\n%!"
      h h2 r.Tstm_harness.Workload.throughput
      s.Tstm_tm.Tm_stats.val_locks_processed
      s.Tstm_tm.Tm_stats.val_locks_skipped
  in
  List.iter two_level_point [ (1, 1); (64, 1); (64, 8); (256, 16) ];
  Tstm_runtime.Runtime_sim.configure CM.default;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Observed run                                                        *)
(* ------------------------------------------------------------------ *)

(* The flagship comparison point (Fig. 3b: list, 256 elements, 20% updates,
   8 threads) run under a live observability sink, exporting whatever the
   --trace/--metrics-csv/--top-contended flags asked for. *)
let run_observed ~trace ~metrics_csv ~top_contended =
  print_endline "=== Observed run (list 256, 20% updates, 8 threads, WB) ===";
  let spec =
    Tstm_harness.Workload.make ~structure:Tstm_harness.Workload.List
      ~initial_size:256 ~update_pct:20.0 ~nthreads:8 ~duration:0.005 ()
  in
  let r, collector, metrics =
    Tstm_harness.Scenario.run_intset_observed
      ~stm:Tstm_harness.Scenario.Tinystm_wb ~period:0.0005 ~n_periods:10 spec
  in
  Format.printf "%a@." Tstm_harness.Workload.pp_result r;
  print_string (Tstm_obs.Export.histo_summary collector);
  (match trace with
  | Some path ->
      Tstm_obs.Export.write_chrome_trace ~path collector;
      Printf.printf "(trace written to %s)\n" path
  | None -> ());
  (match metrics_csv with
  | Some path ->
      Tstm_obs.Metrics.write ~path metrics;
      Printf.printf "(metrics CSV written to %s)\n" path
  | None -> ());
  (match top_contended with
  | Some n -> print_string (Tstm_obs.Export.top_contended ~n collector)
  | None -> ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let run_figures profile figs =
  List.iter
    (fun n ->
      Printf.printf "--- Figure %d: %s [%s profile] ---\n%!" n
        (Tstm_harness.Figures.describe n)
        profile.Tstm_harness.Figures.label;
      let t0 = Unix.gettimeofday () in
      let outputs = Tstm_harness.Figures.run_figure profile n in
      List.iter Tstm_harness.Figures.print_output outputs;
      Printf.printf "(figure %d done in %.1fs)\n\n%!" n
        (Unix.gettimeofday () -. t0))
    figs

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let profile =
    if full then Tstm_harness.Figures.full else Tstm_harness.Figures.quick
  in
  let rec fig_arg = function
    | "--fig" :: n :: _ -> Some (int_of_string n)
    | _ :: rest -> fig_arg rest
    | [] -> None
  in
  let rec opt_after flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> opt_after flag rest
    | [] -> None
  in
  let trace = opt_after "--trace" args in
  let metrics_csv = opt_after "--metrics-csv" args in
  let top_contended =
    Option.map int_of_string (opt_after "--top-contended" args)
  in
  if trace <> None || metrics_csv <> None || top_contended <> None then
    run_observed ~trace ~metrics_csv ~top_contended
  else if List.mem "--micro" args then run_micro ()
  else if List.mem "--ablation" args then run_ablation ()
  else
    match fig_arg args with
    | Some n -> run_figures profile [ n ]
    | None ->
        run_micro ();
        run_ablation ();
        run_figures profile Tstm_harness.Figures.fig_numbers
