(* Golden determinism of the multi-process sweep runner: the merged result
   of any plan must be byte-identical whatever the worker count, the
   completion order, or mid-job worker crashes (which requeue).  Verified
   by marshalling the outcome arrays and comparing digests — any bit of
   any result row differing fails the test. *)

module F = Tstm_harness.Figures
module W = Tstm_harness.Workload
module St = Tstm_harness.Stress
module Job = Tstm_exec.Job
module Plan = Tstm_exec.Plan
module Pool = Tstm_exec.Pool

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let fingerprint (res : Plan.result) =
  Digest.to_hex (Digest.string (Marshal.to_string res.Plan.outcomes []))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Pool mechanics (cheap jobs, no simulator)                           *)
(* ------------------------------------------------------------------ *)

let test_pool_rows_in_rank_order () =
  let v =
    Pool.map ~jobs:4 ~label:(fun i -> string_of_int i) (fun rank -> rank * 10) 9
  in
  check_bool "no failures" true (Pool.ok v);
  Array.iteri
    (fun i row -> check_bool "row matches rank" true (row = Some (i * 10)))
    v.Pool.rows

let test_pool_exception_fails_without_retry () =
  let v =
    Pool.map ~jobs:2
      ~label:(fun i -> string_of_int i)
      (fun rank -> if rank = 1 then failwith "boom" else rank)
      3
  in
  check_int "one failure" 1 (List.length v.Pool.failures);
  let f = List.hd v.Pool.failures in
  check_int "failed rank" 1 f.Pool.rank;
  (* A job-level exception is deterministic: retrying would fail the same
     way, so the pool must not burn attempts on it. *)
  check_int "single attempt" 1 f.Pool.attempts;
  check_bool "reason carries the exception" true
    (contains ~sub:"boom" f.Pool.reason);
  check_bool "other rows unaffected" true
    (v.Pool.rows.(0) = Some 0 && v.Pool.rows.(2) = Some 2)

let test_pool_timeout_kills_and_reports () =
  let v =
    Pool.map ~jobs:2 ~timeout:0.2 ~retries:0
      ~label:(fun i -> string_of_int i)
      (fun rank ->
        if rank = 0 then
          while true do
            ()
          done;
        7)
      2
  in
  check_bool "healthy row survives" true (v.Pool.rows.(1) = Some 7);
  check_int "one failure" 1 (List.length v.Pool.failures);
  let f = List.hd v.Pool.failures in
  check_int "spinning rank failed" 0 f.Pool.rank;
  check_bool "reason is the timeout" true (contains ~sub:"timeout" f.Pool.reason)

let test_plan_dedupes_equal_jobs () =
  let j = Job.Stress_run { St.default with St.seed = 0 } in
  let progress = ref 0 in
  let res =
    Plan.execute ~jobs:2
      ~on_progress:(fun p ->
        if p.Pool.status = Tstm_obs.Progress.Finished then incr progress)
      [| j; j; j |]
  in
  check_bool "all three outcomes present" true
    (Array.for_all (fun o -> o <> None) res.Plan.outcomes);
  check_bool "shared outcomes are equal" true
    (res.Plan.outcomes.(0) = res.Plan.outcomes.(1)
    && res.Plan.outcomes.(1) = res.Plan.outcomes.(2));
  (* Structural dedupe: the three plan entries ran as one job. *)
  check_int "evaluated once" 1 !progress

(* ------------------------------------------------------------------ *)
(* Golden determinism: figures                                         *)
(* ------------------------------------------------------------------ *)

(* Render the assembled figures the way the CLI would (CSV form), so the
   comparison covers the full plan -> evaluate -> assemble path. *)
let render_figures profile ns (res : Plan.result) =
  let buf = Buffer.create 4096 in
  let cursor = ref 0 in
  List.iter
    (fun n ->
      let cells = F.plan profile n in
      let values =
        Array.init (Array.length cells) (fun i ->
            match res.Plan.outcomes.(!cursor + i) with
            | Some (Job.Cell_value v) -> v
            | _ -> Alcotest.fail "missing figure cell")
      in
      cursor := !cursor + Array.length cells;
      List.iter
        (fun o ->
          Buffer.add_string buf
            (match o with
            | F.Table t -> Tstm_util.Series.table_to_csv t
            | F.Surface s -> Tstm_util.Series.surface_to_csv s))
        (F.assemble profile n values))
    ns;
  Buffer.contents buf

let golden_figs = [ 7; 10 ]

let test_figures_jobs_invariant () =
  let plan = Plan.figures F.quick golden_figs in
  let a = Plan.execute ~jobs:1 plan in
  let b = Plan.execute ~jobs:4 plan in
  check_bool "jobs=1 all ok" true (Plan.ok a);
  check_bool "jobs=4 all ok" true (Plan.ok b);
  Alcotest.(check string) "outcomes byte-identical" (fingerprint a)
    (fingerprint b);
  Alcotest.(check string)
    "rendered figures byte-identical"
    (render_figures F.quick golden_figs a)
    (render_figures F.quick golden_figs b)

(* ------------------------------------------------------------------ *)
(* Golden determinism: stress sweep                                    *)
(* ------------------------------------------------------------------ *)

let stress_pairs specs (res : Plan.result) =
  Array.mapi
    (fun i o ->
      match o with
      | Some (Job.Stress_report r) -> (specs.(i), r)
      | _ -> Alcotest.fail "missing stress report")
    res.Plan.outcomes

let test_stress_jobs_invariant () =
  let specs =
    St.plan ~seeds:20 ~stms:[ "tinystm-wb" ] ~structures:[ W.List ] St.default
  in
  let plan = Array.map (fun s -> Job.Stress_run s) specs in
  let a = Plan.execute ~jobs:1 plan in
  let b = Plan.execute ~jobs:4 plan in
  check_bool "jobs=1 all ok" true (Plan.ok a);
  check_bool "jobs=4 all ok" true (Plan.ok b);
  Alcotest.(check string) "reports byte-identical" (fingerprint a)
    (fingerprint b);
  let sa = St.summarize (stress_pairs specs a) in
  let sb = St.summarize (stress_pairs specs b) in
  check_bool "summaries equal" true (sa = sb);
  check_int "all runs counted" (Array.length specs) sa.St.runs

(* ------------------------------------------------------------------ *)
(* Pinned golden digests: the default contention manager is invisible  *)
(* ------------------------------------------------------------------ *)

(* Digests of the quick-profile figure CSVs, the ablation table and the
   tuner trace, captured before the contention-management layer existed.
   The default policy (backoff) must replay the historical runs
   byte-identically — any virtual-time or RNG-stream drift on the default
   path moves these digests and fails here. *)

module Abl = Tstm_harness.Ablation
module Scenario = Tstm_harness.Scenario

let digest s = Digest.to_hex (Digest.string s)

let test_pinned_figures_digest () =
  let plan = Plan.figures F.quick golden_figs in
  let res = Plan.execute ~jobs:1 plan in
  check_bool "all cells ok" true (Plan.ok res);
  Alcotest.(check string)
    "figures 7+10 digest pinned" "c4830843617461c335712e43584d56e4"
    (digest (render_figures F.quick golden_figs res))

let test_pinned_ablation_digest () =
  (* The Cost points perturb the simulator's cost model; the remaining
     points all run the production model and are what the default CM must
     not disturb. *)
  let pts =
    List.filter (function Abl.Cost _ -> false | _ -> true) Abl.default_points
  in
  let rows = List.map Abl.run_point pts in
  Alcotest.(check string)
    "ablation digest pinned" "a6ac5ff6370f6731a778e802e1dbe76f"
    (digest (String.concat "\n" (List.map Abl.render rows)))

let test_pinned_tune_digest () =
  let spec =
    W.make ~structure:W.List ~initial_size:128 ~update_pct:20.0 ~nthreads:4
      ~duration:1.0 ~seed:42 ()
  in
  let tr = Scenario.run_intset_autotuned ~period:0.002 ~n_steps:5 spec in
  let rendered =
    String.concat ""
      (List.map
         (fun (st : Tstm_tuning.Tuner.step) ->
           Printf.sprintf "%s %.3f %s\n"
             (Tinystm.Config.to_string st.Tstm_tuning.Tuner.config)
             st.Tstm_tuning.Tuner.throughput
             (Tstm_tuning.Tuner.move_label st.Tstm_tuning.Tuner.move))
         tr.Scenario.steps)
  in
  Alcotest.(check string)
    "tuner-trace digest pinned" "1281dbff72cfffefd31e4a3de57546d6"
    (digest rendered)

(* ------------------------------------------------------------------ *)
(* Crash recovery: a SIGKILLed worker is requeued, output unchanged    *)
(* ------------------------------------------------------------------ *)

let test_killed_worker_retried () =
  let specs =
    St.plan ~seeds:6 ~stms:[ "tinystm-wb" ] ~structures:[ W.List ] St.default
  in
  let plan = Array.map (fun s -> Job.Stress_run s) specs in
  let clean = Plan.execute ~jobs:2 plan in
  let crashes = ref 0 in
  let sabotaged =
    Plan.execute ~jobs:2
      ~on_progress:(fun p ->
        match p.Pool.status with
        | Tstm_obs.Progress.Crashed _ -> incr crashes
        | _ -> ())
      ~sabotage:(fun ~rank ~attempt -> rank = 3 && attempt = 1)
      plan
  in
  check_int "exactly one worker was killed" 1 !crashes;
  check_bool "retry recovered every job" true (Plan.ok sabotaged);
  Alcotest.(check string)
    "merged output unchanged by the crash" (fingerprint clean)
    (fingerprint sabotaged)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "rows in rank order" `Quick
            test_pool_rows_in_rank_order;
          Alcotest.test_case "exception fails without retry" `Quick
            test_pool_exception_fails_without_retry;
          Alcotest.test_case "timeout kills and reports" `Quick
            test_pool_timeout_kills_and_reports;
          Alcotest.test_case "plan dedupes equal jobs" `Quick
            test_plan_dedupes_equal_jobs;
        ] );
      ( "golden",
        [
          Alcotest.test_case "figures: jobs=1 = jobs=4" `Quick
            test_figures_jobs_invariant;
          Alcotest.test_case "stress: jobs=1 = jobs=4" `Quick
            test_stress_jobs_invariant;
          Alcotest.test_case "killed worker retried, output unchanged" `Quick
            test_killed_worker_retried;
          Alcotest.test_case "pinned digest: figures" `Quick
            test_pinned_figures_digest;
          Alcotest.test_case "pinned digest: ablation" `Quick
            test_pinned_ablation_digest;
          Alcotest.test_case "pinned digest: tuner trace" `Quick
            test_pinned_tune_digest;
        ] );
    ]
