(* Teeth for Tstm_lint (lib/lint).

   Three layers of bite:

   - the fixture corpus under test/lint_fixtures must produce *exactly*
     the findings its `lint: expect` directives declare — per rule, at
     the exact file:line;
   - the suppression discipline round-trips in memory (allow masks,
     unknown ids and stale allows are findings themselves);
   - the comment/string false-positive class of the grep-era lint stays
     dead (identifiers inside comments and string literals are invisible
     to AST rules).

   The corpus lives in source_tree deps, so these tests run from the
   test/ build directory where `lint_fixtures/` is a direct child. *)

open Tstm_lint

(* Under `dune runtest` the cwd is the test build directory (the corpus
   is a direct child); under `dune exec` from the root it is not. *)
let corpus =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else "test/lint_fixtures"

(* ------------------------------------------------------------------ *)
(* Fixture corpus                                                      *)
(* ------------------------------------------------------------------ *)

let test_teeth_clean () =
  let { Engine.mismatches; expectations } = Engine.teeth ~roots:[ corpus ] () in
  List.iter (fun m -> Printf.printf "mismatch: %s\n" m) mismatches;
  Alcotest.(check (list string)) "no teeth mismatches" [] mismatches;
  (* Every rule is represented: at least one expectation per shipped rule
     plus the meta rules exercised by the suppression fixtures. *)
  Alcotest.(check bool)
    (Printf.sprintf "expectation floor (got %d)" expectations)
    true (expectations >= 15)

(* The teeth harness proves set equality; these spot checks nail a few
   exact (path, line, rule) triples so a bulk regression in both the
   rules *and* the expect comments cannot slip through unnoticed. *)
let find_all ~roots =
  (Engine.run ~roots ()).Engine.findings

let test_exact_lines () =
  let findings = find_all ~roots:[ corpus ] in
  let has ~path ~line ~rule =
    List.exists
      (fun (f : Finding.t) ->
        f.path = path && f.line = line && f.rule = rule)
      findings
  in
  let expect ~path ~line ~rule =
    Alcotest.(check bool)
      (Printf.sprintf "%s:%d %s" path line rule)
      true
      (has ~path ~line ~rule)
  in
  expect ~path:(corpus ^ "/lib/fix/bad_printf.ml") ~line:2 ~rule:"printf-in-lib";
  expect ~path:(corpus ^ "/lib/fix/bad_random.ml") ~line:2 ~rule:"stdlib-random";
  expect ~path:(corpus ^ "/lib/fix/bad_obj.ml") ~line:2 ~rule:"obj-cast";
  expect ~path:(corpus ^ "/lib/fix/bad_wallclock.ml") ~line:2 ~rule:"wallclock";
  expect ~path:(corpus ^ "/lib/fix/bad_marshal.ml") ~line:2
    ~rule:"marshal-outside-exec";
  expect ~path:(corpus ^ "/lib/fix/bad_catchall.ml") ~line:4
    ~rule:"catch-all-handler";
  expect ~path:(corpus ^ "/lib/fix/bad_missing_mli.ml") ~line:1
    ~rule:"mli-coverage";
  expect ~path:(corpus ^ "/lib/fix/bad_tap_pairing.ml") ~line:3
    ~rule:"tap-pairing";
  expect ~path:(corpus ^ "/lib/fix/bad_parse.ml") ~line:1 ~rule:"parse-error";
  expect
    ~path:(corpus ^ "/lib/tinystm/bad_lock_pairing.ml")
    ~line:3 ~rule:"stm-lock-pairing";
  expect
    ~path:(corpus ^ "/lib/tinystm/bad_vmm_charge.ml")
    ~line:3 ~rule:"vmm-charge";
  expect ~path:(corpus ^ "/lib/vmm/bad_layering.ml") ~line:3 ~rule:"layering";
  expect ~path:(corpus ^ "/lib/vmm/dune") ~line:3 ~rule:"layering";
  expect ~path:(corpus ^ "/bin/bad_random_cli.ml") ~line:2
    ~rule:"stdlib-random"

let test_clean_fixtures_clean () =
  (* The ok_* halves of every pair: each must contribute zero findings. *)
  let findings = find_all ~roots:[ corpus ] in
  let offenders =
    List.filter
      (fun (f : Finding.t) ->
        let base = Filename.basename f.path in
        String.length base >= 3 && String.sub base 0 3 = "ok_")
      findings
  in
  Alcotest.(check (list string))
    "ok_* fixtures are clean"
    []
    (List.map
       (fun (f : Finding.t) ->
         Printf.sprintf "%s:%d [%s]" f.path f.line f.rule)
       offenders)

(* ------------------------------------------------------------------ *)
(* Suppression round trip (in memory)                                  *)
(* ------------------------------------------------------------------ *)

let check ?(path = "lib/fake/m.ml") text =
  Engine.check_source ~path ~text ()

let rules_of fs = List.map (fun (f : Finding.t) -> f.rule) fs

let test_allow_masks () =
  let bare = check "let f msg = Printf.printf \"%s\" msg\n" in
  Alcotest.(check (list string)) "unsuppressed fires" [ "printf-in-lib" ]
    (rules_of bare);
  let masked =
    check
      "let f msg = Printf.printf \"%s\" msg (* lint: allow printf-in-lib \
       — logging shim *)\n"
  in
  Alcotest.(check (list string)) "allow masks same line" [] (rules_of masked);
  let masked_next =
    check
      "(* lint: allow printf-in-lib — logging shim *)\n\
       let f msg = Printf.printf \"%s\" msg\n"
  in
  Alcotest.(check (list string)) "allow masks next line" []
    (rules_of masked_next)

let test_allow_unknown_id () =
  let fs = check "let x = 1 (* lint: allow no-such-rule — typo *)\n" in
  Alcotest.(check (list string)) "unknown id is a finding"
    [ "suppression-unknown" ] (rules_of fs);
  (* The message teaches: it must mention at least one real id. *)
  (match fs with
  | [ f ] ->
      Alcotest.(check bool) "message lists known ids" true
        (let needle = "obj-cast" in
         let n = String.length needle and m = String.length f.message in
         let rec at i = i + n <= m && (String.sub f.message i n = needle || at (i + 1)) in
         at 0)
  | _ -> Alcotest.fail "expected exactly one finding");
  let missing_reason = check "let x = 1 (* lint: allow obj-cast *)\n" in
  Alcotest.(check (list string)) "missing reason is a finding"
    [ "suppression-unknown" ]
    (rules_of missing_reason)

let test_allow_stale () =
  let fs = check "let x = 1 (* lint: allow obj-cast — nothing here *)\n" in
  Alcotest.(check (list string)) "stale allow is a finding"
    [ "suppression-stale" ] (rules_of fs)

let test_meta_unsuppressable () =
  (* Suppressing the suppression checker must not work. *)
  let fs =
    check
      "let x = 1 (* lint: allow suppression-stale — gaming the system *)\n"
  in
  Alcotest.(check (list string)) "meta rules cannot be suppressed"
    [ "suppression-unknown" ] (rules_of fs)

(* ------------------------------------------------------------------ *)
(* Comment/string false positives (the grep-era bug class)             *)
(* ------------------------------------------------------------------ *)

let test_comment_string_invisible () =
  let fs =
    check
      "(* Random.int would be bad; Obj.magic worse. *)\n\
       let doc = \"never call Unix.gettimeofday or Marshal.to_string\"\n\
       let ok = String.length doc\n"
  in
  Alcotest.(check (list string)) "comments and strings are invisible" []
    (rules_of fs)

let test_nested_comment_suppression () =
  (* A directive inside a nested comment is still a directive; a fake
     directive inside a string literal is not. *)
  let fs = check "let s = \"(* lint: allow obj-cast — fake *)\"\n" in
  Alcotest.(check (list string)) "directive in string ignored" []
    (rules_of fs)

(* ------------------------------------------------------------------ *)
(* Registry and reporters                                              *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  let ids = Rules.ids in
  let sorted = List.sort_uniq compare ids in
  Alcotest.(check int) "rule ids unique" (List.length ids)
    (List.length sorted);
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is kebab-case" id)
        true
        (String.length id > 0
        && String.for_all
             (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-')
             id))
    ids;
  Alcotest.(check bool) "meta ids are known" true
    (List.for_all (fun id -> List.mem id Rules.known_ids) Rules.meta_ids)

let test_reporters () =
  let f =
    Finding.v ~rule:"obj-cast" ~severity:Finding.Error ~path:"lib/a.ml"
      ~line:7 ~col:4 "Obj.magic defeats the type system"
  in
  let gh = Report.github [ f ] in
  Alcotest.(check bool) "github format is a workflow command" true
    (String.length gh > 9 && String.sub gh 0 8 = "::error ");
  Alcotest.(check bool) "github column is 1-based" true
    (let needle = "line=7,col=5" in
     let n = String.length needle and m = String.length gh in
     let rec at i = i + n <= m && (String.sub gh i n = needle || at (i + 1)) in
     at 0);
  let js = Report.json ~files_checked:1 [ f ] in
  Alcotest.(check bool) "json names the schema" true
    (let needle = "tstm-lint/1" in
     let n = String.length needle and m = String.length js in
     let rec at i = i + n <= m && (String.sub js i n = needle || at (i + 1)) in
     at 0);
  let human = Report.human ~files_checked:1 ~rules:11 [] in
  Alcotest.(check bool) "clean human report says OK" true
    (let needle = "lint: OK" in
     let n = String.length needle and m = String.length human in
     let rec at i = i + n <= m && (String.sub human i n = needle || at (i + 1)) in
     at 0)

let () =
  Alcotest.run "lint"
    [
      ( "teeth",
        [
          Alcotest.test_case "corpus matches expectations" `Quick
            test_teeth_clean;
          Alcotest.test_case "exact file:line spot checks" `Quick
            test_exact_lines;
          Alcotest.test_case "clean fixtures stay clean" `Quick
            test_clean_fixtures_clean;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "allow masks same/next line" `Quick
            test_allow_masks;
          Alcotest.test_case "unknown id rejected" `Quick test_allow_unknown_id;
          Alcotest.test_case "stale allow rejected" `Quick test_allow_stale;
          Alcotest.test_case "meta rules unsuppressable" `Quick
            test_meta_unsuppressable;
        ] );
      ( "false-positives",
        [
          Alcotest.test_case "comments and strings invisible" `Quick
            test_comment_string_invisible;
          Alcotest.test_case "directive in string ignored" `Quick
            test_nested_comment_suppression;
        ] );
      ( "framework",
        [
          Alcotest.test_case "registry sane" `Quick test_registry;
          Alcotest.test_case "reporters" `Quick test_reporters;
        ] );
    ]
