(* Real-hardware bench smoke: short wall-clock runs on 1, 2 and 4 domains.

   Real runs are nondeterministic, so the assertions are the
   nondeterminism-robust invariants the harness is designed around:

   - integrity: total commits = total counted operations, the structure
     returns to its populated size, zero allocator drift (all reported via
     [Bench_real.integrity.violations]);
   - the emitted snapshot is schema-valid JSON and round-trips through the
     parser to a byte-identical serialization;
   - per-cell samples are positive and self-consistent.

   `dune build @real-smoke` runs it alone; runtest includes it. *)

module Bench = Tstm_obs.Bench
module Bench_real = Tstm_harness.Bench_real

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let protocol =
  { Bench_real.duration_s = 0.05; warmup_s = 0.02; reps = 2; observe = true }

let run_one ~stm ~structure ~domains =
  let req =
    { Bench_real.default_request with Bench_real.stm; structure; domains }
  in
  match Bench_real.run_cell req protocol with
  | Error e -> fail "real-smoke: %s/%s d=%d: %s" stm structure domains e
  | Ok (cell, integ) ->
      List.iter
        (fun v ->
          fail "real-smoke: %s/%s d=%d violated: %s" stm structure domains v)
        integ.Bench_real.violations;
      if integ.Bench_real.ops_total <= 0 then
        fail "real-smoke: %s/%s d=%d: no operations ran" stm structure domains;
      List.iter
        (fun (s : Bench.sample) ->
          if s.Bench.thr <= 0.0 || s.Bench.elapsed_s <= 0.0 then
            fail "real-smoke: %s/%s d=%d: degenerate sample" stm structure
              domains;
          if s.Bench.commits < 0 || s.Bench.aborts < 0 then
            fail "real-smoke: %s/%s d=%d: negative counters" stm structure
              domains)
        cell.Bench.samples;
      if List.length cell.Bench.samples <> protocol.Bench_real.reps then
        fail "real-smoke: %s/%s d=%d: expected %d samples, got %d" stm
          structure domains protocol.Bench_real.reps
          (List.length cell.Bench.samples);
      (cell, integ)

let () =
  let cells = ref [] in
  let total_ops = ref 0 in
  let total_commits = ref 0 in
  List.iter
    (fun domains ->
      let cell, integ = run_one ~stm:"wb" ~structure:"rbtree" ~domains in
      cells := cell :: !cells;
      total_ops := !total_ops + integ.Bench_real.ops_total;
      total_commits := !total_commits + integ.Bench_real.commits_total)
    [ 1; 2; 4 ];
  (* Exercise the other STMs and the vacation path at one width each. *)
  let cell_tl2, _ = run_one ~stm:"tl2" ~structure:"list" ~domains:2 in
  let cell_vac, _ = run_one ~stm:"wt" ~structure:"vacation" ~domains:2 in
  cells := cell_vac :: cell_tl2 :: !cells;
  (* Snapshot schema validity and round-trip determinism. *)
  let snap =
    Bench_real.snapshot ~rev:"smoke" ~created_unix:0.0 protocol
      (List.rev !cells)
  in
  let s = Bench.to_string snap in
  if not (Tstm_obs.Export.json_is_valid s) then
    fail "real-smoke: snapshot is not valid JSON";
  (match Bench.of_string s with
  | Error e -> fail "real-smoke: snapshot does not parse back: %s" e
  | Ok snap' ->
      let s' = Bench.to_string snap' in
      if s <> s' then fail "real-smoke: snapshot round-trip not byte-stable");
  Printf.printf
    "real-smoke: OK (%d cells, %d ops = %d commits on wb/rbtree, snapshot \
     %d bytes)\n"
    (List.length !cells) !total_ops !total_commits (String.length s)
