(* Clean fixture: binaries may print. *)
let () = print_endline "ok"
