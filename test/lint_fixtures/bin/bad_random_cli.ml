(* Violating fixture: stdlib-random is scoped to bin too. *)
let () = print_int (Random.int 3) (* lint: expect stdlib-random *)
