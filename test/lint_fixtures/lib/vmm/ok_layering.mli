val boundary : unit -> unit
