val drive : unit -> unit
