(* Clean fixture: vmm may depend on runtime (a declared edge). *)
let boundary () = Tstm_runtime.Tap.run_boundary ()
