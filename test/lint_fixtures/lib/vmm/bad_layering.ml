(* Violating fixture: lib/vmm reaching up into lib/harness inverts the
   declared DAG. *)
let drive () = Tstm_harness.Driver.go () (* lint: expect layering *)
