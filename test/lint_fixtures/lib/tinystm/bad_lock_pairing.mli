val step : bool -> int -> int -> unit
