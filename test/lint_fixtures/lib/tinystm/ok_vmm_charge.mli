val peek : int -> int -> int
