val release : int -> int -> unit
val step : int -> int -> unit
