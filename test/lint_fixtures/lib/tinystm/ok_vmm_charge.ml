(* Clean fixture: the entry point charges cycles before touching the
   word store. *)
let peek mem addr =
  R.charge 4;
  V.load mem addr
