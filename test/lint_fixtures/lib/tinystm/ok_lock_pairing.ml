(* Clean fixture: the acquiring path reaches a release through the
   intra-module call graph. *)
let release cpu lock = San.lock_release ~cpu ~lock

let step cpu lock =
  San.lock_acquire ~cpu ~lock;
  release cpu lock
