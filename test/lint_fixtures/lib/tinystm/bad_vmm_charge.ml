(* Violating fixture: a raw Vmm word access reachable from an entry
   point that never charges simulated cycles. *)
let peek mem addr = V.load mem addr (* lint: expect vmm-charge *)
