(* Violating fixture: an entry point that can acquire an orec but
   reaches neither a release nor an abort. *)
let step san cpu lock = (* lint: expect stm-lock-pairing *)
  if san then San.lock_acquire ~cpu ~lock (* lint: expect tap-pairing *)
