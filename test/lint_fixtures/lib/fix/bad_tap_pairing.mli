val quiet : (unit -> 'a) -> 'a
