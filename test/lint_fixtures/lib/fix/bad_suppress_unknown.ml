(* Violating fixture: a suppression naming a rule that does not exist. *)
let x = 1 (* lint: allow no-such-rule — misspelled on purpose *) (* lint: expect suppression-unknown *)
