(* Clean fixture: typed serialization. *)
let encode n = string_of_int n
let decode s = int_of_string_opt s
