(* Violating fixture: a tap suspension with no matching resume. *)
let quiet f =
  Tap.suspend (); (* lint: expect tap-pairing *)
  f ()
