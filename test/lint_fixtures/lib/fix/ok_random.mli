val label : string
val seed : int
