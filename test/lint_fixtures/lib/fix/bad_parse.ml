let f x = ) (* lint: expect parse-error *)
