val report : int -> unit
