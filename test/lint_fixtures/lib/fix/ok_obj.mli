type t = Obj of int | Other

val wrap : int -> t
val unwrap : t -> int
