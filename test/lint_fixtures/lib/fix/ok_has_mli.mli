val answer : int
