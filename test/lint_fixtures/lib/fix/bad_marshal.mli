val blob : 'a -> string
