val parse : string -> int option
