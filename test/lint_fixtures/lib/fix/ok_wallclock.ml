(* Clean fixture: virtual time is a value you are handed, not a clock
   you read. *)
let micros_of_cycles cycles = cycles / 2000
