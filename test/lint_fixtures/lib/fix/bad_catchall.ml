(* Violating fixture: a handler that swallows every exception. *)
let parse s =
  try Some (int_of_string s)
  with _ -> None (* lint: expect catch-all-handler *)
