(* Violating fixture: Stdlib.Random breaks deterministic replay. *)
let roll () = Random.int 6 (* lint: expect stdlib-random *)
