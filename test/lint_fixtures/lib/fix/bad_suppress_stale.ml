(* Violating fixture: a suppression that masks nothing must rot loudly. *)
let x = 2 (* lint: allow obj-cast — stale on purpose *) (* lint: expect suppression-stale *)
