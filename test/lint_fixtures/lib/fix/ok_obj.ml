(* Clean fixture: a constructor that happens to be named Obj is not the
   Obj module (regression for the constructor/module confusion). *)
type t = Obj of int | Other

let wrap n = Obj n
let unwrap = function Obj n -> n | Other -> 0
