(* Clean fixture: libraries build strings and return them. *)
let report n = Printf.sprintf "n=%d" n
