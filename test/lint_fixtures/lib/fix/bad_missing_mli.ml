let answer = 42 (* lint: expect mli-coverage *)
