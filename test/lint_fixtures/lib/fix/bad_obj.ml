(* Violating fixture: a cast through the Obj module. *)
let coerce (x : int) : bool = Obj.magic x (* lint: expect obj-cast *)
