val encode : int -> string
val decode : string -> int option
