val shout : string -> unit
