(* Violating fixture: Marshal outside the exec job protocol. *)
let blob v = Marshal.to_string v [] (* lint: expect marshal-outside-exec *)
