(* Clean fixture: match the exception the expression can raise. *)
let parse s =
  try Some (int_of_string s)
  with Failure _ -> None
