val x : int
