(* Clean fixture: the interface next door satisfies mli-coverage. *)
let answer = 42
