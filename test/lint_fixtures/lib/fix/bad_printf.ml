(* Violating fixture: a library module printing to stdout. *)
let report n = Printf.printf "n=%d\n" n (* lint: expect printf-in-lib *)
