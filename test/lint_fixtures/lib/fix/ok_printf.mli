val report : int -> string
