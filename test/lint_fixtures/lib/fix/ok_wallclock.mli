val micros_of_cycles : int -> int
