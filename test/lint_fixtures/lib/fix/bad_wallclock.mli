val now : unit -> float
