(* Clean fixture — the grep-era false-positive class: Random.int in a
   doc comment or a string literal must NOT trip the linter. *)
let label = "call Random.int to lose determinism"

(** Unlike [Random.self_init], a seeded stream replays. *)
let seed = 42
