val f : unit -> unit
