(* Violating fixture: a wall-clock read outside Monotonic/exec. *)
let now () = Unix.gettimeofday () (* lint: expect wallclock *)
