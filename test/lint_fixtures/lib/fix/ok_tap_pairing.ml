(* Clean fixture: suspension and resumption in the same module. *)
let quiet f =
  Tap.suspend ();
  Fun.protect ~finally:Tap.resume f
