(* Clean fixture: the suppression round trip.  The printf finding below
   is masked by an explained allow comment, and because it masks a real
   finding it is not stale either. *)
let shout msg = Printf.printf "%s" msg (* lint: allow printf-in-lib — fixture: suppression round-trip *)
