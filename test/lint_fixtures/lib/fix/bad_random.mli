val roll : unit -> int
