val coerce : int -> bool
