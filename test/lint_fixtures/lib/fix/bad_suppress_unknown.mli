val x : int
