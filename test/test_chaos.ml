(* Tests for the deterministic chaos engine: checker verdicts on hand-built
   histories, bit-identical seed replay, failing-schedule shrinking,
   deliberate-bug detection, and retry-budget escalation to serial
   irrevocable commit. *)

module R = Tstm_runtime.Runtime_sim
module Chaos = Tstm_chaos.Chaos
module History = Tstm_chaos.History
module Stress = Tstm_harness.Stress
module Scenario = Tstm_harness.Scenario
module Workload = Tstm_harness.Workload
module Config = Tinystm.Config
module Ts = Scenario.Ts
module Tl = Scenario.Tl
module No = Scenario.No

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* History checker                                                     *)
(* ------------------------------------------------------------------ *)

let ev tid inv resp op result = { History.tid; inv; resp; op; result }

let accepted ?(final = []) evs =
  match History.check ~final evs with Ok () -> true | Error _ -> false

let test_checker_sequential () =
  let evs =
    [
      ev 0 0 1 (History.Add 1) true;
      ev 0 2 3 (History.Contains 1) true;
      ev 0 4 5 (History.Remove 1) true;
      ev 0 6 7 (History.Contains 1) false;
    ]
  in
  check_bool "sequential history accepted" true (accepted evs)

let test_checker_impossible_result () =
  check_bool "contains-true with no add rejected" false
    (accepted [ ev 0 0 1 (History.Contains 5) true ]);
  check_bool "remove-true with no add rejected" false
    (accepted [ ev 0 0 1 (History.Remove 5) true ]);
  check_bool "duplicate add-true rejected" false
    (accepted ~final:[ 1 ]
       [ ev 0 0 1 (History.Add 1) true; ev 1 2 3 (History.Add 1) true ])

let test_checker_final_contents () =
  let add = [ ev 0 0 1 (History.Add 1) true ] in
  check_bool "final must contain the added key" false (accepted add);
  check_bool "correct final accepted" true (accepted ~final:[ 1 ] add);
  check_bool "phantom final element rejected" false (accepted ~final:[ 9 ] [])

let test_checker_overlap_commutes () =
  (* The Contains invokes first but overlaps the Add; linearizing the Add
     first explains both results. *)
  let evs =
    [ ev 0 0 10 (History.Contains 1) true; ev 1 1 5 (History.Add 1) true ]
  in
  check_bool "overlapping ops may reorder" true (accepted ~final:[ 1 ] evs)

let test_checker_real_time_order () =
  (* Same pair but disjoint in real time: the Contains responded before the
     Add was invoked, so no linearization can explain [true]. *)
  let evs =
    [ ev 0 0 1 (History.Contains 1) true; ev 1 5 6 (History.Add 1) true ]
  in
  check_bool "real-time order enforced" false (accepted ~final:[ 1 ] evs)

let test_checker_diagnostic_mentions_stuck_op () =
  match
    History.check ~final:[] [ ev 0 0 1 (History.Contains 7) true ]
  with
  | Ok () -> Alcotest.fail "expected a violation"
  | Error msg ->
      check_bool "diagnostic names the stuck operation" true
        (let sub = History.op_to_string (History.Contains 7) in
         let len = String.length sub in
         let rec find i =
           i + len <= String.length msg
           && (String.sub msg i len = sub || find (i + 1))
         in
         find 0)

(* ------------------------------------------------------------------ *)
(* Deterministic replay and shrinking                                  *)
(* ------------------------------------------------------------------ *)

let test_run_one_deterministic () =
  let spec = { Stress.default with Stress.seed = 7 } in
  let r1 = Stress.run_one spec in
  let r2 = Stress.run_one spec in
  check_bool "same spec, bit-identical report" true (r1 = r2);
  check_bool "chaos actually fired" true (r1.Stress.injected > 0);
  check_bool "no violation on a clean STM" true (r1.Stress.violation = None)

let test_seeds_explore_distinct_schedules () =
  let fingerprints =
    List.init 5 (fun seed ->
        let r = Stress.run_one { Stress.default with Stress.seed = seed } in
        (r.Stress.injected, r.Stress.commits, r.Stress.aborts))
  in
  let distinct = List.sort_uniq compare fingerprints in
  check_bool "different seeds yield different schedules" true
    (List.length distinct > 1)

let test_site_limit_respected () =
  let r = Stress.run_one { Stress.default with Stress.site_limit = Some 5 } in
  check_bool "at most 5 injections fired" true (r.Stress.injected <= 5)

let test_replay_at_injected_cap_reproduces () =
  (* Shrinker soundness: capping at exactly the number of sites that fired
     replays the uncapped run bit-identically. *)
  let spec = { Stress.default with Stress.seed = 3 } in
  let base = Stress.run_one spec in
  let capped =
    Stress.run_one { spec with Stress.site_limit = Some base.Stress.injected }
  in
  check_int "same injections" base.Stress.injected capped.Stress.injected;
  check_int "same events" base.Stress.events capped.Stress.events;
  check_int "same commits" base.Stress.commits capped.Stress.commits;
  check_int "same aborts" base.Stress.aborts capped.Stress.aborts

(* ------------------------------------------------------------------ *)
(* Deliberate bugs are caught, and the printed seed replays             *)
(* ------------------------------------------------------------------ *)

let find_bug_failure bug stms =
  let base = { Stress.default with Stress.bug = Some bug } in
  let sweep =
    Stress.sweep ~seeds:10 ~stms ~structures:[ Workload.List ] base
  in
  sweep.Stress.first_failure

let test_skip_extension_caught_and_replays () =
  match find_bug_failure Chaos.Skip_extension [ "tinystm-wb" ] with
  | None -> Alcotest.fail "skip-extension bug not caught within 10 seeds"
  | Some (spec, r) ->
      check_bool "verdict is a violation" true (r.Stress.violation <> None);
      (* The failing spec replays to the same verdict, bit for bit. *)
      let replay = Stress.run_one spec in
      check_bool "replay is bit-identical" true (replay = r);
      (* And it shrinks to a re-executed failing site budget. *)
      (match Stress.shrink spec r with
      | None -> Alcotest.fail "shrink lost the failure"
      | Some s ->
          check_bool "shrunk limit still fails" true
            (s.Stress.report.Stress.violation <> None);
          check_bool "shrunk limit is no larger" true
            (s.Stress.limit <= r.Stress.injected))

let test_skip_validation_caught () =
  let caught kind =
    match find_bug_failure Chaos.Skip_validation [ kind ] with
    | Some _ -> true
    | None -> false
  in
  check_bool "skip-validation caught on some STM within 10 seeds" true
    (List.exists caught Scenario.all_stms)

(* ------------------------------------------------------------------ *)
(* Retry-budget escalation to irrevocable commit                       *)
(* ------------------------------------------------------------------ *)

(* Hot counter under forced preemption: every increment must land exactly
   once even when transactions exhaust their retry budget and escalate to
   the serial-irrevocable path. *)
module Hot (T : Tstm_tm.Tm_intf.TM) = struct
  let run t ~nthreads ~iters =
    let a = T.atomically t (fun tx -> T.alloc tx 1) in
    T.atomically t (fun tx -> T.write tx a 0);
    T.reset_stats t;
    Chaos.with_plan ~seed:1 (fun () ->
        R.run ~nthreads (fun _ ->
            for _ = 1 to iters do
              T.atomically t (fun tx -> T.write tx a (T.read tx a + 1))
            done));
    let v = T.atomically t (fun tx -> T.read tx a) in
    (v, T.stats t)
end

module Hot_ts = Hot (Ts)
module Hot_tl = Hot (Tl)
module Hot_no = Hot (No)

let check_escalation name (v, stats) ~expect =
  check_int (name ^ ": exact counter value") expect v;
  check_bool (name ^ ": at least one escalation") true
    (stats.Tstm_tm.Tm_stats.escalations >= 1);
  check_bool (name ^ ": backoff cycles recorded") true
    (stats.Tstm_tm.Tm_stats.backoff_cycles > 0)

let test_escalation_tinystm strategy () =
  let t =
    Ts.create
      ~config:(Config.make ~n_locks:64 ~strategy ())
      ~max_retries:4 ~memory_words:256 ()
  in
  check_escalation
    (Config.strategy_to_string strategy)
    (Hot_ts.run t ~nthreads:8 ~iters:50)
    ~expect:400

let test_escalation_tl2 () =
  let t = Tl.create ~n_locks:64 ~max_retries:4 ~memory_words:256 () in
  check_escalation "tl2" (Hot_tl.run t ~nthreads:8 ~iters:50) ~expect:400

let test_escalation_norec () =
  let t = No.create ~max_retries:4 ~memory_words:256 () in
  check_escalation "norec" (Hot_no.run t ~nthreads:8 ~iters:50) ~expect:400

let test_no_escalation_without_budget () =
  (* max_retries = 0 disables the watchdog: same workload, zero
     escalations, still the exact count. *)
  let t =
    Ts.create ~config:(Config.make ~n_locks:64 ()) ~memory_words:256 ()
  in
  let v, stats = Hot_ts.run t ~nthreads:8 ~iters:50 in
  check_int "exact counter value" 400 v;
  check_int "no escalations" 0 stats.Tstm_tm.Tm_stats.escalations

let test_max_retries_validated () =
  (try
     ignore (Ts.create ~max_retries:(-1) ~memory_words:64 ());
     Alcotest.fail "negative max_retries accepted (tinystm)"
   with Invalid_argument _ -> ());
  (try
     ignore (Tl.create ~max_retries:(-1) ~memory_words:64 ());
     Alcotest.fail "negative max_retries accepted (tl2)"
   with Invalid_argument _ -> ());
  try
    ignore (No.create ~max_retries:(-1) ~memory_words:64 ());
    Alcotest.fail "negative max_retries accepted (norec)"
  with Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Plan API corners                                                    *)
(* ------------------------------------------------------------------ *)

let test_config_validated () =
  let bad cfg =
    try
      Chaos.with_plan ~config:cfg ~seed:0 (fun () -> ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "jitter_pct out of range" true
    (bad { Chaos.default with Chaos.jitter_pct = -1.0 });
  check_bool "preempt_pct out of range" true
    (bad { Chaos.default with Chaos.preempt_pct = 101.0 });
  check_bool "jitter_max < 1" true
    (bad { Chaos.default with Chaos.jitter_max = 0 })

let test_inactive_plan_is_silent () =
  Chaos.deactivate ();
  check_bool "disabled" true (not (Chaos.enabled ()));
  check_int "no jitter" 0 (Chaos.jitter ());
  check_int "no preemption" 0 (Chaos.preempt Chaos.Commit);
  check_int "no injections" 0 (Chaos.injected ())

let () =
  Alcotest.run "chaos"
    [
      ( "history checker",
        [
          Alcotest.test_case "sequential accepted" `Quick
            test_checker_sequential;
          Alcotest.test_case "impossible results rejected" `Quick
            test_checker_impossible_result;
          Alcotest.test_case "final contents checked" `Quick
            test_checker_final_contents;
          Alcotest.test_case "overlapping ops commute" `Quick
            test_checker_overlap_commutes;
          Alcotest.test_case "real-time order enforced" `Quick
            test_checker_real_time_order;
          Alcotest.test_case "diagnostic names stuck op" `Quick
            test_checker_diagnostic_mentions_stuck_op;
        ] );
      ( "deterministic replay",
        [
          Alcotest.test_case "run_one is deterministic" `Quick
            test_run_one_deterministic;
          Alcotest.test_case "seeds explore distinct schedules" `Quick
            test_seeds_explore_distinct_schedules;
          Alcotest.test_case "site limit respected" `Quick
            test_site_limit_respected;
          Alcotest.test_case "cap at injected reproduces" `Quick
            test_replay_at_injected_cap_reproduces;
        ] );
      ( "bug detection",
        [
          Alcotest.test_case "skip-extension caught, replays, shrinks"
            `Quick test_skip_extension_caught_and_replays;
          Alcotest.test_case "skip-validation caught" `Quick
            test_skip_validation_caught;
        ] );
      ( "irrevocable escalation",
        [
          Alcotest.test_case "write-back hot counter" `Quick
            (test_escalation_tinystm Config.Write_back);
          Alcotest.test_case "write-through hot counter" `Quick
            (test_escalation_tinystm Config.Write_through);
          Alcotest.test_case "tl2 hot counter" `Quick test_escalation_tl2;
          Alcotest.test_case "norec hot counter" `Quick test_escalation_norec;
          Alcotest.test_case "no escalation without budget" `Quick
            test_no_escalation_without_budget;
          Alcotest.test_case "max_retries validated" `Quick
            test_max_retries_validated;
        ] );
      ( "plan api",
        [
          Alcotest.test_case "config validated" `Quick test_config_validated;
          Alcotest.test_case "inactive plan silent" `Quick
            test_inactive_plan_is_silent;
        ] );
    ]
